// Benchmarks regenerating every table and figure of the paper's
// evaluation, at reduced scale so `go test -bench=.` completes on a
// laptop. The cmd/ tools run the same generators at the paper's full
// scale (-scale full); EXPERIMENTS.md records paper-vs-measured values.
//
// Naming follows the paper: BenchmarkFig05StockCDF regenerates Figure 5,
// BenchmarkTable4VisitCounts regenerates Table 4, and so on.
package tpccmodel_test

import (
	"math"
	"testing"

	"tpccmodel"
	"tpccmodel/internal/experiments"
	"tpccmodel/internal/model"
	"tpccmodel/internal/nurand"
	"tpccmodel/internal/queuesim"
	"tpccmodel/internal/sim"
	"tpccmodel/internal/tpcc"
)

// benchOptions is the reduced scale used by the simulation-backed benches:
// small enough for -bench=. runs, large enough to preserve curve shapes.
func benchOptions() experiments.Options {
	opts := experiments.Reduced()
	opts.Warehouses = 2
	opts.Batches = 3
	opts.BatchTxns = 4000
	opts.WarmupTxns = 4000
	opts.BufferMB = []float64{2, 6, 12, 20, 32, 48}
	return opts
}

// sharedStudy caches the buffer simulations across benchmark iterations.
var sharedStudy = experiments.NewStudy(benchOptions())

func BenchmarkTable1Schema(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := experiments.Table1(20, 4096)
		if len(s.Rows) != 9 {
			b.Fatal("table1 must list nine relations")
		}
	}
}

func BenchmarkFig03StockPMF(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := experiments.Fig3(1)
		if len(s.Rows) != 100000 {
			b.Fatal("fig3 covers all 100K tuple ids")
		}
	}
}

func BenchmarkFig04StockPMFZoom(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := experiments.Fig4(1)
		if len(s.Rows) != 10000 {
			b.Fatal("fig4 covers tuples 1..10000")
		}
	}
}

func BenchmarkFig05StockCDF(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := experiments.Fig5(200)
		last := s.Rows[len(s.Rows)-1]
		if math.Abs(last[1]-1) > 1e-9 {
			b.Fatal("CDF must reach 1")
		}
	}
}

func BenchmarkFig06CustomerPMF(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := experiments.Fig6(1)
		if len(s.Rows) != 3000 {
			b.Fatal("fig6 covers 3000 customers")
		}
	}
}

func BenchmarkFig07CustomerCDF(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := experiments.Fig7(200)
		if len(s.Rows) != 201 {
			b.Fatal("unexpected point count")
		}
	}
}

func BenchmarkFig08MissRates(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s, err := experiments.Fig8(sharedStudy)
		if err != nil {
			b.Fatal(err)
		}
		if len(s.Rows) != len(sharedStudy.Opts.BufferMB) {
			b.Fatal("one row per buffer size")
		}
	}
}

func BenchmarkTable3AccessCounts(b *testing.B) {
	opts := benchOptions()
	for i := 0; i < b.N; i++ {
		s, err := experiments.Table3(opts)
		if err != nil {
			b.Fatal(err)
		}
		if len(s.Rows) != 9 {
			b.Fatal("table3 lists nine relations")
		}
	}
}

func BenchmarkTable4VisitCounts(b *testing.B) {
	sys := model.DefaultSystemParams()
	for i := 0; i < b.N; i++ {
		s, err := experiments.Table4(sharedStudy, sys, 20)
		if err != nil {
			b.Fatal(err)
		}
		if len(s.Rows) != 5 {
			b.Fatal("table4 lists five transaction types")
		}
	}
}

func BenchmarkFig09Throughput(b *testing.B) {
	sys := model.DefaultSystemParams()
	for i := 0; i < b.N; i++ {
		s, err := experiments.Fig9(sharedStudy, sys)
		if err != nil {
			b.Fatal(err)
		}
		last := s.Rows[len(s.Rows)-1]
		if last[2] < last[1]-1e-6 {
			b.Fatal("optimized packing must not lose to sequential")
		}
	}
}

func BenchmarkFig10PricePerf(b *testing.B) {
	sys := model.DefaultSystemParams()
	cost := model.DefaultCostModel()
	for i := 0; i < b.N; i++ {
		s, err := experiments.Fig10(sharedStudy, sys, cost)
		if err != nil {
			b.Fatal(err)
		}
		if m := experiments.Fig10Minima(s); len(m.Rows) != 4 {
			b.Fatal("four curves, four minima")
		}
	}
}

func BenchmarkFig11Scaleup(b *testing.B) {
	sys := model.DefaultSystemParams()
	nodes := []int{1, 2, 5, 10, 20, 30}
	for i := 0; i < b.N; i++ {
		s, err := experiments.Fig11(sharedStudy, sys, 32, nodes)
		if err != nil {
			b.Fatal(err)
		}
		last := s.Rows[len(s.Rows)-1]
		if !(last[3] < last[2] && last[2] <= last[1]) {
			b.Fatal("partitioned < replicated <= ideal must hold")
		}
	}
}

func BenchmarkFig12RemoteSensitivity(b *testing.B) {
	sys := model.DefaultSystemParams()
	nodes := []int{1, 2, 5, 10, 20, 30}
	probs := []float64{0.01, 0.05, 0.1, 0.5, 1.0}
	for i := 0; i < b.N; i++ {
		s, err := experiments.Fig12(sharedStudy, sys, 32, nodes, probs)
		if err != nil {
			b.Fatal(err)
		}
		if len(s.Rows) != len(nodes) {
			b.Fatal("one row per node count")
		}
	}
}

func BenchmarkTable6Table7Distributed(b *testing.B) {
	nodes := []int{2, 5, 10, 20, 30}
	for i := 0; i < b.N; i++ {
		s := experiments.Tables6and7(nodes)
		if len(s.Rows) != len(nodes) {
			b.Fatal("one row per node count")
		}
	}
}

func BenchmarkAppendixA3ClosedForm(b *testing.B) {
	p := nurand.Params{A: 8191, X: 0, Y: 1<<17 - 1} // power-of-two case
	for i := 0; i < b.N; i++ {
		pmf := nurand.ClosedFormPMF(p)
		if len(pmf) != 1<<17 {
			b.Fatal("wrong support")
		}
	}
}

// BenchmarkSkewHeadlines regenerates the Section 3 headline numbers that
// anchor the whole paper (84/71/39% and 75/59/28%).
func BenchmarkSkewHeadlines(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := experiments.SkewHeadlines()
		if math.Abs(s.Rows[0][1]-0.84) > 0.03 {
			b.Fatalf("tuple-level 20%% share drifted: %v", s.Rows[0][1])
		}
	}
}

// BenchmarkPolicyAblation measures the Section 4 hypothesis experiment
// (replacement-policy sensitivity of the packing gap).
func BenchmarkPolicyAblation(b *testing.B) {
	opts := benchOptions()
	opts.Warehouses = 1
	opts.Batches, opts.BatchTxns, opts.WarmupTxns = 2, 2000, 1000
	for i := 0; i < b.N; i++ {
		s, err := experiments.PolicyAblation(opts, 16, []string{"lru", "clock"})
		if err != nil {
			b.Fatal(err)
		}
		if len(s.Rows) != 2 {
			b.Fatal("two policies, two rows")
		}
	}
}

// BenchmarkOptimalityGap measures the LRU-vs-Belady-OPT extension
// experiment (how far LRU sits from offline optimal on this workload).
func BenchmarkOptimalityGap(b *testing.B) {
	opts := benchOptions()
	opts.Warehouses = 1
	for i := 0; i < b.N; i++ {
		s, err := experiments.OptimalityGap(opts, []float64{8, 16}, 3000)
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range s.Rows {
			if row[2] > row[1]+1e-12 {
				b.Fatal("OPT must lower-bound LRU")
			}
		}
	}
}

// BenchmarkMixSensitivity measures the Section 2.1 mix-tuning experiment
// (draining vs non-draining New-Order relation).
func BenchmarkMixSensitivity(b *testing.B) {
	opts := benchOptions()
	opts.Warehouses = 1
	opts.Batches, opts.BatchTxns = 2, 4000
	for i := 0; i < b.N; i++ {
		s, err := experiments.MixSensitivity(opts, 16)
		if err != nil {
			b.Fatal(err)
		}
		if len(s.Rows) != 2 {
			b.Fatal("two mixes, two rows")
		}
	}
}

// BenchmarkAppendixAValidation measures the Monte-Carlo validation of the
// Appendix A expectations against the real workload generator.
func BenchmarkAppendixAValidation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s, err := experiments.AppendixAValidation(2, 4, 50_000, 13)
		if err != nil {
			b.Fatal(err)
		}
		if len(s.Rows) != 5 {
			b.Fatal("five Appendix A quantities")
		}
	}
}

// BenchmarkPageSizeStudy measures the 4K-vs-8K page-size extension.
func BenchmarkPageSizeStudy(b *testing.B) {
	opts := benchOptions()
	opts.Warehouses = 1
	opts.Batches, opts.BatchTxns, opts.WarmupTxns = 2, 3000, 1000
	opts.BufferMB = []float64{8, 24}
	for i := 0; i < b.N; i++ {
		s, err := experiments.PageSizeStudy(opts)
		if err != nil {
			b.Fatal(err)
		}
		if len(s.Rows) != 2 {
			b.Fatal("two buffer sizes, two rows")
		}
	}
}

// BenchmarkQueueSim measures the discrete-event queueing simulator that
// validates the response-time model.
func BenchmarkQueueSim(b *testing.B) {
	sys := model.DefaultSystemParams()
	d := model.StaticDemands(model.AnalyticReadIOs(model.AnalyticMissRates{
		MC: 0.5, MI: 0.01, MS: 0.3, MO: 0.2, ML: 0.1, MNO: 0.01,
	}))
	tp := model.MaxThroughput(sys, d, nil)
	for i := 0; i < b.N; i++ {
		res, err := queuesim.Run(queuesim.Config{
			Sys: sys, Demands: d, Lambda: tp.TotalPerSec * 0.6, DiskArms: 8,
			Transactions: 5000, WarmupTransactions: 500, Seed: uint64(i + 1),
		})
		if err != nil {
			b.Fatal(err)
		}
		if res.Completed != 5000 {
			b.Fatalf("completed %d", res.Completed)
		}
	}
}

// BenchmarkStackDistanceSim measures the core single-pass simulator on the
// raw reference stream (accesses/op reported via custom metric).
func BenchmarkStackDistanceSim(b *testing.B) {
	opts := benchOptions()
	for i := 0; i < b.N; i++ {
		_, err := sim.RunCurve(sim.CurveConfig{
			Workload:        tpccmodel.DefaultWorkload(1, 7),
			Packing:         sim.PackSequential,
			CapacitiesPages: []int64{1024, 4096},
			WarmupTxns:      500,
			Batches:         2,
			BatchTxns:       2000,
			Level:           opts.Level,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineMixedWorkload measures the executable engine end to end:
// transactions per second on the loaded single-warehouse database.
func BenchmarkEngineMixedWorkload(b *testing.B) {
	eng, err := tpccmodel.OpenEngine(tpccmodel.EngineConfig{
		Warehouses: 1, PageSize: 4096, BufferPages: 1 << 16,
	})
	if err != nil {
		b.Fatal(err)
	}
	if err := eng.Load(1); err != nil {
		b.Fatal(err)
	}
	rn := tpccmodel.NewEngineRunner(eng, 5, tpcc.DefaultMix())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rn.RunOne(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineNewOrder isolates the benchmark's metric transaction.
func BenchmarkEngineNewOrder(b *testing.B) {
	eng, err := tpccmodel.OpenEngine(tpccmodel.EngineConfig{
		Warehouses: 1, PageSize: 4096, BufferPages: 1 << 16,
	})
	if err != nil {
		b.Fatal(err)
	}
	if err := eng.Load(1); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.NewOrder(newOrderInput(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// newOrderInput builds a deterministic New-Order input.
func newOrderInput(i int) tpccmodel.EngineNewOrderInput {
	in := tpccmodel.EngineNewOrderInput{W: 0, D: int64(i % 10), C: int64(i % 3000)}
	for l := 0; l < 10; l++ {
		in.Items = append(in.Items, tpccmodel.EngineOrderItem{
			IID: int64((i*10 + l) % 100000), SupplyW: 0, Qty: 5,
		})
	}
	return in
}
