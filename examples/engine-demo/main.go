// Engine-demo runs real TPC-C transactions on the executable storage
// engine: load a warehouse, execute a mixed workload on four goroutines
// under strict two-phase locking, inspect per-relation buffer behaviour,
// then pull the plug and recover from the write-ahead log.
package main

import (
	"fmt"
	"log"
	"time"

	"tpccmodel"
)

func main() {
	eng, err := tpccmodel.OpenEngine(tpccmodel.EngineConfig{
		Warehouses: 1, PageSize: 4096, BufferPages: 8192,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Print("loading 1 warehouse (100K items, 100K stock, 30K customers, 30K orders)... ")
	start := time.Now()
	if err := eng.Load(2026); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("done in %v\n", time.Since(start).Round(time.Millisecond))

	fmt.Println("running 5,000 mixed transactions on 4 workers...")
	start = time.Now()
	if err := tpccmodel.RunEngineConcurrent(eng, 1, tpccmodel.DefaultMix(), 5000, 4); err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)
	fmt.Printf("%.0f txn/s, %d commits, %d deadlock aborts\n",
		5000/elapsed.Seconds(), eng.Commits(), eng.Aborts())

	acq, waits, deadlocks := eng.LockCounts()
	fmt.Printf("locks: %d acquired, %d waits, %d deadlocks\n", acq, waits, deadlocks)

	fmt.Println("\nper-relation buffer behaviour (8192-page pool):")
	for rel, s := range eng.RelationStats() {
		if s.Accesses() == 0 {
			continue
		}
		fmt.Printf("  %-11s %8d accesses, miss rate %.4f\n", rel, s.Accesses(), s.MissRate())
	}

	// Crash: every unflushed page is lost; the WAL brings committed
	// state back.
	ordersBefore := eng.Heap(tpccmodel.Order).Live()
	fmt.Printf("\ncrashing with %d orders on record... ", ordersBefore)
	if err := eng.Crash(); err != nil {
		log.Fatal(err)
	}
	if err := eng.Recover(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recovered: %d orders (must match)\n", eng.Heap(tpccmodel.Order).Live())

	// And the engine keeps serving.
	if err := tpccmodel.RunEngineConcurrent(eng, 2, tpccmodel.DefaultMix(), 500, 4); err != nil {
		log.Fatal(err)
	}
	fmt.Println("500 post-recovery transactions: ok")
}
