// Latency-planning extends the paper's throughput-only analysis with
// response times: how close to the 80%-utilization operating point can the
// system run before latency blows up, and do the analytic estimates hold
// up against a discrete-event simulation?
package main

import (
	"fmt"
	"log"

	"tpccmodel"
)

func main() {
	// Miss rates from a quick buffer simulation at one size.
	curve, err := tpccmodel.RunMissCurve(tpccmodel.MissCurveConfig{
		Workload:        tpccmodel.DefaultWorkload(1, 7),
		Packing:         tpccmodel.PackOptimized,
		CapacitiesPages: []int64{8192},
		WarmupTxns:      2000,
		Batches:         2,
		BatchTxns:       4000,
		Level:           0.9,
	})
	if err != nil {
		log.Fatal(err)
	}
	sys := tpccmodel.DefaultSystemParams()
	d := tpccmodel.DemandsAt(curve, 0)
	tp := tpccmodel.MaxThroughput(sys, d)
	fmt.Printf("operating point: %.0f new-order tpm at %.0f%% CPU\n",
		tp.NewOrderPerMin, sys.MaxCPUUtil*100)

	const arms = 8
	fmt.Println("\nload%\tanalytic_ms\tsimulated_ms\tdelivery_ms(sim)")
	for _, frac := range []float64{0.3, 0.5, 0.7, 0.85, 0.95} {
		lambda := frac * tp.TotalPerSec / sys.MaxCPUUtil
		ana, err := tpccmodel.ResponseTime(sys, d, lambda, arms)
		if err != nil {
			log.Fatal(err)
		}
		simr, err := tpccmodel.RunQueueSim(tpccmodel.QueueSimConfig{
			Sys: sys, Demands: d, Lambda: lambda, DiskArms: arms,
			Transactions: 15000, WarmupTransactions: 1500, Seed: 42,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%.0f\t%.1f\t%.1f\t%.1f\n",
			frac*100, ana.MeanMs, simr.MeanResponseMs,
			simr.PerTxnResponseMs[tpccmodel.TxnDelivery])
	}
	fmt.Println("\nThe knee past ~85% load is why the paper quotes maximum")
	fmt.Println("throughput at 80% utilization rather than at saturation.")
}
