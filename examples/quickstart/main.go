// Quickstart walks the paper's whole pipeline in one sitting: quantify the
// TPC-C access skew, simulate the buffer pool, and turn miss rates into
// throughput and price/performance — the Section 3 → 4 → 5 chain.
package main

import (
	"fmt"
	"log"

	"tpccmodel"
)

func main() {
	// 1. Access skew (Section 3). The stock/item tuple ids come from
	// NU(8191, 1, 100000); compute the exact distribution and ask the
	// paper's question: what share of accesses hit the hottest 20%?
	pmf := tpccmodel.ExactPMF(tpccmodel.StockItemDistribution())
	lz := tpccmodel.NewLorenz(pmf)
	fmt.Printf("stock skew: hottest 20%% of tuples serve %.1f%% of accesses (paper: ~84%%)\n",
		lz.AccessShareOfHottest(0.20)*100)

	// 2. Buffer behaviour (Section 4). One stack-distance pass yields
	// the exact LRU miss rate at every buffer size; run it for both
	// packing strategies at a laptop-friendly scale.
	study := tpccmodel.NewStudy(tpccmodel.ReducedOptions())
	fig8, err := tpccmodel.Fig8(study)
	if err != nil {
		log.Fatal(err)
	}
	mid := fig8.Rows[len(fig8.Rows)/2]
	fmt.Printf("at %.0fMB: stock miss rate %.3f sequential vs %.3f optimized packing\n",
		mid[0], mid[3], mid[4])

	// 3. Throughput and price/performance (Section 5). Feed the miss
	// rates into the 10 MIPS / 80%-utilization model and find the
	// cheapest memory/disk configuration.
	sys := tpccmodel.DefaultSystemParams()
	fig9, err := tpccmodel.Fig9(study, sys)
	if err != nil {
		log.Fatal(err)
	}
	last := fig9.Rows[len(fig9.Rows)-1]
	fmt.Printf("max throughput at %.0fMB: %.0f new-order tpm\n", last[0], last[2])

	fig10, err := tpccmodel.Fig10(study, sys, tpccmodel.DefaultCostModel())
	if err != nil {
		log.Fatal(err)
	}
	best := tpccmodel.Fig10Minima(fig10)
	fmt.Printf("optimal configuration (optimized packing, with growth storage): %.0fMB buffer at $%.0f/tpm\n",
		best.Rows[3][1], best.Rows[3][2])

	// 4. Distributed scale-up (Section 5.3): replicate the read-only
	// Item relation and scale-up stays within a few percent of linear.
	curve, err := study.Curve(tpccmodel.PackOptimized)
	if err != nil {
		log.Fatal(err)
	}
	d := tpccmodel.DemandsAt(curve, len(fig8.Rows)-1)
	pts := tpccmodel.Scaleup(sys, d, tpccmodel.DefaultDistConfig(0, true), []int{1, 10, 30})
	for _, pt := range pts {
		fmt.Printf("%2d nodes: %.0f tpm total (%.1f%% of linear)\n",
			pt.Nodes, pt.TotalNewOrderPerMin, pt.ScaleupEfficiency*100)
	}
}
