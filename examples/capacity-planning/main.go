// Capacity-planning applies the paper's Section 5.2 methodology to a
// present-day hardware quote: given your own disk/CPU/memory prices, find
// the database-buffer size that minimizes hardware dollars per transaction
// and see whether the configuration is disk-bandwidth or storage-capacity
// bound.
package main

import (
	"fmt"
	"log"

	"tpccmodel"
)

func main() {
	// Hypothetical modern-ish prices: the absolute numbers don't matter
	// (the paper stresses this); the methodology does.
	cost := tpccmodel.CostModel{
		DiskPrice: 300,   // one NVMe device
		DiskBytes: 1e12,  // 1 TB
		CPUPrice:  2000,  // one socket
		MemPerMB:  0.004, // ~$4/GB
	}
	sys := tpccmodel.DefaultSystemParams()
	sys.MIPS = 50 // a faster processor shifts the balance toward disks

	study := tpccmodel.NewStudy(tpccmodel.ReducedOptions())
	fig10, err := tpccmodel.Fig10(study, sys, cost)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("buffer_MB\t$/tpm (optimized packing, with growth storage)")
	for _, row := range fig10.Rows {
		fmt.Printf("%.0f\t%.4f\n", row[0], row[4])
	}
	best := tpccmodel.Fig10Minima(fig10)
	fmt.Printf("\nbest: %.0fMB buffer at $%.4f per new-order/min\n",
		best.Rows[3][1], best.Rows[3][2])

	// Where does the disk count come from at the optimum? Re-evaluate
	// the point to see the binding constraint.
	curve, err := study.Curve(tpccmodel.PackOptimized)
	if err != nil {
		log.Fatal(err)
	}
	// Index of the best buffer size in the sweep grid.
	bestIdx := 0
	for i, row := range fig10.Rows {
		if row[0] == best.Rows[3][1] {
			bestIdx = i
		}
	}
	d := tpccmodel.DemandsAt(curve, bestIdx)
	tp := tpccmodel.MaxThroughput(sys, d)
	fmt.Printf("throughput there: %.0f new-order tpm, %.2f read I/Os per txn\n",
		tp.NewOrderPerMin, tp.AvgReadIOsPerTxn)
	fmt.Println("\nWith big cheap disks the paper's conclusion flips toward bandwidth-bound:")
	fmt.Println("optimized packing keeps paying because it removes I/Os, not bytes.")
}
