// Custom-policy shows how to plug a user-defined buffer replacement policy
// into the simulation pipeline and test the paper's Section 4 hypothesis
// that "more sophisticated replacement policies could result in an even
// larger difference between optimized packing of tuples and non-optimized
// packing". It implements a random-eviction policy from scratch and
// compares it against the built-ins.
//
// This example lives inside the module and uses the internal composition
// points (buffer.Policy, workload.Generator, sim.BuildMappers) directly.
package main

import (
	"fmt"
	"log"

	"tpccmodel/internal/buffer"
	"tpccmodel/internal/core"
	"tpccmodel/internal/rng"
	"tpccmodel/internal/sim"
	"tpccmodel/internal/workload"
)

// randomPolicy evicts a uniformly random resident page — the classic
// baseline that ignores both recency and frequency.
type randomPolicy struct {
	capacity int64
	pages    []core.PageID
	idx      map[core.PageID]int
	r        *rng.RNG
}

func newRandomPolicy(capacity int64, seed uint64) *randomPolicy {
	return &randomPolicy{
		capacity: capacity,
		idx:      make(map[core.PageID]int, capacity),
		r:        rng.New(seed),
	}
}

func (p *randomPolicy) Name() string    { return "random" }
func (p *randomPolicy) Capacity() int64 { return p.capacity }
func (p *randomPolicy) Len() int64      { return int64(len(p.pages)) }

func (p *randomPolicy) Reset() {
	p.pages = p.pages[:0]
	p.idx = make(map[core.PageID]int, p.capacity)
}

func (p *randomPolicy) Access(id core.PageID) bool {
	if _, ok := p.idx[id]; ok {
		return true
	}
	if int64(len(p.pages)) >= p.capacity {
		v := int(p.r.Int63n(int64(len(p.pages))))
		victim := p.pages[v]
		last := len(p.pages) - 1
		p.pages[v] = p.pages[last]
		p.idx[p.pages[v]] = v
		p.pages = p.pages[:last]
		delete(p.idx, victim)
	}
	p.idx[id] = len(p.pages)
	p.pages = append(p.pages, id)
	return false
}

// runPolicy drives the TPC-C reference stream through any buffer.Policy
// and returns the overall miss rate.
func runPolicy(pol buffer.Policy, packing sim.Packing, txns int) float64 {
	cfg := workload.DefaultConfig(1, 42)
	gen, err := workload.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	mappers := sim.BuildMappers(cfg.DB, packing, cfg.Seed)
	var txn workload.Txn
	var acc, miss int64
	for i := 0; i < txns; i++ {
		gen.Next(&txn)
		for _, a := range txn.Accesses {
			page := core.MakePageID(a.Rel, mappers[a.Rel].Page(a.Tuple))
			acc++
			if !pol.Access(page) {
				miss++
			}
		}
	}
	return float64(miss) / float64(acc)
}

func main() {
	const pages = 4096 // 16MB of 4K pages over a 1-warehouse database
	const txns = 20000

	fmt.Println("policy\tseq_miss\topt_miss\tgap (Section 4 hypothesis: smarter policy => bigger gap)")
	run := func(name string, mk func() buffer.Policy) {
		seq := runPolicy(mk(), sim.PackSequential, txns)
		opt := runPolicy(mk(), sim.PackOptimized, txns)
		fmt.Printf("%s\t%.4f\t%.4f\t%.4f\n", name, seq, opt, seq-opt)
	}

	run("random", func() buffer.Policy { return newRandomPolicy(pages, 7) })
	for _, name := range buffer.PolicyNames() {
		n := name
		run(n, func() buffer.Policy {
			p, err := buffer.NewPolicy(n, pages)
			if err != nil {
				log.Fatal(err)
			}
			return p
		})
	}
}
