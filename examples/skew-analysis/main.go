// Skew-analysis explores how the NURand parameter A controls access skew —
// the knob behind the paper's Figures 3-7 — and how page size and packing
// interact with it. Useful when adapting the methodology to workloads with
// different hot-set sizes.
package main

import (
	"fmt"

	"tpccmodel"
)

func main() {
	fmt.Println("A parameter vs skew over 100,000 tuples (NU(A,1,100000)):")
	fmt.Println("A\thot20%\thot10%\thot2%\tGini")
	for _, a := range []int64{1023, 4095, 8191, 16383, 32767} {
		p := tpccmodel.NURandParams{A: a, X: 1, Y: 100000}
		lz := tpccmodel.NewLorenz(tpccmodel.ExactPMF(p))
		fmt.Printf("%d\t%.3f\t%.3f\t%.3f\t%.3f\n",
			a,
			lz.AccessShareOfHottest(0.20),
			lz.AccessShareOfHottest(0.10),
			lz.AccessShareOfHottest(0.02),
			lz.Gini())
	}

	// The benchmark's own distributions, with the paper's headline
	// packing comparison: sequential packing dilutes skew at the page
	// level; hotness-sorted packing recovers it.
	fmt.Println("\npaper headline (stock relation, 13 tuples per 4K page):")
	s := tpccmodel.SkewHeadlines()
	_ = s.WriteTSV(printer{})

	// The customer relation superimposes by-id and by-name access; its
	// skew is visibly milder than stock's.
	cust := tpccmodel.NewLorenz(tpccmodel.CustomerAccessPMF())
	stock := tpccmodel.NewLorenz(tpccmodel.ExactPMF(tpccmodel.StockItemDistribution()))
	fmt.Printf("\nhottest 20%% share: stock %.3f vs customer %.3f (paper: customer is less skewed)\n",
		stock.AccessShareOfHottest(0.20), cust.AccessShareOfHottest(0.20))
}

// printer adapts stdout to io.Writer for Series.WriteTSV.
type printer struct{}

func (printer) Write(p []byte) (int, error) {
	fmt.Print(string(p))
	return len(p), nil
}
