// Distributed-scaleup sizes a cluster with the paper's Section 5.3 /
// Appendix A model: how much throughput do N nodes deliver, how much does
// replicating the read-only Item relation buy, and how sensitive is the
// answer to the fraction of remote stock accesses?
package main

import (
	"fmt"
	"log"

	"tpccmodel"
)

func main() {
	study := tpccmodel.NewStudy(tpccmodel.ReducedOptions())
	curve, err := study.Curve(tpccmodel.PackOptimized)
	if err != nil {
		log.Fatal(err)
	}
	opts := study.Opts
	d := tpccmodel.DemandsAt(curve, len(opts.BufferMB)-1)
	sys := tpccmodel.DefaultSystemParams()

	nodes := []int{1, 2, 4, 8, 16, 32}
	rep := tpccmodel.Scaleup(sys, d, tpccmodel.DefaultDistConfig(0, true), nodes)
	part := tpccmodel.Scaleup(sys, d, tpccmodel.DefaultDistConfig(0, false), nodes)

	fmt.Println("nodes\tideal_tpm\treplicated\tpartitioned\trep_gain")
	for i := range nodes {
		gain := rep[i].TotalNewOrderPerMin/part[i].TotalNewOrderPerMin - 1
		fmt.Printf("%d\t%.0f\t%.0f\t%.0f\t%+.1f%%\n",
			nodes[i], rep[i].IdealNewOrderPerMin,
			rep[i].TotalNewOrderPerMin, part[i].TotalNewOrderPerMin, gain*100)
	}

	// The benchmark's 1% remote-stock rate is generous to distributed
	// systems (the paper's closing warning). What if your workload
	// cross-ships more often?
	fmt.Println("\nremote_prob\ttpm_at_16_nodes\tvs_benchmark")
	base := 0.0
	for _, p := range []float64{0.01, 0.10, 0.25, 0.50, 1.00} {
		cfg := tpccmodel.DefaultDistConfig(16, true)
		cfg.RemoteStockProb = p
		pts := tpccmodel.Scaleup(sys, d, cfg, []int{16})
		tpm := pts[0].TotalNewOrderPerMin
		if base == 0 {
			base = tpm
		}
		fmt.Printf("%.2f\t%.0f\t%.1f%%\n", p, tpm, tpm/base*100)
	}
}
