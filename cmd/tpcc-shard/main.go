// Command tpcc-shard runs the engine as a warehouse-sharded cluster: one
// storage engine per warehouse group, a deterministic router classifying
// transactions local/remote per the benchmark mix, and a presumed-abort
// two-phase commit layered on each shard's WAL.
//
// Modes:
//
//	(default)  drive a benchmark run and print per-shard statistics plus
//	           the measured Appendix A cross-shard rates
//	-xval      run the Appendix A validation gate: measured remote-call
//	           rates must match model.DistConfig.Expect() within Z
//	           standard errors (exit 1 on disagreement)
//	-torture   run the shard-kill torture campaign: kills at 2PC protocol
//	           points, cluster-wide power loss, recovery, in-doubt
//	           resolution, and invariant checks (exit 1 on violation)
//
// Usage:
//
//	tpcc-shard -shards 4 -txns 5000 -workers 4
//	tpcc-shard -xval -shards 3 -txns 4000 -remote-stock 0.1 -remote-pay 0.3
//	tpcc-shard -torture -seeds 3 -schedules 6
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"tpccmodel/internal/cliutil"
	"tpccmodel/internal/engine/db"
	"tpccmodel/internal/engine/shard"
	"tpccmodel/internal/tpcc"
	"tpccmodel/internal/xval"
)

func main() {
	var (
		shards      = flag.Int("shards", 3, "shard (node) count N")
		wh          = flag.Int("warehouses", 1, "warehouses per shard")
		txns        = flag.Int("txns", 2000, "transactions to attempt")
		workers     = flag.Int("workers", 4, "concurrent workers")
		seed        = flag.Uint64("seed", 1, "random seed")
		remoteStock = flag.Float64("remote-stock", -1, "remote-supplier probability per item (-1 = benchmark 1%)")
		remotePay   = flag.Float64("remote-pay", -1, "remote-customer probability per Payment (-1 = benchmark 15%)")
		xvalMode    = flag.Bool("xval", false, "run the Appendix A cross-shard validation gate")
		tortureMode = flag.Bool("torture", false, "run the shard-kill torture campaign")
		seeds       = flag.Int("seeds", 3, "torture: independent cluster seeds")
		schedules   = flag.Int("schedules", 6, "torture: kill schedules per seed")
		z           = flag.Float64("z", 5, "xval: tolerance in standard errors")
		jsonOut     = flag.Bool("json", false, "emit JSON instead of TSV (xval mode)")
		verbose     = flag.Bool("v", false, "print per-schedule torture results")
		ccFlag      = flag.String("cc", "2pl", "per-shard concurrency control mode: 2pl, mvcc or ssi")
	)
	cpuProf, memProf := cliutil.ProfileFlags()
	mutexProf, blockProf := cliutil.ContentionProfileFlags()
	flag.Parse()

	const tool = "tpcc-shard"
	cliutil.RequirePositive(tool, "shards", int64(*shards))
	cliutil.RequirePositive(tool, "warehouses", int64(*wh))
	cliutil.RequirePositive(tool, "txns", int64(*txns))
	cliutil.RequirePositive(tool, "workers", int64(*workers))
	if *remoteStock >= 0 {
		cliutil.RequireProb(tool, "remote-stock", *remoteStock)
	}
	if *remotePay >= 0 {
		cliutil.RequireProb(tool, "remote-pay", *remotePay)
	}
	cliutil.RequirePositiveFloat(tool, "z", *z)
	if *xvalMode && *tortureMode {
		cliutil.Fail(tool, "-xval and -torture are mutually exclusive")
	}
	ccMode, err := db.ParseCCMode(*ccFlag)
	if err != nil {
		cliutil.Fail(tool, err.Error())
	}

	stopProf := cliutil.StartProfiles(tool, *cpuProf, *memProf)
	stopContention := cliutil.StartContentionProfiles(tool, *mutexProf, *blockProf)

	switch {
	case *tortureMode:
		cliutil.RequirePositive(tool, "seeds", int64(*seeds))
		cliutil.RequirePositive(tool, "schedules", int64(*schedules))
		runTorture(*shards, *wh, *txns, *workers, *seed, *seeds, *schedules,
			*remoteStock, *remotePay, ccMode, *verbose)
	case *xvalMode:
		runXval(*shards, *wh, *txns, *workers, *seed, *remoteStock, *remotePay, *z, *jsonOut)
	default:
		runBench(*shards, *wh, *txns, *workers, *seed, *remoteStock, *remotePay, ccMode)
	}
	// Failure paths exit(1) above without writing profiles — a failed
	// run's contention profile is not the one being measured.
	stopProf()
	stopContention()
}

func runBench(shards, wh, txns, workers int, seed uint64, remoteStock, remotePay float64, cc db.CCMode) {
	c, err := shard.Open(shard.Config{
		Shards:             shards,
		WarehousesPerShard: wh,
		PageSize:           4096,
		BufferPages:        4096,
		Seed:               seed,
		LockWaitTimeout:    50 * time.Millisecond,
		CC:                 cc,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "tpcc-shard:", err)
		os.Exit(1)
	}
	st, err := shard.Run(c, seed, tpcc.DefaultMix(), txns, workers,
		db.DefaultRetryPolicy(), remoteStock, remotePay)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tpcc-shard:", err)
		os.Exit(1)
	}
	if n := c.Quiesce(time.Second); n > 0 {
		fmt.Fprintf(os.Stderr, "tpcc-shard: %d participant commits still pending\n", n)
		os.Exit(1)
	}
	if err := c.CheckAll(); err != nil {
		fmt.Fprintln(os.Stderr, "tpcc-shard: consistency:", err)
		os.Exit(1)
	}
	acked := st.Acknowledged()
	fmt.Printf("cluster: %d shards x %d warehouses, %d txns acked in %v (%.0f txn/s), %d retries, %d sheds\n",
		shards, wh, acked, st.Elapsed.Round(time.Millisecond),
		float64(acked)/st.Elapsed.Seconds(), st.Retries, st.Sheds)
	fmt.Println("shard\tlocal\tdist\tparticipant\taborts\tsheds")
	for _, s := range c.Shards() {
		ss := s.Stats()
		fmt.Printf("%d\t%d\t%d\t%d\t%d\t%d\n", s.ID,
			ss.LocalCommits, ss.DistCommits, ss.ParticipantCommits,
			ss.DistAborts, ss.Sheds+ss.DownSheds)
	}
	m := st.Xval
	fmt.Printf("measured: E[R_s]=%.4f RC_stock=%.4f L_stock=%.4f U_stock=%.4f RC_cust=%.4f U_cust=%.4f\n",
		m.ERs, m.RCStock, m.LStock, m.UStock, m.RCCust, m.UCust)
}

func runXval(shards, wh, txns, workers int, seed uint64, remoteStock, remotePay, z float64, jsonOut bool) {
	cfg := xval.DefaultDistGateConfig()
	cfg.Shards = shards
	cfg.WarehousesPerShard = wh
	cfg.Txns = txns
	cfg.Workers = workers
	cfg.Seed = seed
	cfg.RemoteStockProb = remoteStock
	cfg.RemotePaymentProb = remotePay
	cfg.Z = z
	res, err := xval.RunDistGate(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tpcc-shard:", err)
		os.Exit(1)
	}
	if jsonOut {
		err = res.WriteJSON(os.Stdout)
	} else {
		err = res.WriteTSV(os.Stdout)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "tpcc-shard:", err)
		os.Exit(1)
	}
	if gateErr := res.Err(); gateErr != nil {
		fmt.Fprintln(os.Stderr, "tpcc-shard:", gateErr)
		os.Exit(1)
	}
}

func runTorture(shards, wh, txns, workers int, seed uint64, seeds, schedules int,
	remoteStock, remotePay float64, cc db.CCMode, verbose bool) {
	cfg := shard.DefaultTortureConfig()
	cfg.CC = cc
	cfg.BaseSeed = seed
	cfg.Seeds = seeds
	cfg.Schedules = schedules
	cfg.Txns = txns
	cfg.Workers = workers
	cfg.Shards = shards
	cfg.WarehousesPerShard = wh
	if remoteStock >= 0 {
		cfg.RemoteStockProb = remoteStock
	}
	if remotePay >= 0 {
		cfg.RemotePaymentProb = remotePay
	}
	start := time.Now()
	rep, err := shard.Torture(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tpcc-shard:", err)
		os.Exit(1)
	}
	if verbose {
		for _, s := range rep.Schedules {
			fmt.Printf("seed=%d schedule=%d kill=%s@shard%d(coord=%v) fired=%v acked=%d sheds=%d in-doubt=%d violations=%d\n",
				s.Seed, s.Schedule, s.Plan.Point, s.Plan.Victim, s.Plan.CoordinatorVictim,
				s.Fired, s.Acked, s.Sheds, s.InDoubt, len(s.Violations))
		}
	}
	fmt.Println(rep.Summary())
	fmt.Printf("elapsed: %v\n", time.Since(start).Round(time.Millisecond))
	if !rep.OK() {
		for _, v := range rep.Violations {
			fmt.Fprintln(os.Stderr, "violation:", v)
		}
		os.Exit(1)
	}
}
