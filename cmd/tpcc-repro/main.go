// Command tpcc-repro regenerates the paper's complete evaluation — every
// table and figure — in one process, sharing the expensive buffer
// simulations across figures, and writes one TSV per experiment into an
// output directory.
//
// Experiments are computed by a worker pool (-workers) and written in a
// fixed order afterwards, so the emitted files are byte-identical for any
// worker count. With -bench-sweep it instead times the replacement-policy
// ablation grid at 1/2/4/8 workers and writes a JSON report.
//
// Usage:
//
//	tpcc-repro -scale full -out results/        # paper scale (minutes)
//	tpcc-repro -scale reduced -out results-reduced/
//	tpcc-repro -bench-sweep BENCH_sweep.json
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"tpccmodel/internal/cliutil"
	"tpccmodel/internal/core"
	"tpccmodel/internal/experiments"
	"tpccmodel/internal/model"
	"tpccmodel/internal/parallel"
	"tpccmodel/internal/sim"
	"tpccmodel/internal/workload"
)

// namedSeries pairs an output file stem with its computed series. A job may
// produce several (fig10 also yields its minima summary).
type namedSeries struct {
	name string
	s    experiments.Series
}

type job struct {
	label string
	run   func() ([]namedSeries, error)
}

func one(name string, s experiments.Series, err error) ([]namedSeries, error) {
	if err != nil {
		return nil, fmt.Errorf("%s: %w", name, err)
	}
	return []namedSeries{{name, s}}, nil
}

func main() {
	var (
		scale        = flag.String("scale", "reduced", "full (paper: 20 warehouses, 30x100K txns) or reduced")
		outDir       = flag.String("out", "results", "output directory for TSV files")
		skipAblation = flag.Bool("skip-ablation", false, "skip the slow replacement-policy ablation")
		workers      = flag.Int("workers", 0, "parallel sweep workers (0 = one per CPU)")
		benchSweep   = flag.String("bench-sweep", "", "instead of reproducing the paper, benchmark the ablation sweep at 1/2/4/8 workers and write this JSON report")
		benchKernel  = flag.String("bench-kernel", "", "instead of reproducing the paper, benchmark the stack-distance kernel (seed vs dense pre-mapped) and write this JSON report")
	)
	cpuprofile, memprofile := cliutil.ProfileFlags()
	flag.Parse()

	const tool = "tpcc-repro"
	w := cliutil.Workers(tool, *workers)
	stopProfiles := cliutil.StartProfiles(tool, *cpuprofile, *memprofile)
	defer stopProfiles()

	if *benchSweep != "" {
		if err := runBenchSweep(*benchSweep); err != nil {
			fatal(err)
		}
		return
	}
	if *benchKernel != "" {
		if err := runBenchKernel(*benchKernel); err != nil {
			fatal(err)
		}
		return
	}

	var opts experiments.Options
	switch *scale {
	case "full":
		opts = experiments.FullScale()
	case "reduced":
		opts = experiments.Reduced()
	default:
		cliutil.Fail(tool, "unknown scale %q (want full or reduced)", *scale)
	}
	opts.Workers = w
	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		fatal(err)
	}

	sys := model.DefaultSystemParams()
	cost := model.DefaultCostModel()
	st := experiments.NewStudy(opts)

	ablOpts := opts
	// The direct simulation re-runs per policy per packing; cap its cost at
	// any scale.
	if ablOpts.BatchTxns > 20000 {
		ablOpts.Batches, ablOpts.BatchTxns, ablOpts.WarmupTxns = 5, 20000, 20000
	}

	jobs := []job{
		{"table1", func() ([]namedSeries, error) {
			return one("table1", experiments.Table1(opts.Warehouses, opts.PageSize), nil)
		}},
		{"fig3", func() ([]namedSeries, error) { return one("fig3", experiments.Fig3(10), nil) }},
		{"fig4", func() ([]namedSeries, error) { return one("fig4", experiments.Fig4(10), nil) }},
		{"fig5", func() ([]namedSeries, error) { return one("fig5", experiments.Fig5(200), nil) }},
		{"fig6", func() ([]namedSeries, error) { return one("fig6", experiments.Fig6(1), nil) }},
		{"fig7", func() ([]namedSeries, error) { return one("fig7", experiments.Fig7(200), nil) }},
		{"skew-headlines", func() ([]namedSeries, error) {
			return one("skew-headlines", experiments.SkewHeadlines(), nil)
		}},
		{"tables6-7", func() ([]namedSeries, error) {
			return one("tables6-7", experiments.Tables6and7([]int{2, 5, 10, 20, 30}), nil)
		}},
		{"table3", func() ([]namedSeries, error) {
			s, err := experiments.Table3(opts)
			return one("table3", s, err)
		}},
		{"fig8", func() ([]namedSeries, error) {
			s, err := experiments.Fig8(st)
			return one("fig8", s, err)
		}},
		{"analytic-vs-sim", func() ([]namedSeries, error) {
			s, err := experiments.AnalyticVsSimulated(st)
			return one("analytic-vs-sim", s, err)
		}},
		{"fig9", func() ([]namedSeries, error) {
			s, err := experiments.Fig9(st, sys)
			return one("fig9", s, err)
		}},
		{"fig10", func() ([]namedSeries, error) {
			fig10, err := experiments.Fig10(st, sys, cost)
			if err != nil {
				return nil, fmt.Errorf("fig10: %w", err)
			}
			return []namedSeries{
				{"fig10", fig10},
				{"fig10-minima", experiments.Fig10Minima(fig10)},
			}, nil
		}},
		{"table4", func() ([]namedSeries, error) {
			s, err := experiments.Table4(st, sys, 52)
			return one("table4", s, err)
		}},
		{"fig11", func() ([]namedSeries, error) {
			s, err := experiments.Fig11(st, sys, 102, []int{1, 2, 5, 10, 20, 30})
			return one("fig11", s, err)
		}},
		{"fig12", func() ([]namedSeries, error) {
			s, err := experiments.Fig12(st, sys, 102, []int{1, 2, 5, 10, 20, 30},
				[]float64{0.01, 0.05, 0.1, 0.5, 1.0})
			return one("fig12", s, err)
		}},
	}
	if !*skipAblation {
		jobs = append(jobs,
			job{"policy-ablation", func() ([]namedSeries, error) {
				s, err := experiments.PolicyAblation(ablOpts, 52,
					[]string{"lru", "fifo", "clock", "lfu", "2q", "slru"})
				return one("policy-ablation", s, err)
			}},
			job{"optimality-gap", func() ([]namedSeries, error) {
				s, err := experiments.OptimalityGap(ablOpts, []float64{13, 26, 52, 104}, 20000)
				return one("optimality-gap", s, err)
			}},
			job{"mix-sensitivity", func() ([]namedSeries, error) {
				s, err := experiments.MixSensitivity(ablOpts, 52)
				return one("mix-sensitivity", s, err)
			}},
			job{"response-validation", func() ([]namedSeries, error) {
				s, err := experiments.ResponseValidation(st, sys, len(opts.BufferMB)/2, 8,
					[]float64{0.2, 0.4, 0.6, 0.8, 0.9})
				return one("response-validation", s, err)
			}},
			job{"page-size", func() ([]namedSeries, error) {
				pageOpts := ablOpts
				pageOpts.BufferMB = []float64{13, 26, 52, 104}
				s, err := experiments.PageSizeStudy(pageOpts)
				return one("page-size", s, err)
			}},
			job{"appendix-a-validation", func() ([]namedSeries, error) {
				s, err := experiments.AppendixAValidation(opts.Warehouses, 3, 300_000, opts.Seed)
				return one("appendix-a-validation", s, err)
			}},
		)
	}

	// Phase 1: warm the shared curves once so concurrent jobs don't stack up
	// behind the two big buffer simulations.
	start := time.Now()
	fmt.Fprintf(os.Stderr, "[%s] buffer simulations (%d warehouses, %d x %d txns, 2 packings, %d workers)...\n",
		time.Now().Format("15:04:05"), opts.Warehouses, opts.Batches, opts.BatchTxns, w)
	if err := st.Prefetch(sim.PackSequential, sim.PackOptimized); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "  curves ready in %v\n", time.Since(start).Round(time.Millisecond))

	// Phase 2: compute every experiment on the pool. Results land by job
	// index; worker count and completion order cannot affect them.
	prog := parallel.NewProgress("experiments", len(jobs), os.Stderr)
	results, err := parallel.Map(w, len(jobs), func(i int) ([]namedSeries, error) {
		out, err := jobs[i].run()
		prog.Done()
		return out, err
	})
	if err != nil {
		fatal(err)
	}

	// Phase 3: write TSVs in the fixed job order.
	for _, res := range results {
		for _, ns := range res {
			path := filepath.Join(*outDir, ns.name+".tsv")
			f, err := os.Create(path)
			if err != nil {
				fatal(err)
			}
			if err := ns.s.WriteTSV(f); err != nil {
				fatal(err)
			}
			if err := f.Close(); err != nil {
				fatal(err)
			}
			fmt.Fprintf(os.Stderr, "wrote %s\n", path)
		}
	}
	fmt.Fprintf(os.Stderr, "all experiments complete in %v\n", time.Since(start).Round(time.Millisecond))
}

// runBenchSweep times the replacement-policy ablation grid (6 policies x 2
// packings at reduced scale) at 1, 2, 4, and 8 workers and writes a JSON
// report. The reference trace is recorded once untimed so every run measures
// pure sweep time, and each run's TSV bytes are compared against the serial
// run to document the determinism contract.
func runBenchSweep(path string) error {
	opts := experiments.Reduced()
	policies := []string{"lru", "fifo", "clock", "lfu", "2q", "slru"}

	type benchRun struct {
		Workers   int     `json:"workers"`
		Seconds   float64 `json:"seconds"`
		Speedup   float64 `json:"speedup_vs_serial"`
		Identical bool    `json:"output_identical_to_serial"`
	}
	report := struct {
		cliutil.Hardware
		Scale     string     `json:"scale"`
		GridCells int        `json:"grid_cells"`
		Runs      []benchRun `json:"runs"`
	}{
		Hardware:  cliutil.HardwareInfo(),
		Scale:     "reduced",
		GridCells: len(policies) * 2,
	}

	run := func(w int) (time.Duration, []byte, error) {
		o := opts
		o.Workers = w
		start := time.Now()
		s, err := experiments.PolicyAblation(o, 52, policies)
		if err != nil {
			return 0, nil, err
		}
		elapsed := time.Since(start)
		var buf bytes.Buffer
		if err := s.WriteTSV(&buf); err != nil {
			return 0, nil, err
		}
		return elapsed, buf.Bytes(), nil
	}

	// Untimed warmup records the shared reference trace.
	fmt.Fprintf(os.Stderr, "bench-sweep: warming shared trace (%d cores)...\n", report.Cores)
	if _, _, err := run(1); err != nil {
		return err
	}

	var serial []byte
	for _, w := range []int{1, 2, 4, 8} {
		elapsed, out, err := run(w)
		if err != nil {
			return err
		}
		if w == 1 {
			serial = out
		}
		r := benchRun{
			Workers:   w,
			Seconds:   elapsed.Seconds(),
			Identical: bytes.Equal(out, serial),
		}
		if len(report.Runs) > 0 {
			r.Speedup = report.Runs[0].Seconds / r.Seconds
		} else {
			r.Speedup = 1
		}
		report.Runs = append(report.Runs, r)
		fmt.Fprintf(os.Stderr, "bench-sweep: workers=%d %.3fs speedup=%.2fx identical=%v\n",
			w, r.Seconds, r.Speedup, r.Identical)
	}

	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", path)
	return nil
}

// renderCurveResult serializes every observable of a CurveResult so two
// kernels' outputs can be compared byte for byte.
func renderCurveResult(res *sim.CurveResult) []byte {
	var buf bytes.Buffer
	for rel := core.Relation(0); rel < core.NumRelations; rel++ {
		fmt.Fprintf(&buf, "rel %d acc %d\n", rel, res.RelAccesses(rel))
		for _, c := range res.Caps {
			fmt.Fprintf(&buf, "%.17g\n", res.MissRate(rel, c))
		}
		for i := range res.Caps {
			if iv, err := res.MissRateCI(rel, i); err == nil {
				fmt.Fprintf(&buf, "%.17g %.17g\n", iv.Mean, iv.HalfWidth)
			}
		}
	}
	for _, c := range res.Caps {
		fmt.Fprintf(&buf, "%.17g\n", res.Overall.MissRate(c))
	}
	for t := core.TxnType(0); t < core.NumTxnTypes; t++ {
		fmt.Fprintf(&buf, "txn %d n %d\n", t, res.TxnCount(t))
		for i := range res.Caps {
			fmt.Fprintf(&buf, "%.17g\n", res.TxnIOs(t, i))
		}
	}
	return buf.Bytes()
}

// runBenchKernel times one reduced-scale stack-distance simulation cell
// through the seed kernel (map-based StackSim, per-access tuple-to-page
// mapping, binary-searched capacity buckets) and the dense kernel
// (pre-mapped flat page ordinals, DenseStackSim, O(1) capacity lookup),
// checks their outputs are identical, and writes a JSON report in the same
// honest-timing format as -bench-sweep. The trace is recorded untimed; the
// one-off MapPages translation is timed separately since a sweep amortizes
// it across all cells sharing a (packing, page size).
func runBenchKernel(path string) error {
	opts := experiments.Reduced()
	wl := workload.DefaultConfig(opts.Warehouses, opts.Seed)
	wl.DB.PageSize = opts.PageSize
	caps := make([]int64, len(opts.BufferMB))
	for i, mb := range opts.BufferMB {
		caps[i] = sim.PagesForBytes(int64(mb*(1<<20)), opts.PageSize)
	}
	cc := sim.CurveConfig{
		Workload:        wl,
		Packing:         sim.PackSequential,
		CapacitiesPages: caps,
		WarmupTxns:      opts.WarmupTxns,
		Batches:         opts.Batches,
		BatchTxns:       opts.BatchTxns,
		Level:           opts.Level,
	}
	txns := cc.WarmupTxns + int64(cc.Batches)*cc.BatchTxns

	fmt.Fprintf(os.Stderr, "bench-kernel: recording %d-transaction trace (untimed)...\n", txns)
	tr, err := sim.RecordTrace(wl, txns)
	if err != nil {
		return err
	}

	mapStart := time.Now()
	mt, err := tr.MapPages(sim.BuildMappers(wl.DB, cc.Packing, wl.Seed), wl.DB)
	if err != nil {
		return err
	}
	mapSeconds := time.Since(mapStart).Seconds()

	type kernelRun struct {
		Kernel    string  `json:"kernel"`
		Seconds   float64 `json:"seconds"`
		Speedup   float64 `json:"speedup_vs_seed"`
		Identical bool    `json:"output_identical_to_seed"`
	}
	report := struct {
		cliutil.Hardware
		Scale           string      `json:"scale"`
		Warehouses      int         `json:"warehouses"`
		Transactions    int64       `json:"transactions"`
		Accesses        int64       `json:"accesses"`
		Capacities      int         `json:"capacities"`
		PageUniverse    int64       `json:"page_universe"`
		MapPagesSeconds float64     `json:"map_pages_seconds"`
		Runs            []kernelRun `json:"runs"`
	}{
		Hardware:        cliutil.HardwareInfo(),
		Scale:           "reduced",
		Warehouses:      opts.Warehouses,
		Transactions:    txns,
		Accesses:        tr.Accesses(),
		Capacities:      len(caps),
		PageUniverse:    mt.Universe(),
		MapPagesSeconds: mapSeconds,
	}

	kernels := []struct {
		name string
		cfg  sim.CurveConfig
	}{
		{"seed: map StackSim + per-access mapping + sort.Search", func() sim.CurveConfig { c := cc; c.Trace = tr; return c }()},
		{"dense: pre-mapped ordinals + DenseStackSim + O(1) lookup", func() sim.CurveConfig { c := cc; c.Mapped = mt; return c }()},
	}
	const reps = 3
	var seedSeconds float64
	var seedOut []byte
	for i, k := range kernels {
		if _, err := sim.RunCurve(k.cfg); err != nil { // untimed warmup
			return err
		}
		best := 0.0
		var out []byte
		for r := 0; r < reps; r++ {
			start := time.Now()
			res, err := sim.RunCurve(k.cfg)
			if err != nil {
				return err
			}
			elapsed := time.Since(start).Seconds()
			if best == 0 || elapsed < best {
				best = elapsed
			}
			out = renderCurveResult(res)
		}
		kr := kernelRun{Kernel: k.name, Seconds: best}
		if i == 0 {
			seedSeconds, seedOut = best, out
			kr.Speedup, kr.Identical = 1, true
		} else {
			kr.Speedup = seedSeconds / best
			kr.Identical = bytes.Equal(out, seedOut)
		}
		report.Runs = append(report.Runs, kr)
		fmt.Fprintf(os.Stderr, "bench-kernel: %s: best of %d = %.3fs speedup=%.2fx identical=%v\n",
			k.name, reps, kr.Seconds, kr.Speedup, kr.Identical)
	}

	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", path)
	return nil
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "tpcc-repro: %v\n", err)
	os.Exit(1)
}
