// Command tpcc-repro regenerates the paper's complete evaluation — every
// table and figure — in one process, sharing the expensive buffer
// simulations across figures, and writes one TSV per experiment into an
// output directory.
//
// Usage:
//
//	tpcc-repro -scale full -out results/        # paper scale (minutes)
//	tpcc-repro -scale reduced -out results-reduced/
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"tpccmodel/internal/experiments"
	"tpccmodel/internal/model"
)

func main() {
	var (
		scale        = flag.String("scale", "reduced", "full (paper: 20 warehouses, 30x100K txns) or reduced")
		outDir       = flag.String("out", "results", "output directory for TSV files")
		skipAblation = flag.Bool("skip-ablation", false, "skip the slow replacement-policy ablation")
	)
	flag.Parse()

	var opts experiments.Options
	switch *scale {
	case "full":
		opts = experiments.FullScale()
	case "reduced":
		opts = experiments.Reduced()
	default:
		fmt.Fprintf(os.Stderr, "tpcc-repro: unknown scale %q\n", *scale)
		os.Exit(2)
	}
	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		fatal(err)
	}

	write := func(name string, s experiments.Series, err error) {
		if err != nil {
			fatal(fmt.Errorf("%s: %w", name, err))
		}
		path := filepath.Join(*outDir, name+".tsv")
		f, err := os.Create(path)
		if err != nil {
			fatal(err)
		}
		if err := s.WriteTSV(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", path)
	}
	step := func(name string) func() {
		start := time.Now()
		fmt.Fprintf(os.Stderr, "[%s] %s...\n", time.Now().Format("15:04:05"), name)
		return func() {
			fmt.Fprintf(os.Stderr, "  %s done in %v\n", name, time.Since(start).Round(time.Millisecond))
		}
	}

	sys := model.DefaultSystemParams()
	cost := model.DefaultCostModel()

	done := step("analytic experiments (Table 1, Figures 3-7, skew headlines, Tables 6-7)")
	write("table1", experiments.Table1(opts.Warehouses, opts.PageSize), nil)
	write("fig3", experiments.Fig3(10), nil)
	write("fig4", experiments.Fig4(10), nil)
	write("fig5", experiments.Fig5(200), nil)
	write("fig6", experiments.Fig6(1), nil)
	write("fig7", experiments.Fig7(200), nil)
	write("skew-headlines", experiments.SkewHeadlines(), nil)
	write("tables6-7", experiments.Tables6and7([]int{2, 5, 10, 20, 30}), nil)
	done()

	done = step("Table 3 (measured access counts)")
	t3, err := experiments.Table3(opts)
	write("table3", t3, err)
	done()

	st := experiments.NewStudy(opts)
	done = step(fmt.Sprintf("buffer simulations (%d warehouses, %d x %d txns, 2 packings)",
		opts.Warehouses, opts.Batches, opts.BatchTxns))
	fig8, err := experiments.Fig8(st)
	write("fig8", fig8, err)
	done()

	done = step("analytic (Che/IRM) vs simulated comparison")
	cmpSeries, err := experiments.AnalyticVsSimulated(st)
	write("analytic-vs-sim", cmpSeries, err)
	done()

	done = step("Figures 9-12, Table 4")
	fig9, err := experiments.Fig9(st, sys)
	write("fig9", fig9, err)
	fig10, err := experiments.Fig10(st, sys, cost)
	write("fig10", fig10, err)
	if err == nil {
		write("fig10-minima", experiments.Fig10Minima(fig10), nil)
	}
	t4, err := experiments.Table4(st, sys, 52)
	write("table4", t4, err)
	nodes := []int{1, 2, 5, 10, 20, 30}
	fig11, err := experiments.Fig11(st, sys, 102, nodes)
	write("fig11", fig11, err)
	fig12, err := experiments.Fig12(st, sys, 102, nodes, []float64{0.01, 0.05, 0.1, 0.5, 1.0})
	write("fig12", fig12, err)
	done()

	if !*skipAblation {
		done = step("replacement-policy ablation")
		ablOpts := opts
		// The direct simulation re-runs per policy per packing; cap its
		// cost at any scale.
		if ablOpts.BatchTxns > 20000 {
			ablOpts.Batches, ablOpts.BatchTxns, ablOpts.WarmupTxns = 5, 20000, 20000
		}
		abl, err := experiments.PolicyAblation(ablOpts, 52,
			[]string{"lru", "fifo", "clock", "lfu", "2q", "slru"})
		write("policy-ablation", abl, err)
		done()

		done = step("extension experiments (optimality gap, mix sensitivity, response validation)")
		gap, err := experiments.OptimalityGap(ablOpts, []float64{13, 26, 52, 104}, 20000)
		write("optimality-gap", gap, err)
		mixSens, err := experiments.MixSensitivity(ablOpts, 52)
		write("mix-sensitivity", mixSens, err)
		respIdx := len(opts.BufferMB) / 2
		resp, err := experiments.ResponseValidation(st, sys, respIdx, 8,
			[]float64{0.2, 0.4, 0.6, 0.8, 0.9})
		write("response-validation", resp, err)
		pageOpts := ablOpts
		pageOpts.BufferMB = []float64{13, 26, 52, 104}
		pageSize, err := experiments.PageSizeStudy(pageOpts)
		write("page-size", pageSize, err)
		appA, err := experiments.AppendixAValidation(opts.Warehouses, 3, 300_000, opts.Seed)
		write("appendix-a-validation", appA, err)
		done()
	}
	fmt.Fprintln(os.Stderr, "all experiments complete")
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "tpcc-repro: %v\n", err)
	os.Exit(1)
}
