// Command tpcc-throughput regenerates the paper's Section 5.2 single-node
// results: Figure 9 (max throughput vs buffer size), Figure 10
// (price/performance vs buffer size, with the optimal-point summary), and
// the reconstructed Table 4 visit counts.
//
// Usage:
//
//	tpcc-throughput -experiment fig9  -scale reduced
//	tpcc-throughput -experiment fig10 -scale full -diskgb 3
//	tpcc-throughput -experiment fig10min
//	tpcc-throughput -experiment table4 -buffer 52
package main

import (
	"flag"
	"fmt"
	"os"

	"tpccmodel/internal/cliutil"
	"tpccmodel/internal/experiments"
	"tpccmodel/internal/model"
)

func main() {
	var (
		experiment = flag.String("experiment", "fig9", "one of: fig9, fig10, fig10min, table4, response")
		scale      = flag.String("scale", "reduced", "full or reduced")
		warehouses = flag.Int("warehouses", 0, "override warehouse count")
		mips       = flag.Float64("mips", 10, "processor MIPS (paper: 10)")
		cpuUtil    = flag.Float64("cpu-util", 0.80, "CPU utilization cap")
		diskGB     = flag.Float64("diskgb", 3, "disk capacity in decimal GB (paper: 3; sensitivity: 6, 12)")
		diskPrice  = flag.Float64("disk-price", 5000, "price per disk")
		cpuPrice   = flag.Float64("cpu-price", 10000, "processor price")
		memPerMB   = flag.Float64("mem-per-mb", 100, "memory price per MB")
		bufferMB   = flag.Float64("buffer", 52, "buffer size for table4")
		workers    = flag.Int("workers", 0, "parallel sweep workers (0 = one per CPU)")
	)
	cpuprofile, memprofile := cliutil.ProfileFlags()
	flag.Parse()

	const tool = "tpcc-throughput"
	w := cliutil.Workers(tool, *workers)
	stopProfiles := cliutil.StartProfiles(tool, *cpuprofile, *memprofile)
	defer stopProfiles()
	cliutil.RequireNonNegative(tool, "warehouses", int64(*warehouses))
	cliutil.RequirePositiveFloat(tool, "mips", *mips)
	cliutil.RequireProb(tool, "cpu-util", *cpuUtil)
	cliutil.RequirePositiveFloat(tool, "diskgb", *diskGB)
	cliutil.RequirePositiveFloat(tool, "disk-price", *diskPrice)
	cliutil.RequirePositiveFloat(tool, "cpu-price", *cpuPrice)
	cliutil.RequirePositiveFloat(tool, "mem-per-mb", *memPerMB)
	cliutil.RequirePositiveFloat(tool, "buffer", *bufferMB)

	var opts experiments.Options
	switch *scale {
	case "full":
		opts = experiments.FullScale()
	case "reduced":
		opts = experiments.Reduced()
	default:
		cliutil.Fail(tool, "unknown scale %q (want full or reduced)", *scale)
	}
	if *warehouses > 0 {
		opts.Warehouses = *warehouses
	}
	opts.Workers = w
	sys := model.DefaultSystemParams()
	sys.MIPS = *mips
	sys.MaxCPUUtil = *cpuUtil
	cost := model.CostModel{
		DiskPrice: *diskPrice, DiskBytes: *diskGB * 1e9,
		CPUPrice: *cpuPrice, MemPerMB: *memPerMB,
	}

	st := experiments.NewStudy(opts)
	var s experiments.Series
	var err error
	switch *experiment {
	case "fig9":
		s, err = experiments.Fig9(st, sys)
	case "fig10":
		s, err = experiments.Fig10(st, sys, cost)
	case "fig10min":
		var fig10 experiments.Series
		fig10, err = experiments.Fig10(st, sys, cost)
		if err == nil {
			s = experiments.Fig10Minima(fig10)
		}
	case "table4":
		s, err = experiments.Table4(st, sys, *bufferMB)
	case "response":
		// Analytic vs discrete-event response times across load levels.
		idx := len(opts.BufferMB) / 2
		s, err = experiments.ResponseValidation(st, sys, idx, 8,
			[]float64{0.2, 0.4, 0.6, 0.8, 0.9})
	default:
		cliutil.Fail(tool, "unknown experiment %q", *experiment)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "tpcc-throughput: %v\n", err)
		os.Exit(1)
	}
	if err := s.WriteTSV(os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "tpcc-throughput: %v\n", err)
		os.Exit(1)
	}
}
