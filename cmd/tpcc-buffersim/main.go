// Command tpcc-buffersim regenerates the paper's Section 4 buffer results:
// Figure 8 (per-relation miss rate vs buffer size, sequential vs optimized
// packing), the measured Table 3 access counts, and the replacement-policy
// ablation for the paper's "more sophisticated policies" hypothesis.
//
// Usage:
//
//	tpcc-buffersim -experiment fig8 -scale reduced
//	tpcc-buffersim -experiment fig8 -scale full        # paper scale, slow
//	tpcc-buffersim -experiment table3
//	tpcc-buffersim -experiment ablation -buffer 32 -policies lru,clock,2q,slru,lfu,fifo
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"tpccmodel/internal/cliutil"
	"tpccmodel/internal/experiments"
)

func options(scale string, warehouses, workers int) (experiments.Options, error) {
	var opts experiments.Options
	switch scale {
	case "full":
		opts = experiments.FullScale()
	case "reduced":
		opts = experiments.Reduced()
	default:
		return opts, fmt.Errorf("unknown scale %q (want full or reduced)", scale)
	}
	if warehouses > 0 {
		opts.Warehouses = warehouses
	}
	opts.Workers = workers
	return opts, nil
}

func main() {
	var (
		experiment = flag.String("experiment", "fig8", "one of: fig8, table3, ablation, pagesize, mix, optgap")
		scale      = flag.String("scale", "reduced", "full (paper: 20 warehouses, 30x100K txns) or reduced")
		warehouses = flag.Int("warehouses", 0, "override warehouse count (0 = scale default)")
		bufferMB   = flag.Float64("buffer", 32, "buffer size in MB (ablation)")
		policies   = flag.String("policies", "lru,fifo,clock,lfu,2q,slru", "comma-separated policies (ablation)")
		workers    = flag.Int("workers", 0, "parallel sweep workers (0 = one per CPU)")
	)
	cpuprofile, memprofile := cliutil.ProfileFlags()
	flag.Parse()

	const tool = "tpcc-buffersim"
	w := cliutil.Workers(tool, *workers)
	stopProfiles := cliutil.StartProfiles(tool, *cpuprofile, *memprofile)
	defer stopProfiles()
	cliutil.RequireNonNegative(tool, "warehouses", int64(*warehouses))
	cliutil.RequirePositiveFloat(tool, "buffer", *bufferMB)
	if *policies == "" {
		cliutil.Fail(tool, "-policies must name at least one policy")
	}

	opts, err := options(*scale, *warehouses, w)
	if err != nil {
		cliutil.Fail(tool, "%v", err)
	}

	var s experiments.Series
	switch *experiment {
	case "fig8":
		st := experiments.NewStudy(opts)
		s, err = experiments.Fig8(st)
	case "table3":
		s, err = experiments.Table3(opts)
	case "ablation":
		s, err = experiments.PolicyAblation(opts, *bufferMB, strings.Split(*policies, ","))
	case "pagesize":
		s, err = experiments.PageSizeStudy(opts)
	case "mix":
		s, err = experiments.MixSensitivity(opts, *bufferMB)
	case "optgap":
		s, err = experiments.OptimalityGap(opts, []float64{*bufferMB / 2, *bufferMB, *bufferMB * 2}, 20000)
	default:
		cliutil.Fail(tool, "unknown experiment %q", *experiment)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "tpcc-buffersim: %v\n", err)
		os.Exit(1)
	}
	if err := s.WriteTSV(os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "tpcc-buffersim: %v\n", err)
		os.Exit(1)
	}
}
