// Command tpcc-scaleup regenerates the paper's Section 5.3 distributed
// results: Figure 11 (scale-up with replicated vs partitioned Item
// relation), Figure 12 (sensitivity to the remote-stock probability), and
// the Appendix A / Tables 6-7 expectation values.
//
// Usage:
//
//	tpcc-scaleup -experiment fig11 -nodes 1,2,5,10,20,30
//	tpcc-scaleup -experiment fig12 -probs 0.01,0.05,0.1,0.5,1.0
//	tpcc-scaleup -experiment tables67 -nodes 2,10,30
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"tpccmodel/internal/cliutil"
	"tpccmodel/internal/experiments"
	"tpccmodel/internal/model"
)

func parseInts(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func parseFloats(s string) ([]float64, error) {
	parts := strings.Split(s, ",")
	out := make([]float64, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func main() {
	var (
		experiment = flag.String("experiment", "fig11", "one of: fig11, fig12, tables67")
		scale      = flag.String("scale", "reduced", "full or reduced")
		nodesFlag  = flag.String("nodes", "1,2,5,10,20,30", "node counts")
		probsFlag  = flag.String("probs", "0.01,0.05,0.1,0.5,1.0", "remote-stock probabilities (fig12)")
		bufferMB   = flag.Float64("buffer", 102, "per-node buffer size in MB (paper: 102)")
		workers    = flag.Int("workers", 0, "parallel sweep workers (0 = one per CPU)")
	)
	cpuprofile, memprofile := cliutil.ProfileFlags()
	flag.Parse()

	const tool = "tpcc-scaleup"
	w := cliutil.Workers(tool, *workers)
	cliutil.RequirePositiveFloat(tool, "buffer", *bufferMB)
	stopProfiles := cliutil.StartProfiles(tool, *cpuprofile, *memprofile)
	defer stopProfiles()

	nodes, err := parseInts(*nodesFlag)
	if err != nil {
		cliutil.Fail(tool, "bad -nodes: %v", err)
	}
	for _, n := range nodes {
		cliutil.RequirePositive(tool, "nodes", int64(n))
	}

	var s experiments.Series
	switch *experiment {
	case "tables67":
		s = experiments.Tables6and7(nodes)
	case "fig11", "fig12":
		var opts experiments.Options
		switch *scale {
		case "full":
			opts = experiments.FullScale()
		case "reduced":
			opts = experiments.Reduced()
		default:
			cliutil.Fail(tool, "unknown scale %q (want full or reduced)", *scale)
		}
		opts.Workers = w
		st := experiments.NewStudy(opts)
		sys := model.DefaultSystemParams()
		if *experiment == "fig11" {
			s, err = experiments.Fig11(st, sys, *bufferMB, nodes)
		} else {
			var probs []float64
			probs, err = parseFloats(*probsFlag)
			if err != nil {
				cliutil.Fail(tool, "bad -probs: %v", err)
			}
			for _, p := range probs {
				cliutil.RequireProb(tool, "probs", p)
			}
			s, err = experiments.Fig12(st, sys, *bufferMB, nodes, probs)
		}
	default:
		cliutil.Fail(tool, "unknown experiment %q", *experiment)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "tpcc-scaleup: %v\n", err)
		os.Exit(1)
	}
	if err := s.WriteTSV(os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "tpcc-scaleup: %v\n", err)
		os.Exit(1)
	}
}
