// Command tpcc-trace records the TPC-C reference stream to a compact
// binary trace, or replays/inspects an existing trace. Traces make the
// workload portable: external cache simulators can consume them without
// the generator, and replays are deterministic.
//
// Usage:
//
//	tpcc-trace -record trace.bin -txns 100000 -warehouses 20 -seed 1993
//	tpcc-trace -inspect trace.bin
//	tpcc-trace -replay trace.bin -policy lru -buffer-pages 13312 -pagesize 4096
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"tpccmodel/internal/buffer"
	"tpccmodel/internal/cliutil"
	"tpccmodel/internal/core"
	"tpccmodel/internal/sim"
	"tpccmodel/internal/tpcc"
	"tpccmodel/internal/trace"
	"tpccmodel/internal/workload"
)

func main() {
	var (
		record      = flag.String("record", "", "write a new trace to this path")
		inspect     = flag.String("inspect", "", "print summary statistics of a trace")
		replay      = flag.String("replay", "", "replay a trace through a buffer policy")
		txns        = flag.Int64("txns", 100000, "transactions to record")
		warehouses  = flag.Int("warehouses", 20, "warehouse count (record)")
		seed        = flag.Uint64("seed", 1993, "generator seed (record)")
		policy      = flag.String("policy", "lru", "replacement policy (replay)")
		bufferPages = flag.Int64("buffer-pages", 13312, "pool capacity in pages (replay)")
		pageSize    = flag.Int("pagesize", 4096, "page size (replay mapping)")
		packName    = flag.String("packing", "sequential", "tuple-to-page packing (replay)")
	)
	flag.Parse()

	const tool = "tpcc-trace"
	modes := 0
	for _, m := range []string{*record, *inspect, *replay} {
		if m != "" {
			modes++
		}
	}
	if modes > 1 {
		cliutil.Fail(tool, "-record, -inspect, -replay are mutually exclusive")
	}
	cliutil.RequirePositive(tool, "txns", *txns)
	cliutil.RequirePositive(tool, "warehouses", int64(*warehouses))
	cliutil.RequirePositive(tool, "buffer-pages", *bufferPages)
	cliutil.RequirePositive(tool, "pagesize", int64(*pageSize))

	switch {
	case *record != "":
		f, err := os.Create(*record)
		if err != nil {
			fatal(err)
		}
		accs, err := trace.Record(f, workload.DefaultConfig(*warehouses, *seed), *txns)
		if err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		st, _ := os.Stat(*record)
		fmt.Printf("recorded %d txns, %d accesses, %d bytes (%.2f B/access)\n",
			*txns, accs, st.Size(), float64(st.Size())/float64(accs))

	case *inspect != "":
		r := openTrace(*inspect)
		var txn workload.Txn
		var perType [core.NumTxnTypes]int64
		var perRel [core.NumRelations]int64
		var n, accs int64
		for {
			if err := r.ReadTxn(&txn); err != nil {
				if err != io.EOF {
					fatal(err)
				}
				break
			}
			n++
			perType[txn.Type]++
			for _, a := range txn.Accesses {
				perRel[a.Rel]++
				accs++
			}
		}
		fmt.Printf("transactions\t%d\naccesses\t%d\n\ntype\tcount\tfraction\n", n, accs)
		for t := core.TxnType(0); t < core.NumTxnTypes; t++ {
			fmt.Printf("%s\t%d\t%.4f\n", t, perType[t], float64(perType[t])/float64(n))
		}
		fmt.Printf("\nrelation\taccesses\tshare\n")
		for _, rel := range core.Relations() {
			fmt.Printf("%s\t%d\t%.4f\n", rel, perRel[rel], float64(perRel[rel])/float64(accs))
		}

	case *replay != "":
		packing, err := sim.ParsePacking(*packName)
		if err != nil {
			fatal(err)
		}
		pol, err := buffer.NewPolicy(*policy, *bufferPages)
		if err != nil {
			fatal(err)
		}
		// The mapper needs the scale; infer warehouses from the largest
		// stock tuple seen would require two passes — take the flag.
		mappers := sim.BuildMappers(
			tpcc.Config{Warehouses: *warehouses, PageSize: *pageSize}, packing, *seed)
		r := openTrace(*replay)
		var txn workload.Txn
		var acc, miss int64
		for {
			if err := r.ReadTxn(&txn); err != nil {
				if err != io.EOF {
					fatal(err)
				}
				break
			}
			for _, a := range txn.Accesses {
				acc++
				if !pol.Access(core.MakePageID(a.Rel, mappers[a.Rel].Page(a.Tuple))) {
					miss++
				}
			}
		}
		fmt.Printf("policy\t%s\npacking\t%s\npages\t%d\naccesses\t%d\nmiss_rate\t%.4f\n",
			*policy, packing, *bufferPages, acc, float64(miss)/float64(acc))

	default:
		cliutil.Fail(tool, "one of -record, -inspect, -replay is required")
	}
}

func openTrace(path string) *trace.Reader {
	f, err := os.Open(path)
	if err != nil {
		fatal(err)
	}
	r, err := trace.NewReader(f)
	if err != nil {
		fatal(err)
	}
	return r
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "tpcc-trace: %v\n", err)
	os.Exit(1)
}
