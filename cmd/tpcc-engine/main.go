// Command tpcc-engine runs the executable TPC-C engine — the system the
// paper models but never built — and reports measured per-relation buffer
// miss rates, transaction counts, lock statistics, and optionally a
// crash/recovery cycle. With -validate it runs the trace-driven buffer
// simulation at the same scale and prints the miss rates side by side.
//
// Usage:
//
//	tpcc-engine -warehouses 1 -buffer-pages 8192 -txns 20000 -workers 4
//	tpcc-engine -txns 5000 -crash
//	tpcc-engine -txns 20000 -validate
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"tpccmodel/internal/cliutil"
	"tpccmodel/internal/core"
	"tpccmodel/internal/engine/db"
	"tpccmodel/internal/sim"
	"tpccmodel/internal/tpcc"
	"tpccmodel/internal/workload"
)

func main() {
	var (
		warehouses  = flag.Int("warehouses", 1, "warehouse count")
		bufferPages = flag.Int("buffer-pages", 8192, "buffer pool capacity in 4K pages")
		txns        = flag.Int("txns", 10000, "transactions to execute")
		warmup      = flag.Int("warmup", 1000, "warmup transactions before measuring")
		workers     = flag.Int("workers", 4, "concurrent workers")
		seed        = flag.Uint64("seed", 1993, "random seed")
		crash       = flag.Bool("crash", false, "crash and recover after the run, verifying invariants")
		validate    = flag.Bool("validate", false, "also run the trace-driven simulation and compare miss rates")
	)
	flag.Parse()

	const tool = "tpcc-engine"
	cliutil.RequirePositive(tool, "warehouses", int64(*warehouses))
	cliutil.RequirePositive(tool, "buffer-pages", int64(*bufferPages))
	cliutil.RequirePositive(tool, "txns", int64(*txns))
	cliutil.RequireNonNegative(tool, "warmup", int64(*warmup))
	cliutil.RequirePositive(tool, "workers", int64(*workers))

	d, err := db.Open(db.Config{
		Warehouses: *warehouses, PageSize: 4096, BufferPages: *bufferPages,
	})
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "loading %d warehouse(s)...\n", *warehouses)
	start := time.Now()
	if err := d.Load(*seed); err != nil {
		fatal(err)
	}
	if err := d.VerifyCounts(); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "loaded in %v\n", time.Since(start).Round(time.Millisecond))

	mix := tpcc.DefaultMix()
	if *warmup > 0 {
		if err := db.RunConcurrent(d, *seed+1, mix, *warmup, *workers); err != nil {
			fatal(err)
		}
	}
	d.ResetBufferStats()

	start = time.Now()
	if err := db.RunConcurrent(d, *seed+2, mix, *txns, *workers); err != nil {
		fatal(err)
	}
	elapsed := time.Since(start)

	fmt.Printf("# engine run: %d txns, %d workers, %d-page pool, %v\n",
		*txns, *workers, *bufferPages, elapsed.Round(time.Millisecond))
	fmt.Printf("txns_per_sec\t%.0f\n", float64(*txns)/elapsed.Seconds())
	fmt.Printf("commits\t%d\naborts\t%d\nlog_forces\t%d\n", d.Commits(), d.Aborts(), d.LogForces())
	acq, waits, deadlocks := d.LockCounts()
	fmt.Printf("locks_acquired\t%d\nlock_waits\t%d\ndeadlocks\t%d\n", acq, waits, deadlocks)

	fmt.Printf("\nrelation\taccesses\tmiss_rate\n")
	stats := d.RelationStats()
	for _, rel := range core.Relations() {
		s := stats[rel]
		fmt.Printf("%s\t%d\t%.4f\n", rel, s.Accesses(), s.MissRate())
	}

	if *validate {
		fmt.Fprintf(os.Stderr, "running trace-driven simulation for comparison...\n")
		res, err := sim.RunCurve(sim.CurveConfig{
			Workload:        workload.DefaultConfig(*warehouses, *seed+2),
			Packing:         sim.PackSequential,
			CapacitiesPages: []int64{int64(*bufferPages)},
			WarmupTxns:      int64(*warmup),
			Batches:         2,
			BatchTxns:       int64(*txns) / 2,
			Level:           0.9,
		})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("\n# engine vs trace-driven simulation at %d pages\n", *bufferPages)
		fmt.Printf("relation\tengine_miss\tsim_miss\n")
		for _, rel := range []core.Relation{core.Customer, core.Stock, core.Item, core.OrderLine} {
			fmt.Printf("%s\t%.4f\t%.4f\n", rel, stats[rel].MissRate(),
				res.MissRate(rel, int64(*bufferPages)))
		}
	}

	if *crash {
		fmt.Fprintf(os.Stderr, "simulating crash + recovery...\n")
		before := d.Heap(core.Order).Live()
		if err := d.Crash(); err != nil {
			fatal(err)
		}
		if err := d.Recover(); err != nil {
			fatal(err)
		}
		after := d.Heap(core.Order).Live()
		fmt.Printf("\nrecovery\torders_before=%d\torders_after=%d\n", before, after)
		if before != after {
			fatal(fmt.Errorf("order count changed across crash: %d -> %d", before, after))
		}
		if err := d.CheckConsistency(); err != nil {
			fatal(err)
		}
		fmt.Printf("consistency_checks\tC1-C4\tok\n")
		// Prove the system still works.
		if err := db.RunConcurrent(d, *seed+3, mix, 100, 2); err != nil {
			fatal(err)
		}
		fmt.Printf("post_recovery_txns\t100\tok\n")
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "tpcc-engine: %v\n", err)
	os.Exit(1)
}
