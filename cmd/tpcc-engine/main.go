// Command tpcc-engine runs the executable TPC-C engine — the system the
// paper models but never built — and reports measured per-relation buffer
// miss rates, transaction counts, lock statistics, commit-latency
// quantiles, and optionally a crash/recovery cycle. Group commit is on by
// default: committing transactions enqueue as durability waiters and a
// batch leader issues one log force for the whole batch, so forces per
// commit drop below 1 under concurrency (disable with -group-commit=false
// to reproduce the model's one-log-I/O-per-transaction accounting). With
// -validate it runs the trace-driven buffer simulation at the same scale
// and prints the miss rates side by side.
//
// Usage:
//
//	tpcc-engine -warehouses 1 -buffer-pages 8192 -txns 20000 -workers 4
//	tpcc-engine -txns 5000 -crash
//	tpcc-engine -txns 20000 -validate
//	tpcc-engine -bench-commit BENCH_commit.json
//	tpcc-engine -commit-smoke
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"tpccmodel/internal/cliutil"
	"tpccmodel/internal/core"
	"tpccmodel/internal/engine/db"
	"tpccmodel/internal/engine/wal"
	"tpccmodel/internal/sim"
	"tpccmodel/internal/tpcc"
	"tpccmodel/internal/workload"
)

func main() {
	var (
		warehouses  = flag.Int("warehouses", 1, "warehouse count")
		bufferPages = flag.Int("buffer-pages", 8192, "buffer pool capacity in 4K pages")
		txns        = flag.Int("txns", 10000, "transactions to execute")
		warmup      = flag.Int("warmup", 1000, "warmup transactions before measuring")
		workers     = flag.Int("workers", 4, "concurrent workers")
		seed        = flag.Uint64("seed", 1993, "random seed")
		crash       = flag.Bool("crash", false, "crash and recover after the run, verifying invariants")
		validate    = flag.Bool("validate", false, "also run the trace-driven simulation and compare miss rates")
		groupCommit = flag.Bool("group-commit", true, "batch commit forces (leader/follower group commit)")
		gcBatch     = flag.Int("gc-max-batch", 64, "max commit/abort records per group-commit force")
		gcHold      = flag.Duration("gc-max-hold", 200*time.Microsecond, "max time a batch leader waits for followers")
		benchCommit = flag.String("bench-commit", "", "instead of a single run, benchmark grouped vs ungrouped commit at 1/2/4/8 workers and write this JSON report")
		commitSmoke = flag.Bool("commit-smoke", false, "CI smoke: one reduced grouped-vs-ungrouped cell; exit 1 unless grouped forces-per-commit < 1 at 4 workers")
	)
	flag.Parse()

	const tool = "tpcc-engine"
	cliutil.RequirePositive(tool, "warehouses", int64(*warehouses))
	cliutil.RequirePositive(tool, "buffer-pages", int64(*bufferPages))
	cliutil.RequirePositive(tool, "txns", int64(*txns))
	cliutil.RequireNonNegative(tool, "warmup", int64(*warmup))
	cliutil.RequirePositive(tool, "workers", int64(*workers))
	cliutil.RequirePositive(tool, "gc-max-batch", int64(*gcBatch))

	group := wal.GroupConfig{}
	if *groupCommit {
		group = wal.GroupConfig{MaxBatch: *gcBatch, MaxHold: *gcHold}
	}

	if *benchCommit != "" {
		if err := runBenchCommit(*benchCommit, *seed, wal.GroupConfig{MaxBatch: *gcBatch, MaxHold: *gcHold}); err != nil {
			fatal(err)
		}
		return
	}
	if *commitSmoke {
		if err := runCommitSmoke(*seed, wal.GroupConfig{MaxBatch: *gcBatch, MaxHold: *gcHold}); err != nil {
			fatal(err)
		}
		return
	}

	d, err := db.OpenWith(db.Config{
		Warehouses: *warehouses, PageSize: 4096, BufferPages: *bufferPages,
	}, db.Options{GroupCommit: group})
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "loading %d warehouse(s)...\n", *warehouses)
	start := time.Now()
	if err := d.Load(*seed); err != nil {
		fatal(err)
	}
	if err := d.VerifyCounts(); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "loaded in %v\n", time.Since(start).Round(time.Millisecond))

	mix := tpcc.DefaultMix()
	if *warmup > 0 {
		if err := db.RunConcurrent(d, *seed+1, mix, *warmup, *workers); err != nil {
			fatal(err)
		}
	}
	d.ResetBufferStats()

	st, err := db.RunConcurrentPolicy(d, *seed+2, mix, *txns, *workers, db.DefaultRetryPolicy())
	if err != nil {
		fatal(err)
	}

	mode := "per-commit force"
	if group.Enabled() {
		mode = fmt.Sprintf("group commit (batch<=%d, hold<=%v)", group.MaxBatch, group.MaxHold)
	}
	fmt.Printf("# engine run: %d txns, %d workers, %d-page pool, %v, %s\n",
		*txns, *workers, *bufferPages, st.Elapsed.Round(time.Millisecond), mode)
	fmt.Printf("txns_per_sec\t%.0f\n", float64(*txns)/st.Elapsed.Seconds())
	fmt.Printf("tpmC\t%.0f\n", st.TpmC())
	fmt.Printf("commits\t%d\naborts\t%d\nlog_forces\t%d\n", st.Commits, st.Aborts, st.LogForces)
	fmt.Printf("forces_per_commit\t%.4f\n", st.ForcesPerCommit())
	fmt.Printf("latency_p50\t%v\nlatency_p95\t%v\nlatency_p99\t%v\nlatency_max\t%v\n",
		st.Latency.P50, st.Latency.P95, st.Latency.P99, st.Latency.Max)
	acq, waits, deadlocks := d.LockCounts()
	fmt.Printf("locks_acquired\t%d\nlock_waits\t%d\ndeadlocks\t%d\n", acq, waits, deadlocks)

	fmt.Printf("\nrelation\taccesses\tmiss_rate\n")
	stats := d.RelationStats()
	for _, rel := range core.Relations() {
		s := stats[rel]
		fmt.Printf("%s\t%d\t%.4f\n", rel, s.Accesses(), s.MissRate())
	}

	if *validate {
		fmt.Fprintf(os.Stderr, "running trace-driven simulation for comparison...\n")
		res, err := sim.RunCurve(sim.CurveConfig{
			Workload:        workload.DefaultConfig(*warehouses, *seed+2),
			Packing:         sim.PackSequential,
			CapacitiesPages: []int64{int64(*bufferPages)},
			WarmupTxns:      int64(*warmup),
			Batches:         2,
			BatchTxns:       int64(*txns) / 2,
			Level:           0.9,
		})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("\n# engine vs trace-driven simulation at %d pages\n", *bufferPages)
		fmt.Printf("relation\tengine_miss\tsim_miss\n")
		for _, rel := range []core.Relation{core.Customer, core.Stock, core.Item, core.OrderLine} {
			fmt.Printf("%s\t%.4f\t%.4f\n", rel, stats[rel].MissRate(),
				res.MissRate(rel, int64(*bufferPages)))
		}
	}

	if *crash {
		fmt.Fprintf(os.Stderr, "simulating crash + recovery...\n")
		before := d.Heap(core.Order).Live()
		if err := d.Crash(); err != nil {
			fatal(err)
		}
		if err := d.Recover(); err != nil {
			fatal(err)
		}
		after := d.Heap(core.Order).Live()
		fmt.Printf("\nrecovery\torders_before=%d\torders_after=%d\n", before, after)
		if before != after {
			fatal(fmt.Errorf("order count changed across crash: %d -> %d", before, after))
		}
		if err := d.CheckConsistency(); err != nil {
			fatal(err)
		}
		fmt.Printf("consistency_checks\tC1-C4\tok\n")
		// Prove the system still works.
		if err := db.RunConcurrent(d, *seed+3, mix, 100, 2); err != nil {
			fatal(err)
		}
		fmt.Printf("post_recovery_txns\t100\tok\n")
	}
}

// commitCell is one grouped-vs-ungrouped benchmark measurement.
type commitCell struct {
	Workers         int     `json:"workers"`
	Grouped         bool    `json:"grouped"`
	TxnsPerSec      float64 `json:"txns_per_sec"`
	TpmC            float64 `json:"tpmc"`
	Commits         int64   `json:"commits"`
	Aborts          int64   `json:"aborts"`
	LogForces       int64   `json:"log_forces"`
	ForcesPerCommit float64 `json:"forces_per_commit"`
	P50Micros       int64   `json:"p50_us"`
	P95Micros       int64   `json:"p95_us"`
	P99Micros       int64   `json:"p99_us"`
	MeanMicros      int64   `json:"mean_us"`
}

// runCommitCell loads a fresh single-warehouse instance and measures one
// (workers, grouped) cell of the commit-path benchmark.
func runCommitCell(seed uint64, txns, warmup, workers int, group wal.GroupConfig) (commitCell, error) {
	opts := db.Options{}
	grouped := group.Enabled()
	if grouped {
		opts.GroupCommit = group
	}
	d, err := db.OpenWith(db.Config{Warehouses: 1, PageSize: 4096, BufferPages: 8192}, opts)
	if err != nil {
		return commitCell{}, err
	}
	if err := d.Load(seed); err != nil {
		return commitCell{}, err
	}
	mix := tpcc.DefaultMix()
	if warmup > 0 {
		if err := db.RunConcurrent(d, seed+1, mix, warmup, workers); err != nil {
			return commitCell{}, err
		}
	}
	st, err := db.RunConcurrentPolicy(d, seed+2, mix, txns, workers, db.DefaultRetryPolicy())
	if err != nil {
		return commitCell{}, err
	}
	return commitCell{
		Workers:         workers,
		Grouped:         grouped,
		TxnsPerSec:      float64(txns) / st.Elapsed.Seconds(),
		TpmC:            st.TpmC(),
		Commits:         st.Commits,
		Aborts:          st.Aborts,
		LogForces:       st.LogForces,
		ForcesPerCommit: st.ForcesPerCommit(),
		P50Micros:       st.Latency.P50.Microseconds(),
		P95Micros:       st.Latency.P95.Microseconds(),
		P99Micros:       st.Latency.P99.Microseconds(),
		MeanMicros:      st.Latency.Mean.Microseconds(),
	}, nil
}

// runBenchCommit measures grouped vs ungrouped commit at 1/2/4/8 workers
// on fresh instances and writes the JSON report extending the BENCH_*
// trajectory.
func runBenchCommit(path string, seed uint64, group wal.GroupConfig) error {
	const txns, warmup = 8000, 500
	type report struct {
		cliutil.Hardware
		Warehouses int          `json:"warehouses"`
		Txns       int          `json:"txns_per_cell"`
		MaxBatch   int          `json:"gc_max_batch"`
		MaxHoldUS  int64        `json:"gc_max_hold_us"`
		Cells      []commitCell `json:"cells"`
	}
	rep := report{
		Hardware:   cliutil.HardwareInfo(),
		Warehouses: 1,
		Txns:       txns,
		MaxBatch:   group.MaxBatch,
		MaxHoldUS:  group.MaxHold.Microseconds(),
	}
	for _, workers := range []int{1, 2, 4, 8} {
		for _, grouped := range []bool{false, true} {
			g := wal.GroupConfig{}
			if grouped {
				g = group
			}
			cell, err := runCommitCell(seed, txns, warmup, workers, g)
			if err != nil {
				return fmt.Errorf("workers=%d grouped=%v: %w", workers, grouped, err)
			}
			fmt.Fprintf(os.Stderr,
				"bench-commit: workers=%d grouped=%-5v tpmC=%-8.0f forces/commit=%.3f p99=%dus\n",
				cell.Workers, cell.Grouped, cell.TpmC, cell.ForcesPerCommit, cell.P99Micros)
			rep.Cells = append(rep.Cells, cell)
		}
	}
	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(buf, '\n'), 0o644)
}

// runCommitSmoke is the CI gate: one reduced grouped-vs-ungrouped cell
// at 4 workers; the grouped run must batch (forces per commit strictly
// below 1) and the ungrouped run must force exactly once per record.
func runCommitSmoke(seed uint64, group wal.GroupConfig) error {
	const txns, warmup, workers = 2000, 200, 4
	ungrouped, err := runCommitCell(seed, txns, warmup, workers, wal.GroupConfig{})
	if err != nil {
		return err
	}
	grouped, err := runCommitCell(seed, txns, warmup, workers, group)
	if err != nil {
		return err
	}
	fmt.Printf("mode\tworkers\tforces_per_commit\ttpmc\tp99_us\n")
	fmt.Printf("ungrouped\t%d\t%.4f\t%.0f\t%d\n", workers,
		ungrouped.ForcesPerCommit, ungrouped.TpmC, ungrouped.P99Micros)
	fmt.Printf("grouped\t%d\t%.4f\t%.0f\t%d\n", workers,
		grouped.ForcesPerCommit, grouped.TpmC, grouped.P99Micros)
	if ungrouped.ForcesPerCommit != 1 {
		return fmt.Errorf("ungrouped forces per commit = %.4f, want exactly 1", ungrouped.ForcesPerCommit)
	}
	if grouped.ForcesPerCommit >= 1 {
		return fmt.Errorf("grouped forces per commit = %.4f at %d workers, want < 1",
			grouped.ForcesPerCommit, workers)
	}
	fmt.Println("commit-smoke: ok")
	return nil
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "tpcc-engine: %v\n", err)
	os.Exit(1)
}
