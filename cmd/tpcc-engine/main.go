// Command tpcc-engine runs the executable TPC-C engine — the system the
// paper models but never built — and reports measured per-relation buffer
// miss rates, transaction counts, lock statistics, commit-latency
// quantiles, and optionally a crash/recovery cycle. Group commit is on by
// default: committing transactions enqueue as durability waiters and a
// batch leader issues one log force for the whole batch, so forces per
// commit drop below 1 under concurrency (disable with -group-commit=false
// to reproduce the model's one-log-I/O-per-transaction accounting). With
// -validate it runs the trace-driven buffer simulation at the same scale
// and prints the miss rates side by side.
//
// Usage:
//
//	tpcc-engine -warehouses 1 -buffer-pages 8192 -txns 20000 -workers 4
//	tpcc-engine -txns 5000 -crash
//	tpcc-engine -txns 20000 -validate
//	tpcc-engine -bench-commit BENCH_commit.json
//	tpcc-engine -commit-smoke
//	tpcc-engine -cc mvcc -txns 20000 -workers 4
//	tpcc-engine -cc ssi -txns 20000 -workers 4
//	tpcc-engine -bench-cc BENCH_cc.json
//	tpcc-engine -cc-smoke
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"tpccmodel/internal/cliutil"
	"tpccmodel/internal/core"
	"tpccmodel/internal/engine/db"
	"tpccmodel/internal/engine/wal"
	"tpccmodel/internal/sim"
	"tpccmodel/internal/tpcc"
	"tpccmodel/internal/workload"
)

func main() {
	var (
		warehouses  = flag.Int("warehouses", 1, "warehouse count")
		bufferPages = flag.Int("buffer-pages", 8192, "buffer pool capacity in 4K pages")
		txns        = flag.Int("txns", 10000, "transactions to execute")
		warmup      = flag.Int("warmup", 1000, "warmup transactions before measuring")
		workers     = flag.Int("workers", 4, "concurrent workers")
		seed        = flag.Uint64("seed", 1993, "random seed")
		crash       = flag.Bool("crash", false, "crash and recover after the run, verifying invariants")
		validate    = flag.Bool("validate", false, "also run the trace-driven simulation and compare miss rates")
		groupCommit = flag.Bool("group-commit", true, "batch commit forces (leader/follower group commit)")
		gcBatch     = flag.Int("gc-max-batch", 64, "max commit/abort records per group-commit force")
		gcHold      = flag.Duration("gc-max-hold", 200*time.Microsecond, "max time a batch leader waits for followers")
		gcAdaptive  = flag.Bool("gc-adaptive", true, "scale the leader's hold to observed commit arrivals (a solo committer forces immediately)")
		lockStripes = flag.Int("lock-stripes", 0, "lock-manager stripes, rounded up to a power of two (0 = default 64, 1 = single global table)")
		bufParts    = flag.Int("buffer-partitions", 0, "buffer-pool partitions, rounded up to a power of two (0 = 1, the unified pool)")
		benchCommit = flag.String("bench-commit", "", "instead of a single run, benchmark grouped vs ungrouped commit at 1/2/4/8 workers and write this JSON report")
		benchEngine = flag.String("bench-engine", "", "instead of a single run, benchmark engine throughput and allocations at 1/2/4/8 workers (grouped and ungrouped) and write this JSON report")
		benchScale  = flag.String("bench-scale", "", "instead of a single run, benchmark workers x {striped,global-lock} x {partitioned,unified-pool} and write this JSON report")
		benchCC     = flag.String("bench-cc", "", "instead of a single run, benchmark 2pl vs mvcc vs ssi at 1/2/4/8 workers with per-type abort rates and write this JSON report")
		commitSmoke = flag.Bool("commit-smoke", false, "CI smoke: reduced grouped-vs-ungrouped cells at 1/2/4/8 workers; exit 1 unless grouped throughput keeps up and batching engages")
		scaleSmoke  = flag.Bool("scale-smoke", false, "CI smoke: reduced striped-vs-global cells; exit 1 if striping costs >5% at 1 worker (multi-worker ratios are recorded, not gated)")
		ccSmoke     = flag.Bool("cc-smoke", false, "CI smoke: write-skew certification plus reduced 2pl/mvcc/ssi cells; exit 1 unless single-worker state hashes match across modes and snapshot-mode throughput keeps up")
		ccFlag      = flag.String("cc", "2pl", "concurrency control mode: 2pl (shared read locks), mvcc (snapshot reads, first-committer-wins) or ssi (mvcc plus serializability validation)")
		benchFile   = flag.String("bench-file", "", "with -commit-smoke / -scale-smoke: also check this checked-in BENCH_*.json against the CLI defaults and thresholds")
	)
	cpuProf, memProf := cliutil.ProfileFlags()
	mutexProf, blockProf := cliutil.ContentionProfileFlags()
	flag.Parse()

	const tool = "tpcc-engine"
	cliutil.RequirePositive(tool, "warehouses", int64(*warehouses))
	cliutil.RequirePositive(tool, "buffer-pages", int64(*bufferPages))
	cliutil.RequirePositive(tool, "txns", int64(*txns))
	cliutil.RequireNonNegative(tool, "warmup", int64(*warmup))
	cliutil.RequirePositive(tool, "workers", int64(*workers))
	cliutil.RequirePositive(tool, "gc-max-batch", int64(*gcBatch))
	cliutil.RequireNonNegative(tool, "lock-stripes", int64(*lockStripes))
	cliutil.RequireNonNegative(tool, "buffer-partitions", int64(*bufParts))

	stopProf := cliutil.StartProfiles(tool, *cpuProf, *memProf)
	stopContention := cliutil.StartContentionProfiles(tool, *mutexProf, *blockProf)
	stop := func() { stopProf(); stopContention() }

	ccMode, err := db.ParseCCMode(*ccFlag)
	if err != nil {
		fatal(err)
	}

	gcfg := wal.GroupConfig{MaxBatch: *gcBatch, MaxHold: *gcHold, AdaptiveHold: *gcAdaptive}
	group := wal.GroupConfig{}
	if *groupCommit {
		group = gcfg
	}

	if *benchCommit != "" {
		if err := runBenchCommit(*benchCommit, *seed, gcfg); err != nil {
			fatal(err)
		}
		stop()
		return
	}
	if *benchEngine != "" {
		if err := runBenchEngine(*benchEngine, *seed, gcfg); err != nil {
			fatal(err)
		}
		stop()
		return
	}
	if *benchScale != "" {
		if err := runBenchScale(*benchScale, *seed, gcfg); err != nil {
			fatal(err)
		}
		stop()
		return
	}
	if *benchCC != "" {
		if err := runBenchCC(*benchCC, *seed, group); err != nil {
			fatal(err)
		}
		stop()
		return
	}
	if *ccSmoke {
		if err := runCCSmoke(*seed, group, *benchFile); err != nil {
			fatal(err)
		}
		stop()
		return
	}
	if *commitSmoke {
		if err := runCommitSmoke(*seed, gcfg, *benchFile); err != nil {
			fatal(err)
		}
		stop()
		return
	}
	if *scaleSmoke {
		if err := runScaleSmoke(*seed, gcfg, *benchFile); err != nil {
			fatal(err)
		}
		stop()
		return
	}

	d, err := db.OpenWith(db.Config{
		Warehouses: *warehouses, PageSize: 4096, BufferPages: *bufferPages,
		LockStripes: *lockStripes, BufferPartitions: *bufParts, CC: ccMode,
	}, db.Options{GroupCommit: group})
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "loading %d warehouse(s)...\n", *warehouses)
	start := time.Now()
	if err := d.Load(*seed); err != nil {
		fatal(err)
	}
	if err := d.VerifyCounts(); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "loaded in %v\n", time.Since(start).Round(time.Millisecond))

	mix := tpcc.DefaultMix()
	if *warmup > 0 {
		if err := db.RunConcurrent(d, *seed+1, mix, *warmup, *workers); err != nil {
			fatal(err)
		}
	}
	d.ResetBufferStats()

	st, err := db.RunConcurrentPolicy(d, *seed+2, mix, *txns, *workers, db.DefaultRetryPolicy())
	if err != nil {
		fatal(err)
	}

	mode := "per-commit force"
	if group.Enabled() {
		hold := "fixed"
		if group.AdaptiveHold {
			hold = "adaptive"
		}
		mode = fmt.Sprintf("group commit (batch<=%d, hold<=%v %s)", group.MaxBatch, group.MaxHold, hold)
	}
	fmt.Printf("# engine run: %d txns, %d workers, %d-page pool, %s, %v, %s\n",
		*txns, *workers, *bufferPages, ccMode, st.Elapsed.Round(time.Millisecond), mode)
	fmt.Printf("txns_per_sec\t%.0f\n", float64(*txns)/st.Elapsed.Seconds())
	fmt.Printf("tpmC\t%.0f\n", st.TpmC())
	fmt.Printf("commits\t%d\naborts\t%d\nlog_forces\t%d\n", st.Commits, st.Aborts, st.LogForces)
	fmt.Printf("forces_per_commit\t%.4f\n", st.ForcesPerCommit())
	fmt.Printf("latency_p50\t%v\nlatency_p95\t%v\nlatency_p99\t%v\nlatency_max\t%v\n",
		st.Latency.P50, st.Latency.P95, st.Latency.P99, st.Latency.Max)
	acq, waits, deadlocks := d.LockCounts()
	fmt.Printf("locks_acquired\t%d\nlock_waits\t%d\ndeadlocks\t%d\n", acq, waits, deadlocks)
	if ccMode != db.CC2PL {
		fmt.Printf("write_conflicts\t%d\nversion_chains\t%d\n", d.WriteConflicts(), d.VersionChains())
	}
	if ccMode == db.CCSSI {
		fmt.Printf("ssi_aborts\t%d\n", d.SSIAborts())
	}

	fmt.Printf("\nrelation\taccesses\tmiss_rate\n")
	stats := d.RelationStats()
	for _, rel := range core.Relations() {
		s := stats[rel]
		fmt.Printf("%s\t%d\t%.4f\n", rel, s.Accesses(), s.MissRate())
	}

	if *validate {
		fmt.Fprintf(os.Stderr, "running trace-driven simulation for comparison...\n")
		res, err := sim.RunCurve(sim.CurveConfig{
			Workload:        workload.DefaultConfig(*warehouses, *seed+2),
			Packing:         sim.PackSequential,
			CapacitiesPages: []int64{int64(*bufferPages)},
			WarmupTxns:      int64(*warmup),
			Batches:         2,
			BatchTxns:       int64(*txns) / 2,
			Level:           0.9,
		})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("\n# engine vs trace-driven simulation at %d pages\n", *bufferPages)
		fmt.Printf("relation\tengine_miss\tsim_miss\n")
		for _, rel := range []core.Relation{core.Customer, core.Stock, core.Item, core.OrderLine} {
			fmt.Printf("%s\t%.4f\t%.4f\n", rel, stats[rel].MissRate(),
				res.MissRate(rel, int64(*bufferPages)))
		}
	}

	if *crash {
		fmt.Fprintf(os.Stderr, "simulating crash + recovery...\n")
		before := d.Heap(core.Order).Live()
		if err := d.Crash(); err != nil {
			fatal(err)
		}
		if err := d.Recover(); err != nil {
			fatal(err)
		}
		after := d.Heap(core.Order).Live()
		fmt.Printf("\nrecovery\torders_before=%d\torders_after=%d\n", before, after)
		if before != after {
			fatal(fmt.Errorf("order count changed across crash: %d -> %d", before, after))
		}
		if err := d.CheckConsistency(); err != nil {
			fatal(err)
		}
		fmt.Printf("consistency_checks\tC1-C4\tok\n")
		// Prove the system still works.
		if err := db.RunConcurrent(d, *seed+3, mix, 100, 2); err != nil {
			fatal(err)
		}
		fmt.Printf("post_recovery_txns\t100\tok\n")
	}
	stop()
}

// commitCell is one grouped-vs-ungrouped benchmark measurement.
type commitCell struct {
	Workers         int     `json:"workers"`
	Grouped         bool    `json:"grouped"`
	TxnsPerSec      float64 `json:"txns_per_sec"`
	TpmC            float64 `json:"tpmc"`
	Commits         int64   `json:"commits"`
	Aborts          int64   `json:"aborts"`
	LogForces       int64   `json:"log_forces"`
	ForcesPerCommit float64 `json:"forces_per_commit"`
	AllocsPerTxn    float64 `json:"allocs_per_txn"`
	P50Micros       int64   `json:"p50_us"`
	P95Micros       int64   `json:"p95_us"`
	P99Micros       int64   `json:"p99_us"`
	MeanMicros      int64   `json:"mean_us"`
}

// runCommitCell loads a fresh single-warehouse instance and measures one
// (workers, grouped) cell of the commit-path benchmark. allocs_per_txn is
// a process-wide mallocs delta over the measured run — it includes runner
// bookkeeping and is an observability metric, not the alloc-free gate
// (that lives in the db package's allocation test).
func runCommitCell(seed uint64, txns, warmup, workers, pages int, group wal.GroupConfig) (commitCell, error) {
	opts := db.Options{}
	grouped := group.Enabled()
	if grouped {
		opts.GroupCommit = group
	}
	d, err := db.OpenWith(db.Config{Warehouses: 1, PageSize: 4096, BufferPages: pages}, opts)
	if err != nil {
		return commitCell{}, err
	}
	if err := d.Load(seed); err != nil {
		return commitCell{}, err
	}
	mix := tpcc.DefaultMix()
	if warmup > 0 {
		if err := db.RunConcurrent(d, seed+1, mix, warmup, workers); err != nil {
			return commitCell{}, err
		}
	}
	// Collect garbage from the previous cell (its whole discarded buffer
	// pool is dead heap) so no inherited GC cycle lands mid-measurement.
	runtime.GC()
	var msBefore, msAfter runtime.MemStats
	runtime.ReadMemStats(&msBefore)
	st, err := db.RunConcurrentPolicy(d, seed+2, mix, txns, workers, db.DefaultRetryPolicy())
	if err != nil {
		return commitCell{}, err
	}
	runtime.ReadMemStats(&msAfter)
	return commitCell{
		Workers:         workers,
		Grouped:         grouped,
		TxnsPerSec:      float64(txns) / st.Elapsed.Seconds(),
		TpmC:            st.TpmC(),
		Commits:         st.Commits,
		Aborts:          st.Aborts,
		LogForces:       st.LogForces,
		ForcesPerCommit: st.ForcesPerCommit(),
		AllocsPerTxn:    float64(msAfter.Mallocs-msBefore.Mallocs) / float64(txns),
		P50Micros:       st.Latency.P50.Microseconds(),
		P95Micros:       st.Latency.P95.Microseconds(),
		P99Micros:       st.Latency.P99.Microseconds(),
		MeanMicros:      st.Latency.Mean.Microseconds(),
	}, nil
}

// benchReport is the BENCH_commit.json / BENCH_engine.json schema.
type benchReport struct {
	cliutil.Hardware
	Warehouses int          `json:"warehouses"`
	Txns       int          `json:"txns_per_cell"`
	MaxBatch   int          `json:"gc_max_batch"`
	MaxHoldUS  int64        `json:"gc_max_hold_us"`
	Adaptive   bool         `json:"gc_adaptive"`
	Cells      []commitCell `json:"cells"`
}

// runBenchGrid measures grouped vs ungrouped cells at 1/2/4/8 workers on
// fresh instances and writes the JSON report extending the BENCH_*
// trajectory.
func runBenchGrid(tag, path string, seed uint64, txns, warmup, pages int, group wal.GroupConfig) error {
	rep := benchReport{
		Hardware:   cliutil.HardwareInfo(),
		Warehouses: 1,
		Txns:       txns,
		MaxBatch:   group.MaxBatch,
		MaxHoldUS:  group.MaxHold.Microseconds(),
		Adaptive:   group.AdaptiveHold,
	}
	for _, workers := range []int{1, 2, 4, 8} {
		for _, grouped := range []bool{false, true} {
			g := wal.GroupConfig{}
			if grouped {
				g = group
			}
			cell, err := runCommitCell(seed, txns, warmup, workers, pages, g)
			if err != nil {
				return fmt.Errorf("workers=%d grouped=%v: %w", workers, grouped, err)
			}
			fmt.Fprintf(os.Stderr,
				"%s: workers=%d grouped=%-5v tpmC=%-8.0f forces/commit=%.3f allocs/txn=%.1f p99=%dus\n",
				tag, cell.Workers, cell.Grouped, cell.TpmC, cell.ForcesPerCommit,
				cell.AllocsPerTxn, cell.P99Micros)
			rep.Cells = append(rep.Cells, cell)
		}
	}
	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(buf, '\n'), 0o644)
}

// runBenchCommit writes the commit-path report (BENCH_commit.json): the
// grouped-vs-ungrouped grid at the pool size the commit benchmarks have
// always used.
func runBenchCommit(path string, seed uint64, group wal.GroupConfig) error {
	return runBenchGrid("bench-commit", path, seed, 8000, 500, 8192, group)
}

// runBenchEngine writes the engine throughput report (BENCH_engine.json):
// the same grid with the whole warehouse buffer-resident, so the cells
// measure the hot execution path (and its allocs/txn) rather than pool
// churn.
func runBenchEngine(path string, seed uint64, group wal.GroupConfig) error {
	return runBenchGrid("bench-engine", path, seed, 10000, 1000, 32768, group)
}

// checkBenchReport validates a checked-in BENCH_commit.json against the
// CLI defaults and the batching thresholds, so the committed evidence
// cannot drift from the code: its knobs must equal the gc-max-batch /
// gc-max-hold flag defaults, grouped throughput must stay within 10% of
// ungrouped at every worker count, and batching must engage (forces per
// commit < 1) wherever two or more workers share the log.
func checkBenchReport(path string) error {
	buf, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var rep benchReport
	if err := json.Unmarshal(buf, &rep); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	defBatch := flag.Lookup("gc-max-batch").DefValue
	if got := fmt.Sprint(rep.MaxBatch); got != defBatch {
		return fmt.Errorf("%s: gc_max_batch %s does not match the CLI default %s — regenerate with make bench-commit",
			path, got, defBatch)
	}
	defHold, err := time.ParseDuration(flag.Lookup("gc-max-hold").DefValue)
	if err != nil {
		return err
	}
	if rep.MaxHoldUS != defHold.Microseconds() {
		return fmt.Errorf("%s: gc_max_hold_us %d does not match the CLI default %v — regenerate with make bench-commit",
			path, rep.MaxHoldUS, defHold)
	}
	byWorkers := map[int]map[bool]commitCell{}
	for _, c := range rep.Cells {
		if byWorkers[c.Workers] == nil {
			byWorkers[c.Workers] = map[bool]commitCell{}
		}
		byWorkers[c.Workers][c.Grouped] = c
	}
	for _, workers := range []int{1, 2, 4, 8} {
		pair, ok := byWorkers[workers]
		if !ok || len(pair) != 2 {
			return fmt.Errorf("%s: missing grouped/ungrouped pair at %d workers", path, workers)
		}
		grouped, ungrouped := pair[true], pair[false]
		if grouped.TpmC < 0.9*ungrouped.TpmC {
			return fmt.Errorf("%s: grouped tpmC %.0f < 0.9 x ungrouped %.0f at %d workers",
				path, grouped.TpmC, ungrouped.TpmC, workers)
		}
		if workers >= 2 && grouped.ForcesPerCommit >= 1 {
			return fmt.Errorf("%s: grouped forces per commit %.4f at %d workers, want < 1",
				path, grouped.ForcesPerCommit, workers)
		}
	}
	return nil
}

// runCommitSmoke is the CI gate for the group-commit path. Live reduced
// cells at 1/2/4/8 workers must show: ungrouped forcing exactly once per
// record, grouped batching (forces per commit < 1) at 2+ workers, and
// grouped throughput within 10% of ungrouped at every worker count — the
// single-worker cell is exactly the configuration where a fixed leader
// hold collapses throughput, so it is the regression gate for that bug.
// The throughput comparison is the best of 3 paired ratios: short cells
// on a shared CI core see ±20% scheduler noise — far more than the
// regression this gate exists to catch (a collapsing hold loses 3-10x,
// not 10%) — so each iteration runs ungrouped and grouped back-to-back
// (adjacent runs see similar machine state, cancelling drift) and the
// gate requires at least one of the three paired ratios to reach 0.9.
// With benchFile set, the checked-in report is validated too.
func runCommitSmoke(seed uint64, group wal.GroupConfig, benchFile string) error {
	const txns, warmup, runs = 4000, 400, 3
	fmt.Printf("mode\tworkers\tforces_per_commit\ttpmc\tp99_us\n")
	for _, workers := range []int{1, 2, 4, 8} {
		var ungrouped, grouped commitCell
		bestRatio := -1.0
		for i := 0; i < runs; i++ {
			u, err := runCommitCell(seed+uint64(i), txns, warmup, workers, 8192, wal.GroupConfig{})
			if err != nil {
				return err
			}
			g, err := runCommitCell(seed+uint64(i), txns, warmup, workers, 8192, group)
			if err != nil {
				return err
			}
			if u.ForcesPerCommit != 1 {
				return fmt.Errorf("ungrouped forces per commit = %.4f at %d workers, want exactly 1",
					u.ForcesPerCommit, workers)
			}
			if workers >= 2 && g.ForcesPerCommit >= 1 {
				return fmt.Errorf("grouped forces per commit = %.4f at %d workers, want < 1",
					g.ForcesPerCommit, workers)
			}
			if r := g.TpmC / u.TpmC; r > bestRatio {
				bestRatio, ungrouped, grouped = r, u, g
			}
		}
		fmt.Printf("ungrouped\t%d\t%.4f\t%.0f\t%d\n", workers,
			ungrouped.ForcesPerCommit, ungrouped.TpmC, ungrouped.P99Micros)
		fmt.Printf("grouped\t%d\t%.4f\t%.0f\t%d\n", workers,
			grouped.ForcesPerCommit, grouped.TpmC, grouped.P99Micros)
		if bestRatio < 0.9 {
			return fmt.Errorf("grouped tpmC %.0f < 0.9 x ungrouped %.0f at %d workers (best of %d paired runs)",
				grouped.TpmC, ungrouped.TpmC, workers, runs)
		}
	}
	if benchFile != "" {
		if err := checkBenchReport(benchFile); err != nil {
			return err
		}
		fmt.Printf("bench-report\t%s\tok\n", benchFile)
	}
	fmt.Println("commit-smoke: ok")
	return nil
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "tpcc-engine: %v\n", err)
	os.Exit(1)
}
