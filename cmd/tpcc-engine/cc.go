package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"

	"tpccmodel/internal/cliutil"
	"tpccmodel/internal/core"
	"tpccmodel/internal/engine/db"
	"tpccmodel/internal/engine/wal"
	"tpccmodel/internal/tpcc"
)

// The concurrency-control grid compares the three engine modes on the
// same seeded workload: 2PL (the oracle — shared read locks, blocking),
// mvcc (snapshot reads, write locks plus first-committer-wins
// validation), and ssi (mvcc plus Cahill-style serializability
// validation). The per-type breakdown is the point of the report: under
// the snapshot modes the read-only transactions (Order-Status,
// Stock-Level) must show zero conflicts and zero lock-wait aborts,
// while New-Order and Payment trade lock waits for write-conflict
// retries. For ssi the report breaks out the dangerous-structure abort
// count separately: TPC-C is serializable under plain SI (Fekete et
// al., TODS 2005), so every ssi abort on this workload is a FALSE
// POSITIVE of the conservative two-flag detector — the recorded
// ssi_false_positive_rate is the cost of the serializability guarantee.
const ccPoolPages = 32768

// ccTypeCell is one transaction type's share of a cc benchmark cell.
type ccTypeCell struct {
	Acked     int64   `json:"acked"`
	Aborts    int64   `json:"aborts"`
	Conflicts int64   `json:"write_conflicts"`
	SSIAborts int64   `json:"ssi_aborts"`
	AbortRate float64 `json:"abort_rate"`
	P50Micros int64   `json:"p50_us"`
	P95Micros int64   `json:"p95_us"`
	P99Micros int64   `json:"p99_us"`
}

// ccCell is one (workers, cc mode) measurement.
type ccCell struct {
	Workers        int                   `json:"workers"`
	CC             string                `json:"cc"`
	TxnsPerSec     float64               `json:"txns_per_sec"`
	TpmC           float64               `json:"tpmc"`
	Commits        int64                 `json:"commits"`
	Aborts         int64                 `json:"aborts"`
	Retries        int64                 `json:"retries"`
	WriteConflicts int64                 `json:"write_conflicts"`
	SSIAborts      int64                 `json:"ssi_aborts"`
	FalsePositives float64               `json:"ssi_false_positive_rate"`
	LockWaits      int64                 `json:"lock_waits"`
	Deadlocks      int64                 `json:"deadlocks"`
	P50Micros      int64                 `json:"p50_us"`
	P95Micros      int64                 `json:"p95_us"`
	P99Micros      int64                 `json:"p99_us"`
	StateHash      string                `json:"state_hash"`
	PerType        map[string]ccTypeCell `json:"per_type"`
}

// ccReport is the BENCH_cc.json schema.
type ccReport struct {
	cliutil.Hardware
	Warehouses int      `json:"warehouses"`
	Txns       int      `json:"txns_per_cell"`
	PoolPages  int      `json:"buffer_pages"`
	Cells      []ccCell `json:"cells"`
}

// runCCCell loads a fresh single-warehouse instance in the given cc mode
// and measures one cell. The state hash is taken after the run so
// same-seed single-worker cells across modes can be compared for the
// differential identity the cc smoke gates on.
func runCCCell(seed uint64, txns, warmup, workers int, cc db.CCMode, group wal.GroupConfig) (ccCell, error) {
	d, err := db.OpenWith(db.Config{
		Warehouses: 1, PageSize: 4096, BufferPages: ccPoolPages, CC: cc,
	}, db.Options{GroupCommit: group})
	if err != nil {
		return ccCell{}, err
	}
	if err := d.Load(seed); err != nil {
		return ccCell{}, err
	}
	mix := tpcc.DefaultMix()
	if warmup > 0 {
		if err := db.RunConcurrent(d, seed+1, mix, warmup, workers); err != nil {
			return ccCell{}, err
		}
	}
	// Settle the previous cell's garbage (a whole discarded pool) so no
	// inherited GC cycle lands mid-measurement.
	runtime.GC()
	waits0, dead0 := lockWaits(d)
	conflicts0 := d.WriteConflicts()
	ssiAborts0 := d.SSIAborts()
	st, err := db.RunConcurrentPolicy(d, seed+2, mix, txns, workers, db.DefaultRetryPolicy())
	if err != nil {
		return ccCell{}, err
	}
	waits1, dead1 := lockWaits(d)
	hash, err := d.StateHash()
	if err != nil {
		return ccCell{}, err
	}
	cell := ccCell{
		Workers:        workers,
		CC:             cc.String(),
		TxnsPerSec:     float64(txns) / st.Elapsed.Seconds(),
		TpmC:           st.TpmC(),
		Commits:        st.Commits,
		Aborts:         st.Aborts,
		Retries:        st.Retries,
		WriteConflicts: d.WriteConflicts() - conflicts0,
		SSIAborts:      d.SSIAborts() - ssiAborts0,
		LockWaits:      waits1 - waits0,
		Deadlocks:      dead1 - dead0,
		P50Micros:      st.Latency.P50.Microseconds(),
		P95Micros:      st.Latency.P95.Microseconds(),
		P99Micros:      st.Latency.P99.Microseconds(),
		StateHash:      fmt.Sprintf("%016x", hash),
		PerType:        map[string]ccTypeCell{},
	}
	// TPC-C under SI is serializable, so every dangerous-structure abort
	// is a detector false positive; the rate is aborts over validation
	// attempts (commits that passed plus the aborts themselves).
	if n := cell.SSIAborts; n > 0 {
		cell.FalsePositives = float64(n) / float64(cell.Commits+n)
	}
	for _, typ := range core.TxnTypes() {
		ts := st.PerType[typ]
		cell.PerType[typ.String()] = ccTypeCell{
			Acked:     ts.Acked,
			Aborts:    ts.Aborts,
			Conflicts: ts.Conflicts,
			SSIAborts: ts.SSIAborts,
			AbortRate: ts.AbortRate(),
			P50Micros: ts.P50.Microseconds(),
			P95Micros: ts.P95.Microseconds(),
			P99Micros: ts.P99.Microseconds(),
		}
	}
	return cell, nil
}

// runBenchCC writes BENCH_cc.json: {2pl, mvcc, ssi} x 1/2/4/8 workers with
// per-type abort rates and latency quantiles, plus hardware metadata so
// the recorded curves carry their core count.
func runBenchCC(path string, seed uint64, group wal.GroupConfig) error {
	const txns, warmup = 8000, 500
	rep := ccReport{
		Hardware:   cliutil.HardwareInfo(),
		Warehouses: 1,
		Txns:       txns,
		PoolPages:  ccPoolPages,
	}
	for _, workers := range []int{1, 2, 4, 8} {
		for _, cc := range []db.CCMode{db.CC2PL, db.CCMVCC, db.CCSSI} {
			cell, err := runCCCell(seed, txns, warmup, workers, cc, group)
			if err != nil {
				return fmt.Errorf("workers=%d cc=%s: %w", workers, cc, err)
			}
			fmt.Fprintf(os.Stderr,
				"bench-cc: workers=%d cc=%-4s tpmC=%-8.0f conflicts=%-5d ssi-aborts=%-4d waits=%-5d p99=%dus\n",
				cell.Workers, cell.CC, cell.TpmC, cell.WriteConflicts, cell.SSIAborts, cell.LockWaits, cell.P99Micros)
			rep.Cells = append(rep.Cells, cell)
		}
	}
	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(buf, '\n'), 0o644)
}

// checkCCReport validates a checked-in BENCH_cc.json: all three modes
// present at every worker count, single-worker state hashes identical
// across modes (the differential identity, recorded evidence),
// read-only transaction types free of write conflicts under the
// snapshot modes, ssi abort accounting internally consistent
// (zero at 1 worker — no concurrency, no edges — and the recorded
// false-positive rate matching the counts), and mvcc/ssi tpmC within
// 10% of 2PL at 1 worker — neither versioning nor SIREAD bookkeeping
// may tax the uncontended path. Multi-worker ratios are evidence, not
// gates.
func checkCCReport(path string) error {
	buf, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var rep ccReport
	if err := json.Unmarshal(buf, &rep); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	if rep.Cores <= 0 {
		return fmt.Errorf("%s: missing hardware metadata", path)
	}
	type key struct {
		workers int
		cc      string
	}
	cells := map[key]ccCell{}
	for _, c := range rep.Cells {
		cells[key{c.Workers, c.CC}] = c
	}
	for _, workers := range []int{1, 2, 4, 8} {
		pess, ok := cells[key{workers, "2pl"}]
		if !ok {
			return fmt.Errorf("%s: missing 2pl cell at %d workers", path, workers)
		}
		for _, mode := range []string{"mvcc", "ssi"} {
			mv, ok := cells[key{workers, mode}]
			if !ok {
				return fmt.Errorf("%s: missing %s cell at %d workers", path, mode, workers)
			}
			// Read-only types must be conflict-free (nothing written,
			// nothing to conflict on). They are NOT required to be free
			// of ssi aborts: a reader that lands under a version created
			// by an already-committed pivot cannot break the dangerous
			// structure by aborting the pivot, so it yields instead.
			for _, typ := range []core.TxnType{core.TxnOrderStatus, core.TxnStockLevel} {
				tc := mv.PerType[typ.String()]
				if tc.Conflicts != 0 {
					return fmt.Errorf("%s: read-only %s shows %d write conflicts under %s at %d workers",
						path, typ, tc.Conflicts, mode, workers)
				}
				if mode != "ssi" && tc.SSIAborts != 0 {
					return fmt.Errorf("%s: %s cell at %d workers reports per-type ssi aborts under %s",
						path, typ, workers, mode)
				}
			}
			if mode != "ssi" && mv.SSIAborts != 0 {
				return fmt.Errorf("%s: %s cell at %d workers reports %d ssi aborts", path, mode, workers, mv.SSIAborts)
			}
			if mode == "ssi" {
				wantFP := 0.0
				if mv.SSIAborts > 0 {
					wantFP = float64(mv.SSIAborts) / float64(mv.Commits+mv.SSIAborts)
				}
				if diff := mv.FalsePositives - wantFP; diff > 1e-9 || diff < -1e-9 {
					return fmt.Errorf("%s: ssi false-positive rate %.6f inconsistent with counts (want %.6f) at %d workers",
						path, mv.FalsePositives, wantFP, workers)
				}
			}
			if workers == 1 {
				if mode == "ssi" && mv.SSIAborts != 0 {
					return fmt.Errorf("%s: single-worker ssi run reports %d ssi aborts — no concurrency, no edges",
						path, mv.SSIAborts)
				}
				if pess.StateHash != mv.StateHash {
					return fmt.Errorf("%s: single-worker state hashes diverge: 2pl=%s %s=%s — the modes committed different histories",
						path, pess.StateHash, mode, mv.StateHash)
				}
				if mv.TpmC < 0.9*pess.TpmC {
					return fmt.Errorf("%s: %s tpmC %.0f < 0.9 x 2pl %.0f at 1 worker",
						path, mode, mv.TpmC, pess.TpmC)
				}
			}
		}
	}
	return nil
}

// runCCSmoke is the CI gate for the snapshot CC paths. Live gates at 1
// worker, for mvcc and ssi each paired against the same-seed 2PL run:
// the differential identity (the single-worker schedule must land on
// byte-identical state — the state hash IS the oracle comparison),
// throughput (within 10% of 2PL, best of 3 paired runs to cancel
// scheduler drift on a shared core), and zero ssi aborts (one worker
// means no concurrency, so any dangerous-structure abort is a detector
// bug). Before the grid, the write-skew certification runs: the
// WriteSkewWitness schedule must be ADMITTED under mvcc and REFUSED
// under 2pl and ssi — the anomaly flipping to forbidden is the point of
// the ssi mode. Multi-worker cells are printed for the record but not
// throughput-gated: on a 1-core runner added workers measure context
// switching. Read-only conflict-freedom is gated at every worker count.
// With benchFile set, the checked-in BENCH_cc.json is validated too.
func runCCSmoke(seed uint64, group wal.GroupConfig, benchFile string) error {
	const txns, warmup, runs = 4000, 400, 3
	for _, wc := range []struct {
		cc   db.CCMode
		want bool
	}{{db.CC2PL, false}, {db.CCMVCC, true}, {db.CCSSI, false}} {
		got, err := db.WriteSkewWitness(wc.cc)
		if err != nil {
			return fmt.Errorf("write-skew witness under %s: %w", wc.cc, err)
		}
		if got != wc.want {
			return fmt.Errorf("write-skew witness under %s: admitted=%v, want %v", wc.cc, got, wc.want)
		}
		fmt.Printf("write-skew\t%s\tadmitted=%v\n", wc.cc, got)
	}
	fmt.Printf("cc\tworkers\ttpmc\tconflicts\tssi_aborts\tlock_waits\tratio\n")
	snapModes := []db.CCMode{db.CCMVCC, db.CCSSI}
	for _, workers := range []int{1, 2, 4, 8} {
		bestRatio := map[db.CCMode]float64{db.CCMVCC: -1, db.CCSSI: -1}
		best := map[db.CCMode]ccCell{}
		bestPess := map[db.CCMode]ccCell{}
		for i := 0; i < runs; i++ {
			p, err := runCCCell(seed+uint64(i), txns, warmup, workers, db.CC2PL, group)
			if err != nil {
				return err
			}
			for _, cc := range snapModes {
				m, err := runCCCell(seed+uint64(i), txns, warmup, workers, cc, group)
				if err != nil {
					return err
				}
				if workers == 1 {
					if p.StateHash != m.StateHash {
						return fmt.Errorf("single-worker state hashes diverge at seed %d: 2pl=%s %s=%s",
							seed+uint64(i), p.StateHash, cc, m.StateHash)
					}
					if m.SSIAborts != 0 {
						return fmt.Errorf("single-worker %s run hit %d ssi aborts at seed %d",
							cc, m.SSIAborts, seed+uint64(i))
					}
				}
				// Read-only types stay conflict-free in every mode. Their
				// ssi aborts are NOT gated to zero: a reader under a
				// committed pivot's version must yield (the pivot can no
				// longer be the victim).
				for _, typ := range []core.TxnType{core.TxnOrderStatus, core.TxnStockLevel} {
					tc := m.PerType[typ.String()]
					if tc.Conflicts != 0 {
						return fmt.Errorf("read-only %s hit %d write conflicts under %s at %d workers",
							typ, tc.Conflicts, cc, workers)
					}
				}
				if r := m.TpmC / p.TpmC; r > bestRatio[cc] {
					bestRatio[cc], best[cc], bestPess[cc] = r, m, p
				}
			}
		}
		pess := bestPess[db.CCMVCC]
		fmt.Printf("2pl\t%d\t%.0f\t%d\t%d\t%d\t\n", workers, pess.TpmC, pess.WriteConflicts, pess.SSIAborts, pess.LockWaits)
		for _, cc := range snapModes {
			m := best[cc]
			fmt.Printf("%s\t%d\t%.0f\t%d\t%d\t%d\t%.3f\n", cc, workers, m.TpmC, m.WriteConflicts, m.SSIAborts, m.LockWaits, bestRatio[cc])
			if workers == 1 && bestRatio[cc] < 0.9 {
				return fmt.Errorf("%s tpmC %.0f < 0.9 x 2pl %.0f at 1 worker (best of %d paired runs)",
					cc, m.TpmC, bestPess[cc].TpmC, runs)
			}
		}
	}
	if benchFile != "" {
		if err := checkCCReport(benchFile); err != nil {
			return err
		}
		fmt.Printf("bench-report\t%s\tok\n", benchFile)
	}
	fmt.Println("cc-smoke: ok")
	return nil
}
