package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"

	"tpccmodel/internal/cliutil"
	"tpccmodel/internal/core"
	"tpccmodel/internal/engine/db"
	"tpccmodel/internal/engine/wal"
	"tpccmodel/internal/tpcc"
)

// The concurrency-control grid compares the two engine modes on the
// same seeded workload: 2PL (the oracle — shared read locks, blocking)
// and mvcc (snapshot reads, write locks plus first-committer-wins
// validation). The per-type breakdown is the point of the report: under
// mvcc the read-only transactions (Order-Status, Stock-Level) must show
// zero conflicts and zero lock-wait aborts, while New-Order and Payment
// trade lock waits for write-conflict retries.
const ccPoolPages = 32768

// ccTypeCell is one transaction type's share of a cc benchmark cell.
type ccTypeCell struct {
	Acked     int64   `json:"acked"`
	Aborts    int64   `json:"aborts"`
	Conflicts int64   `json:"write_conflicts"`
	AbortRate float64 `json:"abort_rate"`
	P50Micros int64   `json:"p50_us"`
	P95Micros int64   `json:"p95_us"`
	P99Micros int64   `json:"p99_us"`
}

// ccCell is one (workers, cc mode) measurement.
type ccCell struct {
	Workers        int                   `json:"workers"`
	CC             string                `json:"cc"`
	TxnsPerSec     float64               `json:"txns_per_sec"`
	TpmC           float64               `json:"tpmc"`
	Commits        int64                 `json:"commits"`
	Aborts         int64                 `json:"aborts"`
	Retries        int64                 `json:"retries"`
	WriteConflicts int64                 `json:"write_conflicts"`
	LockWaits      int64                 `json:"lock_waits"`
	Deadlocks      int64                 `json:"deadlocks"`
	P50Micros      int64                 `json:"p50_us"`
	P95Micros      int64                 `json:"p95_us"`
	P99Micros      int64                 `json:"p99_us"`
	StateHash      string                `json:"state_hash"`
	PerType        map[string]ccTypeCell `json:"per_type"`
}

// ccReport is the BENCH_cc.json schema.
type ccReport struct {
	cliutil.Hardware
	Warehouses int      `json:"warehouses"`
	Txns       int      `json:"txns_per_cell"`
	PoolPages  int      `json:"buffer_pages"`
	Cells      []ccCell `json:"cells"`
}

// runCCCell loads a fresh single-warehouse instance in the given cc mode
// and measures one cell. The state hash is taken after the run so
// same-seed single-worker cells across modes can be compared for the
// differential identity the cc smoke gates on.
func runCCCell(seed uint64, txns, warmup, workers int, cc db.CCMode, group wal.GroupConfig) (ccCell, error) {
	d, err := db.OpenWith(db.Config{
		Warehouses: 1, PageSize: 4096, BufferPages: ccPoolPages, CC: cc,
	}, db.Options{GroupCommit: group})
	if err != nil {
		return ccCell{}, err
	}
	if err := d.Load(seed); err != nil {
		return ccCell{}, err
	}
	mix := tpcc.DefaultMix()
	if warmup > 0 {
		if err := db.RunConcurrent(d, seed+1, mix, warmup, workers); err != nil {
			return ccCell{}, err
		}
	}
	// Settle the previous cell's garbage (a whole discarded pool) so no
	// inherited GC cycle lands mid-measurement.
	runtime.GC()
	waits0, dead0 := lockWaits(d)
	conflicts0 := d.WriteConflicts()
	st, err := db.RunConcurrentPolicy(d, seed+2, mix, txns, workers, db.DefaultRetryPolicy())
	if err != nil {
		return ccCell{}, err
	}
	waits1, dead1 := lockWaits(d)
	hash, err := d.StateHash()
	if err != nil {
		return ccCell{}, err
	}
	cell := ccCell{
		Workers:        workers,
		CC:             cc.String(),
		TxnsPerSec:     float64(txns) / st.Elapsed.Seconds(),
		TpmC:           st.TpmC(),
		Commits:        st.Commits,
		Aborts:         st.Aborts,
		Retries:        st.Retries,
		WriteConflicts: d.WriteConflicts() - conflicts0,
		LockWaits:      waits1 - waits0,
		Deadlocks:      dead1 - dead0,
		P50Micros:      st.Latency.P50.Microseconds(),
		P95Micros:      st.Latency.P95.Microseconds(),
		P99Micros:      st.Latency.P99.Microseconds(),
		StateHash:      fmt.Sprintf("%016x", hash),
		PerType:        map[string]ccTypeCell{},
	}
	for _, typ := range core.TxnTypes() {
		ts := st.PerType[typ]
		cell.PerType[typ.String()] = ccTypeCell{
			Acked:     ts.Acked,
			Aborts:    ts.Aborts,
			Conflicts: ts.Conflicts,
			AbortRate: ts.AbortRate(),
			P50Micros: ts.P50.Microseconds(),
			P95Micros: ts.P95.Microseconds(),
			P99Micros: ts.P99.Microseconds(),
		}
	}
	return cell, nil
}

// runBenchCC writes BENCH_cc.json: {2pl, mvcc} x 1/2/4/8 workers with
// per-type abort rates and latency quantiles, plus hardware metadata so
// the recorded curves carry their core count.
func runBenchCC(path string, seed uint64, group wal.GroupConfig) error {
	const txns, warmup = 8000, 500
	rep := ccReport{
		Hardware:   cliutil.HardwareInfo(),
		Warehouses: 1,
		Txns:       txns,
		PoolPages:  ccPoolPages,
	}
	for _, workers := range []int{1, 2, 4, 8} {
		for _, cc := range []db.CCMode{db.CC2PL, db.CCMVCC} {
			cell, err := runCCCell(seed, txns, warmup, workers, cc, group)
			if err != nil {
				return fmt.Errorf("workers=%d cc=%s: %w", workers, cc, err)
			}
			fmt.Fprintf(os.Stderr,
				"bench-cc: workers=%d cc=%-4s tpmC=%-8.0f conflicts=%-5d waits=%-5d p99=%dus\n",
				cell.Workers, cell.CC, cell.TpmC, cell.WriteConflicts, cell.LockWaits, cell.P99Micros)
			rep.Cells = append(rep.Cells, cell)
		}
	}
	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(buf, '\n'), 0o644)
}

// checkCCReport validates a checked-in BENCH_cc.json: both modes present
// at every worker count, single-worker state hashes identical across
// modes (the differential identity, recorded evidence), read-only
// transaction types free of write conflicts under mvcc, and mvcc tpmC
// within 10% of 2PL at 1 worker — versioning must not tax the
// uncontended path. Multi-worker ratios are evidence, not gates.
func checkCCReport(path string) error {
	buf, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var rep ccReport
	if err := json.Unmarshal(buf, &rep); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	if rep.Cores <= 0 {
		return fmt.Errorf("%s: missing hardware metadata", path)
	}
	type key struct {
		workers int
		cc      string
	}
	cells := map[key]ccCell{}
	for _, c := range rep.Cells {
		cells[key{c.Workers, c.CC}] = c
	}
	for _, workers := range []int{1, 2, 4, 8} {
		pess, ok := cells[key{workers, "2pl"}]
		if !ok {
			return fmt.Errorf("%s: missing 2pl cell at %d workers", path, workers)
		}
		mv, ok := cells[key{workers, "mvcc"}]
		if !ok {
			return fmt.Errorf("%s: missing mvcc cell at %d workers", path, workers)
		}
		for _, typ := range []core.TxnType{core.TxnOrderStatus, core.TxnStockLevel} {
			if tc := mv.PerType[typ.String()]; tc.Conflicts != 0 {
				return fmt.Errorf("%s: read-only %s shows %d write conflicts under mvcc at %d workers",
					path, typ, tc.Conflicts, workers)
			}
		}
		if workers == 1 {
			if pess.StateHash != mv.StateHash {
				return fmt.Errorf("%s: single-worker state hashes diverge: 2pl=%s mvcc=%s — the modes committed different histories",
					path, pess.StateHash, mv.StateHash)
			}
			if mv.TpmC < 0.9*pess.TpmC {
				return fmt.Errorf("%s: mvcc tpmC %.0f < 0.9 x 2pl %.0f at 1 worker",
					path, mv.TpmC, pess.TpmC)
			}
		}
	}
	return nil
}

// runCCSmoke is the CI gate for the mvcc path. Two live gates at 1
// worker: the differential identity (same seed, same single-worker
// schedule under 2PL and mvcc must land on byte-identical state — the
// state hash IS the oracle comparison) and throughput (mvcc within 10%
// of 2PL, best of 3 paired runs to cancel scheduler drift on a shared
// core, same reasoning as the commit and scale smokes). Multi-worker
// cells are printed for the record — conflicts and lock waits trading
// places is the expected signature — but not throughput-gated: on a
// 1-core runner added workers measure context switching. Read-only
// conflict-freedom under mvcc is gated at every worker count. With
// benchFile set, the checked-in BENCH_cc.json is validated too.
func runCCSmoke(seed uint64, group wal.GroupConfig, benchFile string) error {
	const txns, warmup, runs = 4000, 400, 3
	fmt.Printf("cc\tworkers\ttpmc\tconflicts\tlock_waits\tratio\n")
	for _, workers := range []int{1, 2, 4, 8} {
		var pess, mv ccCell
		bestRatio := -1.0
		for i := 0; i < runs; i++ {
			p, err := runCCCell(seed+uint64(i), txns, warmup, workers, db.CC2PL, group)
			if err != nil {
				return err
			}
			m, err := runCCCell(seed+uint64(i), txns, warmup, workers, db.CCMVCC, group)
			if err != nil {
				return err
			}
			if workers == 1 && p.StateHash != m.StateHash {
				return fmt.Errorf("single-worker state hashes diverge at seed %d: 2pl=%s mvcc=%s",
					seed+uint64(i), p.StateHash, m.StateHash)
			}
			for _, typ := range []core.TxnType{core.TxnOrderStatus, core.TxnStockLevel} {
				if tc := m.PerType[typ.String()]; tc.Conflicts != 0 {
					return fmt.Errorf("read-only %s hit %d write conflicts under mvcc at %d workers",
						typ, tc.Conflicts, workers)
				}
			}
			if r := m.TpmC / p.TpmC; r > bestRatio {
				bestRatio, pess, mv = r, p, m
			}
		}
		fmt.Printf("2pl\t%d\t%.0f\t%d\t%d\t\n", workers, pess.TpmC, pess.WriteConflicts, pess.LockWaits)
		fmt.Printf("mvcc\t%d\t%.0f\t%d\t%d\t%.3f\n", workers, mv.TpmC, mv.WriteConflicts, mv.LockWaits, bestRatio)
		if workers == 1 && bestRatio < 0.9 {
			return fmt.Errorf("mvcc tpmC %.0f < 0.9 x 2pl %.0f at 1 worker (best of %d paired runs)",
				mv.TpmC, pess.TpmC, runs)
		}
	}
	if benchFile != "" {
		if err := checkCCReport(benchFile); err != nil {
			return err
		}
		fmt.Printf("bench-report\t%s\tok\n", benchFile)
	}
	fmt.Println("cc-smoke: ok")
	return nil
}
