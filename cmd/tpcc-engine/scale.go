package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"

	"tpccmodel/internal/cliutil"
	"tpccmodel/internal/engine/db"
	"tpccmodel/internal/engine/lock"
	"tpccmodel/internal/engine/wal"
	"tpccmodel/internal/tpcc"
)

// The scalability grid compares the sharded engine structures against the
// global-mutex baselines: stripes=1 IS the seed lock manager (one table,
// one mutex) and partitions=1 IS the seed buffer pool, so the baseline
// legs measure the pre-striping engine rather than a reconstruction of it.
const (
	scaleStripes    = lock.DefaultStripes
	scalePartitions = 8
	scalePoolPages  = 8192
)

// scaleCell is one (workers, lock layout, pool layout) measurement.
type scaleCell struct {
	Workers          int     `json:"workers"`
	LockStripes      int     `json:"lock_stripes"`
	BufferPartitions int     `json:"buffer_partitions"`
	TxnsPerSec       float64 `json:"txns_per_sec"`
	TpmC             float64 `json:"tpmc"`
	Commits          int64   `json:"commits"`
	Aborts           int64   `json:"aborts"`
	LockWaits        int64   `json:"lock_waits"`
	Deadlocks        int64   `json:"deadlocks"`
	P99Micros        int64   `json:"p99_us"`
}

// scaleReport is the BENCH_scale.json schema.
type scaleReport struct {
	cliutil.Hardware
	Warehouses int         `json:"warehouses"`
	Txns       int         `json:"txns_per_cell"`
	Stripes    int         `json:"striped_lock_stripes"`
	Partitions int         `json:"partitioned_pool_partitions"`
	PoolPages  int         `json:"buffer_pages"`
	Cells      []scaleCell `json:"cells"`
}

// runScaleCell loads a fresh single-warehouse instance with the given lock
// and pool layout and measures one cell.
func runScaleCell(seed uint64, txns, warmup, workers, stripes, partitions int, group wal.GroupConfig) (scaleCell, error) {
	d, err := db.OpenWith(db.Config{
		Warehouses: 1, PageSize: 4096, BufferPages: scalePoolPages,
		LockStripes: stripes, BufferPartitions: partitions,
	}, db.Options{GroupCommit: group})
	if err != nil {
		return scaleCell{}, err
	}
	if err := d.Load(seed); err != nil {
		return scaleCell{}, err
	}
	mix := tpcc.DefaultMix()
	if warmup > 0 {
		if err := db.RunConcurrent(d, seed+1, mix, warmup, workers); err != nil {
			return scaleCell{}, err
		}
	}
	// Settle the previous cell's garbage (a whole discarded pool) so no
	// inherited GC cycle lands mid-measurement.
	runtime.GC()
	waits0, dead0 := lockWaits(d)
	st, err := db.RunConcurrentPolicy(d, seed+2, mix, txns, workers, db.DefaultRetryPolicy())
	if err != nil {
		return scaleCell{}, err
	}
	waits1, dead1 := lockWaits(d)
	return scaleCell{
		Workers:          workers,
		LockStripes:      stripes,
		BufferPartitions: partitions,
		TxnsPerSec:       float64(txns) / st.Elapsed.Seconds(),
		TpmC:             st.TpmC(),
		Commits:          st.Commits,
		Aborts:           st.Aborts,
		LockWaits:        waits1 - waits0,
		Deadlocks:        dead1 - dead0,
		P99Micros:        st.Latency.P99.Microseconds(),
	}, nil
}

func lockWaits(d *db.DB) (waits, deadlocks int64) {
	_, w, dl := d.LockCounts()
	return w, dl
}

// runBenchScale writes BENCH_scale.json: workers x {striped, global lock}
// x {partitioned, unified pool}, with hardware metadata so the recorded
// scaling curve carries its core count.
func runBenchScale(path string, seed uint64, group wal.GroupConfig) error {
	const txns, warmup = 8000, 500
	rep := scaleReport{
		Hardware:   cliutil.HardwareInfo(),
		Warehouses: 1,
		Txns:       txns,
		Stripes:    scaleStripes,
		Partitions: scalePartitions,
		PoolPages:  scalePoolPages,
	}
	for _, workers := range []int{1, 2, 4, 8} {
		for _, layout := range []struct{ stripes, parts int }{
			{1, 1}, {scaleStripes, 1}, {1, scalePartitions}, {scaleStripes, scalePartitions},
		} {
			cell, err := runScaleCell(seed, txns, warmup, workers, layout.stripes, layout.parts, group)
			if err != nil {
				return fmt.Errorf("workers=%d stripes=%d partitions=%d: %w",
					workers, layout.stripes, layout.parts, err)
			}
			fmt.Fprintf(os.Stderr,
				"bench-scale: workers=%d stripes=%-2d partitions=%d tpmC=%-8.0f waits=%-6d p99=%dus\n",
				cell.Workers, cell.LockStripes, cell.BufferPartitions, cell.TpmC,
				cell.LockWaits, cell.P99Micros)
			rep.Cells = append(rep.Cells, cell)
		}
	}
	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(buf, '\n'), 0o644)
}

// checkScaleReport validates a checked-in BENCH_scale.json: its layout
// knobs must match the binary's constants, every worker count must carry
// the sharded and global cells, and at 1 worker the sharded engine must be
// within 5% of the global-mutex baseline — striping must not tax the
// uncontended path. Multi-worker ratios are evidence, not gates: the
// recorded hardware says how many cores they were measured on.
func checkScaleReport(path string) error {
	buf, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var rep scaleReport
	if err := json.Unmarshal(buf, &rep); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	if rep.Cores <= 0 {
		return fmt.Errorf("%s: missing hardware metadata", path)
	}
	if rep.Stripes != scaleStripes || rep.Partitions != scalePartitions {
		return fmt.Errorf("%s: layout %d stripes / %d partitions does not match the binary (%d/%d) — regenerate with make bench-scale",
			path, rep.Stripes, rep.Partitions, scaleStripes, scalePartitions)
	}
	type key struct{ workers, stripes, parts int }
	cells := map[key]scaleCell{}
	for _, c := range rep.Cells {
		cells[key{c.Workers, c.LockStripes, c.BufferPartitions}] = c
	}
	for _, workers := range []int{1, 2, 4, 8} {
		sharded, ok := cells[key{workers, scaleStripes, scalePartitions}]
		if !ok {
			return fmt.Errorf("%s: missing sharded cell at %d workers", path, workers)
		}
		global, ok := cells[key{workers, 1, 1}]
		if !ok {
			return fmt.Errorf("%s: missing global-mutex cell at %d workers", path, workers)
		}
		if workers == 1 && sharded.TpmC < 0.95*global.TpmC {
			return fmt.Errorf("%s: sharded tpmC %.0f < 0.95 x global %.0f at 1 worker",
				path, sharded.TpmC, global.TpmC)
		}
	}
	return nil
}

// runScaleSmoke is the CI gate for the sharded engine. The live gate runs
// only at 1 worker: striping and partitioning must not cost more than 5%
// when uncontended. Like the commit smoke, it takes the best of 3 paired
// runs — adjacent global/sharded runs see similar machine state, so the
// pairing cancels scheduler drift that short cells on a shared core
// otherwise read as regression. Multi-worker ratios are printed for the
// record but not gated: on a 1-core runner added workers measure context
// switching, not parallelism. With benchFile set, the checked-in
// BENCH_scale.json is validated too.
func runScaleSmoke(seed uint64, group wal.GroupConfig, benchFile string) error {
	const txns, warmup, runs = 4000, 400, 3
	fmt.Printf("layout\tworkers\ttpmc\tlock_waits\tratio\n")
	for _, workers := range []int{1, 2, 4, 8} {
		var global, sharded scaleCell
		bestRatio := -1.0
		for i := 0; i < runs; i++ {
			g, err := runScaleCell(seed+uint64(i), txns, warmup, workers, 1, 1, group)
			if err != nil {
				return err
			}
			s, err := runScaleCell(seed+uint64(i), txns, warmup, workers, scaleStripes, scalePartitions, group)
			if err != nil {
				return err
			}
			if r := s.TpmC / g.TpmC; r > bestRatio {
				bestRatio, global, sharded = r, g, s
			}
		}
		fmt.Printf("global\t%d\t%.0f\t%d\t\n", workers, global.TpmC, global.LockWaits)
		fmt.Printf("sharded\t%d\t%.0f\t%d\t%.3f\n", workers, sharded.TpmC, sharded.LockWaits, bestRatio)
		if workers == 1 && bestRatio < 0.95 {
			return fmt.Errorf("sharded tpmC %.0f < 0.95 x global %.0f at 1 worker (best of %d paired runs)",
				sharded.TpmC, global.TpmC, runs)
		}
	}
	if benchFile != "" {
		if err := checkScaleReport(benchFile); err != nil {
			return err
		}
		fmt.Printf("bench-report\t%s\tok\n", benchFile)
	}
	fmt.Println("scale-smoke: ok")
	return nil
}
