// Command tpcc-skew regenerates the paper's Section 3 access-skew results:
// Table 1 and Figures 3-7, plus the headline "x% of accesses go to y% of
// the data" numbers. Output is TSV on stdout.
//
// Usage:
//
//	tpcc-skew -experiment fig5 -points 200
//	tpcc-skew -experiment fig3 -stride 100
//	tpcc-skew -experiment table1 -warehouses 20
//	tpcc-skew -experiment headlines
package main

import (
	"flag"
	"fmt"
	"os"

	"tpccmodel/internal/cliutil"
	"tpccmodel/internal/experiments"
)

func main() {
	var (
		experiment = flag.String("experiment", "headlines",
			"one of: table1, fig3, fig4, fig5, fig6, fig7, headlines")
		stride     = flag.Int("stride", 100, "PMF downsampling stride (figs 3, 4, 6)")
		points     = flag.Int("points", 100, "CDF sample points (figs 5, 7)")
		warehouses = flag.Int("warehouses", 20, "warehouse count (table1)")
		pageSize   = flag.Int("pagesize", 4096, "page size in bytes (table1)")
	)
	flag.Parse()

	const tool = "tpcc-skew"
	cliutil.RequirePositive(tool, "stride", int64(*stride))
	cliutil.RequirePositive(tool, "points", int64(*points))
	cliutil.RequirePositive(tool, "warehouses", int64(*warehouses))
	cliutil.RequirePositive(tool, "pagesize", int64(*pageSize))

	var s experiments.Series
	switch *experiment {
	case "table1":
		s = experiments.Table1(*warehouses, *pageSize)
	case "fig3":
		s = experiments.Fig3(*stride)
	case "fig4":
		s = experiments.Fig4(*stride)
	case "fig5":
		s = experiments.Fig5(*points)
	case "fig6":
		s = experiments.Fig6(*stride)
	case "fig7":
		s = experiments.Fig7(*points)
	case "headlines":
		s = experiments.SkewHeadlines()
	default:
		cliutil.Fail(tool, "unknown experiment %q", *experiment)
	}
	if err := s.WriteTSV(os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "tpcc-skew: %v\n", err)
		os.Exit(1)
	}
}
