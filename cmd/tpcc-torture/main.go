// Command tpcc-torture crash-tortures the storage engine: for each seed
// it loads a TPC-C database over a fault-injecting device, then runs
// repeated schedules of concurrent transactions with transient I/O
// errors, silent bit flips, randomly timed device crashes, power loss,
// and recovery — asserting after every schedule that the TPC-C
// consistency conditions hold, every acknowledged commit survived, and
// every injected corruption was detected by the page checksums.
//
// Usage:
//
//	tpcc-torture -seeds 5 -schedules 10 -txns 400 -workers 4
//	tpcc-torture -seeds 2 -schedules 5 -flip 0.01 -v
//
// The process exits 1 if any schedule violated an invariant.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"tpccmodel/internal/cliutil"
	"tpccmodel/internal/engine/fault"
	"tpccmodel/internal/engine/wal"
)

func main() {
	def := fault.DefaultTortureConfig()
	var (
		seeds       = flag.Int("seeds", def.Seeds, "independent database seeds")
		schedules   = flag.Int("schedules", def.Schedules, "crash schedules per seed")
		txns        = flag.Int("txns", def.Txns, "transactions attempted per schedule")
		workers     = flag.Int("workers", def.Workers, "concurrent workers")
		wh          = flag.Int("warehouses", def.Warehouses, "warehouse count")
		pages       = flag.Int("buffer-pages", def.BufferPages, "buffer pool capacity in pages")
		pageSize    = flag.Int("page-size", def.PageSize, "page size in bytes")
		baseSeed    = flag.Uint64("seed", def.BaseSeed, "base random seed")
		readErr     = flag.Float64("read-err", def.Faults.ReadErrProb, "transient read error probability")
		writeErr    = flag.Float64("write-err", def.Faults.WriteErrProb, "transient write error probability")
		forceErr    = flag.Float64("force-err", def.Faults.ForceErrProb, "log force error probability")
		flip        = flag.Float64("flip", def.Faults.BitFlipProb, "silent bit-flip probability per page write")
		groupCommit = flag.Bool("group-commit", true, "batch commit forces (leader/follower group commit)")
		gcBatch     = flag.Int("gc-max-batch", 16, "max commit/abort records per group-commit force")
		gcHold      = flag.Duration("gc-max-hold", 200*time.Microsecond, "max time a batch leader waits for followers")
		gcAdaptive  = flag.Bool("gc-adaptive", true, "scale the leader's hold to observed commit arrivals (a solo committer forces immediately)")
		verbose     = flag.Bool("v", false, "print per-schedule results")
	)
	flag.Parse()

	const tool = "tpcc-torture"
	cliutil.RequirePositive(tool, "seeds", int64(*seeds))
	cliutil.RequirePositive(tool, "schedules", int64(*schedules))
	cliutil.RequirePositive(tool, "txns", int64(*txns))
	cliutil.RequirePositive(tool, "workers", int64(*workers))
	cliutil.RequirePositive(tool, "warehouses", int64(*wh))
	cliutil.RequirePositive(tool, "buffer-pages", int64(*pages))
	cliutil.RequirePositive(tool, "page-size", int64(*pageSize))
	cliutil.RequireProb(tool, "read-err", *readErr)
	cliutil.RequireProb(tool, "write-err", *writeErr)
	cliutil.RequireProb(tool, "force-err", *forceErr)
	cliutil.RequireProb(tool, "flip", *flip)

	cfg := def
	cfg.Seeds = *seeds
	cfg.Schedules = *schedules
	cfg.Txns = *txns
	cfg.Workers = *workers
	cfg.Warehouses = *wh
	cfg.BufferPages = *pages
	cfg.PageSize = *pageSize
	cfg.BaseSeed = *baseSeed
	cfg.Faults = fault.Config{
		ReadErrProb:  *readErr,
		WriteErrProb: *writeErr,
		ForceErrProb: *forceErr,
		BitFlipProb:  *flip,
	}
	if *groupCommit {
		cliutil.RequirePositive(tool, "gc-max-batch", int64(*gcBatch))
		cfg.GroupCommit = wal.GroupConfig{MaxBatch: *gcBatch, MaxHold: *gcHold, AdaptiveHold: *gcAdaptive}
	}

	start := time.Now()
	rep, err := fault.Torture(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tpcc-torture:", err)
		if rep != nil {
			for _, v := range rep.Violations {
				fmt.Fprintln(os.Stderr, "  violation:", v)
			}
		}
		os.Exit(1)
	}
	if *verbose {
		for _, s := range rep.Schedules {
			kind := "quiescent"
			if s.MidRunCrash {
				kind = "mid-run"
			}
			fmt.Printf("seed=%d schedule=%d crash=%s acked=%d retries=%d sheds=%d log-truncated=%dB violations=%d\n",
				s.Seed, s.Schedule, kind, s.Acked, s.Retries, s.Sheds,
				s.TruncatedBytes, len(s.Violations))
		}
	}
	fmt.Println(rep.Summary())
	fmt.Printf("elapsed: %v\n", time.Since(start).Round(time.Millisecond))
	if !rep.OK() {
		for _, v := range rep.Violations {
			fmt.Fprintln(os.Stderr, "violation:", v)
		}
		os.Exit(1)
	}
}
