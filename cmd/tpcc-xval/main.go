// Command tpcc-xval cross-validates the storage engine against the
// modeling pipeline: it runs the TPC-C mix on the real engine with the
// buffer manager's reference stream tapped, replays that stream through
// the LRU stack-distance simulation (the hit/miss counts must match the
// engine bit for bit), and compares both against the synthetic
// trace-driven curves and Che's analytic closed form within documented
// tolerances, writing a three-way agreement report as TSV and JSON.
//
// Usage:
//
//	tpcc-xval
//	tpcc-xval -warehouses 2 -buffer-pages 4096 -txns 20000 -out results
//	tpcc-xval -capacities 512,1024,2048,8192 -tol 0.1 -tol-analytic 0.15
//
// The process exits 1 when any agreement gate fails.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"tpccmodel/internal/cliutil"
	"tpccmodel/internal/xval"
)

func main() {
	def := xval.DefaultConfig()
	var (
		wh       = flag.Int("warehouses", def.Warehouses, "warehouse count")
		pages    = flag.Int("buffer-pages", def.BufferPages, "engine buffer pool capacity in pages")
		pageSize = flag.Int("page-size", def.PageSize, "page size in bytes")
		warmup   = flag.Int("warmup", def.WarmupTxns, "engine warmup transactions before measurement")
		txns     = flag.Int("txns", def.MeasureTxns, "engine transactions measured")
		seed     = flag.Uint64("seed", def.Seed, "random seed (load + both streams)")
		capsFlag = flag.String("capacities", capsDefault(def.CapacitiesPages),
			"comma-separated buffer sizes in pages for the three-way comparison")
		simWarm  = flag.Int64("sim-warmup", def.SimWarmupTxns, "synthetic simulation warmup transactions")
		batches  = flag.Int("sim-batches", def.SimBatches, "synthetic simulation batches")
		batchTx  = flag.Int64("sim-batch-txns", def.SimBatchTxns, "transactions per synthetic batch")
		tol      = flag.Float64("tol", def.TolReplaySim, "engine-vs-simulation miss-rate tolerance")
		tolAna   = flag.Float64("tol-analytic", def.TolAnalytic, "simulation-vs-analytic miss-rate tolerance")
		out      = flag.String("out", "", "directory for xval.tsv and xval.json (empty = stdout TSV only)")
	)
	flag.Parse()

	const tool = "tpcc-xval"
	cliutil.RequirePositive(tool, "warehouses", int64(*wh))
	cliutil.RequirePositive(tool, "buffer-pages", int64(*pages))
	cliutil.RequirePositive(tool, "page-size", int64(*pageSize))
	cliutil.RequireNonNegative(tool, "warmup", int64(*warmup))
	cliutil.RequirePositive(tool, "txns", int64(*txns))
	cliutil.RequireNonNegative(tool, "sim-warmup", *simWarm)
	cliutil.RequirePositive(tool, "sim-batches", int64(*batches))
	cliutil.RequirePositive(tool, "sim-batch-txns", *batchTx)
	cliutil.RequirePositiveFloat(tool, "tol", *tol)
	cliutil.RequirePositiveFloat(tool, "tol-analytic", *tolAna)
	caps, err := parseCaps(*capsFlag)
	if err != nil {
		cliutil.Fail(tool, "-capacities: %v", err)
	}

	cfg := xval.Config{
		Warehouses:      *wh,
		PageSize:        *pageSize,
		BufferPages:     *pages,
		WarmupTxns:      *warmup,
		MeasureTxns:     *txns,
		Seed:            *seed,
		CapacitiesPages: caps,
		SimWarmupTxns:   *simWarm,
		SimBatches:      *batches,
		SimBatchTxns:    *batchTx,
		TolReplaySim:    *tol,
		TolAnalytic:     *tolAna,
	}
	if err := cfg.Validate(); err != nil {
		cliutil.Fail(tool, "%v", err)
	}

	start := time.Now()
	res, err := xval.Run(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", tool, err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "%s: %d measured accesses in %v\n",
		tool, res.MeasuredAccesses, time.Since(start).Round(time.Millisecond))

	if *out == "" {
		if err := res.WriteTSV(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", tool, err)
			os.Exit(1)
		}
	} else {
		if err := writeReports(*out, res); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", tool, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "%s: wrote %s and %s\n", tool,
			filepath.Join(*out, "xval.tsv"), filepath.Join(*out, "xval.json"))
	}

	if err := res.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "%s: DISAGREEMENT: %v\n", tool, err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "%s: all gates passed (exact replay + both tolerances)\n", tool)
}

func capsDefault(caps []int64) string {
	parts := make([]string, len(caps))
	for i, c := range caps {
		parts[i] = strconv.FormatInt(c, 10)
	}
	return strings.Join(parts, ",")
}

func parseCaps(s string) ([]int64, error) {
	var out []int64
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.ParseInt(part, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad capacity %q", part)
		}
		if v <= 0 {
			return nil, fmt.Errorf("capacity must be positive, got %d", v)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("need at least one capacity")
	}
	return out, nil
}

func writeReports(dir string, res *xval.Result) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	tsv, err := os.Create(filepath.Join(dir, "xval.tsv"))
	if err != nil {
		return err
	}
	if err := res.WriteTSV(tsv); err != nil {
		tsv.Close()
		return err
	}
	if err := tsv.Close(); err != nil {
		return err
	}
	jf, err := os.Create(filepath.Join(dir, "xval.json"))
	if err != nil {
		return err
	}
	if err := res.WriteJSON(jf); err != nil {
		jf.Close()
		return err
	}
	return jf.Close()
}
