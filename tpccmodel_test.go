package tpccmodel_test

import (
	"math"
	"testing"

	"tpccmodel"
)

func TestFacadeSkewPipeline(t *testing.T) {
	pmf := tpccmodel.ExactPMF(tpccmodel.StockItemDistribution())
	if len(pmf) != 100000 {
		t.Fatalf("stock PMF support = %d", len(pmf))
	}
	lz := tpccmodel.NewLorenz(pmf)
	if got := lz.AccessShareOfHottest(0.20); math.Abs(got-0.84) > 0.03 {
		t.Errorf("hottest-20%% share = %v, paper says ~0.84", got)
	}
	cust := tpccmodel.CustomerAccessPMF()
	if len(cust) != 3000 {
		t.Fatalf("customer PMF support = %d", len(cust))
	}
	if tpccmodel.NewLorenz(cust).AccessShareOfHottest(0.2) >= lz.AccessShareOfHottest(0.2) {
		t.Error("customer must be less skewed than stock")
	}
}

func TestFacadeSimToModelPipeline(t *testing.T) {
	cfg := tpccmodel.MissCurveConfig{
		Workload:        tpccmodel.DefaultWorkload(1, 3),
		Packing:         tpccmodel.PackSequential,
		CapacitiesPages: []int64{1024, 8192},
		WarmupTxns:      1000,
		Batches:         2,
		BatchTxns:       2000,
		Level:           0.9,
	}
	curve, err := tpccmodel.RunMissCurve(cfg)
	if err != nil {
		t.Fatal(err)
	}
	small := tpccmodel.MaxThroughput(tpccmodel.DefaultSystemParams(), tpccmodel.DemandsAt(curve, 0))
	large := tpccmodel.MaxThroughput(tpccmodel.DefaultSystemParams(), tpccmodel.DemandsAt(curve, 1))
	if large.NewOrderPerMin < small.NewOrderPerMin {
		t.Errorf("more memory lowered throughput: %v -> %v",
			small.NewOrderPerMin, large.NewOrderPerMin)
	}
	pts := tpccmodel.Scaleup(tpccmodel.DefaultSystemParams(),
		tpccmodel.DemandsAt(curve, 1), tpccmodel.DefaultDistConfig(0, true), []int{1, 8})
	if pts[1].ScaleupEfficiency < 0.9 || pts[1].ScaleupEfficiency > 1 {
		t.Errorf("replicated efficiency = %v", pts[1].ScaleupEfficiency)
	}
}

func TestFacadeDirectSimPolicies(t *testing.T) {
	res, err := tpccmodel.RunDirectSim(tpccmodel.DirectSimConfig{
		Workload:    tpccmodel.DefaultWorkload(1, 5),
		Packing:     tpccmodel.PackOptimized,
		Policy:      "slru",
		BufferPages: 2048,
		WarmupTxns:  500,
		Batches:     2,
		BatchTxns:   1000,
		Level:       0.9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Overall.Accesses == 0 {
		t.Error("no accesses recorded")
	}
}

func TestFacadeEngine(t *testing.T) {
	eng, err := tpccmodel.OpenEngine(tpccmodel.EngineConfig{
		Warehouses: 1, PageSize: 4096, BufferPages: 1 << 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Load(1); err != nil {
		t.Fatal(err)
	}
	if err := tpccmodel.RunEngineConcurrent(eng, 2, tpccmodel.DefaultMix(), 200, 2); err != nil {
		t.Fatal(err)
	}
	if eng.Commits() < 200 {
		t.Errorf("commits = %d", eng.Commits())
	}
	if err := eng.Crash(); err != nil {
		t.Fatal(err)
	}
	if err := eng.Recover(); err != nil {
		t.Fatal(err)
	}
	// The engine keeps serving after recovery, through the facade types.
	in := tpccmodel.EngineNewOrderInput{W: 0, D: 3, C: 7}
	for i := 0; i < 5; i++ {
		in.Items = append(in.Items, tpccmodel.EngineOrderItem{IID: int64(i), SupplyW: 0, Qty: 1})
	}
	if _, err := eng.NewOrder(in); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeMixAndConfig(t *testing.T) {
	mix := tpccmodel.DefaultMix()
	if err := mix.Validate(); err != nil {
		t.Fatal(err)
	}
	if !mix.Drains() {
		t.Error("default mix must drain the new-order relation")
	}
	opts := tpccmodel.ReducedOptions()
	if opts.Warehouses <= 0 || len(opts.BufferMB) == 0 {
		t.Errorf("reduced options malformed: %+v", opts)
	}
	full := tpccmodel.FullScaleOptions()
	if full.Warehouses != 20 || full.Batches != 30 || full.BatchTxns != 100000 {
		t.Errorf("full-scale options should match the paper: %+v", full)
	}
}
