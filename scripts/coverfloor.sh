#!/usr/bin/env bash
# coverfloor.sh — run the coverage-gated test subset and enforce
# per-package statement-coverage floors. Writes the merged profile to
# coverage.out (uploaded as a CI artifact) or to the path given as $1.
# Floors sit a few points below the current measurements; raise them as
# coverage grows, never lower them to let a regression pass.
set -euo pipefail
cd "$(dirname "$0")/.."

profile=${1:-coverage.out}

# package<TAB>floor(percent)
floors="
tpccmodel/internal/buffer	85.0
tpccmodel/internal/sim	88.0
tpccmodel/internal/engine/bufmgr	75.0
tpccmodel/internal/engine/shard	75.0
tpccmodel/internal/engine/mvcc	90.0
tpccmodel/internal/engine/db	78.0
"

pkgs=$(echo "$floors" | awk 'NF {print $1}' | sed 's|^tpccmodel|.|')
# shellcheck disable=SC2086  # pkgs is a deliberate word list
out=$(go test -coverprofile="$profile" $pkgs)
echo "$out"

fail=0
while read -r pkg floor; do
    [ -z "$pkg" ] && continue
    pct=$(echo "$out" | awk -v p="$pkg" \
        '$2==p {for(i=1;i<=NF;i++) if($i~/%$/){sub(/%/,"",$i); print $i; exit}}')
    if [ -z "$pct" ]; then
        echo "coverfloor: no coverage reported for $pkg" >&2
        fail=1
        continue
    fi
    if awk -v a="$pct" -v b="$floor" 'BEGIN{exit !(a<b)}'; then
        echo "coverfloor: FAIL $pkg coverage $pct% is below floor $floor%" >&2
        fail=1
    else
        echo "coverfloor: ok   $pkg $pct% >= $floor%"
    fi
done <<EOF
$floors
EOF
exit $fail
