module tpccmodel

go 1.22
