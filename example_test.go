package tpccmodel_test

import (
	"fmt"

	"tpccmodel"
)

// ExampleNewLorenz reproduces the paper's headline skew statement for the
// stock relation.
func ExampleNewLorenz() {
	pmf := tpccmodel.ExactPMF(tpccmodel.StockItemDistribution())
	lz := tpccmodel.NewLorenz(pmf)
	fmt.Printf("hottest 20%% of tuples: %.0f%% of accesses\n",
		lz.AccessShareOfHottest(0.20)*100)
	fmt.Printf("hottest 2%% of tuples: %.0f%% of accesses\n",
		lz.AccessShareOfHottest(0.02)*100)
	// Output:
	// hottest 20% of tuples: 84% of accesses
	// hottest 2% of tuples: 39% of accesses
}

// ExampleMaxThroughput couples a tiny buffer simulation to the paper's
// throughput model.
func ExampleMaxThroughput() {
	curve, err := tpccmodel.RunMissCurve(tpccmodel.MissCurveConfig{
		Workload:        tpccmodel.DefaultWorkload(1, 1993),
		Packing:         tpccmodel.PackOptimized,
		CapacitiesPages: []int64{8192},
		WarmupTxns:      1000,
		Batches:         2,
		BatchTxns:       2000,
		Level:           0.90,
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	tp := tpccmodel.MaxThroughput(tpccmodel.DefaultSystemParams(),
		tpccmodel.DemandsAt(curve, 0))
	// A 10 MIPS processor at 80% utilization supports on the order of
	// 150-200 new-order transactions per minute.
	fmt.Println(tp.NewOrderPerMin > 120 && tp.NewOrderPerMin < 250)
	// Output:
	// true
}

// ExampleDefaultDistConfig evaluates the Appendix A expectations behind
// the paper's distributed results.
func ExampleDefaultDistConfig() {
	cfg := tpccmodel.DefaultDistConfig(10, true)
	e := cfg.Expect()
	fmt.Printf("E[remote stock fetches per New-Order] = %.3f\n", e.ERs)
	fmt.Printf("P[all stock local] = %.3f\n", e.LStock)
	// Output:
	// E[remote stock fetches per New-Order] = 0.090
	// P[all stock local] = 0.914
}
