package stats

import (
	"math"
	"testing"
	"testing/quick"

	"tpccmodel/internal/rng"
)

func TestWelfordMeanVariance(t *testing.T) {
	var w Welford
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	for _, x := range xs {
		w.Add(x)
	}
	if w.N() != 8 {
		t.Fatalf("N = %d, want 8", w.N())
	}
	if got := w.Mean(); math.Abs(got-5) > 1e-12 {
		t.Errorf("Mean = %v, want 5", got)
	}
	// Unbiased sample variance of the classic dataset is 32/7.
	if got, want := w.Variance(), 32.0/7.0; math.Abs(got-want) > 1e-12 {
		t.Errorf("Variance = %v, want %v", got, want)
	}
}

func TestWelfordEmptyAndSingle(t *testing.T) {
	var w Welford
	if w.Mean() != 0 || w.Variance() != 0 {
		t.Error("empty Welford should report zeros")
	}
	w.Add(3.5)
	if w.Mean() != 3.5 || w.Variance() != 0 {
		t.Error("single-sample Welford: mean 3.5, variance 0")
	}
}

func TestWelfordMergeMatchesSequential(t *testing.T) {
	f := func(seed uint64, split uint8) bool {
		r := rng.New(seed)
		n := 50 + int(split%100)
		k := int(split) % n
		var all, a, b Welford
		for i := 0; i < n; i++ {
			x := r.Float64()*100 - 50
			all.Add(x)
			if i < k {
				a.Add(x)
			} else {
				b.Add(x)
			}
		}
		a.Merge(b)
		return a.N() == all.N() &&
			math.Abs(a.Mean()-all.Mean()) < 1e-9 &&
			math.Abs(a.Variance()-all.Variance()) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNormalQuantileKnownValues(t *testing.T) {
	cases := []struct{ p, want float64 }{
		{0.5, 0},
		{0.975, 1.959964},
		{0.95, 1.644854},
		{0.05, -1.644854},
		{0.995, 2.575829},
	}
	for _, c := range cases {
		if got := NormalQuantile(c.p); math.Abs(got-c.want) > 1e-4 {
			t.Errorf("NormalQuantile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestNormalQuantileSymmetry(t *testing.T) {
	f := func(u float64) bool {
		p := math.Mod(math.Abs(u), 0.98)/2 + 0.01 // p in (0.01, 0.5)
		return math.Abs(NormalQuantile(p)+NormalQuantile(1-p)) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTQuantileKnownValues(t *testing.T) {
	// Two-sided critical values from standard t tables.
	cases := []struct {
		level float64
		df    int
		want  float64
	}{
		{0.90, 29, 1.699}, // the paper's 30-batch configuration
		{0.95, 29, 2.045},
		{0.90, 9, 1.833},
		{0.95, 4, 2.776},
		{0.99, 29, 2.756},
		{0.90, 1000, 1.6464},
	}
	for _, c := range cases {
		got := TQuantile(c.level, c.df)
		if math.Abs(got-c.want)/c.want > 0.005 {
			t.Errorf("TQuantile(%v, %d) = %v, want %v", c.level, c.df, got, c.want)
		}
	}
}

func TestTQuantileExceedsNormal(t *testing.T) {
	for _, df := range []int{2, 5, 10, 30, 100} {
		tq := TQuantile(0.90, df)
		z := NormalQuantile(0.95)
		if tq <= z {
			t.Errorf("t(df=%d) = %v should exceed z = %v", df, tq, z)
		}
	}
}

func TestBatchMeans(t *testing.T) {
	b := NewBatchMeans(10)
	if _, err := b.Interval(0.9); err != ErrTooFewBatches {
		t.Errorf("expected ErrTooFewBatches, got %v", err)
	}
	r := rng.New(7)
	for i := 0; i < 300; i++ {
		b.Add(5 + r.Float64()) // mean 5.5
	}
	if b.Batches() != 30 {
		t.Fatalf("Batches = %d, want 30", b.Batches())
	}
	iv, err := b.Interval(0.90)
	if err != nil {
		t.Fatal(err)
	}
	if iv.Mean < 5.3 || iv.Mean > 5.7 {
		t.Errorf("batch-means mean %v implausible for U(5,6)", iv.Mean)
	}
	if iv.Lo() > 5.5 || iv.Hi() < 5.5 {
		t.Errorf("90%% CI [%v, %v] should cover true mean 5.5 (flaky only if t-quantile wrong)", iv.Lo(), iv.Hi())
	}
	if iv.N != 30 {
		t.Errorf("interval N = %d, want 30", iv.N)
	}
}

func TestBatchMeansPartialBatchExcluded(t *testing.T) {
	b := NewBatchMeans(100)
	for i := 0; i < 250; i++ {
		b.Add(1)
	}
	if b.Batches() != 2 {
		t.Errorf("Batches = %d, want 2 (partial batch must not count)", b.Batches())
	}
}

func TestLag1Autocorrelation(t *testing.T) {
	// Independent batches: r1 near zero, inside the white-noise band.
	b := NewBatchMeans(1)
	r := rng.New(21)
	for i := 0; i < 200; i++ {
		b.Add(r.Float64())
	}
	if r1 := b.Lag1Autocorrelation(); math.Abs(r1) > 0.2 {
		t.Errorf("iid batches: r1 = %v, want near 0", r1)
	}
	if !b.BatchesIndependent() {
		t.Error("iid batches flagged as correlated")
	}

	// Strongly trending batches: large positive r1, flagged.
	c := NewBatchMeans(1)
	for i := 0; i < 100; i++ {
		c.Add(float64(i))
	}
	if r1 := c.Lag1Autocorrelation(); r1 < 0.8 {
		t.Errorf("trending batches: r1 = %v, want near 1", r1)
	}
	if c.BatchesIndependent() {
		t.Error("trending batches passed the independence check")
	}

	// Degenerate cases.
	d := NewBatchMeans(1)
	d.Add(1)
	d.Add(1)
	if r1 := d.Lag1Autocorrelation(); r1 != 0 {
		t.Errorf("too few batches: r1 = %v, want 0", r1)
	}
	for i := 0; i < 10; i++ {
		d.Add(1)
	}
	if r1 := d.Lag1Autocorrelation(); r1 != 0 {
		t.Errorf("constant batches: r1 = %v, want 0 (zero variance)", r1)
	}
}

func TestIntervalRelativeHalfWidth(t *testing.T) {
	iv := Interval{Mean: 0.2, HalfWidth: 0.01}
	if got := iv.RelativeHalfWidth(); math.Abs(got-0.05) > 1e-12 {
		t.Errorf("RelativeHalfWidth = %v, want 0.05", got)
	}
	if got := (Interval{}).RelativeHalfWidth(); got != 0 {
		t.Errorf("zero interval RelativeHalfWidth = %v, want 0", got)
	}
	if got := (Interval{HalfWidth: 1}).RelativeHalfWidth(); !math.IsInf(got, 1) {
		t.Errorf("zero-mean interval should be +Inf, got %v", got)
	}
}

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram(10, 5)
	for _, v := range []int64{0, 9, 10, 49, 50, 1000} {
		h.Add(v)
	}
	if h.Total() != 6 {
		t.Errorf("Total = %d", h.Total())
	}
	if h.Bucket(0) != 2 || h.Bucket(1) != 1 || h.Bucket(4) != 1 {
		t.Errorf("bucket counts wrong: %d %d %d", h.Bucket(0), h.Bucket(1), h.Bucket(4))
	}
	if h.Overflow() != 2 {
		t.Errorf("Overflow = %d, want 2", h.Overflow())
	}
	if h.Max() != 1000 {
		t.Errorf("Max = %d", h.Max())
	}
	if got := h.CumulativeLE(9); got != 2 {
		t.Errorf("CumulativeLE(9) = %d, want 2", got)
	}
	if got := h.CumulativeLE(49); got != 4 {
		t.Errorf("CumulativeLE(49) = %d, want 4", got)
	}
}

func TestHistogramMerge(t *testing.T) {
	a := NewHistogram(10, 5)
	b := NewHistogram(10, 5)
	merged := NewHistogram(10, 5)
	for _, v := range []int64{0, 9, 50} {
		a.Add(v)
		merged.Add(v)
	}
	for _, v := range []int64{10, 49, 1000} {
		b.Add(v)
		merged.Add(v)
	}
	a.Merge(b)
	if a.Total() != merged.Total() || a.Overflow() != merged.Overflow() ||
		a.Max() != merged.Max() || a.Mean() != merged.Mean() {
		t.Errorf("merged total/overflow/max/mean = %d/%d/%d/%v, want %d/%d/%d/%v",
			a.Total(), a.Overflow(), a.Max(), a.Mean(),
			merged.Total(), merged.Overflow(), merged.Max(), merged.Mean())
	}
	for i := 0; i < a.Buckets(); i++ {
		if a.Bucket(i) != merged.Bucket(i) {
			t.Errorf("bucket %d = %d, want %d", i, a.Bucket(i), merged.Bucket(i))
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("merging mismatched geometries did not panic")
		}
	}()
	a.Merge(NewHistogram(5, 5))
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram(1, 100)
	for v := int64(0); v < 100; v++ {
		h.Add(v)
	}
	med := h.Quantile(0.5)
	if med < 48 || med > 52 {
		t.Errorf("median = %v, want ~50", med)
	}
	if got := h.Quantile(1); got != 99 {
		t.Errorf("Quantile(1) = %v, want max 99", got)
	}
}

func TestHistogramQuantileZero(t *testing.T) {
	h := NewHistogram(1, 100)
	for _, v := range []int64{5, 6, 7} {
		h.Add(v)
	}
	// q=0 is the distribution's lower edge: the start of the first
	// non-empty bucket, not 0.
	if got := h.Quantile(0); got != 5 {
		t.Errorf("Quantile(0) = %v, want 5", got)
	}
	// Out-of-range q clamps rather than extrapolating.
	if got := h.Quantile(-0.5); got != 5 {
		t.Errorf("Quantile(-0.5) = %v, want 5", got)
	}
	var empty Histogram
	if got := (&empty).Quantile(0); got != 0 {
		t.Errorf("empty Quantile(0) = %v, want 0", got)
	}
}

func TestHistogramQuantileAllOverflow(t *testing.T) {
	h := NewHistogram(10, 5)
	h.Add(1000)
	h.Add(2000)
	if h.Overflow() != h.Total() {
		t.Fatalf("Overflow = %d, Total = %d, want all overflow", h.Overflow(), h.Total())
	}
	// With every observation past the bucketed range, any quantile can
	// only be reported as the max.
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := h.Quantile(q); got != 2000 {
			t.Errorf("Quantile(%v) = %v, want max 2000", q, got)
		}
	}
}

func TestHistogramMergeEmptySide(t *testing.T) {
	full := NewHistogram(10, 5)
	for _, v := range []int64{0, 25, 1000} {
		full.Add(v)
	}
	// Empty receiver absorbs the full histogram...
	into := NewHistogram(10, 5)
	into.Merge(full)
	// ...and merging an empty histogram changes nothing.
	full.Merge(NewHistogram(10, 5))
	for _, h := range []*Histogram{into, full} {
		if h.Total() != 3 || h.Overflow() != 1 || h.Max() != 1000 {
			t.Errorf("total/overflow/max = %d/%d/%d, want 3/1/1000",
				h.Total(), h.Overflow(), h.Max())
		}
		if h.Bucket(0) != 1 || h.Bucket(2) != 1 {
			t.Errorf("bucket counts = %d/%d, want 1/1", h.Bucket(0), h.Bucket(2))
		}
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{5, 1, 3, 2, 4})
	if s.N != 5 || s.Min != 1 || s.Max != 5 || s.Median != 3 || s.Mean != 3 {
		t.Errorf("Summarize = %+v", s)
	}
	if z := Summarize(nil); z.N != 0 {
		t.Errorf("empty Summarize should be zero, got %+v", z)
	}
}

func TestDistancesMetrics(t *testing.T) {
	p := []float64{0.5, 0.5}
	q := []float64{0.5, 0.5}
	if d := KLDivergence(p, q); d != 0 {
		t.Errorf("KL(p,p) = %v, want 0", d)
	}
	if d := TotalVariation(p, q); d != 0 {
		t.Errorf("TV(p,p) = %v, want 0", d)
	}
	r := []float64{1, 0}
	if d := TotalVariation(p, r); math.Abs(d-0.5) > 1e-12 {
		t.Errorf("TV = %v, want 0.5", d)
	}
	if d := KLDivergence(r, []float64{0, 1}); !math.IsInf(d, 1) {
		t.Errorf("KL with disjoint support should be +Inf, got %v", d)
	}
}
