package stats

import (
	"math"
	"sort"
)

// Lorenz represents the paper's Figure 5/7 skew curves: entities (tuples or
// pages) are sorted by access probability and the cumulative probability of
// access is plotted against the cumulative fraction of the data. The paper
// orders entities coldest-first, so the curve is convex and lies below the
// diagonal; the more convex, the more skew.
type Lorenz struct {
	// sortedProbs holds the access probabilities sorted ascending
	// (coldest first), normalized to sum to 1.
	sortedProbs []float64
	// cumProb[i] is the cumulative access probability of the i+1 coldest
	// entities.
	cumProb []float64
}

// NewLorenz builds a Lorenz curve from unnormalized access weights (for
// example a PMF, or raw access counts). Weights must be non-negative and
// must not all be zero.
func NewLorenz(weights []float64) *Lorenz {
	if len(weights) == 0 {
		panic("stats: Lorenz curve needs at least one weight")
	}
	probs := make([]float64, len(weights))
	var total float64
	for i, w := range weights {
		if w < 0 || math.IsNaN(w) {
			panic("stats: Lorenz weights must be non-negative")
		}
		probs[i] = w
		total += w
	}
	if total == 0 {
		panic("stats: Lorenz weights must not all be zero")
	}
	sort.Float64s(probs)
	cum := make([]float64, len(probs))
	var c float64
	for i, p := range probs {
		probs[i] = p / total
		c += probs[i]
		cum[i] = c
	}
	// Guard against rounding: force the final cumulative value to 1.
	cum[len(cum)-1] = 1
	return &Lorenz{sortedProbs: probs, cumProb: cum}
}

// N returns the number of entities in the curve.
func (l *Lorenz) N() int { return len(l.sortedProbs) }

// CumulativeAt returns the cumulative access probability of the coldest
// dataFrac fraction of entities. dataFrac is clamped to [0,1]. This is the
// y-value of the Figure 5 curve at x = dataFrac.
func (l *Lorenz) CumulativeAt(dataFrac float64) float64 {
	if dataFrac <= 0 {
		return 0
	}
	if dataFrac >= 1 {
		return 1
	}
	// The curve is piecewise linear between entity boundaries.
	pos := dataFrac * float64(len(l.sortedProbs))
	idx := int(pos)
	frac := pos - float64(idx)
	var base float64
	if idx > 0 {
		base = l.cumProb[idx-1]
	}
	if idx >= len(l.sortedProbs) {
		return 1
	}
	return base + frac*l.sortedProbs[idx]
}

// AccessShareOfHottest returns the fraction of accesses that go to the
// hottest dataFrac fraction of entities — the paper's headline numbers, e.g.
// "84% of the accesses go to about 20% of the tuples" is
// AccessShareOfHottest(0.20) ≈ 0.84 for the stock relation.
func (l *Lorenz) AccessShareOfHottest(dataFrac float64) float64 {
	return 1 - l.CumulativeAt(1-dataFrac)
}

// DataShareOfAccesses returns the smallest fraction of (hottest) entities
// that capture at least accessFrac of the accesses. This inverts
// AccessShareOfHottest.
func (l *Lorenz) DataShareOfAccesses(accessFrac float64) float64 {
	if accessFrac <= 0 {
		return 0
	}
	if accessFrac >= 1 {
		return 1
	}
	// Hottest entities are at the end of the sorted order. The suffix
	// starting after index i has mass 1-cumProb[i], so the smallest
	// sufficient suffix starts after the largest i with cumProb[i] <=
	// target (within float tolerance).
	target := 1 - accessFrac
	i := sort.SearchFloat64s(l.cumProb, target)
	for i < len(l.cumProb) && l.cumProb[i] <= target+1e-12 {
		i++
	}
	return float64(len(l.cumProb)-i) / float64(len(l.cumProb))
}

// Gini returns the Gini coefficient of the access distribution: 0 for
// uniform access, approaching 1 for extreme skew.
func (l *Lorenz) Gini() float64 {
	n := float64(len(l.sortedProbs))
	var area float64
	var prev float64
	for _, c := range l.cumProb {
		area += (prev + c) / 2 / n
		prev = c
	}
	return 1 - 2*area
}

// Points returns up to maxPoints (cumulativeDataFraction,
// cumulativeAccessFraction) samples of the curve, coldest-first, suitable
// for plotting Figures 5 and 7. The first point is always (0,0) and the
// last is (1,1).
func (l *Lorenz) Points(maxPoints int) [][2]float64 {
	if maxPoints < 2 {
		maxPoints = 2
	}
	n := len(l.cumProb)
	step := 1
	if n > maxPoints-1 {
		step = (n + maxPoints - 2) / (maxPoints - 1)
	}
	pts := [][2]float64{{0, 0}}
	for i := step - 1; i < n; i += step {
		pts = append(pts, [2]float64{float64(i+1) / float64(n), l.cumProb[i]})
	}
	if last := pts[len(pts)-1]; last[0] != 1 {
		pts = append(pts, [2]float64{1, 1})
	}
	return pts
}
