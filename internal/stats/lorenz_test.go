package stats

import (
	"math"
	"testing"
	"testing/quick"

	"tpccmodel/internal/rng"
)

func TestLorenzUniform(t *testing.T) {
	w := make([]float64, 100)
	for i := range w {
		w[i] = 1
	}
	l := NewLorenz(w)
	// Uniform access: the curve is the diagonal and Gini is ~0.
	for _, f := range []float64{0.1, 0.25, 0.5, 0.9} {
		if got := l.CumulativeAt(f); math.Abs(got-f) > 1e-9 {
			t.Errorf("CumulativeAt(%v) = %v, want %v", f, got, f)
		}
	}
	if g := l.Gini(); math.Abs(g) > 0.011 {
		t.Errorf("uniform Gini = %v, want ~0", g)
	}
	if got := l.AccessShareOfHottest(0.2); math.Abs(got-0.2) > 1e-9 {
		t.Errorf("AccessShareOfHottest(0.2) = %v, want 0.2", got)
	}
}

func TestLorenzExtremeSkew(t *testing.T) {
	// One entity takes all accesses.
	w := make([]float64, 100)
	w[42] = 1
	l := NewLorenz(w)
	if got := l.AccessShareOfHottest(0.01); got != 1 {
		t.Errorf("hottest 1%% should carry all accesses, got %v", got)
	}
	if got := l.CumulativeAt(0.5); got != 0 {
		t.Errorf("coldest half carries %v, want 0", got)
	}
	if g := l.Gini(); g < 0.98 {
		t.Errorf("extreme-skew Gini = %v, want ~1", g)
	}
}

func TestLorenzEightyTwenty(t *testing.T) {
	// Construct an exact 80/20 distribution: 20 hot entities with weight
	// 4 each (80 total), 80 cold entities with weight 0.25 each (20 total).
	w := make([]float64, 100)
	for i := 0; i < 20; i++ {
		w[i] = 4
	}
	for i := 20; i < 100; i++ {
		w[i] = 0.25
	}
	l := NewLorenz(w)
	if got := l.AccessShareOfHottest(0.20); math.Abs(got-0.80) > 1e-9 {
		t.Errorf("80-20 rule: AccessShareOfHottest(0.2) = %v, want 0.8", got)
	}
	if got := l.DataShareOfAccesses(0.80); math.Abs(got-0.20) > 1e-9 {
		t.Errorf("DataShareOfAccesses(0.8) = %v, want 0.2", got)
	}
}

func TestLorenzMonotoneAndConvex(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		w := make([]float64, 200)
		for i := range w {
			w[i] = r.Float64() * 10
		}
		w[0] = 1 // ensure not all zero
		l := NewLorenz(w)
		prev := 0.0
		prevSlope := -1.0
		for i := 1; i <= 100; i++ {
			x := float64(i) / 100
			y := l.CumulativeAt(x)
			if y < prev-1e-12 {
				return false // must be monotone
			}
			slope := (y - prev) * 100
			if slope < prevSlope-1e-9 {
				return false // coldest-first ordering makes slopes nondecreasing
			}
			prev, prevSlope = y, slope
		}
		return math.Abs(l.CumulativeAt(1)-1) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestLorenzInverseConsistency(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		w := make([]float64, 150)
		for i := range w {
			w[i] = math.Pow(r.Float64(), 4) // skewed weights
		}
		w[0] = 0.5
		l := NewLorenz(w)
		for _, af := range []float64{0.1, 0.39, 0.5, 0.84} {
			df := l.DataShareOfAccesses(af)
			// The hottest df entities must carry at least af accesses.
			if l.AccessShareOfHottest(df) < af-1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestLorenzPoints(t *testing.T) {
	w := []float64{1, 2, 3, 4}
	l := NewLorenz(w)
	pts := l.Points(10)
	if pts[0] != [2]float64{0, 0} {
		t.Errorf("first point = %v, want (0,0)", pts[0])
	}
	last := pts[len(pts)-1]
	if last[0] != 1 || math.Abs(last[1]-1) > 1e-12 {
		t.Errorf("last point = %v, want (1,1)", last)
	}
	// Downsampled case.
	big := make([]float64, 1000)
	for i := range big {
		big[i] = float64(i + 1)
	}
	pts = NewLorenz(big).Points(20)
	if len(pts) > 22 {
		t.Errorf("Points(20) returned %d points", len(pts))
	}
}

func TestLorenzPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"empty":    func() { NewLorenz(nil) },
		"negative": func() { NewLorenz([]float64{1, -1}) },
		"allzero":  func() { NewLorenz([]float64{0, 0}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}
