package stats

import (
	"math"
	"sort"
)

// Histogram is a fixed-width bucket histogram over non-negative integer
// values, with an explicit overflow bucket. It is used for stack-distance
// distributions and transaction-size distributions.
type Histogram struct {
	width    int64
	counts   []int64
	overflow int64
	total    int64
	sum      float64
	max      int64
}

// NewHistogram creates a histogram with the given bucket width and bucket
// count; values >= width*buckets land in the overflow bucket.
func NewHistogram(width int64, buckets int) *Histogram {
	if width <= 0 || buckets <= 0 {
		panic("stats: histogram width and buckets must be positive")
	}
	return &Histogram{width: width, counts: make([]int64, buckets)}
}

// Add records one observation of value v (must be non-negative).
func (h *Histogram) Add(v int64) {
	if v < 0 {
		panic("stats: histogram values must be non-negative")
	}
	b := v / h.width
	if b >= int64(len(h.counts)) {
		h.overflow++
	} else {
		h.counts[b]++
	}
	h.total++
	h.sum += float64(v)
	if v > h.max {
		h.max = v
	}
}

// Merge adds another histogram's observations into h. Both histograms
// must share the same bucket width and bucket count (parallel workers
// accumulate privately and merge after joining).
func (h *Histogram) Merge(o *Histogram) {
	if h.width != o.width || len(h.counts) != len(o.counts) {
		panic("stats: merging histograms with different geometry")
	}
	for i, c := range o.counts {
		h.counts[i] += c
	}
	h.overflow += o.overflow
	h.total += o.total
	h.sum += o.sum
	if o.max > h.max {
		h.max = o.max
	}
}

// Total returns the number of observations.
func (h *Histogram) Total() int64 { return h.total }

// Mean returns the mean observation (0 when empty).
func (h *Histogram) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	return h.sum / float64(h.total)
}

// Max returns the maximum observation (0 when empty).
func (h *Histogram) Max() int64 { return h.max }

// Overflow returns the number of observations beyond the bucketed range.
func (h *Histogram) Overflow() int64 { return h.overflow }

// Bucket returns the count in bucket i (values [i*width, (i+1)*width)).
func (h *Histogram) Bucket(i int) int64 { return h.counts[i] }

// Buckets returns the number of regular buckets.
func (h *Histogram) Buckets() int { return len(h.counts) }

// CumulativeLE returns the number of observations with value <= v, assuming
// v aligns with a bucket boundary minus one; for other v it returns the
// count of full buckets at or below v (a lower bound).
func (h *Histogram) CumulativeLE(v int64) int64 {
	if v < 0 {
		return 0
	}
	nb := (v + 1) / h.width
	if nb > int64(len(h.counts)) {
		nb = int64(len(h.counts))
	}
	var c int64
	for i := int64(0); i < nb; i++ {
		c += h.counts[i]
	}
	return c
}

// Quantile returns an approximate q-quantile (q in [0,1]) assuming values
// are uniform within buckets; returns Max for q=1 and when the quantile
// falls in the overflow bucket.
func (h *Histogram) Quantile(q float64) float64 {
	if h.total == 0 {
		return 0
	}
	if q >= 1 {
		return float64(h.max)
	}
	if q < 0 {
		q = 0
	}
	target := q * float64(h.total)
	var cum float64
	for i, c := range h.counts {
		next := cum + float64(c)
		if next >= target && c > 0 {
			frac := (target - cum) / float64(c)
			return float64(int64(i)*h.width) + frac*float64(h.width)
		}
		cum = next
	}
	return float64(h.max)
}

// Summary holds order statistics of a sample.
type Summary struct {
	N                int64
	Mean, StdDev     float64
	Min, Median, P90 float64
	P99, Max         float64
}

// Summarize computes summary statistics of a float sample. It sorts a copy;
// the input is not modified. An empty input yields a zero Summary.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := make([]float64, len(xs))
	copy(s, xs)
	sort.Float64s(s)
	var w Welford
	for _, x := range s {
		w.Add(x)
	}
	q := func(p float64) float64 {
		pos := p * float64(len(s)-1)
		i := int(pos)
		if i >= len(s)-1 {
			return s[len(s)-1]
		}
		f := pos - float64(i)
		return s[i]*(1-f) + s[i+1]*f
	}
	return Summary{
		N: int64(len(s)), Mean: w.Mean(), StdDev: w.StdDev(),
		Min: s[0], Median: q(0.5), P90: q(0.9), P99: q(0.99), Max: s[len(s)-1],
	}
}

// KLDivergence returns the Kullback-Leibler divergence D(p||q) in nats for
// two distributions over the same support. Entries where p[i]==0 contribute
// zero; q[i]==0 with p[i]>0 yields +Inf. Used to compare empirical PMFs
// against the exact NURand PMF.
func KLDivergence(p, q []float64) float64 {
	if len(p) != len(q) {
		panic("stats: KL divergence requires equal-length distributions")
	}
	var d float64
	for i := range p {
		if p[i] == 0 {
			continue
		}
		if q[i] == 0 {
			return math.Inf(1)
		}
		d += p[i] * math.Log(p[i]/q[i])
	}
	return d
}

// TotalVariation returns the total-variation distance between two
// distributions over the same support: 0 for identical, 1 for disjoint.
func TotalVariation(p, q []float64) float64 {
	if len(p) != len(q) {
		panic("stats: total variation requires equal-length distributions")
	}
	var d float64
	for i := range p {
		d += math.Abs(p[i] - q[i])
	}
	return d / 2
}
