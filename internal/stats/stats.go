// Package stats provides the statistics substrate for the TPC-C modeling
// study: Welford accumulators, batch-means confidence intervals (the paper
// uses 30 batches of 100,000 samples and reports 90% confidence intervals),
// Student-t quantiles, histograms, and Lorenz-curve skew analytics used to
// quantify "what fraction of the accesses go to what fraction of the data".
package stats

import (
	"errors"
	"fmt"
	"math"
)

// Welford accumulates a running mean and variance using Welford's
// numerically stable online algorithm.
type Welford struct {
	n    int64
	mean float64
	m2   float64
}

// Add incorporates one sample.
func (w *Welford) Add(x float64) {
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// N returns the number of samples added.
func (w *Welford) N() int64 { return w.n }

// Mean returns the sample mean (0 when empty).
func (w *Welford) Mean() float64 { return w.mean }

// Variance returns the unbiased sample variance (0 for fewer than 2 samples).
func (w *Welford) Variance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// StdDev returns the sample standard deviation.
func (w *Welford) StdDev() float64 { return math.Sqrt(w.Variance()) }

// Merge combines another accumulator into w (parallel-merge formula).
func (w *Welford) Merge(o Welford) {
	if o.n == 0 {
		return
	}
	if w.n == 0 {
		*w = o
		return
	}
	n := w.n + o.n
	d := o.mean - w.mean
	w.m2 += o.m2 + d*d*float64(w.n)*float64(o.n)/float64(n)
	w.mean += d * float64(o.n) / float64(n)
	w.n = n
}

// Interval is a symmetric confidence interval around a point estimate.
type Interval struct {
	Mean      float64
	HalfWidth float64
	Level     float64 // e.g. 0.90
	N         int64   // number of batches (or samples) behind the estimate
}

// Lo returns the lower bound of the interval.
func (iv Interval) Lo() float64 { return iv.Mean - iv.HalfWidth }

// Hi returns the upper bound of the interval.
func (iv Interval) Hi() float64 { return iv.Mean + iv.HalfWidth }

// RelativeHalfWidth returns HalfWidth/|Mean|, or +Inf for a zero mean with
// nonzero half-width, or 0 when both are zero. The paper requires this to be
// at most 5% at the 90% level for every reported miss rate.
func (iv Interval) RelativeHalfWidth() float64 {
	if iv.Mean == 0 {
		if iv.HalfWidth == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return iv.HalfWidth / math.Abs(iv.Mean)
}

// String renders the interval as "mean ± halfwidth (level%)".
func (iv Interval) String() string {
	return fmt.Sprintf("%.6g ± %.3g (%.0f%%)", iv.Mean, iv.HalfWidth, iv.Level*100)
}

// BatchMeans implements the method of batch means: samples are grouped into
// fixed-size batches, each batch contributes one mean, and the confidence
// interval is computed over the batch means with a Student-t quantile. The
// paper's configuration is 30 batches with a batch size of 100,000 samples.
type BatchMeans struct {
	batchSize int64
	cur       Welford
	batches   []float64
}

// NewBatchMeans creates a batch-means accumulator with the given batch size.
// batchSize must be positive.
func NewBatchMeans(batchSize int64) *BatchMeans {
	if batchSize <= 0 {
		panic("stats: batch size must be positive")
	}
	return &BatchMeans{batchSize: batchSize}
}

// Add incorporates one sample, closing a batch whenever batchSize samples
// have accumulated.
func (b *BatchMeans) Add(x float64) {
	b.cur.Add(x)
	if b.cur.N() == b.batchSize {
		b.batches = append(b.batches, b.cur.Mean())
		b.cur = Welford{}
	}
}

// Batches returns the number of completed batches.
func (b *BatchMeans) Batches() int { return len(b.batches) }

// BatchSize returns the configured batch size.
func (b *BatchMeans) BatchSize() int64 { return b.batchSize }

// ErrTooFewBatches is returned when a confidence interval is requested with
// fewer than two completed batches.
var ErrTooFewBatches = errors.New("stats: need at least 2 completed batches")

// Interval returns the confidence interval over the completed batch means at
// the given confidence level (e.g. 0.90).
func (b *BatchMeans) Interval(level float64) (Interval, error) {
	k := len(b.batches)
	if k < 2 {
		return Interval{}, ErrTooFewBatches
	}
	var w Welford
	for _, m := range b.batches {
		w.Add(m)
	}
	t := TQuantile(level, k-1)
	hw := t * w.StdDev() / math.Sqrt(float64(k))
	return Interval{Mean: w.Mean(), HalfWidth: hw, Level: level, N: int64(k)}, nil
}

// Mean returns the grand mean over all completed batches (0 when none).
func (b *BatchMeans) Mean() float64 {
	if len(b.batches) == 0 {
		return 0
	}
	var w Welford
	for _, m := range b.batches {
		w.Add(m)
	}
	return w.Mean()
}

// Lag1Autocorrelation estimates the lag-1 autocorrelation of the batch
// means. Batch means are (approximately) independent when this is near
// zero; a large positive value means the batch size is too small and the
// confidence interval understates the true variance. The method of batch
// means rests on this diagnostic — the paper asserts its 100,000-sample
// batches achieve 5% relative half-widths, which presumes uncorrelated
// batches. Returns 0 for fewer than 3 batches.
func (b *BatchMeans) Lag1Autocorrelation() float64 {
	k := len(b.batches)
	if k < 3 {
		return 0
	}
	var w Welford
	for _, m := range b.batches {
		w.Add(m)
	}
	mean := w.Mean()
	var num, den float64
	for i, m := range b.batches {
		d := m - mean
		den += d * d
		if i > 0 {
			num += (b.batches[i-1] - mean) * d
		}
	}
	if den == 0 {
		return 0
	}
	return num / den
}

// BatchesIndependent reports whether the lag-1 autocorrelation is within
// the approximate 95% band for white noise, |r1| <= 2/sqrt(k). A false
// result suggests enlarging the batch size.
func (b *BatchMeans) BatchesIndependent() bool {
	k := len(b.batches)
	if k < 3 {
		return true
	}
	bound := 2 / math.Sqrt(float64(k))
	r1 := b.Lag1Autocorrelation()
	return r1 >= -bound && r1 <= bound
}

// TQuantile returns the two-sided Student-t critical value t_{(1+level)/2, df}.
// It uses an exact small-table lookup for the common cases and an
// asymptotic Cornish-Fisher expansion of the normal quantile elsewhere,
// accurate to better than 0.2% for df >= 3.
func TQuantile(level float64, df int) float64 {
	if df < 1 {
		panic("stats: df must be >= 1")
	}
	p := (1 + level) / 2
	z := NormalQuantile(p)
	if df > 200 {
		return z
	}
	// Cornish-Fisher expansion of the t quantile in terms of the normal
	// quantile (Abramowitz & Stegun 26.7.5).
	v := float64(df)
	z3 := z * z * z
	z5 := z3 * z * z
	z7 := z5 * z * z
	g1 := (z3 + z) / 4
	g2 := (5*z5 + 16*z3 + 3*z) / 96
	g3 := (3*z7 + 19*z5 + 17*z3 - 15*z) / 384
	return z + g1/v + g2/(v*v) + g3/(v*v*v)
}

// NormalQuantile returns the standard normal quantile Phi^{-1}(p) using the
// Acklam rational approximation (relative error < 1.15e-9).
func NormalQuantile(p float64) float64 {
	if p <= 0 || p >= 1 {
		panic("stats: quantile probability must be in (0,1)")
	}
	a := [6]float64{-3.969683028665376e+01, 2.209460984245205e+02,
		-2.759285104469687e+02, 1.383577518672690e+02,
		-3.066479806614716e+01, 2.506628277459239e+00}
	b := [5]float64{-5.447609879822406e+01, 1.615858368580409e+02,
		-1.556989798598866e+02, 6.680131188771972e+01,
		-1.328068155288572e+01}
	c := [6]float64{-7.784894002430293e-03, -3.223964580411365e-01,
		-2.400758277161838e+00, -2.549732539343734e+00,
		4.374664141464968e+00, 2.938163982698783e+00}
	d := [4]float64{7.784695709041462e-03, 3.224671290700398e-01,
		2.445134137142996e+00, 3.754408661907416e+00}
	const plow, phigh = 0.02425, 1 - 0.02425
	switch {
	case p < plow:
		q := math.Sqrt(-2 * math.Log(p))
		return (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p > phigh:
		q := math.Sqrt(-2 * math.Log(1-p))
		return -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	default:
		q := p - 0.5
		r := q * q
		return (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	}
}
