package nurand

import (
	"math"
	"testing"
)

// FuzzExactPMFPaths cross-checks the digit-DP exact PMF against brute
// force over arbitrary small parameterizations.
func FuzzExactPMFPaths(f *testing.F) {
	f.Add(uint16(255), uint16(1), uint16(999), uint16(0))
	f.Add(uint16(7), uint16(0), uint16(63), uint16(3))
	f.Fuzz(func(t *testing.T, aRaw, xRaw, spanRaw, cRaw uint16) {
		p := Params{
			A: int64(aRaw%300) + 1,
			X: int64(xRaw % 150),
		}
		p.Y = p.X + int64(spanRaw%400)
		p.C = int64(cRaw) % (p.A + 1)
		if err := p.Validate(); err != nil {
			t.Skip()
		}
		brute := exactPMFBrute(p)
		dp := exactPMFDP(p)
		var sum float64
		for i := range brute {
			if math.Abs(brute[i]-dp[i]) > 1e-12 {
				t.Fatalf("%v: pmf[%d] brute %v != dp %v", p, i, brute[i], dp[i])
			}
			sum += dp[i]
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("%v: PMF sums to %v", p, sum)
		}
	})
}
