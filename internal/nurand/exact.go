package nurand

import "math/bits"

// bruteForceThreshold is the input-pair count up to which ExactPMF uses
// direct enumeration; beyond it the digit-DP path is used.
const bruteForceThreshold = 1 << 24

// orPairCounter counts pairs (a, b) with 0 <= a <= A, 0 <= b <= B and
// a|b == w using a digit DP over the bits of the bounds: states track
// whether a and b are still "tight" against their bounds' prefixes.
type orPairCounter struct {
	aBound, bBound int64
	nbits          int
}

// count returns #{(a,b) : 0<=a<=aBound, 0<=b<=bBound, a|b == w}.
func (c orPairCounter) count(w int64) int64 {
	if c.bBound < 0 || c.aBound < 0 {
		return 0
	}
	// dp[ta][tb]: number of prefixes with a-tightness ta, b-tightness tb.
	var dp [2][2]int64
	dp[1][1] = 1
	for i := c.nbits - 1; i >= 0; i-- {
		var next [2][2]int64
		wbit := (w >> uint(i)) & 1
		abit0 := (c.aBound >> uint(i)) & 1
		bbit0 := (c.bBound >> uint(i)) & 1
		for ta := 0; ta < 2; ta++ {
			for tb := 0; tb < 2; tb++ {
				if dp[ta][tb] == 0 {
					continue
				}
				// Enumerate bit choices consistent with wbit.
				var choices [][2]int64
				if wbit == 0 {
					choices = [][2]int64{{0, 0}}
				} else {
					choices = [][2]int64{{0, 1}, {1, 0}, {1, 1}}
				}
				for _, ch := range choices {
					ab, bb := ch[0], ch[1]
					nta, ntb := ta, tb
					if ta == 1 {
						if ab > abit0 {
							continue
						}
						if ab < abit0 {
							nta = 0
						}
					}
					if tb == 1 {
						if bb > bbit0 {
							continue
						}
						if bb < bbit0 {
							ntb = 0
						}
					}
					next[nta][ntb] += dp[ta][tb]
				}
			}
		}
		dp = next
	}
	return dp[0][0] + dp[0][1] + dp[1][0] + dp[1][1]
}

// exactPMFDP computes the exact NU PMF via the digit DP in
// O(2^ceil(log2(max(A,y))) * bits) time, independent of (A+1)*(range).
func exactPMFDP(p Params) []float64 {
	n := p.Range()
	maxv := p.A
	if p.Y > maxv {
		maxv = p.Y
	}
	nbits := bits.Len64(uint64(maxv))
	counter := orPairCounter{aBound: p.A, bBound: p.Y, nbits: nbits}
	// Pairs with b in [x, y] = pairs with b <= y minus pairs with b <= x-1.
	var lowCounter *orPairCounter
	if p.X > 0 {
		lc := orPairCounter{aBound: p.A, bBound: p.X - 1, nbits: nbits}
		lowCounter = &lc
	}
	counts := make([]int64, n)
	maxOR := int64(1)<<uint(nbits) - 1
	for w := int64(0); w <= maxOR; w++ {
		c := counter.count(w)
		if lowCounter != nil {
			c -= lowCounter.count(w)
		}
		if c != 0 {
			counts[(w+p.C)%n] += c
		}
	}
	total := float64(p.A+1) * float64(n)
	pmf := make([]float64, n)
	for i, c := range counts {
		pmf[i] = float64(c) / total
	}
	return pmf
}

// exactPMFBrute enumerates all input pairs directly.
func exactPMFBrute(p Params) []float64 {
	n := p.Range()
	counts := make([]int64, n)
	for a := int64(0); a <= p.A; a++ {
		for b := p.X; b <= p.Y; b++ {
			counts[((a|b)+p.C)%n]++
		}
	}
	total := float64(p.A+1) * float64(n)
	pmf := make([]float64, n)
	for i, c := range counts {
		pmf[i] = float64(c) / total
	}
	return pmf
}
