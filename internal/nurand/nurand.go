// Package nurand implements the TPC-C non-uniform random number function
// NU(A, x, y) analyzed in Section 3 of Leutenegger & Dias (SIGMOD '93):
//
//	NU(A, x, y) = ((rand(0, A) | rand(x, y)) + C) % (y - x + 1) + x
//
// where rand(x, y) is a uniform integer in the closed interval [x, y], "|"
// is bitwise OR, and C is a run constant in [0, A]. The paper fixes C = 0,
// which we default to (a nonzero C merely rotates the distribution).
//
// Besides sampling, the package computes the distribution three ways:
//
//   - ExactPMF: exact probabilities by direct enumeration of all
//     (A+1) x (y-x+1) input pairs. This replaces the paper's 10^9-sample
//     Monte Carlo runs (the substitution is strictly stronger).
//   - SamplePMF: the paper's Monte Carlo estimate, for fidelity checks.
//   - ClosedFormPMF: the Appendix A.3 closed form, valid when A+1 and the
//     range size are powers of two: P[v] = (3/4)^i (1/4)^j (1/2)^z with i
//     set bits and j zero bits among the low bits, z high bits.
//
// The standard TPC-C parameterizations used throughout the paper:
//
//	customer-id:   NU(1023, 1, 3000)
//	item/stock-id: NU(8191, 1, 100000)
//	customer-name: NU(255, lbound, ubound) over thirds of [1,3000]
package nurand

import (
	"fmt"
	"math"
	"math/bits"

	"tpccmodel/internal/rng"
)

// Params identifies one NU(A, x, y) distribution with run constant C.
type Params struct {
	A, C, X, Y int64
}

// Validate checks the TPC-C constraints on the parameters.
func (p Params) Validate() error {
	if p.X > p.Y {
		return fmt.Errorf("nurand: x (%d) must be <= y (%d)", p.X, p.Y)
	}
	if p.A < 0 {
		return fmt.Errorf("nurand: A (%d) must be non-negative", p.A)
	}
	if p.C < 0 || p.C > p.A {
		return fmt.Errorf("nurand: C (%d) must be in [0, A=%d]", p.C, p.A)
	}
	return nil
}

// Range returns the number of distinct values, y - x + 1.
func (p Params) Range() int64 { return p.Y - p.X + 1 }

// String renders the parameters in the paper's NU(A,x,y) notation.
func (p Params) String() string {
	if p.C == 0 {
		return fmt.Sprintf("NU(%d,%d,%d)", p.A, p.X, p.Y)
	}
	return fmt.Sprintf("NU(%d,%d,%d;C=%d)", p.A, p.X, p.Y, p.C)
}

// Standard TPC-C parameterizations from the paper.
var (
	// CustomerID is the customer-id distribution NU(1023, 1, 3000).
	CustomerID = Params{A: 1023, X: 1, Y: 3000}
	// ItemID is the item/stock-id distribution NU(8191, 1, 100000).
	ItemID = Params{A: 8191, X: 1, Y: 100000}
)

// NameThirds returns the three customer-name distributions the paper uses:
// NU(255, 1, 1000), NU(255, 1001, 2000), NU(255, 2001, 3000), chosen with
// equal probability when a Payment or Order-Status transaction selects a
// customer by last name.
func NameThirds() [3]Params {
	return [3]Params{
		{A: 255, X: 1, Y: 1000},
		{A: 255, X: 1001, Y: 2000},
		{A: 255, X: 2001, Y: 3000},
	}
}

// Gen samples from one NU distribution.
type Gen struct {
	p Params
	r *rng.RNG
}

// NewGen returns a sampler for the distribution. It panics if the
// parameters are invalid (programmer error; validate user input with
// Params.Validate first).
func NewGen(p Params, r *rng.RNG) *Gen {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	return &Gen{p: p, r: r}
}

// Params returns the distribution parameters.
func (g *Gen) Params() Params { return g.p }

// Next draws one value in [x, y].
func (g *Gen) Next() int64 {
	p := g.p
	a := g.r.IntRange(0, p.A)
	b := g.r.IntRange(p.X, p.Y)
	return ((a|b)+p.C)%p.Range() + p.X
}

// ExactPMF computes the exact probability mass function over [x, y]:
// pmf[i] is the probability of value x+i. Small parameterizations are
// enumerated directly over all (rand(0,A), rand(x,y)) input pairs; larger
// ones (including the paper's NU(8191,1,100000), which would need ~8.2e8
// iterations) use an equivalent digit DP over the bits of the bounds that
// runs in milliseconds. The two paths are property-tested to agree.
func ExactPMF(p Params) []float64 {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	if (p.A+1)*p.Range() <= bruteForceThreshold {
		return exactPMFBrute(p)
	}
	return exactPMFDP(p)
}

// SamplePMF estimates the PMF from samples Monte Carlo draws, matching the
// paper's methodology (it used 10^9 samples for Figure 3).
func SamplePMF(p Params, samples int64, seed uint64) []float64 {
	g := NewGen(p, rng.New(seed))
	n := p.Range()
	counts := make([]int64, n)
	for i := int64(0); i < samples; i++ {
		counts[g.Next()-p.X]++
	}
	pmf := make([]float64, n)
	for i, c := range counts {
		pmf[i] = float64(c) / float64(samples)
	}
	return pmf
}

// IsPowerOfTwoCase reports whether the Appendix A.3 closed form applies:
// A+1 and the range size must both be powers of two (the paper states the
// function is exactly periodic in this case), and C must be zero.
func IsPowerOfTwoCase(p Params) bool {
	a1 := uint64(p.A + 1)
	r := uint64(p.Range())
	return p.C == 0 && a1&(a1-1) == 0 && r&(r-1) == 0 && p.A+1 <= p.Range()
}

// ClosedFormPMF computes the Appendix A.3 closed-form PMF for
// NU(2^a - 1, x, x + 2^b - 1), b >= a. The probability of the value with
// low-bit pattern v (relative to x... the derivation assumes x = 0; for
// x != 0 the distribution of (a|b) mod 2^b is unchanged because b - x is
// uniform over a full power-of-two range only when x = 0, so we require
// x = 0 here) is (3/4)^i (1/4)^(a-i) (1/2)^(b-a) with i the number of set
// bits among the low a bits. Panics unless IsPowerOfTwoCase(p) and p.X == 0.
func ClosedFormPMF(p Params) []float64 {
	if !IsPowerOfTwoCase(p) || p.X != 0 {
		panic("nurand: closed form requires x=0, A+1 and range powers of two")
	}
	aBits := bits.TrailingZeros64(uint64(p.A + 1))
	bBits := bits.TrailingZeros64(uint64(p.Range()))
	highFactor := math.Pow(0.5, float64(bBits-aBits))
	pmf := make([]float64, p.Range())
	for v := range pmf {
		low := uint64(v) & uint64(p.A)
		i := bits.OnesCount64(low)
		pmf[v] = math.Pow(0.75, float64(i)) * math.Pow(0.25, float64(aBits-i)) * highFactor
	}
	return pmf
}

// Cycles returns the number of periods of the PMF across the range, which
// the paper gives as floor(range / (A+1)) — 12 for NU(8191,1,100000).
func Cycles(p Params) int64 {
	if p.A+1 <= 0 {
		return 0
	}
	return p.Range() / (p.A + 1)
}

// Mixture is a finite mixture of NU distributions, used for relations whose
// accesses superimpose several key distributions. The paper's customer
// relation mixes the customer-id distribution (41.86% of accesses) with the
// three customer-name thirds (58.14% split equally).
type Mixture struct {
	comps   []Params
	weights []float64 // normalized, cumulative for sampling
	cum     []float64
}

// NewMixture builds a mixture from parallel slices of components and
// positive weights (weights are normalized internally).
func NewMixture(comps []Params, weights []float64) (*Mixture, error) {
	if len(comps) == 0 || len(comps) != len(weights) {
		return nil, fmt.Errorf("nurand: mixture needs equal non-empty components and weights")
	}
	var total float64
	for i, w := range weights {
		if w <= 0 {
			return nil, fmt.Errorf("nurand: mixture weight %d must be positive", i)
		}
		if err := comps[i].Validate(); err != nil {
			return nil, err
		}
		total += w
	}
	m := &Mixture{comps: append([]Params(nil), comps...)}
	m.weights = make([]float64, len(weights))
	m.cum = make([]float64, len(weights))
	var c float64
	for i, w := range weights {
		m.weights[i] = w / total
		c += m.weights[i]
		m.cum[i] = c
	}
	m.cum[len(m.cum)-1] = 1
	return m, nil
}

// CustomerMixture returns the paper's customer-relation access mixture over
// customer ordinals 1..3000 within one district: 41.86% NU(1023,1,3000)
// by customer-id and 58.14% split equally over the three name thirds.
//
// The weights derive from the transaction mix (Section 3): by-id accesses
// are 0.43·1 (New-Order) + (0.44+0.04)·0.4 (Payment/Order-Status by id)
// = 0.622 per transaction; by-name accesses are (0.44+0.04)·0.6·3 = 0.864;
// 0.622/1.486 = 41.86%.
func CustomerMixture() *Mixture {
	thirds := NameThirds()
	m, err := NewMixture(
		[]Params{CustomerID, thirds[0], thirds[1], thirds[2]},
		[]float64{0.4186, 0.5814 / 3, 0.5814 / 3, 0.5814 / 3},
	)
	if err != nil {
		panic(err)
	}
	return m
}

// Components returns copies of the component parameters and normalized
// weights.
func (m *Mixture) Components() ([]Params, []float64) {
	return append([]Params(nil), m.comps...), append([]float64(nil), m.weights...)
}

// Bounds returns the minimum X and maximum Y across components.
func (m *Mixture) Bounds() (lo, hi int64) {
	lo, hi = m.comps[0].X, m.comps[0].Y
	for _, c := range m.comps[1:] {
		if c.X < lo {
			lo = c.X
		}
		if c.Y > hi {
			hi = c.Y
		}
	}
	return lo, hi
}

// ExactPMF returns the exact mixture PMF over [lo, hi] = Bounds();
// pmf[i] is the probability of value lo+i.
func (m *Mixture) ExactPMF() []float64 {
	lo, hi := m.Bounds()
	pmf := make([]float64, hi-lo+1)
	for i, comp := range m.comps {
		cp := ExactPMF(comp)
		for j, p := range cp {
			pmf[comp.X-lo+int64(j)] += m.weights[i] * p
		}
	}
	return pmf
}

// MixGen samples from a mixture.
type MixGen struct {
	m *Mixture
	r *rng.RNG
	g []*Gen
}

// NewMixGen returns a sampler over the mixture.
func NewMixGen(m *Mixture, r *rng.RNG) *MixGen {
	gens := make([]*Gen, len(m.comps))
	for i, c := range m.comps {
		gens[i] = NewGen(c, r)
	}
	return &MixGen{m: m, r: r, g: gens}
}

// Next draws one value: first a component by weight, then a value from it.
func (g *MixGen) Next() int64 {
	u := g.r.Float64()
	for i, c := range g.m.cum {
		if u < c {
			return g.g[i].Next()
		}
	}
	return g.g[len(g.g)-1].Next()
}
