package nurand

import (
	"math"
	"testing"
	"testing/quick"

	"tpccmodel/internal/rng"
	"tpccmodel/internal/stats"
)

func TestParamsValidate(t *testing.T) {
	cases := []struct {
		p  Params
		ok bool
	}{
		{CustomerID, true},
		{ItemID, true},
		{Params{A: 255, X: 1001, Y: 2000}, true},
		{Params{A: -1, X: 0, Y: 10}, false},
		{Params{A: 10, X: 5, Y: 4}, false},
		{Params{A: 10, C: 11, X: 0, Y: 10}, false},
		{Params{A: 10, C: -1, X: 0, Y: 10}, false},
	}
	for _, c := range cases {
		if err := c.p.Validate(); (err == nil) != c.ok {
			t.Errorf("%v Validate: err=%v, ok=%v", c.p, err, c.ok)
		}
	}
}

func TestGenStaysInRange(t *testing.T) {
	f := func(seed uint64) bool {
		g := NewGen(Params{A: 255, X: 1001, Y: 2000}, rng.New(seed))
		for i := 0; i < 500; i++ {
			v := g.Next()
			if v < 1001 || v > 2000 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestExactPMFIsDistribution(t *testing.T) {
	pmf := ExactPMF(Params{A: 63, X: 1, Y: 500})
	var sum float64
	for _, p := range pmf {
		if p < 0 {
			t.Fatal("negative probability")
		}
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("PMF sums to %v", sum)
	}
	if len(pmf) != 500 {
		t.Errorf("PMF support = %d, want 500", len(pmf))
	}
}

func TestExactPMFDegenerate(t *testing.T) {
	// A=0: rand(0,0)=0, so OR is the identity: uniform over [x,y].
	pmf := ExactPMF(Params{A: 0, X: 1, Y: 100})
	for i, p := range pmf {
		if math.Abs(p-0.01) > 1e-12 {
			t.Fatalf("A=0 should be uniform; pmf[%d]=%v", i, p)
		}
	}
}

func TestSampleMatchesExactPMF(t *testing.T) {
	p := Params{A: 63, X: 1, Y: 200}
	exact := ExactPMF(p)
	sampled := SamplePMF(p, 2_000_000, 42)
	if tv := stats.TotalVariation(exact, sampled); tv > 0.01 {
		t.Errorf("total variation between exact and sampled PMF = %v", tv)
	}
}

func TestClosedFormMatchesExact(t *testing.T) {
	// Appendix A.3: for A+1 and range both powers of two the closed form
	// is exact.
	cases := []Params{
		{A: 7, X: 0, Y: 63},
		{A: 15, X: 0, Y: 15},
		{A: 31, X: 0, Y: 255},
	}
	for _, p := range cases {
		if !IsPowerOfTwoCase(p) {
			t.Fatalf("%v should be a power-of-two case", p)
		}
		exact := ExactPMF(p)
		closed := ClosedFormPMF(p)
		for i := range exact {
			if math.Abs(exact[i]-closed[i]) > 1e-12 {
				t.Fatalf("%v: pmf[%d] exact %v != closed %v", p, i, exact[i], closed[i])
			}
		}
	}
}

func TestClosedFormPeriodicity(t *testing.T) {
	// The PMF must repeat with period A+1 across the full range.
	p := Params{A: 7, X: 0, Y: 63}
	pmf := ClosedFormPMF(p)
	period := p.A + 1
	for v := int64(0); v < p.Range()-period; v++ {
		if math.Abs(pmf[v]-pmf[v+period]) > 1e-15 {
			t.Fatalf("pmf[%d] != pmf[%d]", v, v+period)
		}
	}
	if got := Cycles(p); got != 8 {
		t.Errorf("Cycles = %d, want 8", got)
	}
}

func TestCyclesPaperValue(t *testing.T) {
	// The paper: NU(8191,1,100000) has floor(100000/8192) = 12 cycles.
	if got := Cycles(ItemID); got != 12 {
		t.Errorf("Cycles(ItemID) = %d, want 12", got)
	}
}

func TestIsPowerOfTwoCase(t *testing.T) {
	cases := []struct {
		p    Params
		want bool
	}{
		{Params{A: 7, X: 0, Y: 63}, true},
		{Params{A: 7, X: 0, Y: 62}, false}, // range 63 not a power of two
		{Params{A: 6, X: 0, Y: 63}, false}, // A+1 = 7 not a power of two
		{Params{A: 8191, X: 1, Y: 100000}, false},
		{Params{A: 7, C: 3, X: 0, Y: 63}, false}, // C != 0
	}
	for _, c := range cases {
		if got := IsPowerOfTwoCase(c.p); got != c.want {
			t.Errorf("IsPowerOfTwoCase(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestNonzeroCRotatesDistribution(t *testing.T) {
	// Changing C permutes (rotates) the PMF but preserves the multiset of
	// probabilities, hence identical skew.
	p0 := ExactPMF(Params{A: 15, X: 1, Y: 64})
	p5 := ExactPMF(Params{A: 15, C: 5, X: 1, Y: 64})
	n := int64(len(p0))
	for i := int64(0); i < n; i++ {
		if math.Abs(p0[i]-p5[(i+5)%n]) > 1e-12 {
			t.Fatalf("C=5 should rotate the PMF by 5: index %d", i)
		}
	}
}

func TestStockSkewHeadlineNumbers(t *testing.T) {
	// Section 3 headline numbers for the stock/item tuple-level skew:
	// ~84% of accesses to hottest ~20%, ~71% to ~10%, ~39% to ~2%.
	// Exact PMF of NU(8191,1,100000) is expensive (~8e8 iterations), so
	// approximate with a scaled-down distribution that preserves the
	// A/(range) ratio... the skew depends on A and range jointly, so for
	// the true headline check we sample the real parameters instead.
	if testing.Short() {
		t.Skip("sampling 20M draws")
	}
	pmf := SamplePMF(ItemID, 20_000_000, 7)
	l := stats.NewLorenz(pmf)
	checks := []struct {
		dataFrac, accessLo, accessHi float64
	}{
		{0.20, 0.80, 0.88},
		{0.10, 0.66, 0.76},
		{0.02, 0.33, 0.45},
	}
	for _, c := range checks {
		got := l.AccessShareOfHottest(c.dataFrac)
		if got < c.accessLo || got > c.accessHi {
			t.Errorf("hottest %.0f%% of tuples carry %.1f%% of accesses, want in [%v, %v]",
				c.dataFrac*100, got*100, c.accessLo, c.accessHi)
		}
	}
}

func TestMixtureValidation(t *testing.T) {
	if _, err := NewMixture(nil, nil); err == nil {
		t.Error("empty mixture should fail")
	}
	if _, err := NewMixture([]Params{CustomerID}, []float64{0}); err == nil {
		t.Error("zero weight should fail")
	}
	if _, err := NewMixture([]Params{{A: 5, X: 2, Y: 1}}, []float64{1}); err == nil {
		t.Error("invalid component should fail")
	}
}

func TestCustomerMixturePMF(t *testing.T) {
	m := CustomerMixture()
	lo, hi := m.Bounds()
	if lo != 1 || hi != 3000 {
		t.Fatalf("bounds = [%d, %d], want [1, 3000]", lo, hi)
	}
	pmf := m.ExactPMF()
	var sum float64
	for _, p := range pmf {
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("mixture PMF sums to %v", sum)
	}
	// The paper's Figure 7: the customer relation is clearly skewed but
	// less skewed than stock. Check the mixture is non-uniform here; the
	// customer-vs-stock comparison is in TestCustomerLessSkewedThanStock.
	g := stats.NewLorenz(pmf).Gini()
	if g < 0.3 || g > 0.8 {
		t.Errorf("customer mixture Gini = %v, want clear but non-extreme skew", g)
	}
}

// TestCustomerLessSkewedThanStock checks the paper's Section 3 comparison:
// "there is considerably less skew for the customer relation than for the
// Stock relation."
func TestCustomerLessSkewedThanStock(t *testing.T) {
	stockPMF := SamplePMF(ItemID, 2_000_000, 5)
	custPMF := CustomerMixture().ExactPMF()
	stockShare := stats.NewLorenz(stockPMF).AccessShareOfHottest(0.20)
	custShare := stats.NewLorenz(custPMF).AccessShareOfHottest(0.20)
	if custShare >= stockShare {
		t.Errorf("customer hottest-20%% share %.3f should be below stock's %.3f",
			custShare, stockShare)
	}
}

func TestMixGenSamplesAllComponents(t *testing.T) {
	m := CustomerMixture()
	g := NewMixGen(m, rng.New(3))
	var low, mid, high int
	for i := 0; i < 30000; i++ {
		v := g.Next()
		if v < 1 || v > 3000 {
			t.Fatalf("mixture sample %d out of range", v)
		}
		switch {
		case v <= 1000:
			low++
		case v <= 2000:
			mid++
		default:
			high++
		}
	}
	// By-id spans everything and thirds are equal, so each third should
	// get a healthy share.
	for name, c := range map[string]int{"low": low, "mid": mid, "high": high} {
		if c < 5000 {
			t.Errorf("third %q undersampled: %d", name, c)
		}
	}
}

func TestMixtureSampleMatchesExact(t *testing.T) {
	m := CustomerMixture()
	exact := m.ExactPMF()
	g := NewMixGen(m, rng.New(9))
	counts := make([]float64, len(exact))
	const n = 3_000_000
	for i := 0; i < n; i++ {
		counts[g.Next()-1]++
	}
	for i := range counts {
		counts[i] /= n
	}
	if tv := stats.TotalVariation(exact, counts); tv > 0.02 {
		t.Errorf("mixture sampling TV distance = %v", tv)
	}
}
