package nurand

import (
	"math"
	"testing"
	"testing/quick"

	"tpccmodel/internal/stats"
)

// TestDPMatchesBruteForce property-tests the digit-DP exact PMF against
// direct enumeration over random small parameterizations.
func TestDPMatchesBruteForce(t *testing.T) {
	f := func(aRaw, xRaw, spanRaw, cRaw uint16) bool {
		p := Params{
			A: int64(aRaw%512) + 1,
			X: int64(xRaw % 200),
			Y: 0,
		}
		p.Y = p.X + int64(spanRaw%800) + 1
		p.C = int64(cRaw) % (p.A + 1)
		brute := exactPMFBrute(p)
		dp := exactPMFDP(p)
		for i := range brute {
			if math.Abs(brute[i]-dp[i]) > 1e-12 {
				t.Logf("%v: pmf[%d] brute %v != dp %v", p, i, brute[i], dp[i])
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestDPPaperParameters checks the DP path on the paper's real
// parameterizations: the PMF must be a distribution and match sampling.
func TestDPPaperParameters(t *testing.T) {
	for _, p := range []Params{ItemID, CustomerID} {
		pmf := ExactPMF(p)
		var sum float64
		for _, v := range pmf {
			if v < 0 {
				t.Fatalf("%v: negative probability", p)
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("%v: PMF sums to %v", p, sum)
		}
	}
	// Monte Carlo cross-check of the DP on the item distribution. The
	// expected TV from pure sampling noise over a 100K-point support at
	// 5M samples is ~0.05, so 0.06 detects any systematic error.
	exact := ExactPMF(ItemID)
	sampled := SamplePMF(ItemID, 5_000_000, 11)
	if tv := stats.TotalVariation(exact, sampled); tv > 0.06 {
		t.Errorf("item PMF: TV(exact, sampled) = %v", tv)
	}
}

// TestStockSkewHeadlineNumbersExact verifies the paper's Section 3 headline
// skew numbers from the *exact* distribution: ~84% of accesses to the
// hottest ~20% of tuples, ~71% to 10%, ~39% to 2%.
func TestStockSkewHeadlineNumbersExact(t *testing.T) {
	l := stats.NewLorenz(ExactPMF(ItemID))
	cases := []struct {
		dataFrac, want, tol float64
	}{
		{0.20, 0.84, 0.03},
		{0.10, 0.71, 0.03},
		{0.02, 0.39, 0.03},
	}
	for _, c := range cases {
		got := l.AccessShareOfHottest(c.dataFrac)
		if math.Abs(got-c.want) > c.tol {
			t.Errorf("hottest %.0f%%: access share %.3f, paper says ~%.2f",
				c.dataFrac*100, got, c.want)
		}
	}
}

func TestOrPairCounterEdgeCases(t *testing.T) {
	// b bound negative: empty set.
	c := orPairCounter{aBound: 5, bBound: -1, nbits: 3}
	if got := c.count(3); got != 0 {
		t.Errorf("empty range count = %d", got)
	}
	// Exhaustive check on a tiny case.
	c = orPairCounter{aBound: 2, bBound: 3, nbits: 2}
	want := map[int64]int64{}
	for a := int64(0); a <= 2; a++ {
		for b := int64(0); b <= 3; b++ {
			want[a|b]++
		}
	}
	for w := int64(0); w < 4; w++ {
		if got := c.count(w); got != want[w] {
			t.Errorf("count(%d) = %d, want %d", w, got, want[w])
		}
	}
}

func BenchmarkExactPMFDPItem(b *testing.B) {
	for i := 0; i < b.N; i++ {
		exactPMFDP(ItemID)
	}
}
