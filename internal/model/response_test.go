package model

import (
	"math"
	"testing"

	"tpccmodel/internal/core"
)

func TestResponseTimeLowLoadEqualsDemand(t *testing.T) {
	p := DefaultSystemParams()
	d := StaticDemands(paperIOs())
	// At vanishing load, response time -> service demand.
	rt, err := ResponseTime(p, d, 1e-9, 4)
	if err != nil {
		t.Fatal(err)
	}
	for tt := range d {
		cpuMs := CPUInstructions(p.CPU, d[tt], RemoteVisits{}) / (p.MIPS * 1e6) * 1000
		diskMs := d[tt].ReadIOs * p.CPU.DiskMs // sequential I/Os, idle arms
		want := cpuMs + diskMs
		if math.Abs(rt.PerTxnMs[tt]-want) > want*1e-6 {
			t.Errorf("%s: low-load response %v, want demand %v",
				core.TxnType(tt), rt.PerTxnMs[tt], want)
		}
	}
}

func TestResponseTimeGrowsWithLoad(t *testing.T) {
	p := DefaultSystemParams()
	d := StaticDemands(paperIOs())
	tp := MaxThroughput(p, d, nil)
	low, err := ResponseTime(p, d, tp.TotalPerSec*0.2, 8)
	if err != nil {
		t.Fatal(err)
	}
	high, err := ResponseTime(p, d, tp.TotalPerSec, 8)
	if err != nil {
		t.Fatal(err)
	}
	if high.MeanMs <= low.MeanMs {
		t.Errorf("response time should grow with load: %v -> %v", low.MeanMs, high.MeanMs)
	}
	// Delivery (the heaviest transaction) must dominate Payment.
	if high.PerTxnMs[core.TxnDelivery] <= high.PerTxnMs[core.TxnPayment] {
		t.Error("delivery should be slower than payment")
	}
}

func TestResponseTimeSaturation(t *testing.T) {
	p := DefaultSystemParams()
	d := StaticDemands(paperIOs())
	tp := MaxThroughput(p, d, nil)
	sat := tp.TotalPerSec / p.MaxCPUUtil // CPU util 1.0
	if _, err := ResponseTime(p, d, sat*1.01, 100); err == nil {
		t.Error("past saturation should error")
	}
	if _, err := ResponseTime(p, d, -1, 4); err == nil {
		t.Error("negative lambda should error")
	}
	if _, err := ResponseTime(p, d, 1, 0); err == nil {
		t.Error("zero disks should error")
	}
}

func TestResponseCurveHockeyStick(t *testing.T) {
	p := DefaultSystemParams()
	d := StaticDemands(paperIOs())
	fractions := []float64{0.1, 0.5, 0.8, 0.95, 0.999}
	pts := ResponseCurve(p, d, 16, fractions)
	prev := 0.0
	for i, rt := range pts {
		if math.IsInf(rt.MeanMs, 1) {
			t.Fatalf("fraction %v saturated unexpectedly", fractions[i])
		}
		if rt.MeanMs <= prev {
			t.Fatalf("curve not increasing at fraction %v", fractions[i])
		}
		prev = rt.MeanMs
	}
	// The knee: 99.9% load must cost far more than 10% load.
	if pts[4].MeanMs < 5*pts[0].MeanMs {
		t.Errorf("hockey stick too flat: %v vs %v", pts[4].MeanMs, pts[0].MeanMs)
	}
}
