package model

import (
	"tpccmodel/internal/core"
	"tpccmodel/internal/sim"
)

// DemandsFromCurve builds the per-transaction demand vector from a buffer
// simulation at evaluation capacity index capIdx: the Table 4 call counts
// plus the measured per-type physical read counts. This is the paper's
// coupling of the buffer model to the throughput model.
func DemandsFromCurve(res *sim.CurveResult, capIdx int) Demands {
	var ios [core.NumTxnTypes]float64
	for t := range ios {
		ios[t] = res.TxnIOs(core.TxnType(t), capIdx)
	}
	return StaticDemands(ios)
}

// AnalyticMissRates are the per-relation miss rates the paper's printed
// Table 4 uses symbolically: mc (customer), mi (item), ms (stock), mo
// (order), ml (order-line), mno (new-order). Warehouse and district are
// omitted as always negligible.
type AnalyticMissRates struct {
	MC, MI, MS, MO, ML, MNO float64
}

// AnalyticReadIOs approximates per-transaction read I/Os from overall
// per-relation miss rates, following the printed Table 4 row shapes:
//
//	New-Order:    mc + 10(mi + ms)
//	Payment:      2.2 mc
//	Order-Status: 2.2 mc + mo + 10 ml
//	Delivery:     10(mno + mo + 10 ml + mc)
//	Stock-Level:  200 ml + 200 ms
//
// The simulation-measured TxnIOs path is more faithful (it uses the
// per-transaction-type miss rates the paper says it collected "in
// isolation"); this analytic form exists to reproduce Table 4 as printed
// and for quick what-if studies without a simulation run.
func AnalyticReadIOs(m AnalyticMissRates) [core.NumTxnTypes]float64 {
	var ios [core.NumTxnTypes]float64
	ios[core.TxnNewOrder] = m.MC + 10*(m.MI+m.MS)
	ios[core.TxnPayment] = 2.2 * m.MC
	ios[core.TxnOrderStatus] = 2.2*m.MC + m.MO + 10*m.ML
	ios[core.TxnDelivery] = 10 * (m.MNO + m.MO + 10*m.ML + m.MC)
	ios[core.TxnStockLevel] = 200*m.ML + 200*m.MS
	return ios
}

// MissRatesFromCurve extracts the overall per-relation miss rates at a
// buffer capacity (in pages) for the analytic form.
func MissRatesFromCurve(res *sim.CurveResult, capacityPages int64) AnalyticMissRates {
	return AnalyticMissRates{
		MC:  res.MissRate(core.Customer, capacityPages),
		MI:  res.MissRate(core.Item, capacityPages),
		MS:  res.MissRate(core.Stock, capacityPages),
		MO:  res.MissRate(core.Order, capacityPages),
		ML:  res.MissRate(core.OrderLine, capacityPages),
		MNO: res.MissRate(core.NewOrder, capacityPages),
	}
}
