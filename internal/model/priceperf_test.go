package model

import (
	"math"
	"testing"

	"tpccmodel/internal/core"
	"tpccmodel/internal/tpcc"
)

func TestCostModelValidate(t *testing.T) {
	if err := DefaultCostModel().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := DefaultCostModel()
	bad.DiskBytes = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero disk capacity should fail")
	}
}

func TestStorageBytes(t *testing.T) {
	db := tpcc.DefaultConfig()
	noGrowth := DefaultStorageParams(db, false)
	if got := noGrowth.Bytes(200); got != float64(db.StaticBytes()) {
		t.Errorf("no-growth storage = %v, want static only", got)
	}
	withGrowth := DefaultStorageParams(db, true)
	g := withGrowth.Bytes(200)
	// Paper: ~11 GB of growth at the modeled rate, on top of ~1.1 GB.
	growthGB := (g - float64(db.StaticBytes())) / 1e9
	if growthGB < 8 || growthGB > 15 {
		t.Errorf("180-day growth at 200 tpm = %.1f GB, paper says ~11 GB", growthGB)
	}
	// Growth scales linearly with throughput.
	g2 := withGrowth.Bytes(400)
	if math.Abs((g2-float64(db.StaticBytes()))/(g-float64(db.StaticBytes()))-2) > 1e-9 {
		t.Error("growth should scale linearly with tpm")
	}
}

func TestPricePerformancePoint(t *testing.T) {
	p := DefaultSystemParams()
	cost := DefaultCostModel()
	storage := DefaultStorageParams(tpcc.DefaultConfig(), true)
	d := StaticDemands(paperIOs())
	pt := PricePerformance(p, cost, storage, 52, d)
	if pt.Disks < pt.BandwidthDisks || pt.Disks < pt.CapacityDisks {
		t.Errorf("configured disks %d below constraints bw=%d cap=%d",
			pt.Disks, pt.BandwidthDisks, pt.CapacityDisks)
	}
	// The paper: with growth storage, at least 4 disks (3GB each) are
	// needed for capacity alone.
	if pt.CapacityDisks < 4 {
		t.Errorf("capacity disks = %d, paper says >= 4", pt.CapacityDisks)
	}
	wantCost := cost.CPUPrice + float64(pt.Disks)*cost.DiskPrice + 52*cost.MemPerMB
	if math.Abs(pt.CostDollars-wantCost) > 1e-9 {
		t.Errorf("cost = %v, want %v", pt.CostDollars, wantCost)
	}
	if math.Abs(pt.CostPerTpm-wantCost/pt.Throughput.NewOrderPerMin) > 1e-9 {
		t.Error("CostPerTpm inconsistent")
	}
	// Ballpark of the paper's Figure 10 range ($100-$250 per tpm).
	if pt.CostPerTpm < 50 || pt.CostPerTpm > 500 {
		t.Errorf("cost/tpm = %v, outside plausible range", pt.CostPerTpm)
	}
}

// TestMemoryDiskTradeoff verifies the Figure 10 mechanism: adding memory
// (lower miss rates) reduces bandwidth-required disks; with growth storage
// included, capacity keeps a floor under the disk count.
func TestMemoryDiskTradeoff(t *testing.T) {
	p := DefaultSystemParams()
	cost := DefaultCostModel()
	storage := DefaultStorageParams(tpcc.DefaultConfig(), true)

	// Demands at a small buffer (high miss rates) vs a large buffer.
	small := StaticDemands(AnalyticReadIOs(AnalyticMissRates{
		MC: 0.9, MI: 0.3, MS: 0.8, MO: 0.6, ML: 0.5, MNO: 0.1}))
	large := StaticDemands(AnalyticReadIOs(AnalyticMissRates{
		MC: 0.2, MI: 0.0, MS: 0.05, MO: 0.05, ML: 0.02, MNO: 0.0}))

	ptSmall := PricePerformance(p, cost, storage, 8, small)
	ptLarge := PricePerformance(p, cost, storage, 200, large)
	if ptLarge.BandwidthDisks >= ptSmall.BandwidthDisks {
		t.Errorf("more memory should need fewer bandwidth disks: %d vs %d",
			ptLarge.BandwidthDisks, ptSmall.BandwidthDisks)
	}
	// Capacity floor: even with memory, at least 4 disks with growth.
	if ptLarge.Disks < 4 {
		t.Errorf("disks = %d despite capacity floor", ptLarge.Disks)
	}
	if ptLarge.Throughput.NewOrderPerMin <= ptSmall.Throughput.NewOrderPerMin {
		t.Error("lower miss rates should raise throughput")
	}
}

func TestBestPricePoint(t *testing.T) {
	pts := []PricePoint{
		{BufferMB: 10, CostPerTpm: 150},
		{BufferMB: 52, CostPerTpm: 120},
		{BufferMB: 200, CostPerTpm: 130},
	}
	if best := BestPricePoint(pts); best.BufferMB != 52 {
		t.Errorf("best = %+v", best)
	}
	if z := BestPricePoint(nil); z.CostPerTpm != 0 {
		t.Error("empty input should return zero point")
	}
}

// TestBiggerDisksFavorOptimizedPacking reproduces the paper's sensitivity
// note: with 3GB disks the system is capacity bound and the optimized-
// packing advantage shrinks; with 12GB disks the whole database fits on
// one disk and the (bandwidth-driven) advantage returns.
func TestBiggerDisksFavorOptimizedPacking(t *testing.T) {
	p := DefaultSystemParams()
	storage := DefaultStorageParams(tpcc.DefaultConfig(), true)
	seq := StaticDemands(AnalyticReadIOs(AnalyticMissRates{
		MC: 0.7, MI: 0.02, MS: 0.5, MO: 0.3, ML: 0.2, MNO: 0.02}))
	opt := StaticDemands(AnalyticReadIOs(AnalyticMissRates{
		MC: 0.5, MI: 0.0, MS: 0.2, MO: 0.3, ML: 0.2, MNO: 0.02}))

	gainAt := func(diskBytes float64) float64 {
		cost := DefaultCostModel()
		cost.DiskBytes = diskBytes
		ptSeq := PricePerformance(p, cost, storage, 52, seq)
		ptOpt := PricePerformance(p, cost, storage, 26, opt)
		return 1 - ptOpt.CostPerTpm/ptSeq.CostPerTpm
	}
	small := gainAt(3e9)
	big := gainAt(12e9)
	if big <= small {
		t.Errorf("optimized-packing gain should grow with disk size: %.3f -> %.3f", small, big)
	}
}

func TestDemandsFromAnalytic(t *testing.T) {
	d := StaticDemands(paperIOs())
	for tt := range d {
		if d[tt].ReadIOs < 0 {
			t.Errorf("%s: negative IOs", core.TxnType(tt))
		}
	}
	if d[core.TxnStockLevel].ReadIOs <= d[core.TxnPayment].ReadIOs {
		t.Error("stock-level reads far more pages than payment")
	}
}
