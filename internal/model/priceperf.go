package model

import (
	"fmt"
	"math"

	"tpccmodel/internal/tpcc"
)

// CostModel is the Figure 10 hardware cost model. The paper stresses these
// are hypothetical hardware costs only — no software, maintenance, or
// terminal costs as the full TPC-C pricing rules would require.
type CostModel struct {
	// DiskPrice is the price of one disk (paper: $5000).
	DiskPrice float64
	// DiskBytes is one disk's capacity (paper: 3 GB; the sensitivity
	// discussion also uses 6 GB and 12 GB).
	DiskBytes float64
	// CPUPrice is the processor price (paper: $10000).
	CPUPrice float64
	// MemPerMB is the memory price per megabyte (paper: $100).
	MemPerMB float64
}

// DefaultCostModel returns the paper's Section 5.2 prices.
func DefaultCostModel() CostModel {
	return CostModel{DiskPrice: 5000, DiskBytes: 3e9, CPUPrice: 10000, MemPerMB: 100}
}

// Validate checks the cost model.
func (c CostModel) Validate() error {
	if c.DiskPrice <= 0 || c.DiskBytes <= 0 || c.CPUPrice < 0 || c.MemPerMB <= 0 {
		return fmt.Errorf("model: cost parameters must be positive")
	}
	return nil
}

// StorageParams size the database on disk.
type StorageParams struct {
	// DB is the database scale.
	DB tpcc.Config
	// IncludeGrowth adds the benchmark's required space for the growing
	// order/order-line/history relations: Days of HoursPerDay operation
	// at the modeled new-order rate (paper: 180 days of 8 hours).
	IncludeGrowth bool
	Days          float64
	HoursPerDay   float64
	// Mix supplies the payment/new-order ratio for history growth.
	Mix tpcc.Mix
}

// DefaultStorageParams returns the paper's sizing rules at the given scale.
func DefaultStorageParams(db tpcc.Config, includeGrowth bool) StorageParams {
	return StorageParams{
		DB: db, IncludeGrowth: includeGrowth,
		Days: 180, HoursPerDay: 8, Mix: tpcc.DefaultMix(),
	}
}

// Bytes returns the storage requirement at the given new-order rate
// (transactions per minute).
func (s StorageParams) Bytes(newOrderPerMin float64) float64 {
	b := float64(s.DB.StaticBytes())
	if s.IncludeGrowth {
		minutes := s.Days * s.HoursPerDay * 60
		b += minutes * newOrderPerMin * tpcc.GrowthBytesPerNewOrder(s.Mix)
	}
	return b
}

// PricePoint is one point of the Figure 10 curve.
type PricePoint struct {
	// BufferMB is the database buffer size.
	BufferMB float64
	// Throughput is the CPU-bound operating point at this buffer size.
	Throughput Throughput
	// BandwidthDisks and CapacityDisks are the two sizing constraints;
	// Disks is their maximum (the configured count).
	BandwidthDisks int
	CapacityDisks  int
	Disks          int
	// CostDollars is CPU + disks + buffer memory.
	CostDollars float64
	// CostPerTpm is dollars per new-order transaction per minute, the
	// paper's Figure 10 y-axis.
	CostPerTpm float64
}

// PricePerformance evaluates the cost model at one buffer size with the
// given demands (whose ReadIOs must correspond to that buffer size).
func PricePerformance(p SystemParams, cost CostModel, storage StorageParams,
	bufferMB float64, d Demands) PricePoint {
	tp := MaxThroughput(p, d, nil)
	bw := BandwidthDisks(p, tp)
	capDisks := int(math.Ceil(storage.Bytes(tp.NewOrderPerMin) / cost.DiskBytes))
	if capDisks < 1 {
		capDisks = 1
	}
	disks := bw
	if capDisks > disks {
		disks = capDisks
	}
	dollars := cost.CPUPrice + float64(disks)*cost.DiskPrice + bufferMB*cost.MemPerMB
	return PricePoint{
		BufferMB:       bufferMB,
		Throughput:     tp,
		BandwidthDisks: bw,
		CapacityDisks:  capDisks,
		Disks:          disks,
		CostDollars:    dollars,
		CostPerTpm:     dollars / tp.NewOrderPerMin,
	}
}

// BestPricePoint returns the point with the lowest CostPerTpm, which the
// paper reads off as the optimal memory/disk trade-off.
func BestPricePoint(points []PricePoint) PricePoint {
	if len(points) == 0 {
		return PricePoint{}
	}
	best := points[0]
	for _, pt := range points[1:] {
		if pt.CostPerTpm < best.CostPerTpm {
			best = pt
		}
	}
	return best
}
