package model

import (
	"math"

	"tpccmodel/internal/core"
)

// RemoteVisits are the extra distributed-system visit counts of Tables 6/7,
// all zero for a single-node system.
type RemoteVisits struct {
	// CommitExtra is added to the single commit (commits at remote
	// participants, modeled at the coordinator by symmetry).
	CommitExtra float64
	// SendReceive is the message-endpoint visit count (4·U per 2PC
	// participant, 2 per remote call, 2 per 1PC participant).
	SendReceive float64
	// PrepCommit is the prepare-phase visit count.
	PrepCommit float64
	// InitIOExtra adds the remote participants' commit log writes.
	InitIOExtra float64
}

// CPUInstructions returns the expected CPU path length (instructions) of
// one transaction with demand d and distributed extras r — the product of
// the Table 4 visit counts and overheads:
//
//	sum over operations n of V_{t,n} * o_n   (paper equation for Util_CPU)
func CPUInstructions(p CPUParams, d Demand, r RemoteVisits) float64 {
	c := d.Calls
	instr := c.Selects*p.Select +
		c.Updates*p.Update +
		c.Inserts*p.Insert +
		c.Deletes*p.Delete +
		(1+r.CommitExtra)*p.Commit +
		p.InitTxn +
		(1+c.SQLCalls)*p.Application +
		c.NonUnique*p.NonUniqueSelect +
		c.Joins*p.Join +
		c.Locks*p.ReleaseLock +
		(d.ReadIOs+1+r.InitIOExtra)*p.InitIO + // +1: the commit log write
		r.SendReceive*p.SendReceive +
		r.PrepCommit*p.PrepCommit
	return instr
}

// Throughput is a model operating point.
type Throughput struct {
	// TotalPerSec is the all-types transaction throughput.
	TotalPerSec float64
	// NewOrderPerMin is the benchmark metric (new-order transactions per
	// minute).
	NewOrderPerMin float64
	// AvgInstrPerTxn is the mix-weighted CPU path length.
	AvgInstrPerTxn float64
	// AvgReadIOsPerTxn is the mix-weighted data-disk read count.
	AvgReadIOsPerTxn float64
	// DiskMsPerTxn is the mix-weighted data-disk service demand (ms).
	DiskMsPerTxn float64
}

// MaxThroughput solves the paper's primary metric: fix CPU utilization at
// p.MaxCPUUtil and invert the utilization equation
//
//	Util_CPU = lambda * (sum_t alpha_t * sum_n V_{t,n} o_n) / MIPS
//
// for lambda. remote may be nil for a single-node system.
func MaxThroughput(p SystemParams, d Demands, remote *[core.NumTxnTypes]RemoteVisits) Throughput {
	var rv [core.NumTxnTypes]RemoteVisits
	if remote != nil {
		rv = *remote
	}
	var instr, ios float64
	for t := range d {
		alpha := p.Mix.Fraction(core.TxnType(t))
		instr += alpha * CPUInstructions(p.CPU, d[t], rv[t])
		ios += alpha * d[t].ReadIOs
	}
	lambda := p.MaxCPUUtil * p.MIPS * 1e6 / instr
	return Throughput{
		TotalPerSec:      lambda,
		NewOrderPerMin:   lambda * p.Mix.Fraction(core.TxnNewOrder) * 60,
		AvgInstrPerTxn:   instr,
		AvgReadIOsPerTxn: ios,
		DiskMsPerTxn:     ios * p.CPU.DiskMs,
	}
}

// BandwidthDisks returns the minimum number of data-disk arms keeping
// per-arm utilization at or below p.MaxDiskUtil at throughput tp:
//
//	Util_disk = lambda * (sum_t alpha_t V_{t,14} o_14) / DA
func BandwidthDisks(p SystemParams, tp Throughput) int {
	demandPerSec := tp.TotalPerSec * tp.DiskMsPerTxn / 1000
	n := int(math.Ceil(demandPerSec / p.MaxDiskUtil))
	if n < 1 {
		n = 1
	}
	return n
}

// CPUUtilAt returns the CPU utilization at an arbitrary throughput
// lambda (transactions/second), for sensitivity studies.
func CPUUtilAt(p SystemParams, d Demands, remote *[core.NumTxnTypes]RemoteVisits, lambda float64) float64 {
	var rv [core.NumTxnTypes]RemoteVisits
	if remote != nil {
		rv = *remote
	}
	var instr float64
	for t := range d {
		instr += p.Mix.Fraction(core.TxnType(t)) * CPUInstructions(p.CPU, d[t], rv[t])
	}
	return lambda * instr / (p.MIPS * 1e6)
}

// DiskUtilAt returns the per-arm disk utilization at throughput lambda
// with da arms.
func DiskUtilAt(p SystemParams, d Demands, lambda float64, da int) float64 {
	var ios float64
	for t := range d {
		ios += p.Mix.Fraction(core.TxnType(t)) * d[t].ReadIOs
	}
	return lambda * ios * p.CPU.DiskMs / 1000 / float64(da)
}
