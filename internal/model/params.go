// Package model implements the paper's Section 5 throughput model: CPU and
// disk visit counts per transaction type (Table 4), the utilization
// equations, the maximum-throughput solver, the Figure 10 hardware
// price/performance model, and the Appendix A distributed-system
// expectations behind Tables 6/7 and Figures 11/12.
//
// Parameter provenance: the published table in the source text is
// OCR-damaged, so the defaults here are the reconstruction documented in
// DESIGN.md §4 — values legible in Tables 4/6 are used verbatim (select
// 20K, commit 30K, initIO 5K, application 5K, send/receive 10K, prepCommit
// 15K, disk 25ms); the join (2040K), non-unique sort, and per-lock release
// (1K) costs come from the Section 5.1 prose; the remainder are stated
// assumptions. The paper itself stresses the values "do not reflect any
// particular system" and that the objective is trends, not absolutes.
package model

import (
	"fmt"

	"tpccmodel/internal/core"
	"tpccmodel/internal/tpcc"
)

// CPUParams are CPU path lengths in instructions (and the disk service
// time), the paper's Table 4 "overhead" column.
type CPUParams struct {
	Select          float64 // per unique-indexed select
	Update          float64
	Insert          float64
	Delete          float64
	Commit          float64 // per commit (one per participating node)
	InitIO          float64 // per physical I/O initiated
	Application     float64 // per application-code segment between SQL calls
	SendReceive     float64 // per message endpoint pair
	PrepCommit      float64 // per prepare-to-commit (2PC)
	InitTxn         float64 // per transaction start
	ReleaseLock     float64 // per lock released at commit
	NonUniqueSelect float64 // extra sort overhead per select-by-name
	Join            float64 // the Stock-Level equi-join (200-tuple scan +
	// 200 indexed selects + duplicate-eliminating sort)
	DiskMs float64 // disk service time per I/O, milliseconds
}

// DefaultCPUParams returns the DESIGN.md §4 reconstruction of Table 4.
func DefaultCPUParams() CPUParams {
	return CPUParams{
		Select:          20_000,
		Update:          20_000,
		Insert:          20_000,
		Delete:          20_000,
		Commit:          30_000,
		InitIO:          5_000,
		Application:     5_000,
		SendReceive:     10_000,
		PrepCommit:      15_000,
		InitTxn:         40_000,
		ReleaseLock:     1_000,
		NonUniqueSelect: 50_000,
		Join:            2_040_000,
		DiskMs:          25,
	}
}

// SystemParams fix the modeled machine and operating point.
type SystemParams struct {
	CPU CPUParams
	// MIPS is the processor speed in millions of instructions/second
	// (paper: 10).
	MIPS float64
	// MaxCPUUtil is the CPU utilization at which maximum throughput is
	// quoted (paper: 0.80).
	MaxCPUUtil float64
	// MaxDiskUtil is the per-arm utilization ceiling used to size the
	// number of data disks (paper: 0.50).
	MaxDiskUtil float64
	// Mix is the transaction mix.
	Mix tpcc.Mix
}

// DefaultSystemParams returns the paper's Section 5.2 operating point.
func DefaultSystemParams() SystemParams {
	return SystemParams{
		CPU:         DefaultCPUParams(),
		MIPS:        10,
		MaxCPUUtil:  0.80,
		MaxDiskUtil: 0.50,
		Mix:         tpcc.DefaultMix(),
	}
}

// Validate checks the parameters.
func (p SystemParams) Validate() error {
	if p.MIPS <= 0 {
		return fmt.Errorf("model: MIPS must be positive")
	}
	if p.MaxCPUUtil <= 0 || p.MaxCPUUtil > 1 {
		return fmt.Errorf("model: MaxCPUUtil %v out of (0,1]", p.MaxCPUUtil)
	}
	if p.MaxDiskUtil <= 0 || p.MaxDiskUtil > 1 {
		return fmt.Errorf("model: MaxDiskUtil %v out of (0,1]", p.MaxDiskUtil)
	}
	return p.Mix.Validate()
}

// CallCounts are the per-transaction database-call visit counts of Table 4
// (single node). Selects include the three tuple fetches of each
// select-by-name (so Payment shows the paper's 4.2); NonUnique counts the
// extra sort per name select.
type CallCounts struct {
	Selects   float64
	Updates   float64
	Inserts   float64
	Deletes   float64
	NonUnique float64
	Joins     float64
	// SQLCalls is the number of SQL calls, for the application-code
	// visits (1 + SQLCalls segments per transaction).
	SQLCalls float64
	// Locks is the number of locks released at commit.
	Locks float64
}

// StaticCallCounts returns the Table 4 visit counts for all five
// transaction types, derived from the Section 2.2 transaction definitions.
func StaticCallCounts() [core.NumTxnTypes]CallCounts {
	var c [core.NumTxnTypes]CallCounts
	// New-Order: 1 wh + 1 dist + 1 cust + 10 item + 10 stock selects;
	// 1 dist + 10 stock updates; 1 order + 1 new-order + 10 OL inserts.
	c[core.TxnNewOrder] = CallCounts{
		Selects: 23, Updates: 11, Inserts: 12,
		SQLCalls: 46, Locks: 35, // 23 read/upgraded + 12 insert locks
	}
	// Payment: wh + dist + customer (0.4·1 + 0.6·3 = 2.2 tuples) selects
	// = 4.2; wh + dist + cust updates; 1 history insert; 0.6 sorts.
	c[core.TxnPayment] = CallCounts{
		Selects: 4.2, Updates: 3, Inserts: 1, NonUnique: 0.6,
		SQLCalls: 7, Locks: 6.2,
	}
	// Order-Status: customer (2.2) + 1 order + 10 order-lines selects.
	c[core.TxnOrderStatus] = CallCounts{
		Selects: 13.2, NonUnique: 0.6,
		SQLCalls: 12, Locks: 13.2,
	}
	// Delivery: 10 districts × (1 new-order + 1 order + 10 OL + 1 cust)
	// selects, × (1 order + 10 OL + 1 cust) updates, × 1 delete.
	c[core.TxnDelivery] = CallCounts{
		Selects: 130, Updates: 120, Deletes: 10,
		SQLCalls: 260, Locks: 130,
	}
	// Stock-Level: 1 district select + the 400-tuple join.
	c[core.TxnStockLevel] = CallCounts{
		Selects: 1, Joins: 1,
		SQLCalls: 2, Locks: 401,
	}
	return c
}

// Demand is one transaction type's resource demand: its static call counts
// plus the physical-I/O count that depends on the buffer configuration.
type Demand struct {
	Calls CallCounts
	// ReadIOs is the expected number of data-page read I/Os per
	// transaction (from the buffer simulation). One log write I/O per
	// transaction is added by the model on top of this.
	ReadIOs float64
}

// Demands is the per-type demand vector.
type Demands [core.NumTxnTypes]Demand

// StaticDemands returns Demands with the Table 4 call counts and the given
// per-type read-I/O counts.
func StaticDemands(readIOs [core.NumTxnTypes]float64) Demands {
	calls := StaticCallCounts()
	var d Demands
	for t := range d {
		d[t] = Demand{Calls: calls[t], ReadIOs: readIOs[t]}
	}
	return d
}
