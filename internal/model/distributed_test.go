package model

import (
	"math"
	"testing"
	"testing/quick"

	"tpccmodel/internal/core"
)

func TestDistConfigValidate(t *testing.T) {
	if err := DefaultDistConfig(10, true).Validate(); err != nil {
		t.Fatal(err)
	}
	bad := DefaultDistConfig(0, true)
	if err := bad.Validate(); err == nil {
		t.Error("zero nodes should fail")
	}
	bad = DefaultDistConfig(2, true)
	bad.RemoteStockProb = 2
	if err := bad.Validate(); err == nil {
		t.Error("probability > 1 should fail")
	}
}

func TestExpectationsSingleNode(t *testing.T) {
	e := DefaultDistConfig(1, true).Expect()
	if e.UStock != 0 || e.RCStock != 0 || e.UCust != 0 || e.LStock != 1 {
		t.Errorf("single node must have no remote work: %+v", e)
	}
}

func TestExpectationsKnownValues(t *testing.T) {
	// N=2, remote stock 1%: P_S = 0.01*0.5 = 0.005; E[R_s] = 0.05;
	// RC_stock = 0.1; L_stock = 0.995^10.
	e := DefaultDistConfig(2, true).Expect()
	if math.Abs(e.PS-0.005) > 1e-12 {
		t.Errorf("PS = %v", e.PS)
	}
	if math.Abs(e.ERs-0.05) > 1e-9 {
		t.Errorf("ERs = %v, want 0.05", e.ERs)
	}
	if math.Abs(e.RCStock-0.1) > 1e-9 {
		t.Errorf("RCStock = %v, want 0.1", e.RCStock)
	}
	if math.Abs(e.LStock-math.Pow(0.995, 10)) > 1e-12 {
		t.Errorf("LStock = %v", e.LStock)
	}
	// With N=2 there is exactly one remote site, so U_stock =
	// P[at least one remote request] = 1 - L_stock.
	if math.Abs(e.UStock-(1-e.LStock)) > 1e-12 {
		t.Errorf("UStock = %v, want %v", e.UStock, 1-e.LStock)
	}
	// RC_cust = 0.15 * 0.5 * (0.4 + 1.8 + 1) = 0.24; U_cust = 0.075.
	if math.Abs(e.RCCust-0.24) > 1e-12 {
		t.Errorf("RCCust = %v, want 0.24", e.RCCust)
	}
	if math.Abs(e.UCust-0.075) > 1e-12 {
		t.Errorf("UCust = %v, want 0.075", e.UCust)
	}
}

// TestPaperRemoteCallBreakdown checks the Section 6 summary numbers: "In
// the New-Order transaction on average 0.1 stock tuples accessed and
// updated are from a remote warehouse" (E[R_s] -> 0.1 as N -> inf) and
// "In the Payment transaction 0.33 (0.15 x 2.2) customer tuples accessed"
// (RC_cust minus the write-back -> 0.33).
func TestPaperRemoteCallBreakdown(t *testing.T) {
	e := DefaultDistConfig(1000, true).Expect()
	if math.Abs(e.ERs-0.1) > 0.001 {
		t.Errorf("E[R_s] at large N = %v, want ~0.1", e.ERs)
	}
	reads := e.RCCust / (0.4*1 + 0.6*3 + 1) * (0.4*1 + 0.6*3)
	if math.Abs(reads-0.33) > 0.001 {
		t.Errorf("remote customer reads = %v, want ~0.33", reads)
	}
}

func TestUniqueSitesProperties(t *testing.T) {
	f := func(nRaw uint8, pRaw uint8) bool {
		n := int(nRaw%30) + 2
		p := float64(pRaw%100) / 100
		cfg := DistConfig{Nodes: n, RemoteStockProb: p, RemotePaymentProb: 0.15, ItemReplicated: false}
		e := cfg.Expect()
		// Unique sites can't exceed expected requests or N-1.
		if e.UStock > e.ERs+1e-9 || e.UStock > float64(n-1)+1e-9 || e.UStock < 0 {
			return false
		}
		if e.UItem > e.ERi+1e-9 || e.UItem > float64(n-1)+1e-9 {
			return false
		}
		// Union bound structure: max(U_stock, U_item) <= U_stock+item
		// <= U_stock + U_item.
		lo := math.Max(e.UStock, e.UItem)
		return e.UStockItem >= lo-1e-9 && e.UStockItem <= e.UStock+e.UItem+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestRemoteVisitCountsReplication(t *testing.T) {
	rep := DefaultDistConfig(10, true).RemoteVisitCounts()
	part := DefaultDistConfig(10, false).RemoteVisitCounts()
	// Payment is identical under both (it never touches Item).
	if rep[core.TxnPayment] != part[core.TxnPayment] {
		t.Error("Payment visit counts must not depend on item replication")
	}
	// Non-replication strictly increases New-Order messaging and commits.
	if part[core.TxnNewOrder].SendReceive <= rep[core.TxnNewOrder].SendReceive {
		t.Error("partitioned item must add send/receive work")
	}
	if part[core.TxnNewOrder].CommitExtra <= rep[core.TxnNewOrder].CommitExtra {
		t.Error("partitioned item must add commit work")
	}
	// Local-only transactions never acquire remote visit counts.
	for _, tt := range []core.TxnType{core.TxnOrderStatus, core.TxnDelivery, core.TxnStockLevel} {
		if rep[tt] != (RemoteVisits{}) || part[tt] != (RemoteVisits{}) {
			t.Errorf("%s should have no remote visits", tt)
		}
	}
}

// TestScaleupShape reproduces Figure 11's qualitative content: replicated
// scale-up is close to linear (the paper quotes ~3% off ideal), the
// partitioned case is clearly worse, and the replicated advantage grows
// with node count (the paper quotes 10/30/39% at 2/10/30 nodes).
func TestScaleupShape(t *testing.T) {
	p := DefaultSystemParams()
	d := StaticDemands(paperIOs())
	nodes := []int{1, 2, 10, 30}
	rep := Scaleup(p, d, DefaultDistConfig(0, true), nodes)
	part := Scaleup(p, d, DefaultDistConfig(0, false), nodes)

	for i, pt := range rep {
		if pt.Nodes == 1 {
			if math.Abs(pt.ScaleupEfficiency-1) > 1e-9 {
				t.Errorf("1 node efficiency = %v", pt.ScaleupEfficiency)
			}
			continue
		}
		if pt.ScaleupEfficiency < 0.90 || pt.ScaleupEfficiency > 1 {
			t.Errorf("replicated efficiency at %d nodes = %v, want near-linear",
				pt.Nodes, pt.ScaleupEfficiency)
		}
		if part[i].TotalNewOrderPerMin >= pt.TotalNewOrderPerMin {
			t.Errorf("partitioned should underperform replicated at %d nodes", pt.Nodes)
		}
	}
	// Replication advantage grows with N.
	adv := func(i int) float64 {
		return rep[i].TotalNewOrderPerMin/part[i].TotalNewOrderPerMin - 1
	}
	if !(adv(1) < adv(2) && adv(2) < adv(3)) {
		t.Errorf("replication advantage should grow with N: %v %v %v", adv(1), adv(2), adv(3))
	}
	if a := adv(3); a < 0.15 || a > 0.8 {
		t.Errorf("replication advantage at 30 nodes = %.2f, paper says ~0.39", a)
	}
}

// TestRemoteSensitivity reproduces Figure 12's qualitative content: raising
// the remote-stock probability to 1.0 cuts scale-up substantially (the
// paper quotes ~44%), while most accesses remain local.
func TestRemoteSensitivity(t *testing.T) {
	p := DefaultSystemParams()
	d := StaticDemands(paperIOs())
	at := func(prob float64) float64 {
		cfg := DefaultDistConfig(10, true)
		cfg.RemoteStockProb = prob
		rv := cfg.RemoteVisitCounts()
		return MaxThroughput(p, d, &rv).NewOrderPerMin
	}
	base := at(0.01)
	mid := at(0.5)
	full := at(1.0)
	if !(full < mid && mid < base) {
		t.Errorf("throughput should fall with remote probability: %v %v %v", base, mid, full)
	}
	drop := 1 - full/base
	if drop < 0.2 || drop > 0.6 {
		t.Errorf("drop at p=1.0 is %.2f, paper says ~0.44", drop)
	}
}

func TestScaleupMonotoneInNodesOverhead(t *testing.T) {
	// Per-node throughput decreases (weakly) as N grows, since remote
	// probabilities (N-1)/N increase.
	p := DefaultSystemParams()
	d := StaticDemands(paperIOs())
	pts := Scaleup(p, d, DefaultDistConfig(0, false), []int{2, 4, 8, 16, 32})
	for i := 1; i < len(pts); i++ {
		if pts[i].PerNode.NewOrderPerMin > pts[i-1].PerNode.NewOrderPerMin+1e-9 {
			t.Errorf("per-node throughput rose from %d to %d nodes",
				pts[i-1].Nodes, pts[i].Nodes)
		}
	}
}

func TestChoose(t *testing.T) {
	cases := []struct {
		n, k int
		want int64
	}{
		{10, 0, 1}, {10, 10, 1}, {10, 1, 10}, {10, 3, 120}, {10, 5, 252},
		{5, 6, 0}, {5, -1, 0},
	}
	for _, c := range cases {
		if got := choose(c.n, c.k); got != c.want {
			t.Errorf("choose(%d,%d) = %d, want %d", c.n, c.k, got, c.want)
		}
	}
}

func TestBinomialPMFSums(t *testing.T) {
	f := func(pRaw uint8) bool {
		p := float64(pRaw%101) / 100
		pmf := binomialPMF(10, p)
		var sum, mean float64
		for j, v := range pmf {
			if v < -1e-12 {
				return false
			}
			sum += v
			mean += float64(j) * v
		}
		return math.Abs(sum-1) < 1e-9 && math.Abs(mean-10*p) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestSingleNodePartitioned: N=1 with partitioned Item must still show
// zero remote work of any kind — there is no other node to call.
func TestSingleNodePartitioned(t *testing.T) {
	e := DefaultDistConfig(1, false).Expect()
	if e.PS != 0 || e.ERs != 0 || e.RCStock != 0 || e.UStock != 0 ||
		e.PI != 0 || e.ERi != 0 || e.RCItem != 0 || e.UItem != 0 ||
		e.UStockItem != 0 || e.RCCust != 0 || e.UCust != 0 {
		t.Errorf("single partitioned node must have no remote work: %+v", e)
	}
	if e.LStock != 1 {
		t.Errorf("single node L_stock = %v, want 1", e.LStock)
	}
}

// TestZeroRemoteStockPartitioned: with RemoteStockProb = 0 on a
// partitioned-Item cluster the stock terms collapse to local-only while
// the item terms (driven purely by partitioning) survive.
func TestZeroRemoteStockPartitioned(t *testing.T) {
	d := DefaultDistConfig(4, false)
	d.RemoteStockProb = 0
	e := d.Expect()
	if e.PS != 0 || e.ERs != 0 || e.RCStock != 0 || e.UStock != 0 {
		t.Errorf("zero remote-stock probability left remote stock terms: %+v", e)
	}
	if e.LStock != 1 {
		t.Errorf("L_stock = %v, want 1 when no line can go remote", e.LStock)
	}
	if e.PI != 0.75 || e.ERi <= 0 || e.RCItem <= 0 || e.UItem <= 0 {
		t.Errorf("partitioned item terms should survive: %+v", e)
	}
	// With zero stock requests, unique stock+item sites reduce to the
	// unique item sites.
	if math.Abs(e.UStockItem-e.UItem) > 1e-12 {
		t.Errorf("U_stock+item = %v, want U_item = %v at zero stock traffic",
			e.UStockItem, e.UItem)
	}
}

// TestRemoteCallsMonotoneInNodes: every remote-call expectation grows
// (weakly) with N — the remote fraction (N-1)/N does, and nothing else
// in the formulas depends on N.
func TestRemoteCallsMonotoneInNodes(t *testing.T) {
	for _, replicated := range []bool{true, false} {
		var prev Expectations
		for n := 1; n <= 64; n *= 2 {
			e := DefaultDistConfig(n, replicated).Expect()
			if n > 1 {
				if e.RCStock < prev.RCStock || e.ERs < prev.ERs ||
					e.RCCust < prev.RCCust || e.UCust < prev.UCust ||
					e.UStock < prev.UStock {
					t.Errorf("replicated=%v: remote calls not monotone from N=%d: %+v -> %+v",
						replicated, n/2, prev, e)
				}
				if e.LStock > prev.LStock {
					t.Errorf("replicated=%v: L_stock rose with N: %v -> %v",
						replicated, prev.LStock, e.LStock)
				}
				if !replicated && (e.RCItem < prev.RCItem || e.UStockItem < prev.UStockItem) {
					t.Errorf("replicated=%v: item terms not monotone from N=%d", replicated, n/2)
				}
			}
			prev = e
		}
	}
}

// TestByNameSelectedDefault: zero ByNameSelected reproduces the paper's
// RC_cust exactly (equation 8 with 3 selected tuples), and supplying the
// NURand group size raises it.
func TestByNameSelectedDefault(t *testing.T) {
	d := DefaultDistConfig(2, true)
	e := d.Expect()
	want := d.RemotePaymentProb * 0.5 * (0.4 + 0.6*3 + 1)
	if math.Abs(e.RCCust-want) > 1e-12 {
		t.Errorf("default RC_cust = %v, want paper value %v", e.RCCust, want)
	}
	g := NUByNameGroupSize()
	if g <= 3 || g > 100 {
		t.Fatalf("NU group size = %v, want skewed value above the uniform 3", g)
	}
	d.ByNameSelected = g
	if e2 := d.Expect(); e2.RCCust <= e.RCCust {
		t.Errorf("NURand group size did not raise RC_cust: %v vs %v", e2.RCCust, e.RCCust)
	}
}
