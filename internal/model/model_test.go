package model

import (
	"math"
	"testing"

	"tpccmodel/internal/core"
)

// paperIOs is a plausible read-I/O vector at a mid-size buffer, used where
// tests need demands without running a simulation.
func paperIOs() [core.NumTxnTypes]float64 {
	return AnalyticReadIOs(AnalyticMissRates{
		MC: 0.5, MI: 0.01, MS: 0.3, MO: 0.2, ML: 0.1, MNO: 0.01,
	})
}

func TestSystemParamsValidate(t *testing.T) {
	if err := DefaultSystemParams().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := DefaultSystemParams()
	bad.MIPS = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero MIPS should fail")
	}
	bad = DefaultSystemParams()
	bad.MaxCPUUtil = 1.5
	if err := bad.Validate(); err == nil {
		t.Error("util > 1 should fail")
	}
}

func TestStaticCallCountsMatchTable2(t *testing.T) {
	c := StaticCallCounts()
	// Table 2 rows (selects include the 3-way name fetches).
	checks := []struct {
		t                        core.TxnType
		sel, upd, ins, del, join float64
	}{
		{core.TxnNewOrder, 23, 11, 12, 0, 0},
		{core.TxnPayment, 4.2, 3, 1, 0, 0},
		{core.TxnDelivery, 130, 120, 0, 10, 0},
		{core.TxnStockLevel, 1, 0, 0, 0, 1},
	}
	for _, ch := range checks {
		got := c[ch.t]
		if got.Selects != ch.sel || got.Updates != ch.upd || got.Inserts != ch.ins ||
			got.Deletes != ch.del || got.Joins != ch.join {
			t.Errorf("%s: %+v, want sel %v upd %v ins %v del %v join %v",
				ch.t, got, ch.sel, ch.upd, ch.ins, ch.del, ch.join)
		}
	}
	// Order-Status: 2.2 customer + 1 order + 10 order-lines.
	if got := c[core.TxnOrderStatus].Selects; got != 13.2 {
		t.Errorf("Order-Status selects = %v, want 13.2", got)
	}
}

func TestCPUInstructionsComposition(t *testing.T) {
	p := DefaultCPUParams()
	d := Demand{Calls: CallCounts{Selects: 2, SQLCalls: 2, Locks: 2}, ReadIOs: 1}
	got := CPUInstructions(p, d, RemoteVisits{})
	want := 2*p.Select + p.Commit + p.InitTxn + 3*p.Application +
		2*p.ReleaseLock + 2*p.InitIO
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("CPUInstructions = %v, want %v", got, want)
	}
	// Remote extras add linearly.
	rv := RemoteVisits{CommitExtra: 1, SendReceive: 4, PrepCommit: 2, InitIOExtra: 1}
	got2 := CPUInstructions(p, d, rv)
	want2 := want + p.Commit + 4*p.SendReceive + 2*p.PrepCommit + p.InitIO
	if math.Abs(got2-want2) > 1e-9 {
		t.Errorf("with remote: %v, want %v", got2, want2)
	}
}

func TestMaxThroughputBallpark(t *testing.T) {
	// Paper context: ~20 warehouses on a 10 MIPS processor at 80%
	// utilization, i.e. roughly 100-400 new-order tpm.
	p := DefaultSystemParams()
	d := StaticDemands(paperIOs())
	tp := MaxThroughput(p, d, nil)
	if tp.NewOrderPerMin < 100 || tp.NewOrderPerMin > 400 {
		t.Errorf("new-order tpm = %v, expected O(10^2) for 10 MIPS", tp.NewOrderPerMin)
	}
	// Utilization equation must invert exactly.
	if u := CPUUtilAt(p, d, nil, tp.TotalPerSec); math.Abs(u-p.MaxCPUUtil) > 1e-9 {
		t.Errorf("CPU util at max throughput = %v, want %v", u, p.MaxCPUUtil)
	}
}

func TestThroughputScalesWithMIPS(t *testing.T) {
	d := StaticDemands(paperIOs())
	p := DefaultSystemParams()
	t1 := MaxThroughput(p, d, nil)
	p.MIPS = 20
	t2 := MaxThroughput(p, d, nil)
	if math.Abs(t2.TotalPerSec/t1.TotalPerSec-2) > 1e-9 {
		t.Error("throughput should scale linearly with MIPS")
	}
}

func TestLowerMissRatesRaiseThroughput(t *testing.T) {
	p := DefaultSystemParams()
	hi := MaxThroughput(p, StaticDemands(paperIOs()), nil)
	var zero [core.NumTxnTypes]float64
	lo := MaxThroughput(p, StaticDemands(zero), nil)
	if lo.NewOrderPerMin <= hi.NewOrderPerMin {
		t.Error("zero miss rates must increase throughput")
	}
}

func TestBandwidthDisks(t *testing.T) {
	p := DefaultSystemParams()
	d := StaticDemands(paperIOs())
	tp := MaxThroughput(p, d, nil)
	n := BandwidthDisks(p, tp)
	if n < 1 {
		t.Fatalf("disks = %d", n)
	}
	// Utilization with n arms must be <= 50%, with n-1 arms > 50%.
	if u := DiskUtilAt(p, d, tp.TotalPerSec, n); u > p.MaxDiskUtil+1e-9 {
		t.Errorf("util with %d arms = %v > %v", n, u, p.MaxDiskUtil)
	}
	if n > 1 {
		if u := DiskUtilAt(p, d, tp.TotalPerSec, n-1); u <= p.MaxDiskUtil {
			t.Errorf("util with %d arms = %v should exceed %v", n-1, u, p.MaxDiskUtil)
		}
	}
}

func TestAnalyticReadIOsShapes(t *testing.T) {
	ios := AnalyticReadIOs(AnalyticMissRates{MC: 1, MI: 1, MS: 1, MO: 1, ML: 1, MNO: 1})
	// With all miss rates 1 the row shapes give their access counts.
	want := [core.NumTxnTypes]float64{
		core.TxnNewOrder:    21, // 1 + 10(1+1)
		core.TxnPayment:     2.2,
		core.TxnOrderStatus: 13.2,
		core.TxnDelivery:    130, // 10(1+1+10+1)
		core.TxnStockLevel:  400,
	}
	for t2 := range ios {
		if math.Abs(ios[t2]-want[t2]) > 1e-9 {
			t.Errorf("%s: ios = %v, want %v", core.TxnType(t2), ios[t2], want[t2])
		}
	}
}
