package model

import (
	"fmt"
	"math"

	"tpccmodel/internal/core"
)

// ResponseTimes holds per-transaction-type mean response times in
// milliseconds at one operating point, decomposed by resource.
type ResponseTimes struct {
	// PerTxnMs[t] is the mean response time of transaction type t.
	PerTxnMs [core.NumTxnTypes]float64
	// MeanMs is the mix-weighted mean.
	MeanMs float64
	// CPUUtil and DiskUtil are the underlying utilizations.
	CPUUtil  float64
	DiskUtil float64
}

// ResponseTime extends the paper's utilization-only model with an open
// queueing estimate: the CPU is a processor-sharing station (per-class
// mean response = demand/(1-rho), exact for M/G/1-PS) and each of the
// transaction's ReadIOs is a sequential visit to one FCFS disk arm with
// exponential service (per-I/O response = S/(1-rho_arm), exact for
// M/M/1), so
//
//	R_t = CPU_t/(1-rho_cpu) + ReadIOs_t * S_disk/(1-rho_arm).
//
// The discrete-event simulation in package queuesim reproduces exactly
// this station model; the two are cross-validated in its tests. The
// transaction rate lambda is in transactions/second across all types;
// diskArms is the number of data-disk arms sharing the I/O load (more
// arms lower rho_arm). An error is returned if either resource would
// saturate.
func ResponseTime(p SystemParams, d Demands, lambda float64, diskArms int) (ResponseTimes, error) {
	if lambda <= 0 {
		return ResponseTimes{}, fmt.Errorf("model: lambda must be positive")
	}
	if diskArms < 1 {
		return ResponseTimes{}, fmt.Errorf("model: need at least one disk arm")
	}
	var rt ResponseTimes
	rt.CPUUtil = CPUUtilAt(p, d, nil, lambda)
	rt.DiskUtil = DiskUtilAt(p, d, lambda, diskArms)
	if rt.CPUUtil >= 1 {
		return rt, fmt.Errorf("model: CPU saturated (util %.3f)", rt.CPUUtil)
	}
	if rt.DiskUtil >= 1 {
		return rt, fmt.Errorf("model: disks saturated (util %.3f)", rt.DiskUtil)
	}
	for t := range d {
		cpuMs := CPUInstructions(p.CPU, d[t], RemoteVisits{}) / (p.MIPS * 1e6) * 1000
		// A transaction's I/Os are sequential: each waits at one arm
		// whose utilization is the per-arm DiskUtil. Spreading across
		// arms lowers rho, not the per-I/O service time.
		diskMs := d[t].ReadIOs * p.CPU.DiskMs / (1 - rt.DiskUtil)
		r := cpuMs/(1-rt.CPUUtil) + diskMs
		rt.PerTxnMs[t] = r
		rt.MeanMs += p.Mix.Fraction(core.TxnType(t)) * r
	}
	return rt, nil
}

// ResponseCurve evaluates ResponseTime at fractions of the maximum
// throughput, producing the classic hockey-stick latency curve. The
// fractions must lie in (0, 1); points where a resource saturates are
// reported as +Inf.
func ResponseCurve(p SystemParams, d Demands, diskArms int, fractions []float64) []ResponseTimes {
	maxTp := MaxThroughput(p, d, nil)
	// MaxThroughput fixes CPU util at p.MaxCPUUtil; the true saturation
	// rate is that over MaxCPUUtil.
	satLambda := maxTp.TotalPerSec / p.MaxCPUUtil
	out := make([]ResponseTimes, len(fractions))
	for i, f := range fractions {
		rt, err := ResponseTime(p, d, f*satLambda, diskArms)
		if err != nil {
			rt.MeanMs = math.Inf(1)
			for t := range rt.PerTxnMs {
				rt.PerTxnMs[t] = math.Inf(1)
			}
		}
		out[i] = rt
	}
	return out
}
