package model

import (
	"fmt"
	"math"

	"tpccmodel/internal/core"
	"tpccmodel/internal/nurand"
	"tpccmodel/internal/tpcc"
)

// DistConfig describes a distributed configuration for the Section 5.3 /
// Appendix A model: N symmetric nodes, each holding 20 warehouses (or
// whatever the workload config says) and all data pertaining to them, with
// the Item relation either replicated everywhere or partitioned equally.
type DistConfig struct {
	// Nodes is N.
	Nodes int
	// RemoteStockProb is the benchmark's 1% chance an ordered item is
	// stocked by a remote warehouse (Figure 12 sweeps this).
	RemoteStockProb float64
	// RemotePaymentProb is the benchmark's 15% remote-payment chance.
	RemotePaymentProb float64
	// ItemReplicated selects between Table 6 (replicated, read-only
	// sharing CC with no remote calls for item) and Table 7
	// (partitioned: item fetches go remote with probability (N-1)/N).
	ItemReplicated bool
	// ByNameSelected is the expected customer tuples a by-name Payment
	// select touches. Zero means the paper's idealized value of 3
	// (uniform last names: 3000 customers over 1000 names). An engine
	// validating against a loader and runtime that both draw last names
	// from NU(255) should supply NUByNameGroupSize(), the
	// selection-weighted expectation under that skew.
	ByNameSelected float64
}

// DefaultDistConfig returns the benchmark probabilities.
func DefaultDistConfig(nodes int, replicated bool) DistConfig {
	return DistConfig{
		Nodes:             nodes,
		RemoteStockProb:   tpcc.RemoteStockProb,
		RemotePaymentProb: tpcc.RemotePaymentProb,
		ItemReplicated:    replicated,
	}
}

// Validate checks the configuration.
func (d DistConfig) Validate() error {
	if d.Nodes < 1 {
		return fmt.Errorf("model: nodes must be >= 1")
	}
	if d.RemoteStockProb < 0 || d.RemoteStockProb > 1 {
		return fmt.Errorf("model: remote stock probability %v out of [0,1]", d.RemoteStockProb)
	}
	if d.RemotePaymentProb < 0 || d.RemotePaymentProb > 1 {
		return fmt.Errorf("model: remote payment probability %v out of [0,1]", d.RemotePaymentProb)
	}
	return nil
}

// Expectations are the Appendix A quantities (Table 5 notation).
type Expectations struct {
	// PS is the per-item probability of a remote-node stock supplier:
	// RemoteStockProb * (N-1)/N.
	PS float64
	// ERs is E[R_s], the expected remote stock fetches per New-Order.
	ERs float64
	// RCStock is the expected remote calls for reading and writing stock
	// tuples (2 per remote tuple).
	RCStock float64
	// LStock is the probability all ten stock tuples are local.
	LStock float64
	// UStock is the expected number of unique remote sites supplying
	// stock tuples.
	UStock float64
	// RCCust and UCust are the Payment analogues.
	RCCust float64
	UCust  float64
	// PI, ERi, RCItem, UItem, UStockItem apply only when the Item
	// relation is partitioned (Table 7).
	PI         float64
	ERi        float64
	RCItem     float64
	UItem      float64
	UStockItem float64
}

// NUByNameGroupSize returns the expected number of customer tuples a
// by-name select touches when the loader and the runtime both draw last
// names from NU(255) over NamesPerDistrict names with the same run
// constant. Each district's first NamesPerDistrict customers carry
// distinct names; the remaining extra = CustomersPerDistrict -
// NamesPerDistrict draw theirs from the distribution, so a name w has
// expected group size 1 + extra·P(w) and the selection-weighted
// expectation is 1 + extra·Σ_w P(w)² — about 12.3 under the NU(255)
// skew, far above the uniform-names value of 3 the paper idealizes to.
func NUByNameGroupSize() float64 {
	pmf := nurand.ExactPMF(nurand.Params{A: 255, X: 0, Y: tpcc.NamesPerDistrict - 1})
	var s2 float64
	for _, p := range pmf {
		s2 += p * p
	}
	extra := float64(tpcc.CustomersPerDistrict - tpcc.NamesPerDistrict)
	return 1 + extra*s2
}

// binomialPMF returns P[j successes in n trials at probability p].
func binomialPMF(n int, p float64) []float64 {
	out := make([]float64, n+1)
	for j := 0; j <= n; j++ {
		out[j] = float64(choose(n, j)) * math.Pow(p, float64(j)) * math.Pow(1-p, float64(n-j))
	}
	return out
}

func choose(n, k int) int64 {
	if k < 0 || k > n {
		return 0
	}
	if k > n-k {
		k = n - k
	}
	var c int64 = 1
	for i := 0; i < k; i++ {
		c = c * int64(n-i) / int64(i+1)
	}
	return c
}

// uniqueSites returns the Appendix A theorem's expectation: given the
// distribution pj of the number of remote requests, the expected number of
// distinct remote sites is sum_j pj (N-1)(1 - ((N-2)/(N-1))^j).
func uniqueSites(pj []float64, n int) float64 {
	if n <= 1 {
		return 0
	}
	ratio := float64(n-2) / float64(n-1)
	var u float64
	for j, p := range pj {
		u += p * float64(n-1) * (1 - math.Pow(ratio, float64(j)))
	}
	return u
}

// Expect computes the Appendix A expectations for this configuration.
func (d DistConfig) Expect() Expectations {
	n := d.Nodes
	var e Expectations
	if n <= 1 {
		e.LStock = 1
		return e
	}
	frac := float64(n-1) / float64(n)

	// Stock (Appendix A.1).
	e.PS = d.RemoteStockProb * frac
	pS := binomialPMF(tpcc.ItemsPerOrder, e.PS)
	for j, p := range pS {
		e.ERs += float64(j) * p
	}
	e.RCStock = 2 * e.ERs
	e.LStock = math.Pow(1-e.PS, tpcc.ItemsPerOrder)
	e.UStock = uniqueSites(pS, n)

	// Customer (Payment): remote with probability 0.15·(N-1)/N; 0.4·1 +
	// 0.6·byName tuples selected plus one write-back (equation 8, with
	// the paper's byName = 3).
	byName := d.ByNameSelected
	if byName <= 0 {
		byName = 3
	}
	e.RCCust = d.RemotePaymentProb * frac * (0.4*1 + 0.6*byName + 1)
	e.UCust = d.RemotePaymentProb * frac

	// Item (Appendix A.2), meaningful only when not replicated.
	if !d.ItemReplicated {
		e.PI = frac
		pI := binomialPMF(tpcc.ItemsPerOrder, e.PI)
		for j, p := range pI {
			e.ERi += float64(j) * p
		}
		e.RCItem = e.ERi // read-only: no write-back
		e.UItem = uniqueSites(pI, n)
		// U_{stock+item}: uncondition over both request counts
		// (equation 13).
		ratio := float64(n-2) / float64(n-1)
		for j, pj := range pI {
			for k, pk := range pS {
				e.UStockItem += pj * pk * float64(n-1) *
					(1 - math.Pow(ratio, float64(j+k)))
			}
		}
	}
	return e
}

// RemoteVisitCounts returns the Tables 6/7 visit-count deltas for each
// transaction type. Only New-Order and Payment change; the other three
// transactions are purely local by benchmark construction.
func (d DistConfig) RemoteVisitCounts() [core.NumTxnTypes]RemoteVisits {
	var rv [core.NumTxnTypes]RemoteVisits
	if d.Nodes <= 1 {
		return rv
	}
	e := d.Expect()

	// Payment (identical in Tables 6 and 7).
	rv[core.TxnPayment] = RemoteVisits{
		CommitExtra: e.UCust,
		SendReceive: 2*e.RCCust + 4*e.UCust,
		PrepCommit:  e.UCust,
		InitIOExtra: e.UCust,
	}

	if d.ItemReplicated {
		// Table 6: only stock tuples go remote.
		rv[core.TxnNewOrder] = RemoteVisits{
			CommitExtra: e.UStock,
			SendReceive: 4*e.UStock + 2*e.RCStock,
			PrepCommit:  e.UStock + 1 - e.LStock,
			InitIOExtra: e.UStock,
		}
		return rv
	}
	// Table 7: item fetches also go remote; nodes supplying only item
	// tuples participate in a one-phase commit.
	uOnePhase := e.UStockItem - e.UStock
	rv[core.TxnNewOrder] = RemoteVisits{
		CommitExtra: e.UStockItem,
		SendReceive: 2*e.RCStock + 2*e.RCItem + 4*e.UStock + 2*uOnePhase,
		PrepCommit:  e.UStock + 1 - e.LStock,
		InitIOExtra: e.UStock,
	}
	return rv
}

// ScaleupPoint is one point of Figure 11/12.
type ScaleupPoint struct {
	Nodes int
	// PerNode is the per-node throughput.
	PerNode Throughput
	// TotalNewOrderPerMin is N x the per-node new-order rate.
	TotalNewOrderPerMin float64
	// IdealNewOrderPerMin is N x the single-node rate (linear scale-up).
	IdealNewOrderPerMin float64
	// ScaleupEfficiency is total/ideal.
	ScaleupEfficiency float64
}

// Scaleup evaluates total throughput for each node count, holding per-node
// demands fixed (each node runs the same 20-warehouse share, as in
// Section 5.3).
func Scaleup(p SystemParams, d Demands, base DistConfig, nodeCounts []int) []ScaleupPoint {
	single := MaxThroughput(p, d, nil)
	out := make([]ScaleupPoint, 0, len(nodeCounts))
	for _, n := range nodeCounts {
		cfg := base
		cfg.Nodes = n
		rv := cfg.RemoteVisitCounts()
		tp := MaxThroughput(p, d, &rv)
		total := tp.NewOrderPerMin * float64(n)
		ideal := single.NewOrderPerMin * float64(n)
		out = append(out, ScaleupPoint{
			Nodes:               n,
			PerNode:             tp,
			TotalNewOrderPerMin: total,
			IdealNewOrderPerMin: ideal,
			ScaleupEfficiency:   total / ideal,
		})
	}
	return out
}
