// Package cliutil holds the flag-validation helpers shared by the cmd/
// binaries. Every tool rejects out-of-range flag values with a usage
// message and a non-zero exit instead of silently falling back to defaults.
package cliutil

import (
	"flag"
	"fmt"
	"os"

	"tpccmodel/internal/parallel"
)

// Fail prints "tool: message", then the flag usage, and exits 2 (the
// conventional bad-invocation status).
func Fail(tool, format string, args ...any) {
	fmt.Fprintf(os.Stderr, "%s: %s\n", tool, fmt.Sprintf(format, args...))
	flag.Usage()
	os.Exit(2)
}

// RequirePositive rejects values < 1 for the named flag.
func RequirePositive(tool, name string, v int64) {
	if v <= 0 {
		Fail(tool, "-%s must be positive, got %d", name, v)
	}
}

// RequireNonNegative rejects values < 0 for the named flag.
func RequireNonNegative(tool, name string, v int64) {
	if v < 0 {
		Fail(tool, "-%s must be non-negative, got %d", name, v)
	}
}

// RequirePositiveFloat rejects values <= 0 for the named flag.
func RequirePositiveFloat(tool, name string, v float64) {
	if !(v > 0) {
		Fail(tool, "-%s must be positive, got %v", name, v)
	}
}

// RequireProb rejects values outside [0, 1] for the named flag.
func RequireProb(tool, name string, v float64) {
	if !(v >= 0 && v <= 1) {
		Fail(tool, "-%s must be in [0,1], got %v", name, v)
	}
}

// Workers validates and resolves a -workers flag: 0 means one worker per
// CPU, negative values are rejected.
func Workers(tool string, v int) int {
	if v < 0 {
		Fail(tool, "-workers must be >= 0 (0 = one per CPU), got %d", v)
	}
	return parallel.Workers(v)
}
