// Package cliutil holds the flag-validation helpers shared by the cmd/
// binaries. Every tool rejects out-of-range flag values with a usage
// message and a non-zero exit instead of silently falling back to defaults.
package cliutil

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"tpccmodel/internal/parallel"
)

// Hardware identifies the machine a benchmark report was measured on.
// Every BENCH_*.json embeds it so checked-in numbers carry their
// provenance: speedup figures from a 1-core container say so.
type Hardware struct {
	Cores      int    `json:"cores"`
	GoMaxProcs int    `json:"gomaxprocs"`
	GoVersion  string `json:"go_version"`
	OSArch     string `json:"os_arch"`
}

// HardwareInfo snapshots the current machine.
func HardwareInfo() Hardware {
	return Hardware{
		Cores:      runtime.NumCPU(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		GoVersion:  runtime.Version(),
		OSArch:     runtime.GOOS + "/" + runtime.GOARCH,
	}
}

// Fail prints "tool: message", then the flag usage, and exits 2 (the
// conventional bad-invocation status).
func Fail(tool, format string, args ...any) {
	fmt.Fprintf(os.Stderr, "%s: %s\n", tool, fmt.Sprintf(format, args...))
	flag.Usage()
	os.Exit(2)
}

// RequirePositive rejects values < 1 for the named flag.
func RequirePositive(tool, name string, v int64) {
	if v <= 0 {
		Fail(tool, "-%s must be positive, got %d", name, v)
	}
}

// RequireNonNegative rejects values < 0 for the named flag.
func RequireNonNegative(tool, name string, v int64) {
	if v < 0 {
		Fail(tool, "-%s must be non-negative, got %d", name, v)
	}
}

// RequirePositiveFloat rejects values <= 0 for the named flag.
func RequirePositiveFloat(tool, name string, v float64) {
	if !(v > 0) {
		Fail(tool, "-%s must be positive, got %v", name, v)
	}
}

// RequireProb rejects values outside [0, 1] for the named flag.
func RequireProb(tool, name string, v float64) {
	if !(v >= 0 && v <= 1) {
		Fail(tool, "-%s must be in [0,1], got %v", name, v)
	}
}

// Workers validates and resolves a -workers flag: 0 means one worker per
// CPU, negative values are rejected.
func Workers(tool string, v int) int {
	if v < 0 {
		Fail(tool, "-workers must be >= 0 (0 = one per CPU), got %d", v)
	}
	return parallel.Workers(v)
}

// ProfileFlags registers the standard -cpuprofile/-memprofile flags; call
// before flag.Parse. Kernel regressions in the hot simulation loops are
// then diagnosable with `go tool pprof` against any of the sweep binaries.
func ProfileFlags() (cpuprofile, memprofile *string) {
	cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile = flag.String("memprofile", "", "write a heap profile to this file on exit")
	return cpuprofile, memprofile
}

// ContentionProfileFlags registers the -mutexprofile/-blockprofile flags;
// call before flag.Parse. These make lock contention directly observable:
// the mutex profile attributes delay to the mutexes that caused it, the
// block profile to the blocked call sites (channel waits included), so a
// striping or partitioning change can be judged by where the contention
// went rather than by throughput alone.
func ContentionProfileFlags() (mutexprofile, blockprofile *string) {
	mutexprofile = flag.String("mutexprofile", "", "write a mutex-contention profile to this file on exit")
	blockprofile = flag.String("blockprofile", "", "write a blocking profile to this file on exit")
	return mutexprofile, blockprofile
}

// StartContentionProfiles enables mutex/block sampling for the paths that
// are non-empty and returns a stop function that writes the profiles and
// disables sampling. Sampling is full-rate (fraction/rate 1): contention
// runs are short and dedicated, so completeness beats overhead. Call the
// stop function on the tool's normal exit path; empty paths are no-ops.
func StartContentionProfiles(tool, mutexPath, blockPath string) (stop func()) {
	if mutexPath != "" {
		runtime.SetMutexProfileFraction(1)
	}
	if blockPath != "" {
		runtime.SetBlockProfileRate(1)
	}
	write := func(name, path string) {
		p := pprof.Lookup(name)
		if p == nil {
			Fail(tool, "-%sprofile: profile %q not registered", name, name)
		}
		f, err := os.Create(path)
		if err != nil {
			Fail(tool, "-%sprofile: %v", name, err)
		}
		if err := p.WriteTo(f, 0); err != nil {
			Fail(tool, "-%sprofile: %v", name, err)
		}
		if err := f.Close(); err != nil {
			Fail(tool, "-%sprofile: %v", name, err)
		}
	}
	return func() {
		if mutexPath != "" {
			write("mutex", mutexPath)
			runtime.SetMutexProfileFraction(0)
		}
		if blockPath != "" {
			write("block", blockPath)
			runtime.SetBlockProfileRate(0)
		}
	}
}

// StartProfiles begins CPU profiling when cpuPath is non-empty and returns
// a stop function that finishes the CPU profile and, when memPath is
// non-empty, writes a GC-settled heap profile. Call the stop function on
// the tool's normal exit path (deferred stops are lost on os.Exit, which
// is fine: a failed run's profile is not the one being measured). Empty
// paths make both halves no-ops.
func StartProfiles(tool, cpuPath, memPath string) (stop func()) {
	var cpuFile *os.File
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			Fail(tool, "-cpuprofile: %v", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			Fail(tool, "-cpuprofile: %v", err)
		}
		cpuFile = f
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				Fail(tool, "-cpuprofile: %v", err)
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				Fail(tool, "-memprofile: %v", err)
			}
			runtime.GC() // settle allocations so the heap profile is live data
			if err := pprof.WriteHeapProfile(f); err != nil {
				Fail(tool, "-memprofile: %v", err)
			}
			if err := f.Close(); err != nil {
				Fail(tool, "-memprofile: %v", err)
			}
		}
	}
}
