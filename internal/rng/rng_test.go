package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed must produce the same stream")
		}
	}
	c := New(43)
	same := 0
	a = New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("different seeds collided %d/1000 times", same)
	}
}

func TestZeroSeedUsable(t *testing.T) {
	r := New(0)
	var zeros int
	for i := 0; i < 100; i++ {
		if r.Uint64() == 0 {
			zeros++
		}
	}
	if zeros > 1 {
		t.Errorf("seed 0 produced %d zero outputs; state not mixed", zeros)
	}
}

func TestInt63nRange(t *testing.T) {
	f := func(seed uint64, bound int64) bool {
		n := bound%1000 + 1
		if n <= 0 {
			n = 1
		}
		r := New(seed)
		for i := 0; i < 100; i++ {
			v := r.Int63n(n)
			if v < 0 || v >= n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestInt63nUniformity(t *testing.T) {
	r := New(123)
	const n, draws = 10, 100000
	counts := make([]int64, n)
	for i := 0; i < draws; i++ {
		counts[r.Int63n(n)]++
	}
	want := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want)/want > 0.05 {
			t.Errorf("bucket %d count %d deviates >5%% from %v", i, c, want)
		}
	}
}

func TestIntRangeInclusive(t *testing.T) {
	r := New(7)
	sawLo, sawHi := false, false
	for i := 0; i < 10000; i++ {
		v := r.IntRange(5, 8)
		if v < 5 || v > 8 {
			t.Fatalf("IntRange(5,8) = %d out of range", v)
		}
		sawLo = sawLo || v == 5
		sawHi = sawHi || v == 8
	}
	if !sawLo || !sawHi {
		t.Error("IntRange should include both endpoints")
	}
	if got := r.IntRange(3, 3); got != 3 {
		t.Errorf("degenerate range = %d, want 3", got)
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(99)
	var sum float64
	const n = 100000
	for i := 0; i < n; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", v)
		}
		sum += v
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.01 {
		t.Errorf("Float64 mean = %v, want ~0.5", mean)
	}
}

func TestBernoulli(t *testing.T) {
	r := New(11)
	const n = 100000
	var hits int
	for i := 0; i < n; i++ {
		if r.Bernoulli(0.15) {
			hits++
		}
	}
	p := float64(hits) / n
	if math.Abs(p-0.15) > 0.01 {
		t.Errorf("Bernoulli(0.15) frequency = %v", p)
	}
	if r.Bernoulli(0) {
		t.Error("Bernoulli(0) must be false")
	}
}

func TestPermIsPermutation(t *testing.T) {
	f := func(seed uint64) bool {
		r := New(seed)
		out := make([]int64, 64)
		r.Perm(out)
		seen := make([]bool, len(out))
		for _, v := range out {
			if v < 0 || v >= int64(len(out)) || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSplitIndependence(t *testing.T) {
	r := New(5)
	a := r.Split()
	b := r.Split()
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("split streams collided %d/1000 times", same)
	}
}

func TestPanics(t *testing.T) {
	r := New(1)
	for name, fn := range map[string]func(){
		"Int63n(0)":     func() { r.Int63n(0) },
		"Int63n(-1)":    func() { r.Int63n(-1) },
		"IntRange(5,4)": func() { r.IntRange(5, 4) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}
