// Package rng provides a small, fast, deterministic pseudo-random number
// generator used by every stochastic component of the model. Determinism
// across platforms and Go releases matters here: the paper's experiments are
// regenerated bit-for-bit from a seed, so we implement xoshiro256** with a
// SplitMix64 seeder rather than depending on math/rand internals.
package rng

// RNG is a xoshiro256** generator. The zero value is not usable; construct
// with New.
type RNG struct {
	s [4]uint64
}

// splitMixGamma is the SplitMix64 increment (the odd fractional part of the
// golden ratio), shared by the seeder and the substream derivation.
const splitMixGamma = 0x9e3779b97f4a7c15

// SplitMix64 advances *state by the golden-ratio gamma and returns the next
// output of the SplitMix64 sequence. The output function is a bijection of
// the state, so distinct states never collide.
func SplitMix64(state *uint64) uint64 {
	*state += splitMixGamma
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a generator seeded from a single 64-bit seed via SplitMix64,
// which guarantees a well-mixed non-zero state for any seed value.
func New(seed uint64) *RNG {
	r := &RNG{}
	sm := seed
	for i := range r.s {
		r.s[i] = SplitMix64(&sm)
	}
	return r
}

// Substream deterministically derives the seed of the idx-th independent
// substream of a root seed. The derivation feeds the root through one
// SplitMix64 step, offsets the resulting state by (idx+1) gammas, and takes
// the next output: for a fixed root the map idx -> seed is injective (the
// SplitMix64 output function is a bijection and the gamma is odd), so
// substreams never alias — including under a zero root seed. Parallel sweep
// tasks must seed their private generators this way rather than sharing one
// *RNG across goroutines or hand-deriving seeds with arithmetic like
// root+idx.
func Substream(root, idx uint64) uint64 {
	state := root
	base := SplitMix64(&state)
	state = base + idx*splitMixGamma
	return SplitMix64(&state)
}

// NewStream returns a generator for substream idx of the given root seed:
// shorthand for New(Substream(root, idx)).
func NewStream(root, idx uint64) *RNG { return New(Substream(root, idx)) }

func rotl(x uint64, k uint) uint64 { return x<<k | x>>(64-k) }

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	s := &r.s
	result := rotl(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = rotl(s[3], 45)
	return result
}

// Int63n returns a uniformly distributed integer in [0, n). n must be
// positive. Rejection sampling removes modulo bias.
func (r *RNG) Int63n(n int64) int64 {
	if n <= 0 {
		panic("rng: Int63n bound must be positive")
	}
	un := uint64(n)
	// Fast path for powers of two.
	if un&(un-1) == 0 {
		return int64(r.Uint64() & (un - 1))
	}
	limit := -un % un // (2^64 - n) % n, per Lemire
	for {
		v := r.Uint64()
		if v >= limit {
			return int64(v % un)
		}
	}
}

// IntRange returns a uniformly distributed integer in the closed interval
// [lo, hi]. This matches the paper's rand(x, y) notation.
func (r *RNG) IntRange(lo, hi int64) int64 {
	if hi < lo {
		panic("rng: IntRange requires lo <= hi")
	}
	return lo + r.Int63n(hi-lo+1)
}

// Float64 returns a uniformly distributed float in [0, 1) with 53 bits of
// precision.
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bernoulli returns true with probability p.
func (r *RNG) Bernoulli(p float64) bool { return r.Float64() < p }

// Perm fills out with a uniformly random permutation of [0, len(out)) using
// the Fisher-Yates shuffle.
func (r *RNG) Perm(out []int64) {
	for i := range out {
		out[i] = int64(i)
	}
	for i := len(out) - 1; i > 0; i-- {
		j := r.Int63n(int64(i + 1))
		out[i], out[j] = out[j], out[i]
	}
}

// Split returns a new generator deterministically derived from this one,
// for handing independent streams to sub-components without sharing state.
func (r *RNG) Split() *RNG { return New(r.Uint64()) }
