package rng

import (
	"math"
	"testing"
)

// TestSubstreamDistinctSeeds verifies the injectivity claim: for a fixed
// root — including the all-zeros root — distinct indices must yield distinct
// substream seeds.
func TestSubstreamDistinctSeeds(t *testing.T) {
	for _, root := range []uint64{0, 1, 1993, math.MaxUint64} {
		seen := make(map[uint64]uint64, 4096)
		for idx := uint64(0); idx < 4096; idx++ {
			s := Substream(root, idx)
			if prev, dup := seen[s]; dup {
				t.Fatalf("root %d: substreams %d and %d share seed %#x", root, prev, idx, s)
			}
			seen[s] = idx
		}
	}
}

// TestSubstreamZeroRootUsable guards the degenerate seed: root 0 must still
// produce well-mixed, pairwise-distinct streams (a naive root+idx scheme
// would make stream 0 the all-zero-seeded generator).
func TestSubstreamZeroRootUsable(t *testing.T) {
	a, b := NewStream(0, 0), NewStream(0, 1)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("zero-root substreams 0 and 1 collided %d/1000 times", same)
	}
}

// TestSubstreamNoOverlap checks that one substream's output sequence does
// not appear inside a sibling's: with 64-bit outputs, any shared value
// across modest prefixes would indicate the streams entered the same
// xoshiro orbit position.
func TestSubstreamNoOverlap(t *testing.T) {
	const streams, draws = 16, 512
	seen := make(map[uint64]int, streams*draws)
	for s := 0; s < streams; s++ {
		r := NewStream(1993, uint64(s))
		for i := 0; i < draws; i++ {
			v := r.Uint64()
			if prev, dup := seen[v]; dup && prev != s {
				t.Fatalf("streams %d and %d emitted the same value %#x", prev, s, v)
			}
			seen[v] = s
		}
	}
}

// TestSubstreamPairwiseXORUniform is the independence test the sweep runner
// relies on: XORing two sibling substreams should look uniform. A chi-squared
// test over the 256 byte values of the XOR stream must not reject uniformity;
// correlated streams (e.g. seeds root+idx fed to a weak seeder) concentrate
// mass on few byte values and blow the statistic up.
func TestSubstreamPairwiseXORUniform(t *testing.T) {
	pairs := [][2]uint64{{0, 1}, {0, 2}, {1, 2}, {7, 1000}}
	const draws = 4096 // 8 bytes each -> 32768 byte samples per pair
	for _, pr := range pairs {
		a, b := NewStream(1993, pr[0]), NewStream(1993, pr[1])
		var counts [256]int64
		for i := 0; i < draws; i++ {
			x := a.Uint64() ^ b.Uint64()
			for s := 0; s < 64; s += 8 {
				counts[byte(x>>s)]++
			}
		}
		n := float64(draws * 8)
		expected := n / 256
		var chi2 float64
		for _, c := range counts {
			d := float64(c) - expected
			chi2 += d * d / expected
		}
		// 255 degrees of freedom: mean 255, stddev ~22.6. 350 is ~4.2 sigma;
		// a deterministic test either always passes or flags real structure.
		if chi2 > 350 {
			t.Errorf("substreams %d^%d: chi-squared %.1f (255 dof), XOR stream is not uniform",
				pr[0], pr[1], chi2)
		}
	}
}

// TestSubstreamMatchesNewStream pins the convenience constructor to the
// derivation it documents.
func TestSubstreamMatchesNewStream(t *testing.T) {
	a := NewStream(42, 7)
	b := New(Substream(42, 7))
	for i := 0; i < 16; i++ {
		if av, bv := a.Uint64(), b.Uint64(); av != bv {
			t.Fatalf("draw %d: NewStream %#x != New(Substream) %#x", i, av, bv)
		}
	}
}

// TestSplitMix64KnownValues pins the SplitMix64 sequence to the reference
// values from Steele et al.'s public-domain implementation seeded with 0.
func TestSplitMix64KnownValues(t *testing.T) {
	state := uint64(0)
	want := []uint64{
		0xe220a8397b1dcdaf,
		0x6e789e6aa1b965f4,
		0x06c45d188009454f,
	}
	for i, w := range want {
		if got := SplitMix64(&state); got != w {
			t.Fatalf("SplitMix64 output %d = %#x, want %#x", i, got, w)
		}
	}
}
