package experiments

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"tpccmodel/internal/model"
)

// regenGolden rewrites the checked-in golden TSVs from a serial dense-
// kernel render: `go test ./internal/experiments/ -run Corpus -regen-golden`
// (or `make regen-golden`). Regenerate ONLY when an intentional behaviour
// change alters the canonical sweep output, and say why in the commit.
var regenGolden = flag.Bool("regen-golden", false, "rewrite testdata/golden TSVs")

// goldenSeries lists the canonical sweep outputs pinned under
// testdata/golden/, in render order.
var goldenSeries = []string{
	"fig8", "fig9", "fig10", "policy-ablation",
	"response-validation", "page-size", "mix-sensitivity",
}

func goldenPath(name string) string {
	return filepath.Join("testdata", "golden", name+".tsv")
}

// renderAll runs the worker-count-sensitive experiments at the given worker
// count and renders each resulting series to its own TSV byte stream. With
// noPremap the curve simulations run on the seed kernel instead of the
// dense pre-mapped kernel.
func renderAll(t testing.TB, workers int, noPremap bool) map[string][]byte {
	t.Helper()
	opts := tinyOptions()
	opts.Workers = workers
	opts.noPremap = noPremap
	st := NewStudy(opts)
	sys := model.DefaultSystemParams()
	cost := model.DefaultCostModel()

	out := make(map[string][]byte, len(goldenSeries))
	emit := func(name string, s Series, err error) {
		if err != nil {
			t.Fatalf("workers=%d %s: %v", workers, name, err)
		}
		var buf bytes.Buffer
		if err := s.WriteTSV(&buf); err != nil {
			t.Fatal(err)
		}
		out[name] = buf.Bytes()
	}

	fig8, err := Fig8(st)
	emit("fig8", fig8, err)
	fig9, err := Fig9(st, sys)
	emit("fig9", fig9, err)
	fig10, err := Fig10(st, sys, cost)
	emit("fig10", fig10, err)
	abl, err := PolicyAblation(opts, 8, []string{"lru", "clock", "fifo"})
	emit("policy-ablation", abl, err)
	resp, err := ResponseValidation(st, sys, len(opts.BufferMB)/2, 4, []float64{0.3, 0.7})
	emit("response-validation", resp, err)
	pageOpts := opts
	pageOpts.BufferMB = []float64{4, 16}
	ps, err := PageSizeStudy(pageOpts)
	emit("page-size", ps, err)
	mix, err := MixSensitivity(opts, 8)
	emit("mix-sensitivity", mix, err)
	return out
}

// compareToGolden checks every rendered series byte for byte against its
// checked-in golden file.
func compareToGolden(t *testing.T, label string, got map[string][]byte) {
	t.Helper()
	for _, name := range goldenSeries {
		want, err := os.ReadFile(goldenPath(name))
		if err != nil {
			t.Fatalf("%s: reading golden (run `make regen-golden` after an intentional change): %v",
				name, err)
		}
		if !bytes.Equal(got[name], want) {
			t.Errorf("%s: %s output differs from golden %s (%d vs %d bytes)",
				label, name, goldenPath(name), len(got[name]), len(want))
		}
	}
}

// TestGoldenCorpus pins the canonical tiny-scale sweep TSVs: a serial
// dense-kernel render must reproduce the checked-in files byte for byte on
// any machine (the determinism contract includes the platform). With
// -regen-golden it rewrites the corpus instead.
func TestGoldenCorpus(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full tiny-scale sweeps")
	}
	got := renderAll(t, 1, false)
	if *regenGolden {
		if err := os.MkdirAll(filepath.Join("testdata", "golden"), 0o755); err != nil {
			t.Fatal(err)
		}
		for _, name := range goldenSeries {
			if err := os.WriteFile(goldenPath(name), got[name], 0o644); err != nil {
				t.Fatal(err)
			}
			fmt.Printf("wrote %s (%d bytes)\n", goldenPath(name), len(got[name]))
		}
		return
	}
	compareToGolden(t, "serial", got)
}

// TestGoldenDeterminismAcrossWorkerCounts is the serial-equivalence
// contract: every sweep experiment must emit TSVs byte-identical to the
// golden corpus regardless of the worker count, because results are
// collected by task index and each task derives its randomness from the
// root seed.
func TestGoldenDeterminismAcrossWorkerCounts(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full tiny-scale sweeps")
	}
	for _, workers := range []int{2, 8} {
		compareToGolden(t, fmt.Sprintf("workers=%d", workers), renderAll(t, workers, false))
	}
}

// TestGoldenPremappedVsSeedKernel is the kernel-equivalence contract: the
// seed kernel (per-access mapping, map-based stack simulator) must emit
// the same golden bytes as the dense pre-mapped kernel (production). The
// dense kernel is an optimization, never a behaviour change.
func TestGoldenPremappedVsSeedKernel(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full tiny-scale sweeps")
	}
	compareToGolden(t, "seed-kernel", renderAll(t, 1, true))
}

// BenchmarkSweep times the replacement-policy ablation grid serially and at
// one worker per CPU; bench output documents the parallel speedup on the
// machine at hand. The shared trace is recorded once up front so the numbers
// measure sweep time, not trace recording.
func BenchmarkSweep(b *testing.B) {
	run := func(b *testing.B, workers int) {
		opts := tinyOptions()
		opts.Workers = workers
		if _, err := PolicyAblation(opts, 8, []string{"lru", "clock", "fifo"}); err != nil {
			b.Fatal(err) // warm the shared trace outside the timed loop
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := PolicyAblation(opts, 8, []string{"lru", "clock", "fifo"}); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("workers=1", func(b *testing.B) { run(b, 1) })
	b.Run("workers=numcpu", func(b *testing.B) { run(b, 0) })
}
