package experiments

import (
	"bytes"
	"fmt"
	"testing"

	"tpccmodel/internal/model"
)

// renderAll runs the worker-count-sensitive experiments at the given worker
// count and renders every resulting series to one TSV byte stream. With
// noPremap the curve simulations run on the seed kernel instead of the
// dense pre-mapped kernel.
func renderAll(t testing.TB, workers int, noPremap bool) []byte {
	t.Helper()
	opts := tinyOptions()
	opts.Workers = workers
	opts.noPremap = noPremap
	st := NewStudy(opts)
	sys := model.DefaultSystemParams()
	cost := model.DefaultCostModel()

	var buf bytes.Buffer
	emit := func(name string, s Series, err error) {
		if err != nil {
			t.Fatalf("workers=%d %s: %v", workers, name, err)
		}
		fmt.Fprintf(&buf, "== %s ==\n", name)
		if err := s.WriteTSV(&buf); err != nil {
			t.Fatal(err)
		}
	}

	fig8, err := Fig8(st)
	emit("fig8", fig8, err)
	fig9, err := Fig9(st, sys)
	emit("fig9", fig9, err)
	fig10, err := Fig10(st, sys, cost)
	emit("fig10", fig10, err)
	abl, err := PolicyAblation(opts, 8, []string{"lru", "clock", "fifo"})
	emit("policy-ablation", abl, err)
	resp, err := ResponseValidation(st, sys, len(opts.BufferMB)/2, 4, []float64{0.3, 0.7})
	emit("response-validation", resp, err)
	pageOpts := opts
	pageOpts.BufferMB = []float64{4, 16}
	ps, err := PageSizeStudy(pageOpts)
	emit("page-size", ps, err)
	mix, err := MixSensitivity(opts, 8)
	emit("mix-sensitivity", mix, err)
	return buf.Bytes()
}

// TestGoldenDeterminismAcrossWorkerCounts is the serial-equivalence
// contract: every sweep experiment must emit byte-identical TSVs whether it
// runs serially or fanned out over a pool, because results are collected by
// task index and each task derives its randomness from the root seed.
func TestGoldenDeterminismAcrossWorkerCounts(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full tiny-scale sweeps")
	}
	golden := renderAll(t, 1, false)
	for _, workers := range []int{2, 8} {
		got := renderAll(t, workers, false)
		if !bytes.Equal(got, golden) {
			t.Errorf("workers=%d output differs from serial run (%d vs %d bytes)",
				workers, len(got), len(golden))
		}
	}
}

// TestGoldenPremappedVsSeedKernel is the kernel-equivalence contract: every
// sweep experiment must emit byte-identical TSVs whether its curve cells
// run the dense pre-mapped kernel (production) or the seed kernel (per-
// access mapping, map-based stack simulator). The dense kernel is an
// optimization, never a behaviour change.
func TestGoldenPremappedVsSeedKernel(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full tiny-scale sweeps")
	}
	premapped := renderAll(t, 1, false)
	seed := renderAll(t, 1, true)
	if !bytes.Equal(premapped, seed) {
		t.Errorf("pre-mapped kernel output differs from seed kernel (%d vs %d bytes)",
			len(premapped), len(seed))
	}
}

// BenchmarkSweep times the replacement-policy ablation grid serially and at
// one worker per CPU; bench output documents the parallel speedup on the
// machine at hand. The shared trace is recorded once up front so the numbers
// measure sweep time, not trace recording.
func BenchmarkSweep(b *testing.B) {
	run := func(b *testing.B, workers int) {
		opts := tinyOptions()
		opts.Workers = workers
		if _, err := PolicyAblation(opts, 8, []string{"lru", "clock", "fifo"}); err != nil {
			b.Fatal(err) // warm the shared trace outside the timed loop
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := PolicyAblation(opts, 8, []string{"lru", "clock", "fifo"}); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("workers=1", func(b *testing.B) { run(b, 1) })
	b.Run("workers=numcpu", func(b *testing.B) { run(b, 0) })
}
