package experiments

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"tpccmodel/internal/core"
	"tpccmodel/internal/model"
	"tpccmodel/internal/sim"
)

// tinyOptions runs fast enough for unit tests while keeping curve shape.
func tinyOptions() Options {
	return Options{
		Warehouses: 1,
		Seed:       7,
		WarmupTxns: 2_000,
		Batches:    3,
		BatchTxns:  3_000,
		Level:      0.90,
		BufferMB:   []float64{2, 8, 16, 32, 48},
		PageSize:   4096,
	}
}

func TestSeriesWriteTSV(t *testing.T) {
	s := Series{Name: "x", Comment: "c", Cols: []string{"a", "b"}}
	s.Add(1, 2.5)
	var buf bytes.Buffer
	if err := s.WriteTSV(&buf); err != nil {
		t.Fatal(err)
	}
	got := buf.String()
	if !strings.Contains(got, "# c\n") || !strings.Contains(got, "a\tb\n") ||
		!strings.Contains(got, "1\t2.5\n") {
		t.Errorf("TSV output:\n%s", got)
	}
}

func TestTable1MatchesPaper(t *testing.T) {
	s := Table1(20, 4096)
	if len(s.Rows) != int(core.NumRelations) {
		t.Fatalf("rows = %d", len(s.Rows))
	}
	// Stock row: cardinality 2M, 306B, 13/page.
	row := s.Rows[core.Stock]
	if row[1] != 2_000_000 || row[2] != 306 || row[3] != 13 {
		t.Errorf("stock row = %v", row)
	}
}

func TestFig3And4PMFs(t *testing.T) {
	s3 := Fig3(1000)
	if len(s3.Rows) != 100 {
		t.Errorf("fig3 with stride 1000: %d rows", len(s3.Rows))
	}
	var sum float64
	full := Fig3(1)
	for _, row := range full.Rows {
		sum += row[1]
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("fig3 PMF sums to %v", sum)
	}
	s4 := Fig4(1)
	if len(s4.Rows) != 10000 {
		t.Errorf("fig4 rows = %d", len(s4.Rows))
	}
}

func TestFig5ShapeMatchesPaper(t *testing.T) {
	s := Fig5(100)
	// Column order: data_fraction, tuple, seq4K, seq8K, opt4K.
	// At 80% of the data, the paper's values: tuple ~16% of accesses
	// (coldest 80%), 4K ~25%, 8K a bit more, optimized ~tuple.
	var at80 []float64
	for _, row := range s.Rows {
		if math.Abs(row[0]-0.8) < 1e-9 {
			at80 = row
		}
	}
	if at80 == nil {
		t.Fatal("no 0.8 row")
	}
	tuple, seq4, seq8, opt := at80[1], at80[2], at80[3], at80[4]
	if math.Abs(tuple-0.16) > 0.03 {
		t.Errorf("tuple CDF at 0.8 = %.3f, paper says ~0.16", tuple)
	}
	if math.Abs(seq4-0.25) > 0.04 {
		t.Errorf("4K CDF at 0.8 = %.3f, paper says ~0.25", seq4)
	}
	if !(seq8 > seq4) {
		t.Errorf("8K pages should dilute skew more: %.3f vs %.3f", seq8, seq4)
	}
	if math.Abs(opt-tuple) > 0.02 {
		t.Errorf("optimized packing (%.3f) should track tuple level (%.3f)", opt, tuple)
	}
}

func TestSkewHeadlines(t *testing.T) {
	s := SkewHeadlines()
	// Row 0: hottest 20%: tuple ~0.84, 4K ~0.75.
	if math.Abs(s.Rows[0][1]-0.84) > 0.03 {
		t.Errorf("tuple 20%% share = %.3f", s.Rows[0][1])
	}
	if math.Abs(s.Rows[0][2]-0.75) > 0.04 {
		t.Errorf("4K 20%% share = %.3f", s.Rows[0][2])
	}
	// Row 2: hottest 2%: tuple ~0.39, 4K ~0.28.
	if math.Abs(s.Rows[2][1]-0.39) > 0.04 {
		t.Errorf("tuple 2%% share = %.3f", s.Rows[2][1])
	}
	if math.Abs(s.Rows[2][2]-0.28) > 0.04 {
		t.Errorf("4K 2%% share = %.3f", s.Rows[2][2])
	}
}

func TestFig8Fig9Fig10Pipeline(t *testing.T) {
	st := NewStudy(tinyOptions())
	fig8, err := Fig8(st)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig8.Rows) != len(st.Opts.BufferMB) {
		t.Fatalf("fig8 rows = %d", len(fig8.Rows))
	}
	// Monotone non-increasing miss rates per column.
	for col := 1; col < len(fig8.Cols); col++ {
		prev := 1.1
		for _, row := range fig8.Rows {
			if row[col] > prev+1e-9 {
				t.Errorf("fig8 col %s not monotone", fig8.Cols[col])
				break
			}
			prev = row[col]
		}
	}
	// Optimized <= sequential for stock at every size (allowing batch noise).
	for _, row := range fig8.Rows {
		if row[4] > row[3]+0.02 {
			t.Errorf("optimized stock miss %.4f above sequential %.4f at %vMB",
				row[4], row[3], row[0])
		}
	}

	sys := model.DefaultSystemParams()
	fig9, err := Fig9(st, sys)
	if err != nil {
		t.Fatal(err)
	}
	// Throughput rises (weakly) with buffer size and optimized >= sequential.
	prev := 0.0
	for _, row := range fig9.Rows {
		if row[1] < prev-1e-6 {
			t.Error("fig9 sequential tpm decreased with more memory")
			break
		}
		prev = row[1]
	}
	last := fig9.Rows[len(fig9.Rows)-1]
	if last[2] < last[1]-1e-6 {
		t.Errorf("optimized tpm %.2f below sequential %.2f", last[2], last[1])
	}

	fig10, err := Fig10(st, sys, model.DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	minima := Fig10Minima(fig10)
	if len(minima.Rows) != 4 {
		t.Fatalf("minima rows = %d", len(minima.Rows))
	}
	for _, row := range minima.Rows {
		if row[2] <= 0 {
			t.Errorf("non-positive optimal $/tpm: %v", row)
		}
	}
	// The growth-storage curves cost at least as much as no-growth at
	// the optimum (more disks for the same throughput).
	if minima.Rows[2][2] < minima.Rows[0][2]-1e-9 {
		t.Error("growth storage should not be cheaper than no-growth")
	}
}

func TestTable3Measured(t *testing.T) {
	s, err := Table3(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	// New-Order column (distinct tuples): warehouse U(1), district U(1)
	// — the select+update pair touches one tuple — customer NU(1),
	// stock NU(10), item NU(10), matching the paper's Table 3 row.
	no := func(rel core.Relation) float64 { return s.Rows[rel][1] }
	if no(core.Warehouse) != 1 || no(core.District) != 1 || no(core.Customer) != 1 {
		t.Errorf("new-order tuples: wh %v dist %v cust %v",
			no(core.Warehouse), no(core.District), no(core.Customer))
	}
	// Ten NU item draws occasionally collide, so distinct items per
	// order sit just under 10.
	if math.Abs(no(core.Item)-10) > 0.05 || math.Abs(no(core.Stock)-10) > 0.05 {
		t.Errorf("new-order item/stock tuples = %v/%v, want ~10",
			no(core.Item), no(core.Stock))
	}
	// Paper's stock average: 0.43*10 + 0.04*~200 ≈ 12.3 (printed 12.4).
	if avg := s.Rows[core.Stock][6]; math.Abs(avg-12.3) > 0.6 {
		t.Errorf("stock average tuples = %v, paper says ~12.4", avg)
	}
	// Item average: 0.43*10 = 4.3 (printed 4.4).
	if avg := s.Rows[core.Item][6]; math.Abs(avg-4.3) > 0.3 {
		t.Errorf("item average tuples = %v, paper says ~4.4", avg)
	}
}

func TestFig11Fig12(t *testing.T) {
	st := NewStudy(tinyOptions())
	sys := model.DefaultSystemParams()
	nodes := []int{1, 2, 10, 30}
	fig11, err := Fig11(st, sys, 32, nodes)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range fig11.Rows {
		if !(row[3] <= row[2] && row[2] <= row[1]+1e-9) {
			t.Errorf("fig11 ordering violated at %v nodes: %v", row[0], row)
		}
	}
	// Replicated within ~5% of ideal (paper: ~3%).
	last := fig11.Rows[len(fig11.Rows)-1]
	if eff := last[2] / last[1]; eff < 0.93 {
		t.Errorf("replicated efficiency at 30 nodes = %.3f", eff)
	}

	fig12, err := Fig12(st, sys, 32, nodes, []float64{0.01, 0.5, 1.0})
	if err != nil {
		t.Fatal(err)
	}
	lastRow := fig12.Rows[len(fig12.Rows)-1]
	if !(lastRow[3] < lastRow[2] && lastRow[2] < lastRow[1]) {
		t.Errorf("fig12 should fall with remote probability: %v", lastRow)
	}
	drop := 1 - lastRow[3]/lastRow[1]
	if drop < 0.2 || drop > 0.6 {
		t.Errorf("fig12 drop at p=1.0 = %.2f, paper says ~0.44", drop)
	}
}

func TestTable4AndTables67(t *testing.T) {
	st := NewStudy(tinyOptions())
	sys := model.DefaultSystemParams()
	t4, err := Table4(st, sys, 16)
	if err != nil {
		t.Fatal(err)
	}
	if len(t4.Rows) != 5 {
		t.Fatalf("table4 rows = %d", len(t4.Rows))
	}
	// New-Order row: 23 selects, 11 updates, 12 inserts.
	no := t4.Rows[core.TxnNewOrder]
	if no[1] != 23 || no[2] != 11 || no[3] != 12 {
		t.Errorf("table4 new-order = %v", no)
	}

	t67 := Tables6and7([]int{2, 10, 30})
	if len(t67.Rows) != 3 {
		t.Fatalf("tables6-7 rows = %d", len(t67.Rows))
	}
	// Partitioned send/receive always exceeds replicated.
	for _, row := range t67.Rows {
		if row[9] <= row[8] {
			t.Errorf("partitioned send/receive should exceed replicated: %v", row)
		}
	}
}

func TestPolicyAblation(t *testing.T) {
	opts := tinyOptions()
	opts.Batches, opts.BatchTxns = 2, 1500
	s, err := PolicyAblation(opts, 16, []string{"lru", "clock"})
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Rows) != 2 {
		t.Fatalf("rows = %d", len(s.Rows))
	}
	for _, row := range s.Rows {
		if row[1] <= 0 || row[1] >= 1 || row[2] <= 0 || row[2] >= 1 {
			t.Errorf("implausible miss rates: %v", row)
		}
	}
	if _, err := PolicyAblation(opts, 16, []string{"bogus"}); err == nil {
		t.Error("unknown policy should fail")
	}
}

func TestStudyCachesCurves(t *testing.T) {
	st := NewStudy(tinyOptions())
	a, err := st.Curve(sim.PackSequential)
	if err != nil {
		t.Fatal(err)
	}
	b, err := st.Curve(sim.PackSequential)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("study should cache curve results")
	}
}
