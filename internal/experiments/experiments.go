// Package experiments regenerates every table and figure of the paper's
// evaluation. Each experiment returns a Series — named columns plus rows —
// that the cmd tools print and EXPERIMENTS.md records; bench_test.go runs
// the same code at reduced scale.
//
// The per-experiment index lives in DESIGN.md; the functions here are
// named after the paper's figures and tables.
package experiments

import (
	"fmt"
	"io"
	"sync"

	"tpccmodel/internal/core"
	"tpccmodel/internal/model"
	"tpccmodel/internal/nurand"
	"tpccmodel/internal/packing"
	"tpccmodel/internal/parallel"
	"tpccmodel/internal/sim"
	"tpccmodel/internal/stats"
	"tpccmodel/internal/tpcc"
	"tpccmodel/internal/workload"
)

// Series is one experiment's output: a table of float rows with named
// columns, printable as TSV.
type Series struct {
	Name    string
	Comment string
	Cols    []string
	Rows    [][]float64
}

// Add appends one row.
func (s *Series) Add(vals ...float64) { s.Rows = append(s.Rows, vals) }

// WriteTSV prints the series with a header.
func (s Series) WriteTSV(w io.Writer) error {
	if s.Comment != "" {
		if _, err := fmt.Fprintf(w, "# %s\n", s.Comment); err != nil {
			return err
		}
	}
	for i, c := range s.Cols {
		sep := "\t"
		if i == len(s.Cols)-1 {
			sep = "\n"
		}
		if _, err := fmt.Fprintf(w, "%s%s", c, sep); err != nil {
			return err
		}
	}
	for _, row := range s.Rows {
		for i, v := range row {
			sep := "\t"
			if i == len(row)-1 {
				sep = "\n"
			}
			if _, err := fmt.Fprintf(w, "%.6g%s", v, sep); err != nil {
				return err
			}
		}
	}
	return nil
}

// Options scale the simulation-backed experiments.
type Options struct {
	// Warehouses is the per-node scale (paper: 20).
	Warehouses int
	// Seed drives all randomness.
	Seed uint64
	// WarmupTxns, Batches, BatchTxns configure the buffer simulation
	// (paper: 30 batches of 100,000).
	WarmupTxns int64
	Batches    int
	BatchTxns  int64
	// Level is the confidence level (paper: 0.90).
	Level float64
	// BufferMB are the buffer sizes evaluated (Figures 8-10 sweep).
	BufferMB []float64
	// PageSize in bytes (paper: 4096).
	PageSize int
	// Workers bounds the goroutines used by the sweep experiments;
	// 0 or negative means one per CPU. The worker count never affects
	// emitted results — every task derives its randomness from the root
	// seed and results are collected by task index.
	Workers int
	// noPremap forces the curve simulations onto the seed kernel (per-
	// access tuple-to-page mapping, map-based stack simulator) instead of
	// the dense pre-mapped kernel. Test-only: the golden determinism test
	// uses it to pin the two kernels' outputs byte-identical.
	noPremap bool
}

// FullScale returns the paper's configuration: 20 warehouses, 30 batches
// of 100K transactions, 64 buffer sizes from 4MB to 256MB. A full run
// takes tens of seconds per packing strategy on a laptop.
func FullScale() Options {
	return Options{
		Warehouses: 20,
		Seed:       1993,
		WarmupTxns: 200_000,
		Batches:    30,
		BatchTxns:  100_000,
		Level:      0.90,
		BufferMB:   bufferGrid(64, 4, 256),
		PageSize:   4096,
	}
}

// Reduced returns a laptop-fast configuration preserving the paper's
// qualitative shapes: 4 warehouses, 6 batches of 10K transactions,
// 24 buffer sizes scaled to the smaller database.
func Reduced() Options {
	return Options{
		Warehouses: 4,
		Seed:       1993,
		WarmupTxns: 10_000,
		Batches:    6,
		BatchTxns:  10_000,
		Level:      0.90,
		BufferMB:   bufferGrid(24, 1, 52),
		PageSize:   4096,
	}
}

func bufferGrid(n int, loMB, hiMB float64) []float64 {
	out := make([]float64, n)
	step := (hiMB - loMB) / float64(n-1)
	for i := range out {
		out[i] = loMB + float64(i)*step
	}
	return out
}

func (o Options) workload() workload.Config {
	cfg := workload.DefaultConfig(o.Warehouses, o.Seed)
	cfg.DB.PageSize = o.PageSize
	return cfg
}

func (o Options) capacities() []int64 {
	caps := make([]int64, len(o.BufferMB))
	for i, mb := range o.BufferMB {
		caps[i] = sim.PagesForBytes(int64(mb*(1<<20)), o.PageSize)
	}
	return caps
}

func (o Options) workers() int { return parallel.Workers(o.Workers) }

// trace returns the memoized reference trace covering this configuration's
// warmup plus measurement window; every sweep cell replays it instead of
// regenerating the stream.
func (o Options) trace() (*sim.Trace, error) {
	return sim.SharedTraces.Get(o.workload(), o.WarmupTxns+int64(o.Batches)*o.BatchTxns)
}

// mapped returns the memoized pre-mapped form of the reference trace for
// one packing strategy: the tuple-to-page translation is performed once per
// (trace, packing, page size) and shared by every sweep cell, which then
// replays flat page ordinals through the dense kernel.
func (o Options) mapped(p sim.Packing) (*sim.MappedTrace, error) {
	return sim.SharedTraces.GetMapped(o.workload(), o.WarmupTxns+int64(o.Batches)*o.BatchTxns, p)
}

// curve runs one stack-distance simulation cell, choosing the dense
// pre-mapped kernel unless noPremap pins the seed kernel.
func (o Options) curve(p sim.Packing) (*sim.CurveResult, error) {
	cfg := sim.CurveConfig{
		Workload:        o.workload(),
		Packing:         p,
		CapacitiesPages: o.capacities(),
		WarmupTxns:      o.WarmupTxns,
		Batches:         o.Batches,
		BatchTxns:       o.BatchTxns,
		Level:           o.Level,
	}
	if o.noPremap {
		tr, err := o.trace()
		if err != nil {
			return nil, err
		}
		cfg.Trace = tr
	} else {
		mt, err := o.mapped(p)
		if err != nil {
			return nil, err
		}
		cfg.Mapped = mt
	}
	return sim.RunCurve(cfg)
}

// Study caches the expensive buffer-simulation results per packing
// strategy so that Figures 8, 9, and 10 share one pass each. It is safe for
// concurrent use: parallel experiment tasks asking for the same packing
// compute it exactly once, and all packings replay one shared reference
// trace.
type Study struct {
	Opts   Options
	mu     sync.Mutex
	curves map[sim.Packing]*curveEntry
}

type curveEntry struct {
	once sync.Once
	res  *sim.CurveResult
	err  error
}

// NewStudy creates a study at the given scale.
func NewStudy(opts Options) *Study {
	return &Study{Opts: opts, curves: make(map[sim.Packing]*curveEntry)}
}

// Curve runs (or returns the cached) stack-distance simulation for one
// packing strategy.
func (s *Study) Curve(p sim.Packing) (*sim.CurveResult, error) {
	s.mu.Lock()
	e, ok := s.curves[p]
	if !ok {
		e = &curveEntry{}
		s.curves[p] = e
	}
	s.mu.Unlock()
	e.once.Do(func() {
		e.res, e.err = s.Opts.curve(p)
	})
	return e.res, e.err
}

// Prefetch computes the curves for the given packings as parallel tasks
// (each curve is itself a sequential single-pass simulation; the fan-out is
// across packings). The error of the lowest-indexed failing packing is
// returned.
func (s *Study) Prefetch(ps ...sim.Packing) error {
	return parallel.ForEach(s.Opts.workers(), len(ps), func(i int) error {
		_, err := s.Curve(ps[i])
		return err
	})
}

// Table1 reproduces the paper's Table 1 (logical database summary).
func Table1(warehouses int, pageSize int) Series {
	cfg := tpcc.Config{Warehouses: warehouses, PageSize: pageSize}
	s := Series{
		Name:    "table1",
		Comment: fmt.Sprintf("Table 1: logical database, W=%d, %dB pages (cardinality 0 = grows without bound)", warehouses, pageSize),
		Cols:    []string{"relation", "cardinality", "tuple_bytes", "tuples_per_page", "static_pages"},
	}
	for _, rel := range core.Relations() {
		s.Add(float64(rel), float64(cfg.Cardinality(rel)),
			float64(tpcc.TupleLen[rel]), float64(cfg.TuplesPerPage(rel)),
			float64(cfg.StaticPages(rel)))
	}
	return s
}

// Fig3 reproduces the stock/item PMF of NU(8191,1,100000). Exact
// computation replaces the paper's 10^9-sample Monte Carlo; stride
// downsamples the 100K points for printing (stride 1 = all).
func Fig3(stride int) Series {
	return pmfSeries("fig3", "Stock relation PMF, NU(8191,1,100000), exact",
		nurand.ExactPMF(nurand.ItemID), 1, stride)
}

// Fig4 is the Figure 3 PMF restricted to tuples 1..10000 (one-cycle zoom).
func Fig4(stride int) Series {
	pmf := nurand.ExactPMF(nurand.ItemID)[:10000]
	return pmfSeries("fig4", "Stock relation PMF, tuples 1..10000", pmf, 1, stride)
}

// Fig6 reproduces the customer-relation PMF (the id/name access mixture).
func Fig6(stride int) Series {
	return pmfSeries("fig6", "Customer relation PMF (41.86% by-id + 58.14% by-name thirds)",
		nurand.CustomerMixture().ExactPMF(), 1, stride)
}

func pmfSeries(name, comment string, pmf []float64, base int64, stride int) Series {
	if stride < 1 {
		stride = 1
	}
	s := Series{Name: name, Comment: comment, Cols: []string{"tuple_id", "probability"}}
	for i := 0; i < len(pmf); i += stride {
		s.Add(float64(base+int64(i)), pmf[i])
	}
	return s
}

// Fig5 reproduces the stock CDF curves: cumulative access probability vs
// cumulative data fraction at the tuple level, 4K-page sequential,
// 8K-page sequential, and optimized packing.
func Fig5(points int) Series {
	pmf := nurand.ExactPMF(nurand.ItemID)
	return skewCDF("fig5", "Stock relation CDF (coldest-first)", pmf, 13, 26, points)
}

// Fig7 reproduces the customer CDF curves (6 tuples per 4K page, 12 per 8K).
func Fig7(points int) Series {
	pmf := nurand.CustomerMixture().ExactPMF()
	return skewCDF("fig7", "Customer relation CDF (coldest-first)", pmf, 6, 12, points)
}

func skewCDF(name, comment string, pmf []float64, perPage4K, perPage8K int64, points int) Series {
	n := int64(len(pmf))
	tuple := stats.NewLorenz(pmf)
	seq4 := stats.NewLorenz(packing.PagePMF(pmf, packing.NewGroupedSequential(n, perPage4K)))
	seq8 := stats.NewLorenz(packing.PagePMF(pmf, packing.NewGroupedSequential(n, perPage8K)))
	opt4 := stats.NewLorenz(packing.PagePMF(pmf, packing.NewOptimized(pmf, perPage4K)))
	s := Series{
		Name:    name,
		Comment: comment + "; columns are cumulative access fractions",
		Cols:    []string{"data_fraction", "tuple_level", "seq_4K_pages", "seq_8K_pages", "optimized_4K"},
	}
	for i := 0; i <= points; i++ {
		f := float64(i) / float64(points)
		s.Add(f, tuple.CumulativeAt(f), seq4.CumulativeAt(f), seq8.CumulativeAt(f), opt4.CumulativeAt(f))
	}
	return s
}

// SkewHeadlines reports the Section 3 headline numbers: the access share
// of the hottest 20%, 10%, and 2% of stock tuples and 4K pages.
func SkewHeadlines() Series {
	pmf := nurand.ExactPMF(nurand.ItemID)
	tuple := stats.NewLorenz(pmf)
	page4 := stats.NewLorenz(packing.PagePMF(pmf, packing.NewGroupedSequential(int64(len(pmf)), 13)))
	opt4 := stats.NewLorenz(packing.PagePMF(pmf, packing.NewOptimized(pmf, 13)))
	s := Series{
		Name:    "skew-headlines",
		Comment: "Section 3 headline skew: access share of hottest data fraction (paper: tuple 84/71/39%, 4K pages 75/59/28%)",
		Cols:    []string{"hottest_fraction", "tuple_level", "seq_4K_pages", "optimized_4K"},
	}
	for _, f := range []float64{0.20, 0.10, 0.02} {
		s.Add(f, tuple.AccessShareOfHottest(f), page4.AccessShareOfHottest(f), opt4.AccessShareOfHottest(f))
	}
	return s
}

// Fig8 reproduces the miss-rate-vs-buffer-size curves for the customer,
// stock, and item relations under sequential and optimized packing.
func Fig8(st *Study) (Series, error) {
	if err := st.Prefetch(sim.PackSequential, sim.PackOptimized); err != nil {
		return Series{}, err
	}
	seq, _ := st.Curve(sim.PackSequential)
	opt, _ := st.Curve(sim.PackOptimized)
	s := Series{
		Name: "fig8",
		Comment: fmt.Sprintf("Miss rate vs buffer size, %d warehouses, LRU, 90%% CIs <= 5%% required",
			st.Opts.Warehouses),
		Cols: []string{"buffer_MB",
			"customer_seq", "customer_opt",
			"stock_seq", "stock_opt",
			"item_seq", "item_opt"},
	}
	caps := st.Opts.capacities()
	rows, err := parallel.Map(st.Opts.workers(), len(st.Opts.BufferMB), func(i int) ([]float64, error) {
		c := caps[i]
		return []float64{st.Opts.BufferMB[i],
			seq.MissRate(core.Customer, c), opt.MissRate(core.Customer, c),
			seq.MissRate(core.Stock, c), opt.MissRate(core.Stock, c),
			seq.MissRate(core.Item, c), opt.MissRate(core.Item, c)}, nil
	})
	if err != nil {
		return Series{}, err
	}
	s.Rows = rows
	return s, nil
}

// Table3 measures the distinct tuples of each relation touched per
// transaction type and the mix-weighted average — the paper's Table 3
// (whose U(x)/NU(x)/A(x)/P(x) entries count tuples, not calls: a
// select+update pair on one tuple counts once).
func Table3(opts Options) (Series, error) {
	cfg := opts.workload()
	gen, err := workload.New(cfg)
	if err != nil {
		return Series{}, err
	}
	var perTxnRel [core.NumTxnTypes][core.NumRelations]int64
	var perTxn [core.NumTxnTypes]int64
	var txn workload.Txn
	seen := make(map[core.Access]struct{}, 512)
	n := opts.Batches * int(opts.BatchTxns)
	if n > 200_000 {
		n = 200_000 // access counting converges fast
	}
	for i := 0; i < n; i++ {
		gen.Next(&txn)
		perTxn[txn.Type]++
		clear(seen)
		for _, a := range txn.Accesses {
			key := core.Access{Rel: a.Rel, Tuple: a.Tuple}
			if _, dup := seen[key]; dup {
				continue
			}
			seen[key] = struct{}{}
			perTxnRel[txn.Type][a.Rel]++
		}
	}
	s := Series{
		Name:    "table3",
		Comment: "Table 3: distinct tuples accessed per transaction, measured (last column = mix-weighted average)",
		Cols: []string{"relation", "new_order", "payment", "order_status",
			"delivery", "stock_level", "average"},
	}
	for _, rel := range core.Relations() {
		row := []float64{float64(rel)}
		var avg float64
		for t := core.TxnType(0); t < core.NumTxnTypes; t++ {
			var per float64
			if perTxn[t] > 0 {
				per = float64(perTxnRel[t][rel]) / float64(perTxn[t])
			}
			row = append(row, per)
			avg += cfg.Mix.Fraction(t) * per
		}
		row = append(row, avg)
		s.Rows = append(s.Rows, row)
	}
	return s, nil
}

// Fig9 reproduces maximum throughput (new-order tpm) vs buffer size for
// both packings, using the paper's 10 MIPS / 80% utilization system.
func Fig9(st *Study, sys model.SystemParams) (Series, error) {
	if err := st.Prefetch(sim.PackSequential, sim.PackOptimized); err != nil {
		return Series{}, err
	}
	seq, _ := st.Curve(sim.PackSequential)
	opt, _ := st.Curve(sim.PackOptimized)
	s := Series{
		Name:    "fig9",
		Comment: fmt.Sprintf("Max throughput (new-order tpm) vs buffer size, %.0f MIPS @ %.0f%% CPU", sys.MIPS, sys.MaxCPUUtil*100),
		Cols:    []string{"buffer_MB", "tpm_sequential", "tpm_optimized"},
	}
	rows, err := parallel.Map(st.Opts.workers(), len(st.Opts.BufferMB), func(i int) ([]float64, error) {
		tseq := model.MaxThroughput(sys, model.DemandsFromCurve(seq, i), nil)
		topt := model.MaxThroughput(sys, model.DemandsFromCurve(opt, i), nil)
		return []float64{st.Opts.BufferMB[i], tseq.NewOrderPerMin, topt.NewOrderPerMin}, nil
	})
	if err != nil {
		return Series{}, err
	}
	s.Rows = rows
	return s, nil
}

// Fig10 reproduces the price/performance curves: $/tpm vs buffer size for
// sequential and optimized packing, with and without the 180-day growth
// storage requirement.
func Fig10(st *Study, sys model.SystemParams, cost model.CostModel) (Series, error) {
	if err := st.Prefetch(sim.PackSequential, sim.PackOptimized); err != nil {
		return Series{}, err
	}
	seq, _ := st.Curve(sim.PackSequential)
	opt, _ := st.Curve(sim.PackOptimized)
	db := tpcc.Config{Warehouses: st.Opts.Warehouses, PageSize: st.Opts.PageSize}
	noGrow := model.DefaultStorageParams(db, false)
	grow := model.DefaultStorageParams(db, true)
	s := Series{
		Name:    "fig10",
		Comment: "Hardware $ per new-order tpm vs buffer size (cost: CPU + disks + memory)",
		Cols: []string{"buffer_MB",
			"seq_no_growth", "opt_no_growth", "seq_growth", "opt_growth"},
	}
	rows, err := parallel.Map(st.Opts.workers(), len(st.Opts.BufferMB), func(i int) ([]float64, error) {
		mb := st.Opts.BufferMB[i]
		dseq := model.DemandsFromCurve(seq, i)
		dopt := model.DemandsFromCurve(opt, i)
		return []float64{mb,
			model.PricePerformance(sys, cost, noGrow, mb, dseq).CostPerTpm,
			model.PricePerformance(sys, cost, noGrow, mb, dopt).CostPerTpm,
			model.PricePerformance(sys, cost, grow, mb, dseq).CostPerTpm,
			model.PricePerformance(sys, cost, grow, mb, dopt).CostPerTpm}, nil
	})
	if err != nil {
		return Series{}, err
	}
	s.Rows = rows
	return s, nil
}

// Fig10Minima extracts the optimal points of the four Figure 10 curves.
func Fig10Minima(fig10 Series) Series {
	s := Series{
		Name:    "fig10-minima",
		Comment: "Optimal buffer size and $/tpm per curve (paper: 154MB/$139, 84MB/$107, 52MB/$167, 26MB/$154)",
		Cols:    []string{"curve", "best_buffer_MB", "best_cost_per_tpm"},
	}
	for col := 1; col < len(fig10.Cols); col++ {
		bestMB, bestCost := 0.0, 0.0
		for _, row := range fig10.Rows {
			if bestCost == 0 || row[col] < bestCost {
				bestMB, bestCost = row[0], row[col]
			}
		}
		s.Add(float64(col), bestMB, bestCost)
	}
	return s
}

// Fig11 reproduces the scale-up curves: total new-order tpm vs node count
// for the linear ideal, replicated Item, and partitioned Item.
func Fig11(st *Study, sys model.SystemParams, bufferMB float64, nodes []int) (Series, error) {
	opt, err := st.Curve(sim.PackOptimized)
	if err != nil {
		return Series{}, err
	}
	capIdx := nearestCapacity(st.Opts.BufferMB, bufferMB)
	d := model.DemandsFromCurve(opt, capIdx)
	rep := model.Scaleup(sys, d, model.DefaultDistConfig(0, true), nodes)
	part := model.Scaleup(sys, d, model.DefaultDistConfig(0, false), nodes)
	s := Series{
		Name:    "fig11",
		Comment: fmt.Sprintf("Scale-up at %.0fMB buffer, optimized packing (paper: replicated ~3%% off ideal; 10/30/39%% over partitioned at 2/10/30 nodes)", st.Opts.BufferMB[capIdx]),
		Cols:    []string{"nodes", "ideal_tpm", "replicated_tpm", "partitioned_tpm"},
	}
	for i := range nodes {
		s.Add(float64(nodes[i]), rep[i].IdealNewOrderPerMin,
			rep[i].TotalNewOrderPerMin, part[i].TotalNewOrderPerMin)
	}
	return s, nil
}

// Fig12 reproduces the remote-probability sensitivity: total tpm vs node
// count for several remote-stock probabilities (Item replicated).
func Fig12(st *Study, sys model.SystemParams, bufferMB float64, nodes []int, probs []float64) (Series, error) {
	opt, err := st.Curve(sim.PackOptimized)
	if err != nil {
		return Series{}, err
	}
	capIdx := nearestCapacity(st.Opts.BufferMB, bufferMB)
	d := model.DemandsFromCurve(opt, capIdx)
	s := Series{
		Name:    "fig12",
		Comment: "Sensitivity to remote-stock probability (paper: ~44% scale-up loss at p=1.0)",
		Cols:    []string{"nodes"},
	}
	for _, p := range probs {
		s.Cols = append(s.Cols, fmt.Sprintf("tpm_p=%.2f", p))
	}
	for _, n := range nodes {
		row := []float64{float64(n)}
		for _, p := range probs {
			cfg := model.DefaultDistConfig(n, true)
			cfg.RemoteStockProb = p
			rv := cfg.RemoteVisitCounts()
			tp := model.MaxThroughput(sys, d, &rv)
			row = append(row, tp.NewOrderPerMin*float64(n))
		}
		s.Rows = append(s.Rows, row)
	}
	return s, nil
}

// Table4 prints the reconstructed Table 4: per-transaction visit counts,
// CPU path lengths, and measured read I/Os at the given buffer size.
func Table4(st *Study, sys model.SystemParams, bufferMB float64) (Series, error) {
	seq, err := st.Curve(sim.PackSequential)
	if err != nil {
		return Series{}, err
	}
	capIdx := nearestCapacity(st.Opts.BufferMB, bufferMB)
	d := model.DemandsFromCurve(seq, capIdx)
	s := Series{
		Name:    "table4",
		Comment: fmt.Sprintf("Table 4 visit counts + measured IOs at %.0fMB (sequential packing)", st.Opts.BufferMB[capIdx]),
		Cols: []string{"txn_type", "selects", "updates", "inserts", "deletes",
			"non_unique", "joins", "sql_calls", "locks", "read_IOs", "kinstr"},
	}
	for t := core.TxnType(0); t < core.NumTxnTypes; t++ {
		c := d[t].Calls
		instr := model.CPUInstructions(sys.CPU, d[t], model.RemoteVisits{})
		s.Add(float64(t), c.Selects, c.Updates, c.Inserts, c.Deletes,
			c.NonUnique, c.Joins, c.SQLCalls, c.Locks, d[t].ReadIOs, instr/1000)
	}
	return s, nil
}

// Tables6and7 prints the Appendix A expectations and the resulting
// distributed visit-count deltas for a range of node counts.
func Tables6and7(nodes []int) Series {
	s := Series{
		Name:    "tables6-7",
		Comment: "Appendix A expectations and Tables 6/7 remote visit counts",
		Cols: []string{"nodes", "U_stock", "RC_stock", "L_stock", "U_cust", "RC_cust",
			"U_item", "U_stock_item",
			"rep_NO_sendrecv", "part_NO_sendrecv", "rep_NO_prep", "part_NO_commit_extra"},
	}
	for _, n := range nodes {
		rep := model.DefaultDistConfig(n, true)
		part := model.DefaultDistConfig(n, false)
		e := part.Expect()
		rv := rep.RemoteVisitCounts()
		pv := part.RemoteVisitCounts()
		s.Add(float64(n), e.UStock, e.RCStock, e.LStock, e.UCust, e.RCCust,
			e.UItem, e.UStockItem,
			rv[core.TxnNewOrder].SendReceive, pv[core.TxnNewOrder].SendReceive,
			rv[core.TxnNewOrder].PrepCommit, pv[core.TxnNewOrder].CommitExtra)
	}
	return s
}

// PolicyAblation tests the paper's hypothesis that smarter replacement
// policies widen the optimized-vs-sequential gap: overall miss rates per
// policy per packing at one buffer size.
func PolicyAblation(opts Options, bufferMB float64, policies []string) (Series, error) {
	s := Series{
		Name:    "policy-ablation",
		Comment: fmt.Sprintf("Overall miss rate by replacement policy at %.0fMB (Section 4 hypothesis)", bufferMB),
		Cols:    []string{"policy", "sequential", "optimized", "gap"},
	}
	pages := sim.PagesForBytes(int64(bufferMB*(1<<20)), opts.PageSize)
	tr, err := opts.trace()
	if err != nil {
		return Series{}, err
	}
	// The policy x packing grid: every cell is an independent direct
	// simulation replaying the shared trace; collect by cell index.
	packs := []sim.Packing{sim.PackSequential, sim.PackOptimized}
	rates, err := parallel.Map(opts.workers(), len(policies)*len(packs), func(cell int) (float64, error) {
		res, err := sim.Run(sim.Config{
			Workload:    opts.workload(),
			Packing:     packs[cell%len(packs)],
			Policy:      policies[cell/len(packs)],
			BufferPages: pages,
			WarmupTxns:  opts.WarmupTxns,
			Batches:     opts.Batches,
			BatchTxns:   opts.BatchTxns,
			Level:       opts.Level,
			Trace:       tr,
		})
		if err != nil {
			return 0, err
		}
		return res.Overall.MissRate(), nil
	})
	if err != nil {
		return Series{}, err
	}
	for pi := range policies {
		seq, opt := rates[pi*len(packs)], rates[pi*len(packs)+1]
		s.Add(float64(pi), seq, opt, seq-opt)
	}
	return s, nil
}

func nearestCapacity(bufferMB []float64, target float64) int {
	best := 0
	for i, mb := range bufferMB {
		if abs(mb-target) < abs(bufferMB[best]-target) {
			best = i
		}
	}
	return best
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
