package experiments

import (
	"fmt"

	"tpccmodel/internal/analytic"
	"tpccmodel/internal/buffer"
	"tpccmodel/internal/core"
	"tpccmodel/internal/model"
	"tpccmodel/internal/nurand"
	"tpccmodel/internal/packing"
	"tpccmodel/internal/parallel"
	"tpccmodel/internal/queuesim"
	"tpccmodel/internal/rng"
	"tpccmodel/internal/sim"
	"tpccmodel/internal/tpcc"
	"tpccmodel/internal/workload"
)

// OptimalityGap measures how far LRU sits from Belady's offline-optimal
// policy on the TPC-C reference stream — a bound the paper's Section 4
// hypothesis ("more sophisticated replacement policies could result in an
// even larger difference") implies but never quantifies. The trace is
// capped at maxTxns transactions.
func OptimalityGap(opts Options, bufferMBs []float64, maxTxns int64) (Series, error) {
	gen, err := workload.New(opts.workload())
	if err != nil {
		return Series{}, err
	}
	mappers := sim.BuildMappers(opts.workload().DB, sim.PackSequential, opts.Seed)
	var trace []core.PageID
	var txn workload.Txn
	for i := int64(0); i < maxTxns; i++ {
		gen.Next(&txn)
		for _, a := range txn.Accesses {
			trace = append(trace, core.MakePageID(a.Rel, mappers[a.Rel].Page(a.Tuple)))
		}
	}

	s := Series{
		Name:    "optimality-gap",
		Comment: fmt.Sprintf("LRU vs Belady OPT over %d transactions (%d accesses), sequential packing", maxTxns, len(trace)),
		Cols:    []string{"buffer_MB", "lru_miss", "opt_miss", "lru_over_opt"},
	}
	// Each buffer size replays the shared page trace independently.
	rows, err := parallel.Map(opts.workers(), len(bufferMBs), func(i int) ([]float64, error) {
		mb := bufferMBs[i]
		pages := sim.PagesForBytes(int64(mb*(1<<20)), opts.PageSize)
		lru := buffer.NewLRU(pages)
		opt := buffer.NewOPT(pages, trace)
		var lruMiss, optMiss int64
		for _, p := range trace {
			if !lru.Access(p) {
				lruMiss++
			}
			if !opt.Access(p) {
				optMiss++
			}
		}
		n := float64(len(trace))
		ratio := 0.0
		if optMiss > 0 {
			ratio = float64(lruMiss) / float64(optMiss)
		}
		return []float64{mb, float64(lruMiss) / n, float64(optMiss) / n, ratio}, nil
	})
	if err != nil {
		return Series{}, err
	}
	s.Rows = rows
	return s, nil
}

// AnalyticVsSimulated compares Che's IRM approximation (package analytic)
// against the trace-driven simulation for the three NURand-skewed
// relations, under sequential packing. The analytic model knows only the
// exact access distributions — no trace — so agreement here means the
// paper's Figure 8 curves for customer/stock/item are predictable in
// closed form. The growing relations are recency-driven and excluded from
// the model; their buffer footprint is not deducted from the capacity, so
// the analytic hit ratios run slightly optimistic at small buffers.
func AnalyticVsSimulated(st *Study) (Series, error) {
	res, err := st.Curve(sim.PackSequential)
	if err != nil {
		return Series{}, err
	}
	opts := st.Opts
	m, uniqueRatio, err := AnalyticModel(opts, res)
	if err != nil {
		return Series{}, err
	}

	s := Series{
		Name: "analytic-vs-sim",
		Comment: "Che/IRM closed-form miss rates (per-call adjusted) vs " +
			"trace-driven simulation, sequential packing",
		Cols: []string{"buffer_MB", "customer_sim", "customer_che",
			"stock_sim", "stock_che", "item_sim", "item_che"},
	}
	caps := opts.capacities()
	for i, mb := range opts.BufferMB {
		che := m.MissRates(caps[i])
		s.Add(mb,
			res.MissRate(core.Customer, caps[i]), che[0]*uniqueRatio[core.Customer],
			res.MissRate(core.Stock, caps[i]), che[1]*uniqueRatio[core.Stock],
			res.MissRate(core.Item, caps[i]), che[2]*uniqueRatio[core.Item])
	}
	return s, nil
}

// AnalyticModel builds the Che/IRM closed-form model for the three
// NURand-skewed relations (customer, stock, item — the static relations
// the approximation covers), weighting each class by its measured share of
// the simulated access stream, together with the per-relation unique-per-
// call ratios that put the closed form on the simulation's per-call basis.
// The class order is customer, stock, item; MissRates indexes follow it.
// The cross-validation harness (package xval) uses the same model, so the
// engine, the trace-driven simulation, and the closed form are all judged
// against one construction.
func AnalyticModel(opts Options, res *sim.CurveResult) (*analytic.Model, [core.NumRelations]float64, error) {
	var zero [core.NumRelations]float64
	db := opts.workload().DB

	pagePMF := func(pmf []float64, perPage int64) []float64 {
		return packing.PagePMF(pmf, packing.NewGroupedSequential(int64(len(pmf)), perPage))
	}
	stockPMF := nurand.ExactPMF(nurand.ItemID)
	custPMF := nurand.CustomerMixture().ExactPMF()
	classes := []analytic.Class{
		{
			Name:    "customer",
			Weight:  float64(res.RelAccesses(core.Customer)),
			PagePMF: pagePMF(custPMF, db.TuplesPerPage(core.Customer)),
			Copies:  opts.Warehouses * tpcc.DistrictsPerWarehouse,
		},
		{
			Name:    "stock",
			Weight:  float64(res.RelAccesses(core.Stock)),
			PagePMF: pagePMF(stockPMF, db.TuplesPerPage(core.Stock)),
			Copies:  opts.Warehouses,
		},
		{
			Name:    "item",
			Weight:  float64(res.RelAccesses(core.Item)),
			PagePMF: pagePMF(stockPMF, db.TuplesPerPage(core.Item)),
			Copies:  1,
		},
	}
	m, err := analytic.NewModel(classes)
	if err != nil {
		return nil, zero, err
	}

	// Unit adjustment: the IRM predicts the miss probability of a
	// DISTINCT tuple reference, while the simulation counts every call —
	// and a transaction's repeated calls to a tuple it already touched
	// (select+update pairs, the delivery read-modify-write loops) always
	// hit. Scaling the closed form by unique/calls puts both on the
	// per-call basis. The ratios are measured from a short generator run.
	ratio, err := UniquePerCallRatio(opts)
	if err != nil {
		return nil, zero, err
	}
	return m, ratio, nil
}

// UniquePerCallRatio measures, per relation, the ratio of distinct tuples
// touched to total calls made across the workload.
func UniquePerCallRatio(opts Options) ([core.NumRelations]float64, error) {
	var ratio [core.NumRelations]float64
	gen, err := workload.New(opts.workload())
	if err != nil {
		return ratio, err
	}
	var calls, unique [core.NumRelations]int64
	seen := make(map[core.Access]struct{}, 512)
	var txn workload.Txn
	for i := 0; i < 50_000; i++ {
		gen.Next(&txn)
		clear(seen)
		for _, a := range txn.Accesses {
			calls[a.Rel]++
			key := core.Access{Rel: a.Rel, Tuple: a.Tuple}
			if _, dup := seen[key]; dup {
				continue
			}
			seen[key] = struct{}{}
			unique[a.Rel]++
		}
	}
	for rel := range ratio {
		if calls[rel] > 0 {
			ratio[rel] = float64(unique[rel]) / float64(calls[rel])
		} else {
			ratio[rel] = 1
		}
	}
	return ratio, nil
}

// ResponseValidation cross-checks the analytic response-time model against
// the discrete-event queueing simulation across load levels: the classic
// hockey-stick latency curve, analytic and simulated side by side. Demands
// come from the study's sequential-packing buffer run at capIdx.
func ResponseValidation(st *Study, sys model.SystemParams, capIdx, diskArms int,
	fractions []float64) (Series, error) {
	res, err := st.Curve(sim.PackSequential)
	if err != nil {
		return Series{}, err
	}
	d := model.DemandsFromCurve(res, capIdx)
	tp := model.MaxThroughput(sys, d, nil)
	satLambda := tp.TotalPerSec / sys.MaxCPUUtil

	s := Series{
		Name: "response-validation",
		Comment: fmt.Sprintf("Mean response time (ms) vs load: analytic vs discrete-event sim, %d disk arms",
			diskArms),
		Cols: []string{"load_fraction", "lambda_per_sec", "analytic_ms", "simulated_ms",
			"cpu_util", "disk_util"},
	}
	// Each load level is an independent queueing simulation seeded from
	// its own substream of the root seed: cells stay uncorrelated and the
	// fan-out never shares a generator across goroutines.
	rows, err := parallel.Map(st.Opts.workers(), len(fractions), func(i int) ([]float64, error) {
		f := fractions[i]
		lambda := f * satLambda
		ana, err := model.ResponseTime(sys, d, lambda, diskArms)
		if err != nil {
			return nil, fmt.Errorf("load %.2f: %w", f, err)
		}
		simr, err := queuesim.Run(queuesim.Config{
			Sys: sys, Demands: d, Lambda: lambda, DiskArms: diskArms,
			Transactions: 20_000, WarmupTransactions: 2_000,
			Seed: rng.Substream(st.Opts.Seed, uint64(i)),
		})
		if err != nil {
			return nil, fmt.Errorf("load %.2f: %w", f, err)
		}
		return []float64{f, lambda, ana.MeanMs, simr.MeanResponseMs, simr.CPUUtil, simr.DiskUtil}, nil
	})
	if err != nil {
		return Series{}, err
	}
	s.Rows = rows
	return s, nil
}

// AppendixAValidation cross-checks the Appendix A closed-form expectations
// against the workload generator: the generator draws remote warehouses
// exactly as the benchmark specifies, so measuring remote stock/customer
// calls and distinct remote nodes per transaction over many transactions
// must reproduce E[R_s], RC_stock, L_stock, U_stock, RC_cust, and U_cust.
// Warehouses are partitioned round-robin over nodes (warehousesPerNode
// each); the paper's 20-per-node layout is nodes*20 warehouses.
func AppendixAValidation(warehousesPerNode, nodes int, txns int64, seed uint64) (Series, error) {
	cfg := workload.DefaultConfig(warehousesPerNode*nodes, seed)
	gen, err := workload.New(cfg)
	if err != nil {
		return Series{}, err
	}
	nodeOf := func(wh int64) int { return int(wh) / warehousesPerNode }

	var txn workload.Txn
	var newOrders, payments int64
	var remoteStockCalls, remoteCustCalls float64
	var allLocalStock int64
	var uStockSum, uCustSum float64
	remoteNodes := make(map[int]struct{}, nodes)
	for i := int64(0); i < txns; i++ {
		gen.Next(&txn)
		switch txn.Type {
		case core.TxnNewOrder, core.TxnPayment:
		default:
			continue
		}
		home := nodeOf(txn.Accesses[0].Tuple) // warehouse select comes first
		clear(remoteNodes)
		var remoteCalls int
		for _, a := range txn.Accesses {
			var wh int64
			switch a.Rel {
			case core.Stock:
				if txn.Type != core.TxnNewOrder {
					continue
				}
				wh = a.Tuple / tpcc.StockPerWarehouse
			case core.Customer:
				if txn.Type != core.TxnPayment {
					continue
				}
				wh = a.Tuple / tpcc.CustomersPerWarehouse
			default:
				continue
			}
			if n := nodeOf(wh); n != home {
				remoteCalls++
				remoteNodes[n] = struct{}{}
			}
		}
		switch txn.Type {
		case core.TxnNewOrder:
			newOrders++
			remoteStockCalls += float64(remoteCalls)
			if len(remoteNodes) == 0 {
				allLocalStock++
			}
			uStockSum += float64(len(remoteNodes))
		case core.TxnPayment:
			payments++
			// The customer select(s)+update count as calls; Appendix A
			// counts 0.4*1 + 0.6*3 reads + 1 write-back = measured
			// accesses directly.
			remoteCustCalls += float64(remoteCalls)
			uCustSum += float64(len(remoteNodes))
		}
	}
	if newOrders == 0 || payments == 0 {
		return Series{}, fmt.Errorf("experiments: no transactions measured")
	}

	// The paper's (N-1)/N factor approximates the probability that a
	// uniformly chosen OTHER warehouse lives on a remote node; the exact
	// value is (W - perNode)/(W - 1), which the approximation reaches
	// only for many warehouses per node (at the paper's 20 per node the
	// two differ by < 0.2%). Report both: the validation must match the
	// exact form tightly and shows how coarse the approximation gets at
	// small scales.
	paper := model.DefaultDistConfig(nodes, true).Expect()
	w := float64(warehousesPerNode * nodes)
	exactNodeFrac := (w - float64(warehousesPerNode)) / (w - 1)
	adj := model.DefaultDistConfig(nodes, true)
	scale := exactNodeFrac * float64(nodes) / float64(nodes-1)
	adj.RemoteStockProb *= scale
	adj.RemotePaymentProb *= scale
	exact := adj.Expect()

	s := Series{
		Name: "appendix-a-validation",
		Comment: fmt.Sprintf("Appendix A closed forms vs generator measurement (%d nodes, %d wh/node, %d txns); paper uses (N-1)/N, exact is (W-perNode)/(W-1)",
			nodes, warehousesPerNode, txns),
		Cols: []string{"quantity", "paper_form", "exact_form", "measured"},
	}
	s.Add(0, 2*paper.ERs, 2*exact.ERs, remoteStockCalls/float64(newOrders)) // RC_stock
	s.Add(1, paper.LStock, exact.LStock, float64(allLocalStock)/float64(newOrders))
	s.Add(2, paper.UStock, exact.UStock, uStockSum/float64(newOrders))
	s.Add(3, paper.RCCust, exact.RCCust, remoteCustCalls/float64(payments))
	s.Add(4, paper.UCust, exact.UCust, uCustSum/float64(payments))
	return s, nil
}

// PageSizeStudy carries the paper's Section 3 page-size observation into
// the Section 4 buffer simulation: at equal memory, 4K pages preserve more
// skew than 8K pages (more pages fit, hot tuples dilute less), so the
// skewed relations should miss less under 4K at the same buffer size in
// bytes — quantified here for sequential packing.
func PageSizeStudy(opts Options) (Series, error) {
	s := Series{
		Name:    "page-size",
		Comment: "Stock/customer miss rates at equal memory: 4K vs 8K pages, sequential packing",
		Cols: []string{"buffer_MB", "stock_4K", "stock_8K",
			"customer_4K", "customer_8K", "overall_4K", "overall_8K"},
	}
	type out struct {
		res *sim.CurveResult
		cap []int64
	}
	// The tuple stream is page-size independent, so both cells replay the
	// same shared trace; only the page mapping and capacities differ (the
	// pre-mapped forms are memoized per page size over the one trace).
	pageSizes := []int{4096, 8192}
	runs, err := parallel.Map(opts.workers(), len(pageSizes), func(i int) (out, error) {
		o := opts
		o.PageSize = pageSizes[i]
		res, err := o.curve(sim.PackSequential)
		if err != nil {
			return out{}, err
		}
		return out{res: res, cap: o.capacities()}, nil
	})
	if err != nil {
		return Series{}, err
	}
	r4, r8 := runs[0], runs[1]
	for i, mb := range opts.BufferMB {
		s.Add(mb,
			r4.res.MissRate(core.Stock, r4.cap[i]), r8.res.MissRate(core.Stock, r8.cap[i]),
			r4.res.MissRate(core.Customer, r4.cap[i]), r8.res.MissRate(core.Customer, r8.cap[i]),
			r4.res.Overall.MissRate(r4.cap[i]), r8.res.Overall.MissRate(r8.cap[i]))
	}
	return s, nil
}

// MixSensitivity quantifies the paper's Section 2.1 warning: with 45%
// New-Order and only 4% Delivery the New-Order relation grows without
// bound, "causing more misses on the New-Order relation to occur and a
// need for more storage". It compares the paper's draining 43/44/4/5/4
// mix against the non-draining 45/43/4/4/4 minimum mix at one buffer size.
func MixSensitivity(opts Options, bufferMB float64) (Series, error) {
	pages := sim.PagesForBytes(int64(bufferMB*(1<<20)), opts.PageSize)
	s := Series{
		Name:    "mix-sensitivity",
		Comment: fmt.Sprintf("Draining (43/5) vs non-draining (45/4) mix at %.0fMB", bufferMB),
		Cols: []string{"mix", "pending_new_orders", "new_order_miss",
			"order_line_miss", "overall_miss"},
	}
	mixes := []tpcc.Mix{tpcc.DefaultMix(), tpcc.MinimumMix()}
	rows, err := parallel.Map(opts.workers(), len(mixes), func(i int) ([]float64, error) {
		wl := opts.workload()
		wl.Mix = mixes[i]
		gen, err := workload.New(wl)
		if err != nil {
			return nil, err
		}
		mappers := sim.BuildMappers(wl.DB, sim.PackSequential, wl.Seed)
		lru := buffer.NewLRU(pages)
		var txn workload.Txn
		var acc, miss [core.NumRelations]int64
		var accAll, missAll int64
		total := int64(opts.Batches) * opts.BatchTxns
		for n := int64(0); n < total; n++ {
			gen.Next(&txn)
			for _, a := range txn.Accesses {
				hit := lru.Access(core.MakePageID(a.Rel, mappers[a.Rel].Page(a.Tuple)))
				acc[a.Rel]++
				accAll++
				if !hit {
					miss[a.Rel]++
					missAll++
				}
			}
		}
		_, pending, _, _ := gen.Sizes()
		rate := func(rel core.Relation) float64 {
			if acc[rel] == 0 {
				return 0
			}
			return float64(miss[rel]) / float64(acc[rel])
		}
		return []float64{float64(i), float64(pending), rate(core.NewOrder),
			rate(core.OrderLine), float64(missAll) / float64(accAll)}, nil
	})
	if err != nil {
		return Series{}, err
	}
	s.Rows = rows
	return s, nil
}
