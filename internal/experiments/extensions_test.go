package experiments

import (
	"testing"

	"tpccmodel/internal/model"
)

func TestOptimalityGap(t *testing.T) {
	opts := tinyOptions()
	s, err := OptimalityGap(opts, []float64{4, 16}, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Rows) != 2 {
		t.Fatalf("rows = %d", len(s.Rows))
	}
	for _, row := range s.Rows {
		lru, opt := row[1], row[2]
		if opt > lru+1e-12 {
			t.Errorf("OPT miss %.4f above LRU %.4f at %vMB", opt, lru, row[0])
		}
		if lru <= 0 || lru >= 1 {
			t.Errorf("implausible LRU miss rate %v", lru)
		}
	}
	// More memory narrows both.
	if s.Rows[1][1] > s.Rows[0][1] {
		t.Error("LRU miss rate should fall with memory")
	}
}

func TestAnalyticVsSimulated(t *testing.T) {
	st := NewStudy(tinyOptions())
	s, err := AnalyticVsSimulated(st)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Rows) != len(st.Opts.BufferMB) {
		t.Fatalf("rows = %d", len(s.Rows))
	}
	// The closed form should track the simulation. Customer is very
	// nearly IRM (its repeated-call correlation is handled by the
	// per-call adjustment); stock carries extra recency correlation from
	// Stock-Level's re-reads of just-ordered items, so the IRM
	// prediction runs pessimistic there — bound it looser.
	// Compare at a mid-range buffer (the near-full-capacity tail is
	// dominated by cold-miss vs zero-asymptote effects).
	mid := s.Rows[len(s.Rows)/2]
	if diff := mid[1] - mid[2]; diff < -0.06 || diff > 0.08 {
		t.Errorf("customer: sim %v vs che %v", mid[1], mid[2])
	}
	if diff := mid[3] - mid[4]; diff < -0.15 || diff > 0.04 {
		t.Errorf("stock: sim %v vs che %v (IRM should be pessimistic)", mid[3], mid[4])
	}
	if diff := mid[5] - mid[6]; diff < -0.12 || diff > 0.04 {
		t.Errorf("item: sim %v vs che %v", mid[5], mid[6])
	}
}

func TestResponseValidation(t *testing.T) {
	if testing.Short() {
		t.Skip("queueing simulation takes tens of seconds")
	}
	st := NewStudy(tinyOptions())
	sys := model.DefaultSystemParams()
	s, err := ResponseValidation(st, sys, 3, 8, []float64{0.3, 0.6, 0.8})
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Rows) != 3 {
		t.Fatalf("rows = %d", len(s.Rows))
	}
	prev := 0.0
	for _, row := range s.Rows {
		ana, simMs := row[2], row[3]
		if ana <= prev {
			t.Error("analytic curve should increase with load")
		}
		prev = ana
		if rel := (simMs - ana) / ana; rel < -0.25 || rel > 0.25 {
			t.Errorf("load %.2f: sim %.1fms vs analytic %.1fms", row[0], simMs, ana)
		}
	}
}

func TestAppendixAValidation(t *testing.T) {
	s, err := AppendixAValidation(2, 4, 120_000, 13)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Rows) != 5 {
		t.Fatalf("rows = %d", len(s.Rows))
	}
	names := []string{"RC_stock", "L_stock", "U_stock", "RC_cust", "U_cust"}
	for i, row := range s.Rows {
		paperForm, exactForm, measured := row[1], row[2], row[3]
		if exactForm == 0 {
			t.Fatalf("%s: exact form is zero", names[i])
		}
		// The exact closed form must match the generator tightly.
		if rel := (measured - exactForm) / exactForm; rel < -0.05 || rel > 0.05 {
			t.Errorf("%s: exact form %v vs measured %v (%.1f%% off)",
				names[i], exactForm, measured, rel*100)
		}
		// The paper's (N-1)/N approximation is coarse at 2 warehouses
		// per node but must sit within ~20%.
		if rel := (measured - paperForm) / paperForm; rel < -0.25 || rel > 0.25 {
			t.Errorf("%s: paper form %v vs measured %v (%.1f%% off)",
				names[i], paperForm, measured, rel*100)
		}
	}
}

func TestPageSizeStudy(t *testing.T) {
	opts := tinyOptions()
	opts.BufferMB = []float64{8, 24}
	s, err := PageSizeStudy(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Rows) != 2 {
		t.Fatalf("rows = %d", len(s.Rows))
	}
	// At equal memory, 4K pages should not lose to 8K for the skewed
	// stock relation (the paper's Section 3 skew argument).
	for _, row := range s.Rows {
		if row[1] > row[2]+0.02 {
			t.Errorf("stock at %vMB: 4K miss %.4f above 8K %.4f", row[0], row[1], row[2])
		}
	}
}

func TestMixSensitivity(t *testing.T) {
	opts := tinyOptions()
	s, err := MixSensitivity(opts, 16)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Rows) != 2 {
		t.Fatalf("rows = %d", len(s.Rows))
	}
	draining, bad := s.Rows[0], s.Rows[1]
	// The paper's warning: the non-draining mix accumulates pending
	// new-orders.
	if bad[1] <= draining[1] {
		t.Errorf("45/4 mix should leave more pending new-orders: %v vs %v",
			bad[1], draining[1])
	}
}
