// Package analytic predicts LRU buffer hit ratios without simulation,
// using Che's approximation under the independent reference model (IRM):
// for a page accessed with probability p out of a stream hitting a cache
// of C pages, the hit probability is 1 - exp(-p * T_C), where the
// characteristic time T_C solves
//
//	sum over pages i of (1 - exp(-p_i * T_C)) = C.
//
// The paper obtains its Figure 8 miss rates by trace-driven simulation;
// this module is the closed-form companion: it takes the same exact NURand
// page distributions (package nurand + packing) and produces the
// miss-rate-vs-buffer-size curves in microseconds. The approximation is
// exact in the large-cache limit for IRM streams; TPC-C's static skewed
// relations (customer, stock, item) are close to IRM, while the growing
// relations are recency-driven and lie outside the model (the comparison
// experiment quantifies the resulting error).
package analytic

import (
	"fmt"
	"math"
)

// Class is one group of pages sharing an access-probability profile: a
// relation (or one group of a grouped relation, repeated Copies times).
type Class struct {
	// Name identifies the class in outputs.
	Name string
	// Weight is the class's share of the total access stream (the
	// mix-weighted accesses per transaction, normalized by the caller
	// or by Normalize).
	Weight float64
	// PagePMF is the within-class page access distribution (sums to 1).
	PagePMF []float64
	// Copies repeats the class (e.g. one stock group per warehouse,
	// each receiving Weight/Copies of the stream).
	Copies int
}

// Validate checks the class.
func (c Class) Validate() error {
	if c.Weight < 0 {
		return fmt.Errorf("analytic: class %q has negative weight", c.Name)
	}
	if len(c.PagePMF) == 0 {
		return fmt.Errorf("analytic: class %q has no pages", c.Name)
	}
	if c.Copies < 1 {
		return fmt.Errorf("analytic: class %q needs Copies >= 1", c.Name)
	}
	var sum float64
	for _, p := range c.PagePMF {
		if p < 0 {
			return fmt.Errorf("analytic: class %q has a negative probability", c.Name)
		}
		sum += p
	}
	if math.Abs(sum-1) > 1e-6 {
		return fmt.Errorf("analytic: class %q PMF sums to %v", c.Name, sum)
	}
	return nil
}

// Model is a normalized IRM over page classes.
type Model struct {
	classes []Class
}

// NewModel builds a model, normalizing class weights to sum to 1.
func NewModel(classes []Class) (*Model, error) {
	if len(classes) == 0 {
		return nil, fmt.Errorf("analytic: need at least one class")
	}
	var total float64
	for _, c := range classes {
		if err := c.Validate(); err != nil {
			return nil, err
		}
		total += c.Weight
	}
	if total <= 0 {
		return nil, fmt.Errorf("analytic: total weight must be positive")
	}
	out := make([]Class, len(classes))
	for i, c := range classes {
		c.Weight /= total
		out[i] = c
	}
	return &Model{classes: out}, nil
}

// TotalPages returns the number of distinct pages across all classes and
// copies.
func (m *Model) TotalPages() int64 {
	var n int64
	for _, c := range m.classes {
		n += int64(len(c.PagePMF)) * int64(c.Copies)
	}
	return n
}

// occupancy returns the expected number of resident pages at
// characteristic time t.
func (m *Model) occupancy(t float64) float64 {
	var occ float64
	for _, c := range m.classes {
		perCopy := c.Weight / float64(c.Copies)
		for _, p := range c.PagePMF {
			occ += float64(c.Copies) * (1 - math.Exp(-p*perCopy*t))
		}
	}
	return occ
}

// CharacteristicTime solves Che's fixed point for a cache of
// capacityPages pages by bisection. It returns +Inf when the capacity
// holds every page.
func (m *Model) CharacteristicTime(capacityPages int64) float64 {
	c := float64(capacityPages)
	if capacityPages <= 0 {
		return 0
	}
	if c >= float64(m.TotalPages()) {
		return math.Inf(1)
	}
	// Bracket: occupancy is increasing in t from 0 to TotalPages.
	lo, hi := 0.0, 1.0
	for m.occupancy(hi) < c {
		hi *= 2
		if hi > 1e18 {
			return math.Inf(1)
		}
	}
	for i := 0; i < 200 && hi-lo > 1e-9*hi; i++ {
		mid := (lo + hi) / 2
		if m.occupancy(mid) < c {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// MissRates returns the per-class miss rate at the given capacity: the
// access-probability-weighted miss probability of the class's pages.
func (m *Model) MissRates(capacityPages int64) []float64 {
	t := m.CharacteristicTime(capacityPages)
	out := make([]float64, len(m.classes))
	for i, c := range m.classes {
		if math.IsInf(t, 1) {
			out[i] = 0
			continue
		}
		perCopy := c.Weight / float64(c.Copies)
		var miss float64
		for _, p := range c.PagePMF {
			// Each copy contributes identically.
			miss += p * math.Exp(-p*perCopy*t)
		}
		out[i] = miss
	}
	return out
}

// OverallMissRate returns the stream-weighted miss rate at the capacity.
func (m *Model) OverallMissRate(capacityPages int64) float64 {
	rates := m.MissRates(capacityPages)
	var overall float64
	for i, c := range m.classes {
		overall += c.Weight * rates[i]
	}
	return overall
}

// ClassNames returns the class names in model order.
func (m *Model) ClassNames() []string {
	names := make([]string, len(m.classes))
	for i, c := range m.classes {
		names[i] = c.Name
	}
	return names
}
