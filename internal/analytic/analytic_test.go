package analytic

import (
	"math"
	"testing"
	"testing/quick"

	"tpccmodel/internal/buffer"
	"tpccmodel/internal/core"
	"tpccmodel/internal/nurand"
	"tpccmodel/internal/rng"
)

func uniformClass(name string, pages int, weight float64) Class {
	pmf := make([]float64, pages)
	for i := range pmf {
		pmf[i] = 1 / float64(pages)
	}
	return Class{Name: name, Weight: weight, PagePMF: pmf, Copies: 1}
}

func TestModelValidation(t *testing.T) {
	if _, err := NewModel(nil); err == nil {
		t.Error("empty model should fail")
	}
	if _, err := NewModel([]Class{{Name: "x", Weight: 1, PagePMF: []float64{0.5}, Copies: 1}}); err == nil {
		t.Error("non-normalized PMF should fail")
	}
	if _, err := NewModel([]Class{{Name: "x", Weight: -1, PagePMF: []float64{1}, Copies: 1}}); err == nil {
		t.Error("negative weight should fail")
	}
	if _, err := NewModel([]Class{{Name: "x", Weight: 1, PagePMF: []float64{1}, Copies: 0}}); err == nil {
		t.Error("zero copies should fail")
	}
	m, err := NewModel([]Class{uniformClass("a", 10, 3), uniformClass("b", 20, 1)})
	if err != nil {
		t.Fatal(err)
	}
	if m.TotalPages() != 30 {
		t.Errorf("TotalPages = %d", m.TotalPages())
	}
}

func TestCacheHoldsEverything(t *testing.T) {
	m, _ := NewModel([]Class{uniformClass("a", 50, 1)})
	rates := m.MissRates(50)
	if rates[0] != 0 {
		t.Errorf("full-capacity miss rate = %v", rates[0])
	}
	if m.OverallMissRate(100) != 0 {
		t.Error("oversized cache should never miss")
	}
}

func TestUniformIRMMatchesTheory(t *testing.T) {
	// For a uniform IRM over N pages and capacity C, Che's approximation
	// gives hit ratio ~ C/N.
	const n, c = 1000, 250
	m, _ := NewModel([]Class{uniformClass("u", n, 1)})
	miss := m.OverallMissRate(c)
	want := 1 - float64(c)/n
	if math.Abs(miss-want) > 0.01 {
		t.Errorf("uniform miss rate = %v, theory says %v", miss, want)
	}
}

func TestMonotonicity(t *testing.T) {
	pmf := nurand.ExactPMF(nurand.Params{A: 255, X: 1, Y: 2000})
	// Page-level class: 13 tuples/page.
	pagePMF := make([]float64, (len(pmf)+12)/13)
	for i, p := range pmf {
		pagePMF[i/13] += p
	}
	m, _ := NewModel([]Class{{Name: "s", Weight: 1, PagePMF: pagePMF, Copies: 1}})
	prev := 1.1
	for c := int64(1); c < int64(len(pagePMF)); c += 7 {
		miss := m.OverallMissRate(c)
		if miss > prev+1e-9 {
			t.Fatalf("miss rate rose with capacity at %d", c)
		}
		prev = miss
	}
}

func TestCopiesEquivalentToExplicit(t *testing.T) {
	// Two copies of a class must behave exactly like two explicit
	// classes with half the weight each.
	pmf := []float64{0.5, 0.3, 0.2}
	withCopies, _ := NewModel([]Class{{Name: "c", Weight: 1, PagePMF: pmf, Copies: 2}})
	explicit, _ := NewModel([]Class{
		{Name: "c1", Weight: 0.5, PagePMF: pmf, Copies: 1},
		{Name: "c2", Weight: 0.5, PagePMF: pmf, Copies: 1},
	})
	for _, c := range []int64{1, 2, 3, 4, 5} {
		a := withCopies.OverallMissRate(c)
		b := explicit.OverallMissRate(c)
		if math.Abs(a-b) > 1e-9 {
			t.Errorf("capacity %d: copies %v != explicit %v", c, a, b)
		}
	}
}

// TestCheTracksSimulatedIRM validates the approximation against a direct
// LRU simulation of an actual IRM stream.
func TestCheTracksSimulatedIRM(t *testing.T) {
	pmf := nurand.ExactPMF(nurand.Params{A: 1023, X: 1, Y: 3000})
	pagePMF := make([]float64, (len(pmf)+5)/6)
	for i, p := range pmf {
		pagePMF[i/6] += p
	}
	m, _ := NewModel([]Class{{Name: "cust", Weight: 1, PagePMF: pagePMF, Copies: 1}})

	// Simulate the IRM stream directly.
	cum := make([]float64, len(pagePMF))
	var c float64
	for i, p := range pagePMF {
		c += p
		cum[i] = c
	}
	draw := func(r *rng.RNG) int {
		u := r.Float64()
		lo, hi := 0, len(cum)-1
		for lo < hi {
			mid := (lo + hi) / 2
			if cum[mid] < u {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		return lo
	}
	for _, capacity := range []int64{50, 150, 300} {
		lru := buffer.NewLRU(capacity)
		r := rng.New(42)
		var misses, n int64
		for i := 0; i < 400000; i++ {
			if !lru.Access(core.MakePageID(core.Customer, int64(draw(r)))) {
				misses++
			}
			n++
		}
		sim := float64(misses) / float64(n)
		che := m.OverallMissRate(capacity)
		if math.Abs(sim-che) > 0.02 {
			t.Errorf("capacity %d: simulated %v vs Che %v", capacity, sim, che)
		}
	}
}

func TestCharacteristicTimeProperties(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		pmf := make([]float64, 100)
		var sum float64
		for i := range pmf {
			pmf[i] = r.Float64() + 0.01
			sum += pmf[i]
		}
		for i := range pmf {
			pmf[i] /= sum
		}
		m, err := NewModel([]Class{{Name: "x", Weight: 1, PagePMF: pmf, Copies: 1}})
		if err != nil {
			return false
		}
		// T_C increases with capacity; occupancy(T_C) == capacity.
		prev := 0.0
		for _, cap := range []int64{10, 30, 60, 90} {
			tc := m.CharacteristicTime(cap)
			if tc <= prev {
				return false
			}
			if math.Abs(m.occupancy(tc)-float64(cap)) > 0.01 {
				return false
			}
			prev = tc
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
