package analytic

import (
	"math"
	"testing"
)

// TestBoundaryCapacities pins the model's behaviour at the degenerate
// buffer sizes the sweeps never visit: no cache at all, a cache holding
// the whole universe (and beyond), and one page short of it.
func TestBoundaryCapacities(t *testing.T) {
	m, err := NewModel([]Class{uniformClass("a", 40, 3), uniformClass("b", 10, 1)})
	if err != nil {
		t.Fatal(err)
	}
	total := m.TotalPages() // 50

	cases := []struct {
		name     string
		capacity int64
		wantT    func(float64) bool
		wantMiss float64 // exact per-class and overall miss rate, NaN = skip
	}{
		{"zero", 0, func(tc float64) bool { return tc == 0 }, 1},
		{"negative", -5, func(tc float64) bool { return tc == 0 }, 1},
		{"universe", total, func(tc float64) bool { return math.IsInf(tc, 1) }, 0},
		{"beyond-universe", total * 10, func(tc float64) bool { return math.IsInf(tc, 1) }, 0},
		{"one-short", total - 1, func(tc float64) bool {
			return tc > 0 && !math.IsInf(tc, 1)
		}, math.NaN()},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ct := m.CharacteristicTime(tc.capacity)
			if !tc.wantT(ct) {
				t.Fatalf("CharacteristicTime(%d) = %v", tc.capacity, ct)
			}
			rates := m.MissRates(tc.capacity)
			overall := m.OverallMissRate(tc.capacity)
			if math.IsNaN(tc.wantMiss) {
				// One page short of everything: strictly positive but tiny.
				if overall <= 0 || overall >= 0.5 {
					t.Errorf("near-full overall miss = %v, want small positive", overall)
				}
				return
			}
			for i, r := range rates {
				if math.Abs(r-tc.wantMiss) > 1e-12 {
					t.Errorf("class %d miss at capacity %d = %v, want %v",
						i, tc.capacity, r, tc.wantMiss)
				}
			}
			if math.Abs(overall-tc.wantMiss) > 1e-12 {
				t.Errorf("overall miss at capacity %d = %v, want %v",
					tc.capacity, overall, tc.wantMiss)
			}
		})
	}
}

// TestBoundaryMonotoneAcrossFullRange sweeps capacity 0..TotalPages and
// requires a non-increasing miss rate that starts at exactly 1 and ends at
// exactly 0 — the two boundary identities bracketing the monotonicity the
// experiments depend on.
func TestBoundaryMonotoneAcrossFullRange(t *testing.T) {
	m, err := NewModel([]Class{uniformClass("u", 64, 1)})
	if err != nil {
		t.Fatal(err)
	}
	prev := math.Inf(1)
	for c := int64(0); c <= m.TotalPages(); c += 8 {
		miss := m.OverallMissRate(c)
		if miss > prev+1e-12 {
			t.Fatalf("miss rate increased from %v to %v at capacity %d", prev, miss, c)
		}
		prev = miss
	}
	if first := m.OverallMissRate(0); first != 1 {
		t.Errorf("miss at zero capacity = %v, want exactly 1", first)
	}
	if last := m.OverallMissRate(m.TotalPages()); last != 0 {
		t.Errorf("miss at full capacity = %v, want exactly 0", last)
	}
}
