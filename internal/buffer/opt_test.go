package buffer

import (
	"testing"
	"testing/quick"

	"tpccmodel/internal/core"
	"tpccmodel/internal/rng"
)

func TestOPTKnownSequence(t *testing.T) {
	// Classic Belady example: trace a b c a b d a b c d, capacity 3.
	// OPT misses: a, b, c (cold), d (evicts c, next-used farthest), c
	// (evicts a or b — both never used again... a and b ARE used before
	// c? positions: after d at index 5, remaining = a b c d; c next at 8,
	// d at 9; evicting d or c... Work it through with the implementation
	// and assert the total optimal miss count, which is 6.
	ids := []int64{0, 1, 2, 0, 1, 3, 0, 1, 2, 3}
	trace := make([]core.PageID, len(ids))
	for i, v := range ids {
		trace[i] = pid(v)
	}
	o := NewOPT(3, trace)
	misses := 0
	for _, p := range trace {
		if !o.Access(p) {
			misses++
		}
	}
	// Cold: 0,1,2. At index 5 (page 3): resident {0,1,2}, next uses
	// 0->6, 1->7, 2->8: evict 2. At index 8 (page 2): resident {0,1,3},
	// next uses: 0->end, 1->end, 3->9: evict 0 or 1. Index 9 (page 3):
	// hit. Total misses = 3 cold + page3 + page2 = 5.
	if misses != 5 {
		t.Errorf("OPT misses = %d, want 5", misses)
	}
}

// TestOPTNeverWorseThanLRU is the defining property: on any trace and any
// capacity, OPT's miss count is a lower bound.
func TestOPTNeverWorseThanLRU(t *testing.T) {
	f := func(seed uint64, capRaw uint8) bool {
		capacity := int64(capRaw%20) + 1
		r := rng.New(seed)
		trace := make([]core.PageID, 3000)
		for i := range trace {
			// Skewed page popularity.
			if r.Bernoulli(0.7) {
				trace[i] = pid(r.Int63n(10))
			} else {
				trace[i] = pid(10 + r.Int63n(90))
			}
		}
		opt := NewOPT(capacity, trace)
		lru := NewLRU(capacity)
		optMiss, lruMiss := 0, 0
		for _, p := range trace {
			if !opt.Access(p) {
				optMiss++
			}
			if !lru.Access(p) {
				lruMiss++
			}
		}
		return optMiss <= lruMiss
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestOPTDivergencePanics(t *testing.T) {
	o := NewOPT(2, []core.PageID{pid(1), pid(2)})
	o.Access(pid(1))
	defer func() {
		if recover() == nil {
			t.Error("diverging access should panic")
		}
	}()
	o.Access(pid(3))
}

func TestOPTResetReplays(t *testing.T) {
	trace := []core.PageID{pid(1), pid(2), pid(1), pid(3), pid(2)}
	o := NewOPT(2, trace)
	run := func() int {
		misses := 0
		for _, p := range trace {
			if !o.Access(p) {
				misses++
			}
		}
		return misses
	}
	first := run()
	o.Reset()
	if second := run(); second != first {
		t.Errorf("replay after Reset: %d misses vs %d", second, first)
	}
}
