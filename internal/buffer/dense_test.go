package buffer

import (
	"encoding/binary"
	"testing"
	"testing/quick"

	"tpccmodel/internal/rng"
)

// TestDenseMatchesMapStackSim is the oracle test: the dense simulator must
// agree with the map-based StackSim access for access on identical streams,
// across universes small (high reuse) and large (forces the map sim's
// 1024-slot tree to compact by distinct count), with enough accesses that
// both implementations compact their timestamp spaces mid-stream.
func TestDenseMatchesMapStackSim(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		universe := r.IntRange(1, 3000)
		oracle := NewStackSim()
		dense := NewDenseStackSim(universe)
		for i := 0; i < 20000; i++ {
			ord := r.Int63n(universe)
			want := oracle.Access(pid(ord))
			got := dense.Access(ord)
			if got != want {
				t.Logf("seed %d: access %d ord %d: dense %d, oracle %d",
					seed, i, ord, got, want)
				return false
			}
		}
		return oracle.Distinct() == dense.Distinct()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

// TestDenseForcedCompactions drives both simulators through many forced
// compactions: the dense sim is built with a tiny declared universe so its
// initial tree is small, then the stream touches ordinals far past it,
// exercising table growth and repeated compaction; distances must still
// match the oracle throughout.
func TestDenseForcedCompactions(t *testing.T) {
	r := rng.New(42)
	oracle := NewStackSim()
	dense := NewDenseStackSim(0) // everything grows from nothing
	const universe = 2500        // > the map sim's initial 1024 slots
	for i := 0; i < 60000; i++ {
		ord := r.Int63n(universe)
		want := oracle.Access(pid(ord))
		got := dense.Access(ord)
		if got != want {
			t.Fatalf("access %d ord %d: dense %d, oracle %d", i, ord, got, want)
		}
	}
	if oracle.Distinct() != dense.Distinct() {
		t.Fatalf("distinct: dense %d, oracle %d", dense.Distinct(), oracle.Distinct())
	}
	if dense.Universe() < universe {
		t.Fatalf("universe grew to %d, want >= %d", dense.Universe(), universe)
	}
}

// TestDenseSequentialSweeps pins the compaction arithmetic exactly (the
// dense analogue of TestStackSimCompactionMidStreamExact): after a full
// first-touch sweep of the universe, every second-sweep distance is exactly
// the universe size.
func TestDenseSequentialSweeps(t *testing.T) {
	const universe = 2000
	s := NewDenseStackSim(universe)
	for sweep := 0; sweep < 5; sweep++ {
		for ord := int64(0); ord < universe; ord++ {
			d := s.Access(ord)
			if sweep == 0 {
				if d != ColdDistance {
					t.Fatalf("sweep 0 ord %d: distance %d, want cold", ord, d)
				}
			} else if d != universe {
				t.Fatalf("sweep %d ord %d: distance %d, want %d", sweep, ord, d, universe)
			}
		}
	}
}

// FuzzDenseStackSim feeds arbitrary byte strings as access streams to both
// simulators and requires exact agreement. Each pair of bytes selects one
// ordinal; the declared universe is derived from the input too, so the
// fuzzer explores pre-sized, undersized, and empty tables.
func FuzzDenseStackSim(f *testing.F) {
	f.Add([]byte{0, 1, 0, 2, 0, 1, 0, 0}, uint16(4))
	f.Add([]byte{255, 255, 0, 0, 255, 255}, uint16(0))
	f.Add(make([]byte, 64), uint16(1))
	f.Fuzz(func(t *testing.T, data []byte, declared uint16) {
		oracle := NewStackSim()
		dense := NewDenseStackSim(int64(declared))
		for i := 0; i+1 < len(data); i += 2 {
			ord := int64(binary.LittleEndian.Uint16(data[i:]))
			want := oracle.Access(pid(ord))
			got := dense.Access(ord)
			if got != want {
				t.Fatalf("access %d ord %d: dense %d, oracle %d", i/2, ord, got, want)
			}
		}
		if oracle.Distinct() != dense.Distinct() {
			t.Fatalf("distinct: dense %d, oracle %d", dense.Distinct(), oracle.Distinct())
		}
	})
}

// TestMissRatesOneCumulativePass checks the satellite fix: MissRates must
// equal per-capacity MissRate calls exactly — finalized or not, sorted
// capacities or not, including out-of-range and negative capacities.
func TestMissRatesOneCumulativePass(t *testing.T) {
	r := rng.New(9)
	s := NewStackSim()
	var m MissCurve
	for i := 0; i < 30000; i++ {
		m.Add(s.Access(pid(r.Int63n(500))))
	}
	caps := []int64{700, 1, 33, 0, 499, 12, 500, 501, -3, 250, 33}
	check := func(stage string) {
		got := m.MissRates(caps)
		for i, c := range caps {
			if want := m.MissRate(c); got[i] != want {
				t.Fatalf("%s: MissRates[%d] (cap %d) = %v, want %v", stage, i, c, got[i], want)
			}
		}
	}
	check("unfinalized")
	if m.Finalized() {
		t.Fatal("curve finalized before Finalize call")
	}
	m.Finalize()
	if !m.Finalized() {
		t.Fatal("Finalize did not mark the curve finalized")
	}
	check("finalized")

	// Finalized fast path must agree with the scan it replaced.
	for c := int64(-1); c <= 520; c++ {
		fast := m.MissRate(c)
		var slow MissCurve
		slow.counts = append([]int64(nil), m.counts...)
		slow.cold, slow.accesses = m.cold, m.accesses
		if want := slow.MissRate(c); fast != want {
			t.Fatalf("finalized MissRate(%d) = %v, scan says %v", c, fast, want)
		}
	}

	// Add and Merge must invalidate the prefix sums.
	m.Add(3)
	if m.Finalized() {
		t.Fatal("Add left the curve finalized")
	}
	check("after add")
	m.Finalize()
	var o MissCurve
	o.Add(ColdDistance)
	o.Add(700)
	m.Merge(&o)
	if m.Finalized() {
		t.Fatal("Merge left the curve finalized")
	}
	check("after merge")
}

// TestDenseEmptyAndSingle covers degenerate streams.
func TestDenseEmptyAndSingle(t *testing.T) {
	s := NewDenseStackSim(10)
	if s.Distinct() != 0 {
		t.Fatal("fresh sim has distinct pages")
	}
	if d := s.Access(7); d != ColdDistance {
		t.Fatalf("first access: %d", d)
	}
	for i := 0; i < 5000; i++ {
		if d := s.Access(7); d != 1 {
			t.Fatalf("repeat access %d: distance %d, want 1", i, d)
		}
	}
	if s.Distinct() != 1 {
		t.Fatalf("distinct = %d, want 1", s.Distinct())
	}
}
