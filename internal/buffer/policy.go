// Package buffer implements database buffer-pool replacement policies and a
// single-pass LRU stack-distance simulator.
//
// The paper's buffer model (Section 4) assumes a single shared pool managed
// by LRU and measures per-relation miss rates as a function of pool size.
// LRU's inclusion property means one pass that records each access's stack
// distance yields the exact miss rate for every pool size simultaneously;
// StackSim implements that with a Fenwick tree over access timestamps.
//
// The paper hypothesizes that "more sophisticated replacement policies
// could result in an even larger difference between optimized packing of
// tuples and non-optimized packing"; the additional policies here (CLOCK,
// LFU, 2Q, segmented LRU, FIFO) exist to test that hypothesis as an
// ablation.
package buffer

import (
	"fmt"

	"tpccmodel/internal/core"
)

// Policy is a fixed-capacity page-replacement policy. Access reports
// whether the page was resident (hit) and makes it resident, evicting as
// needed.
type Policy interface {
	// Name identifies the policy for reports.
	Name() string
	// Capacity returns the pool capacity in pages.
	Capacity() int64
	// Access touches a page, returning true on a hit.
	Access(p core.PageID) bool
	// Len returns the number of resident pages.
	Len() int64
	// Reset empties the pool.
	Reset()
}

// NewPolicy constructs a policy by name: "lru", "fifo", "clock", "lfu",
// "2q", or "slru".
func NewPolicy(name string, capacity int64) (Policy, error) {
	switch name {
	case "lru":
		return NewLRU(capacity), nil
	case "fifo":
		return NewFIFO(capacity), nil
	case "clock":
		return NewClock(capacity), nil
	case "lfu":
		return NewLFU(capacity), nil
	case "2q":
		return NewTwoQ(capacity), nil
	case "slru":
		return NewSLRU(capacity), nil
	default:
		return nil, fmt.Errorf("buffer: unknown policy %q", name)
	}
}

// PolicyNames lists the available policy names.
func PolicyNames() []string { return []string{"lru", "fifo", "clock", "lfu", "2q", "slru"} }

// list is an intrusive doubly-linked list over slice-backed nodes, used by
// the LRU-family policies to avoid per-access allocation.
type node struct {
	page       core.PageID
	prev, next int32
}

const nilIdx = int32(-1)

type list struct {
	nodes      []node
	head, tail int32
	free       int32
	size       int64
}

func newList(capacity int64) *list {
	l := &list{head: nilIdx, tail: nilIdx, free: nilIdx}
	l.nodes = make([]node, 0, capacity)
	return l
}

func (l *list) alloc(p core.PageID) int32 {
	var idx int32
	if l.free != nilIdx {
		idx = l.free
		l.free = l.nodes[idx].next
	} else {
		l.nodes = append(l.nodes, node{})
		idx = int32(len(l.nodes) - 1)
	}
	l.nodes[idx] = node{page: p, prev: nilIdx, next: nilIdx}
	return idx
}

func (l *list) pushFront(idx int32) {
	n := &l.nodes[idx]
	n.prev = nilIdx
	n.next = l.head
	if l.head != nilIdx {
		l.nodes[l.head].prev = idx
	}
	l.head = idx
	if l.tail == nilIdx {
		l.tail = idx
	}
	l.size++
}

func (l *list) remove(idx int32) {
	n := &l.nodes[idx]
	if n.prev != nilIdx {
		l.nodes[n.prev].next = n.next
	} else {
		l.head = n.next
	}
	if n.next != nilIdx {
		l.nodes[n.next].prev = n.prev
	} else {
		l.tail = n.prev
	}
	l.size--
}

func (l *list) release(idx int32) {
	l.nodes[idx].next = l.free
	l.free = idx
}

func (l *list) back() int32 { return l.tail }

// LRU is the paper's least-recently-used policy.
type LRU struct {
	capacity int64
	idx      map[core.PageID]int32
	l        *list
}

// NewLRU returns an LRU pool holding capacity pages (must be positive).
func NewLRU(capacity int64) *LRU {
	if capacity <= 0 {
		panic("buffer: capacity must be positive")
	}
	return &LRU{
		capacity: capacity,
		idx:      make(map[core.PageID]int32, capacity),
		l:        newList(capacity),
	}
}

// Name implements Policy.
func (c *LRU) Name() string { return "lru" }

// Capacity implements Policy.
func (c *LRU) Capacity() int64 { return c.capacity }

// Len implements Policy.
func (c *LRU) Len() int64 { return c.l.size }

// Reset implements Policy.
func (c *LRU) Reset() {
	c.idx = make(map[core.PageID]int32, c.capacity)
	c.l = newList(c.capacity)
}

// Access implements Policy.
func (c *LRU) Access(p core.PageID) bool {
	if idx, ok := c.idx[p]; ok {
		c.l.remove(idx)
		c.l.pushFront(idx)
		return true
	}
	if c.l.size >= c.capacity {
		victim := c.l.back()
		vp := c.l.nodes[victim].page
		c.l.remove(victim)
		c.l.release(victim)
		delete(c.idx, vp)
	}
	idx := c.l.alloc(p)
	c.l.pushFront(idx)
	c.idx[p] = idx
	return false
}

// FIFO evicts in insertion order, ignoring recency of use.
type FIFO struct {
	capacity int64
	idx      map[core.PageID]int32
	l        *list
}

// NewFIFO returns a FIFO pool holding capacity pages.
func NewFIFO(capacity int64) *FIFO {
	if capacity <= 0 {
		panic("buffer: capacity must be positive")
	}
	return &FIFO{
		capacity: capacity,
		idx:      make(map[core.PageID]int32, capacity),
		l:        newList(capacity),
	}
}

// Name implements Policy.
func (c *FIFO) Name() string { return "fifo" }

// Capacity implements Policy.
func (c *FIFO) Capacity() int64 { return c.capacity }

// Len implements Policy.
func (c *FIFO) Len() int64 { return c.l.size }

// Reset implements Policy.
func (c *FIFO) Reset() {
	c.idx = make(map[core.PageID]int32, c.capacity)
	c.l = newList(c.capacity)
}

// Access implements Policy.
func (c *FIFO) Access(p core.PageID) bool {
	if _, ok := c.idx[p]; ok {
		return true
	}
	if c.l.size >= c.capacity {
		victim := c.l.back()
		vp := c.l.nodes[victim].page
		c.l.remove(victim)
		c.l.release(victim)
		delete(c.idx, vp)
	}
	idx := c.l.alloc(p)
	c.l.pushFront(idx)
	c.idx[p] = idx
	return false
}

// Clock is the second-chance approximation of LRU.
type Clock struct {
	capacity int64
	idx      map[core.PageID]int
	pages    []core.PageID
	ref      []bool
	hand     int
}

// NewClock returns a CLOCK pool holding capacity pages.
func NewClock(capacity int64) *Clock {
	if capacity <= 0 {
		panic("buffer: capacity must be positive")
	}
	return &Clock{
		capacity: capacity,
		idx:      make(map[core.PageID]int, capacity),
		pages:    make([]core.PageID, 0, capacity),
		ref:      make([]bool, 0, capacity),
	}
}

// Name implements Policy.
func (c *Clock) Name() string { return "clock" }

// Capacity implements Policy.
func (c *Clock) Capacity() int64 { return c.capacity }

// Len implements Policy.
func (c *Clock) Len() int64 { return int64(len(c.pages)) }

// Reset implements Policy.
func (c *Clock) Reset() {
	c.idx = make(map[core.PageID]int, c.capacity)
	c.pages = c.pages[:0]
	c.ref = c.ref[:0]
	c.hand = 0
}

// Access implements Policy.
func (c *Clock) Access(p core.PageID) bool {
	if i, ok := c.idx[p]; ok {
		c.ref[i] = true
		return true
	}
	if int64(len(c.pages)) < c.capacity {
		c.pages = append(c.pages, p)
		c.ref = append(c.ref, false)
		c.idx[p] = len(c.pages) - 1
		return false
	}
	for c.ref[c.hand] {
		c.ref[c.hand] = false
		c.hand = (c.hand + 1) % len(c.pages)
	}
	delete(c.idx, c.pages[c.hand])
	c.pages[c.hand] = p
	c.ref[c.hand] = false
	c.idx[p] = c.hand
	c.hand = (c.hand + 1) % len(c.pages)
	return false
}
