package buffer

import (
	"testing"
	"testing/quick"

	"tpccmodel/internal/core"
	"tpccmodel/internal/rng"
)

func pid(n int64) core.PageID { return core.MakePageID(core.Stock, n) }

func TestLRUBasicEviction(t *testing.T) {
	c := NewLRU(2)
	if c.Access(pid(1)) {
		t.Error("first access must miss")
	}
	if c.Access(pid(2)) {
		t.Error("first access must miss")
	}
	if !c.Access(pid(1)) {
		t.Error("page 1 should be resident")
	}
	// Insert 3: evicts LRU page 2 (1 was just touched).
	if c.Access(pid(3)) {
		t.Error("page 3 is new")
	}
	if c.Access(pid(2)) {
		t.Error("page 2 should have been evicted")
	}
	if c.Len() != 2 {
		t.Errorf("Len = %d, want 2", c.Len())
	}
}

func TestLRURecencyOrder(t *testing.T) {
	c := NewLRU(3)
	for _, p := range []int64{1, 2, 3} {
		c.Access(pid(p))
	}
	c.Access(pid(1)) // order now 1,3,2 (MRU first)
	c.Access(pid(4)) // evicts 2
	if c.Access(pid(2)) {
		t.Error("2 should be evicted")
	}
	// Accessing 2 evicts 3 (order was 2-miss-inserted,4,1,3).
	if !c.Access(pid(4)) || !c.Access(pid(1)) {
		t.Error("4 and 1 should survive")
	}
}

func TestFIFOIgnoresRecency(t *testing.T) {
	c := NewFIFO(2)
	c.Access(pid(1))
	c.Access(pid(2))
	c.Access(pid(1)) // hit, but FIFO order unchanged
	c.Access(pid(3)) // evicts 1 (oldest insertion)
	if c.Access(pid(1)) {
		t.Error("FIFO should have evicted 1 despite its recent hit")
	}
}

func TestClockApproximatesLRU(t *testing.T) {
	c := NewClock(2)
	c.Access(pid(1))
	c.Access(pid(2))
	c.Access(pid(1)) // sets reference bit on 1
	c.Access(pid(3)) // hand at 1: ref set -> clear, advance; evicts 2
	if !c.Access(pid(1)) {
		t.Error("clock should keep referenced page 1")
	}
	if c.Access(pid(2)) {
		t.Error("clock should have evicted unreferenced page 2")
	}
}

func TestLFUKeepsFrequentPages(t *testing.T) {
	c := NewLFU(2)
	c.Access(pid(1))
	c.Access(pid(1))
	c.Access(pid(1)) // freq 3
	c.Access(pid(2)) // freq 1
	c.Access(pid(3)) // evicts 2 (lowest freq)
	if !c.Access(pid(1)) {
		t.Error("LFU must keep the frequent page")
	}
	if c.Access(pid(2)) {
		t.Error("LFU should have evicted page 2")
	}
}

func TestTwoQPromotion(t *testing.T) {
	c := NewTwoQ(8) // a1 = 2, am = 6
	c.Access(pid(1))
	if !c.Access(pid(1)) {
		t.Error("second touch should hit in probation")
	}
	// Scan many cold pages; promoted page 1 must survive in Am.
	for i := int64(100); i < 120; i++ {
		c.Access(pid(i))
	}
	if !c.Access(pid(1)) {
		t.Error("2Q should be scan-resistant: promoted page evicted by scan")
	}
}

func TestSLRUDemotion(t *testing.T) {
	c := NewSLRU(4) // probation 1, protected 3
	c.Access(pid(1))
	c.Access(pid(1)) // promote 1
	c.Access(pid(2))
	c.Access(pid(2)) // promote 2
	c.Access(pid(3))
	c.Access(pid(3)) // promote 3; protected {3,2,1}
	c.Access(pid(4))
	c.Access(pid(4)) // promote 4; protected full -> demote 1 to probation
	if !c.Access(pid(1)) {
		t.Error("demoted page should land in probation, not be dropped")
	}
}

func TestPoliciesNeverExceedCapacity(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		caps := []int64{1, 3, 17}
		for _, capacity := range caps {
			for _, name := range PolicyNames() {
				p, err := NewPolicy(name, capacity)
				if err != nil {
					return false
				}
				for i := 0; i < 500; i++ {
					p.Access(pid(r.Int63n(50)))
					if p.Len() > capacity {
						t.Logf("%s exceeded capacity %d: %d", name, capacity, p.Len())
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

func TestPolicyResets(t *testing.T) {
	for _, name := range PolicyNames() {
		p, err := NewPolicy(name, 4)
		if err != nil {
			t.Fatal(err)
		}
		for i := int64(0); i < 10; i++ {
			p.Access(pid(i))
		}
		p.Reset()
		if p.Len() != 0 {
			t.Errorf("%s: Len after Reset = %d", name, p.Len())
		}
		if p.Access(pid(3)) {
			t.Errorf("%s: access after Reset should miss", name)
		}
	}
}

func TestNewPolicyUnknown(t *testing.T) {
	if _, err := NewPolicy("belady", 4); err == nil {
		t.Error("unknown policy should error")
	}
}

func TestPolicySmallCapacityOne(t *testing.T) {
	for _, name := range PolicyNames() {
		p, _ := NewPolicy(name, 1)
		p.Access(pid(1))
		if !p.Access(pid(1)) {
			t.Errorf("%s: immediate re-access at capacity 1 should hit", name)
		}
		p.Access(pid(2))
		if p.Len() > 1 {
			t.Errorf("%s: capacity 1 exceeded", name)
		}
	}
}

// TestLRUHitRateDominatesFIFOOnSkew checks the expected qualitative
// ordering on a skewed reference stream.
func TestLRUHitRateDominatesFIFOOnSkew(t *testing.T) {
	run := func(p Policy) float64 {
		r := rng.New(42)
		hits, n := 0, 20000
		for i := 0; i < n; i++ {
			// 80/20 skew over 100 pages.
			var page int64
			if r.Bernoulli(0.8) {
				page = r.Int63n(20)
			} else {
				page = 20 + r.Int63n(80)
			}
			if p.Access(pid(page)) {
				hits++
			}
		}
		return float64(hits) / float64(n)
	}
	lru := run(NewLRU(30))
	fifo := run(NewFIFO(30))
	if lru <= fifo {
		t.Errorf("LRU hit rate %.3f should exceed FIFO %.3f on skewed stream", lru, fifo)
	}
}
