package buffer

import (
	"sort"

	"tpccmodel/internal/core"
)

// ColdDistance is returned by StackSim.Access for a page's first reference,
// which misses at every finite buffer size.
const ColdDistance = int64(-1)

// StackSim computes the LRU stack distance of every access in a single
// pass. The stack distance is the 1-based position of the page in the LRU
// stack at the moment of access — equivalently, the number of distinct
// pages referenced since the previous reference to the same page, inclusive.
// By LRU's inclusion property, an access hits in a pool of capacity C iff
// its stack distance is at most C, so one pass yields the exact miss rate
// for every capacity simultaneously (the paper's Figure 8 sweeps buffer
// sizes; we get all of them from one simulation).
//
// The implementation is the classic Fenwick-tree-over-timestamps algorithm:
// a bit is set at the last-access time of every distinct page; the distance
// of an access is one plus the number of set bits after the page's previous
// access time. The timestamp space is compacted in O(distinct) whenever it
// fills, giving amortized O(log n) per access.
type StackSim struct {
	last map[core.PageID]int64 // page -> last access timestamp (1-based)
	tree []int64               // Fenwick tree over timestamps
	time int64                 // current timestamp (1-based, <= len(tree)-1)
}

// NewStackSim returns an empty stack-distance simulator.
func NewStackSim() *StackSim {
	return &StackSim{
		last: make(map[core.PageID]int64),
		tree: make([]int64, 1024),
	}
}

// Distinct returns the number of distinct pages seen so far.
func (s *StackSim) Distinct() int64 { return int64(len(s.last)) }

func (s *StackSim) add(i, delta int64) {
	for ; i < int64(len(s.tree)); i += i & -i {
		s.tree[i] += delta
	}
}

func (s *StackSim) sum(i int64) int64 {
	var t int64
	for ; i > 0; i -= i & -i {
		t += s.tree[i]
	}
	return t
}

// compact renumbers timestamps 1..distinct preserving order, and resizes
// the Fenwick tree to hold at least twice the distinct page count. It runs
// when the timestamp space fills, so its amortized cost per access is
// O(log distinct).
func (s *StackSim) compact() {
	type pt struct {
		page core.PageID
		t    int64
	}
	pts := make([]pt, 0, len(s.last))
	for p, t := range s.last {
		pts = append(pts, pt{p, t})
	}
	sort.Slice(pts, func(i, j int) bool { return pts[i].t < pts[j].t })
	size := int64(2*len(pts) + 1024)
	s.tree = make([]int64, size)
	for i := range pts {
		nt := int64(i + 1)
		s.last[pts[i].page] = nt
		s.add(nt, 1)
	}
	s.time = int64(len(pts))
}

// Access records a reference to page p and returns its LRU stack distance,
// or ColdDistance for a first reference.
func (s *StackSim) Access(p core.PageID) int64 {
	if s.time+1 >= int64(len(s.tree)) {
		s.compact()
	}
	s.time++
	t := s.time
	prev, seen := s.last[p]
	var dist int64
	if seen {
		// Distinct pages touched after prev: set bits in (prev, t).
		dist = s.sum(t-1) - s.sum(prev) + 1
		s.add(prev, -1)
	} else {
		dist = ColdDistance
	}
	s.add(t, 1)
	s.last[p] = t
	return dist
}

// MissCurve accumulates stack distances into an exact miss-rate-vs-capacity
// curve. Distances are counted with bucket width 1 up to the largest
// distance seen; cold misses are tracked separately (they miss at every
// capacity).
//
// After accumulation, Finalize converts the counts to a prefix-sum form so
// MissRate answers in O(1) and MissRates in one cumulative pass; a finalized
// curve is safe for concurrent reads. Add and Merge drop the prefix sums, so
// accumulation can resume after a premature Finalize.
type MissCurve struct {
	counts   []int64 // counts[d-1] = number of accesses with distance d
	cold     int64
	accesses int64
	// cumHits[d] = accesses with finite distance <= d (hits at capacity d);
	// nil until Finalize, invalidated by Add and Merge.
	cumHits []int64
}

// Add records one access's stack distance (from StackSim.Access).
func (m *MissCurve) Add(dist int64) {
	m.cumHits = nil
	m.accesses++
	if dist == ColdDistance {
		m.cold++
		return
	}
	if dist <= 0 {
		panic("buffer: stack distance must be positive or ColdDistance")
	}
	for int64(len(m.counts)) < dist {
		m.counts = append(m.counts, 0)
	}
	m.counts[dist-1]++
}

// Finalize computes the cumulative-hits prefix sums. Call it once after the
// last Add/Merge; reads are then O(1) per capacity and race-free.
func (m *MissCurve) Finalize() { m.cumHits = m.prefixHits() }

// Finalized reports whether the prefix-sum form is current.
func (m *MissCurve) Finalized() bool { return m.cumHits != nil }

// prefixHits builds cum[d] = hits at capacity d (cum[0] = 0).
func (m *MissCurve) prefixHits() []int64 {
	cum := make([]int64, len(m.counts)+1)
	for d, c := range m.counts {
		cum[d+1] = cum[d] + c
	}
	return cum
}

// Accesses returns the number of recorded accesses.
func (m *MissCurve) Accesses() int64 { return m.accesses }

// ColdMisses returns the number of first references recorded.
func (m *MissCurve) ColdMisses() int64 { return m.cold }

// MaxDistance returns the largest finite stack distance recorded.
func (m *MissCurve) MaxDistance() int64 { return int64(len(m.counts)) }

// MissRate returns the exact LRU miss rate for a pool of the given capacity
// in pages: the fraction of accesses whose stack distance exceeds capacity
// (cold misses always miss). On a finalized curve this is an O(1) prefix-sum
// lookup; otherwise it scans the counts up to capacity.
func (m *MissCurve) MissRate(capacity int64) float64 {
	if m.accesses == 0 {
		return 0
	}
	if capacity < 0 {
		capacity = 0
	}
	lim := capacity
	if lim > int64(len(m.counts)) {
		lim = int64(len(m.counts))
	}
	var hits int64
	if m.cumHits != nil {
		hits = m.cumHits[lim]
	} else {
		for d := int64(0); d < lim; d++ {
			hits += m.counts[d]
		}
	}
	return 1 - float64(hits)/float64(m.accesses)
}

// MissRates evaluates the curve at several capacities at once in one
// cumulative pass over the counts (capacities need not be sorted): the
// finalized prefix sums — computed on the fly when the curve is not yet
// finalized — answer each capacity in O(1), so the whole call is
// O(distances + capacities) rather than O(distances x capacities).
func (m *MissCurve) MissRates(capacities []int64) []float64 {
	cum := m.cumHits
	if cum == nil {
		cum = m.prefixHits()
	}
	out := make([]float64, len(capacities))
	if m.accesses == 0 {
		return out
	}
	for i, c := range capacities {
		if c < 0 {
			c = 0
		}
		if c > int64(len(cum))-1 {
			c = int64(len(cum)) - 1
		}
		out[i] = 1 - float64(cum[c])/float64(m.accesses)
	}
	return out
}

// Merge adds another curve's observations into m.
func (m *MissCurve) Merge(o *MissCurve) {
	m.cumHits = nil
	for int64(len(m.counts)) < int64(len(o.counts)) {
		m.counts = append(m.counts, 0)
	}
	for i, c := range o.counts {
		m.counts[i] += c
	}
	m.cold += o.cold
	m.accesses += o.accesses
}
