package buffer

import (
	"testing"

	"tpccmodel/internal/rng"
)

// benchStream builds a skewed reference stream over a TPC-C-like page
// universe: 80% of accesses go to the hottest 20% of pages, approximating
// the NURand page-level skew that dominates the real kernel's input.
func benchStream(n int, universe int64) []int64 {
	r := rng.New(1993)
	hot := universe / 5
	if hot < 1 {
		hot = 1
	}
	out := make([]int64, n)
	for i := range out {
		if r.Bernoulli(0.8) {
			out[i] = r.Int63n(hot)
		} else {
			out[i] = hot + r.Int63n(universe-hot)
		}
	}
	return out
}

// BenchmarkStackSim is the micro benchmark of the per-access hot path: the
// map-based oracle versus the dense-table kernel on an identical stream.
// BENCH_kernel.json records the measured ratio on the target machine.
func BenchmarkStackSim(b *testing.B) {
	const universe = 50_000
	stream := benchStream(1<<18, universe)

	b.Run("map", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			s := NewStackSim()
			var m MissCurve
			for _, ord := range stream {
				m.Add(s.Access(pid(ord)))
			}
		}
	})
	b.Run("dense", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			s := NewDenseStackSim(universe)
			var m MissCurve
			for _, ord := range stream {
				m.Add(s.Access(ord))
			}
		}
	})
}
