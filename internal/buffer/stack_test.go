package buffer

import (
	"testing"
	"testing/quick"

	"tpccmodel/internal/core"
	"tpccmodel/internal/rng"
)

func TestStackDistanceKnownSequence(t *testing.T) {
	s := NewStackSim()
	// Classic example: a b c b a -> distances inf inf inf 1(b? no)...
	// Reference stream and expected distances:
	//   a: cold
	//   b: cold
	//   c: cold
	//   b: distinct since prior b = {c, b} -> 2
	//   a: distinct since prior a = {b, c, a} -> 3
	//   a: 1
	seq := []struct {
		page int64
		want int64
	}{
		{1, ColdDistance},
		{2, ColdDistance},
		{3, ColdDistance},
		{2, 2},
		{1, 3},
		{1, 1},
	}
	for i, c := range seq {
		if got := s.Access(pid(c.page)); got != c.want {
			t.Fatalf("access %d (page %d): distance %d, want %d", i, c.page, got, c.want)
		}
	}
	if s.Distinct() != 3 {
		t.Errorf("Distinct = %d, want 3", s.Distinct())
	}
}

func TestStackDistanceRepeats(t *testing.T) {
	s := NewStackSim()
	s.Access(pid(7))
	for i := 0; i < 100; i++ {
		if got := s.Access(pid(7)); got != 1 {
			t.Fatalf("repeated access distance = %d, want 1", got)
		}
	}
}

func TestStackSimCompaction(t *testing.T) {
	// Force many compactions with a small page set and long stream.
	s := NewStackSim()
	r := rng.New(5)
	lru := NewLRU(10)
	for i := 0; i < 50000; i++ {
		p := pid(r.Int63n(40))
		d := s.Access(p)
		hit := lru.Access(p)
		wantHit := d != ColdDistance && d <= 10
		if hit != wantHit {
			t.Fatalf("access %d: stack distance %d disagrees with direct LRU (hit=%v)", i, d, hit)
		}
	}
}

// TestStackSimMatchesLRUEverywhere is the central inclusion-property test:
// for random streams and several capacities, the stack-distance predicate
// (distance <= C) must agree access-by-access with a direct LRU pool of
// capacity C.
func TestStackSimMatchesLRUEverywhere(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		caps := []int64{1, 2, 7, 33}
		lrus := make([]*LRU, len(caps))
		for i, c := range caps {
			lrus[i] = NewLRU(c)
		}
		s := NewStackSim()
		for i := 0; i < 3000; i++ {
			// Mix relations to exercise PageID encoding.
			rel := core.Relation(r.Int63n(3))
			p := core.MakePageID(rel, r.Int63n(60))
			d := s.Access(p)
			for j, c := range caps {
				hit := lrus[j].Access(p)
				wantHit := d != ColdDistance && d <= c
				if hit != wantHit {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

func TestMissCurve(t *testing.T) {
	var m MissCurve
	m.Add(ColdDistance)
	m.Add(1)
	m.Add(2)
	m.Add(5)
	if m.Accesses() != 4 || m.ColdMisses() != 1 {
		t.Fatalf("accesses=%d cold=%d", m.Accesses(), m.ColdMisses())
	}
	cases := []struct {
		capacity int64
		want     float64
	}{
		{0, 1.0},
		{1, 0.75}, // only the distance-1 access hits
		{2, 0.5},  // distances 1,2 hit
		{4, 0.5},  // distance 5 still misses
		{5, 0.25}, // only cold misses
		{100, 0.25},
	}
	for _, c := range cases {
		if got := m.MissRate(c.capacity); got != c.want {
			t.Errorf("MissRate(%d) = %v, want %v", c.capacity, got, c.want)
		}
	}
}

func TestMissCurveMonotone(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		s := NewStackSim()
		var m MissCurve
		for i := 0; i < 5000; i++ {
			m.Add(s.Access(pid(r.Int63n(200))))
		}
		prev := 1.1
		for c := int64(0); c <= 220; c += 5 {
			mr := m.MissRate(c)
			if mr > prev+1e-12 || mr < 0 || mr > 1 {
				return false
			}
			prev = mr
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

func TestMissCurveMatchesDirectLRU(t *testing.T) {
	r := rng.New(77)
	s := NewStackSim()
	var m MissCurve
	const capacity = 25
	lru := NewLRU(capacity)
	var directMisses, n int64
	for i := 0; i < 20000; i++ {
		// Skewed stream over two relations.
		var p core.PageID
		if r.Bernoulli(0.7) {
			p = core.MakePageID(core.Stock, r.Int63n(15))
		} else {
			p = core.MakePageID(core.Customer, r.Int63n(300))
		}
		m.Add(s.Access(p))
		if !lru.Access(p) {
			directMisses++
		}
		n++
	}
	got := m.MissRate(capacity)
	want := float64(directMisses) / float64(n)
	if diff := got - want; diff > 1e-12 || diff < -1e-12 {
		t.Errorf("curve miss rate %v != direct LRU %v", got, want)
	}
}

func TestMissCurveMergeAndRates(t *testing.T) {
	var a, b MissCurve
	a.Add(1)
	a.Add(ColdDistance)
	b.Add(3)
	b.Add(1)
	a.Merge(&b)
	if a.Accesses() != 4 || a.ColdMisses() != 1 || a.MaxDistance() != 3 {
		t.Fatalf("merge: %+v", a)
	}
	rates := a.MissRates([]int64{1, 3})
	if rates[0] != 0.5 || rates[1] != 0.25 {
		t.Errorf("MissRates = %v", rates)
	}
}
