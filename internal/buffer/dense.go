package buffer

// DenseStackSim computes LRU stack distances like StackSim but over a dense
// page-ordinal space: pages are identified by contiguous int64 ordinals (see
// sim's flat page-ordinal mapping), so the per-access last-access lookup is
// a flat slice index instead of a map probe, and timestamp compaction is a
// counting pass instead of a map-iterate-plus-sort. The per-access path
// performs no allocation and no hashing; its cost is the two Fenwick-tree
// walks, O(log distinct) each.
//
// The ordinal space may grow during the run (the TPC-C append-only
// relations gain pages as transactions insert tuples); Access extends the
// last-access table on demand with amortized-O(1) doubling.
//
// The map-based StackSim is retained as the differential-testing oracle:
// the two implementations must agree access for access on any stream
// related by an ordinal bijection (see dense_test.go and the fuzz target).
type DenseStackSim struct {
	last     []int64 // last[ord] = last access timestamp (1-based), 0 = never seen
	tree     []int64 // Fenwick tree over timestamps
	time     int64   // current timestamp (1-based, < len(tree))
	distinct int64
}

// NewDenseStackSim returns a simulator for page ordinals in [0, universe).
// Ordinals at or past universe are accepted too (the table grows), but
// pre-sizing to the known page universe avoids regrowth: the TPC-C page
// count is known a priori from the schema (Table 1 cardinalities), which is
// exactly what makes the dense layout possible.
func NewDenseStackSim(universe int64) *DenseStackSim {
	if universe < 0 {
		panic("buffer: universe must be non-negative")
	}
	return &DenseStackSim{
		last: make([]int64, universe),
		// The timestamp space scales with the table so compaction — an
		// O(len(last) + len(tree)) counting pass — amortizes to O(1) per
		// access no matter how sparse the reference stream is.
		tree: make([]int64, 2*universe+1024),
	}
}

// Distinct returns the number of distinct ordinals seen so far.
func (s *DenseStackSim) Distinct() int64 { return s.distinct }

// Universe returns the current size of the last-access table.
func (s *DenseStackSim) Universe() int64 { return int64(len(s.last)) }

func (s *DenseStackSim) add(i, delta int64) {
	for ; i < int64(len(s.tree)); i += i & -i {
		s.tree[i] += delta
	}
}

func (s *DenseStackSim) sum(i int64) int64 {
	var t int64
	for ; i > 0; i -= i & -i {
		t += s.tree[i]
	}
	return t
}

// compact renumbers the live timestamps 1..distinct preserving order, in one
// counting pass over the ordinal table — O(universe), no map iteration, no
// sort (the map-based StackSim pays O(distinct log distinct) here). It runs
// when the timestamp space fills; the tree is resized so at least half the
// new space is free, keeping the amortized cost per access constant.
func (s *DenseStackSim) compact() {
	// occ[t] = ord+1 for the page whose last access is timestamp t.
	// Timestamps are unique per page, so this is a perfect bucket sort.
	occ := make([]int64, s.time+1)
	for ord, t := range s.last {
		if t != 0 {
			occ[t] = int64(ord) + 1
		}
	}
	size := 2*s.distinct + 1024
	if min := 2 * int64(len(s.last)); size < min {
		size = min
	}
	s.tree = make([]int64, size)
	var nt int64
	for _, o := range occ[1:] {
		if o != 0 {
			nt++
			s.last[o-1] = nt
			s.add(nt, 1)
		}
	}
	s.time = nt
}

// grow extends the last-access table to cover ord.
func (s *DenseStackSim) grow(ord int64) {
	size := 2 * int64(len(s.last))
	if size < ord+1 {
		size = ord + 1
	}
	bigger := make([]int64, size)
	copy(bigger, s.last)
	s.last = bigger
}

// Access records a reference to the page with the given ordinal and returns
// its LRU stack distance, or ColdDistance for a first reference. Distances
// agree exactly with StackSim.Access on the corresponding PageID stream.
func (s *DenseStackSim) Access(ord int64) int64 {
	if ord < 0 {
		panic("buffer: page ordinal must be non-negative")
	}
	if ord >= int64(len(s.last)) {
		s.grow(ord)
	}
	if s.time+1 >= int64(len(s.tree)) {
		s.compact()
	}
	s.time++
	t := s.time
	prev := s.last[ord]
	var dist int64
	if prev != 0 {
		// Distinct pages touched after prev: set bits in (prev, t).
		dist = s.sum(t-1) - s.sum(prev) + 1
		s.add(prev, -1)
	} else {
		dist = ColdDistance
		s.distinct++
	}
	s.add(t, 1)
	s.last[ord] = t
	return dist
}
