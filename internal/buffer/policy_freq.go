package buffer

import (
	"container/heap"

	"tpccmodel/internal/core"
)

// LFU evicts the least-frequently-used page, breaking frequency ties by
// least-recent use. Implemented with an indexed min-heap keyed on
// (frequency, last-use time).
type LFU struct {
	capacity int64
	idx      map[core.PageID]int // position in heap
	h        lfuHeap
	tick     int64
}

type lfuEntry struct {
	page core.PageID
	freq int64
	used int64
}

type lfuHeap struct {
	entries []lfuEntry
	pos     map[core.PageID]int
}

func (h *lfuHeap) Len() int { return len(h.entries) }
func (h *lfuHeap) Less(i, j int) bool {
	a, b := h.entries[i], h.entries[j]
	if a.freq != b.freq {
		return a.freq < b.freq
	}
	return a.used < b.used
}
func (h *lfuHeap) Swap(i, j int) {
	h.entries[i], h.entries[j] = h.entries[j], h.entries[i]
	h.pos[h.entries[i].page] = i
	h.pos[h.entries[j].page] = j
}
func (h *lfuHeap) Push(x any) {
	e := x.(lfuEntry)
	h.pos[e.page] = len(h.entries)
	h.entries = append(h.entries, e)
}
func (h *lfuHeap) Pop() any {
	e := h.entries[len(h.entries)-1]
	h.entries = h.entries[:len(h.entries)-1]
	delete(h.pos, e.page)
	return e
}

// NewLFU returns an LFU pool holding capacity pages.
func NewLFU(capacity int64) *LFU {
	if capacity <= 0 {
		panic("buffer: capacity must be positive")
	}
	l := &LFU{capacity: capacity}
	l.h.pos = make(map[core.PageID]int, capacity)
	return l
}

// Name implements Policy.
func (c *LFU) Name() string { return "lfu" }

// Capacity implements Policy.
func (c *LFU) Capacity() int64 { return c.capacity }

// Len implements Policy.
func (c *LFU) Len() int64 { return int64(len(c.h.entries)) }

// Reset implements Policy.
func (c *LFU) Reset() {
	c.h.entries = c.h.entries[:0]
	c.h.pos = make(map[core.PageID]int, c.capacity)
	c.tick = 0
}

// Access implements Policy.
func (c *LFU) Access(p core.PageID) bool {
	c.tick++
	if i, ok := c.h.pos[p]; ok {
		c.h.entries[i].freq++
		c.h.entries[i].used = c.tick
		heap.Fix(&c.h, i)
		return true
	}
	if int64(len(c.h.entries)) >= c.capacity {
		heap.Pop(&c.h)
	}
	heap.Push(&c.h, lfuEntry{page: p, freq: 1, used: c.tick})
	return false
}

// TwoQ is a simplified 2Q policy (Johnson & Shasha): first-touch pages go
// to a FIFO probation queue (A1, 25% of capacity); a second touch promotes
// to the main LRU queue (Am). Scan-resistant relative to plain LRU.
type TwoQ struct {
	capacity int64
	a1Cap    int64
	a1       *FIFO
	am       *LRU
}

// NewTwoQ returns a 2Q pool holding capacity pages in total. A capacity of
// one degenerates to a single-page probation queue.
func NewTwoQ(capacity int64) *TwoQ {
	if capacity <= 0 {
		panic("buffer: capacity must be positive")
	}
	if capacity == 1 {
		return &TwoQ{capacity: 1, a1Cap: 1, a1: NewFIFO(1)}
	}
	a1 := capacity / 4
	if a1 < 1 {
		a1 = 1
	}
	return &TwoQ{capacity: capacity, a1Cap: a1, a1: NewFIFO(a1), am: NewLRU(capacity - a1)}
}

// Name implements Policy.
func (c *TwoQ) Name() string { return "2q" }

// Capacity implements Policy.
func (c *TwoQ) Capacity() int64 { return c.capacity }

// Len implements Policy.
func (c *TwoQ) Len() int64 {
	n := c.a1.Len()
	if c.am != nil {
		n += c.am.Len()
	}
	return n
}

// Reset implements Policy.
func (c *TwoQ) Reset() {
	c.a1.Reset()
	if c.am != nil {
		c.am.Reset()
	}
}

// Access implements Policy.
func (c *TwoQ) Access(p core.PageID) bool {
	if c.am != nil {
		if _, ok := c.am.idx[p]; ok {
			c.am.Access(p)
			return true
		}
	}
	if i, ok := c.a1.idx[p]; ok {
		if c.am == nil {
			return true
		}
		// Second touch: promote to the main queue.
		c.a1.l.remove(i)
		c.a1.l.release(i)
		delete(c.a1.idx, p)
		c.am.Access(p)
		return true
	}
	c.a1.Access(p)
	return false
}

// SLRU is a segmented LRU: a probationary LRU segment and a protected LRU
// segment (75% of capacity). Hits in probation promote to protected;
// protected overflow demotes back to probation's MRU end.
type SLRU struct {
	capacity  int64
	probation *LRU
	protected *LRU
}

// NewSLRU returns a segmented-LRU pool holding capacity pages in total. A
// capacity of one degenerates to plain LRU.
func NewSLRU(capacity int64) *SLRU {
	if capacity <= 0 {
		panic("buffer: capacity must be positive")
	}
	if capacity == 1 {
		return &SLRU{capacity: 1, probation: NewLRU(1)}
	}
	prot := capacity * 3 / 4
	if prot < 1 {
		prot = 1
	}
	if prot > capacity-1 {
		prot = capacity - 1
	}
	return &SLRU{capacity: capacity, probation: NewLRU(capacity - prot), protected: NewLRU(prot)}
}

// Name implements Policy.
func (c *SLRU) Name() string { return "slru" }

// Capacity implements Policy.
func (c *SLRU) Capacity() int64 { return c.capacity }

// Len implements Policy.
func (c *SLRU) Len() int64 {
	n := c.probation.Len()
	if c.protected != nil {
		n += c.protected.Len()
	}
	return n
}

// Reset implements Policy.
func (c *SLRU) Reset() {
	c.probation.Reset()
	if c.protected != nil {
		c.protected.Reset()
	}
}

// Access implements Policy.
func (c *SLRU) Access(p core.PageID) bool {
	if c.protected != nil {
		if _, ok := c.protected.idx[p]; ok {
			c.protected.Access(p)
			return true
		}
	}
	if i, ok := c.probation.idx[p]; ok {
		if c.protected == nil {
			c.probation.Access(p)
			return true
		}
		c.probation.l.remove(i)
		c.probation.l.release(i)
		delete(c.probation.idx, p)
		c.promote(p)
		return true
	}
	c.probation.Access(p)
	return false
}

func (c *SLRU) promote(p core.PageID) {
	if c.protected.Len() >= c.protected.Capacity() {
		// Demote the protected LRU victim into probation rather than
		// dropping it.
		victim := c.protected.l.back()
		vp := c.protected.l.nodes[victim].page
		c.protected.l.remove(victim)
		c.protected.l.release(victim)
		delete(c.protected.idx, vp)
		c.probation.Access(vp)
	}
	c.protected.Access(p)
}
