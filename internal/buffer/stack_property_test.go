package buffer

import (
	"testing"
	"testing/quick"

	"tpccmodel/internal/core"
	"tpccmodel/internal/rng"
)

// TestStackSimPropertyVsDirectLRU is the property test cross-validating the
// Fenwick-tree stack simulator against direct LRU pools: for random streams
// over random universe sizes — including universes well past the initial
// 1024-slot timestamp tree, so compaction fires mid-stream by distinct page
// count — and random capacities, the inclusion predicate (distance <= C)
// must agree with each pool access by access, and the accumulated MissCurve
// must reproduce each pool's measured miss rate exactly.
func TestStackSimPropertyVsDirectLRU(t *testing.T) {
	accesses := 20000
	if testing.Short() {
		accesses = 4000
	}
	f := func(seed uint64) bool {
		r := rng.New(seed)
		// Universe > 1024 distinct pages forces compact() by distinct count,
		// not just timestamp exhaustion; small universes exercise the
		// high-reuse path.
		universe := r.IntRange(2, 5000)
		ncaps := int(r.IntRange(1, 5))
		caps := make([]int64, ncaps)
		pools := make([]Policy, ncaps)
		misses := make([]int64, ncaps)
		for i := range caps {
			caps[i] = r.IntRange(1, universe+10)
			pools[i] = NewLRU(caps[i])
		}
		s := NewStackSim()
		var m MissCurve
		var n int64
		for i := 0; i < accesses; i++ {
			rel := core.Relation(r.Int63n(int64(core.NumRelations)))
			p := core.MakePageID(rel, r.Int63n(universe))
			d := s.Access(p)
			m.Add(d)
			n++
			for j := range pools {
				hit := pools[j].Access(p)
				if hit != (d != ColdDistance && d <= caps[j]) {
					t.Logf("seed %d: access %d page %v dist %d cap %d hit %v",
						seed, i, p, d, caps[j], hit)
					return false
				}
				if !hit {
					misses[j]++
				}
			}
		}
		if s.Distinct() > universe*int64(core.NumRelations) || s.Distinct() <= 0 {
			t.Logf("seed %d: distinct %d outside (0, %d]", seed, s.Distinct(),
				universe*int64(core.NumRelations))
			return false
		}
		for j := range caps {
			want := float64(misses[j]) / float64(n)
			got := m.MissRate(caps[j])
			if diff := got - want; diff > 1e-12 || diff < -1e-12 {
				t.Logf("seed %d: cap %d curve %v direct %v", seed, caps[j], got, want)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Error(err)
	}
}

// TestStackSimCompactionMidStreamExact pins the compaction path directly: a
// first-touch sweep of 2000 distinct pages overflows the initial 1024-slot
// tree, and the second sweep's distances must then be exactly the universe
// size (every page has all other pages touched since its last reference).
func TestStackSimCompactionMidStreamExact(t *testing.T) {
	const universe = 2000
	s := NewStackSim()
	for i := int64(0); i < universe; i++ {
		if d := s.Access(pid(i)); d != ColdDistance {
			t.Fatalf("first touch of page %d: distance %d, want cold", i, d)
		}
	}
	if s.Distinct() != universe {
		t.Fatalf("distinct = %d, want %d", s.Distinct(), universe)
	}
	for i := int64(0); i < universe; i++ {
		if d := s.Access(pid(i)); d != universe {
			t.Fatalf("second touch of page %d: distance %d, want %d", i, d, universe)
		}
	}
}
