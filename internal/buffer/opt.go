package buffer

import "tpccmodel/internal/core"

// OPT implements Belady's optimal offline replacement policy: evict the
// resident page whose next reference is farthest in the future. It needs
// the full reference trace up front, so it cannot run online; it exists as
// the lower bound for the Section 4 policy ablation ("how far is LRU from
// optimal on the TPC-C reference stream?").
type OPT struct {
	capacity int64
	trace    []core.PageID
	// nextUse[i] is the index of the next reference to trace[i]'s page
	// after position i (len(trace) when none).
	nextUse []int64
	pos     int64
	// resident maps pages to their next-use time, mirrored by a lazy
	// max-structure over (nextUse, page).
	resident map[core.PageID]int64
}

// NewOPT builds the policy for a fixed trace. The Access sequence must
// replay exactly the trace passed here.
func NewOPT(capacity int64, trace []core.PageID) *OPT {
	if capacity <= 0 {
		panic("buffer: capacity must be positive")
	}
	o := &OPT{
		capacity: capacity,
		trace:    append([]core.PageID(nil), trace...),
		nextUse:  make([]int64, len(trace)),
		resident: make(map[core.PageID]int64, capacity),
	}
	last := make(map[core.PageID]int64, 1024)
	for i := len(o.trace) - 1; i >= 0; i-- {
		p := o.trace[i]
		if n, ok := last[p]; ok {
			o.nextUse[i] = n
		} else {
			o.nextUse[i] = int64(len(o.trace))
		}
		last[p] = int64(i)
	}
	return o
}

// Name implements Policy.
func (o *OPT) Name() string { return "opt" }

// Capacity implements Policy.
func (o *OPT) Capacity() int64 { return o.capacity }

// Len implements Policy.
func (o *OPT) Len() int64 { return int64(len(o.resident)) }

// Reset implements Policy (restarts the trace).
func (o *OPT) Reset() {
	o.pos = 0
	o.resident = make(map[core.PageID]int64, o.capacity)
}

// Access implements Policy. It panics if the access diverges from the
// trace the policy was built for.
func (o *OPT) Access(p core.PageID) bool {
	if o.pos >= int64(len(o.trace)) || o.trace[o.pos] != p {
		panic("buffer: OPT access diverges from its trace")
	}
	next := o.nextUse[o.pos]
	o.pos++
	if _, ok := o.resident[p]; ok {
		o.resident[p] = next
		return true
	}
	if int64(len(o.resident)) >= o.capacity {
		// Evict the page with the farthest next use. Linear scan keeps
		// the implementation simple; capacities in the ablation are
		// modest and OPT runs offline anyway.
		var victim core.PageID
		far := int64(-1)
		for page, n := range o.resident {
			if n > far {
				far, victim = n, page
			}
		}
		delete(o.resident, victim)
	}
	o.resident[p] = next
	return false
}
