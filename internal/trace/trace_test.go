package trace

import (
	"bytes"
	"io"
	"testing"
	"testing/quick"

	"tpccmodel/internal/core"
	"tpccmodel/internal/workload"
)

func TestRoundTrip(t *testing.T) {
	cfg := workload.DefaultConfig(1, 9)
	var buf bytes.Buffer
	accs, err := Record(&buf, cfg, 500)
	if err != nil {
		t.Fatal(err)
	}
	if accs == 0 {
		t.Fatal("no accesses recorded")
	}

	// Replaying must reproduce the generator's stream exactly.
	gen, err := workload.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var want, got workload.Txn
	n := 0
	for {
		err := r.ReadTxn(&got)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		gen.Next(&want)
		if got.Type != want.Type || len(got.Accesses) != len(want.Accesses) {
			t.Fatalf("txn %d: shape mismatch", n)
		}
		for i := range got.Accesses {
			if got.Accesses[i] != want.Accesses[i] {
				t.Fatalf("txn %d access %d: %+v != %+v",
					n, i, got.Accesses[i], want.Accesses[i])
			}
		}
		n++
	}
	if n != 500 {
		t.Errorf("replayed %d transactions, want 500", n)
	}
}

func TestCompactness(t *testing.T) {
	// Delta+varint encoding should land well under the naive 10 bytes
	// per access.
	cfg := workload.DefaultConfig(1, 1)
	var buf bytes.Buffer
	accs, err := Record(&buf, cfg, 1000)
	if err != nil {
		t.Fatal(err)
	}
	perAccess := float64(buf.Len()) / float64(accs)
	if perAccess > 6 {
		t.Errorf("trace uses %.1f bytes/access, want < 6", perAccess)
	}
}

func TestBadHeader(t *testing.T) {
	if _, err := NewReader(bytes.NewReader([]byte("NOTATRACE"))); err == nil {
		t.Error("bad magic should fail")
	}
	if _, err := NewReader(bytes.NewReader([]byte{1, 2})); err == nil {
		t.Error("short header should fail")
	}
}

func TestCorruptStream(t *testing.T) {
	cfg := workload.DefaultConfig(1, 2)
	var buf bytes.Buffer
	if _, err := Record(&buf, cfg, 5); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()

	// Truncations after the header must error, not panic.
	for _, cut := range []int{9, 12, 20, len(data) - 1} {
		if cut >= len(data) {
			continue
		}
		r, err := NewReader(bytes.NewReader(data[:cut]))
		if err != nil {
			continue
		}
		var txn workload.Txn
		for {
			if err := r.ReadTxn(&txn); err != nil {
				break // any error (EOF or corruption) is acceptable
			}
		}
	}

	// Flip the marker byte: must be rejected.
	bad := append([]byte(nil), data...)
	bad[8] = 0x00
	r, err := NewReader(bytes.NewReader(bad))
	if err != nil {
		t.Fatal(err)
	}
	var txn workload.Txn
	if err := r.ReadTxn(&txn); err == nil {
		t.Error("corrupt marker should fail")
	}
}

func TestZigZagRoundTrip(t *testing.T) {
	f := func(v int64) bool { return unzig(zigzag(v)) == v }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestInvalidFieldsRejected(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	txn := workload.Txn{Type: core.TxnNewOrder, Accesses: []core.Access{
		{Rel: core.Stock, Tuple: 5, Op: core.Select},
	}}
	if err := w.WriteTxn(&txn); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// Corrupt the relation byte (offset: 8 magic + 1 marker + 1 type +
	// 1 count = 11).
	data[11] = 0xEE
	r, _ := NewReader(bytes.NewReader(data))
	var out workload.Txn
	if err := r.ReadTxn(&out); err == nil {
		t.Error("invalid relation should fail")
	}
}
