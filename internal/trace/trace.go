// Package trace records and replays TPC-C reference streams in a compact
// binary format, so the workload generator's output can be captured once
// and fed to external cache simulators, or replayed deterministically
// against any buffer policy without regenerating.
//
// Format (little endian):
//
//	magic "TPCCTRC1" (8 bytes)
//	then per transaction:
//	  0xFE, txnType uint8, accessCount uvarint
//	  then per access:
//	    rel uint8, op uint8, tuple uvarint
//
// Tuples are written as deltas from the previous tuple of the same
// relation (zig-zag encoded), which keeps append-heavy streams small.
package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"tpccmodel/internal/core"
	"tpccmodel/internal/workload"
)

var magic = [8]byte{'T', 'P', 'C', 'C', 'T', 'R', 'C', '1'}

const txnMarker = 0xFE

// Writer streams transactions to an io.Writer.
type Writer struct {
	w    *bufio.Writer
	last [core.NumRelations]int64
	buf  [binary.MaxVarintLen64]byte
	txns int64
	accs int64
}

// NewWriter writes the header and returns a Writer.
func NewWriter(w io.Writer) (*Writer, error) {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(magic[:]); err != nil {
		return nil, err
	}
	return &Writer{w: bw}, nil
}

func zigzag(v int64) uint64 { return uint64(v<<1) ^ uint64(v>>63) }
func unzig(u uint64) int64  { return int64(u>>1) ^ -int64(u&1) }

// WriteTxn appends one transaction.
func (t *Writer) WriteTxn(txn *workload.Txn) error {
	if err := t.w.WriteByte(txnMarker); err != nil {
		return err
	}
	if err := t.w.WriteByte(byte(txn.Type)); err != nil {
		return err
	}
	n := binary.PutUvarint(t.buf[:], uint64(len(txn.Accesses)))
	if _, err := t.w.Write(t.buf[:n]); err != nil {
		return err
	}
	for _, a := range txn.Accesses {
		if err := t.w.WriteByte(byte(a.Rel)); err != nil {
			return err
		}
		if err := t.w.WriteByte(byte(a.Op)); err != nil {
			return err
		}
		delta := a.Tuple - t.last[a.Rel]
		t.last[a.Rel] = a.Tuple
		n := binary.PutUvarint(t.buf[:], zigzag(delta))
		if _, err := t.w.Write(t.buf[:n]); err != nil {
			return err
		}
		t.accs++
	}
	t.txns++
	return nil
}

// Flush flushes buffered output; call once at the end.
func (t *Writer) Flush() error { return t.w.Flush() }

// Counts returns transactions and accesses written.
func (t *Writer) Counts() (txns, accesses int64) { return t.txns, t.accs }

// Reader streams transactions from an io.Reader.
type Reader struct {
	r    *bufio.Reader
	last [core.NumRelations]int64
}

// NewReader validates the header and returns a Reader.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReader(r)
	var got [8]byte
	if _, err := io.ReadFull(br, got[:]); err != nil {
		return nil, fmt.Errorf("trace: reading header: %w", err)
	}
	if got != magic {
		return nil, errors.New("trace: bad magic (not a TPCCTRC1 stream)")
	}
	return &Reader{r: br}, nil
}

// ReadTxn reads the next transaction into txn (reusing its slice). It
// returns io.EOF at a clean end of stream.
func (t *Reader) ReadTxn(txn *workload.Txn) error {
	m, err := t.r.ReadByte()
	if err != nil {
		return err // io.EOF at a clean boundary
	}
	if m != txnMarker {
		return fmt.Errorf("trace: expected transaction marker, got 0x%02x", m)
	}
	typ, err := t.r.ReadByte()
	if err != nil {
		return fmt.Errorf("trace: truncated transaction: %w", err)
	}
	if typ >= byte(core.NumTxnTypes) {
		return fmt.Errorf("trace: invalid transaction type %d", typ)
	}
	count, err := binary.ReadUvarint(t.r)
	if err != nil {
		return fmt.Errorf("trace: truncated access count: %w", err)
	}
	if count > 1<<20 {
		return fmt.Errorf("trace: implausible access count %d", count)
	}
	txn.Type = core.TxnType(typ)
	txn.Accesses = txn.Accesses[:0]
	for i := uint64(0); i < count; i++ {
		rel, err := t.r.ReadByte()
		if err != nil {
			return fmt.Errorf("trace: truncated access: %w", err)
		}
		if rel >= byte(core.NumRelations) {
			return fmt.Errorf("trace: invalid relation %d", rel)
		}
		op, err := t.r.ReadByte()
		if err != nil {
			return fmt.Errorf("trace: truncated access: %w", err)
		}
		if op >= byte(core.NumOps) {
			return fmt.Errorf("trace: invalid op %d", op)
		}
		u, err := binary.ReadUvarint(t.r)
		if err != nil {
			return fmt.Errorf("trace: truncated tuple id: %w", err)
		}
		tuple := t.last[rel] + unzig(u)
		if tuple < 0 {
			return fmt.Errorf("trace: negative tuple id for %s", core.Relation(rel))
		}
		t.last[rel] = tuple
		txn.Accesses = append(txn.Accesses, core.Access{
			Rel: core.Relation(rel), Tuple: tuple, Op: core.Op(op),
		})
	}
	return nil
}

// Record generates txns transactions from the given workload configuration
// and writes them to w, returning the access count.
func Record(w io.Writer, cfg workload.Config, txns int64) (int64, error) {
	gen, err := workload.New(cfg)
	if err != nil {
		return 0, err
	}
	tw, err := NewWriter(w)
	if err != nil {
		return 0, err
	}
	var txn workload.Txn
	for i := int64(0); i < txns; i++ {
		gen.Next(&txn)
		if err := tw.WriteTxn(&txn); err != nil {
			return 0, err
		}
	}
	if err := tw.Flush(); err != nil {
		return 0, err
	}
	_, accs := tw.Counts()
	return accs, nil
}
