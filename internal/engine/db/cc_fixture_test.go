package db

import (
	"testing"

	"tpccmodel/internal/core"
	"tpccmodel/internal/engine/index"
	"tpccmodel/internal/engine/lock"
	"tpccmodel/internal/engine/storage"
	"tpccmodel/internal/tpcc"
)

// The anomaly battery needs precisely interleaved multi-transaction
// schedules, which the monolithic Session procedures cannot express. The
// tests in cc_anomaly_test.go therefore drive raw txns over a hand-built
// fixture — tiny enough to load in microseconds, so the whole battery
// runs under `-short -race`.

// tinyDistricts is the fixture's district count (all under warehouse 0,
// with one customer and one stock row per district).
const tinyDistricts = 8

// openTiny opens a 1-warehouse DB in the given CC mode and hand-loads a
// minimal committed row set: warehouse 0 (YTD 0), districts (0,0..7)
// (YTD 0, NextOID 1), customer 0 and stock row for item d in each.
func openTiny(t *testing.T, cc CCMode) *DB {
	t.Helper()
	d, err := Open(Config{Warehouses: 1, PageSize: 4096, BufferPages: 256, CC: cc})
	if err != nil {
		t.Fatal(err)
	}
	tx := d.begin()
	buf := make([]byte, tpcc.TupleLen[core.Customer])

	ins := func(rel core.Relation, key uint64, g *guardedTree, n int) {
		t.Helper()
		if err := tx.lockRow(rel, key, lock.Exclusive); err != nil {
			t.Fatal(err)
		}
		rid, err := tx.insertRow(rel, key, buf[:n])
		if err != nil {
			t.Fatal(err)
		}
		tx.setIdx(g, key, rid.Pack())
	}

	w := WarehouseRec{ID: 0}
	w.Marshal(buf[:tpcc.TupleLen[core.Warehouse]])
	ins(core.Warehouse, 0, d.warehouseIdx, tpcc.TupleLen[core.Warehouse])
	for dist := int64(0); dist < tinyDistricts; dist++ {
		dr := DistrictRec{ID: uint32(dist), NextOID: 1}
		dr.Marshal(buf[:tpcc.TupleLen[core.District]])
		ins(core.District, index.KeyWD(0, dist), d.districtIdx, tpcc.TupleLen[core.District])

		cr := CustomerRec{DID: uint32(dist), CreditLimit: 50000}
		cr.Marshal(buf[:tpcc.TupleLen[core.Customer]])
		ins(core.Customer, index.KeyWDC(0, dist, 0), d.customerIdx, tpcc.TupleLen[core.Customer])

		sr := StockRec{IID: uint32(dist), Quantity: 100}
		sr.Marshal(buf[:tpcc.TupleLen[core.Stock]])
		ins(core.Stock, index.KeyWI(0, dist), d.stockIdx, tpcc.TupleLen[core.Stock])
	}
	if err := tx.commit(); err != nil {
		t.Fatal(err)
	}
	return d
}

// custKey/distKey are the fixture's row keys.
func custKey(dist int64) uint64 { return index.KeyWDC(0, dist, 0) }
func distKey(dist int64) uint64 { return index.KeyWD(0, dist) }

// readCustomer snap-reads the fixture customer in dist under tx.
func tinyReadCustomer(t *testing.T, tx *txn, dist int64) (CustomerRec, bool) {
	t.Helper()
	key := custKey(dist)
	rid, ok := tx.d.customerIdx.get(key)
	if !ok {
		t.Fatalf("fixture customer (0,%d,0) missing from index", dist)
	}
	buf := make([]byte, tpcc.TupleLen[core.Customer])
	live, err := tx.snapRead(core.Customer, key, storage.UnpackRID(rid), buf)
	if err != nil {
		t.Fatal(err)
	}
	var rec CustomerRec
	if live {
		rec.Unmarshal(buf)
	}
	return rec, live
}

// writeCustomer rewrites the fixture customer in dist under tx (current
// read under the exclusive lock, then updateRow). Returns the engine
// error unrolled — callers assert on conflicts.
func tinyWriteCustomer(tx *txn, dist int64, mut func(*CustomerRec)) error {
	key := custKey(dist)
	if err := tx.lockRow(core.Customer, key, lock.Exclusive); err != nil {
		return err
	}
	rid, _ := tx.d.customerIdx.get(key)
	n := tpcc.TupleLen[core.Customer]
	before := make([]byte, n)
	after := make([]byte, n)
	if err := tx.readRec(core.Customer, storage.UnpackRID(rid), before); err != nil {
		return err
	}
	var rec CustomerRec
	rec.Unmarshal(before)
	mut(&rec)
	rec.Marshal(after)
	return tx.updateRow(core.Customer, key, storage.UnpackRID(rid), before, after)
}

// readDistrict / writeDistrict mirror the customer helpers.
func tinyReadDistrict(t *testing.T, tx *txn, dist int64) (DistrictRec, bool) {
	t.Helper()
	key := distKey(dist)
	rid, ok := tx.d.districtIdx.get(key)
	if !ok {
		t.Fatalf("fixture district (0,%d) missing from index", dist)
	}
	buf := make([]byte, tpcc.TupleLen[core.District])
	live, err := tx.snapRead(core.District, key, storage.UnpackRID(rid), buf)
	if err != nil {
		t.Fatal(err)
	}
	var rec DistrictRec
	if live {
		rec.Unmarshal(buf)
	}
	return rec, live
}

func tinyWriteDistrict(tx *txn, dist int64, mut func(*DistrictRec)) error {
	key := distKey(dist)
	if err := tx.lockRow(core.District, key, lock.Exclusive); err != nil {
		return err
	}
	rid, _ := tx.d.districtIdx.get(key)
	n := tpcc.TupleLen[core.District]
	before := make([]byte, n)
	after := make([]byte, n)
	if err := tx.readRec(core.District, storage.UnpackRID(rid), before); err != nil {
		return err
	}
	var rec DistrictRec
	rec.Unmarshal(before)
	mut(&rec)
	rec.Marshal(after)
	return tx.updateRow(core.District, key, storage.UnpackRID(rid), before, after)
}

// writeWarehouse rewrites warehouse 0 under tx.
func writeWarehouse(tx *txn, mut func(*WarehouseRec)) error {
	if err := tx.lockRow(core.Warehouse, 0, lock.Exclusive); err != nil {
		return err
	}
	rid, _ := tx.d.warehouseIdx.get(0)
	n := tpcc.TupleLen[core.Warehouse]
	before := make([]byte, n)
	after := make([]byte, n)
	if err := tx.readRec(core.Warehouse, storage.UnpackRID(rid), before); err != nil {
		return err
	}
	var rec WarehouseRec
	rec.Unmarshal(before)
	mut(&rec)
	rec.Marshal(after)
	return tx.updateRow(core.Warehouse, 0, storage.UnpackRID(rid), before, after)
}

// readWarehouse snap-reads warehouse 0 under tx.
func readWarehouse(t *testing.T, tx *txn) WarehouseRec {
	t.Helper()
	rid, ok := tx.d.warehouseIdx.get(0)
	if !ok {
		t.Fatal("fixture warehouse 0 missing from index")
	}
	buf := make([]byte, tpcc.TupleLen[core.Warehouse])
	live, err := tx.snapRead(core.Warehouse, 0, storage.UnpackRID(rid), buf)
	if err != nil {
		t.Fatal(err)
	}
	if !live {
		t.Fatal("fixture warehouse 0 not visible")
	}
	var rec WarehouseRec
	rec.Unmarshal(buf)
	return rec
}
