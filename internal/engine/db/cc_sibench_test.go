package db

import (
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"tpccmodel/internal/rng"
)

// TestMVCCSIBenchStressor is the SIBench-style pessimal schedule for a
// snapshot store: writer goroutines keep incrementing warehouse and
// district YTD in lock-step (preserving the invariant w_ytd ==
// sum(d_ytd) transaction by transaction) while one long reader holds a
// single snapshot across the whole storm and repeatedly scans the lot.
//
// The gates: every scan under the long snapshot must see a consistent
// point-in-time cut (the invariant holds, and re-reads repeat exactly),
// and readers never abort — under mvcc a pure reader takes no locks and
// performs no first-committer-wins validation, so there is nothing that
// CAN abort it; the test makes that structural claim an executable one.
func TestMVCCSIBenchStressor(t *testing.T) {
	d := openTiny(t, CCMVCC)

	const (
		writers       = 4
		writesPer     = 150
		readerScans   = 40
		maxTriesPerTx = 1000
	)

	var wg sync.WaitGroup
	var conflictRetries atomic.Int64

	// Writers: snapshot-read the pair, then lock warehouse-then-district
	// and apply the increment. The warehouse row is write-hot for every
	// writer, so first-committer-wins losses are the common case; each
	// loss aborts the transaction and the writer retries with a fresh
	// snapshot — exactly the Runner's retry loop, inlined.
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			r := rng.New(uint64(1000 + id))
			for i := 0; i < writesPer; i++ {
				delta := uint64(1 + r.Int63n(50))
				dist := r.Int63n(tinyDistricts)
				committed := false
				for try := 0; try < maxTriesPerTx && !committed; try++ {
					tx := d.begin()
					// Yield between snapshot and write so transactions
					// overlap even at GOMAXPROCS=1 — otherwise each txn
					// runs to commit unpreempted and FCW never fires. The
					// jittered backoff below is what breaks the resulting
					// lockstep: without it the same writer wins every round
					// and the rest livelock (the Runner's retry policy
					// jitters for exactly this reason).
					runtime.Gosched()
					backoff := func() {
						conflictRetries.Add(1)
						// Grows with the attempt count so a losing streak
						// drifts the writer out of phase with the winners.
						time.Sleep(time.Duration(r.Int63n(int64(try)*25+100)+1) * time.Microsecond)
					}
					if err := writeWarehouse(tx, func(wr *WarehouseRec) { wr.YTDCents += delta }); err != nil {
						_ = tx.fail(err)
						backoff()
						continue
					}
					if err := tinyWriteDistrict(tx, dist, func(dr *DistrictRec) { dr.YTDCents += delta }); err != nil {
						_ = tx.fail(err)
						backoff()
						continue
					}
					if err := tx.commit(); err != nil {
						t.Errorf("writer %d: commit failed: %v", id, err)
						return
					}
					committed = true
				}
				if !committed {
					t.Errorf("writer %d: transaction starved after %d tries", id, maxTriesPerTx)
					return
				}
			}
		}(w)
	}

	// The long reader: ONE snapshot for all scans. Each scan checks the
	// invariant at the snapshot and that nothing moved since the last scan.
	wg.Add(1)
	go func() {
		defer wg.Done()
		tx := d.begin()
		var firstW uint64
		var firstD [tinyDistricts]uint64
		for scan := 0; scan < readerScans; scan++ {
			w := readWarehouse(t, tx)
			var sum uint64
			for dist := int64(0); dist < tinyDistricts; dist++ {
				dr, live := tinyReadDistrict(t, tx, dist)
				if !live {
					t.Errorf("scan %d: district %d vanished mid-snapshot", scan, dist)
					return
				}
				sum += dr.YTDCents
				if scan == 0 {
					firstD[dist] = dr.YTDCents
				} else if dr.YTDCents != firstD[dist] {
					t.Errorf("scan %d: district %d moved under the snapshot: %d -> %d",
						scan, dist, firstD[dist], dr.YTDCents)
					return
				}
			}
			if w.YTDCents != sum {
				t.Errorf("scan %d: torn cut: w_ytd=%d, sum(d_ytd)=%d", scan, w.YTDCents, sum)
				return
			}
			if scan == 0 {
				firstW = w.YTDCents
			} else if w.YTDCents != firstW {
				t.Errorf("scan %d: warehouse moved under the snapshot: %d -> %d",
					scan, firstW, w.YTDCents)
				return
			}
		}
		// Reader commit cannot fail: no writes, no locks, no validation.
		if err := tx.commit(); err != nil {
			t.Errorf("read-only commit aborted: %v", err)
		}
	}()

	wg.Wait()
	if t.Failed() {
		return
	}

	// Quiesced: the current state must satisfy the invariant exactly.
	fin := d.begin()
	w := readWarehouse(t, fin)
	var sum uint64
	for dist := int64(0); dist < tinyDistricts; dist++ {
		dr, _ := tinyReadDistrict(t, fin, dist)
		sum += dr.YTDCents
	}
	if w.YTDCents != sum || w.YTDCents == 0 {
		t.Fatalf("final state: w_ytd=%d, sum(d_ytd)=%d (want equal, nonzero)", w.YTDCents, sum)
	}
	if err := fin.commit(); err != nil {
		t.Fatal(err)
	}
	t.Logf("writers committed %d txns through %d conflict retries (store conflicts: %d)",
		writers*writesPer, conflictRetries.Load(), d.WriteConflicts())
}

// TestMVCCReadersDontBlockWriters is the inverse direction of the SI
// promise on the same fixture: a transaction holding a WEEKS-long
// snapshot (well, a scan in progress) takes no locks, so a writer that
// would block behind a 2PL shared lock sails through under mvcc.
func TestMVCCReadersDontBlockWriters(t *testing.T) {
	run := func(t *testing.T, cc CCMode) error {
		d := openTiny(t, cc)
		d.locks.SetWaitTimeout(2 * time.Millisecond)
		defer d.locks.SetWaitTimeout(0)

		reader := d.begin()
		tinyReadCustomer(t, reader, 0) // S lock under 2PL, lock-free under mvcc
		writer := d.begin()
		err := tinyWriteCustomer(writer, 0, func(c *CustomerRec) { c.BalanceCents = 7 })
		if err != nil {
			ferr := writer.fail(err)
			_ = reader.commit()
			return ferr
		}
		if err := writer.commit(); err != nil {
			t.Fatal(err)
		}
		if err := reader.commit(); err != nil {
			t.Fatal(err)
		}
		return nil
	}
	t.Run("mvcc", func(t *testing.T) {
		if err := run(t, CCMVCC); err != nil {
			t.Fatalf("writer blocked behind a snapshot reader: %v", err)
		}
	})
	t.Run("2pl", func(t *testing.T) {
		if err := run(t, CC2PL); !errors.Is(err, ErrAborted) {
			t.Fatalf("2PL writer got %v, want lock-wait abort behind the read lock", err)
		}
	})
}
