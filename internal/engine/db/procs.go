package db

import (
	"fmt"

	"tpccmodel/internal/core"
	"tpccmodel/internal/engine/index"
	"tpccmodel/internal/engine/lock"
	"tpccmodel/internal/engine/storage"
	"tpccmodel/internal/tpcc"
)

// OrderItem is one requested line of a New-Order transaction. Remote
// marks lines supplied by a warehouse on another shard: SupplyW then
// holds a GLOBAL warehouse id (it may numerically collide with a local
// id, so remoteness must come from this flag, never from SupplyW != W).
type OrderItem struct {
	IID     int64
	SupplyW int64
	Qty     int64
	Remote  bool
}

// NewOrderInput parameterizes the New-Order transaction.
type NewOrderInput struct {
	W, D, C int64
	Items   []OrderItem
}

// NewOrderResult reports the created order.
type NewOrderResult struct {
	OID         int64
	TotalCents  uint64
	RemoteLines int
}

// NewOrder executes the Section 2.2 New-Order transaction: read warehouse,
// read+update district (allocating the order id), read customer, insert
// order and new-order, and per item read item, read+update stock, insert
// order-line. Returns ErrAborted on deadlock; the caller retries.
//
// The body works entirely through the session transaction's scratch
// buffers: reads and marshals go through t.buf, after-images through
// t.img, and updateRec/insertRec copy what they keep, so a committed
// execution allocates nothing.
func (s *Session) NewOrder(in NewOrderInput) (NewOrderResult, error) {
	d := s.d
	t := s.begin()
	var res NewOrderResult

	// 1. Select warehouse (snapshot read: the warehouse row is not
	// written by New-Order, so mvcc takes no lock here).
	var wrec WarehouseRec
	wrid, ok := d.warehouseIdx.get(uint64(in.W))
	if !ok {
		return res, t.fail(fmt.Errorf("db: no warehouse %d", in.W))
	}
	buf := t.buf
	if _, err := t.snapRead(core.Warehouse, uint64(in.W), storage.UnpackRID(wrid), buf[:tpcc.TupleLen[core.Warehouse]]); err != nil {
		return res, t.fail(err)
	}
	wrec.Unmarshal(buf[:tpcc.TupleLen[core.Warehouse]])

	// 2-3. Select and update district: allocate the order id. Written
	// rows keep their exclusive lock and CURRENT read in both modes;
	// under mvcc the update validates first committer wins instead.
	dkey := index.KeyWD(in.W, in.D)
	if err := t.lockRow(core.District, dkey, lock.Exclusive); err != nil {
		return res, t.fail(err)
	}
	drid, ok := d.districtIdx.get(dkey)
	if !ok {
		return res, t.fail(fmt.Errorf("db: no district (%d,%d)", in.W, in.D))
	}
	dlen := tpcc.TupleLen[core.District]
	if err := t.readRec(core.District, storage.UnpackRID(drid), buf[:dlen]); err != nil {
		return res, t.fail(err)
	}
	var drec DistrictRec
	drec.Unmarshal(buf[:dlen])
	oid := int64(drec.NextOID)
	drec.NextOID++
	drec.Marshal(t.img[:dlen])
	if err := t.updateRow(core.District, dkey, storage.UnpackRID(drid), buf[:dlen], t.img[:dlen]); err != nil {
		return res, t.fail(err)
	}

	// 4. Select customer.
	ckey := index.KeyWDC(in.W, in.D, in.C)
	crid, ok := d.customerIdx.get(ckey)
	if !ok {
		return res, t.fail(fmt.Errorf("db: no customer (%d,%d,%d)", in.W, in.D, in.C))
	}
	if _, err := t.snapRead(core.Customer, ckey, storage.UnpackRID(crid), buf[:tpcc.TupleLen[core.Customer]]); err != nil {
		return res, t.fail(err)
	}

	// 5. Insert order.
	allLocal := uint8(1)
	for _, it := range in.Items {
		if it.SupplyW != in.W {
			allLocal = 0
		}
	}
	okey := index.KeyWDO(in.W, in.D, oid)
	if err := t.lockRow(core.Order, okey, lock.Exclusive); err != nil {
		return res, t.fail(err)
	}
	orec := OrderRec{
		OID: uint32(oid), CID: uint32(in.C), WID: uint16(in.W), DID: uint8(in.D),
		OLCount: uint8(len(in.Items)), AllLocal: allLocal, EntryTick: d.nextTick(),
	}
	olen := tpcc.TupleLen[core.Order]
	orec.Marshal(buf[:olen])
	orid, err := t.insertRow(core.Order, okey, buf[:olen])
	if err != nil {
		return res, t.fail(err)
	}
	t.setIdx(d.orderIdx, okey, orid.Pack())
	t.setIdx(d.custOrderIdx, index.KeyWDCO(in.W, in.D, in.C, oid), orid.Pack())

	// 6. Insert new-order.
	if err := t.lockRow(core.NewOrder, okey, lock.Exclusive); err != nil {
		return res, t.fail(err)
	}
	norec := NewOrderRec{OID: uint32(oid), WID: uint16(in.W), DID: uint8(in.D)}
	nolen := tpcc.TupleLen[core.NewOrder]
	norec.Marshal(buf[:nolen])
	norid, err := t.insertRow(core.NewOrder, okey, buf[:nolen])
	if err != nil {
		return res, t.fail(err)
	}
	t.setIdx(d.newOrderIdx, okey, norid.Pack())

	// 7. Per item: select item, select+update stock, insert order-line.
	ilen := tpcc.TupleLen[core.Item]
	slen := tpcc.TupleLen[core.Stock]
	ollen := tpcc.TupleLen[core.OrderLine]
	for n, it := range in.Items {
		irid, ok := d.itemIdx.get(uint64(it.IID))
		if !ok {
			return res, t.fail(fmt.Errorf("db: no item %d", it.IID))
		}
		if _, err := t.snapRead(core.Item, uint64(it.IID), storage.UnpackRID(irid), buf[:ilen]); err != nil {
			return res, t.fail(err)
		}
		var irec ItemRec
		irec.Unmarshal(buf[:ilen])

		skey := index.KeyWI(it.SupplyW, it.IID)
		if err := t.lockRow(core.Stock, skey, lock.Exclusive); err != nil {
			return res, t.fail(err)
		}
		srid, ok := d.stockIdx.get(skey)
		if !ok {
			return res, t.fail(fmt.Errorf("db: no stock (%d,%d)", it.SupplyW, it.IID))
		}
		if err := t.readRec(core.Stock, storage.UnpackRID(srid), buf[:slen]); err != nil {
			return res, t.fail(err)
		}
		var srec StockRec
		srec.Unmarshal(buf[:slen])
		remote := it.SupplyW != in.W
		applyStockOrder(&srec, it.Qty, remote)
		if remote {
			res.RemoteLines++
		}
		srec.Marshal(t.img[:slen])
		if err := t.updateRow(core.Stock, skey, storage.UnpackRID(srid), buf[:slen], t.img[:slen]); err != nil {
			return res, t.fail(err)
		}

		amount := uint32(it.Qty) * irec.PriceCents
		olkey := index.KeyWDOL(in.W, in.D, oid, int64(n))
		if err := t.lockRow(core.OrderLine, olkey, lock.Exclusive); err != nil {
			return res, t.fail(err)
		}
		olrec := OrderLineRec{
			OID: uint32(oid), IID: uint32(it.IID), SupplyWID: uint16(it.SupplyW),
			WID: uint16(in.W), DID: uint8(in.D), Number: uint8(n),
			Quantity: uint8(it.Qty), AmountCents: amount,
		}
		olrec.Marshal(buf[:ollen])
		olrid, err := t.insertRow(core.OrderLine, olkey, buf[:ollen])
		if err != nil {
			return res, t.fail(err)
		}
		t.setIdx(d.olIdx, olkey, olrid.Pack())
		res.TotalCents += uint64(amount)
	}

	res.OID = oid
	if err := t.commit(); err != nil {
		return res, t.fail(err)
	}
	return res, nil
}

// PaymentInput parameterizes the Payment transaction. The paying customer
// lives at (CW, CD) — a remote warehouse 15% of the time — and is chosen
// by id or by last-name ordinal.
type PaymentInput struct {
	W, D        int64
	CW, CD      int64
	ByName      bool
	C           int64 // customer id (ByName false)
	NameOrd     int64 // last-name ordinal (ByName true)
	AmountCents uint32
}

// Payment executes the Payment transaction.
func (s *Session) Payment(in PaymentInput) error {
	d := s.d
	t := s.begin()
	buf := t.buf

	// 1+4. Select and update warehouse.
	wlen := tpcc.TupleLen[core.Warehouse]
	if err := t.lockRow(core.Warehouse, uint64(in.W), lock.Exclusive); err != nil {
		return t.fail(err)
	}
	wrid, ok := d.warehouseIdx.get(uint64(in.W))
	if !ok {
		return t.fail(fmt.Errorf("db: no warehouse %d", in.W))
	}
	if err := t.readRec(core.Warehouse, storage.UnpackRID(wrid), buf[:wlen]); err != nil {
		return t.fail(err)
	}
	var wrec WarehouseRec
	wrec.Unmarshal(buf[:wlen])
	wrec.YTDCents += uint64(in.AmountCents)
	wrec.Marshal(t.img[:wlen])
	if err := t.updateRow(core.Warehouse, uint64(in.W), storage.UnpackRID(wrid), buf[:wlen], t.img[:wlen]); err != nil {
		return t.fail(err)
	}

	// 2+5. Select and update district.
	dlen := tpcc.TupleLen[core.District]
	dkey := index.KeyWD(in.W, in.D)
	if err := t.lockRow(core.District, dkey, lock.Exclusive); err != nil {
		return t.fail(err)
	}
	drid, ok := d.districtIdx.get(dkey)
	if !ok {
		return t.fail(fmt.Errorf("db: no district (%d,%d)", in.W, in.D))
	}
	if err := t.readRec(core.District, storage.UnpackRID(drid), buf[:dlen]); err != nil {
		return t.fail(err)
	}
	var drec DistrictRec
	drec.Unmarshal(buf[:dlen])
	drec.YTDCents += uint64(in.AmountCents)
	drec.Marshal(t.img[:dlen])
	if err := t.updateRow(core.District, dkey, storage.UnpackRID(drid), buf[:dlen], t.img[:dlen]); err != nil {
		return t.fail(err)
	}

	// 3. Select customer (by id, or non-unique select by name).
	cid := in.C
	if in.ByName {
		var err error
		cid, _, err = t.middleCustomerByName(in.CW, in.CD, in.NameOrd, buf)
		if err != nil {
			return t.fail(err)
		}
	}

	// 6. Update customer.
	clen := tpcc.TupleLen[core.Customer]
	ckey := index.KeyWDC(in.CW, in.CD, cid)
	if err := t.lockRow(core.Customer, ckey, lock.Exclusive); err != nil {
		return t.fail(err)
	}
	crid, ok := d.customerIdx.get(ckey)
	if !ok {
		return t.fail(fmt.Errorf("db: no customer (%d,%d,%d)", in.CW, in.CD, cid))
	}
	if err := t.readRec(core.Customer, storage.UnpackRID(crid), buf[:clen]); err != nil {
		return t.fail(err)
	}
	var crec CustomerRec
	crec.Unmarshal(buf[:clen])
	crec.BalanceCents -= int64(in.AmountCents)
	crec.YTDPayCents += uint64(in.AmountCents)
	crec.PaymentCount++
	crec.Marshal(t.img[:clen])
	if err := t.updateRow(core.Customer, ckey, storage.UnpackRID(crid), buf[:clen], t.img[:clen]); err != nil {
		return t.fail(err)
	}

	// 7. Insert history (no index; no lock needed — the row is invisible
	// to every other transaction).
	hlen := tpcc.TupleLen[core.History]
	hrec := HistoryRec{
		CID: uint32(cid), CWID: uint16(in.CW), CDID: uint8(in.CD),
		DID: uint8(in.D), WID: uint16(in.W),
		AmountCents: in.AmountCents, Tick: d.nextTick(),
	}
	hrec.Marshal(buf[:hlen])
	if _, err := t.insertRec(core.History, buf[:hlen]); err != nil {
		return t.fail(err)
	}

	if err := t.commit(); err != nil {
		return t.fail(err)
	}
	return nil
}

// middleCustomerByName implements the benchmark's non-unique select: all
// customers of (w, d) sharing the last name are read (under S locks with
// 2PL, snapshot reads with mvcc; customers are never inserted or deleted,
// so the name group is the same set either way) and
// the middle one by customer id is returned, along with how many tuples
// the select touched (the Appendix A RC_cust remote-call measurement).
// The hit list lives in the transaction's scratch and is ordered with an
// insertion sort (sort.Slice would allocate its reflect-based swapper;
// name groups average ~3 customers, so the O(n²) sort is also faster).
func (t *txn) middleCustomerByName(w, d, nameOrd int64, buf []byte) (int64, int, error) {
	lo, hi := index.RangeWDNC(w, d, nameOrd)
	t.hits = t.hits[:0]
	t.d.custNameIdx.ascendRange(lo, hi, func(k, v uint64) bool {
		t.hits = append(t.hits, custHit{cid: int64(k & 0xffff), rid: v})
		return true
	})
	hits := t.hits
	if len(hits) == 0 {
		return 0, 0, fmt.Errorf("db: no customer named %d in (%d,%d)", nameOrd, w, d)
	}
	for i := 1; i < len(hits); i++ {
		h := hits[i]
		j := i - 1
		for j >= 0 && hits[j].cid > h.cid {
			hits[j+1] = hits[j]
			j--
		}
		hits[j+1] = h
	}
	clen := tpcc.TupleLen[core.Customer]
	for _, h := range hits {
		if _, err := t.snapRead(core.Customer, index.KeyWDC(w, d, h.cid), storage.UnpackRID(h.rid), buf[:clen]); err != nil {
			return 0, 0, err
		}
	}
	return hits[len(hits)/2].cid, len(hits), nil
}

// OrderStatusInput parameterizes the Order-Status transaction.
type OrderStatusInput struct {
	W, D    int64
	ByName  bool
	C       int64
	NameOrd int64
}

// OrderStatusResult reports the customer's last order.
type OrderStatusResult struct {
	CID   int64
	OID   int64
	Lines int
}

// OrderStatus executes the read-only Order-Status transaction.
func (s *Session) OrderStatus(in OrderStatusInput) (OrderStatusResult, error) {
	d := s.d
	t := s.begin()
	var res OrderStatusResult
	buf := t.buf

	cid := in.C
	if in.ByName {
		var err error
		cid, _, err = t.middleCustomerByName(in.W, in.D, in.NameOrd, buf)
		if err != nil {
			return res, t.fail(err)
		}
	} else {
		clen := tpcc.TupleLen[core.Customer]
		ckey := index.KeyWDC(in.W, in.D, cid)
		crid, ok := d.customerIdx.get(ckey)
		if !ok {
			return res, t.fail(fmt.Errorf("db: no customer (%d,%d,%d)", in.W, in.D, cid))
		}
		if _, err := t.snapRead(core.Customer, ckey, storage.UnpackRID(crid), buf[:clen]); err != nil {
			return res, t.fail(err)
		}
	}
	res.CID = cid

	// Select(Max(order-id)): lookups in the (w,d,c,o) index, walking
	// downward past orders not visible at the snapshot (an mvcc reader
	// may see the index entry of an order committed after it began; under
	// 2PL the newest entry is always live and the loop runs once).
	lo, hi := index.RangeWDCO(in.W, in.D, cid)
	olenOrd := tpcc.TupleLen[core.Order]
	var oid int64
	for {
		k, orid, ok := d.custOrderIdx.max(hi)
		if !ok || k < lo {
			// No order visible (cannot happen after a standard load).
			if err := t.commit(); err != nil {
				return res, t.fail(err)
			}
			return res, nil
		}
		oid = int64(k & (1<<28 - 1))
		okey := index.KeyWDO(in.W, in.D, oid)
		live, err := t.snapRead(core.Order, okey, storage.UnpackRID(orid), buf[:olenOrd])
		if err != nil {
			return res, t.fail(err)
		}
		if live {
			break
		}
		hi = k - 1
	}
	var orec OrderRec
	orec.Unmarshal(buf[:olenOrd])
	res.OID = oid

	// Each order line of the last order (the order is visible, so its
	// lines — committed atomically with it — are visible too).
	ollen := tpcc.TupleLen[core.OrderLine]
	lo, hi = index.RangeWDOLOrder(in.W, in.D, oid)
	t.rids = t.rids[:0]
	d.olIdx.ascendRange(lo, hi, func(k, v uint64) bool {
		t.rids = append(t.rids, v)
		return true
	})
	for i, rid := range t.rids {
		olkey := index.KeyWDOL(in.W, in.D, oid, int64(i))
		live, err := t.snapRead(core.OrderLine, olkey, storage.UnpackRID(rid), buf[:ollen])
		if err != nil {
			return res, t.fail(err)
		}
		if !live {
			continue
		}
		res.Lines++
	}

	if err := t.commit(); err != nil {
		return res, t.fail(err)
	}
	return res, nil
}

// DeliveryInput parameterizes the Delivery transaction.
type DeliveryInput struct {
	W       int64
	Carrier uint8
}

// DeliveryResult reports how many districts had a pending order.
type DeliveryResult struct {
	Delivered int
	Skipped   int
}

// Delivery executes the deferred Delivery transaction: for each district
// of the warehouse, the oldest undelivered order is removed from
// new-order, stamped in order and order-line, and the customer balance is
// credited. Every row Delivery reads it also writes, so under mvcc all
// its reads stay CURRENT reads under the exclusive locks (reading the
// snapshot would just guarantee a first-committer-wins abort whenever the
// row moved since begin); correctness still comes from validation at the
// write.
func (s *Session) Delivery(in DeliveryInput) (DeliveryResult, error) {
	d := s.d
	t := s.begin()
	var res DeliveryResult

	for dist := int64(0); dist < tpcc.DistrictsPerWarehouse; dist++ {
		delivered, err := d.deliverDistrict(t, in, dist)
		if err != nil {
			return res, t.fail(err)
		}
		if delivered {
			res.Delivered++
		} else {
			res.Skipped++
		}
	}
	if err := t.commit(); err != nil {
		return res, t.fail(err)
	}
	return res, nil
}

func (d *DB) deliverDistrict(t *txn, in DeliveryInput, dist int64) (bool, error) {
	buf := t.buf
	lo, hi := index.RangeWDO(in.W, dist)
	for {
		// Select(Min(order-id)) from New-Order via the index.
		k, norid, ok := d.newOrderIdx.min(lo)
		if !ok || k > hi {
			return false, nil
		}
		oid := int64(k & (1<<40 - 1))
		if err := t.lockRow(core.NewOrder, k, lock.Exclusive); err != nil {
			return false, err
		}
		// Revalidate after the wait: another Delivery may have taken it.
		if cur, ok := d.newOrderIdx.get(k); !ok || cur != norid {
			continue
		}

		nolen := tpcc.TupleLen[core.NewOrder]
		if err := t.readRec(core.NewOrder, storage.UnpackRID(norid), buf[:nolen]); err != nil {
			return false, err
		}
		if err := t.deleteRow(core.NewOrder, k, storage.UnpackRID(norid), buf[:nolen]); err != nil {
			return false, err
		}
		if err := t.delIdx(d.newOrderIdx, k, norid); err != nil {
			return false, err
		}

		// Select + update the order (stamp the carrier).
		olenOrd := tpcc.TupleLen[core.Order]
		orid, ok := d.orderIdx.get(k)
		if !ok {
			return false, fmt.Errorf("db: new-order %d without order", oid)
		}
		if err := t.lockRow(core.Order, k, lock.Exclusive); err != nil {
			return false, err
		}
		if err := t.readRec(core.Order, storage.UnpackRID(orid), buf[:olenOrd]); err != nil {
			return false, err
		}
		var orec OrderRec
		orec.Unmarshal(buf[:olenOrd])
		orec.CarrierID = in.Carrier
		orec.Marshal(t.img[:olenOrd])
		if err := t.updateRow(core.Order, k, storage.UnpackRID(orid), buf[:olenOrd], t.img[:olenOrd]); err != nil {
			return false, err
		}

		// Select + update each order line (stamp delivery, sum amounts).
		ollen := tpcc.TupleLen[core.OrderLine]
		tick := d.nextTick()
		var total uint64
		for l := int64(0); l < int64(orec.OLCount); l++ {
			olkey := index.KeyWDOL(in.W, dist, oid, l)
			olrid, ok := d.olIdx.get(olkey)
			if !ok {
				return false, fmt.Errorf("db: order %d missing line %d", oid, l)
			}
			if err := t.lockRow(core.OrderLine, olkey, lock.Exclusive); err != nil {
				return false, err
			}
			if err := t.readRec(core.OrderLine, storage.UnpackRID(olrid), buf[:ollen]); err != nil {
				return false, err
			}
			var olrec OrderLineRec
			olrec.Unmarshal(buf[:ollen])
			olrec.DeliveryTick = tick
			total += uint64(olrec.AmountCents)
			olrec.Marshal(t.img[:ollen])
			if err := t.updateRow(core.OrderLine, olkey, storage.UnpackRID(olrid), buf[:ollen], t.img[:ollen]); err != nil {
				return false, err
			}
		}

		// Select + update the customer (credit the balance).
		clen := tpcc.TupleLen[core.Customer]
		ckey := index.KeyWDC(in.W, dist, int64(orec.CID))
		if err := t.lockRow(core.Customer, ckey, lock.Exclusive); err != nil {
			return false, err
		}
		crid, ok := d.customerIdx.get(ckey)
		if !ok {
			return false, fmt.Errorf("db: order %d names unknown customer %d", oid, orec.CID)
		}
		if err := t.readRec(core.Customer, storage.UnpackRID(crid), buf[:clen]); err != nil {
			return false, err
		}
		var crec CustomerRec
		crec.Unmarshal(buf[:clen])
		crec.BalanceCents += int64(total)
		crec.DeliveryCount++
		crec.Marshal(t.img[:clen])
		if err := t.updateRow(core.Customer, ckey, storage.UnpackRID(crid), buf[:clen], t.img[:clen]); err != nil {
			return false, err
		}
		return true, nil
	}
}

// StockLevelInput parameterizes the Stock-Level transaction.
type StockLevelInput struct {
	W, D      int64
	Threshold int32
}

// StockLevel executes the Stock-Level join: count distinct items among the
// order lines of the district's last 20 orders whose stock quantity at the
// home warehouse is below the threshold. Returns the count.
func (s *Session) StockLevel(in StockLevelInput) (int, error) {
	d := s.d
	t := s.begin()
	buf := t.buf

	// First select: the district's next order id. Under mvcc the whole
	// join below is consistent by construction: if the snapshot's
	// district shows NextOID = n, every order below n committed at or
	// before the snapshot, together with its order lines.
	dlen := tpcc.TupleLen[core.District]
	dkey := index.KeyWD(in.W, in.D)
	drid, ok := d.districtIdx.get(dkey)
	if !ok {
		return 0, t.fail(fmt.Errorf("db: no district (%d,%d)", in.W, in.D))
	}
	if _, err := t.snapRead(core.District, dkey, storage.UnpackRID(drid), buf[:dlen]); err != nil {
		return 0, t.fail(err)
	}
	var drec DistrictRec
	drec.Unmarshal(buf[:dlen])

	// Join: order lines of orders [next-20, next) against stock.
	loOID := int64(drec.NextOID) - tpcc.StockLevelOrders
	if loOID < 0 {
		loOID = 0
	}
	ollen := tpcc.TupleLen[core.OrderLine]
	slen := tpcc.TupleLen[core.Stock]
	lo := index.KeyWDOL(in.W, in.D, loOID, 0)
	hi := index.KeyWDOL(in.W, in.D, int64(drec.NextOID)-1, 255)
	t.refs = t.refs[:0]
	d.olIdx.ascendRange(lo, hi, func(k, v uint64) bool {
		t.refs = append(t.refs, olref{key: k, rid: v})
		return true
	})
	// The distinct-item set is a linear-scan slice, not a map: the scan
	// covers at most 20 orders × 10 lines, and the slice is reusable
	// transaction scratch while a map would allocate per transaction.
	t.seen = t.seen[:0]
	low := 0
	for _, ref := range t.refs {
		live, err := t.snapRead(core.OrderLine, ref.key, storage.UnpackRID(ref.rid), buf[:ollen])
		if err != nil {
			return 0, t.fail(err)
		}
		if !live {
			// An index entry for an order line committed after the
			// snapshot (mvcc only): not part of this cut.
			continue
		}
		var olrec OrderLineRec
		olrec.Unmarshal(buf[:ollen])

		skey := index.KeyWI(in.W, int64(olrec.IID))
		srid, ok := d.stockIdx.get(skey)
		if !ok {
			return 0, t.fail(fmt.Errorf("db: no stock (%d,%d)", in.W, olrec.IID))
		}
		if _, err := t.snapRead(core.Stock, skey, storage.UnpackRID(srid), buf[:slen]); err != nil {
			return 0, t.fail(err)
		}
		var srec StockRec
		srec.Unmarshal(buf[:slen])
		if srec.Quantity < in.Threshold {
			seen := false
			for _, id := range t.seen {
				if id == srec.IID {
					seen = true
					break
				}
			}
			if !seen {
				t.seen = append(t.seen, srec.IID)
				low++
			}
		}
	}
	if err := t.commit(); err != nil {
		return 0, t.fail(err)
	}
	return low, nil
}
