package db

import (
	"fmt"

	"tpccmodel/internal/core"
	"tpccmodel/internal/engine/index"
	"tpccmodel/internal/engine/storage"
	"tpccmodel/internal/tpcc"
)

// CheckConsistency verifies the TPC-C consistency conditions (the
// benchmark's clause 3.3.2 family) against the live database:
//
//	C1: for every district, d_next_o_id - 1 equals the maximum order id
//	    present (and the maximum pending new-order id, when any exists);
//	C2: every new-order row has a matching order row;
//	C3: every order's ol_cnt equals its number of order-line rows;
//	C4: warehouse YTD equals the sum of its districts' YTDs plus any
//	    difference is explained by history rows (we check the global
//	    form: sum(w_ytd) == sum(d_ytd) == sum(h_amount)).
//
// It returns the first violation found, or nil. The check takes no locks
// and is meant to run on a quiesced database (tests, post-recovery
// verification, the tpcc-engine CLI).
func (d *DB) CheckConsistency() error {
	// Gather per-district aggregates in one pass over each relation.
	type distAgg struct {
		nextOID    int64
		maxOrder   int64
		maxPending int64
		anyPending bool
		ytd        uint64
	}
	nDist := d.cfg.Warehouses * tpcc.DistrictsPerWarehouse
	aggs := make([]distAgg, nDist)
	for i := range aggs {
		aggs[i].maxOrder = -1
		aggs[i].maxPending = -1
	}
	distOf := func(w, dist int64) int { return int(w)*tpcc.DistrictsPerWarehouse + int(dist) }

	err := d.heaps[core.District].Scan(func(_ storage.RID, rec []byte) bool {
		var r DistrictRec
		r.Unmarshal(rec)
		a := &aggs[distOf(int64(r.WID), int64(r.ID))]
		a.nextOID = int64(r.NextOID)
		a.ytd = r.YTDCents
		return true
	})
	if err != nil {
		return err
	}

	olCount := make(map[uint64]int) // packed (w,d,o) -> lines
	if err := d.heaps[core.OrderLine].Scan(func(_ storage.RID, rec []byte) bool {
		var r OrderLineRec
		r.Unmarshal(rec)
		olCount[index.KeyWDO(int64(r.WID), int64(r.DID), int64(r.OID))]++
		return true
	}); err != nil {
		return err
	}

	var c3Err error
	if err := d.heaps[core.Order].Scan(func(_ storage.RID, rec []byte) bool {
		var r OrderRec
		r.Unmarshal(rec)
		a := &aggs[distOf(int64(r.WID), int64(r.DID))]
		if int64(r.OID) > a.maxOrder {
			a.maxOrder = int64(r.OID)
		}
		key := index.KeyWDO(int64(r.WID), int64(r.DID), int64(r.OID))
		if got := olCount[key]; got != int(r.OLCount) {
			c3Err = fmt.Errorf("db: C3: order (%d,%d,%d) has %d lines, ol_cnt says %d",
				r.WID, r.DID, r.OID, got, r.OLCount)
			return false
		}
		return true
	}); err != nil {
		return err
	}
	if c3Err != nil {
		return c3Err
	}

	var c2Err error
	if err := d.heaps[core.NewOrder].Scan(func(_ storage.RID, rec []byte) bool {
		var r NewOrderRec
		r.Unmarshal(rec)
		a := &aggs[distOf(int64(r.WID), int64(r.DID))]
		a.anyPending = true
		if int64(r.OID) > a.maxPending {
			a.maxPending = int64(r.OID)
		}
		if _, ok := d.orderIdx.get(index.KeyWDO(int64(r.WID), int64(r.DID), int64(r.OID))); !ok {
			c2Err = fmt.Errorf("db: C2: new-order (%d,%d,%d) has no order row",
				r.WID, r.DID, r.OID)
			return false
		}
		return true
	}); err != nil {
		return err
	}
	if c2Err != nil {
		return c2Err
	}

	var distYTD uint64
	for i, a := range aggs {
		if a.maxOrder != a.nextOID-1 {
			return fmt.Errorf("db: C1: district %d has next_o_id %d but max order %d",
				i, a.nextOID, a.maxOrder)
		}
		if a.anyPending && a.maxPending > a.nextOID-1 {
			return fmt.Errorf("db: C1: district %d has pending order %d beyond next_o_id %d",
				i, a.maxPending, a.nextOID)
		}
		distYTD += a.ytd
	}

	var whYTD, histTotal uint64
	if err := d.heaps[core.Warehouse].Scan(func(_ storage.RID, rec []byte) bool {
		var r WarehouseRec
		r.Unmarshal(rec)
		whYTD += r.YTDCents
		return true
	}); err != nil {
		return err
	}
	if err := d.heaps[core.History].Scan(func(_ storage.RID, rec []byte) bool {
		var r HistoryRec
		r.Unmarshal(rec)
		histTotal += uint64(r.AmountCents)
		return true
	}); err != nil {
		return err
	}
	if whYTD != histTotal || distYTD != histTotal {
		return fmt.Errorf("db: C4: warehouse YTD %d, district YTD %d, history %d diverge",
			whYTD, distYTD, histTotal)
	}
	return nil
}
