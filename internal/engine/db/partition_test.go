package db

import (
	"testing"

	"tpccmodel/internal/tpcc"
)

// stateHash is the test-side wrapper over DB.StateHash (the committed
// state digest shared with the -cc and partition differential gates).
func stateHash(t *testing.T, d *DB) uint64 {
	t.Helper()
	h, err := d.StateHash()
	if err != nil {
		t.Fatal(err)
	}
	return h
}

// TestPartitionedPoolStateEquivalence runs the same seeded single-worker
// workload against pools partitioned 1/2/8 ways, with a pool small enough
// that every configuration evicts constantly. Partitioning changes WHICH
// pages are resident (each partition runs its own LRU) but must never
// change committed state: the final database must hash identically, and
// C1-C4 must hold, at every P.
func TestPartitionedPoolStateEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("needs a loaded warehouse")
	}
	hashes := map[int]uint64{}
	for _, parts := range []int{1, 2, 8} {
		d, err := Open(Config{
			Warehouses: 1, PageSize: 4096, BufferPages: 256,
			BufferPartitions: parts,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := d.Load(11); err != nil {
			t.Fatal(err)
		}
		if err := RunConcurrent(d, 99, tpcc.DefaultMix(), 1200, 1); err != nil {
			t.Fatal(err)
		}
		if err := d.CheckConsistency(); err != nil {
			t.Fatalf("partitions=%d: %v", parts, err)
		}
		st := d.BufferStats()
		if st.Misses == 0 {
			t.Fatalf("partitions=%d: no evict pressure — pool too large for the test to mean anything", parts)
		}
		hashes[parts] = stateHash(t, d)
	}
	if hashes[1] != hashes[2] || hashes[1] != hashes[8] {
		t.Fatalf("final state diverges across partition counts: P1=%016x P2=%016x P8=%016x",
			hashes[1], hashes[2], hashes[8])
	}
}

// TestPartitionedPoolConcurrent drives a P=8 pool with 4 workers — the
// configuration the partitioning exists for — and checks consistency.
// Under -race this exercises cross-partition pin/unpin/evict traffic.
func TestPartitionedPoolConcurrent(t *testing.T) {
	if testing.Short() {
		t.Skip("needs a loaded warehouse")
	}
	d, err := Open(Config{
		Warehouses: 1, PageSize: 4096, BufferPages: 512,
		BufferPartitions: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Load(7); err != nil {
		t.Fatal(err)
	}
	if _, err := RunConcurrentPolicy(d, 13, tpcc.DefaultMix(), 800, 4, DefaultRetryPolicy()); err != nil {
		t.Fatal(err)
	}
	if err := d.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

// TestConfigValidatePartitions pins the config guard rails: partition
// counts round up to powers of two before the capacity check.
func TestConfigValidatePartitions(t *testing.T) {
	base := Config{Warehouses: 1, PageSize: 4096, BufferPages: 8}
	ok := base
	ok.BufferPartitions = 8
	if err := ok.Validate(); err != nil {
		t.Errorf("8 partitions over 8 pages should validate: %v", err)
	}
	bad := base
	bad.BufferPartitions = 5 // rounds to 8, but so does 6 over 6 pages:
	bad.BufferPages = 6      // 5 -> 8 > 6 must be rejected before bufmgr panics
	if err := bad.Validate(); err == nil {
		t.Error("rounded partition count exceeding the pool must be rejected")
	}
	neg := base
	neg.BufferPartitions = -1
	if err := neg.Validate(); err == nil {
		t.Error("negative partitions must be rejected")
	}
}
