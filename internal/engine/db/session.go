package db

// Session is a reusable execution context for the five TPC-C procedures.
// It owns one txn value whose scratch memory (undo list, before-image
// arena, tuple buffers, range-scan collectors) is recycled across
// transactions, making the committed execute path allocation-free after
// warm-up. A Session is single-threaded: each worker goroutine uses its
// own (the Runner holds one per worker).
//
// The DB-level procedure methods remain for callers without a worker
// structure; they borrow a Session from a pool.
type Session struct {
	d *DB
	t txn
}

// NewSession returns a fresh execution context over d.
func (d *DB) NewSession() *Session { return &Session{d: d} }

// begin starts a transaction on the session's recycled txn value.
func (s *Session) begin() *txn {
	s.t.reset(s.d)
	return &s.t
}

func (d *DB) getSession() *Session {
	if s, ok := d.sessions.Get().(*Session); ok {
		return s
	}
	return d.NewSession()
}

func (d *DB) putSession(s *Session) { d.sessions.Put(s) }

// NewOrder executes the New-Order transaction on a pooled session.
func (d *DB) NewOrder(in NewOrderInput) (NewOrderResult, error) {
	s := d.getSession()
	res, err := s.NewOrder(in)
	d.putSession(s)
	return res, err
}

// Payment executes the Payment transaction on a pooled session.
func (d *DB) Payment(in PaymentInput) error {
	s := d.getSession()
	err := s.Payment(in)
	d.putSession(s)
	return err
}

// OrderStatus executes the Order-Status transaction on a pooled session.
func (d *DB) OrderStatus(in OrderStatusInput) (OrderStatusResult, error) {
	s := d.getSession()
	res, err := s.OrderStatus(in)
	d.putSession(s)
	return res, err
}

// Delivery executes the Delivery transaction on a pooled session.
func (d *DB) Delivery(in DeliveryInput) (DeliveryResult, error) {
	s := d.getSession()
	res, err := s.Delivery(in)
	d.putSession(s)
	return res, err
}

// StockLevel executes the Stock-Level transaction on a pooled session.
func (d *DB) StockLevel(in StockLevelInput) (int, error) {
	s := d.getSession()
	res, err := s.StockLevel(in)
	d.putSession(s)
	return res, err
}
