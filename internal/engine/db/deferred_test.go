package db

import (
	"testing"

	"tpccmodel/internal/core"
	"tpccmodel/internal/tpcc"
)

func TestDeferredDelivery(t *testing.T) {
	d := newLoaded(t, 1<<18)
	q := NewDeliveryQueue(d)
	const n = 30
	for i := 0; i < n; i++ {
		q.Enqueue(DeliveryInput{W: 0, Carrier: uint8(1 + i%10)})
	}
	served, skipped, err := q.Close()
	if err != nil {
		t.Fatal(err)
	}
	if served != n {
		t.Errorf("served %d deliveries, want %d", served, n)
	}
	if skipped != 0 {
		t.Errorf("skipped %d districts with 900 pending each", skipped)
	}
	// 30 deliveries x 10 districts remove 300 new-order rows.
	want := int64(10*900 - n*10)
	if got := d.heaps[core.NewOrder].Live(); got != want {
		t.Errorf("new-order rows = %d, want %d", got, want)
	}
	if err := d.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

// TestDeferredDeliveryConcurrentWithForeground mixes deferred deliveries
// with a foreground mixed workload — the benchmark's actual arrangement —
// and verifies consistency at the end.
func TestDeferredDeliveryConcurrentWithForeground(t *testing.T) {
	d := newLoaded(t, 1<<18)
	q := NewDeliveryQueue(d)
	// Foreground mix without Delivery (it is deferred here).
	mix := tpcc.Mix{
		core.TxnNewOrder:    0.48,
		core.TxnPayment:     0.44,
		core.TxnOrderStatus: 0.04,
		core.TxnStockLevel:  0.04,
	}
	doneCh := make(chan error, 1)
	go func() { doneCh <- RunConcurrent(d, 61, mix, 400, 3) }()
	for i := 0; i < 40; i++ {
		q.Enqueue(DeliveryInput{W: 0, Carrier: 2})
	}
	if err := <-doneCh; err != nil {
		t.Fatal(err)
	}
	served, _, err := q.Close()
	if err != nil {
		t.Fatal(err)
	}
	if served != 40 {
		t.Errorf("served %d, want 40", served)
	}
	if err := d.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

func TestDeliveryQueueCloseIdempotentEnqueue(t *testing.T) {
	d := newLoaded(t, 1<<18)
	q := NewDeliveryQueue(d)
	q.Enqueue(DeliveryInput{W: 0, Carrier: 1})
	served, _, err := q.Close()
	if err != nil || served != 1 {
		t.Fatalf("served %d err %v", served, err)
	}
	// Enqueue after close is a no-op, not a panic.
	q.Enqueue(DeliveryInput{W: 0, Carrier: 1})
	if q.Pending() != 0 {
		t.Error("enqueue after close should be ignored")
	}
}
