package db

import (
	"errors"
	"fmt"
	"time"

	"tpccmodel/internal/core"
	"tpccmodel/internal/engine/index"
	"tpccmodel/internal/engine/lock"
	"tpccmodel/internal/engine/storage"
	"tpccmodel/internal/tpcc"
)

// WriteSkewWitness runs the canonical two-transaction write-skew
// schedule — crossing guard reads over two 50-cent balances, disjoint
// withdrawals — on a throwaway fixture in the given CC mode and reports
// whether the anomalous outcome (both rows drained) was admitted. It is
// the certification probe behind `tpcc-engine cc -check` / the cc-smoke
// CI leg: the expected answers are true for mvcc (SI's one documented
// anomaly), false for 2pl (lock collision) and false for ssi (the
// dangerous-structure abort this mode exists to deliver). Any refusal
// the mode throws — lock timeout, FCW conflict, ssi abort — counts as
// "not admitted"; an unexpected engine error is returned instead.
func WriteSkewWitness(cc CCMode) (bool, error) {
	d, err := OpenWith(Config{Warehouses: 1, PageSize: 4096, BufferPages: 256, CC: cc},
		Options{LockWaitTimeout: 5 * time.Millisecond})
	if err != nil {
		return false, err
	}

	// Two customer rows at balance 50, hand-inserted (no full load).
	n := tpcc.TupleLen[core.Customer]
	seed := d.begin()
	buf := make([]byte, n)
	for dist := int64(0); dist < 2; dist++ {
		cr := CustomerRec{DID: uint32(dist), BalanceCents: 50}
		cr.Marshal(buf)
		key := index.KeyWDC(0, dist, 0)
		if err := seed.lockRow(core.Customer, key, lock.Exclusive); err != nil {
			return false, seed.fail(err)
		}
		rid, err := seed.insertRow(core.Customer, key, buf)
		if err != nil {
			return false, seed.fail(err)
		}
		seed.setIdx(d.customerIdx, key, rid.Pack())
	}
	if err := seed.commit(); err != nil {
		return false, err
	}

	readBal := func(tx *txn, dist int64) (int64, error) {
		key := index.KeyWDC(0, dist, 0)
		rid, ok := d.customerIdx.get(key)
		if !ok {
			return 0, fmt.Errorf("db: witness row %d missing", dist)
		}
		rbuf := make([]byte, n)
		live, err := tx.snapRead(core.Customer, key, storage.UnpackRID(rid), rbuf)
		if err != nil || !live {
			return 0, err
		}
		var rec CustomerRec
		rec.Unmarshal(rbuf)
		return rec.BalanceCents, nil
	}
	drain := func(tx *txn, dist int64) error {
		key := index.KeyWDC(0, dist, 0)
		if err := tx.lockRow(core.Customer, key, lock.Exclusive); err != nil {
			return err
		}
		rid, _ := d.customerIdx.get(key)
		before := make([]byte, n)
		after := make([]byte, n)
		if err := tx.readRec(core.Customer, storage.UnpackRID(rid), before); err != nil {
			return err
		}
		var rec CustomerRec
		rec.Unmarshal(before)
		rec.BalanceCents = 0
		rec.Marshal(after)
		return tx.updateRow(core.Customer, key, storage.UnpackRID(rid), before, after)
	}

	t1 := d.begin()
	t2 := d.begin()
	step := func(tx *txn, guard, victim int64) (bool, error) {
		if _, err := readBal(tx, guard); err != nil {
			if ferr := tx.fail(err); errors.Is(ferr, ErrAborted) {
				return false, nil
			}
			return false, err
		}
		if err := drain(tx, victim); err != nil {
			if ferr := tx.fail(err); errors.Is(ferr, ErrAborted) {
				return false, nil
			}
			return false, err
		}
		return true, nil
	}
	ok1, err := step(t1, 1, 0)
	if err != nil {
		return false, err
	}
	ok2, err := step(t2, 0, 1)
	if err != nil {
		return false, err
	}
	commit := func(tx *txn, ok bool) (bool, error) {
		if !ok {
			return false, nil
		}
		if err := tx.commit(); err != nil {
			if ferr := tx.fail(err); errors.Is(ferr, ErrAborted) {
				return false, nil
			}
			return false, err
		}
		return true, nil
	}
	if ok1, err = commit(t1, ok1); err != nil {
		return false, err
	}
	if ok2, err = commit(t2, ok2); err != nil {
		return false, err
	}

	fin := d.begin()
	b0, err := readBal(fin, 0)
	if err != nil {
		return false, err
	}
	b1, err := readBal(fin, 1)
	if err != nil {
		return false, err
	}
	if err := fin.commit(); err != nil {
		return false, err
	}
	return ok1 && ok2 && b0 == 0 && b1 == 0, nil
}
