package db

import (
	"errors"
	"testing"
	"time"

	"tpccmodel/internal/core"
	"tpccmodel/internal/engine/index"
	"tpccmodel/internal/engine/storage"
	"tpccmodel/internal/rng"
	"tpccmodel/internal/tpcc"
)

// openShardPair opens two one-warehouse instances standing in for a home
// shard and a participant shard, both loaded from the same seed (so Item
// is replicated identically, as on symmetric nodes).
func openShardPair(t *testing.T) (home, part *DB) {
	t.Helper()
	for _, d := range []**DB{&home, &part} {
		db, err := OpenWith(Config{Warehouses: 1, PageSize: 4096, BufferPages: 4096},
			Options{LockWaitTimeout: 20 * time.Millisecond})
		if err != nil {
			t.Fatal(err)
		}
		if err := db.Load(1); err != nil {
			t.Fatal(err)
		}
		*d = db
	}
	return home, part
}

func readStock(t *testing.T, d *DB, w, i int64) StockRec {
	t.Helper()
	rid, ok := d.stockIdx.get(index.KeyWI(w, i))
	if !ok {
		t.Fatalf("no stock (%d,%d)", w, i)
	}
	buf := make([]byte, tpcc.TupleLen[core.Stock])
	if err := d.heaps[core.Stock].Read(storage.UnpackRID(rid), buf); err != nil {
		t.Fatal(err)
	}
	var rec StockRec
	rec.Unmarshal(buf)
	return rec
}

// TestDistNewOrderCommit runs the full happy path of a distributed
// New-Order: home branch with one remote line, participant stock branch,
// participant prepares, home commit decides, participant commits.
func TestDistNewOrderCommit(t *testing.T) {
	home, part := openShardPair(t)
	const gid = 0x10001
	const iid = 42

	s0 := readStock(t, part, 0, iid)

	// Participant first (its vote gates the decision), then home.
	pb, err := part.RemoteStockBegin(gid, []OrderItem{{IID: iid, SupplyW: 0, Qty: 5}})
	if err != nil {
		t.Fatal(err)
	}
	in := NewOrderInput{W: 0, D: 0, C: 0, Items: []OrderItem{
		{IID: 7, SupplyW: 0, Qty: 3},
		{IID: iid, SupplyW: 1, Qty: 5, Remote: true}, // global supplier id 1
	}}
	hb, res, err := home.NewOrderHomeBegin(gid, in)
	if err != nil {
		t.Fatal(err)
	}
	if res.RemoteLines != 1 {
		t.Fatalf("RemoteLines = %d, want 1", res.RemoteLines)
	}
	if err := pb.Prepare(); err != nil {
		t.Fatal(err)
	}
	if err := hb.Commit(); err != nil {
		t.Fatal(err)
	}
	if committed, known := home.GIDOutcome(gid); !known || !committed {
		t.Fatal("home does not record the gid as committed")
	}
	if err := pb.Commit(); err != nil {
		t.Fatal(err)
	}

	s1 := readStock(t, part, 0, iid)
	if s1.YTD != s0.YTD+5 || s1.RemoteCnt != s0.RemoteCnt+1 || s1.OrderCount != s0.OrderCount+1 {
		t.Fatalf("participant stock not updated: before %+v after %+v", s0, s1)
	}
	// The home order-line records the GLOBAL supplier warehouse id.
	olrid, ok := home.olIdx.get(index.KeyWDOL(0, 0, res.OID, 1))
	if !ok {
		t.Fatal("remote order-line missing on home shard")
	}
	buf := make([]byte, tpcc.TupleLen[core.OrderLine])
	if err := home.heaps[core.OrderLine].Read(storage.UnpackRID(olrid), buf); err != nil {
		t.Fatal(err)
	}
	var ol OrderLineRec
	ol.Unmarshal(buf)
	if ol.SupplyWID != 1 {
		t.Fatalf("order-line SupplyWID = %d, want global id 1", ol.SupplyWID)
	}
	// AllLocal must be 0 on the order row.
	orid, _ := home.orderIdx.get(index.KeyWDO(0, 0, res.OID))
	obuf := make([]byte, tpcc.TupleLen[core.Order])
	if err := home.heaps[core.Order].Read(storage.UnpackRID(orid), obuf); err != nil {
		t.Fatal(err)
	}
	var orec OrderRec
	orec.Unmarshal(obuf)
	if orec.AllLocal != 0 {
		t.Fatal("order with a remote line marked all-local")
	}
}

// TestDistPaymentCommit drives a remote Payment: the customer branch on
// the customer's shard resolves the id (by name), the home branch books
// warehouse/district YTD and history with the resolved id.
func TestDistPaymentCommit(t *testing.T) {
	home, part := openShardPair(t)
	const gid = 0x20001
	const amount = 1234

	rb, cid, selected, err := part.RemotePaymentBegin(gid, 0, 3, true, 0, 5, amount)
	if err != nil {
		t.Fatal(err)
	}
	if selected < 1 {
		t.Fatalf("selected = %d, want >= 1 tuples for a by-name select", selected)
	}
	in := PaymentInput{W: 0, D: 2, AmountCents: amount}
	// Global customer coordinates: warehouse 1 (the participant), district 3.
	hb, err := home.PaymentHomeBegin(gid, in, 1, 3, cid)
	if err != nil {
		t.Fatal(err)
	}
	if err := rb.Prepare(); err != nil {
		t.Fatal(err)
	}
	if err := hb.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := rb.Commit(); err != nil {
		t.Fatal(err)
	}
	crec := readCustomer(t, part, 0, 3, cid)
	if crec.YTDPayCents < amount || crec.PaymentCount == 0 {
		t.Fatalf("customer not updated: %+v", crec)
	}
	// One history row carries the global coordinates.
	found := false
	hlen := tpcc.TupleLen[core.History]
	if err := home.heaps[core.History].Scan(func(_ storage.RID, rec []byte) bool {
		var h HistoryRec
		h.Unmarshal(rec[:hlen])
		if h.CWID == 1 && h.CDID == 3 && h.CID == uint32(cid) && h.AmountCents == amount {
			found = true
			return false
		}
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if !found {
		t.Fatal("home history row with global customer coordinates not found")
	}
}

// TestInDoubtRecovery crashes a participant between PREPARE and the
// decision. Recovery must roll the branch back to before-images, surface
// it as in-doubt, and hold exclusive locks on its rows until resolution.
func TestInDoubtRecovery(t *testing.T) {
	for _, commit := range []bool{true, false} {
		name := "resolve-abort"
		if commit {
			name = "resolve-commit"
		}
		t.Run(name, func(t *testing.T) {
			_, part := openShardPair(t)
			const gid = 0x30001
			const iid = 9

			s0 := readStock(t, part, 0, iid)
			pb, err := part.RemoteStockBegin(gid, []OrderItem{{IID: iid, SupplyW: 0, Qty: 7}})
			if err != nil {
				t.Fatal(err)
			}
			if err := pb.Prepare(); err != nil {
				t.Fatal(err)
			}
			// Power loss before any decision arrives.
			if err := part.CrashPowerLoss(rng.New(3)); err != nil {
				t.Fatal(err)
			}
			if err := part.Recover(); err != nil {
				t.Fatal(err)
			}

			ids := part.InDoubt()
			if len(ids) != 1 || ids[0].GID != gid {
				t.Fatalf("in-doubt = %+v, want one branch with gid %#x", ids, gid)
			}
			if got := readStock(t, part, 0, iid); got.YTD != s0.YTD {
				t.Fatalf("in-doubt rows not at before-image: YTD %d, want %d", got.YTD, s0.YTD)
			}
			// The undecided row must be locked: an independent writer times out.
			if _, err := part.RemoteStockBegin(0x30002, []OrderItem{{IID: iid, SupplyW: 0, Qty: 1}}); !errors.Is(err, ErrAborted) {
				t.Fatalf("write to in-doubt row: err = %v, want ErrAborted", err)
			}

			if err := part.ResolveInDoubt(gid, commit); err != nil {
				t.Fatal(err)
			}
			if n := len(part.InDoubt()); n != 0 {
				t.Fatalf("%d branches still in doubt after resolution", n)
			}
			got := readStock(t, part, 0, iid)
			if commit && got.YTD != s0.YTD+7 {
				t.Fatalf("commit resolution: YTD %d, want %d", got.YTD, s0.YTD+7)
			}
			if !commit && got.YTD != s0.YTD {
				t.Fatalf("abort resolution: YTD %d, want %d", got.YTD, s0.YTD)
			}
			// Locks must be free again.
			b, err := part.RemoteStockBegin(0x30003, []OrderItem{{IID: iid, SupplyW: 0, Qty: 1}})
			if err != nil {
				t.Fatalf("row still locked after resolution: %v", err)
			}
			if err := b.Abort(); err != nil {
				t.Fatal(err)
			}

			// The resolution itself must be crash-safe: another power loss
			// replays the decided state.
			want := got.YTD
			if err := part.CrashPowerLoss(rng.New(4)); err != nil {
				t.Fatal(err)
			}
			if err := part.Recover(); err != nil {
				t.Fatal(err)
			}
			if n := len(part.InDoubt()); n != 0 {
				t.Fatalf("resolved branch re-surfaced in doubt after second crash (%d)", n)
			}
			if got := readStock(t, part, 0, iid); got.YTD != want {
				t.Fatalf("decided state lost across crash: YTD %d, want %d", got.YTD, want)
			}
		})
	}
}

// TestPresumedAbort: a coordinator with no durable decision for a gid
// reports unknown, which participants must read as abort. A crashed
// coordinator forgets undecided gids but remembers forced commits.
func TestPresumedAbort(t *testing.T) {
	home, _ := openShardPair(t)
	const gidCommitted, gidForgotten = 0x40001, 0x40002

	in := NewOrderInput{W: 0, D: 0, C: 0, Items: []OrderItem{{IID: 1, SupplyW: 0, Qty: 1}}}
	hb, _, err := home.NewOrderHomeBegin(gidCommitted, in)
	if err != nil {
		t.Fatal(err)
	}
	if err := hb.Commit(); err != nil {
		t.Fatal(err)
	}
	// An aborted distributed transaction: the abort record is best-effort
	// and its gid may never reach the log — outcome stays unknown after a
	// crash, which presumed abort reads as aborted.
	in.D = 1
	hb2, _, err := home.NewOrderHomeBegin(gidForgotten, in)
	if err != nil {
		t.Fatal(err)
	}
	if err := hb2.Abort(); err != nil {
		t.Fatal(err)
	}

	if err := home.CrashPowerLoss(rng.New(5)); err != nil {
		t.Fatal(err)
	}
	if err := home.Recover(); err != nil {
		t.Fatal(err)
	}
	if committed, known := home.GIDOutcome(gidCommitted); !known || !committed {
		t.Fatal("forced commit decision lost across crash")
	}
	if committed, _ := home.GIDOutcome(gidForgotten); committed {
		t.Fatal("aborted gid reads as committed")
	}
}

// TestForsakeLeavesDurableStateAlone: forsaking a prepared branch (dead
// device path) releases its locks without logging; recovery still finds
// the branch in doubt from the durable prepare record.
func TestForsakeLeavesDurableStateAlone(t *testing.T) {
	_, part := openShardPair(t)
	const gid = 0x50001
	pb, err := part.RemoteStockBegin(gid, []OrderItem{{IID: 3, SupplyW: 0, Qty: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if err := pb.Prepare(); err != nil {
		t.Fatal(err)
	}
	pb.Forsake()
	if err := part.CrashPowerLoss(rng.New(6)); err != nil {
		t.Fatal(err)
	}
	if err := part.Recover(); err != nil {
		t.Fatal(err)
	}
	ids := part.InDoubt()
	if len(ids) != 1 || ids[0].GID != gid {
		t.Fatalf("forsaken prepared branch not in doubt after recovery: %+v", ids)
	}
	if err := part.ResolveInDoubt(gid, false); err != nil {
		t.Fatal(err)
	}
}
