package db

import (
	"fmt"

	"tpccmodel/internal/core"
	"tpccmodel/internal/engine/index"
	"tpccmodel/internal/engine/lock"
	"tpccmodel/internal/engine/storage"
	"tpccmodel/internal/engine/wal"
	"tpccmodel/internal/tpcc"
)

// This file is the engine's two-phase-commit surface. A distributed
// transaction is a home branch on its coordinator shard plus participant
// branches on remote shards, each an ordinary strict-2PL transaction on
// its own DB instance. The protocol is presumed abort:
//
//   - participant branches PREPARE (a forced wal.RecPrepare carrying the
//     gid), after which they survive any crash as in-doubt state;
//   - the home branch never prepares — its forced commit record, carrying
//     the gid, IS the global decision record;
//   - a participant commit/abort record also carries the gid, closing the
//     branch;
//   - a recovering participant finds prepared-but-undecided branches,
//     rolls their rows back to before-images, re-locks them exclusively,
//     and asks the coordinator's outcome map (GIDOutcome). No durable
//     decision at the coordinator means abort — so abort paths never
//     require logging, only commit decisions do.

// Branch is one open branch of a distributed transaction: a transaction
// that has executed its operations but not yet committed, exposed so a
// coordinator can drive prepare/commit/abort across shards.
type Branch struct {
	t        *txn
	gid      uint64
	prepared bool
}

// GID returns the branch's global transaction id.
func (b *Branch) GID() uint64 { return b.gid }

// Prepare forces a prepare record: the branch's writes and its vote
// survive any crash after this returns. A failed force aborts the branch
// (it voted no) and returns the error.
//
// Under CCSSI the serializability validation runs HERE, not at commit: a
// prepared branch has voted yes and must be able to commit whatever the
// coordinator decides, so this is the last moment the branch may abort
// itself. PreCommit also latches the transaction's conflict record —
// from here on, a concurrent transaction that would complete a dangerous
// structure through this branch aborts itself instead. Cross-shard
// serializability is still only per-shard (each shard validates its own
// edge graph; no global cycle detection), the same honesty caveat as the
// per-shard snapshot cut.
func (b *Branch) Prepare() error {
	if b.t.d.ccSSI && !b.t.ssiChecked {
		if err := b.t.d.mvcc.PreCommit(&b.t.mv); err != nil {
			_ = b.t.rollbackWith(b.gid)
			return ErrSSIAbort
		}
		b.t.ssiChecked = true
	}
	if _, err := b.t.d.log.Append(wal.Record{
		Txn: uint64(b.t.id), Type: wal.RecPrepare, RID: b.gid,
	}); err != nil {
		_ = b.t.rollbackWith(b.gid)
		return err
	}
	b.prepared = true
	return nil
}

// Commit forces the branch's commit record (carrying the gid) and
// releases its locks. On the home branch this record is the global
// decision. A failed force leaves the branch open — locks held, undo
// intact — so the caller may retry, abort, or (device dead) Forsake.
func (b *Branch) Commit() error { return b.t.commitWith(b.gid) }

// Abort rolls the branch back: undo in reverse, an abort record carrying
// the gid (best-effort — presumed abort needs no durable decision), and
// lock release.
func (b *Branch) Abort() error { return b.t.rollbackWith(b.gid) }

// Forsake abandons the branch without logging or undo: locks are
// released and the in-memory undo list is dropped. Only valid when the
// shard's device is dead — the durable log then owns the branch's fate
// (in-doubt if prepared, presumed abort otherwise) and crash recovery
// will restore a correct state. On a live device Forsake would corrupt:
// other transactions could overwrite rows recovery later re-applies.
func (b *Branch) Forsake() {
	b.t.undo = b.t.undo[:0]
	if b.t.d.ccMVCC {
		// Drop the chain state too (pop versions, clear writer marks,
		// deregister the snapshot); nil retire ring — the dead device's
		// recovery path resets the whole store anyway.
		b.t.d.mvcc.Abort(&b.t.mv, nil)
	}
	b.t.end()
	b.t.d.locks.ReleaseAll(b.t.id)
}

// setOutcome records a gid decision in the coordinator's outcome map.
func (d *DB) setOutcome(gid uint64, committed bool) {
	d.distMu.Lock()
	if d.outcomes == nil {
		d.outcomes = make(map[uint64]bool)
	}
	d.outcomes[gid] = committed
	d.distMu.Unlock()
}

// GIDOutcome reports this coordinator's decision for gid. known=false
// means no decision is recorded — under presumed abort the caller must
// treat that as aborted (the gid never reached its decision record).
func (d *DB) GIDOutcome(gid uint64) (committed, known bool) {
	d.distMu.Lock()
	defer d.distMu.Unlock()
	committed, known = d.outcomes[gid]
	return committed, known
}

// InDoubt returns the in-doubt branches the most recent recovery
// surfaced, in prepare order.
func (d *DB) InDoubt() []wal.InDoubtTxn {
	d.distMu.Lock()
	defer d.distMu.Unlock()
	return append([]wal.InDoubtTxn(nil), d.inDoubt...)
}

// lockKeyFor derives the logical row-lock key a log record's row maps to.
// Only the relations participant branches write need translating.
func lockKeyFor(r wal.Record) (lock.Key, error) {
	img := r.Before
	if img == nil {
		img = r.After
	}
	if img == nil {
		return lock.Key{}, fmt.Errorf("db: record %s table %d has no image", r.Type, r.Table)
	}
	switch core.Relation(r.Table) {
	case core.Stock:
		var rec StockRec
		rec.Unmarshal(img)
		return lock.Key{Table: r.Table, Row: index.KeyWI(int64(rec.WID), int64(rec.IID))}, nil
	case core.Customer:
		var rec CustomerRec
		rec.Unmarshal(img)
		return lock.Key{Table: r.Table, Row: index.KeyWDC(int64(rec.WID), int64(rec.DID), int64(rec.ID))}, nil
	default:
		return lock.Key{}, fmt.Errorf("db: in-doubt record on unexpected relation %s",
			core.Relation(r.Table))
	}
}

// relockInDoubt re-acquires exclusive locks on every in-doubt branch's
// rows, so post-recovery traffic cannot write rows whose final state is
// still undecided. Runs on the quiesced recovery path: all locks are free
// and acquisition cannot block.
func (d *DB) relockInDoubt(branches []wal.InDoubtTxn) error {
	for _, b := range branches {
		for _, r := range b.Records {
			key, err := lockKeyFor(r)
			if err != nil {
				return err
			}
			if err := d.locks.Acquire(lock.TxnID(b.Txn), key, lock.Exclusive); err != nil {
				return fmt.Errorf("db: re-locking in-doubt gid %d: %w", b.GID, err)
			}
		}
	}
	return nil
}

// ResolveInDoubt settles one in-doubt branch with the coordinator's
// decision. Commit decisions are made crash-safe BEFORE any row changes:
// the decision record is forced first, so a crash mid-resolution either
// leaves the branch in-doubt (decision not durable, resolution re-runs)
// or recovers it as a normally committed transaction (decision durable,
// after-images re-applied by recovery itself). Abort is the presumed
// path: rows already hold before-images, so only locks need releasing.
func (d *DB) ResolveInDoubt(gid uint64, commit bool) error {
	d.distMu.Lock()
	idx := -1
	for i, b := range d.inDoubt {
		if b.GID == gid {
			idx = i
			break
		}
	}
	if idx < 0 {
		d.distMu.Unlock()
		return fmt.Errorf("db: no in-doubt branch for gid %d", gid)
	}
	b := d.inDoubt[idx]
	d.distMu.Unlock()

	if commit {
		if _, err := d.log.Append(wal.Record{
			Txn: b.Txn, Type: wal.RecCommit, RID: gid,
		}); err != nil {
			return err
		}
		rebuild := false
		for _, r := range b.Records {
			h := d.heaps[r.Table]
			if err := (heapApplier{h: h}).Apply(r.RID, r.After); err != nil {
				return fmt.Errorf("db: re-applying gid %d: %w", gid, err)
			}
			if r.Type != wal.RecUpdate {
				// Inserts/deletes change index membership; participant
				// branches are update-only today, but stay correct if
				// that ever changes.
				rebuild = true
			}
		}
		if rebuild {
			if err := d.RebuildIndexes(); err != nil {
				return err
			}
		}
		d.commits.Add(1)
	} else {
		_, _ = d.log.Append(wal.Record{Txn: b.Txn, Type: wal.RecAbort, RID: gid})
		d.aborts.Add(1)
	}
	d.locks.ReleaseAll(lock.TxnID(b.Txn))

	d.distMu.Lock()
	for i := range d.inDoubt {
		if d.inDoubt[i].GID == gid {
			d.inDoubt = append(d.inDoubt[:i], d.inDoubt[i+1:]...)
			break
		}
	}
	d.distMu.Unlock()
	return nil
}

// NewOrderHomeBegin executes the home-shard share of a distributed
// New-Order and returns the open branch for the coordinator to finish.
// Items flagged Remote are supplied by another shard: their stock update
// happens in that shard's participant branch, while the item read (Item
// is replicated on every shard) and the order-line insert — whose
// SupplyWID column records the GLOBAL supplier warehouse id — stay home.
// An error means the branch already rolled back (ErrAborted = retry).
func (d *DB) NewOrderHomeBegin(gid uint64, in NewOrderInput) (*Branch, NewOrderResult, error) {
	t := d.begin()
	var res NewOrderResult

	var wrec WarehouseRec
	wrid, ok := d.warehouseIdx.get(uint64(in.W))
	if !ok {
		return nil, res, t.fail(fmt.Errorf("db: no warehouse %d", in.W))
	}
	buf := t.buf
	if _, err := t.snapRead(core.Warehouse, uint64(in.W), storage.UnpackRID(wrid), buf[:tpcc.TupleLen[core.Warehouse]]); err != nil {
		return nil, res, t.fail(err)
	}
	wrec.Unmarshal(buf[:tpcc.TupleLen[core.Warehouse]])

	dkey := index.KeyWD(in.W, in.D)
	if err := t.lockRow(core.District, dkey, lock.Exclusive); err != nil {
		return nil, res, t.fail(err)
	}
	drid, ok := d.districtIdx.get(dkey)
	if !ok {
		return nil, res, t.fail(fmt.Errorf("db: no district (%d,%d)", in.W, in.D))
	}
	dlen := tpcc.TupleLen[core.District]
	if err := t.readRec(core.District, storage.UnpackRID(drid), buf[:dlen]); err != nil {
		return nil, res, t.fail(err)
	}
	var drec DistrictRec
	drec.Unmarshal(buf[:dlen])
	oid := int64(drec.NextOID)
	drec.NextOID++
	drec.Marshal(t.img[:dlen])
	if err := t.updateRow(core.District, dkey, storage.UnpackRID(drid), buf[:dlen], t.img[:dlen]); err != nil {
		return nil, res, t.fail(err)
	}

	ckey := index.KeyWDC(in.W, in.D, in.C)
	crid, ok := d.customerIdx.get(ckey)
	if !ok {
		return nil, res, t.fail(fmt.Errorf("db: no customer (%d,%d,%d)", in.W, in.D, in.C))
	}
	if _, err := t.snapRead(core.Customer, ckey, storage.UnpackRID(crid), buf[:tpcc.TupleLen[core.Customer]]); err != nil {
		return nil, res, t.fail(err)
	}

	allLocal := uint8(1)
	for _, it := range in.Items {
		if it.Remote {
			allLocal = 0
		}
	}
	okey := index.KeyWDO(in.W, in.D, oid)
	if err := t.lockRow(core.Order, okey, lock.Exclusive); err != nil {
		return nil, res, t.fail(err)
	}
	orec := OrderRec{
		OID: uint32(oid), CID: uint32(in.C), WID: uint16(in.W), DID: uint8(in.D),
		OLCount: uint8(len(in.Items)), AllLocal: allLocal, EntryTick: d.nextTick(),
	}
	olen := tpcc.TupleLen[core.Order]
	orec.Marshal(buf[:olen])
	orid, err := t.insertRow(core.Order, okey, buf[:olen])
	if err != nil {
		return nil, res, t.fail(err)
	}
	t.setIdx(d.orderIdx, okey, orid.Pack())
	t.setIdx(d.custOrderIdx, index.KeyWDCO(in.W, in.D, in.C, oid), orid.Pack())

	if err := t.lockRow(core.NewOrder, okey, lock.Exclusive); err != nil {
		return nil, res, t.fail(err)
	}
	norec := NewOrderRec{OID: uint32(oid), WID: uint16(in.W), DID: uint8(in.D)}
	nolen := tpcc.TupleLen[core.NewOrder]
	norec.Marshal(buf[:nolen])
	norid, err := t.insertRow(core.NewOrder, okey, buf[:nolen])
	if err != nil {
		return nil, res, t.fail(err)
	}
	t.setIdx(d.newOrderIdx, okey, norid.Pack())

	ilen := tpcc.TupleLen[core.Item]
	slen := tpcc.TupleLen[core.Stock]
	ollen := tpcc.TupleLen[core.OrderLine]
	for n, it := range in.Items {
		irid, ok := d.itemIdx.get(uint64(it.IID))
		if !ok {
			return nil, res, t.fail(fmt.Errorf("db: no item %d", it.IID))
		}
		if _, err := t.snapRead(core.Item, uint64(it.IID), storage.UnpackRID(irid), buf[:ilen]); err != nil {
			return nil, res, t.fail(err)
		}
		var irec ItemRec
		irec.Unmarshal(buf[:ilen])

		if !it.Remote {
			skey := index.KeyWI(it.SupplyW, it.IID)
			if err := t.lockRow(core.Stock, skey, lock.Exclusive); err != nil {
				return nil, res, t.fail(err)
			}
			srid, ok := d.stockIdx.get(skey)
			if !ok {
				return nil, res, t.fail(fmt.Errorf("db: no stock (%d,%d)", it.SupplyW, it.IID))
			}
			if err := t.readRec(core.Stock, storage.UnpackRID(srid), buf[:slen]); err != nil {
				return nil, res, t.fail(err)
			}
			var srec StockRec
			srec.Unmarshal(buf[:slen])
			applyStockOrder(&srec, it.Qty, false)
			srec.Marshal(t.img[:slen])
			if err := t.updateRow(core.Stock, skey, storage.UnpackRID(srid), buf[:slen], t.img[:slen]); err != nil {
				return nil, res, t.fail(err)
			}
		} else {
			res.RemoteLines++
		}

		amount := uint32(it.Qty) * irec.PriceCents
		olkey := index.KeyWDOL(in.W, in.D, oid, int64(n))
		if err := t.lockRow(core.OrderLine, olkey, lock.Exclusive); err != nil {
			return nil, res, t.fail(err)
		}
		olrec := OrderLineRec{
			OID: uint32(oid), IID: uint32(it.IID), SupplyWID: uint16(it.SupplyW),
			WID: uint16(in.W), DID: uint8(in.D), Number: uint8(n),
			Quantity: uint8(it.Qty), AmountCents: amount,
		}
		olrec.Marshal(buf[:ollen])
		olrid, err := t.insertRow(core.OrderLine, olkey, buf[:ollen])
		if err != nil {
			return nil, res, t.fail(err)
		}
		t.setIdx(d.olIdx, olkey, olrid.Pack())
		res.TotalCents += uint64(amount)
	}

	res.OID = oid
	return &Branch{t: t, gid: gid}, res, nil
}

// applyStockOrder applies the New-Order stock mutation rules in place.
func applyStockOrder(s *StockRec, qty int64, remote bool) {
	s.Quantity -= int32(qty)
	if s.Quantity < 10 {
		s.Quantity += 91
	}
	s.YTD += uint64(qty)
	s.OrderCount++
	if remote {
		s.RemoteCnt++
	}
}

// RemoteStockBegin executes a participant's share of a distributed
// New-Order: the stock read+update for the items this shard supplies.
// Each item's SupplyW must be a warehouse LOCAL to this instance; every
// update counts as remote (s_remote_cnt). The order-line rows live on the
// home shard. An error means the branch already rolled back.
func (d *DB) RemoteStockBegin(gid uint64, items []OrderItem) (*Branch, error) {
	t := d.begin()
	slen := tpcc.TupleLen[core.Stock]
	buf := t.buf
	for _, it := range items {
		skey := index.KeyWI(it.SupplyW, it.IID)
		if err := t.lockRow(core.Stock, skey, lock.Exclusive); err != nil {
			return nil, t.fail(err)
		}
		srid, ok := d.stockIdx.get(skey)
		if !ok {
			return nil, t.fail(fmt.Errorf("db: no stock (%d,%d)", it.SupplyW, it.IID))
		}
		if err := t.readRec(core.Stock, storage.UnpackRID(srid), buf[:slen]); err != nil {
			return nil, t.fail(err)
		}
		var srec StockRec
		srec.Unmarshal(buf[:slen])
		applyStockOrder(&srec, it.Qty, true)
		srec.Marshal(t.img[:slen])
		if err := t.updateRow(core.Stock, skey, storage.UnpackRID(srid), buf[:slen], t.img[:slen]); err != nil {
			return nil, t.fail(err)
		}
	}
	return &Branch{t: t, gid: gid}, nil
}

// PaymentHomeBegin executes the home-shard share of a remote Payment:
// warehouse and district YTD updates plus the history insert. The
// customer update happens on the customer's shard (RemotePaymentBegin);
// custW/custD/custC are GLOBAL coordinates recorded in the history row.
func (d *DB) PaymentHomeBegin(gid uint64, in PaymentInput, custW, custD, custC int64) (*Branch, error) {
	t := d.begin()
	buf := t.buf

	wlen := tpcc.TupleLen[core.Warehouse]
	if err := t.lockRow(core.Warehouse, uint64(in.W), lock.Exclusive); err != nil {
		return nil, t.fail(err)
	}
	wrid, ok := d.warehouseIdx.get(uint64(in.W))
	if !ok {
		return nil, t.fail(fmt.Errorf("db: no warehouse %d", in.W))
	}
	if err := t.readRec(core.Warehouse, storage.UnpackRID(wrid), buf[:wlen]); err != nil {
		return nil, t.fail(err)
	}
	var wrec WarehouseRec
	wrec.Unmarshal(buf[:wlen])
	wrec.YTDCents += uint64(in.AmountCents)
	wrec.Marshal(t.img[:wlen])
	if err := t.updateRow(core.Warehouse, uint64(in.W), storage.UnpackRID(wrid), buf[:wlen], t.img[:wlen]); err != nil {
		return nil, t.fail(err)
	}

	dlen := tpcc.TupleLen[core.District]
	dkey := index.KeyWD(in.W, in.D)
	if err := t.lockRow(core.District, dkey, lock.Exclusive); err != nil {
		return nil, t.fail(err)
	}
	drid, ok := d.districtIdx.get(dkey)
	if !ok {
		return nil, t.fail(fmt.Errorf("db: no district (%d,%d)", in.W, in.D))
	}
	if err := t.readRec(core.District, storage.UnpackRID(drid), buf[:dlen]); err != nil {
		return nil, t.fail(err)
	}
	var drec DistrictRec
	drec.Unmarshal(buf[:dlen])
	drec.YTDCents += uint64(in.AmountCents)
	drec.Marshal(t.img[:dlen])
	if err := t.updateRow(core.District, dkey, storage.UnpackRID(drid), buf[:dlen], t.img[:dlen]); err != nil {
		return nil, t.fail(err)
	}

	hlen := tpcc.TupleLen[core.History]
	hrec := HistoryRec{
		CID: uint32(custC), CWID: uint16(custW), CDID: uint8(custD),
		DID: uint8(in.D), WID: uint16(in.W),
		AmountCents: in.AmountCents, Tick: d.nextTick(),
	}
	hrec.Marshal(buf[:hlen])
	if _, err := t.insertRec(core.History, buf[:hlen]); err != nil {
		return nil, t.fail(err)
	}
	return &Branch{t: t, gid: gid}, nil
}

// RemotePaymentBegin executes the customer's-shard share of a remote
// Payment: select the customer (by id or by last-name ordinal, LOCAL
// warehouse/district coordinates) and apply the balance/ytd/payment-count
// update. It returns the resolved customer id — so the coordinator can
// record it in the home shard's history row — and the number of customer
// tuples the selection touched (1 by id, the name-group size by name),
// the Appendix A remote-call measurement.
func (d *DB) RemotePaymentBegin(gid uint64, w, dist int64, byName bool, c, nameOrd int64, amountCents uint32) (*Branch, int64, int, error) {
	t := d.begin()
	buf := t.buf

	cid, selected := c, 1
	if byName {
		var err error
		cid, selected, err = t.middleCustomerByName(w, dist, nameOrd, buf)
		if err != nil {
			return nil, 0, 0, t.fail(err)
		}
	}
	clen := tpcc.TupleLen[core.Customer]
	ckey := index.KeyWDC(w, dist, cid)
	if err := t.lockRow(core.Customer, ckey, lock.Exclusive); err != nil {
		return nil, 0, 0, t.fail(err)
	}
	crid, ok := d.customerIdx.get(ckey)
	if !ok {
		return nil, 0, 0, t.fail(fmt.Errorf("db: no customer (%d,%d,%d)", w, dist, cid))
	}
	if err := t.readRec(core.Customer, storage.UnpackRID(crid), buf[:clen]); err != nil {
		return nil, 0, 0, t.fail(err)
	}
	var crec CustomerRec
	crec.Unmarshal(buf[:clen])
	crec.BalanceCents -= int64(amountCents)
	crec.YTDPayCents += uint64(amountCents)
	crec.PaymentCount++
	crec.Marshal(t.img[:clen])
	if err := t.updateRow(core.Customer, ckey, storage.UnpackRID(crid), buf[:clen], t.img[:clen]); err != nil {
		return nil, 0, 0, t.fail(err)
	}
	return &Branch{t: t, gid: gid}, cid, selected, nil
}
