package db

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"tpccmodel/internal/core"
	"tpccmodel/internal/engine/index"
	"tpccmodel/internal/engine/lock"
	"tpccmodel/internal/engine/storage"
	"tpccmodel/internal/tpcc"
)

// SmallBank (Cahill's thesis, appendix B; the OLTPBench port of it) is
// the standard snapshot-isolation stressor: five tiny procedures over
// (checking, savings) account pairs whose guard reads cross their
// writes. It rides here as the second SI/SSI witness beside the TPC-C
// write-skew schedule — a workload where, unlike TPC-C itself, SI
// genuinely admits a non-serializable state.
//
// Mapping onto the tiny fixture: account a = district a; checking is
// customer row (0,a,0) — the row openTiny already loads — and savings is
// customer row (0,a,1), seeded by openSmallBank. Balances live in
// CustomerRec.BalanceCents.
//
// One deliberate deviation: the thesis Amalgamate zeroes BOTH source
// balances, which overlaps WriteCheck's write set on chk(a) and lets
// plain first-committer-wins mask the anomaly as an ordinary write
// conflict. This port's Amalgamate moves the savings balance only,
// guarded on the account not being overdrawn (sav+chk > 0) — the guard
// preserves the crossing read of chk(a), keeping the WriteCheck /
// Amalgamate pair a true write-skew witness with disjoint write sets.

const (
	sbChecking = 0
	sbSavings  = 1
)

// openSmallBank extends the tiny fixture with a savings row per
// district.
func openSmallBank(t *testing.T, cc CCMode) *DB {
	t.Helper()
	d := openTiny(t, cc)
	tx := d.begin()
	buf := make([]byte, tpcc.TupleLen[core.Customer])
	for dist := int64(0); dist < tinyDistricts; dist++ {
		cr := CustomerRec{DID: uint32(dist), CreditLimit: 50000}
		cr.Marshal(buf)
		key := index.KeyWDC(0, dist, sbSavings)
		if err := tx.lockRow(core.Customer, key, lock.Exclusive); err != nil {
			t.Fatal(err)
		}
		rid, err := tx.insertRow(core.Customer, key, buf)
		if err != nil {
			t.Fatal(err)
		}
		tx.setIdx(d.customerIdx, key, rid.Pack())
	}
	if err := tx.commit(); err != nil {
		t.Fatal(err)
	}
	return d
}

// sbBalanceOf snap-reads one balance of account acct.
func sbBalanceOf(tx *txn, acct, which int64) (int64, error) {
	key := index.KeyWDC(0, acct, which)
	rid, ok := tx.d.customerIdx.get(key)
	if !ok {
		return 0, fmt.Errorf("smallbank: account (%d,%d) missing", acct, which)
	}
	buf := make([]byte, tpcc.TupleLen[core.Customer])
	live, err := tx.snapRead(core.Customer, key, storage.UnpackRID(rid), buf)
	if err != nil || !live {
		return 0, err
	}
	var rec CustomerRec
	rec.Unmarshal(buf)
	return rec.BalanceCents, nil
}

// sbMut locks and read-modify-writes one balance.
func sbMut(tx *txn, acct, which int64, mut func(*int64)) error {
	key := index.KeyWDC(0, acct, which)
	if err := tx.lockRow(core.Customer, key, lock.Exclusive); err != nil {
		return err
	}
	rid, _ := tx.d.customerIdx.get(key)
	n := tpcc.TupleLen[core.Customer]
	before := make([]byte, n)
	after := make([]byte, n)
	if err := tx.readRec(core.Customer, storage.UnpackRID(rid), before); err != nil {
		return err
	}
	var rec CustomerRec
	rec.Unmarshal(before)
	mut(&rec.BalanceCents)
	rec.Marshal(after)
	return tx.updateRow(core.Customer, key, storage.UnpackRID(rid), before, after)
}

// The procedures. Each returns the signed delta it applied to the total
// money supply (zero for pure moves and refusals), so the stress test
// can check conservation against committed deltas only.

func sbDepositChecking(tx *txn, a, v int64) (int64, error) {
	return v, sbMut(tx, a, sbChecking, func(b *int64) { *b += v })
}

func sbTransactSavings(tx *txn, a, v int64) (int64, error) {
	applied := int64(0)
	err := sbMut(tx, a, sbSavings, func(b *int64) {
		if *b+v >= 0 {
			*b += v
			applied = v
		}
	})
	return applied, err
}

func sbWriteCheck(tx *txn, a, v int64) (int64, error) {
	sav, err := sbBalanceOf(tx, a, sbSavings)
	if err != nil {
		return 0, err
	}
	chk, err := sbBalanceOf(tx, a, sbChecking)
	if err != nil {
		return 0, err
	}
	delta := -v
	if sav+chk < v {
		delta = -(v + 1) // overdraft penalty
	}
	return delta, sbMut(tx, a, sbChecking, func(b *int64) { *b += delta })
}

func sbAmalgamate(tx *txn, a, b int64) error {
	sav, err := sbBalanceOf(tx, a, sbSavings)
	if err != nil {
		return err
	}
	chk, err := sbBalanceOf(tx, a, sbChecking)
	if err != nil {
		return err
	}
	if sav+chk <= 0 || sav == 0 {
		return nil // overdrawn or nothing to move: leave untouched
	}
	if err := sbMut(tx, a, sbSavings, func(bal *int64) { *bal = 0 }); err != nil {
		return err
	}
	return sbMut(tx, b, sbChecking, func(bal *int64) { *bal += sav })
}

// sbSeed commits sav(a)=100 with every other balance zero.
func sbSeed(t *testing.T, d *DB) {
	t.Helper()
	tx := d.begin()
	if err := sbMut(tx, 0, sbSavings, func(b *int64) { *b = 100 }); err != nil {
		t.Fatal(err)
	}
	if err := tx.commit(); err != nil {
		t.Fatal(err)
	}
}

// sbState reads (sav(a), chk(a), chk(b)) in a fresh snapshot.
func sbState(t *testing.T, d *DB) (sav, chkA, chkB int64) {
	t.Helper()
	fin := d.begin()
	var err error
	if sav, err = sbBalanceOf(fin, 0, sbSavings); err != nil {
		t.Fatal(err)
	}
	if chkA, err = sbBalanceOf(fin, 0, sbChecking); err != nil {
		t.Fatal(err)
	}
	if chkB, err = sbBalanceOf(fin, 1, sbChecking); err != nil {
		t.Fatal(err)
	}
	if err := fin.commit(); err != nil {
		t.Fatal(err)
	}
	return sav, chkA, chkB
}

// TestSmallBankSkew runs the WriteCheck(a,100) / Amalgamate(a,b) pair
// concurrently from sav(a)=100, chk(a)=0, chk(b)=0. The serial outcomes
// are (100,-100,0) — WriteCheck first, Amalgamate refuses the overdrawn
// account — and (0,-101,100) — Amalgamate first, WriteCheck pays the
// penalty. SI commits both against their stale guards and produces
// (0,-100,100): savings moved AND no penalty, matching neither order.
func TestSmallBankSkew(t *testing.T) {
	t.Run("mvcc-allows", func(t *testing.T) {
		d := openSmallBank(t, CCMVCC)
		sbSeed(t, d)

		t1 := d.begin()
		t2 := d.begin()
		delta, err := sbWriteCheck(t1, 0, 100)
		if err != nil {
			t.Fatal(err)
		}
		if delta != -100 {
			t.Fatalf("WriteCheck applied %d, want -100 (no penalty under its snapshot)", delta)
		}
		if err := sbAmalgamate(t2, 0, 1); err != nil {
			t.Fatal(err)
		}
		if err := t1.commit(); err != nil {
			t.Fatal(err)
		}
		if err := t2.commit(); err != nil {
			t.Fatal(err)
		}

		sav, chkA, chkB := sbState(t, d)
		if sav != 0 || chkA != -100 || chkB != 100 {
			t.Fatalf("state (%d,%d,%d): schedule did not produce the skew, want (0,-100,100)", sav, chkA, chkB)
		}
	})

	t.Run("ssi-forbids", func(t *testing.T) {
		d := openSmallBank(t, CCSSI)
		sbSeed(t, d)
		aborts0 := d.SSIAborts()

		t1 := d.begin()
		t2 := d.begin()
		// Guard reads first, so the writes cross live SIREAD marks.
		if _, err := sbBalanceOf(t1, 0, sbSavings); err != nil {
			t.Fatal(err)
		}
		if _, err := sbBalanceOf(t1, 0, sbChecking); err != nil {
			t.Fatal(err)
		}
		if _, err := sbBalanceOf(t2, 0, sbSavings); err != nil {
			t.Fatal(err)
		}
		if _, err := sbBalanceOf(t2, 0, sbChecking); err != nil {
			t.Fatal(err)
		}
		// t1 = WriteCheck's write leg: chk(a) -= 100, no penalty.
		if err := sbMut(t1, 0, sbChecking, func(b *int64) { *b -= 100 }); err != nil {
			t.Fatal(err)
		}
		// t2 = Amalgamate's first write leg crosses t1's mark: pivot.
		err := sbMut(t2, 0, sbSavings, func(b *int64) { *b = 0 })
		if err == nil {
			t.Fatal("crossing Amalgamate write completed under ssi")
		}
		if err := t2.fail(err); !errors.Is(err, ErrSSIAbort) {
			t.Fatalf("crossing write failed with %v, want ErrSSIAbort", err)
		}
		if err := t1.commit(); err != nil {
			t.Fatalf("survivor WriteCheck commit: %v", err)
		}
		if n := d.SSIAborts() - aborts0; n != 1 {
			t.Fatalf("SSIAborts delta %d, want exactly 1", n)
		}

		// Clean retry: the fresh snapshot sees the overdrawn account and
		// Amalgamate refuses — the WriteCheck-first serial outcome.
		t2r := d.begin()
		if err := sbAmalgamate(t2r, 0, 1); err != nil {
			t.Fatalf("retry: %v", err)
		}
		if err := t2r.commit(); err != nil {
			t.Fatalf("retry commit: %v", err)
		}
		sav, chkA, chkB := sbState(t, d)
		if sav != 100 || chkA != -100 || chkB != 0 {
			t.Fatalf("state (%d,%d,%d), want serial outcome (100,-100,0)", sav, chkA, chkB)
		}
	})

	t.Run("2pl-refuses", func(t *testing.T) {
		d := openSmallBank(t, CC2PL)
		sbSeed(t, d)
		d.locks.SetWaitTimeout(2 * time.Millisecond)
		defer d.locks.SetWaitTimeout(0)

		t1 := d.begin()
		t2 := d.begin()
		// Both guard reads take shared locks...
		if _, err := sbBalanceOf(t1, 0, sbSavings); err != nil {
			t.Fatal(err)
		}
		if _, err := sbBalanceOf(t2, 0, sbChecking); err != nil {
			t.Fatal(err)
		}
		// ...so WriteCheck's write of chk(a) collides with t2's read lock.
		_, err := sbWriteCheck(t1, 0, 100)
		if !errors.Is(err, lock.ErrTimeout) {
			t.Fatalf("crossing write failed with %v, want lock.ErrTimeout", err)
		}
		if err := t1.fail(err); !errors.Is(err, ErrAborted) {
			t.Fatalf("2PL victim surfaced %v, want ErrAborted", err)
		}
		if err := sbAmalgamate(t2, 0, 1); err != nil {
			t.Fatal(err)
		}
		if err := t2.commit(); err != nil {
			t.Fatal(err)
		}
	})
}

// TestSmallBankSSIConservation hammers the full procedure mix under
// -cc=ssi with an abort-and-retry loop and checks money conservation:
// the final total must equal the seed plus exactly the deltas of
// COMMITTED procedures. A lost update, write skew admitted, or a
// half-applied Amalgamate all break the equation.
func TestSmallBankSSIConservation(t *testing.T) {
	const (
		workers  = 4
		opsEach  = 150
		accounts = 4
		maxTries = 1000
	)
	d := openSmallBank(t, CCSSI)
	d.locks.SetWaitTimeout(5 * time.Millisecond)
	defer d.locks.SetWaitTimeout(0)

	seed := d.begin()
	for a := int64(0); a < accounts; a++ {
		if err := sbMut(seed, a, sbSavings, func(b *int64) { *b = 1000 }); err != nil {
			t.Fatal(err)
		}
	}
	if err := seed.commit(); err != nil {
		t.Fatal(err)
	}
	initial := int64(accounts * 1000)

	var committedDelta atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := uint64(w)*0x9e3779b97f4a7c15 + 1
			next := func(n uint64) uint64 {
				rng ^= rng << 13
				rng ^= rng >> 7
				rng ^= rng << 17
				return rng % n
			}
			for op := 0; op < opsEach; op++ {
				kind := next(4)
				a := int64(next(accounts))
				b := (a + 1 + int64(next(accounts-1))) % accounts
				v := int64(next(50)) + 1
				for try := 0; ; try++ {
					if try == maxTries {
						t.Errorf("worker %d op %d: no commit after %d tries", w, op, maxTries)
						return
					}
					tx := d.begin()
					var delta int64
					var err error
					switch kind {
					case 0:
						delta, err = sbDepositChecking(tx, a, v)
					case 1:
						delta, err = sbTransactSavings(tx, a, -v)
					case 2:
						delta, err = sbWriteCheck(tx, a, v)
					case 3:
						err = sbAmalgamate(tx, a, b)
					}
					if err == nil {
						err = tx.commit()
					}
					if err == nil {
						committedDelta.Add(delta)
						break
					}
					if ferr := tx.fail(err); !errors.Is(ferr, ErrAborted) {
						t.Errorf("worker %d: non-retryable %v", w, ferr)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	var total int64
	fin := d.begin()
	for a := int64(0); a < accounts; a++ {
		for _, which := range []int64{sbChecking, sbSavings} {
			bal, err := sbBalanceOf(fin, a, which)
			if err != nil {
				t.Fatal(err)
			}
			total += bal
		}
	}
	if err := fin.commit(); err != nil {
		t.Fatal(err)
	}
	want := initial + committedDelta.Load()
	if total != want {
		t.Fatalf("money not conserved: total %d, want %d (seed %d + committed deltas %d)",
			total, want, initial, committedDelta.Load())
	}
}
