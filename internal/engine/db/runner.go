package db

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"tpccmodel/internal/core"
	"tpccmodel/internal/engine/storage"
	"tpccmodel/internal/nurand"
	"tpccmodel/internal/rng"
	"tpccmodel/internal/stats"
	"tpccmodel/internal/tpcc"
)

// RetryPolicy governs how a Runner reacts to retriable failures —
// deadlock victims (ErrAborted) and transient I/O errors
// (storage.ErrTransientIO). Retries back off exponentially with jitter
// drawn from the runner's seeded generator; a transaction that exhausts
// its attempts is *shed* (counted and skipped) rather than failing the
// whole run, so a fault burst degrades throughput instead of killing
// workers.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries per transaction.
	MaxAttempts int
	// BaseDelay is the first backoff step; the delay doubles each
	// attempt up to MaxDelay, with jitter in [delay/2, delay].
	BaseDelay time.Duration
	// MaxDelay caps the backoff step; <= 0 leaves the doubling uncapped.
	MaxDelay time.Duration
	// ShedBudget is the number of *consecutive* shed transactions
	// tolerated before the run is declared wedged (0 = unlimited).
	// Occasional sheds under fault pressure are expected; an unbroken
	// run of them means the engine is no longer making progress.
	ShedBudget int
}

// DefaultRetryPolicy returns the policy used when none is set.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{
		MaxAttempts: 10,
		BaseDelay:   50 * time.Microsecond,
		MaxDelay:    5 * time.Millisecond,
		ShedBudget:  1000,
	}
}

// Runner generates benchmark transaction inputs with the paper's
// distributions and executes them against a DB, retrying deadlock victims
// and transient I/O faults per its RetryPolicy. Counters are atomic, so
// Counts/Retries/Sheds may be read while the runner is executing on
// another goroutine.
type Runner struct {
	d       *DB
	sess    *Session
	r       *rng.RNG
	custGen *nurand.Gen
	itemGen *nurand.Gen
	nameGen *nurand.Gen
	mix     tpcc.Mix

	// args holds the precomputed input for the current transaction. The
	// inputs are generated once, before the attempt loop, into fixed
	// per-runner storage (itemsBuf backs NewOrderInput.Items), so neither
	// generation nor retries allocate.
	args runnerArgs

	// RemoteStockProb and RemotePaymentProb default to the benchmark's
	// 0.01 and 0.15.
	RemoteStockProb   float64
	RemotePaymentProb float64

	// Policy is the retry/shed policy (DefaultRetryPolicy by default).
	Policy RetryPolicy

	counts  [core.NumTxnTypes]atomic.Int64
	retries atomic.Int64
	sheds   atomic.Int64
	// aborts counts failed attempts per type (each one an engine-level
	// rollback that was retried or shed); conflicts is the subset that
	// were snapshot write-write conflicts (ErrWriteConflict, mvcc/ssi)
	// and ssiAborts the subset that were dangerous-structure
	// serialization failures (ErrSSIAbort, ssi only).
	aborts    [core.NumTxnTypes]atomic.Int64
	conflicts [core.NumTxnTypes]atomic.Int64
	ssiAborts [core.NumTxnTypes]atomic.Int64
	// consecutiveSheds is only touched by the executing goroutine.
	consecutiveSheds int

	// latMu guards the latency accumulators so snapshots may be taken
	// while the runner is executing on another goroutine.
	latMu    sync.Mutex
	latHist  *stats.Histogram
	latW     stats.Welford
	typeHist [core.NumTxnTypes]*stats.Histogram
}

// runnerArgs is the Runner's reusable input storage, one field per
// transaction type plus the fixed backing array for New-Order items.
type runnerArgs struct {
	newOrder    NewOrderInput
	itemsBuf    [tpcc.ItemsPerOrder]OrderItem
	payment     PaymentInput
	orderStatus OrderStatusInput
	delivery    DeliveryInput
	stockLevel  StockLevelInput
}

// Latency-histogram geometry: 1µs buckets up to 50ms, overflow beyond
// (the exact maximum is tracked separately). All runners share it so
// per-worker histograms merge.
const (
	latBucketWidthMicros = 1
	latBuckets           = 50000
)

// NewRunner creates a runner over d with the given seed and mix.
func NewRunner(d *DB, seed uint64, mix tpcc.Mix) *Runner {
	r := rng.New(seed)
	rn := &Runner{
		d:                 d,
		sess:              d.NewSession(),
		r:                 r,
		custGen:           nurand.NewGen(nurand.CustomerID, r),
		itemGen:           nurand.NewGen(nurand.ItemID, r),
		nameGen:           nurand.NewGen(nurand.Params{A: 255, X: 0, Y: tpcc.NamesPerDistrict - 1}, r),
		mix:               mix,
		RemoteStockProb:   tpcc.RemoteStockProb,
		RemotePaymentProb: tpcc.RemotePaymentProb,
		Policy:            DefaultRetryPolicy(),
		latHist:           stats.NewHistogram(latBucketWidthMicros, latBuckets),
	}
	for i := range rn.typeHist {
		rn.typeHist[i] = stats.NewHistogram(latBucketWidthMicros, latBuckets)
	}
	return rn
}

// Counts returns per-type executed (acknowledged) transaction counts.
func (rn *Runner) Counts() [core.NumTxnTypes]int64 {
	var out [core.NumTxnTypes]int64
	for i := range out {
		out[i] = rn.counts[i].Load()
	}
	return out
}

// Retries returns the number of retries performed (deadlock victims plus
// transient I/O failures).
func (rn *Runner) Retries() int64 { return rn.retries.Load() }

// Aborts returns per-type failed-attempt counts: every retriable failure
// the runner observed, whether it was retried or shed. Each one is an
// engine-level rollback.
func (rn *Runner) Aborts() [core.NumTxnTypes]int64 {
	var out [core.NumTxnTypes]int64
	for i := range out {
		out[i] = rn.aborts[i].Load()
	}
	return out
}

// Conflicts returns per-type snapshot write-write conflict counts — the
// subset of Aborts caused by first-committer-wins validation. Always zero
// under 2PL.
func (rn *Runner) Conflicts() [core.NumTxnTypes]int64 {
	var out [core.NumTxnTypes]int64
	for i := range out {
		out[i] = rn.conflicts[i].Load()
	}
	return out
}

// SSIAborts returns per-type dangerous-structure abort counts — the
// subset of Aborts caused by SSI validation. Always zero outside CCSSI.
// TPC-C is serializable under plain SI, so on this workload every one of
// these is a false positive of the conservative two-flag tracking.
func (rn *Runner) SSIAborts() [core.NumTxnTypes]int64 {
	var out [core.NumTxnTypes]int64
	for i := range out {
		out[i] = rn.ssiAborts[i].Load()
	}
	return out
}

// Sheds returns the number of transactions dropped after exhausting their
// retry attempts.
func (rn *Runner) Sheds() int64 { return rn.sheds.Load() }

// LatencyStats summarizes acknowledged-transaction response time: the
// interval from input generation to commit acknowledgment, including
// retries and backoff. Quantiles come from a 1µs-bucket histogram; mean
// and standard deviation from a Welford accumulator.
type LatencyStats struct {
	N             int64
	Mean, StdDev  time.Duration
	P50, P95, P99 time.Duration
	Max           time.Duration
}

func (ls LatencyStats) String() string {
	return fmt.Sprintf("n=%d mean=%v p50=%v p95=%v p99=%v max=%v",
		ls.N, ls.Mean.Round(time.Microsecond), ls.P50, ls.P95, ls.P99, ls.Max)
}

// recordLatency folds one acknowledged transaction's response time into
// the runner's accumulators (overall and per-type).
func (rn *Runner) recordLatency(typ core.TxnType, d time.Duration) {
	us := d.Microseconds()
	if us < 0 {
		us = 0
	}
	rn.latMu.Lock()
	rn.latHist.Add(us)
	rn.latW.Add(float64(us))
	rn.typeHist[typ].Add(us)
	rn.latMu.Unlock()
}

// Latency returns a snapshot of the runner's latency statistics.
func (rn *Runner) Latency() LatencyStats {
	h := stats.NewHistogram(latBucketWidthMicros, latBuckets)
	var w stats.Welford
	rn.mergeLatencyInto(h, &w)
	return summarizeLatency(h, w)
}

// mergeLatencyInto folds the runner's accumulators into shared ones.
func (rn *Runner) mergeLatencyInto(h *stats.Histogram, w *stats.Welford) {
	rn.latMu.Lock()
	defer rn.latMu.Unlock()
	h.Merge(rn.latHist)
	w.Merge(rn.latW)
}

// mergeTypeLatencyInto folds the runner's per-type histograms into shared
// ones (one per transaction type).
func (rn *Runner) mergeTypeLatencyInto(hs *[core.NumTxnTypes]*stats.Histogram) {
	rn.latMu.Lock()
	defer rn.latMu.Unlock()
	for i := range hs {
		hs[i].Merge(rn.typeHist[i])
	}
}

func summarizeLatency(h *stats.Histogram, w stats.Welford) LatencyStats {
	us := func(v float64) time.Duration {
		return time.Duration(v * float64(time.Microsecond))
	}
	return LatencyStats{
		N:      w.N(),
		Mean:   us(w.Mean()),
		StdDev: us(w.StdDev()),
		P50:    us(h.Quantile(0.50)).Round(time.Microsecond),
		P95:    us(h.Quantile(0.95)).Round(time.Microsecond),
		P99:    us(h.Quantile(0.99)).Round(time.Microsecond),
		Max:    us(float64(h.Max())),
	}
}

func (rn *Runner) pickType() core.TxnType {
	u := rn.r.Float64()
	var cum float64
	for t := core.TxnType(0); t < core.NumTxnTypes; t++ {
		cum += rn.mix.Fraction(t)
		if u < cum {
			return t
		}
	}
	return core.TxnStockLevel
}

func (rn *Runner) warehouse() int64 { return rn.r.Int63n(int64(rn.d.cfg.Warehouses)) }

func (rn *Runner) remoteWarehouse(home int64) int64 {
	w := int64(rn.d.cfg.Warehouses)
	if w == 1 {
		return home
	}
	v := rn.r.Int63n(w - 1)
	if v >= home {
		v++
	}
	return v
}

// backoffDelay returns the pre-jitter delay for the given attempt
// (1-based): BaseDelay doubled attempt-1 times, capped at MaxDelay when
// MaxDelay > 0. MaxDelay <= 0 leaves the doubling uncapped (guarded only
// against int64 overflow).
func (rn *Runner) backoffDelay(attempt int) time.Duration {
	p := rn.Policy
	if p.BaseDelay <= 0 {
		return 0
	}
	d := p.BaseDelay
	for i := 1; i < attempt; i++ {
		if p.MaxDelay > 0 && d >= p.MaxDelay {
			break
		}
		if d > math.MaxInt64/2 {
			break
		}
		d *= 2
	}
	if p.MaxDelay > 0 && d > p.MaxDelay {
		d = p.MaxDelay
	}
	return d
}

// backoff sleeps the jittered exponential delay for the given attempt
// (1-based). Jitter is drawn from the runner's seeded generator so the
// delay sequence is reproducible.
func (rn *Runner) backoff(attempt int) {
	d := rn.backoffDelay(attempt)
	if d <= 0 {
		return
	}
	half := int64(d / 2)
	jittered := d/2 + time.Duration(rn.r.Int63n(half+1))
	time.Sleep(jittered)
}

// retriable reports whether the failure is worth another attempt.
func retriable(err error) bool {
	return errors.Is(err, ErrAborted) || errors.Is(err, storage.ErrTransientIO)
}

// paymentAmountCents draws the Payment amount uniformly from the
// benchmark's closed interval [$1.00, $5000.00].
func paymentAmountCents(r *rng.RNG) uint32 {
	return uint32(r.IntRange(tpcc.PaymentMinCents, tpcc.PaymentMaxCents))
}

// RunOne generates and executes one transaction, retrying deadlock aborts
// and transient I/O errors per the policy. It returns the executed type.
// A transaction that exhausts its attempts is shed (counted, nil error)
// unless the consecutive-shed budget is blown. A simulated crash
// (storage.ErrCrashed) is returned as-is: the worker must stop.
func (rn *Runner) RunOne() (core.TxnType, error) {
	return rn.runOne(context.Background())
}

// prepareArgs generates the input for one transaction of the given type
// into the runner's reusable args storage.
func (rn *Runner) prepareArgs(typ core.TxnType) {
	switch typ {
	case core.TxnNewOrder:
		in := &rn.args.newOrder
		in.W = rn.warehouse()
		in.D = rn.r.Int63n(tpcc.DistrictsPerWarehouse)
		in.C = rn.custGen.Next() - 1
		in.Items = rn.args.itemsBuf[:0]
		for i := 0; i < tpcc.ItemsPerOrder; i++ {
			it := OrderItem{IID: rn.itemGen.Next() - 1, SupplyW: in.W, Qty: 1 + rn.r.Int63n(10)}
			if rn.r.Bernoulli(rn.RemoteStockProb) {
				it.SupplyW = rn.remoteWarehouse(in.W)
			}
			in.Items = append(in.Items, it)
		}
	case core.TxnPayment:
		in := &rn.args.payment
		*in = PaymentInput{
			W:           rn.warehouse(),
			D:           rn.r.Int63n(tpcc.DistrictsPerWarehouse),
			AmountCents: paymentAmountCents(rn.r),
		}
		in.CW, in.CD = in.W, rn.r.Int63n(tpcc.DistrictsPerWarehouse)
		if rn.r.Bernoulli(rn.RemotePaymentProb) {
			in.CW = rn.remoteWarehouse(in.W)
		}
		if rn.r.Bernoulli(tpcc.PayByNameProb) {
			in.ByName = true
			in.NameOrd = rn.nameGen.Next()
		} else {
			in.C = rn.custGen.Next() - 1
		}
	case core.TxnOrderStatus:
		in := &rn.args.orderStatus
		*in = OrderStatusInput{
			W: rn.warehouse(),
			D: rn.r.Int63n(tpcc.DistrictsPerWarehouse),
		}
		if rn.r.Bernoulli(tpcc.PayByNameProb) {
			in.ByName = true
			in.NameOrd = rn.nameGen.Next()
		} else {
			in.C = rn.custGen.Next() - 1
		}
	case core.TxnDelivery:
		rn.args.delivery = DeliveryInput{W: rn.warehouse(), Carrier: uint8(1 + rn.r.Int63n(10))}
	case core.TxnStockLevel:
		rn.args.stockLevel = StockLevelInput{
			W: rn.warehouse(), D: rn.r.Int63n(tpcc.DistrictsPerWarehouse),
			Threshold: int32(10 + rn.r.Int63n(11)),
		}
	}
}

// execute runs the prepared transaction on the runner's session.
func (rn *Runner) execute(typ core.TxnType) error {
	switch typ {
	case core.TxnNewOrder:
		_, err := rn.sess.NewOrder(rn.args.newOrder)
		return err
	case core.TxnPayment:
		return rn.sess.Payment(rn.args.payment)
	case core.TxnOrderStatus:
		_, err := rn.sess.OrderStatus(rn.args.orderStatus)
		return err
	case core.TxnDelivery:
		_, err := rn.sess.Delivery(rn.args.delivery)
		return err
	case core.TxnStockLevel:
		_, err := rn.sess.StockLevel(rn.args.stockLevel)
		return err
	default:
		return fmt.Errorf("db: unknown transaction type %d", typ)
	}
}

func (rn *Runner) runOne(ctx context.Context) (core.TxnType, error) {
	start := time.Now()
	typ := rn.pickType()
	rn.prepareArgs(typ)

	maxAttempts := rn.Policy.MaxAttempts
	if maxAttempts < 1 {
		maxAttempts = 1
	}
	for attempt := 1; ; attempt++ {
		err := rn.execute(typ)
		if err == nil {
			rn.counts[typ].Add(1)
			rn.consecutiveSheds = 0
			rn.recordLatency(typ, time.Since(start))
			return typ, nil
		}
		if errors.Is(err, storage.ErrCrashed) {
			return typ, err
		}
		if !retriable(err) {
			return typ, fmt.Errorf("db: %s failed: %w", typ, err)
		}
		rn.aborts[typ].Add(1)
		if errors.Is(err, ErrWriteConflict) {
			rn.conflicts[typ].Add(1)
		} else if errors.Is(err, ErrSSIAbort) {
			rn.ssiAborts[typ].Add(1)
		}
		if attempt >= maxAttempts {
			// Shed: drop this transaction, keep the worker alive.
			rn.sheds.Add(1)
			rn.consecutiveSheds++
			if b := rn.Policy.ShedBudget; b > 0 && rn.consecutiveSheds > b {
				return typ, fmt.Errorf("db: shed %d transactions in a row (last: %w)",
					rn.consecutiveSheds, err)
			}
			return typ, nil
		}
		if err := ctx.Err(); err != nil {
			return typ, err
		}
		rn.retries.Add(1)
		rn.backoff(attempt)
	}
}

// Run executes n transactions sequentially.
func (rn *Runner) Run(n int) error { return rn.RunContext(context.Background(), n) }

// RunContext executes up to n transactions sequentially, stopping with
// ctx.Err() once ctx is canceled. Cancellation is checked before every
// transaction and between retry attempts, so a canceled run stops
// within one transaction's execution time.
func (rn *Runner) RunContext(ctx context.Context, n int) error {
	for i := 0; i < n; i++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		if _, err := rn.runOne(ctx); err != nil {
			return err
		}
	}
	return nil
}

// TypeStats breaks out one transaction type's outcome over a run:
// acknowledged executions, failed attempts (engine rollbacks retried or
// shed), the subset of failures that were snapshot write-write conflicts,
// and latency quantiles over acknowledged executions.
type TypeStats struct {
	Acked         int64
	Aborts        int64
	Conflicts     int64
	SSIAborts     int64
	P50, P95, P99 time.Duration
}

// AbortRate returns failed attempts as a fraction of all attempts
// (0 when the type never ran).
func (ts TypeStats) AbortRate() float64 {
	if n := ts.Acked + ts.Aborts; n > 0 {
		return float64(ts.Aborts) / float64(n)
	}
	return 0
}

// RunStats aggregates the outcome of a concurrent run.
type RunStats struct {
	// Counts holds acknowledged executions per transaction type.
	Counts [core.NumTxnTypes]int64
	// Retries and Sheds sum the workers' retry-policy counters.
	Retries int64
	Sheds   int64
	// Crashed reports that at least one worker observed a simulated
	// power loss (storage.ErrCrashed) and stopped early.
	Crashed bool
	// Elapsed is the wall-clock duration of the run.
	Elapsed time.Duration
	// Commits, Aborts, and LogForces are the engine-counter deltas over
	// the run; LogForces < Commits+Aborts means group commit amortized
	// log I/O across transactions.
	Commits, Aborts, LogForces int64
	// Latency summarizes acknowledged-transaction response time across
	// all workers.
	Latency LatencyStats
	// PerType breaks the run down by transaction type (abort rates,
	// conflict counts, per-type latency quantiles).
	PerType [core.NumTxnTypes]TypeStats
}

// Acknowledged returns the total number of acknowledged transactions.
func (s RunStats) Acknowledged() int64 {
	var n int64
	for _, c := range s.Counts {
		n += c
	}
	return n
}

// TpmC returns acknowledged New-Order transactions per minute — the
// benchmark's throughput metric (0 when the run had no duration).
func (s RunStats) TpmC() float64 {
	if s.Elapsed <= 0 {
		return 0
	}
	return float64(s.Counts[core.TxnNewOrder]) / s.Elapsed.Minutes()
}

// ForcesPerCommit returns log forces per commit/abort record: exactly 1
// with per-commit forcing, strictly below 1 when group commit batched
// (0 when nothing committed).
func (s RunStats) ForcesPerCommit() float64 {
	if n := s.Commits + s.Aborts; n > 0 {
		return float64(s.LogForces) / float64(n)
	}
	return 0
}

// RunConcurrentPolicy executes up to total transactions across workers
// goroutines (each a Runner with an independent derived seed and the
// given policy) and aggregates their counters. A simulated crash stops
// the affected workers and is reported via RunStats.Crashed, not as an
// error; any other failure cancels the sibling workers promptly and is
// returned (first failure wins).
func RunConcurrentPolicy(d *DB, seed uint64, mix tpcc.Mix, total, workers int, policy RetryPolicy) (RunStats, error) {
	if workers < 1 {
		workers = 1
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	per := total / workers
	base := rng.New(seed)
	runners := make([]*Runner, workers)
	var wg sync.WaitGroup
	errCh := make(chan error, workers)
	var crashed atomic.Bool
	commits0, aborts0, forces0 := d.Commits(), d.Aborts(), d.LogForces()
	start := time.Now()
	for w := 0; w < workers; w++ {
		rn := NewRunner(d, base.Uint64(), mix)
		rn.Policy = policy
		runners[w] = rn
		n := per
		if w == workers-1 {
			n = total - per*(workers-1)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := rn.RunContext(ctx, n); err != nil {
				switch {
				case errors.Is(err, storage.ErrCrashed):
					crashed.Store(true)
					cancel()
				case errors.Is(err, context.Canceled):
					// A sibling failed first; this worker just stopped.
				default:
					errCh <- err
					cancel()
				}
			}
		}()
	}
	wg.Wait()
	close(errCh)
	var st RunStats
	st.Elapsed = time.Since(start)
	st.Crashed = crashed.Load()
	st.Commits = d.Commits() - commits0
	st.Aborts = d.Aborts() - aborts0
	st.LogForces = d.LogForces() - forces0
	latHist := stats.NewHistogram(latBucketWidthMicros, latBuckets)
	var latW stats.Welford
	var typeHists [core.NumTxnTypes]*stats.Histogram
	for i := range typeHists {
		typeHists[i] = stats.NewHistogram(latBucketWidthMicros, latBuckets)
	}
	for _, rn := range runners {
		c, a, cf, sa := rn.Counts(), rn.Aborts(), rn.Conflicts(), rn.SSIAborts()
		for i := range st.Counts {
			st.Counts[i] += c[i]
			st.PerType[i].Acked += c[i]
			st.PerType[i].Aborts += a[i]
			st.PerType[i].Conflicts += cf[i]
			st.PerType[i].SSIAborts += sa[i]
		}
		st.Retries += rn.Retries()
		st.Sheds += rn.Sheds()
		rn.mergeLatencyInto(latHist, &latW)
		rn.mergeTypeLatencyInto(&typeHists)
	}
	st.Latency = summarizeLatency(latHist, latW)
	us := func(v float64) time.Duration {
		return time.Duration(v * float64(time.Microsecond)).Round(time.Microsecond)
	}
	for i := range st.PerType {
		h := typeHists[i]
		st.PerType[i].P50 = us(h.Quantile(0.50))
		st.PerType[i].P95 = us(h.Quantile(0.95))
		st.PerType[i].P99 = us(h.Quantile(0.99))
	}
	return st, <-errCh
}

// RunConcurrent executes total transactions across workers goroutines
// with the default retry policy and returns the first error (a simulated
// crash surfaces as storage.ErrCrashed).
func RunConcurrent(d *DB, seed uint64, mix tpcc.Mix, total, workers int) error {
	st, err := RunConcurrentPolicy(d, seed, mix, total, workers, DefaultRetryPolicy())
	if err != nil {
		return err
	}
	if st.Crashed {
		return storage.ErrCrashed
	}
	return nil
}
