package db

import (
	"fmt"
	"sync"

	"tpccmodel/internal/core"
	"tpccmodel/internal/nurand"
	"tpccmodel/internal/rng"
	"tpccmodel/internal/tpcc"
)

// Runner generates benchmark transaction inputs with the paper's
// distributions and executes them against a DB, retrying deadlock victims.
type Runner struct {
	d       *DB
	r       *rng.RNG
	custGen *nurand.Gen
	itemGen *nurand.Gen
	nameGen *nurand.Gen
	mix     tpcc.Mix

	// RemoteStockProb and RemotePaymentProb default to the benchmark's
	// 0.01 and 0.15.
	RemoteStockProb   float64
	RemotePaymentProb float64

	counts  [core.NumTxnTypes]int64
	retries int64
}

// NewRunner creates a runner over d with the given seed and mix.
func NewRunner(d *DB, seed uint64, mix tpcc.Mix) *Runner {
	r := rng.New(seed)
	return &Runner{
		d:                 d,
		r:                 r,
		custGen:           nurand.NewGen(nurand.CustomerID, r),
		itemGen:           nurand.NewGen(nurand.ItemID, r),
		nameGen:           nurand.NewGen(nurand.Params{A: 255, X: 0, Y: tpcc.NamesPerDistrict - 1}, r),
		mix:               mix,
		RemoteStockProb:   tpcc.RemoteStockProb,
		RemotePaymentProb: tpcc.RemotePaymentProb,
	}
}

// Counts returns per-type executed transaction counts.
func (rn *Runner) Counts() [core.NumTxnTypes]int64 { return rn.counts }

// Retries returns the number of deadlock-victim retries performed.
func (rn *Runner) Retries() int64 { return rn.retries }

func (rn *Runner) pickType() core.TxnType {
	u := rn.r.Float64()
	var cum float64
	for t := core.TxnType(0); t < core.NumTxnTypes; t++ {
		cum += rn.mix.Fraction(t)
		if u < cum {
			return t
		}
	}
	return core.TxnStockLevel
}

func (rn *Runner) warehouse() int64 { return rn.r.Int63n(int64(rn.d.cfg.Warehouses)) }

func (rn *Runner) remoteWarehouse(home int64) int64 {
	w := int64(rn.d.cfg.Warehouses)
	if w == 1 {
		return home
	}
	v := rn.r.Int63n(w - 1)
	if v >= home {
		v++
	}
	return v
}

// RunOne generates and executes one transaction, retrying deadlock aborts
// (bounded). It returns the executed type.
func (rn *Runner) RunOne() (core.TxnType, error) {
	typ := rn.pickType()
	var exec func() error
	switch typ {
	case core.TxnNewOrder:
		in := NewOrderInput{
			W: rn.warehouse(),
			D: rn.r.Int63n(tpcc.DistrictsPerWarehouse),
			C: rn.custGen.Next() - 1,
		}
		for i := 0; i < tpcc.ItemsPerOrder; i++ {
			it := OrderItem{IID: rn.itemGen.Next() - 1, SupplyW: in.W, Qty: 1 + rn.r.Int63n(10)}
			if rn.r.Bernoulli(rn.RemoteStockProb) {
				it.SupplyW = rn.remoteWarehouse(in.W)
			}
			in.Items = append(in.Items, it)
		}
		exec = func() error { _, err := rn.d.NewOrder(in); return err }
	case core.TxnPayment:
		in := PaymentInput{
			W:           rn.warehouse(),
			D:           rn.r.Int63n(tpcc.DistrictsPerWarehouse),
			AmountCents: uint32(100 + rn.r.Int63n(500000)),
		}
		in.CW, in.CD = in.W, rn.r.Int63n(tpcc.DistrictsPerWarehouse)
		if rn.r.Bernoulli(rn.RemotePaymentProb) {
			in.CW = rn.remoteWarehouse(in.W)
		}
		if rn.r.Bernoulli(tpcc.PayByNameProb) {
			in.ByName = true
			in.NameOrd = rn.nameGen.Next()
		} else {
			in.C = rn.custGen.Next() - 1
		}
		exec = func() error { return rn.d.Payment(in) }
	case core.TxnOrderStatus:
		in := OrderStatusInput{
			W: rn.warehouse(),
			D: rn.r.Int63n(tpcc.DistrictsPerWarehouse),
		}
		if rn.r.Bernoulli(tpcc.PayByNameProb) {
			in.ByName = true
			in.NameOrd = rn.nameGen.Next()
		} else {
			in.C = rn.custGen.Next() - 1
		}
		exec = func() error { _, err := rn.d.OrderStatus(in); return err }
	case core.TxnDelivery:
		in := DeliveryInput{W: rn.warehouse(), Carrier: uint8(1 + rn.r.Int63n(10))}
		exec = func() error { _, err := rn.d.Delivery(in); return err }
	case core.TxnStockLevel:
		in := StockLevelInput{
			W: rn.warehouse(), D: rn.r.Int63n(tpcc.DistrictsPerWarehouse),
			Threshold: int32(10 + rn.r.Int63n(11)),
		}
		exec = func() error { _, err := rn.d.StockLevel(in); return err }
	}

	const maxRetries = 10
	for attempt := 0; ; attempt++ {
		err := exec()
		if err == nil {
			rn.counts[typ]++
			return typ, nil
		}
		if err == ErrAborted && attempt < maxRetries {
			rn.retries++
			continue
		}
		return typ, fmt.Errorf("db: %s failed: %w", typ, err)
	}
}

// Run executes n transactions sequentially.
func (rn *Runner) Run(n int) error {
	for i := 0; i < n; i++ {
		if _, err := rn.RunOne(); err != nil {
			return err
		}
	}
	return nil
}

// RunConcurrent executes total transactions across workers goroutines
// (each with an independent derived seed) and returns the first error.
func RunConcurrent(d *DB, seed uint64, mix tpcc.Mix, total, workers int) error {
	if workers < 1 {
		workers = 1
	}
	per := total / workers
	base := rng.New(seed)
	var wg sync.WaitGroup
	errCh := make(chan error, workers)
	for w := 0; w < workers; w++ {
		rn := NewRunner(d, base.Uint64(), mix)
		n := per
		if w == workers-1 {
			n = total - per*(workers-1)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := rn.Run(n); err != nil {
				errCh <- err
			}
		}()
	}
	wg.Wait()
	close(errCh)
	return <-errCh
}
