package db

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"tpccmodel/internal/core"
	"tpccmodel/internal/engine/storage"
	"tpccmodel/internal/nurand"
	"tpccmodel/internal/rng"
	"tpccmodel/internal/tpcc"
)

// RetryPolicy governs how a Runner reacts to retriable failures —
// deadlock victims (ErrAborted) and transient I/O errors
// (storage.ErrTransientIO). Retries back off exponentially with jitter
// drawn from the runner's seeded generator; a transaction that exhausts
// its attempts is *shed* (counted and skipped) rather than failing the
// whole run, so a fault burst degrades throughput instead of killing
// workers.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries per transaction.
	MaxAttempts int
	// BaseDelay is the first backoff step; the delay doubles each
	// attempt up to MaxDelay, with jitter in [delay/2, delay].
	BaseDelay time.Duration
	// MaxDelay caps the backoff step.
	MaxDelay time.Duration
	// ShedBudget is the number of *consecutive* shed transactions
	// tolerated before the run is declared wedged (0 = unlimited).
	// Occasional sheds under fault pressure are expected; an unbroken
	// run of them means the engine is no longer making progress.
	ShedBudget int
}

// DefaultRetryPolicy returns the policy used when none is set.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{
		MaxAttempts: 10,
		BaseDelay:   50 * time.Microsecond,
		MaxDelay:    5 * time.Millisecond,
		ShedBudget:  1000,
	}
}

// Runner generates benchmark transaction inputs with the paper's
// distributions and executes them against a DB, retrying deadlock victims
// and transient I/O faults per its RetryPolicy. Counters are atomic, so
// Counts/Retries/Sheds may be read while the runner is executing on
// another goroutine.
type Runner struct {
	d       *DB
	r       *rng.RNG
	custGen *nurand.Gen
	itemGen *nurand.Gen
	nameGen *nurand.Gen
	mix     tpcc.Mix

	// RemoteStockProb and RemotePaymentProb default to the benchmark's
	// 0.01 and 0.15.
	RemoteStockProb   float64
	RemotePaymentProb float64

	// Policy is the retry/shed policy (DefaultRetryPolicy by default).
	Policy RetryPolicy

	counts  [core.NumTxnTypes]atomic.Int64
	retries atomic.Int64
	sheds   atomic.Int64
	// consecutiveSheds is only touched by the executing goroutine.
	consecutiveSheds int
}

// NewRunner creates a runner over d with the given seed and mix.
func NewRunner(d *DB, seed uint64, mix tpcc.Mix) *Runner {
	r := rng.New(seed)
	return &Runner{
		d:                 d,
		r:                 r,
		custGen:           nurand.NewGen(nurand.CustomerID, r),
		itemGen:           nurand.NewGen(nurand.ItemID, r),
		nameGen:           nurand.NewGen(nurand.Params{A: 255, X: 0, Y: tpcc.NamesPerDistrict - 1}, r),
		mix:               mix,
		RemoteStockProb:   tpcc.RemoteStockProb,
		RemotePaymentProb: tpcc.RemotePaymentProb,
		Policy:            DefaultRetryPolicy(),
	}
}

// Counts returns per-type executed (acknowledged) transaction counts.
func (rn *Runner) Counts() [core.NumTxnTypes]int64 {
	var out [core.NumTxnTypes]int64
	for i := range out {
		out[i] = rn.counts[i].Load()
	}
	return out
}

// Retries returns the number of retries performed (deadlock victims plus
// transient I/O failures).
func (rn *Runner) Retries() int64 { return rn.retries.Load() }

// Sheds returns the number of transactions dropped after exhausting their
// retry attempts.
func (rn *Runner) Sheds() int64 { return rn.sheds.Load() }

func (rn *Runner) pickType() core.TxnType {
	u := rn.r.Float64()
	var cum float64
	for t := core.TxnType(0); t < core.NumTxnTypes; t++ {
		cum += rn.mix.Fraction(t)
		if u < cum {
			return t
		}
	}
	return core.TxnStockLevel
}

func (rn *Runner) warehouse() int64 { return rn.r.Int63n(int64(rn.d.cfg.Warehouses)) }

func (rn *Runner) remoteWarehouse(home int64) int64 {
	w := int64(rn.d.cfg.Warehouses)
	if w == 1 {
		return home
	}
	v := rn.r.Int63n(w - 1)
	if v >= home {
		v++
	}
	return v
}

// backoff sleeps the jittered exponential delay for the given attempt
// (1-based). Jitter is drawn from the runner's seeded generator so the
// delay sequence is reproducible.
func (rn *Runner) backoff(attempt int) {
	p := rn.Policy
	if p.BaseDelay <= 0 {
		return
	}
	d := p.BaseDelay
	for i := 1; i < attempt && d < p.MaxDelay; i++ {
		d *= 2
	}
	if p.MaxDelay > 0 && d > p.MaxDelay {
		d = p.MaxDelay
	}
	half := int64(d / 2)
	jittered := d/2 + time.Duration(rn.r.Int63n(half+1))
	time.Sleep(jittered)
}

// retriable reports whether the failure is worth another attempt.
func retriable(err error) bool {
	return errors.Is(err, ErrAborted) || errors.Is(err, storage.ErrTransientIO)
}

// RunOne generates and executes one transaction, retrying deadlock aborts
// and transient I/O errors per the policy. It returns the executed type.
// A transaction that exhausts its attempts is shed (counted, nil error)
// unless the consecutive-shed budget is blown. A simulated crash
// (storage.ErrCrashed) is returned as-is: the worker must stop.
func (rn *Runner) RunOne() (core.TxnType, error) {
	typ := rn.pickType()
	var exec func() error
	switch typ {
	case core.TxnNewOrder:
		in := NewOrderInput{
			W: rn.warehouse(),
			D: rn.r.Int63n(tpcc.DistrictsPerWarehouse),
			C: rn.custGen.Next() - 1,
		}
		for i := 0; i < tpcc.ItemsPerOrder; i++ {
			it := OrderItem{IID: rn.itemGen.Next() - 1, SupplyW: in.W, Qty: 1 + rn.r.Int63n(10)}
			if rn.r.Bernoulli(rn.RemoteStockProb) {
				it.SupplyW = rn.remoteWarehouse(in.W)
			}
			in.Items = append(in.Items, it)
		}
		exec = func() error { _, err := rn.d.NewOrder(in); return err }
	case core.TxnPayment:
		in := PaymentInput{
			W:           rn.warehouse(),
			D:           rn.r.Int63n(tpcc.DistrictsPerWarehouse),
			AmountCents: uint32(100 + rn.r.Int63n(500000)),
		}
		in.CW, in.CD = in.W, rn.r.Int63n(tpcc.DistrictsPerWarehouse)
		if rn.r.Bernoulli(rn.RemotePaymentProb) {
			in.CW = rn.remoteWarehouse(in.W)
		}
		if rn.r.Bernoulli(tpcc.PayByNameProb) {
			in.ByName = true
			in.NameOrd = rn.nameGen.Next()
		} else {
			in.C = rn.custGen.Next() - 1
		}
		exec = func() error { return rn.d.Payment(in) }
	case core.TxnOrderStatus:
		in := OrderStatusInput{
			W: rn.warehouse(),
			D: rn.r.Int63n(tpcc.DistrictsPerWarehouse),
		}
		if rn.r.Bernoulli(tpcc.PayByNameProb) {
			in.ByName = true
			in.NameOrd = rn.nameGen.Next()
		} else {
			in.C = rn.custGen.Next() - 1
		}
		exec = func() error { _, err := rn.d.OrderStatus(in); return err }
	case core.TxnDelivery:
		in := DeliveryInput{W: rn.warehouse(), Carrier: uint8(1 + rn.r.Int63n(10))}
		exec = func() error { _, err := rn.d.Delivery(in); return err }
	case core.TxnStockLevel:
		in := StockLevelInput{
			W: rn.warehouse(), D: rn.r.Int63n(tpcc.DistrictsPerWarehouse),
			Threshold: int32(10 + rn.r.Int63n(11)),
		}
		exec = func() error { _, err := rn.d.StockLevel(in); return err }
	}

	maxAttempts := rn.Policy.MaxAttempts
	if maxAttempts < 1 {
		maxAttempts = 1
	}
	for attempt := 1; ; attempt++ {
		err := exec()
		if err == nil {
			rn.counts[typ].Add(1)
			rn.consecutiveSheds = 0
			return typ, nil
		}
		if errors.Is(err, storage.ErrCrashed) {
			return typ, err
		}
		if !retriable(err) {
			return typ, fmt.Errorf("db: %s failed: %w", typ, err)
		}
		if attempt >= maxAttempts {
			// Shed: drop this transaction, keep the worker alive.
			rn.sheds.Add(1)
			rn.consecutiveSheds++
			if b := rn.Policy.ShedBudget; b > 0 && rn.consecutiveSheds > b {
				return typ, fmt.Errorf("db: shed %d transactions in a row (last: %w)",
					rn.consecutiveSheds, err)
			}
			return typ, nil
		}
		rn.retries.Add(1)
		rn.backoff(attempt)
	}
}

// Run executes n transactions sequentially.
func (rn *Runner) Run(n int) error {
	for i := 0; i < n; i++ {
		if _, err := rn.RunOne(); err != nil {
			return err
		}
	}
	return nil
}

// RunStats aggregates the outcome of a concurrent run.
type RunStats struct {
	// Counts holds acknowledged executions per transaction type.
	Counts [core.NumTxnTypes]int64
	// Retries and Sheds sum the workers' retry-policy counters.
	Retries int64
	Sheds   int64
	// Crashed reports that at least one worker observed a simulated
	// power loss (storage.ErrCrashed) and stopped early.
	Crashed bool
}

// Acknowledged returns the total number of acknowledged transactions.
func (s RunStats) Acknowledged() int64 {
	var n int64
	for _, c := range s.Counts {
		n += c
	}
	return n
}

// RunConcurrentPolicy executes up to total transactions across workers
// goroutines (each a Runner with an independent derived seed and the
// given policy) and aggregates their counters. A simulated crash stops
// the affected workers and is reported via RunStats.Crashed, not as an
// error; any other failure is returned.
func RunConcurrentPolicy(d *DB, seed uint64, mix tpcc.Mix, total, workers int, policy RetryPolicy) (RunStats, error) {
	if workers < 1 {
		workers = 1
	}
	per := total / workers
	base := rng.New(seed)
	runners := make([]*Runner, workers)
	var wg sync.WaitGroup
	errCh := make(chan error, workers)
	var crashed atomic.Bool
	for w := 0; w < workers; w++ {
		rn := NewRunner(d, base.Uint64(), mix)
		rn.Policy = policy
		runners[w] = rn
		n := per
		if w == workers-1 {
			n = total - per*(workers-1)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := rn.Run(n); err != nil {
				if errors.Is(err, storage.ErrCrashed) {
					crashed.Store(true)
					return
				}
				errCh <- err
			}
		}()
	}
	wg.Wait()
	close(errCh)
	var st RunStats
	st.Crashed = crashed.Load()
	for _, rn := range runners {
		c := rn.Counts()
		for i := range st.Counts {
			st.Counts[i] += c[i]
		}
		st.Retries += rn.Retries()
		st.Sheds += rn.Sheds()
	}
	return st, <-errCh
}

// RunConcurrent executes total transactions across workers goroutines
// with the default retry policy and returns the first error (a simulated
// crash surfaces as storage.ErrCrashed).
func RunConcurrent(d *DB, seed uint64, mix tpcc.Mix, total, workers int) error {
	st, err := RunConcurrentPolicy(d, seed, mix, total, workers, DefaultRetryPolicy())
	if err != nil {
		return err
	}
	if st.Crashed {
		return storage.ErrCrashed
	}
	return nil
}
