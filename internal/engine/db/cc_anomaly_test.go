package db

import (
	"errors"
	"testing"
	"time"

	"tpccmodel/internal/engine/lock"
)

// This file is the snapshot-isolation anomaly battery: deterministic
// two-session schedules over the tiny fixture, each witnessing one
// textbook anomaly as impossible — or, for write skew, as the one
// anomaly SI deliberately allows. Everything here runs under
// `-short -race`.

// TestMVCCReadYourWritesAndSnapshotStability: a transaction sees its own
// uncommitted writes; a concurrent snapshot sees neither the uncommitted
// write (no dirty read) nor, after the writer commits, the committed one
// (snapshot stability). A fresh snapshot sees it.
func TestMVCCReadYourWritesAndSnapshotStability(t *testing.T) {
	d := openTiny(t, CCMVCC)

	reader := d.begin()
	writer := d.begin()
	if err := tinyWriteCustomer(writer, 0, func(c *CustomerRec) { c.BalanceCents += 100 }); err != nil {
		t.Fatal(err)
	}

	if rec, _ := tinyReadCustomer(t, writer, 0); rec.BalanceCents != 100 {
		t.Fatalf("writer reads its own write as %d, want 100", rec.BalanceCents)
	}
	if rec, _ := tinyReadCustomer(t, reader, 0); rec.BalanceCents != 0 {
		t.Fatalf("dirty read: concurrent snapshot sees uncommitted balance %d", rec.BalanceCents)
	}
	if err := writer.commit(); err != nil {
		t.Fatal(err)
	}
	if rec, _ := tinyReadCustomer(t, reader, 0); rec.BalanceCents != 0 {
		t.Fatalf("snapshot instability: reader sees post-snapshot commit (balance %d)", rec.BalanceCents)
	}
	if err := reader.commit(); err != nil {
		t.Fatal(err)
	}

	fresh := d.begin()
	if rec, _ := tinyReadCustomer(t, fresh, 0); rec.BalanceCents != 100 {
		t.Fatalf("fresh snapshot sees balance %d, want 100", rec.BalanceCents)
	}
	if err := fresh.commit(); err != nil {
		t.Fatal(err)
	}
}

// TestMVCCLostUpdateImpossible: two transactions read the same balance
// under overlapping snapshots and both try read-modify-write. The second
// writer fails first-committer-wins validation — its increment cannot
// silently overwrite the first — and succeeds on retry with a fresh
// snapshot, so both increments land.
func TestMVCCLostUpdateImpossible(t *testing.T) {
	d := openTiny(t, CCMVCC)

	t1 := d.begin()
	t2 := d.begin()
	if rec, _ := tinyReadCustomer(t, t1, 0); rec.BalanceCents != 0 {
		t.Fatalf("t1 starting balance %d, want 0", rec.BalanceCents)
	}
	if rec, _ := tinyReadCustomer(t, t2, 0); rec.BalanceCents != 0 {
		t.Fatalf("t2 starting balance %d, want 0", rec.BalanceCents)
	}

	if err := tinyWriteCustomer(t1, 0, func(c *CustomerRec) { c.BalanceCents += 100 }); err != nil {
		t.Fatal(err)
	}
	if err := t1.commit(); err != nil {
		t.Fatal(err)
	}

	err := tinyWriteCustomer(t2, 0, func(c *CustomerRec) { c.BalanceCents += 100 })
	if err == nil {
		t.Fatal("stale write under an overlapping snapshot succeeded — update would be lost")
	}
	err = t2.fail(err)
	if !errors.Is(err, ErrWriteConflict) {
		t.Fatalf("stale write failed with %v, want ErrWriteConflict", err)
	}
	if !errors.Is(err, ErrAborted) {
		t.Fatal("ErrWriteConflict must match ErrAborted so retry loops catch it")
	}
	if n := d.WriteConflicts(); n != 1 {
		t.Fatalf("WriteConflicts() = %d, want 1", n)
	}

	// The retry path: fresh snapshot, clean write.
	t2r := d.begin()
	if err := tinyWriteCustomer(t2r, 0, func(c *CustomerRec) { c.BalanceCents += 100 }); err != nil {
		t.Fatal(err)
	}
	if err := t2r.commit(); err != nil {
		t.Fatal(err)
	}
	fin := d.begin()
	if rec, _ := tinyReadCustomer(t, fin, 0); rec.BalanceCents != 200 {
		t.Fatalf("final balance %d, want 200 (both increments)", rec.BalanceCents)
	}
	if err := fin.commit(); err != nil {
		t.Fatal(err)
	}
}

// TestMVCCDirtyWriteImpossible: writes stay lock-based under mvcc, so a
// second writer cannot touch a row whose update is uncommitted — it
// blocks on the exclusive lock (surfacing as a timeout here) instead of
// interleaving undo images.
func TestMVCCDirtyWriteImpossible(t *testing.T) {
	d := openTiny(t, CCMVCC)
	d.locks.SetWaitTimeout(2 * time.Millisecond)
	defer d.locks.SetWaitTimeout(0)

	t1 := d.begin()
	if err := tinyWriteCustomer(t1, 0, func(c *CustomerRec) { c.BalanceCents = 111 }); err != nil {
		t.Fatal(err)
	}

	t2 := d.begin()
	err := tinyWriteCustomer(t2, 0, func(c *CustomerRec) { c.BalanceCents = 222 })
	if !errors.Is(err, lock.ErrTimeout) {
		t.Fatalf("overlapping write failed with %v, want lock.ErrTimeout", err)
	}
	if err := t2.fail(err); !errors.Is(err, ErrAborted) {
		t.Fatalf("timed-out writer surfaced %v, want ErrAborted", err)
	}

	if err := t1.commit(); err != nil {
		t.Fatal(err)
	}
	fin := d.begin()
	if rec, _ := tinyReadCustomer(t, fin, 0); rec.BalanceCents != 111 {
		t.Fatalf("final balance %d, want 111 (t1's write only)", rec.BalanceCents)
	}
	if err := fin.commit(); err != nil {
		t.Fatal(err)
	}
}

// TestMVCCFirstCommitterWinsNextOID pins the FCW contract on the
// benchmark's hottest row: two overlapping snapshots both try to bump
// DISTRICT.next_o_id; the second committer aborts with ErrWriteConflict,
// so order ids are never double-allocated.
func TestMVCCFirstCommitterWinsNextOID(t *testing.T) {
	d := openTiny(t, CCMVCC)

	t1 := d.begin()
	t2 := d.begin()
	d1, _ := tinyReadDistrict(t, t1, 0)
	d2, _ := tinyReadDistrict(t, t2, 0)
	if d1.NextOID != d2.NextOID {
		t.Fatalf("overlapping snapshots disagree: %d vs %d", d1.NextOID, d2.NextOID)
	}

	if err := tinyWriteDistrict(t1, 0, func(r *DistrictRec) { r.NextOID++ }); err != nil {
		t.Fatal(err)
	}
	if err := t1.commit(); err != nil {
		t.Fatal(err)
	}

	err := tinyWriteDistrict(t2, 0, func(r *DistrictRec) { r.NextOID++ })
	if err == nil {
		t.Fatal("stale next_o_id bump succeeded — an order id would be allocated twice")
	}
	if err := t2.fail(err); !errors.Is(err, ErrWriteConflict) {
		t.Fatalf("stale bump failed with %v, want ErrWriteConflict", err)
	}

	fin := d.begin()
	if rec, _ := tinyReadDistrict(t, fin, 0); rec.NextOID != d1.NextOID+1 {
		t.Fatalf("next_o_id = %d, want %d (exactly one bump)", rec.NextOID, d1.NextOID+1)
	}
	if err := fin.commit(); err != nil {
		t.Fatal(err)
	}
}

// TestWriteSkew documents snapshot isolation's one allowed anomaly, and
// shows 2PL refusing the same schedule. The invariant "at least one of
// the two balances stays zero-positive" is checked by each transaction
// against the OTHER row: under SI both read pre-images, write disjoint
// rows, and commit — jointly violating what each checked alone. Under
// 2PL the shared read locks make the crossing writes collide, so the
// schedule cannot complete.
func TestWriteSkew(t *testing.T) {
	t.Run("mvcc-allows", func(t *testing.T) {
		d := openTiny(t, CCMVCC)
		seed := d.begin()
		for _, dist := range []int64{0, 1} {
			if err := tinyWriteCustomer(seed, dist, func(c *CustomerRec) { c.BalanceCents = 50 }); err != nil {
				t.Fatal(err)
			}
		}
		if err := seed.commit(); err != nil {
			t.Fatal(err)
		}
		conflicts0 := d.WriteConflicts()

		t1 := d.begin()
		t2 := d.begin()
		// Each withdraws its whole row only if the other row still holds 50.
		if rec, _ := tinyReadCustomer(t, t1, 1); rec.BalanceCents != 50 {
			t.Fatalf("t1 guard read: %d, want 50", rec.BalanceCents)
		}
		if rec, _ := tinyReadCustomer(t, t2, 0); rec.BalanceCents != 50 {
			t.Fatalf("t2 guard read: %d, want 50", rec.BalanceCents)
		}
		if err := tinyWriteCustomer(t1, 0, func(c *CustomerRec) { c.BalanceCents = 0 }); err != nil {
			t.Fatal(err)
		}
		if err := tinyWriteCustomer(t2, 1, func(c *CustomerRec) { c.BalanceCents = 0 }); err != nil {
			t.Fatal(err)
		}
		if err := t1.commit(); err != nil {
			t.Fatal(err)
		}
		if err := t2.commit(); err != nil {
			t.Fatal(err)
		}
		if n := d.WriteConflicts() - conflicts0; n != 0 {
			t.Fatalf("disjoint write sets raised %d conflicts, want 0", n)
		}
		fin := d.begin()
		r0, _ := tinyReadCustomer(t, fin, 0)
		r1, _ := tinyReadCustomer(t, fin, 1)
		if r0.BalanceCents != 0 || r1.BalanceCents != 0 {
			t.Fatalf("balances (%d,%d): schedule did not produce the skew", r0.BalanceCents, r1.BalanceCents)
		}
		if err := fin.commit(); err != nil {
			t.Fatal(err)
		}
	})

	t.Run("ssi-forbids", func(t *testing.T) {
		d := openTiny(t, CCSSI)
		seed := d.begin()
		for _, dist := range []int64{0, 1} {
			if err := tinyWriteCustomer(seed, dist, func(c *CustomerRec) { c.BalanceCents = 50 }); err != nil {
				t.Fatal(err)
			}
		}
		if err := seed.commit(); err != nil {
			t.Fatal(err)
		}
		conflicts0 := d.WriteConflicts()

		t1 := d.begin()
		t2 := d.begin()
		// Same schedule as mvcc-allows: guard reads cross the writes.
		if rec, _ := tinyReadCustomer(t, t1, 1); rec.BalanceCents != 50 {
			t.Fatalf("t1 guard read: %d, want 50", rec.BalanceCents)
		}
		if rec, _ := tinyReadCustomer(t, t2, 0); rec.BalanceCents != 50 {
			t.Fatalf("t2 guard read: %d, want 50", rec.BalanceCents)
		}
		// t1's write overwrites t2's SIREAD mark: edge t2 → t1 installs
		// cleanly (neither side is a pivot yet).
		if err := tinyWriteCustomer(t1, 0, func(c *CustomerRec) { c.BalanceCents = 0 }); err != nil {
			t.Fatal(err)
		}
		// t2's crossing write would give t2 both flags — exactly one
		// victim, and it is the acting side.
		err := tinyWriteCustomer(t2, 1, func(c *CustomerRec) { c.BalanceCents = 0 })
		if err == nil {
			t.Fatal("crossing write completed under ssi — write skew admitted")
		}
		if err := t2.fail(err); !errors.Is(err, ErrSSIAbort) {
			t.Fatalf("crossing write failed with %v, want ErrSSIAbort", err)
		} else if !errors.Is(err, ErrAborted) {
			t.Fatal("ErrSSIAbort must match ErrAborted so retry loops catch it")
		}
		// The survivor commits: its lone in-flag is not a dangerous
		// structure.
		if err := t1.commit(); err != nil {
			t.Fatalf("survivor commit: %v", err)
		}
		if n := d.SSIAborts(); n != 1 {
			t.Fatalf("SSIAborts() = %d, want exactly 1 (one victim)", n)
		}
		if n := d.WriteConflicts() - conflicts0; n != 0 {
			t.Fatalf("ssi abort misclassified: %d write conflicts, want 0", n)
		}

		// The retry sees t1's withdrawal and its guard refuses — the
		// serializable outcome.
		t2r := d.begin()
		if rec, _ := tinyReadCustomer(t, t2r, 0); rec.BalanceCents == 50 {
			t.Fatal("retry still sees pre-skew guard value")
		}
		if err := t2r.commit(); err != nil {
			t.Fatal(err)
		}
		fin := d.begin()
		r0, _ := tinyReadCustomer(t, fin, 0)
		r1, _ := tinyReadCustomer(t, fin, 1)
		if r0.BalanceCents != 0 || r1.BalanceCents != 50 {
			t.Fatalf("balances (%d,%d), want (0,50): only the survivor's withdrawal lands", r0.BalanceCents, r1.BalanceCents)
		}
		if err := fin.commit(); err != nil {
			t.Fatal(err)
		}
	})

	t.Run("2pl-refuses", func(t *testing.T) {
		d := openTiny(t, CC2PL)
		d.locks.SetWaitTimeout(2 * time.Millisecond)
		defer d.locks.SetWaitTimeout(0)

		t1 := d.begin()
		t2 := d.begin()
		// The guard reads take shared locks under 2PL...
		tinyReadCustomer(t, t1, 1)
		tinyReadCustomer(t, t2, 0)
		// ...so t1's write of row 0 collides with t2's read lock.
		err := tinyWriteCustomer(t1, 0, func(c *CustomerRec) { c.BalanceCents = 0 })
		if !errors.Is(err, lock.ErrTimeout) {
			t.Fatalf("crossing write failed with %v, want lock.ErrTimeout", err)
		}
		if err := t1.fail(err); !errors.Is(err, ErrAborted) {
			t.Fatalf("2PL victim surfaced %v, want ErrAborted", err)
		}
		if err := t2.commit(); err != nil {
			t.Fatal(err)
		}
	})
}
