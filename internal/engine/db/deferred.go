package db

import (
	"sync"
)

// DeliveryQueue implements the benchmark's deferred execution of the
// Delivery transaction (clause 2.7; the paper notes Delivery "has less
// stringent response time constraints and can be executed in batch mode").
// Front-ends enqueue delivery requests and return immediately; a
// background worker executes them against the database, retrying deadlock
// victims.
type DeliveryQueue struct {
	d *DB

	mu      sync.Mutex
	cond    *sync.Cond
	queue   []DeliveryInput
	closed  bool
	done    sync.WaitGroup
	served  int64
	skipped int64
	errs    []error
}

// NewDeliveryQueue starts the background worker.
func NewDeliveryQueue(d *DB) *DeliveryQueue {
	q := &DeliveryQueue{d: d}
	q.cond = sync.NewCond(&q.mu)
	q.done.Add(1)
	go q.worker()
	return q
}

// Enqueue submits a delivery for deferred execution; it never blocks on
// the database.
func (q *DeliveryQueue) Enqueue(in DeliveryInput) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return
	}
	q.queue = append(q.queue, in)
	q.cond.Signal()
}

// Pending returns the number of queued, unexecuted deliveries.
func (q *DeliveryQueue) Pending() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.queue)
}

// Close drains the queue, stops the worker, and returns execution totals
// plus the first execution error if any occurred.
func (q *DeliveryQueue) Close() (served, skippedDistricts int64, err error) {
	q.mu.Lock()
	q.closed = true
	q.cond.Signal()
	q.mu.Unlock()
	q.done.Wait()
	q.mu.Lock()
	defer q.mu.Unlock()
	if len(q.errs) > 0 {
		err = q.errs[0]
	}
	return q.served, q.skipped, err
}

func (q *DeliveryQueue) worker() {
	defer q.done.Done()
	for {
		q.mu.Lock()
		for len(q.queue) == 0 && !q.closed {
			q.cond.Wait()
		}
		if len(q.queue) == 0 && q.closed {
			q.mu.Unlock()
			return
		}
		in := q.queue[0]
		q.queue = q.queue[1:]
		q.mu.Unlock()

		const maxRetries = 20
		for attempt := 0; ; attempt++ {
			res, err := q.d.Delivery(in)
			if err == nil {
				q.mu.Lock()
				q.served++
				q.skipped += int64(res.Skipped)
				q.mu.Unlock()
				break
			}
			if err == ErrAborted && attempt < maxRetries {
				continue
			}
			q.mu.Lock()
			q.errs = append(q.errs, err)
			q.mu.Unlock()
			break
		}
	}
}
