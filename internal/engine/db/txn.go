package db

import (
	"errors"
	"fmt"

	"tpccmodel/internal/core"
	"tpccmodel/internal/engine/lock"
	"tpccmodel/internal/engine/mvcc"
	"tpccmodel/internal/engine/storage"
	"tpccmodel/internal/engine/wal"
	"tpccmodel/internal/tpcc"
)

// ErrAborted is returned by transaction procedures that were chosen as
// deadlock victims and rolled back; callers should retry with the same
// input.
var ErrAborted = errors.New("db: transaction aborted, retry")

// ErrWriteConflict reports a first-committer-wins validation failure
// under CCMVCC: the transaction tried to overwrite a row committed after
// its snapshot. It wraps ErrAborted, so retry loops treat it like any
// abort while per-type stats can still tell conflicts from deadlocks.
var ErrWriteConflict = fmt.Errorf("db: snapshot write-write conflict: %w", ErrAborted)

// ErrSSIAbort reports a dangerous-structure abort under CCSSI: committing
// the transaction could have closed an rw-antidependency cycle, so it was
// chosen as the pivot victim. Like ErrWriteConflict it wraps ErrAborted —
// the retry loop handles it, per-type stats break it out (the rate IS the
// false-positive rate on TPC-C, which is serializable under plain SI).
var ErrSSIAbort = fmt.Errorf("db: serialization failure (rw-antidependency pivot): %w", ErrAborted)

// undoKind tags one entry of a transaction's undo list.
type undoKind uint8

const (
	// undoUpdate restores a before-image over an updated record.
	undoUpdate undoKind = iota
	// undoInsert deletes an inserted record.
	undoInsert
	// undoDelete re-inserts a deleted record at its old RID.
	undoDelete
	// undoSetIdx removes an added index entry.
	undoSetIdx
	// undoDelIdx restores a removed index entry.
	undoDelIdx
)

// undoOp is one typed entry of the undo list. Before-images live in the
// transaction's arena and are referenced by offset+length: the arena's
// backing array may move as it grows, so undo entries must never hold
// slices into it.
type undoOp struct {
	kind undoKind
	rel  core.Relation
	rid  storage.RID
	off  int // arena offset of the saved image (undoUpdate/undoDelete)
	n    int // image length
	g    *guardedTree
	key  uint64
	val  uint64
}

// custHit is one row of the non-unique customer-by-name select.
type custHit struct {
	cid int64
	rid uint64
}

// olref references one order line found by an index range scan.
type olref struct {
	key uint64
	rid uint64
}

// txn is one executing transaction: a lock owner plus a typed undo list
// for rollback. Strict 2PL: locks release only at commit/abort.
//
// A txn also owns the per-transaction scratch memory that keeps the
// execute path allocation-free: undo entries and their before-images
// (arena), the tuple read/marshal buffers (buf/img), and the range-scan
// collectors (hits/rids/refs/seen). Sessions reuse one txn value across
// transactions, so after warm-up a committed NewOrder or Payment
// performs zero heap allocations (enforced by alloc_test.go).
type txn struct {
	d    *DB
	id   lock.TxnID
	undo []undoOp
	// arena backs the before-images referenced by undo entries.
	arena []byte
	// ended guards the log's active-committer counter: begin registers
	// the transaction, the first of commit/rollback/forsake deregisters.
	ended bool

	// buf and img are tuple-sized scratch: procs read and marshal
	// through them instead of allocating per record. Sized for the
	// largest tuple (Customer).
	buf []byte
	img []byte

	// hits, rids, refs, and seen are range-scan scratch for
	// middleCustomerByName, OrderStatus, and StockLevel.
	hits []custHit
	rids []uint64
	refs []olref
	seen []uint32

	// mv is the transaction's MVCC state (snapshot, written chains) and
	// retired the deferred-prune ring of its committed chains; both are
	// inert under CC2PL. They live here, not on the Session, so the
	// distributed Begin paths (which allocate bare txns) stay correct.
	mv      mvcc.Txn
	retired mvcc.RetireSet

	// ssiChecked records that SSI validation already ran (at the 2PC
	// prepare point), so commitWith must not re-validate: a prepared
	// branch has voted yes and MUST be able to commit.
	ssiChecked bool
}

// reset prepares t for a new transaction, reusing its scratch, and
// registers it with the log's active-committer counter (the adaptive
// group-commit leader holds only while another registered transaction
// could still arrive).
func (t *txn) reset(d *DB) {
	t.d = d
	t.id = lock.TxnID(d.txnSeq.Add(1))
	t.undo = t.undo[:0]
	t.arena = t.arena[:0]
	t.ended = false
	if t.buf == nil {
		t.buf = make([]byte, tpcc.TupleLen[core.Customer])
		t.img = make([]byte, tpcc.TupleLen[core.Customer])
	}
	t.ssiChecked = false
	if d.ccMVCC {
		// Take the snapshot and pay down this slot's pruning debt.
		d.mvcc.Begin(&t.mv, &t.retired)
	}
	d.log.TxnStart()
}

// end deregisters the transaction from the log's active-committer
// counter, exactly once.
func (t *txn) end() {
	if !t.ended {
		t.ended = true
		t.d.log.TxnEnd()
	}
}

func (d *DB) begin() *txn {
	t := &txn{}
	t.reset(d)
	return t
}

// lockRow acquires a row lock, translating deadlock into rollback.
func (t *txn) lockRow(rel core.Relation, row uint64, mode lock.Mode) error {
	err := t.d.locks.Acquire(t.id, lock.Key{Table: uint32(rel), Row: row}, mode)
	if err != nil {
		return err
	}
	return nil
}

// commit forces a commit record and releases locks. A force failure means
// the commit never became durable: the caller must roll back and report
// the transaction as failed (it was not acknowledged).
func (t *txn) commit() error { return t.commitWith(0) }

// commitWith is commit carrying a global transaction id in the record's
// RID field (0 for purely local transactions). For a distributed
// transaction's home branch this forced record IS the global decision:
// its durability makes the whole transaction committed, and recovery
// rebuilds the coordinator's outcome map from it.
func (t *txn) commitWith(gid uint64) error {
	if t.d.ccSSI && !t.ssiChecked {
		// SSI validation must precede the commit decision (the WAL
		// append below, or the read-only fast path's acknowledgement): a
		// doomed pivot aborts and retries instead of committing. The 2PC
		// prepare point runs this check itself (ssiChecked).
		if err := t.d.mvcc.PreCommit(&t.mv); err != nil {
			return err
		}
		t.ssiChecked = true
	}
	if t.d.ccMVCC && gid == 0 && len(t.undo) == 0 {
		// Snapshot-mode read-only commit: the transaction wrote nothing,
		// so there is nothing to make durable — no commit record, no log
		// force. Order-Status and Stock-Level never touch the WAL (and so
		// never wait on a group-commit batch). 2PL keeps its per-commit
		// record: the -commit-smoke gate pins forces/commit == 1 there.
		t.end()
		t.d.mvcc.Commit(&t.mv, &t.retired)
		t.d.locks.ReleaseAll(t.id)
		t.d.commits.Add(1)
		return nil
	}
	if _, err := t.d.log.Append(wal.Record{Txn: uint64(t.id), Type: wal.RecCommit, RID: gid}); err != nil {
		return err
	}
	t.end()
	if gid != 0 {
		t.d.setOutcome(gid, true)
	}
	if t.d.ccMVCC {
		// Publish the commit timestamp and flip the chains BEFORE
		// releasing row locks: the next writer of any of these rows must
		// observe the new latest-commit timestamp for first-committer-
		// wins validation to be sound.
		t.d.mvcc.Commit(&t.mv, &t.retired)
	}
	t.d.locks.ReleaseAll(t.id)
	t.d.commits.Add(1)
	return nil
}

// rollback applies the undo list in reverse, logs an abort, and releases.
func (t *txn) rollback() error { return t.rollbackWith(0) }

// rollbackWith is rollback carrying a global transaction id (0 for local
// transactions). Under presumed abort the durable abort record is an
// optimization, not a requirement: a gid with no durable decision reads
// as aborted anyway.
func (t *txn) rollbackWith(gid uint64) error {
	var firstErr error
	for i := len(t.undo) - 1; i >= 0; i-- {
		if err := t.applyUndo(&t.undo[i]); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	// A failed abort force is benign: recovery treats the transaction as
	// uncommitted either way and restores before-images.
	_, _ = t.d.log.Append(wal.Record{Txn: uint64(t.id), Type: wal.RecAbort, RID: gid})
	t.end()
	if gid != 0 {
		t.d.setOutcome(gid, false)
	}
	if t.d.ccMVCC {
		// Pop pushed versions only AFTER the undo loop above restored the
		// heap before-images: while the writer mark is set, readers
		// resolve through the chain, so they never see the intermediate
		// heap states; once popped, the (restored) heap is authoritative.
		t.d.mvcc.Abort(&t.mv, &t.retired)
	}
	t.d.locks.ReleaseAll(t.id)
	t.d.aborts.Add(1)
	if firstErr != nil {
		return fmt.Errorf("db: rollback failed: %w", firstErr)
	}
	return nil
}

// applyUndo reverses one operation.
func (t *txn) applyUndo(op *undoOp) error {
	switch op.kind {
	case undoUpdate:
		return t.d.heaps[op.rel].Update(op.rid, t.arena[op.off:op.off+op.n])
	case undoInsert:
		return t.d.heaps[op.rel].Delete(op.rid)
	case undoDelete:
		return t.d.heaps[op.rel].InsertAt(op.rid, t.arena[op.off:op.off+op.n])
	case undoSetIdx:
		return op.g.delete(op.key)
	case undoDelIdx:
		op.g.set(op.key, op.val)
		return nil
	default:
		return fmt.Errorf("db: unknown undo kind %d", op.kind)
	}
}

// saveImage copies img into the arena and returns its offset.
func (t *txn) saveImage(img []byte) int {
	off := len(t.arena)
	t.arena = append(t.arena, img...)
	return off
}

// fail rolls back and wraps the cause; deadlocks surface as ErrAborted,
// first-committer-wins losses as ErrWriteConflict (itself an ErrAborted).
func (t *txn) fail(cause error) error {
	if rbErr := t.rollback(); rbErr != nil {
		return rbErr
	}
	if errors.Is(cause, mvcc.ErrConflict) {
		return ErrWriteConflict
	}
	if errors.Is(cause, mvcc.ErrSSI) {
		return ErrSSIAbort
	}
	if errors.Is(cause, lock.ErrDeadlock) {
		return ErrAborted
	}
	return cause
}

// readRec reads the record bytes at rid into out.
func (t *txn) readRec(rel core.Relation, rid storage.RID, out []byte) error {
	return t.d.heaps[rel].Read(rid, out)
}

// updateRec overwrites the record at rid, logging the after-image and
// queueing an undo that restores the before-image. Both images are
// copied before returning (the log encodes them immediately, the undo
// saves before into the arena), so callers may pass reused scratch.
func (t *txn) updateRec(rel core.Relation, rid storage.RID, before, after []byte) error {
	if _, err := t.d.log.Append(wal.Record{
		Txn: uint64(t.id), Type: wal.RecUpdate, Table: uint32(rel),
		RID: rid.Pack(), Before: before, After: after,
	}); err != nil {
		return err
	}
	if err := t.d.heaps[rel].Update(rid, after); err != nil {
		return err
	}
	off := t.saveImage(before)
	t.undo = append(t.undo, undoOp{kind: undoUpdate, rel: rel, rid: rid, off: off, n: len(before)})
	return nil
}

// insertRec inserts a record, logging it and queueing deletion as undo.
// rec is copied by both the heap and the log, so it may be reused scratch.
func (t *txn) insertRec(rel core.Relation, rec []byte) (storage.RID, error) {
	rid, err := t.d.heaps[rel].Insert(rec)
	if err != nil {
		return storage.RID{}, err
	}
	if _, err := t.d.log.Append(wal.Record{
		Txn: uint64(t.id), Type: wal.RecInsert, Table: uint32(rel),
		RID: rid.Pack(), After: rec,
	}); err != nil {
		return storage.RID{}, err
	}
	t.undo = append(t.undo, undoOp{kind: undoInsert, rel: rel, rid: rid})
	return rid, nil
}

// deleteRec removes the record at rid, queueing reinsertion as undo.
// before is copied, so it may be reused scratch.
func (t *txn) deleteRec(rel core.Relation, rid storage.RID, before []byte) error {
	if _, err := t.d.log.Append(wal.Record{
		Txn: uint64(t.id), Type: wal.RecDelete, Table: uint32(rel),
		RID: rid.Pack(), Before: before,
	}); err != nil {
		return err
	}
	if err := t.d.heaps[rel].Delete(rid); err != nil {
		return err
	}
	off := t.saveImage(before)
	t.undo = append(t.undo, undoOp{kind: undoDelete, rel: rel, rid: rid, off: off, n: len(before)})
	return nil
}

// snapRead reads the version of the row visible to this transaction into
// out. Under 2PL that is an S-locked current read — the lock IS the
// visibility rule — and an absent record is an error (the index said the
// row exists). Under mvcc it is a lock-free read: the current heap image
// (tolerating absence) resolved against the version store. live=false
// reports a row with no version at the snapshot — expected under mvcc
// when an index entry leads to a row committed after the snapshot began;
// callers skip such rows.
func (t *txn) snapRead(rel core.Relation, row uint64, rid storage.RID, out []byte) (bool, error) {
	if !t.d.ccMVCC {
		if err := t.lockRow(rel, row, lock.Shared); err != nil {
			return false, err
		}
		if err := t.readRec(rel, rid, out); err != nil {
			return false, err
		}
		return true, nil
	}
	live := true
	if err := t.readRec(rel, rid, out); err != nil {
		if !errors.Is(err, storage.ErrNoRecord) {
			return false, err
		}
		live = false
	}
	return t.d.mvcc.Read(&t.mv, mvcc.Key{Table: uint32(rel), Row: row}, live, out), nil
}

// mvWrite validates and versions a row about to be overwritten (before is
// its current image; nil for an insert). No-op under 2PL. The caller must
// already hold the row's exclusive lock and must perform the heap
// mutation only after mvWrite returns nil — chain state precedes heap
// state so concurrent snapshot readers never resolve a half-written row.
func (t *txn) mvWrite(rel core.Relation, row uint64, before []byte) error {
	if !t.d.ccMVCC {
		return nil
	}
	return t.d.mvcc.Write(&t.mv, mvcc.Key{Table: uint32(rel), Row: row}, before)
}

// updateRow is updateRec plus first-committer-wins validation and
// before-image versioning under mvcc. row is the logical row key (the
// same key the exclusive lock was taken on).
func (t *txn) updateRow(rel core.Relation, row uint64, rid storage.RID, before, after []byte) error {
	if err := t.mvWrite(rel, row, before); err != nil {
		return err
	}
	return t.updateRec(rel, rid, before, after)
}

// insertRow is insertRec plus versioning: the chain records that the row
// was absent before this transaction, so older snapshots skip it.
func (t *txn) insertRow(rel core.Relation, row uint64, rec []byte) (storage.RID, error) {
	if err := t.mvWrite(rel, row, nil); err != nil {
		return storage.RID{}, err
	}
	return t.insertRec(rel, rec)
}

// deleteRow is deleteRec plus versioning: older snapshots keep seeing the
// before image after the heap slot is gone.
func (t *txn) deleteRow(rel core.Relation, row uint64, rid storage.RID, before []byte) error {
	if err := t.mvWrite(rel, row, before); err != nil {
		return err
	}
	return t.deleteRec(rel, rid, before)
}

// setIdx adds an index entry with undo.
func (t *txn) setIdx(g *guardedTree, key, val uint64) {
	g.set(key, val)
	t.undo = append(t.undo, undoOp{kind: undoSetIdx, g: g, key: key})
}

// delIdx removes an index entry with undo.
func (t *txn) delIdx(g *guardedTree, key, val uint64) error {
	if err := g.delete(key); err != nil {
		return err
	}
	t.undo = append(t.undo, undoOp{kind: undoDelIdx, g: g, key: key, val: val})
	return nil
}
