package db

import (
	"errors"
	"fmt"

	"tpccmodel/internal/core"
	"tpccmodel/internal/engine/lock"
	"tpccmodel/internal/engine/storage"
	"tpccmodel/internal/engine/wal"
)

// ErrAborted is returned by transaction procedures that were chosen as
// deadlock victims and rolled back; callers should retry with the same
// input.
var ErrAborted = errors.New("db: transaction aborted, retry")

// txn is one executing transaction: a lock owner plus an undo list for
// rollback. Strict 2PL: locks release only at commit/abort.
type txn struct {
	d    *DB
	id   lock.TxnID
	undo []func() error
}

func (d *DB) begin() *txn {
	return &txn{d: d, id: lock.TxnID(d.txnSeq.Add(1))}
}

// lockRow acquires a row lock, translating deadlock into rollback.
func (t *txn) lockRow(rel core.Relation, row uint64, mode lock.Mode) error {
	err := t.d.locks.Acquire(t.id, lock.Key{Table: uint32(rel), Row: row}, mode)
	if err != nil {
		return err
	}
	return nil
}

// commit forces a commit record and releases locks. A force failure means
// the commit never became durable: the caller must roll back and report
// the transaction as failed (it was not acknowledged).
func (t *txn) commit() error { return t.commitWith(0) }

// commitWith is commit carrying a global transaction id in the record's
// RID field (0 for purely local transactions). For a distributed
// transaction's home branch this forced record IS the global decision:
// its durability makes the whole transaction committed, and recovery
// rebuilds the coordinator's outcome map from it.
func (t *txn) commitWith(gid uint64) error {
	if _, err := t.d.log.Append(wal.Record{Txn: uint64(t.id), Type: wal.RecCommit, RID: gid}); err != nil {
		return err
	}
	if gid != 0 {
		t.d.setOutcome(gid, true)
	}
	t.d.locks.ReleaseAll(t.id)
	t.d.commits.Add(1)
	return nil
}

// rollback applies the undo list in reverse, logs an abort, and releases.
func (t *txn) rollback() error { return t.rollbackWith(0) }

// rollbackWith is rollback carrying a global transaction id (0 for local
// transactions). Under presumed abort the durable abort record is an
// optimization, not a requirement: a gid with no durable decision reads
// as aborted anyway.
func (t *txn) rollbackWith(gid uint64) error {
	var firstErr error
	for i := len(t.undo) - 1; i >= 0; i-- {
		if err := t.undo[i](); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	// A failed abort force is benign: recovery treats the transaction as
	// uncommitted either way and restores before-images.
	_, _ = t.d.log.Append(wal.Record{Txn: uint64(t.id), Type: wal.RecAbort, RID: gid})
	if gid != 0 {
		t.d.setOutcome(gid, false)
	}
	t.d.locks.ReleaseAll(t.id)
	t.d.aborts.Add(1)
	if firstErr != nil {
		return fmt.Errorf("db: rollback failed: %w", firstErr)
	}
	return nil
}

// fail rolls back and wraps the cause; deadlocks surface as ErrAborted.
func (t *txn) fail(cause error) error {
	if rbErr := t.rollback(); rbErr != nil {
		return rbErr
	}
	if errors.Is(cause, lock.ErrDeadlock) {
		return ErrAborted
	}
	return cause
}

// readRec reads the record bytes at rid into out.
func (t *txn) readRec(rel core.Relation, rid storage.RID, out []byte) error {
	return t.d.heaps[rel].Read(rid, out)
}

// updateRec overwrites the record at rid, logging the after-image and
// queueing an undo that restores the before-image. before and after must
// not be aliased or mutated afterwards.
func (t *txn) updateRec(rel core.Relation, rid storage.RID, before, after []byte) error {
	if _, err := t.d.log.Append(wal.Record{
		Txn: uint64(t.id), Type: wal.RecUpdate, Table: uint32(rel),
		RID: rid.Pack(), Before: before, After: after,
	}); err != nil {
		return err
	}
	if err := t.d.heaps[rel].Update(rid, after); err != nil {
		return err
	}
	h := t.d.heaps[rel]
	img := append([]byte(nil), before...)
	t.undo = append(t.undo, func() error { return h.Update(rid, img) })
	return nil
}

// insertRec inserts a record, logging it and queueing deletion as undo.
func (t *txn) insertRec(rel core.Relation, rec []byte) (storage.RID, error) {
	rid, err := t.d.heaps[rel].Insert(rec)
	if err != nil {
		return storage.RID{}, err
	}
	if _, err := t.d.log.Append(wal.Record{
		Txn: uint64(t.id), Type: wal.RecInsert, Table: uint32(rel),
		RID: rid.Pack(), After: rec,
	}); err != nil {
		return storage.RID{}, err
	}
	h := t.d.heaps[rel]
	t.undo = append(t.undo, func() error { return h.Delete(rid) })
	return rid, nil
}

// deleteRec removes the record at rid, queueing reinsertion as undo.
func (t *txn) deleteRec(rel core.Relation, rid storage.RID, before []byte) error {
	if _, err := t.d.log.Append(wal.Record{
		Txn: uint64(t.id), Type: wal.RecDelete, Table: uint32(rel),
		RID: rid.Pack(), Before: before,
	}); err != nil {
		return err
	}
	if err := t.d.heaps[rel].Delete(rid); err != nil {
		return err
	}
	h := t.d.heaps[rel]
	img := append([]byte(nil), before...)
	t.undo = append(t.undo, func() error { return h.InsertAt(rid, img) })
	return nil
}

// setIdx adds an index entry with undo.
func (t *txn) setIdx(g *guardedTree, key, val uint64) {
	g.set(key, val)
	t.undo = append(t.undo, func() error { return g.delete(key) })
}

// delIdx removes an index entry with undo.
func (t *txn) delIdx(g *guardedTree, key, val uint64) error {
	if err := g.delete(key); err != nil {
		return err
	}
	t.undo = append(t.undo, func() error { g.set(key, val); return nil })
	return nil
}
