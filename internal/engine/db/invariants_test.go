package db

import (
	"testing"

	"tpccmodel/internal/core"
	"tpccmodel/internal/engine/storage"
	"tpccmodel/internal/tpcc"
)

// sumMoney scans warehouse, district, customer, and history and returns
// the TPC-C consistency-condition aggregates.
func sumMoney(t *testing.T, d *DB) (whYTD, distYTD, histAmount uint64, custBal int64) {
	t.Helper()
	err := d.heaps[core.Warehouse].Scan(func(_ storage.RID, rec []byte) bool {
		var r WarehouseRec
		r.Unmarshal(rec)
		whYTD += r.YTDCents
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.heaps[core.District].Scan(func(_ storage.RID, rec []byte) bool {
		var r DistrictRec
		r.Unmarshal(rec)
		distYTD += r.YTDCents
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if err := d.heaps[core.History].Scan(func(_ storage.RID, rec []byte) bool {
		var r HistoryRec
		r.Unmarshal(rec)
		histAmount += uint64(r.AmountCents)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if err := d.heaps[core.Customer].Scan(func(_ storage.RID, rec []byte) bool {
		var r CustomerRec
		r.Unmarshal(rec)
		custBal += r.BalanceCents
		return true
	}); err != nil {
		t.Fatal(err)
	}
	return
}

// TestMoneyConservation checks the TPC-C consistency conditions after a
// concurrent mixed run: every Payment's amount must appear exactly once in
// the warehouse YTD, once in the district YTD, and once in History —
// regardless of interleaving, deadlock retries, and buffer evictions.
func TestMoneyConservation(t *testing.T) {
	d := newLoaded(t, 1<<18)
	if err := RunConcurrent(d, 41, tpcc.DefaultMix(), 800, 4); err != nil {
		t.Fatal(err)
	}
	whYTD, distYTD, histAmount, _ := sumMoney(t, d)
	if whYTD != histAmount {
		t.Errorf("warehouse YTD %d != history total %d", whYTD, histAmount)
	}
	if distYTD != histAmount {
		t.Errorf("district YTD %d != history total %d", distYTD, histAmount)
	}
	if histAmount == 0 {
		t.Error("no payments executed")
	}
}

// TestMoneyConservationSurvivesCrash re-checks the same conditions after
// crash + recovery: partially flushed transactions must not break them.
func TestMoneyConservationSurvivesCrash(t *testing.T) {
	d, err := Open(Config{Warehouses: 1, PageSize: 4096, BufferPages: 512})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Load(1); err != nil {
		t.Fatal(err)
	}
	// A 512-page pool guarantees steal during the run.
	if err := RunConcurrent(d, 43, tpcc.DefaultMix(), 300, 4); err != nil {
		t.Fatal(err)
	}
	if err := d.Crash(); err != nil {
		t.Fatal(err)
	}
	if err := d.Recover(); err != nil {
		t.Fatal(err)
	}
	whYTD, distYTD, histAmount, _ := sumMoney(t, d)
	if whYTD != histAmount || distYTD != histAmount {
		t.Errorf("money diverged across crash: wh %d dist %d hist %d",
			whYTD, distYTD, histAmount)
	}
}

// TestOrderLineCountInvariant: every order's OLCount equals its actual
// order lines, after a concurrent run.
func TestOrderLineCountInvariant(t *testing.T) {
	d := newLoaded(t, 1<<18)
	if err := RunConcurrent(d, 47, tpcc.DefaultMix(), 500, 4); err != nil {
		t.Fatal(err)
	}
	perOrder := make(map[uint32]int)
	if err := d.heaps[core.OrderLine].Scan(func(_ storage.RID, rec []byte) bool {
		var r OrderLineRec
		r.Unmarshal(rec)
		if r.DID == 0 && r.WID == 0 {
			perOrder[r.OID]++
		}
		return true
	}); err != nil {
		t.Fatal(err)
	}
	checked := 0
	if err := d.heaps[core.Order].Scan(func(_ storage.RID, rec []byte) bool {
		var r OrderRec
		r.Unmarshal(rec)
		if r.DID != 0 || r.WID != 0 {
			return true
		}
		if got := perOrder[r.OID]; got != int(r.OLCount) {
			t.Errorf("order %d: OLCount %d but %d lines", r.OID, r.OLCount, got)
		}
		checked++
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if checked < 3000 {
		t.Errorf("only %d orders checked", checked)
	}
}
