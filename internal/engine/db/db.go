package db

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sync"
	"sync/atomic"
	"time"

	"tpccmodel/internal/core"
	"tpccmodel/internal/engine/bufmgr"
	"tpccmodel/internal/engine/index"
	"tpccmodel/internal/engine/lock"
	"tpccmodel/internal/engine/mvcc"
	"tpccmodel/internal/engine/storage"
	"tpccmodel/internal/engine/wal"
	"tpccmodel/internal/rng"
	"tpccmodel/internal/tpcc"
)

// CCMode selects the engine's concurrency-control protocol.
type CCMode uint8

const (
	// CC2PL is strict two-phase locking: shared locks for reads,
	// exclusive for writes, all held to commit. The seed protocol and
	// the differential oracle for CCMVCC.
	CC2PL CCMode = iota
	// CCMVCC is snapshot isolation over version chains: reads never
	// lock (each transaction observes the newest commit at or below its
	// begin-time snapshot), writes take exclusive locks and validate
	// first committer wins, aborting with ErrWriteConflict on a row
	// committed past the snapshot. Write skew is allowed.
	CCMVCC
	// CCSSI is CCMVCC plus Cahill-style serializable snapshot
	// isolation: SIREAD marks and rw-antidependency tracking abort any
	// would-be pivot of a dangerous structure with ErrSSIAbort, closing
	// the write-skew hole — committed histories are serializable, like
	// 2PL, at snapshot-read cost plus a conservative abort rate.
	CCSSI
)

func (m CCMode) String() string {
	switch m {
	case CC2PL:
		return "2pl"
	case CCMVCC:
		return "mvcc"
	case CCSSI:
		return "ssi"
	default:
		return fmt.Sprintf("cc(%d)", uint8(m))
	}
}

// ParseCCMode parses a -cc flag value ("2pl", "mvcc" or "ssi").
func ParseCCMode(s string) (CCMode, error) {
	switch s {
	case "2pl":
		return CC2PL, nil
	case "mvcc":
		return CCMVCC, nil
	case "ssi":
		return CCSSI, nil
	default:
		return 0, fmt.Errorf("db: unknown concurrency-control mode %q (want 2pl, mvcc or ssi)", s)
	}
}

// Config sizes the database instance.
type Config struct {
	// Warehouses is the scale factor W.
	Warehouses int
	// PageSize is the page size in bytes (paper: 4096).
	PageSize int
	// BufferPages is the buffer-pool capacity in pages.
	BufferPages int
	// LockStripes is the lock-manager stripe count (rounded up to a power
	// of two). 0 means lock.DefaultStripes; 1 recovers the single-table
	// manager for differential testing.
	LockStripes int
	// BufferPartitions is the buffer-pool partition count (rounded up to a
	// power of two, must not exceed BufferPages). 0 means 1 — the unified
	// pool, which is the only configuration with a totally ordered
	// reference stream (see xval).
	BufferPartitions int
	// CC selects the concurrency-control protocol; the zero value is
	// CC2PL (the seed behavior).
	CC CCMode
}

// DefaultConfig returns a laptop-friendly single-warehouse instance.
func DefaultConfig() Config {
	return Config{Warehouses: 1, PageSize: 4096, BufferPages: 4096}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Warehouses <= 0 {
		return fmt.Errorf("db: warehouses must be positive")
	}
	if c.PageSize < tpcc.TupleLen[core.Customer]+64 {
		return fmt.Errorf("db: page size %d too small", c.PageSize)
	}
	if c.BufferPages <= 0 {
		return fmt.Errorf("db: buffer pages must be positive")
	}
	if c.LockStripes < 0 {
		return fmt.Errorf("db: lock stripes must be non-negative")
	}
	if c.BufferPartitions < 0 {
		return fmt.Errorf("db: buffer partitions must be non-negative")
	}
	if c.CC > CCSSI {
		return fmt.Errorf("db: unknown concurrency-control mode %d", c.CC)
	}
	// Partition counts round up to a power of two; the rounded count must
	// still leave every partition at least one frame.
	for p := 1; c.BufferPartitions > 0; p <<= 1 {
		if p >= c.BufferPartitions {
			if p > c.BufferPages {
				return fmt.Errorf("db: %d buffer partitions (rounded from %d) exceed %d buffer pages",
					p, c.BufferPartitions, c.BufferPages)
			}
			break
		}
	}
	return nil
}

// guardedTree is a B+tree with a reader/writer latch; the engine's
// transactions run on multiple goroutines and the tree is shared.
type guardedTree struct {
	mu sync.RWMutex
	t  *index.BTree
}

func newGuardedTree() *guardedTree { return &guardedTree{t: index.New()} }

func (g *guardedTree) get(k uint64) (uint64, bool) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.t.Get(k)
}

func (g *guardedTree) set(k, v uint64) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.t.Set(k, v)
}

func (g *guardedTree) delete(k uint64) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.t.Delete(k)
}

func (g *guardedTree) min(lo uint64) (uint64, uint64, bool) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.t.Min(lo)
}

func (g *guardedTree) max(hi uint64) (uint64, uint64, bool) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.t.Max(hi)
}

func (g *guardedTree) ascendRange(lo, hi uint64, fn func(k, v uint64) bool) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	g.t.AscendRange(lo, hi, fn)
}

func (g *guardedTree) reset() {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.t = index.New()
}

// relPager tags pages with their owning relation as they are allocated, so
// the buffer manager's per-class stats align with the model's per-relation
// miss rates.
type relPager struct {
	buf *bufmgr.Manager
	db  *DB
	rel core.Relation
}

func (p relPager) With(id storage.PageID, dirty bool, fn func(page []byte)) error {
	return p.buf.With(id, dirty, fn)
}

func (p relPager) Pin(id storage.PageID) (storage.Pinned, error) { return p.buf.Pin(id) }

func (p relPager) Unpin(pg storage.Pinned, dirty bool) { p.buf.Unpin(pg, dirty) }

func (p relPager) Allocate() (storage.PageID, error) {
	id, err := p.buf.Allocate()
	if err != nil {
		return 0, err
	}
	p.db.pageRel.set(id, p.rel)
	return id, nil
}

// pageRelMap is a dense page→relation table. PageIDs are allocated densely
// from 0, so a slice indexed by page ID beats a map: the classifier reads
// it on every flush and eviction, and reads must not allocate.
type pageRelMap struct {
	mu   sync.RWMutex
	rels []core.Relation
}

func (m *pageRelMap) set(id storage.PageID, rel core.Relation) {
	m.mu.Lock()
	if n := int(id) + 1; n > len(m.rels) {
		grown := make([]core.Relation, n+n/2+64)
		copy(grown, m.rels)
		m.rels = grown[:n]
	}
	m.rels[id] = rel
	m.mu.Unlock()
}

func (m *pageRelMap) get(id storage.PageID) core.Relation {
	m.mu.RLock()
	defer m.mu.RUnlock()
	if int(id) < len(m.rels) {
		return m.rels[id]
	}
	return 0
}

// DB is a running TPC-C database instance.
type DB struct {
	cfg   Config
	store *storage.Store
	buf   *bufmgr.Manager
	log   *wal.Log
	locks *lock.Manager

	// mvcc is the version-chain store; nil under CC2PL. ccMVCC caches
	// "a version store exists" (CCMVCC or CCSSI) for the per-operation
	// hot path; ccSSI additionally marks the serializable mode (the
	// store runs SIREAD/conflict-flag tracking and commits must pass
	// PreCommit validation).
	mvcc   *mvcc.Store
	ccMVCC bool
	ccSSI  bool

	heaps [core.NumRelations]*storage.HeapFile
	// pageRel maps pages to relations for buffer accounting.
	pageRel pageRelMap

	// Primary and secondary indexes (memory-resident, rebuilt at
	// recovery, as the paper's one-index-lookup assumption implies).
	warehouseIdx *guardedTree // w               -> RID
	districtIdx  *guardedTree // (w,d)           -> RID
	customerIdx  *guardedTree // (w,d,c)         -> RID
	custNameIdx  *guardedTree // (w,d,name,c)    -> RID
	stockIdx     *guardedTree // (w,i)           -> RID
	itemIdx      *guardedTree // i               -> RID
	orderIdx     *guardedTree // (w,d,o)         -> RID
	custOrderIdx *guardedTree // (w,d,c,o)       -> RID
	newOrderIdx  *guardedTree // (w,d,o)         -> RID
	olIdx        *guardedTree // (w,d,o,line)    -> RID

	txnSeq  atomic.Uint64
	tick    atomic.Uint64
	commits atomic.Int64
	aborts  atomic.Int64

	// lastRecovery holds the stats of the most recent Recover call; only
	// read/written on the quiesced recovery path.
	lastRecovery wal.RecoverStats

	// Two-phase-commit state: durable+in-memory gid outcomes (this
	// instance acting as coordinator) and the in-doubt branches the last
	// recovery surfaced (this instance acting as participant).
	distMu   sync.Mutex
	outcomes map[uint64]bool
	inDoubt  []wal.InDoubtTxn

	// sessions pools execution contexts for the DB-level procedure
	// methods, so callers without their own Session still run on
	// recycled scratch.
	sessions sync.Pool
}

// Options customizes the engine's I/O substrate; the zero value gives a
// fault-free in-memory device. The fault package supplies implementations
// of the device fields to inject disk and log-device failures.
type Options struct {
	// Disk backs the page store; nil means a private storage.MemDisk.
	Disk storage.DiskIO
	// LogHook intercepts log forces; nil means a perfect log device.
	LogHook wal.FaultHook
	// GroupCommit configures WAL commit batching; the zero value keeps
	// the seed behavior of one forced log write per commit/abort.
	GroupCommit wal.GroupConfig
	// LockWaitTimeout bounds row-lock waits (0 = wait forever). Sharded
	// execution must set it: cross-shard deadlock cycles are invisible to
	// any single shard's wait-for graph.
	LockWaitTimeout time.Duration
}

// Open creates an empty database instance (no data loaded) on fault-free
// in-memory devices.
func Open(cfg Config) (*DB, error) { return OpenWith(cfg, Options{}) }

// OpenWith creates an empty database instance over the given devices.
func OpenWith(cfg Config, opts Options) (*DB, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	disk := opts.Disk
	if disk == nil {
		disk = storage.NewMemDisk()
	}
	store, err := storage.NewStoreOn(disk, cfg.PageSize)
	if err != nil {
		return nil, err
	}
	stripes := cfg.LockStripes
	if stripes == 0 {
		stripes = lock.DefaultStripes
	}
	partitions := cfg.BufferPartitions
	if partitions == 0 {
		partitions = 1
	}
	d := &DB{
		cfg:   cfg,
		store: store,
		log:   wal.New(),
		locks: lock.NewManagerStripes(stripes),
	}
	switch cfg.CC {
	case CCMVCC:
		d.mvcc = mvcc.NewStore()
		d.ccMVCC = true
	case CCSSI:
		d.mvcc = mvcc.NewSerializableStore()
		d.ccMVCC = true
		d.ccSSI = true
	}
	d.log.SetFaultHook(opts.LogHook)
	d.log.SetGroupCommit(opts.GroupCommit)
	d.locks.SetWaitTimeout(opts.LockWaitTimeout)
	d.buf = bufmgr.NewPartitioned(d.store, cfg.BufferPages, partitions)
	// The WAL rule: no dirty page reaches the store before the log
	// records covering it are durable.
	d.buf.SetPreFlush(d.log.Force)
	d.buf.SetClassifier(int(core.NumRelations), func(id storage.PageID) int {
		return int(d.pageRel.get(id))
	})
	for _, rel := range core.Relations() {
		h, err := storage.NewHeapFile(rel.String(), relPager{buf: d.buf, db: d, rel: rel},
			cfg.PageSize, tpcc.TupleLen[rel])
		if err != nil {
			return nil, err
		}
		d.heaps[rel] = h
	}
	d.resetIndexes()
	return d, nil
}

func (d *DB) resetIndexes() {
	d.warehouseIdx = newGuardedTree()
	d.districtIdx = newGuardedTree()
	d.customerIdx = newGuardedTree()
	d.custNameIdx = newGuardedTree()
	d.stockIdx = newGuardedTree()
	d.itemIdx = newGuardedTree()
	d.orderIdx = newGuardedTree()
	d.custOrderIdx = newGuardedTree()
	d.newOrderIdx = newGuardedTree()
	d.olIdx = newGuardedTree()
}

// Config returns the instance configuration.
func (d *DB) Config() Config { return d.cfg }

// BufferStats returns the buffer manager's global counters.
func (d *DB) BufferStats() bufmgr.Stats { return d.buf.Stats() }

// RelationStats returns per-relation buffer counters.
func (d *DB) RelationStats() map[core.Relation]bufmgr.Stats {
	out := make(map[core.Relation]bufmgr.Stats)
	for i, s := range d.buf.ClassStats() {
		out[core.Relation(i)] = s
	}
	return out
}

// ResetBufferStats zeroes buffer counters (after load/warmup).
func (d *DB) ResetBufferStats() { d.buf.ResetStats() }

// SetBufferTap installs a buffer reference-stream tap (see bufmgr.Tap).
// Install it before Load so the tapped stream covers the residency the
// load establishes; the cross-validation replay (package xval) needs the
// full pool history to reproduce measured hits and misses exactly.
func (d *DB) SetBufferTap(fn bufmgr.Tap) { d.buf.SetTap(fn) }

// LockCounts exposes the lock manager's counters.
func (d *DB) LockCounts() (acquired, waits, deadlocks int64) { return d.locks.Counts() }

// LogForces returns the number of forced log writes issued for
// commit/abort records: one per record with per-commit forcing, one per
// batch under group commit.
func (d *DB) LogForces() int64 { return d.log.Forces() }

// SetGroupCommit reconfigures WAL commit batching (zero value disables).
func (d *DB) SetGroupCommit(cfg wal.GroupConfig) { d.log.SetGroupCommit(cfg) }

// GroupCommit returns the WAL's current commit-batching configuration.
func (d *DB) GroupCommit() wal.GroupConfig { return d.log.GroupCommit() }

// Commits and Aborts report transaction outcomes.
func (d *DB) Commits() int64 { return d.commits.Load() }

// Aborts reports the number of aborted transactions (deadlock victims
// under 2PL; deadlock victims plus first-committer-wins losers under
// mvcc).
func (d *DB) Aborts() int64 { return d.aborts.Load() }

// WriteConflicts reports the number of first-committer-wins validation
// failures (always 0 under CC2PL).
func (d *DB) WriteConflicts() int64 {
	if d.mvcc == nil {
		return 0
	}
	return d.mvcc.Conflicts()
}

// SSIAborts reports the number of dangerous-structure aborts (always 0
// outside CCSSI).
func (d *DB) SSIAborts() int64 {
	if d.mvcc == nil {
		return 0
	}
	return d.mvcc.SSIAborts()
}

// VersionChains reports the number of live (unpruned) version chains
// (always 0 under CC2PL); quiesced steady state should be near zero.
func (d *DB) VersionChains() int {
	if d.mvcc == nil {
		return 0
	}
	return d.mvcc.Chains()
}

// Heap exposes a relation's heap file (read-only use: stats, verification).
func (d *DB) Heap(rel core.Relation) *storage.HeapFile { return d.heaps[rel] }

// StateHash folds every live record of every relation, in heap order,
// into one fnv-64a digest. Two databases with equal hashes hold identical
// committed state (same tuples at the same record IDs). Only meaningful
// on a quiesced instance; it is the differential gate used to compare
// concurrency-control modes and buffer layouts.
func (d *DB) StateHash() (uint64, error) {
	h := fnv.New64a()
	var scratch [8]byte
	for _, rel := range core.Relations() {
		scratch[0] = byte(rel)
		if _, err := h.Write(scratch[:1]); err != nil {
			return 0, err
		}
		err := d.heaps[rel].Scan(func(rid storage.RID, rec []byte) bool {
			scratch[0] = byte(rid.Page)
			scratch[1] = byte(rid.Page >> 8)
			scratch[2] = byte(rid.Page >> 16)
			scratch[3] = byte(rid.Page >> 24)
			scratch[4] = byte(rid.Slot)
			scratch[5] = byte(rid.Slot >> 8)
			h.Write(scratch[:6])
			h.Write(rec)
			return true
		})
		if err != nil {
			return 0, err
		}
	}
	return h.Sum64(), nil
}

// nextTick returns a monotonically increasing stamp used for entry and
// delivery timestamps (the model forbids wall-clock time for determinism).
func (d *DB) nextTick() uint64 { return d.tick.Add(1) }

// Checkpoint flushes all dirty pages to the store.
func (d *DB) Checkpoint() error { return d.buf.FlushAll() }

// Crash simulates a failure: all volatile buffer contents are lost; the
// durable store and the log survive. Catalog metadata (heap page lists)
// is considered durable, as in a real system.
func (d *DB) Crash() error { return d.buf.Crash() }

// CrashPowerLoss simulates a full power loss: volatile buffers are lost
// AND the unforced tail of the log may be partially written or torn (the
// damage is drawn from r). Acknowledged commits are always inside the
// forced prefix and survive.
func (d *DB) CrashPowerLoss(r *rng.RNG) error {
	d.log.CrashTail(r)
	return d.buf.Crash()
}

// RecoveryStats reports what the most recent Recover did (how many rows
// were materialized, how much damaged log tail was truncated).
func (d *DB) RecoveryStats() wal.RecoverStats { return d.lastRecovery }

// StoreStats exposes the page store's I/O and integrity counters.
func (d *DB) StoreStats() storage.StoreStats { return d.store.Stats() }

// VerifyPages checks the checksum of every page in the catalog (all heap
// pages), repairing from the journal mirror where possible. Pages listed
// in the result's Corrupt slice have no intact copy.
func (d *DB) VerifyPages() (storage.VerifyResult, error) {
	var ids []storage.PageID
	for _, rel := range core.Relations() {
		ids = append(ids, d.heaps[rel].PageIDs()...)
	}
	return d.store.Verify(ids)
}

// heapApplier adapts a HeapFile to wal.Applier: a nil image deletes the
// row if present, anything else is written in place.
type heapApplier struct{ h *storage.HeapFile }

func (a heapApplier) Apply(rid uint64, image []byte) error {
	r := storage.UnpackRID(rid)
	if image != nil {
		return a.h.InsertAt(r, image)
	}
	out := make([]byte, a.h.RecordLen())
	if err := a.h.Read(r, out); err != nil {
		if errors.Is(err, storage.ErrNoRecord) {
			return nil // already absent: idempotent
		}
		return err // real I/O failure, not an absent row
	}
	return a.h.Delete(r)
}

// Recover restores a consistent committed state after Crash: heaps are
// reattached over the durable pages, the log is replayed, and all indexes
// are rebuilt from the heaps. Distributed bookkeeping is restored too:
// durable gid decisions reload the coordinator outcome map, prepared
// branches with no decision become in-doubt (rolled back to before-images
// per presumed abort, exclusive row locks re-acquired so other
// transactions cannot overwrite rows a commit decision may re-apply), and
// the transaction-id sequence restarts past every logged id.
func (d *DB) Recover() error {
	appliers := make(map[uint32]wal.Applier, core.NumRelations)
	for _, rel := range core.Relations() {
		if err := d.heaps[rel].AttachPages(d.heaps[rel].PageIDs()); err != nil {
			return err
		}
		appliers[uint32(rel)] = heapApplier{h: d.heaps[rel]}
	}
	st, dist, err := wal.RecoverDist(d.log, appliers)
	d.lastRecovery = st
	if err != nil {
		return err
	}
	// Transactions open at the crash never deregistered; clear the log's
	// active-committer count so the adaptive group-commit heuristic does
	// not hold for ghosts.
	d.log.ResetActive()
	// Recovery rebuilt the heaps to committed state, so no version chain
	// carries information any longer; ghost snapshots die with the crash.
	if d.ccMVCC {
		d.mvcc.Reset()
	}
	if d.txnSeq.Load() < dist.MaxTxn {
		d.txnSeq.Store(dist.MaxTxn)
	}
	d.distMu.Lock()
	if d.outcomes == nil {
		d.outcomes = make(map[uint64]bool)
	}
	for gid, committed := range dist.Decisions {
		d.outcomes[gid] = committed
	}
	d.inDoubt = dist.InDoubt
	d.distMu.Unlock()
	if err := d.RebuildIndexes(); err != nil {
		return err
	}
	return d.relockInDoubt(dist.InDoubt)
}

// RebuildIndexes reconstructs every index from the heap contents.
func (d *DB) RebuildIndexes() error {
	d.resetIndexes()
	var err error
	scan := func(rel core.Relation, fn func(rid storage.RID, rec []byte)) {
		if err != nil {
			return
		}
		err = d.heaps[rel].Scan(func(rid storage.RID, rec []byte) bool {
			fn(rid, rec)
			return true
		})
	}
	scan(core.Warehouse, func(rid storage.RID, rec []byte) {
		var r WarehouseRec
		r.Unmarshal(rec)
		d.warehouseIdx.set(uint64(r.ID), rid.Pack())
	})
	scan(core.District, func(rid storage.RID, rec []byte) {
		var r DistrictRec
		r.Unmarshal(rec)
		d.districtIdx.set(index.KeyWD(int64(r.WID), int64(r.ID)), rid.Pack())
	})
	scan(core.Customer, func(rid storage.RID, rec []byte) {
		var r CustomerRec
		r.Unmarshal(rec)
		d.customerIdx.set(index.KeyWDC(int64(r.WID), int64(r.DID), int64(r.ID)), rid.Pack())
		d.custNameIdx.set(index.KeyWDNC(int64(r.WID), int64(r.DID), int64(r.NameOrd), int64(r.ID)), rid.Pack())
	})
	scan(core.Stock, func(rid storage.RID, rec []byte) {
		var r StockRec
		r.Unmarshal(rec)
		d.stockIdx.set(index.KeyWI(int64(r.WID), int64(r.IID)), rid.Pack())
	})
	scan(core.Item, func(rid storage.RID, rec []byte) {
		var r ItemRec
		r.Unmarshal(rec)
		d.itemIdx.set(uint64(r.IID), rid.Pack())
	})
	scan(core.Order, func(rid storage.RID, rec []byte) {
		var r OrderRec
		r.Unmarshal(rec)
		d.orderIdx.set(index.KeyWDO(int64(r.WID), int64(r.DID), int64(r.OID)), rid.Pack())
		d.custOrderIdx.set(index.KeyWDCO(int64(r.WID), int64(r.DID), int64(r.CID), int64(r.OID)), rid.Pack())
	})
	scan(core.NewOrder, func(rid storage.RID, rec []byte) {
		var r NewOrderRec
		r.Unmarshal(rec)
		d.newOrderIdx.set(index.KeyWDO(int64(r.WID), int64(r.DID), int64(r.OID)), rid.Pack())
	})
	scan(core.OrderLine, func(rid storage.RID, rec []byte) {
		var r OrderLineRec
		r.Unmarshal(rec)
		d.olIdx.set(index.KeyWDOL(int64(r.WID), int64(r.DID), int64(r.OID), int64(r.Number)), rid.Pack())
	})
	// History has no index (append-only, never queried by the workload).
	return err
}
