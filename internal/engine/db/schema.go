// Package db assembles the engine substrates into a running TPC-C
// database: the nine relations as slotted heap files with B+tree indexes,
// a spec-style loader, and stored-procedure implementations of all five
// transactions under strict 2PL with write-ahead logging.
//
// Record layouts are fixed-length and sized to the paper's Table 1 tuple
// lengths exactly (89/95/655/306/82/24/8/54/46 bytes), so the engine's
// tuples-per-page match the model's and measured buffer behaviour is
// comparable with the trace-driven simulation.
package db

import (
	"encoding/binary"
	"fmt"

	"tpccmodel/internal/core"
	"tpccmodel/internal/tpcc"
)

// cursor is a tiny sequential binary codec over a fixed-length buffer.
type cursor struct {
	buf []byte
	off int
}

func (c *cursor) u8() uint8   { v := c.buf[c.off]; c.off++; return v }
func (c *cursor) pu8(v uint8) { c.buf[c.off] = v; c.off++ }
func (c *cursor) u16() uint16 { v := binary.LittleEndian.Uint16(c.buf[c.off:]); c.off += 2; return v }
func (c *cursor) pu16(v uint16) {
	binary.LittleEndian.PutUint16(c.buf[c.off:], v)
	c.off += 2
}
func (c *cursor) u32() uint32 { v := binary.LittleEndian.Uint32(c.buf[c.off:]); c.off += 4; return v }
func (c *cursor) pu32(v uint32) {
	binary.LittleEndian.PutUint32(c.buf[c.off:], v)
	c.off += 4
}
func (c *cursor) u64() uint64 { v := binary.LittleEndian.Uint64(c.buf[c.off:]); c.off += 8; return v }
func (c *cursor) pu64(v uint64) {
	binary.LittleEndian.PutUint64(c.buf[c.off:], v)
	c.off += 8
}
func (c *cursor) bytes(n int) []byte { v := c.buf[c.off : c.off+n]; c.off += n; return v }
func (c *cursor) pbytes(v []byte)    { copy(c.buf[c.off:c.off+len(v)], v); c.off += len(v) }

func mustLen(rel core.Relation, off int) {
	if off != tpcc.TupleLen[rel] {
		panic(fmt.Sprintf("db: %s record layout is %d bytes, Table 1 says %d",
			rel, off, tpcc.TupleLen[rel]))
	}
}

// WarehouseRec is the 89-byte warehouse tuple.
type WarehouseRec struct {
	ID       uint32
	TaxBP    uint32 // basis points
	YTDCents uint64
	Text     [73]byte // name + address block
}

// Marshal serializes the record.
func (r *WarehouseRec) Marshal(buf []byte) {
	c := cursor{buf: buf}
	c.pu32(r.ID)
	c.pu32(r.TaxBP)
	c.pu64(r.YTDCents)
	c.pbytes(r.Text[:])
	mustLen(core.Warehouse, c.off)
}

// Unmarshal deserializes the record.
func (r *WarehouseRec) Unmarshal(buf []byte) {
	c := cursor{buf: buf}
	r.ID = c.u32()
	r.TaxBP = c.u32()
	r.YTDCents = c.u64()
	copy(r.Text[:], c.bytes(73))
	mustLen(core.Warehouse, c.off)
}

// DistrictRec is the 95-byte district tuple. NextOID is the order-id
// counter the New-Order transaction increments and the Stock-Level
// transaction reads — exactly the d_next_o_id of the benchmark.
type DistrictRec struct {
	ID       uint32
	WID      uint32
	TaxBP    uint32
	YTDCents uint64
	NextOID  uint32
	Text     [71]byte
}

// Marshal serializes the record.
func (r *DistrictRec) Marshal(buf []byte) {
	c := cursor{buf: buf}
	c.pu32(r.ID)
	c.pu32(r.WID)
	c.pu32(r.TaxBP)
	c.pu64(r.YTDCents)
	c.pu32(r.NextOID)
	c.pbytes(r.Text[:])
	mustLen(core.District, c.off)
}

// Unmarshal deserializes the record.
func (r *DistrictRec) Unmarshal(buf []byte) {
	c := cursor{buf: buf}
	r.ID = c.u32()
	r.WID = c.u32()
	r.TaxBP = c.u32()
	r.YTDCents = c.u64()
	r.NextOID = c.u32()
	copy(r.Text[:], c.bytes(71))
	mustLen(core.District, c.off)
}

// CustomerRec is the 655-byte customer tuple.
type CustomerRec struct {
	ID            uint32
	DID           uint32
	WID           uint32
	NameOrd       uint32 // last-name ordinal (0..999), the by-name key
	BalanceCents  int64
	YTDPayCents   uint64
	PaymentCount  uint32
	DeliveryCount uint32
	CreditLimit   uint64
	DiscountBP    uint32
	Data          [603]byte // name, address, credit data
}

// Marshal serializes the record.
func (r *CustomerRec) Marshal(buf []byte) {
	c := cursor{buf: buf}
	c.pu32(r.ID)
	c.pu32(r.DID)
	c.pu32(r.WID)
	c.pu32(r.NameOrd)
	c.pu64(uint64(r.BalanceCents))
	c.pu64(r.YTDPayCents)
	c.pu32(r.PaymentCount)
	c.pu32(r.DeliveryCount)
	c.pu64(r.CreditLimit)
	c.pu32(r.DiscountBP)
	c.pbytes(r.Data[:])
	mustLen(core.Customer, c.off)
}

// Unmarshal deserializes the record.
func (r *CustomerRec) Unmarshal(buf []byte) {
	c := cursor{buf: buf}
	r.ID = c.u32()
	r.DID = c.u32()
	r.WID = c.u32()
	r.NameOrd = c.u32()
	r.BalanceCents = int64(c.u64())
	r.YTDPayCents = c.u64()
	r.PaymentCount = c.u32()
	r.DeliveryCount = c.u32()
	r.CreditLimit = c.u64()
	r.DiscountBP = c.u32()
	copy(r.Data[:], c.bytes(603))
	mustLen(core.Customer, c.off)
}

// StockRec is the 306-byte stock tuple.
type StockRec struct {
	IID        uint32
	WID        uint32
	Quantity   int32
	YTD        uint64
	OrderCount uint32
	RemoteCnt  uint32
	Dists      [278]byte // per-district info strings
}

// Marshal serializes the record.
func (r *StockRec) Marshal(buf []byte) {
	c := cursor{buf: buf}
	c.pu32(r.IID)
	c.pu32(r.WID)
	c.pu32(uint32(r.Quantity))
	c.pu64(r.YTD)
	c.pu32(r.OrderCount)
	c.pu32(r.RemoteCnt)
	c.pbytes(r.Dists[:])
	mustLen(core.Stock, c.off)
}

// Unmarshal deserializes the record.
func (r *StockRec) Unmarshal(buf []byte) {
	c := cursor{buf: buf}
	r.IID = c.u32()
	r.WID = c.u32()
	r.Quantity = int32(c.u32())
	r.YTD = c.u64()
	r.OrderCount = c.u32()
	r.RemoteCnt = c.u32()
	copy(r.Dists[:], c.bytes(278))
	mustLen(core.Stock, c.off)
}

// ItemRec is the 82-byte item tuple.
type ItemRec struct {
	IID        uint32
	ImageID    uint32
	PriceCents uint32
	Name       [70]byte
}

// Marshal serializes the record.
func (r *ItemRec) Marshal(buf []byte) {
	c := cursor{buf: buf}
	c.pu32(r.IID)
	c.pu32(r.ImageID)
	c.pu32(r.PriceCents)
	c.pbytes(r.Name[:])
	mustLen(core.Item, c.off)
}

// Unmarshal deserializes the record.
func (r *ItemRec) Unmarshal(buf []byte) {
	c := cursor{buf: buf}
	r.IID = c.u32()
	r.ImageID = c.u32()
	r.PriceCents = c.u32()
	copy(r.Name[:], c.bytes(70))
	mustLen(core.Item, c.off)
}

// OrderRec is the 24-byte order tuple.
type OrderRec struct {
	OID       uint32
	CID       uint32
	WID       uint16
	DID       uint8
	OLCount   uint8
	CarrierID uint8
	AllLocal  uint8
	_pad      [2]byte
	EntryTick uint64 // load/transaction sequence stamp
}

// Marshal serializes the record.
func (r *OrderRec) Marshal(buf []byte) {
	c := cursor{buf: buf}
	c.pu32(r.OID)
	c.pu32(r.CID)
	c.pu16(r.WID)
	c.pu8(r.DID)
	c.pu8(r.OLCount)
	c.pu8(r.CarrierID)
	c.pu8(r.AllLocal)
	c.pbytes(r._pad[:])
	c.pu64(r.EntryTick)
	mustLen(core.Order, c.off)
}

// Unmarshal deserializes the record.
func (r *OrderRec) Unmarshal(buf []byte) {
	c := cursor{buf: buf}
	r.OID = c.u32()
	r.CID = c.u32()
	r.WID = c.u16()
	r.DID = c.u8()
	r.OLCount = c.u8()
	r.CarrierID = c.u8()
	r.AllLocal = c.u8()
	copy(r._pad[:], c.bytes(2))
	r.EntryTick = c.u64()
	mustLen(core.Order, c.off)
}

// NewOrderRec is the 8-byte new-order tuple.
type NewOrderRec struct {
	OID uint32
	WID uint16
	DID uint8
	_   uint8
}

// Marshal serializes the record.
func (r *NewOrderRec) Marshal(buf []byte) {
	c := cursor{buf: buf}
	c.pu32(r.OID)
	c.pu16(r.WID)
	c.pu8(r.DID)
	c.pu8(0)
	mustLen(core.NewOrder, c.off)
}

// Unmarshal deserializes the record.
func (r *NewOrderRec) Unmarshal(buf []byte) {
	c := cursor{buf: buf}
	r.OID = c.u32()
	r.WID = c.u16()
	r.DID = c.u8()
	c.u8()
	mustLen(core.NewOrder, c.off)
}

// OrderLineRec is the 54-byte order-line tuple.
type OrderLineRec struct {
	OID          uint32
	IID          uint32
	SupplyWID    uint16
	WID          uint16
	DID          uint8
	Number       uint8
	Quantity     uint8
	_pad         uint8
	AmountCents  uint32
	DeliveryTick uint64
	DistInfo     [26]byte
}

// Marshal serializes the record.
func (r *OrderLineRec) Marshal(buf []byte) {
	c := cursor{buf: buf}
	c.pu32(r.OID)
	c.pu32(r.IID)
	c.pu16(r.SupplyWID)
	c.pu16(r.WID)
	c.pu8(r.DID)
	c.pu8(r.Number)
	c.pu8(r.Quantity)
	c.pu8(0)
	c.pu32(r.AmountCents)
	c.pu64(r.DeliveryTick)
	c.pbytes(r.DistInfo[:])
	mustLen(core.OrderLine, c.off)
}

// Unmarshal deserializes the record.
func (r *OrderLineRec) Unmarshal(buf []byte) {
	c := cursor{buf: buf}
	r.OID = c.u32()
	r.IID = c.u32()
	r.SupplyWID = c.u16()
	r.WID = c.u16()
	r.DID = c.u8()
	r.Number = c.u8()
	r.Quantity = c.u8()
	c.u8()
	r.AmountCents = c.u32()
	r.DeliveryTick = c.u64()
	copy(r.DistInfo[:], c.bytes(26))
	mustLen(core.OrderLine, c.off)
}

// HistoryRec is the 46-byte history tuple.
type HistoryRec struct {
	CID         uint32
	CWID        uint16
	CDID        uint8
	DID         uint8
	WID         uint16
	AmountCents uint32
	Tick        uint64
	Data        [24]byte
}

// Marshal serializes the record.
func (r *HistoryRec) Marshal(buf []byte) {
	c := cursor{buf: buf}
	c.pu32(r.CID)
	c.pu16(r.CWID)
	c.pu8(r.CDID)
	c.pu8(r.DID)
	c.pu16(r.WID)
	c.pu32(r.AmountCents)
	c.pu64(r.Tick)
	c.pbytes(r.Data[:])
	mustLen(core.History, c.off)
}

// Unmarshal deserializes the record.
func (r *HistoryRec) Unmarshal(buf []byte) {
	c := cursor{buf: buf}
	r.CID = c.u32()
	r.CWID = c.u16()
	r.CDID = c.u8()
	r.DID = c.u8()
	r.WID = c.u16()
	r.AmountCents = c.u32()
	r.Tick = c.u64()
	copy(r.Data[:], c.bytes(24))
	mustLen(core.History, c.off)
}

// lastNameSyllables are the TPC-C C_LAST syllables (clause 4.3.2.3).
var lastNameSyllables = [10]string{
	"BAR", "OUGHT", "ABLE", "PRI", "PRES", "ESE", "ANTI", "CALLY", "ATION", "EING",
}

// LastName returns the benchmark customer last name for a name ordinal in
// [0, 999]: the concatenation of the syllables selected by its digits.
func LastName(ord int) string {
	if ord < 0 || ord > 999 {
		panic("db: name ordinal out of [0, 999]")
	}
	return lastNameSyllables[ord/100] + lastNameSyllables[ord/10%10] + lastNameSyllables[ord%10]
}
