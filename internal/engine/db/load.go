package db

import (
	"fmt"

	"tpccmodel/internal/core"
	"tpccmodel/internal/engine/index"
	"tpccmodel/internal/engine/storage"
	"tpccmodel/internal/nurand"
	"tpccmodel/internal/rng"
	"tpccmodel/internal/tpcc"
)

// Load populates the database per the benchmark's initial-population
// rules, scaled by cfg.Warehouses:
//
//   - 100,000 items;
//   - per warehouse: 1 warehouse row, 100,000 stock rows, 10 districts;
//   - per district: 3,000 customers (the first 1,000 name ordinals appear
//     once each; the rest are drawn NURand(255,0,999), so ~3 customers
//     share a name), and 3,000 initial orders — one per customer in a
//     random permutation — of 10 uniform items each, the most recent 900
//     of which are undelivered (pending in new-order);
//   - district next-order-id counters set to 3,000.
//
// The load bypasses the WAL (a real system loads then checkpoints); Load
// finishes with a checkpoint so the durable store holds the loaded state.
func (d *DB) Load(seed uint64) error {
	r := rng.New(seed)
	nameGen := nurand.NewGen(nurand.Params{A: 255, X: 0, Y: tpcc.NamesPerDistrict - 1}, r)
	buf := make([]byte, 1024)

	insert := func(rel core.Relation, n int) (storage.RID, error) {
		return d.heaps[rel].Insert(buf[:n])
	}

	// Items (shared across warehouses).
	for i := 0; i < tpcc.ItemCount; i++ {
		rec := ItemRec{IID: uint32(i), ImageID: uint32(r.Int63n(10000)),
			PriceCents: uint32(100 + r.Int63n(9900))}
		copy(rec.Name[:], LastName(int(r.Int63n(1000))))
		rec.Marshal(buf[:tpcc.TupleLen[core.Item]])
		rid, err := insert(core.Item, tpcc.TupleLen[core.Item])
		if err != nil {
			return err
		}
		d.itemIdx.set(uint64(i), rid.Pack())
	}

	for w := 0; w < d.cfg.Warehouses; w++ {
		wrec := WarehouseRec{ID: uint32(w), TaxBP: uint32(r.Int63n(2001))}
		wrec.Marshal(buf[:tpcc.TupleLen[core.Warehouse]])
		rid, err := insert(core.Warehouse, tpcc.TupleLen[core.Warehouse])
		if err != nil {
			return err
		}
		d.warehouseIdx.set(uint64(w), rid.Pack())

		for i := 0; i < tpcc.StockPerWarehouse; i++ {
			srec := StockRec{IID: uint32(i), WID: uint32(w),
				Quantity: int32(10 + r.Int63n(91))}
			srec.Marshal(buf[:tpcc.TupleLen[core.Stock]])
			rid, err := insert(core.Stock, tpcc.TupleLen[core.Stock])
			if err != nil {
				return err
			}
			d.stockIdx.set(index.KeyWI(int64(w), int64(i)), rid.Pack())
		}

		for dist := 0; dist < tpcc.DistrictsPerWarehouse; dist++ {
			drec := DistrictRec{ID: uint32(dist), WID: uint32(w),
				TaxBP: uint32(r.Int63n(2001)), NextOID: tpcc.CustomersPerDistrict}
			drec.Marshal(buf[:tpcc.TupleLen[core.District]])
			rid, err := insert(core.District, tpcc.TupleLen[core.District])
			if err != nil {
				return err
			}
			d.districtIdx.set(index.KeyWD(int64(w), int64(dist)), rid.Pack())

			if err := d.loadDistrict(r, nameGen, w, dist, buf); err != nil {
				return err
			}
		}
	}
	return d.Checkpoint()
}

func (d *DB) loadDistrict(r *rng.RNG, nameGen *nurand.Gen, w, dist int, buf []byte) error {
	// Customers.
	for c := 0; c < tpcc.CustomersPerDistrict; c++ {
		nameOrd := c
		if c >= tpcc.NamesPerDistrict {
			nameOrd = int(nameGen.Next())
		}
		crec := CustomerRec{
			ID: uint32(c), DID: uint32(dist), WID: uint32(w),
			NameOrd: uint32(nameOrd), CreditLimit: 5000000,
			DiscountBP: uint32(r.Int63n(5001)),
		}
		copy(crec.Data[:], LastName(nameOrd))
		crec.Marshal(buf[:tpcc.TupleLen[core.Customer]])
		rid, err := d.heaps[core.Customer].Insert(buf[:tpcc.TupleLen[core.Customer]])
		if err != nil {
			return err
		}
		d.customerIdx.set(index.KeyWDC(int64(w), int64(dist), int64(c)), rid.Pack())
		d.custNameIdx.set(index.KeyWDNC(int64(w), int64(dist), int64(nameOrd), int64(c)), rid.Pack())
	}

	// Initial orders: one per customer in a random permutation.
	perm := make([]int64, tpcc.CustomersPerDistrict)
	r.Perm(perm)
	for o := 0; o < tpcc.CustomersPerDistrict; o++ {
		cid := perm[o]
		delivered := o < tpcc.CustomersPerDistrict-900
		orec := OrderRec{
			OID: uint32(o), CID: uint32(cid), WID: uint16(w), DID: uint8(dist),
			OLCount: tpcc.ItemsPerOrder, AllLocal: 1, EntryTick: d.nextTick(),
		}
		if delivered {
			orec.CarrierID = uint8(1 + r.Int63n(10))
		}
		orec.Marshal(buf[:tpcc.TupleLen[core.Order]])
		rid, err := d.heaps[core.Order].Insert(buf[:tpcc.TupleLen[core.Order]])
		if err != nil {
			return err
		}
		d.orderIdx.set(index.KeyWDO(int64(w), int64(dist), int64(o)), rid.Pack())
		d.custOrderIdx.set(index.KeyWDCO(int64(w), int64(dist), cid, int64(o)), rid.Pack())

		for l := 0; l < tpcc.ItemsPerOrder; l++ {
			ol := OrderLineRec{
				OID: uint32(o), IID: uint32(r.Int63n(tpcc.ItemCount)),
				SupplyWID: uint16(w), WID: uint16(w), DID: uint8(dist),
				Number: uint8(l), Quantity: 5,
				AmountCents: uint32(r.Int63n(999999)),
			}
			if delivered {
				ol.DeliveryTick = orec.EntryTick
			}
			ol.Marshal(buf[:tpcc.TupleLen[core.OrderLine]])
			rid, err := d.heaps[core.OrderLine].Insert(buf[:tpcc.TupleLen[core.OrderLine]])
			if err != nil {
				return err
			}
			d.olIdx.set(index.KeyWDOL(int64(w), int64(dist), int64(o), int64(l)), rid.Pack())
		}

		if !delivered {
			no := NewOrderRec{OID: uint32(o), WID: uint16(w), DID: uint8(dist)}
			no.Marshal(buf[:tpcc.TupleLen[core.NewOrder]])
			rid, err := d.heaps[core.NewOrder].Insert(buf[:tpcc.TupleLen[core.NewOrder]])
			if err != nil {
				return err
			}
			d.newOrderIdx.set(index.KeyWDO(int64(w), int64(dist), int64(o)), rid.Pack())
		}
	}
	return nil
}

// VerifyCounts checks the loaded cardinalities against Table 1, returning
// an error naming the first mismatch.
func (d *DB) VerifyCounts() error {
	w := int64(d.cfg.Warehouses)
	want := map[core.Relation]int64{
		core.Warehouse: w,
		core.District:  w * tpcc.DistrictsPerWarehouse,
		core.Customer:  w * tpcc.CustomersPerWarehouse,
		core.Stock:     w * tpcc.StockPerWarehouse,
		core.Item:      tpcc.ItemCount,
		core.Order:     w * tpcc.DistrictsPerWarehouse * tpcc.CustomersPerDistrict,
		core.OrderLine: w * tpcc.DistrictsPerWarehouse * tpcc.CustomersPerDistrict * tpcc.ItemsPerOrder,
		core.NewOrder:  w * tpcc.DistrictsPerWarehouse * 900,
	}
	for rel, n := range want {
		if got := d.heaps[rel].Live(); got != n {
			return fmt.Errorf("db: %s has %d rows, want %d", rel, got, n)
		}
	}
	return nil
}
