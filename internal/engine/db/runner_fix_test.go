package db

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"tpccmodel/internal/engine/storage"
	"tpccmodel/internal/engine/wal"
	"tpccmodel/internal/rng"
	"tpccmodel/internal/tpcc"
)

// TestPaymentAmountWithinBenchmarkRange is the regression test for the
// Payment amount draw: the seed drew 100 + Int63n(500000), i.e. up to
// $5000.99, exceeding the benchmark's $5000.00 maximum. Over 200k draws
// the old code would exceed the cap ~40 times.
func TestPaymentAmountWithinBenchmarkRange(t *testing.T) {
	r := rng.New(7)
	var min, max uint32 = 1 << 31, 0
	for i := 0; i < 200000; i++ {
		a := paymentAmountCents(r)
		if a < tpcc.PaymentMinCents || a > tpcc.PaymentMaxCents {
			t.Fatalf("draw %d: amount %d cents outside [%d, %d]",
				i, a, tpcc.PaymentMinCents, tpcc.PaymentMaxCents)
		}
		if a < min {
			min = a
		}
		if a > max {
			max = a
		}
	}
	// The draw should span most of the closed interval.
	if min > tpcc.PaymentMinCents+1000 || max < tpcc.PaymentMaxCents-1000 {
		t.Errorf("draws span [%d, %d], expected to cover [%d, %d] closely",
			min, max, tpcc.PaymentMinCents, tpcc.PaymentMaxCents)
	}
}

// TestBackoffDelaySequence is the regression test for the MaxDelay gate:
// the seed used d < MaxDelay as the doubling-loop condition, so
// MaxDelay <= 0 silently disabled exponential backoff instead of leaving
// it uncapped as the doc comment promises.
func TestBackoffDelaySequence(t *testing.T) {
	base := 50 * time.Microsecond
	cases := []struct {
		name    string
		policy  RetryPolicy
		attempt int
		want    time.Duration
	}{
		{"first attempt", RetryPolicy{BaseDelay: base, MaxDelay: 5 * time.Millisecond}, 1, base},
		{"doubles", RetryPolicy{BaseDelay: base, MaxDelay: 5 * time.Millisecond}, 4, 8 * base},
		{"capped", RetryPolicy{BaseDelay: base, MaxDelay: 5 * time.Millisecond}, 10, 5 * time.Millisecond},
		{"uncapped zero", RetryPolicy{BaseDelay: base, MaxDelay: 0}, 8, base << 7},
		{"uncapped negative", RetryPolicy{BaseDelay: base, MaxDelay: -1}, 12, base << 11},
		{"no base no delay", RetryPolicy{BaseDelay: 0, MaxDelay: 0}, 5, 0},
		{"overflow guard", RetryPolicy{BaseDelay: base, MaxDelay: 0}, 80, 0},
	}
	for _, tc := range cases {
		rn := &Runner{Policy: tc.policy}
		got := rn.backoffDelay(tc.attempt)
		if tc.name == "overflow guard" {
			if got <= 0 {
				t.Errorf("%s: delay %v overflowed", tc.name, got)
			}
			continue
		}
		if got != tc.want {
			t.Errorf("%s: attempt %d delay = %v, want %v", tc.name, tc.attempt, got, tc.want)
		}
	}
	// The full sequence for an uncapped policy must strictly double.
	rn := &Runner{Policy: RetryPolicy{BaseDelay: base}}
	prev := rn.backoffDelay(1)
	for attempt := 2; attempt <= 16; attempt++ {
		d := rn.backoffDelay(attempt)
		if d != prev*2 {
			t.Fatalf("attempt %d: delay %v, want %v (uncapped doubling)", attempt, d, prev*2)
		}
		prev = d
	}
}

// oneShotFailDisk delegates to an inner DiskIO but fails exactly one read
// with a permanent (non-retriable) error after `after` reads.
type oneShotFailDisk struct {
	storage.DiskIO
	after int64
	reads atomic.Int64
}

var errPermanent = errors.New("permanent device failure")

func (d *oneShotFailDisk) Read(id storage.PageID, area storage.Area, buf []byte) error {
	if d.reads.Add(1) == d.after {
		return errPermanent
	}
	return d.DiskIO.Read(id, area, buf)
}

// TestRunConcurrentPolicyCancelsSiblingsOnFailure injects one permanent
// error into a large run and checks the failure is surfaced AND the
// sibling workers stop promptly instead of running their full quota (the
// seed let them run to completion).
func TestRunConcurrentPolicyCancelsSiblingsOnFailure(t *testing.T) {
	disk := &oneShotFailDisk{DiskIO: storage.NewMemDisk()}
	d, err := OpenWith(Config{Warehouses: 1, PageSize: 4096, BufferPages: 2048},
		Options{Disk: disk})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Load(1); err != nil {
		t.Fatal(err)
	}
	// Arm the failure shortly after the run starts.
	disk.after = disk.reads.Load() + 50
	const total = 200000
	start := time.Now()
	st, runErr := RunConcurrentPolicy(d, 3, tpcc.DefaultMix(), total, 4, DefaultRetryPolicy())
	elapsed := time.Since(start)
	if runErr == nil {
		t.Fatal("run succeeded despite a permanent device failure")
	}
	if !errors.Is(runErr, errPermanent) {
		t.Fatalf("error %v does not wrap the injected failure", runErr)
	}
	if st.Crashed {
		t.Error("permanent error misreported as a crash")
	}
	if got := st.Acknowledged() + st.Sheds; got >= total/2 {
		t.Errorf("siblings acknowledged %d of %d transactions after the failure; cancellation not prompt (elapsed %v)",
			got, total, elapsed)
	}
}

// TestGroupCommitAcksSameTransactionSets runs the identical seeded
// workload grouped and ungrouped (under -race via make test) and checks
// both modes acknowledge exactly the same per-type transaction sets,
// with grouping strictly reducing forces per commit at 4 workers.
func TestGroupCommitAcksSameTransactionSets(t *testing.T) {
	const total, workers = 800, 4
	policy := DefaultRetryPolicy()
	policy.MaxAttempts = 100 // retries must never exhaust: sheds would desync the modes
	run := func(group wal.GroupConfig) RunStats {
		t.Helper()
		d, err := OpenWith(Config{Warehouses: 1, PageSize: 4096, BufferPages: 2048},
			Options{GroupCommit: group})
		if err != nil {
			t.Fatal(err)
		}
		if err := d.Load(1); err != nil {
			t.Fatal(err)
		}
		st, err := RunConcurrentPolicy(d, 17, tpcc.DefaultMix(), total, workers, policy)
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	ungrouped := run(wal.GroupConfig{})
	grouped := run(wal.GroupConfig{MaxBatch: 64, MaxHold: 200 * time.Microsecond})
	if ungrouped.Sheds != 0 || grouped.Sheds != 0 {
		t.Fatalf("sheds (ungrouped %d, grouped %d) make the runs incomparable",
			ungrouped.Sheds, grouped.Sheds)
	}
	if ungrouped.Counts != grouped.Counts {
		t.Errorf("acknowledged sets differ:\nungrouped %v\ngrouped   %v",
			ungrouped.Counts, grouped.Counts)
	}
	if ungrouped.Acknowledged() != total || grouped.Acknowledged() != total {
		t.Errorf("acked %d/%d of %d", ungrouped.Acknowledged(), grouped.Acknowledged(), total)
	}
	if fpc := ungrouped.ForcesPerCommit(); fpc != 1 {
		t.Errorf("ungrouped forces per commit = %.3f, want exactly 1", fpc)
	}
	if fpc := grouped.ForcesPerCommit(); fpc >= 1 {
		t.Errorf("grouped forces per commit = %.3f, want < 1", fpc)
	} else {
		t.Logf("grouped forces per commit = %.3f (%d forces / %d records)",
			fpc, grouped.LogForces, grouped.Commits+grouped.Aborts)
	}
	if grouped.Latency.N != total || ungrouped.Latency.N != total {
		t.Errorf("latency samples %d/%d, want %d each", ungrouped.Latency.N, grouped.Latency.N, total)
	}
	if grouped.Latency.P99 < grouped.Latency.P50 || grouped.Latency.Max < grouped.Latency.P99 {
		t.Errorf("latency quantiles not monotone: %v", grouped.Latency)
	}
}
