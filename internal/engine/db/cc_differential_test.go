package db

import (
	"testing"

	"tpccmodel/internal/core"
	"tpccmodel/internal/tpcc"
)

// The differential gates: 2PL is the oracle for mvcc AND ssi. Any
// committed schedule the modes all execute must land on byte-identical
// state — snapshot isolation changes what concurrent transactions SEE,
// and SSI changes which transactions may COMMIT, never what committed
// serial history MEANS. Single-threaded schedules additionally pin
// SSI's false-positive floor: with no concurrency there are no
// rw-antidependency edges, so zero ssi aborts may occur.

// TestCCDifferentialTiny replays one deterministic, single-threaded
// schedule — updates, a mid-schedule rollback, a first-committer loser,
// read-only transactions — over the tiny fixture under both modes and
// requires identical state hashes. Fast enough for `-short -race`.
func TestCCDifferentialTiny(t *testing.T) {
	hashes := map[CCMode]uint64{}
	for _, cc := range []CCMode{CC2PL, CCMVCC, CCSSI} {
		d := openTiny(t, cc)

		// Interleaved balance/YTD churn across every fixture district.
		for round := int64(0); round < 5; round++ {
			for dist := int64(0); dist < tinyDistricts; dist++ {
				tx := d.begin()
				amt := uint64(100*round + 10*dist + 1)
				if err := writeWarehouse(tx, func(w *WarehouseRec) { w.YTDCents += amt }); err != nil {
					t.Fatal(err)
				}
				if err := tinyWriteDistrict(tx, dist, func(r *DistrictRec) {
					r.YTDCents += amt
					r.NextOID++
				}); err != nil {
					t.Fatal(err)
				}
				if err := tinyWriteCustomer(tx, dist, func(c *CustomerRec) {
					c.BalanceCents -= int64(amt)
					c.PaymentCount++
				}); err != nil {
					t.Fatal(err)
				}
				// Every third transaction aborts: rollback must restore the
				// identical pre-images under both modes.
				if (round+dist)%3 == 2 {
					if err := tx.rollback(); err != nil {
						t.Fatal(err)
					}
					continue
				}
				if err := tx.commit(); err != nil {
					t.Fatal(err)
				}
			}
			// A read-only transaction between rounds (exercises the mvcc
			// WAL-skip commit path; a plain locked read under 2PL).
			ro := d.begin()
			tinyReadCustomer(t, ro, round%tinyDistricts)
			if err := ro.commit(); err != nil {
				t.Fatal(err)
			}
		}
		if cc == CCSSI {
			if n := d.SSIAborts(); n != 0 {
				t.Fatalf("sequential ssi schedule hit %d ssi aborts, want 0", n)
			}
		}
		hashes[cc] = stateHash(t, d)
	}
	for _, cc := range []CCMode{CCMVCC, CCSSI} {
		if hashes[CC2PL] != hashes[cc] {
			t.Fatalf("committed state diverges: 2pl=%016x %s=%016x", hashes[CC2PL], cc, hashes[cc])
		}
	}
}

// TestCCDifferentialWorkload runs the full seeded TPC-C workload — same
// seed, same mix, one worker so the schedule is identical — under 2PL
// and mvcc, and requires byte-identical committed state plus C1-C4
// consistency in both. One worker means no lock conflicts and no
// first-committer losses, so zero retries may perturb the input stream;
// the test pins that assumption too.
func TestCCDifferentialWorkload(t *testing.T) {
	if testing.Short() {
		t.Skip("needs a loaded warehouse")
	}
	hashes := map[CCMode]uint64{}
	for _, cc := range []CCMode{CC2PL, CCMVCC, CCSSI} {
		d, err := Open(Config{
			Warehouses: 1, PageSize: 4096, BufferPages: 32768, CC: cc,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := d.Load(11); err != nil {
			t.Fatal(err)
		}
		st, err := RunConcurrentPolicy(d, 99, tpcc.DefaultMix(), 1200, 1, DefaultRetryPolicy())
		if err != nil {
			t.Fatal(err)
		}
		if st.Retries != 0 || st.Sheds != 0 {
			t.Fatalf("%s: single-worker run retried (%d) or shed (%d) — schedules diverge",
				cc, st.Retries, st.Sheds)
		}
		if err := d.CheckConsistency(); err != nil {
			t.Fatalf("%s: %v", cc, err)
		}
		if cc != CC2PL {
			if n := d.WriteConflicts(); n != 0 {
				t.Fatalf("single-worker %s run hit %d write conflicts", cc, n)
			}
		}
		if cc == CCSSI {
			// TPC-C is serializable under plain SI (Fekete et al., TODS
			// 2005) and a single worker creates no concurrency at all, so
			// any ssi abort here would be a detector bug, not a false
			// positive.
			if n := d.SSIAborts(); n != 0 {
				t.Fatalf("single-worker ssi run hit %d ssi aborts", n)
			}
		}
		hashes[cc] = stateHash(t, d)
	}
	for _, cc := range []CCMode{CCMVCC, CCSSI} {
		if hashes[CC2PL] != hashes[cc] {
			t.Fatalf("committed state diverges: 2pl=%016x %s=%016x", hashes[CC2PL], cc, hashes[cc])
		}
	}
}

// TestCCMVCCConcurrentConsistency drives the real concurrent workload —
// 4 workers, conflicts and retries live — under mvcc and checks the
// benchmark's C1-C4 invariants plus the per-type stat plumbing.
func TestCCMVCCConcurrentConsistency(t *testing.T) {
	if testing.Short() {
		t.Skip("needs a loaded warehouse")
	}
	d, err := Open(Config{
		Warehouses: 1, PageSize: 4096, BufferPages: 32768, CC: CCMVCC,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Load(7); err != nil {
		t.Fatal(err)
	}
	st, err := RunConcurrentPolicy(d, 13, tpcc.DefaultMix(), 800, 4, DefaultRetryPolicy())
	if err != nil {
		t.Fatal(err)
	}
	if err := d.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	var acked, aborts, conflicts int64
	for _, typ := range core.TxnTypes() {
		ts := st.PerType[typ]
		acked += ts.Acked
		aborts += ts.Aborts
		conflicts += ts.Conflicts
		if ts.Conflicts > ts.Aborts {
			t.Fatalf("%s: conflicts (%d) exceed aborts (%d)", typ, ts.Conflicts, ts.Aborts)
		}
	}
	if acked != st.Acknowledged() {
		t.Fatalf("per-type acked sum %d != total %d", acked, st.Acknowledged())
	}
	// Read-only transactions must never conflict: FCW only fires on writes.
	for _, typ := range []core.TxnType{core.TxnOrderStatus, core.TxnStockLevel} {
		if n := st.PerType[typ].Conflicts; n != 0 {
			t.Fatalf("read-only %s hit %d write conflicts", typ, n)
		}
	}
	t.Logf("mvcc 4-worker: acked=%d aborts=%d conflicts=%d (store: %d) chains=%d",
		acked, aborts, conflicts, d.WriteConflicts(), d.VersionChains())
}

// TestCCSSIConcurrentConsistency is the same concurrent gate under ssi:
// C1-C4 must hold with dangerous-structure aborts and retries live, and
// the ssi-abort accounting must reconcile — every store-level abort
// surfaces as exactly one ErrSSIAbort in some worker's retry loop.
// Because TPC-C is serializable under plain SI, every one of those
// aborts is by definition a false positive; this test tolerates them
// (the retry loop absorbs them) but pins where they can occur.
func TestCCSSIConcurrentConsistency(t *testing.T) {
	if testing.Short() {
		t.Skip("needs a loaded warehouse")
	}
	d, err := Open(Config{
		Warehouses: 1, PageSize: 4096, BufferPages: 32768, CC: CCSSI,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Load(7); err != nil {
		t.Fatal(err)
	}
	st, err := RunConcurrentPolicy(d, 13, tpcc.DefaultMix(), 800, 4, DefaultRetryPolicy())
	if err != nil {
		t.Fatal(err)
	}
	if err := d.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	var ssiSum int64
	for _, typ := range core.TxnTypes() {
		ts := st.PerType[typ]
		ssiSum += ts.SSIAborts
		if ts.SSIAborts > ts.Aborts {
			t.Fatalf("%s: ssi aborts (%d) exceed aborts (%d)", typ, ts.SSIAborts, ts.Aborts)
		}
	}
	if n := d.SSIAborts(); ssiSum != n {
		t.Fatalf("per-type ssi aborts sum %d != store count %d", ssiSum, n)
	}
	// A read-only transaction can acquire out-edges but never an in-edge
	// (nothing it wrote can be read), so it can never become a pivot —
	// but it CAN still draw an ssi abort: when its read lands under a
	// version whose creator is a committed pivot, aborting the pivot is
	// no longer possible and the reader must yield instead. So read-only
	// ssi aborts are tolerated here; write conflicts are not — a
	// transaction that writes nothing has nothing to conflict on.
	for _, typ := range []core.TxnType{core.TxnOrderStatus, core.TxnStockLevel} {
		if n := st.PerType[typ].Conflicts; n != 0 {
			t.Fatalf("read-only %s hit %d write conflicts", typ, n)
		}
	}
	t.Logf("ssi 4-worker: acked=%d ssi-aborts=%d (all false positives) conflicts=%d chains=%d",
		st.Acknowledged(), ssiSum, d.WriteConflicts(), d.VersionChains())
}
