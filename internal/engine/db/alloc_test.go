//go:build !race

// AllocsPerRun is documented as unreliable under the race detector (the
// instrumentation itself allocates), so this gate runs only on the
// race-free test leg.

package db

import (
	"testing"

	"tpccmodel/internal/core"
	"tpccmodel/internal/engine/lock"
	"tpccmodel/internal/tpcc"
)

// TestHotPathAllocationFree gates the engine hot path at zero heap
// allocations per committed transaction in BOTH concurrency-control
// modes: testing.AllocsPerRun must report exactly 0 for New-Order and
// for Payment (both the by-id and the by-name customer select) on the
// non-group-commit path. Under mvcc that additionally covers snapshot
// begin/commit, version-chain installation (per-chain arenas plus chain
// freelists), retire-ring bookkeeping, and watermark pruning — copy-out
// versioning must not cost the hot path its zero-allocation property.
//
// The measured closures reuse inputs prepared once by the Runner's own
// generator, so the gate covers exactly what the benchmark loop executes:
// Session scratch, typed undo + arena, index descent, buffer-pool hits,
// and WAL appends. Amortized infrastructure growth (heap-file page slabs,
// B-tree node chunks, WAL buffer doubling) is kept out of the measurement
// by sizing the buffer pool to hold the whole 1-warehouse dataset,
// pre-growing the log, and warming up first; residual growth events land
// well under one allocation per run, which AllocsPerRun's integer average
// reports as 0 — any per-transaction allocation reports as >= 1.
func TestHotPathAllocationFree(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation gate needs a loaded warehouse")
	}
	for _, cc := range []CCMode{CC2PL, CCMVCC, CCSSI} {
		t.Run(cc.String(), func(t *testing.T) { testHotPathAllocationFree(t, cc) })
	}
}

func testHotPathAllocationFree(t *testing.T, cc CCMode) {
	// 32768 x 4 KiB covers the ~15k-page 1-warehouse dataset plus insert
	// growth; with room to spare the measurement sees no evictions. The
	// gate runs with lock striping and pool partitioning explicitly on:
	// sharding the structures must not reintroduce per-transaction
	// allocations (each stripe and partition carries its own free pools).
	d, err := Open(Config{
		Warehouses: 1, PageSize: 4096, BufferPages: 32768,
		LockStripes: lock.DefaultStripes, BufferPartitions: 8,
		CC: cc,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Load(1); err != nil {
		t.Fatal(err)
	}
	d.log.Grow(64 << 20)

	// One Session and one prepared input per gate, reused across runs:
	// AllocsPerRun must observe steady-state execution, not input setup.
	s := d.NewSession()
	rn := NewRunner(d, 7, tpcc.DefaultMix())

	rn.prepareArgs(core.TxnNewOrder)
	newOrder := func() {
		if _, err := s.NewOrder(rn.args.newOrder); err != nil {
			t.Fatal(err)
		}
	}

	paymentInput := func(byName bool) PaymentInput {
		for {
			rn.prepareArgs(core.TxnPayment)
			if rn.args.payment.ByName == byName {
				return rn.args.payment
			}
		}
	}
	byID := paymentInput(false)
	byName := paymentInput(true)
	paymentByID := func() {
		if err := s.Payment(byID); err != nil {
			t.Fatal(err)
		}
	}
	paymentByName := func() {
		if err := s.Payment(byName); err != nil {
			t.Fatal(err)
		}
	}

	for i := 0; i < 500; i++ {
		newOrder()
		paymentByID()
		paymentByName()
	}

	gates := []struct {
		name string
		fn   func()
	}{
		{"NewOrder", newOrder},
		{"Payment/byID", paymentByID},
		{"Payment/byName", paymentByName},
	}
	for _, g := range gates {
		if allocs := testing.AllocsPerRun(500, g.fn); allocs != 0 {
			t.Errorf("%s: %v allocs/run, want 0", g.name, allocs)
		}
	}
}
