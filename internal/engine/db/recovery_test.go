package db

import (
	"sync"
	"testing"

	"tpccmodel/internal/core"
	"tpccmodel/internal/engine/index"
	"tpccmodel/internal/engine/storage"
	"tpccmodel/internal/tpcc"
)

// TestCrashRecoveryPreservesCommitted is the core durability test: run
// committed transactions, crash without checkpointing, recover, and verify
// every committed effect survived.
func TestCrashRecoveryPreservesCommitted(t *testing.T) {
	d := newLoaded(t, 1<<18)

	// Committed work after the load checkpoint.
	in := NewOrderInput{W: 0, D: 6, C: 123}
	for i := 0; i < 10; i++ {
		in.Items = append(in.Items, OrderItem{IID: int64(1000 + i), SupplyW: 0, Qty: 2})
	}
	placed, err := d.NewOrder(in)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Payment(PaymentInput{W: 0, D: 6, CW: 0, CD: 6, C: 123, AmountCents: 999}); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Delivery(DeliveryInput{W: 0, Carrier: 7}); err != nil {
		t.Fatal(err)
	}

	balBefore := readCustomer(t, d, 0, 6, 123).BalanceCents
	ordersBefore := d.heaps[core.Order].Live()
	noBefore := d.heaps[core.NewOrder].Live()

	if err := d.Crash(); err != nil {
		t.Fatal(err)
	}
	if err := d.Recover(); err != nil {
		t.Fatal(err)
	}

	// The placed order and its lines are back.
	if _, ok := d.orderIdx.get(index.KeyWDO(0, 6, placed.OID)); !ok {
		t.Error("committed order lost")
	}
	for l := int64(0); l < 10; l++ {
		if _, ok := d.olIdx.get(index.KeyWDOL(0, 6, placed.OID, l)); !ok {
			t.Fatalf("committed order-line %d lost", l)
		}
	}
	// The district counter reflects the committed order.
	if rec := readDistrict(t, d, 0, 6); rec.NextOID != 3001 {
		t.Errorf("NextOID = %d, want 3001", rec.NextOID)
	}
	// The payment's balance change survived.
	if got := readCustomer(t, d, 0, 6, 123).BalanceCents; got != balBefore {
		t.Errorf("customer balance = %d, want %d", got, balBefore)
	}
	// Delivery's new-order deletions survived.
	if got := d.heaps[core.NewOrder].Live(); got != noBefore {
		t.Errorf("new-order rows = %d, want %d", got, noBefore)
	}
	if got := d.heaps[core.Order].Live(); got != ordersBefore {
		t.Errorf("order rows = %d, want %d", got, ordersBefore)
	}
	// The first delivered order (district 0, order 2100) kept its carrier.
	buf := make([]byte, tpcc.TupleLen[core.Order])
	rid, ok := d.orderIdx.get(index.KeyWDO(0, 0, 2100))
	if !ok {
		t.Fatal("order 2100 lost")
	}
	if err := d.heaps[core.Order].Read(storage.UnpackRID(rid), buf); err != nil {
		t.Fatal(err)
	}
	var orec OrderRec
	orec.Unmarshal(buf)
	if orec.CarrierID != 7 {
		t.Errorf("order 2100 carrier = %d, want 7", orec.CarrierID)
	}
	// The database still works after recovery.
	if _, err := d.NewOrder(in); err != nil {
		t.Fatal(err)
	}
}

// TestAbortRollsBackEverything aborts a New-Order mid-flight by injecting
// a failure (nonexistent item) and verifies no partial state remains.
func TestAbortRollsBackEverything(t *testing.T) {
	d := newLoaded(t, 1<<18)
	before := readDistrict(t, d, 0, 1)
	ordersBefore := d.heaps[core.Order].Live()
	olBefore := d.heaps[core.OrderLine].Live()

	in := NewOrderInput{W: 0, D: 1, C: 5}
	for i := 0; i < 9; i++ {
		in.Items = append(in.Items, OrderItem{IID: int64(i), SupplyW: 0, Qty: 1})
	}
	// The tenth item does not exist: the procedure fails after the
	// district update, order insert, and nine order-line inserts.
	in.Items = append(in.Items, OrderItem{IID: tpcc.ItemCount + 5, SupplyW: 0, Qty: 1})
	if _, err := d.NewOrder(in); err == nil {
		t.Fatal("expected failure on nonexistent item")
	}

	after := readDistrict(t, d, 0, 1)
	if after.NextOID != before.NextOID {
		t.Errorf("NextOID = %d, want rolled back %d", after.NextOID, before.NextOID)
	}
	if got := d.heaps[core.Order].Live(); got != ordersBefore {
		t.Errorf("order rows = %d, want %d", got, ordersBefore)
	}
	if got := d.heaps[core.OrderLine].Live(); got != olBefore {
		t.Errorf("order-line rows = %d, want %d", got, olBefore)
	}
	if _, ok := d.orderIdx.get(index.KeyWDO(0, 1, int64(before.NextOID))); ok {
		t.Error("aborted order still indexed")
	}
	if d.Aborts() != 1 {
		t.Errorf("aborts = %d", d.Aborts())
	}
	// And the slot is reusable: the same order succeeds without the bad
	// item.
	in.Items = in.Items[:9]
	if _, err := d.NewOrder(in); err != nil {
		t.Fatal(err)
	}
}

// TestCrashLosesUncommittedAfterImages verifies the redo-only protocol
// end to end: an aborted transaction's changes never reach the durable
// state even if its pages were flushed mid-flight by eviction pressure.
func TestCrashDiscardsAbortedWork(t *testing.T) {
	d := newLoaded(t, 1<<18)
	before := readDistrict(t, d, 0, 0)

	in := NewOrderInput{W: 0, D: 0, C: 1}
	in.Items = append(in.Items, OrderItem{IID: tpcc.ItemCount + 1, SupplyW: 0, Qty: 1})
	if _, err := d.NewOrder(in); err == nil {
		t.Fatal("expected failure")
	}

	if err := d.Crash(); err != nil {
		t.Fatal(err)
	}
	if err := d.Recover(); err != nil {
		t.Fatal(err)
	}
	after := readDistrict(t, d, 0, 0)
	if after.NextOID != before.NextOID {
		t.Errorf("aborted district update resurrected: %d vs %d", after.NextOID, before.NextOID)
	}
}

// TestRecoveryUnderStealPressure uses a pool so small that dirty pages of
// in-flight transactions are constantly flushed (steal), then crashes and
// verifies the before-image protocol restores exact committed state.
func TestRecoveryUnderStealPressure(t *testing.T) {
	d2, err := Open(Config{Warehouses: 1, PageSize: 4096, BufferPages: 256})
	if err != nil {
		t.Fatal(err)
	}
	if err := d2.Load(1); err != nil {
		t.Fatal(err)
	}
	rn := NewRunner(d2, 31, tpcc.DefaultMix())
	if err := rn.Run(120); err != nil {
		t.Fatal(err)
	}
	st := d2.BufferStats()
	if st.Flushes == 0 {
		t.Fatal("test needs steal pressure; no dirty flushes happened")
	}
	var nextBefore int64
	for dist := int64(0); dist < 10; dist++ {
		nextBefore += int64(readDistrict(t, d2, 0, dist).NextOID)
	}
	ordersBefore := d2.heaps[core.Order].Live()
	if err := d2.Crash(); err != nil {
		t.Fatal(err)
	}
	if err := d2.Recover(); err != nil {
		t.Fatal(err)
	}
	var nextAfter int64
	for dist := int64(0); dist < 10; dist++ {
		nextAfter += int64(readDistrict(t, d2, 0, dist).NextOID)
	}
	if nextAfter != nextBefore {
		t.Errorf("sum(NextOID) changed across crash: %d -> %d", nextBefore, nextAfter)
	}
	if got := d2.heaps[core.Order].Live(); got != ordersBefore {
		t.Errorf("orders %d -> %d across crash", ordersBefore, got)
	}
	if nextAfter != d2.heaps[core.Order].Live() {
		t.Errorf("district counters (%d) disagree with orders (%d)",
			nextAfter, d2.heaps[core.Order].Live())
	}
}

// TestDeadlockRetryUnderContention forces lock-order inversions: pairs of
// New-Orders take X locks on the same two stock rows in opposite orders.
// The wait-for-graph detector must abort victims (never hang), undo their
// partial work, and retried executions must leave consistent state.
func TestDeadlockRetryUnderContention(t *testing.T) {
	d := newLoaded(t, 1<<18)
	const rounds = 200
	var wg sync.WaitGroup
	errs := make(chan error, 2)
	run := func(items []OrderItem, cust int64) {
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			for {
				_, err := d.NewOrder(NewOrderInput{W: 0, D: 0, C: cust, Items: items})
				if err == ErrAborted {
					continue
				}
				if err != nil {
					errs <- err
					return
				}
				break
			}
		}
	}
	wg.Add(2)
	go run([]OrderItem{{IID: 100, SupplyW: 0, Qty: 1}, {IID: 200, SupplyW: 0, Qty: 1}}, 1)
	go run([]OrderItem{{IID: 200, SupplyW: 0, Qty: 1}, {IID: 100, SupplyW: 0, Qty: 1}}, 2)
	wg.Wait()
	close(errs)
	if err := <-errs; err != nil {
		t.Fatal(err)
	}
	if d.Commits() != 2*rounds {
		t.Errorf("commits = %d, want %d", d.Commits(), 2*rounds)
	}
	// Stock order counts must reflect exactly the committed work.
	for _, iid := range []int64{100, 200} {
		rid, _ := d.stockIdx.get(index.KeyWI(0, iid))
		buf := make([]byte, tpcc.TupleLen[core.Stock])
		if err := d.heaps[core.Stock].Read(storage.UnpackRID(rid), buf); err != nil {
			t.Fatal(err)
		}
		var rec StockRec
		rec.Unmarshal(buf)
		if rec.OrderCount != 2*rounds {
			t.Errorf("stock %d order count = %d, want %d (aborted work leaked?)",
				iid, rec.OrderCount, 2*rounds)
		}
	}
	if err := d.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

// TestRecoveryAfterConcurrentLoad runs a concurrent mixed workload, then
// crash+recover, and checks the structural invariants the workload
// maintains.
func TestRecoveryAfterConcurrentLoad(t *testing.T) {
	d := newLoaded(t, 1<<18)
	if err := RunConcurrent(d, 19, tpcc.DefaultMix(), 400, 4); err != nil {
		t.Fatal(err)
	}
	commits := d.Commits()
	if err := d.Crash(); err != nil {
		t.Fatal(err)
	}
	if err := d.Recover(); err != nil {
		t.Fatal(err)
	}
	// Every order has exactly OLCount order lines, and district counters
	// match the orders present.
	var nextSum int64
	for dist := int64(0); dist < 10; dist++ {
		nextSum += int64(readDistrict(t, d, 0, dist).NextOID)
	}
	if orders := d.heaps[core.Order].Live(); nextSum != orders {
		t.Errorf("sum(NextOID) = %d but %d orders exist after recovery", nextSum, orders)
	}
	// Indexes agree with heap contents.
	if int64(d.orderIdx.t.Len()) != d.heaps[core.Order].Live() {
		t.Errorf("order index has %d entries, heap has %d rows",
			d.orderIdx.t.Len(), d.heaps[core.Order].Live())
	}
	if int64(d.olIdx.t.Len()) != d.heaps[core.OrderLine].Live() {
		t.Errorf("order-line index has %d entries, heap has %d rows",
			d.olIdx.t.Len(), d.heaps[core.OrderLine].Live())
	}
	if int64(d.newOrderIdx.t.Len()) != d.heaps[core.NewOrder].Live() {
		t.Errorf("new-order index has %d entries, heap has %d rows",
			d.newOrderIdx.t.Len(), d.heaps[core.NewOrder].Live())
	}
	// The system continues to function and the commit counter persists.
	rn := NewRunner(d, 23, tpcc.DefaultMix())
	if err := rn.Run(50); err != nil {
		t.Fatal(err)
	}
	if d.Commits() < commits+50 {
		t.Errorf("commits = %d, want >= %d", d.Commits(), commits+50)
	}
}
