package db

import (
	"testing"
	"time"

	"tpccmodel/internal/core"
	"tpccmodel/internal/engine/index"
	"tpccmodel/internal/engine/storage"
	"tpccmodel/internal/tpcc"
)

// The cross-shard snapshot cut: each shard's MVCC store stamps commits
// from its OWN clock, and a distributed transaction commits its branches
// at two different local instants. A global reader that takes one local
// snapshot per shard between those instants observes the transaction
// torn — applied on the shard that committed first, invisible on the
// other. This is the documented gap: snapshots are per-shard cuts, not
// global ones, exactly as ErrWriteConflict documents FCW and TestWriteSkew
// documents SI's anomaly. Closing it would take shared-clock (or
// HLC/TrueTime-style) commit stamping plus a consistent-cut protocol for
// readers; this engine instead pins the behaviour here so the caveat
// stays load-bearing. Note ssi does NOT close it either: SSI validation
// is per-shard (each store checks its own edge graph at Prepare), so
// serializability, like snapshot consistency, stops at the shard
// boundary.

// openCutPair opens two mvcc-family instances standing in for a home
// and a participant shard.
func openCutPair(t *testing.T, cc CCMode) (home, part *DB) {
	t.Helper()
	for _, d := range []**DB{&home, &part} {
		db, err := OpenWith(Config{Warehouses: 1, PageSize: 4096, BufferPages: 4096, CC: cc},
			Options{LockWaitTimeout: 20 * time.Millisecond})
		if err != nil {
			t.Fatal(err)
		}
		if err := db.Load(1); err != nil {
			t.Fatal(err)
		}
		*d = db
	}
	return home, part
}

// snapStockQty snap-reads stock (0,iid) quantity under a fresh snapshot
// transaction on d.
func snapStockQty(t *testing.T, d *DB, iid int64) (int32, *txn) {
	t.Helper()
	tx := d.begin()
	rid, ok := d.stockIdx.get(index.KeyWI(0, iid))
	if !ok {
		t.Fatalf("no stock (0,%d)", iid)
	}
	buf := make([]byte, tpcc.TupleLen[core.Stock])
	live, err := tx.snapRead(core.Stock, index.KeyWI(0, iid), storage.UnpackRID(rid), buf)
	if err != nil || !live {
		t.Fatalf("stock snapshot read: live=%v err=%v", live, err)
	}
	var rec StockRec
	rec.Unmarshal(buf)
	return rec.Quantity, tx
}

// TestDistSnapshotCutTorn witnesses the torn cut deterministically: a
// two-branch distributed stock update, home committed, participant
// prepared but not yet committed. A snapshot on the home shard sees the
// new quantity while a simultaneous snapshot on the participant still
// sees the old one — a global read no serial execution of the
// distributed transaction could produce. After the participant commits,
// a fresh snapshot pair is consistent again.
func TestDistSnapshotCutTorn(t *testing.T) {
	for _, cc := range []CCMode{CCMVCC, CCSSI} {
		t.Run(cc.String(), func(t *testing.T) {
			home, part := openCutPair(t, cc)
			const gid = 0x77001
			const iid = 42

			h0, tx := snapStockQty(t, home, iid)
			if err := tx.commit(); err != nil {
				t.Fatal(err)
			}
			p0, tx := snapStockQty(t, part, iid)
			if err := tx.commit(); err != nil {
				t.Fatal(err)
			}

			// One distributed transaction updating stock on both shards.
			hb, err := home.RemoteStockBegin(gid, []OrderItem{{IID: iid, SupplyW: 0, Qty: 5}})
			if err != nil {
				t.Fatal(err)
			}
			pb, err := part.RemoteStockBegin(gid, []OrderItem{{IID: iid, SupplyW: 0, Qty: 5}})
			if err != nil {
				t.Fatal(err)
			}
			if err := pb.Prepare(); err != nil {
				t.Fatal(err)
			}
			// The home branch's commit is the global decision...
			if err := hb.Commit(); err != nil {
				t.Fatal(err)
			}

			// ...and in the window before the participant applies it, a
			// snapshot pair reads the transaction HALF-APPLIED. Both reads
			// are locally consistent; the cut is global and torn.
			hq, htx := snapStockQty(t, home, iid)
			pq, ptx := snapStockQty(t, part, iid)
			if hq == h0 {
				t.Fatalf("home snapshot still sees pre-commit quantity %d", hq)
			}
			if pq != p0 {
				t.Fatalf("participant snapshot sees %d, want pre-commit %d — torn-cut witness lost", pq, p0)
			}
			if err := htx.commit(); err != nil {
				t.Fatal(err)
			}
			if err := ptx.commit(); err != nil {
				t.Fatal(err)
			}

			if err := pb.Commit(); err != nil {
				t.Fatal(err)
			}
			// Once every branch is committed, fresh local snapshots agree.
			hq2, htx2 := snapStockQty(t, home, iid)
			pq2, ptx2 := snapStockQty(t, part, iid)
			if hq2 != pq2 {
				t.Fatalf("post-commit snapshots disagree: home %d, part %d", hq2, pq2)
			}
			if err := htx2.commit(); err != nil {
				t.Fatal(err)
			}
			if err := ptx2.commit(); err != nil {
				t.Fatal(err)
			}
		})
	}
}
