package db

import (
	"testing"

	"tpccmodel/internal/core"
	"tpccmodel/internal/engine/index"
	"tpccmodel/internal/engine/storage"
	"tpccmodel/internal/tpcc"
)

// newLoaded returns a loaded single-warehouse database.
func newLoaded(t testing.TB, bufferPages int) *DB {
	t.Helper()
	d, err := Open(Config{Warehouses: 1, PageSize: 4096, BufferPages: bufferPages})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Load(1); err != nil {
		t.Fatal(err)
	}
	return d
}

func readDistrict(t *testing.T, d *DB, w, dist int64) DistrictRec {
	t.Helper()
	rid, ok := d.districtIdx.get(index.KeyWD(w, dist))
	if !ok {
		t.Fatalf("no district (%d,%d)", w, dist)
	}
	buf := make([]byte, tpcc.TupleLen[core.District])
	if err := d.heaps[core.District].Read(storage.UnpackRID(rid), buf); err != nil {
		t.Fatal(err)
	}
	var rec DistrictRec
	rec.Unmarshal(buf)
	return rec
}

func readCustomer(t *testing.T, d *DB, w, dist, c int64) CustomerRec {
	t.Helper()
	rid, ok := d.customerIdx.get(index.KeyWDC(w, dist, c))
	if !ok {
		t.Fatalf("no customer (%d,%d,%d)", w, dist, c)
	}
	buf := make([]byte, tpcc.TupleLen[core.Customer])
	if err := d.heaps[core.Customer].Read(storage.UnpackRID(rid), buf); err != nil {
		t.Fatal(err)
	}
	var rec CustomerRec
	rec.Unmarshal(buf)
	return rec
}

func TestLoadCounts(t *testing.T) {
	d := newLoaded(t, 1<<18)
	if err := d.VerifyCounts(); err != nil {
		t.Fatal(err)
	}
	// Districts start with NextOID = 3000.
	rec := readDistrict(t, d, 0, 3)
	if rec.NextOID != 3000 {
		t.Errorf("NextOID = %d, want 3000", rec.NextOID)
	}
}

func TestRecordLayoutsMatchTable1(t *testing.T) {
	// Marshal panics if any record layout drifts from Table 1; a
	// round-trip also exercises Unmarshal symmetry.
	var w WarehouseRec
	w.ID, w.TaxBP, w.YTDCents = 3, 150, 12345
	buf := make([]byte, tpcc.TupleLen[core.Warehouse])
	w.Marshal(buf)
	var w2 WarehouseRec
	w2.Unmarshal(buf)
	if w2 != w {
		t.Error("warehouse round trip failed")
	}
	var ol OrderLineRec
	ol.OID, ol.IID, ol.SupplyWID, ol.Number, ol.AmountCents = 7, 99, 2, 5, 1234
	buf = make([]byte, tpcc.TupleLen[core.OrderLine])
	ol.Marshal(buf)
	var ol2 OrderLineRec
	ol2.Unmarshal(buf)
	if ol2 != ol {
		t.Error("order-line round trip failed")
	}
}

func TestLastNames(t *testing.T) {
	if LastName(0) != "BARBARBAR" {
		t.Errorf("LastName(0) = %q", LastName(0))
	}
	if LastName(371) != "PRICALLYOUGHT" {
		t.Errorf("LastName(371) = %q", LastName(371))
	}
	if LastName(999) != "EINGEINGEING" {
		t.Errorf("LastName(999) = %q", LastName(999))
	}
}

func TestNewOrderTransaction(t *testing.T) {
	d := newLoaded(t, 1<<18)
	before := readDistrict(t, d, 0, 2)
	in := NewOrderInput{W: 0, D: 2, C: 17}
	for i := 0; i < 10; i++ {
		in.Items = append(in.Items, OrderItem{IID: int64(i * 100), SupplyW: 0, Qty: 3})
	}
	res, err := d.NewOrder(in)
	if err != nil {
		t.Fatal(err)
	}
	if res.OID != int64(before.NextOID) {
		t.Errorf("OID = %d, want %d", res.OID, before.NextOID)
	}
	after := readDistrict(t, d, 0, 2)
	if after.NextOID != before.NextOID+1 {
		t.Errorf("NextOID = %d, want %d", after.NextOID, before.NextOID+1)
	}
	// Order, new-order, and 10 order-lines exist.
	if _, ok := d.orderIdx.get(index.KeyWDO(0, 2, res.OID)); !ok {
		t.Error("order not indexed")
	}
	if _, ok := d.newOrderIdx.get(index.KeyWDO(0, 2, res.OID)); !ok {
		t.Error("new-order not indexed")
	}
	for l := int64(0); l < 10; l++ {
		if _, ok := d.olIdx.get(index.KeyWDOL(0, 2, res.OID, l)); !ok {
			t.Fatalf("order-line %d not indexed", l)
		}
	}
	if d.Commits() != 1 {
		t.Errorf("Commits = %d", d.Commits())
	}
}

func TestPaymentByIDUpdatesBalance(t *testing.T) {
	d := newLoaded(t, 1<<18)
	before := readCustomer(t, d, 0, 1, 42)
	err := d.Payment(PaymentInput{
		W: 0, D: 1, CW: 0, CD: 1, C: 42, AmountCents: 5000,
	})
	if err != nil {
		t.Fatal(err)
	}
	after := readCustomer(t, d, 0, 1, 42)
	if after.BalanceCents != before.BalanceCents-5000 {
		t.Errorf("balance = %d, want %d", after.BalanceCents, before.BalanceCents-5000)
	}
	if after.PaymentCount != before.PaymentCount+1 {
		t.Errorf("payment count = %d", after.PaymentCount)
	}
	// History got a row.
	if d.heaps[core.History].Live() != 1 {
		t.Errorf("history rows = %d", d.heaps[core.History].Live())
	}
}

func TestPaymentByNamePicksMiddleCustomer(t *testing.T) {
	d := newLoaded(t, 1<<18)
	// Name ordinal 5 is held by customer 5 plus any NURand-assigned
	// customers in [1000, 3000).
	lo, hi := index.RangeWDNC(0, 0, 5)
	var cids []int64
	d.custNameIdx.ascendRange(lo, hi, func(k, v uint64) bool {
		cids = append(cids, int64(k&0xffff))
		return true
	})
	if len(cids) == 0 {
		t.Fatal("no customer with name ordinal 5")
	}
	want := cids[len(cids)/2]
	beforeBal := readCustomer(t, d, 0, 0, want).BalanceCents
	if err := d.Payment(PaymentInput{
		W: 0, D: 0, CW: 0, CD: 0, ByName: true, NameOrd: 5, AmountCents: 700,
	}); err != nil {
		t.Fatal(err)
	}
	afterBal := readCustomer(t, d, 0, 0, want).BalanceCents
	if afterBal != beforeBal-700 {
		t.Errorf("middle customer %d balance unchanged (%d -> %d)", want, beforeBal, afterBal)
	}
}

func TestOrderStatusReturnsLastOrder(t *testing.T) {
	d := newLoaded(t, 1<<18)
	// Place a fresh order for customer 9 — Order-Status must see it, not
	// the loaded one.
	in := NewOrderInput{W: 0, D: 4, C: 9}
	for i := 0; i < 7; i++ {
		in.Items = append(in.Items, OrderItem{IID: int64(i), SupplyW: 0, Qty: 1})
	}
	placed, err := d.NewOrder(in)
	if err != nil {
		t.Fatal(err)
	}
	res, err := d.OrderStatus(OrderStatusInput{W: 0, D: 4, C: 9})
	if err != nil {
		t.Fatal(err)
	}
	if res.OID != placed.OID {
		t.Errorf("last order = %d, want %d", res.OID, placed.OID)
	}
	if res.Lines != 7 {
		t.Errorf("lines = %d, want 7", res.Lines)
	}
}

func TestDeliveryProcessesOldestPerDistrict(t *testing.T) {
	d := newLoaded(t, 1<<18)
	noBefore := d.heaps[core.NewOrder].Live()
	res, err := d.Delivery(DeliveryInput{W: 0, Carrier: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered != 10 || res.Skipped != 0 {
		t.Fatalf("delivered %d skipped %d, want 10/0", res.Delivered, res.Skipped)
	}
	if got := d.heaps[core.NewOrder].Live(); got != noBefore-10 {
		t.Errorf("new-order rows = %d, want %d", got, noBefore-10)
	}
	// The oldest pending order of district 0 was order 2100 (the load
	// leaves the most recent 900 of 3000 pending).
	buf := make([]byte, tpcc.TupleLen[core.Order])
	rid, _ := d.orderIdx.get(index.KeyWDO(0, 0, 2100))
	if err := d.heaps[core.Order].Read(storage.UnpackRID(rid), buf); err != nil {
		t.Fatal(err)
	}
	var orec OrderRec
	orec.Unmarshal(buf)
	if orec.CarrierID != 3 {
		t.Errorf("order 2100 carrier = %d, want 3", orec.CarrierID)
	}
	// Its new-order row is gone.
	if _, ok := d.newOrderIdx.get(index.KeyWDO(0, 0, 2100)); ok {
		t.Error("delivered new-order still indexed")
	}
}

func TestDeliverySkipsEmptyDistricts(t *testing.T) {
	d := newLoaded(t, 1<<18)
	// Deliver district 0..9 completely (900 pending each): 900 rounds.
	for i := 0; i < 900; i++ {
		res, err := d.Delivery(DeliveryInput{W: 0, Carrier: 1})
		if err != nil {
			t.Fatal(err)
		}
		if res.Delivered != 10 {
			t.Fatalf("round %d delivered %d", i, res.Delivered)
		}
	}
	res, err := d.Delivery(DeliveryInput{W: 0, Carrier: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered != 0 || res.Skipped != 10 {
		t.Errorf("drained warehouse: delivered %d skipped %d", res.Delivered, res.Skipped)
	}
	if d.heaps[core.NewOrder].Live() != 0 {
		t.Errorf("new-order rows = %d after drain", d.heaps[core.NewOrder].Live())
	}
}

func TestStockLevelCountsDistinctLowItems(t *testing.T) {
	d := newLoaded(t, 1<<18)
	// Threshold above any possible quantity counts every distinct item
	// in the last 20 orders; threshold 0 counts none (quantities stay
	// positive after the refill rule).
	all, err := d.StockLevel(StockLevelInput{W: 0, D: 0, Threshold: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if all <= 0 || all > 200 {
		t.Errorf("distinct items in last 20 orders = %d, want (0,200]", all)
	}
	none, err := d.StockLevel(StockLevelInput{W: 0, D: 0, Threshold: 0})
	if err != nil {
		t.Fatal(err)
	}
	if none != 0 {
		t.Errorf("below-zero threshold matched %d items", none)
	}
}

func TestMixedWorkloadSequential(t *testing.T) {
	d := newLoaded(t, 1<<18)
	rn := NewRunner(d, 7, tpcc.DefaultMix())
	if err := rn.Run(300); err != nil {
		t.Fatal(err)
	}
	counts := rn.Counts()
	var total int64
	for _, c := range counts {
		total += c
	}
	if total != 300 {
		t.Errorf("executed %d, want 300", total)
	}
	if d.Commits() < 300 {
		t.Errorf("commits = %d", d.Commits())
	}
}

func TestMixedWorkloadConcurrent(t *testing.T) {
	d := newLoaded(t, 1<<18)
	if err := RunConcurrent(d, 11, tpcc.DefaultMix(), 600, 4); err != nil {
		t.Fatal(err)
	}
	if d.Commits() < 600 {
		t.Errorf("commits = %d, want >= 600", d.Commits())
	}
	// District order-id counters must equal 3000 + committed new-orders
	// per district; verify the global invariant instead: sum of NextOID
	// == 3000*10 + #orders placed.
	var nextSum int64
	for dist := int64(0); dist < 10; dist++ {
		nextSum += int64(readDistrict(t, d, 0, dist).NextOID)
	}
	orders := d.heaps[core.Order].Live()
	if nextSum != orders {
		t.Errorf("sum(NextOID) = %d but %d orders exist", nextSum, orders)
	}
}

func TestBufferStatsTrackRelations(t *testing.T) {
	// 8192 pages (32MB) against a ~60MB single-warehouse database: the
	// skewed relations miss, the single hot warehouse page survives.
	d := newLoaded(t, 8192)
	d.ResetBufferStats()
	rn := NewRunner(d, 3, tpcc.DefaultMix())
	if err := rn.Run(300); err != nil {
		t.Fatal(err)
	}
	stats := d.RelationStats()
	if stats[core.Stock].Accesses() == 0 || stats[core.Customer].Accesses() == 0 {
		t.Error("stock/customer accesses not recorded")
	}
	if stats[core.Stock].Misses == 0 {
		t.Error("stock never missed in an undersized pool")
	}
	if wh := stats[core.Warehouse]; wh.MissRate() > 0.02 {
		t.Errorf("warehouse miss rate %v, want ~0 (paper: warehouse always fits)", wh.MissRate())
	}
}
