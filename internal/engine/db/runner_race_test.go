package db

import (
	"sync"
	"testing"
	"time"

	"tpccmodel/internal/tpcc"
)

// TestRunnerCountersConcurrentReads reads a Runner's counters from other
// goroutines while it executes, and checks the shed path keeps workers
// alive. Run under -race this is the regression test for the atomic
// counter conversion: the old int fields tore under concurrent Counts().
func TestRunnerCountersConcurrentReads(t *testing.T) {
	d := newLoaded(t, 2048)
	rn := NewRunner(d, 7, tpcc.DefaultMix())
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var last int64
			for {
				select {
				case <-stop:
					return
				default:
				}
				c := rn.Counts()
				var total int64
				for _, n := range c {
					total += n
				}
				total += rn.Retries() + rn.Sheds()
				if total < last {
					t.Error("counters went backwards")
					return
				}
				last = total
				time.Sleep(time.Microsecond)
			}
		}()
	}
	if err := rn.Run(500); err != nil {
		t.Fatal(err)
	}
	close(stop)
	wg.Wait()
	var total int64
	for _, n := range rn.Counts() {
		total += n
	}
	if total != 500 {
		t.Errorf("acknowledged %d of 500 transactions", total)
	}
}

// TestRunConcurrentPolicyAggregates runs workers concurrently and checks
// the aggregated stats account for every transaction.
func TestRunConcurrentPolicyAggregates(t *testing.T) {
	d := newLoaded(t, 2048)
	st, err := RunConcurrentPolicy(d, 11, tpcc.DefaultMix(), 600, 4, DefaultRetryPolicy())
	if err != nil {
		t.Fatal(err)
	}
	if st.Crashed {
		t.Fatal("no faults injected, yet a crash was reported")
	}
	if got := st.Acknowledged() + st.Sheds; got != 600 {
		t.Errorf("acked+shed = %d, want 600", got)
	}
}
