package db

import (
	"testing"

	"tpccmodel/internal/core"
	"tpccmodel/internal/engine/storage"
	"tpccmodel/internal/tpcc"
)

func TestConsistencyAfterLoad(t *testing.T) {
	d := newLoaded(t, 1<<18)
	if err := d.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

func TestConsistencyAfterConcurrentRun(t *testing.T) {
	d := newLoaded(t, 1<<18)
	if err := RunConcurrent(d, 53, tpcc.DefaultMix(), 600, 4); err != nil {
		t.Fatal(err)
	}
	if err := d.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

func TestConsistencyAfterCrashRecovery(t *testing.T) {
	d, err := Open(Config{Warehouses: 1, PageSize: 4096, BufferPages: 1024})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Load(1); err != nil {
		t.Fatal(err)
	}
	if err := RunConcurrent(d, 59, tpcc.DefaultMix(), 200, 4); err != nil {
		t.Fatal(err)
	}
	if err := d.Crash(); err != nil {
		t.Fatal(err)
	}
	if err := d.Recover(); err != nil {
		t.Fatal(err)
	}
	if err := d.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

// TestConsistencyDetectsCorruption proves the checker has teeth: corrupt
// one district counter and it must complain.
func TestConsistencyDetectsCorruption(t *testing.T) {
	d := newLoaded(t, 1<<18)
	// Bump district (0,0)'s next_o_id without creating the order.
	rid, ok := d.districtIdx.get(0)
	if !ok {
		t.Fatal("no district (0,0)")
	}
	buf := make([]byte, tpcc.TupleLen[core.District])
	if err := d.heaps[core.District].Read(storage.UnpackRID(rid), buf); err != nil {
		t.Fatal(err)
	}
	var rec DistrictRec
	rec.Unmarshal(buf)
	rec.NextOID += 5
	rec.Marshal(buf)
	if err := d.heaps[core.District].Update(storage.UnpackRID(rid), buf); err != nil {
		t.Fatal(err)
	}
	if err := d.CheckConsistency(); err == nil {
		t.Fatal("corrupted next_o_id not detected")
	}
}
