package db

import (
	"testing"
	"time"

	"tpccmodel/internal/core"
	"tpccmodel/internal/engine/storage"
	"tpccmodel/internal/tpcc"
)

// The anomaly matrix pins every (anomaly, cc-mode) pair in one table:
// each probe runs the same hand-interleaved schedule under 2pl, mvcc and
// ssi, tolerating whichever refusal the mode throws (lock timeout, FCW
// conflict, ssi abort), and reports only whether the anomalous OUTCOME
// was admitted. The matrix is the contract the CC modes are sold on:
// write skew is the single cell where the modes differ.
//
//	             2pl    mvcc   ssi
//	dirty-read    –      –      –
//	dirty-write   –      –      –
//	lost-update   –      –      –
//	write-skew    –    ALLOWED  –

// matrixReadCustomer is tinyReadCustomer with the engine error surfaced
// instead of t.Fatal — under 2PL a read of an uncommitted-written row
// times out on the shared lock, which is a refusal, not a test bug.
func matrixReadCustomer(tx *txn, dist int64) (CustomerRec, error) {
	key := custKey(dist)
	rid, _ := tx.d.customerIdx.get(key)
	buf := make([]byte, tpcc.TupleLen[core.Customer])
	live, err := tx.snapRead(core.Customer, key, storage.UnpackRID(rid), buf)
	var rec CustomerRec
	if err == nil && live {
		rec.Unmarshal(buf)
	}
	return rec, err
}

// probeDirtyRead: can a concurrent transaction observe an uncommitted
// write?
func probeDirtyRead(t *testing.T, d *DB) bool {
	w := d.begin()
	if err := tinyWriteCustomer(w, 0, func(c *CustomerRec) { c.BalanceCents = 111 }); err != nil {
		t.Fatal(err)
	}
	r := d.begin()
	rec, err := matrixReadCustomer(r, 0)
	observed := err == nil && rec.BalanceCents == 111
	if err != nil {
		r.fail(err)
	} else if err := r.commit(); err != nil {
		r.fail(err)
	}
	if err := w.commit(); err != nil {
		t.Fatalf("lone writer must commit: %v", err)
	}
	return observed
}

// probeDirtyWrite: can a second writer replace a row whose update is
// still uncommitted?
func probeDirtyWrite(t *testing.T, d *DB) bool {
	t1 := d.begin()
	if err := tinyWriteCustomer(t1, 0, func(c *CustomerRec) { c.BalanceCents = 111 }); err != nil {
		t.Fatal(err)
	}
	t2 := d.begin()
	err := tinyWriteCustomer(t2, 0, func(c *CustomerRec) { c.BalanceCents = 222 })
	observed := err == nil
	if err != nil {
		t2.fail(err)
	} else if err := t2.commit(); err != nil {
		t2.fail(err)
	}
	if err := t1.commit(); err != nil {
		t.Fatalf("first writer must commit: %v", err)
	}
	return observed
}

// probeLostUpdate: two read-modify-write increments under overlapping
// snapshots — admitted when both commit but only one increment lands.
func probeLostUpdate(t *testing.T, d *DB) bool {
	t1 := d.begin()
	t2 := d.begin()
	commits := 0
	step := func(tx *txn) {
		if _, err := matrixReadCustomer(tx, 0); err != nil {
			tx.fail(err)
			return
		}
		if err := tinyWriteCustomer(tx, 0, func(c *CustomerRec) { c.BalanceCents += 100 }); err != nil {
			tx.fail(err)
			return
		}
		if err := tx.commit(); err != nil {
			tx.fail(err)
			return
		}
		commits++
	}
	step(t1)
	step(t2)
	fin := d.begin()
	rec, err := matrixReadCustomer(fin, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := fin.commit(); err != nil {
		t.Fatal(err)
	}
	return commits == 2 && rec.BalanceCents == 100
}

// probeWriteSkew: the TestWriteSkew schedule — crossing guard reads,
// disjoint withdrawals. Admitted when both rows end up drained.
func probeWriteSkew(t *testing.T, d *DB) bool {
	seed := d.begin()
	for _, dist := range []int64{0, 1} {
		if err := tinyWriteCustomer(seed, dist, func(c *CustomerRec) { c.BalanceCents = 50 }); err != nil {
			t.Fatal(err)
		}
	}
	if err := seed.commit(); err != nil {
		t.Fatal(err)
	}

	t1 := d.begin()
	t2 := d.begin()
	step := func(tx *txn, guard, victim int64) bool {
		if _, err := matrixReadCustomer(tx, guard); err != nil {
			tx.fail(err)
			return false
		}
		if err := tinyWriteCustomer(tx, victim, func(c *CustomerRec) { c.BalanceCents = 0 }); err != nil {
			tx.fail(err)
			return false
		}
		return true
	}
	ok1 := step(t1, 1, 0)
	ok2 := step(t2, 0, 1)
	if ok1 {
		if err := t1.commit(); err != nil {
			t1.fail(err)
			ok1 = false
		}
	}
	if ok2 {
		if err := t2.commit(); err != nil {
			t2.fail(err)
			ok2 = false
		}
	}

	fin := d.begin()
	r0, err := matrixReadCustomer(fin, 0)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := matrixReadCustomer(fin, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := fin.commit(); err != nil {
		t.Fatal(err)
	}
	return ok1 && ok2 && r0.BalanceCents == 0 && r1.BalanceCents == 0
}

// TestWriteSkewWitness pins the exported certification probe to the
// matrix's write-skew row — the CLI's cc-smoke gate calls the same
// function.
func TestWriteSkewWitness(t *testing.T) {
	want := map[CCMode]bool{CC2PL: false, CCMVCC: true, CCSSI: false}
	for _, cc := range []CCMode{CC2PL, CCMVCC, CCSSI} {
		got, err := WriteSkewWitness(cc)
		if err != nil {
			t.Fatalf("%s: %v", cc, err)
		}
		if got != want[cc] {
			t.Fatalf("WriteSkewWitness(%s) = %v, want %v", cc, got, want[cc])
		}
	}
}

func TestAnomalyMatrix(t *testing.T) {
	probes := []struct {
		name    string
		run     func(*testing.T, *DB) bool
		allowed map[CCMode]bool
	}{
		{"dirty-read", probeDirtyRead,
			map[CCMode]bool{CC2PL: false, CCMVCC: false, CCSSI: false}},
		{"dirty-write", probeDirtyWrite,
			map[CCMode]bool{CC2PL: false, CCMVCC: false, CCSSI: false}},
		{"lost-update", probeLostUpdate,
			map[CCMode]bool{CC2PL: false, CCMVCC: false, CCSSI: false}},
		{"write-skew", probeWriteSkew,
			map[CCMode]bool{CC2PL: false, CCMVCC: true, CCSSI: false}},
	}
	for _, p := range probes {
		for _, cc := range []CCMode{CC2PL, CCMVCC, CCSSI} {
			t.Run(p.name+"/"+cc.String(), func(t *testing.T) {
				d := openTiny(t, cc)
				d.locks.SetWaitTimeout(2 * time.Millisecond)
				defer d.locks.SetWaitTimeout(0)
				got := p.run(t, d)
				want := p.allowed[cc]
				if got != want {
					verb := "admitted"
					if !got {
						verb = "refused"
					}
					t.Fatalf("%s under %s: %s, want admitted=%v", p.name, cc, verb, want)
				}
			})
		}
	}
}
