package shard

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"tpccmodel/internal/core"
	"tpccmodel/internal/engine/db"
	"tpccmodel/internal/engine/storage"
	"tpccmodel/internal/nurand"
	"tpccmodel/internal/rng"
	"tpccmodel/internal/tpcc"
)

// XvalCounters accumulates the measured Appendix A quantities across all
// workers of a run. Only acknowledged (globally committed) transactions
// count. All fields are atomics.
type XvalCounters struct {
	// NewOrders acked; RemoteLines sums remote-NODE supplied lines
	// (E[R_s] numerator); AllLocal counts New-Orders whose ten lines
	// were all node-local (L numerator); RemoteSites sums distinct
	// remote shards per New-Order (U_stock numerator).
	NewOrders   atomic.Int64
	RemoteLines atomic.Int64
	AllLocal    atomic.Int64
	RemoteSites atomic.Int64
	// Payments acked; RemotePayments counts those whose customer lived
	// on another shard (U_cust numerator); RemoteCustCalls sums remote
	// customer tuples touched — selects plus write-back (RC_cust
	// numerator).
	Payments        atomic.Int64
	RemotePayments  atomic.Int64
	RemoteCustCalls atomic.Int64
}

// Measured are the per-transaction rates derived from XvalCounters, in
// the Appendix A notation (Table 5): compare against
// model.DistConfig.Expect().
type Measured struct {
	NewOrders, Payments int64
	// ERs is remote stock tuples per New-Order; RCStock its remote
	// calls (2 per tuple: read + write-back).
	ERs, RCStock float64
	// LStock is the fraction of all-local New-Orders.
	LStock float64
	// UStock is distinct remote nodes per New-Order.
	UStock float64
	// RCCust is remote customer calls per Payment; UCust the fraction
	// of Payments with a remote-node customer.
	RCCust, UCust float64
}

// Measured derives the rates (zero value when nothing acked).
func (x *XvalCounters) Measured() Measured {
	m := Measured{NewOrders: x.NewOrders.Load(), Payments: x.Payments.Load()}
	if m.NewOrders > 0 {
		n := float64(m.NewOrders)
		m.ERs = float64(x.RemoteLines.Load()) / n
		m.RCStock = 2 * m.ERs
		m.LStock = float64(x.AllLocal.Load()) / n
		m.UStock = float64(x.RemoteSites.Load()) / n
	}
	if m.Payments > 0 {
		p := float64(m.Payments)
		m.RCCust = float64(x.RemoteCustCalls.Load()) / p
		m.UCust = float64(x.RemotePayments.Load()) / p
	}
	return m
}

// Runner drives one worker's benchmark stream against a cluster: it
// generates globally-addressed inputs with the paper's distributions —
// remote suppliers and remote customers drawn NODE-uniform, so the
// per-item remote-node probability is exactly RemoteStockProb·(N-1)/N,
// the Appendix A P_s — routes them through the coordinator, retries
// retriable aborts, and sheds transactions for dead shards.
type Runner struct {
	c       *Cluster
	r       *rng.RNG
	custGen *nurand.Gen
	itemGen *nurand.Gen
	nameGen *nurand.Gen
	mix     tpcc.Mix

	// RemoteStockProb and RemotePaymentProb default to the benchmark's
	// 1% and 15%; raise them for statistical power in validation runs.
	RemoteStockProb   float64
	RemotePaymentProb float64

	// Policy is the retry/shed policy (db.DefaultRetryPolicy by default).
	Policy db.RetryPolicy

	// Xval, when non-nil, accumulates Appendix A measurements.
	Xval *XvalCounters

	counts           [core.NumTxnTypes]atomic.Int64
	retries          atomic.Int64
	sheds            atomic.Int64
	consecutiveSheds int
}

// NewRunner creates a worker. Derive per-worker seeds with
// rng.Substream so concurrent workers draw independent streams.
func NewRunner(c *Cluster, seed uint64, mix tpcc.Mix) *Runner {
	r := rng.New(seed)
	return &Runner{
		c:                 c,
		r:                 r,
		custGen:           nurand.NewGen(nurand.CustomerID, r),
		itemGen:           nurand.NewGen(nurand.ItemID, r),
		nameGen:           nurand.NewGen(nurand.Params{A: 255, X: 0, Y: tpcc.NamesPerDistrict - 1}, r),
		mix:               mix,
		RemoteStockProb:   tpcc.RemoteStockProb,
		RemotePaymentProb: tpcc.RemotePaymentProb,
		Policy:            db.DefaultRetryPolicy(),
	}
}

// Counts returns acknowledged executions per type.
func (rn *Runner) Counts() [core.NumTxnTypes]int64 {
	var out [core.NumTxnTypes]int64
	for i := range out {
		out[i] = rn.counts[i].Load()
	}
	return out
}

// Retries and Sheds expose the retry-policy counters.
func (rn *Runner) Retries() int64 { return rn.retries.Load() }

// Sheds returns the number of transactions dropped (retry exhaustion or
// a dead shard).
func (rn *Runner) Sheds() int64 { return rn.sheds.Load() }

func (rn *Runner) pickType() core.TxnType {
	u := rn.r.Float64()
	var cum float64
	for t := core.TxnType(0); t < core.NumTxnTypes; t++ {
		cum += rn.mix.Fraction(t)
		if u < cum {
			return t
		}
	}
	return core.TxnStockLevel
}

// globalWarehouse draws a home warehouse uniformly over the cluster.
func (rn *Runner) globalWarehouse() int64 {
	return rn.r.Int63n(int64(rn.c.Warehouses()))
}

// nodeUniformWarehouse draws a warehouse by first drawing a NODE
// uniformly over all N shards (own node included), then a warehouse
// within it — the sampling scheme behind Appendix A's (N-1)/N factors.
func (rn *Runner) nodeUniformWarehouse() int64 {
	node := rn.r.Int63n(int64(rn.c.cfg.Shards))
	return rn.c.GlobalW(int(node), rn.r.Int63n(int64(rn.c.cfg.WarehousesPerShard)))
}

func (rn *Runner) backoff(attempt int) {
	p := rn.Policy
	if p.BaseDelay <= 0 {
		return
	}
	d := p.BaseDelay << uint(attempt-1)
	if p.MaxDelay > 0 && d > p.MaxDelay {
		d = p.MaxDelay
	}
	half := int64(d / 2)
	time.Sleep(d/2 + time.Duration(rn.r.Int63n(half+1)))
}

func retriable(err error) bool {
	return errors.Is(err, db.ErrAborted) || errors.Is(err, storage.ErrTransientIO)
}

// runOne generates and executes one transaction. Dead-shard refusals
// (ErrShardDown) shed immediately; retriable failures retry per policy
// then shed; anything else is fatal.
func (rn *Runner) runOne(ctx context.Context) error {
	typ := rn.pickType()
	var exec func() error
	homeW := rn.globalWarehouse()
	home := rn.c.ShardOf(homeW)

	// Pre-computed per-transaction xval facts, recorded only on ack.
	var remoteLines, remoteSites int64
	remotePayment := false
	remoteCalls := 0

	switch typ {
	case core.TxnNewOrder:
		in := db.NewOrderInput{
			W: homeW,
			D: rn.r.Int63n(tpcc.DistrictsPerWarehouse),
			C: rn.custGen.Next() - 1,
		}
		sites := make(map[int]struct{})
		for i := 0; i < tpcc.ItemsPerOrder; i++ {
			it := db.OrderItem{IID: rn.itemGen.Next() - 1, SupplyW: homeW, Qty: 1 + rn.r.Int63n(10)}
			if rn.r.Bernoulli(rn.RemoteStockProb) {
				it.SupplyW = rn.nodeUniformWarehouse()
				if s := rn.c.ShardOf(it.SupplyW); s != home {
					remoteLines++
					sites[s] = struct{}{}
				}
			}
			in.Items = append(in.Items, it)
		}
		remoteSites = int64(len(sites))
		exec = func() error { _, err := rn.c.ExecNewOrder(in); return err }
	case core.TxnPayment:
		in := db.PaymentInput{
			W:           homeW,
			D:           rn.r.Int63n(tpcc.DistrictsPerWarehouse),
			AmountCents: uint32(rn.r.IntRange(tpcc.PaymentMinCents, tpcc.PaymentMaxCents)),
		}
		in.CW, in.CD = homeW, rn.r.Int63n(tpcc.DistrictsPerWarehouse)
		if rn.r.Bernoulli(rn.RemotePaymentProb) {
			in.CW = rn.nodeUniformWarehouse()
		}
		remotePayment = rn.c.ShardOf(in.CW) != home
		if rn.r.Bernoulli(tpcc.PayByNameProb) {
			in.ByName = true
			in.NameOrd = rn.nameGen.Next()
		} else {
			in.C = rn.custGen.Next() - 1
		}
		exec = func() error {
			calls, err := rn.c.ExecPayment(in)
			remoteCalls = calls
			return err
		}
	case core.TxnOrderStatus:
		in := db.OrderStatusInput{W: rn.c.LocalW(homeW), D: rn.r.Int63n(tpcc.DistrictsPerWarehouse)}
		if rn.r.Bernoulli(tpcc.PayByNameProb) {
			in.ByName = true
			in.NameOrd = rn.nameGen.Next()
		} else {
			in.C = rn.custGen.Next() - 1
		}
		exec = rn.localExec(home, func(d *db.DB) error { _, err := d.OrderStatus(in); return err })
	case core.TxnDelivery:
		in := db.DeliveryInput{W: rn.c.LocalW(homeW), Carrier: uint8(1 + rn.r.Int63n(10))}
		exec = rn.localExec(home, func(d *db.DB) error { _, err := d.Delivery(in); return err })
	case core.TxnStockLevel:
		in := db.StockLevelInput{
			W: rn.c.LocalW(homeW), D: rn.r.Int63n(tpcc.DistrictsPerWarehouse),
			Threshold: int32(10 + rn.r.Int63n(11)),
		}
		exec = rn.localExec(home, func(d *db.DB) error { _, err := d.StockLevel(in); return err })
	}

	maxAttempts := rn.Policy.MaxAttempts
	if maxAttempts < 1 {
		maxAttempts = 1
	}
	for attempt := 1; ; attempt++ {
		err := exec()
		if err == nil {
			rn.counts[typ].Add(1)
			rn.consecutiveSheds = 0
			if rn.Xval != nil {
				switch typ {
				case core.TxnNewOrder:
					rn.Xval.NewOrders.Add(1)
					rn.Xval.RemoteLines.Add(remoteLines)
					rn.Xval.RemoteSites.Add(remoteSites)
					if remoteLines == 0 {
						rn.Xval.AllLocal.Add(1)
					}
				case core.TxnPayment:
					rn.Xval.Payments.Add(1)
					if remotePayment {
						rn.Xval.RemotePayments.Add(1)
						rn.Xval.RemoteCustCalls.Add(int64(remoteCalls))
					}
				}
			}
			return nil
		}
		shed := false
		switch {
		case errors.Is(err, ErrShardDown):
			// Dead shard: typed refusal, already counted per shard.
			shed = true
		case !retriable(err):
			return fmt.Errorf("shard: %s failed: %w", typ, err)
		case attempt >= maxAttempts:
			shed = true
		}
		if shed {
			rn.sheds.Add(1)
			rn.consecutiveSheds++
			if b := rn.Policy.ShedBudget; b > 0 && rn.consecutiveSheds > b {
				return fmt.Errorf("shard: shed %d transactions in a row (last: %w)",
					rn.consecutiveSheds, err)
			}
			return nil
		}
		if err := ctx.Err(); err != nil {
			return err
		}
		rn.retries.Add(1)
		rn.backoff(attempt)
	}
}

// localExec wraps a purely local procedure on shard home with the
// dead-shard contract: refuse immediately when the shard is down, and
// translate a mid-operation crash into the same typed shed.
func (rn *Runner) localExec(home int, fn func(d *db.DB) error) func() error {
	return func() error {
		s := rn.c.shards[home]
		if s.Down() {
			s.downSheds.Add(1)
			return fmt.Errorf("home shard %d: %w", home, ErrShardDown)
		}
		if err := fn(s.DB); err != nil {
			if errors.Is(err, storage.ErrCrashed) {
				s.down.Store(true)
				s.downSheds.Add(1)
				return fmt.Errorf("home shard %d died: %w", home, ErrShardDown)
			}
			return err
		}
		s.localCommits.Add(1)
		return nil
	}
}

// RunStats aggregates a concurrent cluster run.
type RunStats struct {
	Counts         [core.NumTxnTypes]int64
	Retries, Sheds int64
	Elapsed        time.Duration
	// Xval carries the Appendix A measurements of the run.
	Xval Measured
}

// Acknowledged sums acked transactions.
func (s RunStats) Acknowledged() int64 {
	var n int64
	for _, c := range s.Counts {
		n += c
	}
	return n
}

// Run executes up to total transactions across workers goroutines, each
// a Runner on an independent rng.Substream of seed. Shard deaths shed
// traffic rather than failing the run; any other failure cancels the
// siblings and is returned.
func Run(c *Cluster, seed uint64, mix tpcc.Mix, total, workers int,
	policy db.RetryPolicy, stockProb, payProb float64) (RunStats, error) {
	if workers < 1 {
		workers = 1
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var xc XvalCounters
	runners := make([]*Runner, workers)
	per := total / workers
	var wg sync.WaitGroup
	errCh := make(chan error, workers)
	start := time.Now()
	for w := 0; w < workers; w++ {
		rn := NewRunner(c, rng.Substream(seed, uint64(w)), mix)
		rn.Policy = policy
		rn.Xval = &xc
		if stockProb >= 0 {
			rn.RemoteStockProb = stockProb
		}
		if payProb >= 0 {
			rn.RemotePaymentProb = payProb
		}
		runners[w] = rn
		n := per
		if w == workers-1 {
			n = total - per*(workers-1)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < n; i++ {
				if ctx.Err() != nil {
					return
				}
				if err := rn.runOne(ctx); err != nil {
					if !errors.Is(err, context.Canceled) {
						errCh <- err
					}
					cancel()
					return
				}
			}
		}()
	}
	wg.Wait()
	st := RunStats{Elapsed: time.Since(start), Xval: xc.Measured()}
	for _, rn := range runners {
		cs := rn.Counts()
		for i := range st.Counts {
			st.Counts[i] += cs[i]
		}
		st.Retries += rn.Retries()
		st.Sheds += rn.Sheds()
	}
	select {
	case err := <-errCh:
		return st, err
	default:
	}
	return st, nil
}
