package shard

import (
	"errors"
	"fmt"
	"time"

	"tpccmodel/internal/engine/fault"
	"tpccmodel/internal/engine/storage"
	"tpccmodel/internal/rng"
)

// resolveRetries bounds how long a recovering participant waits for its
// coordinator before giving up (leaving the branch in doubt, locks held,
// for a later ResolveInDoubt pass once the coordinator is back).
const resolveRetries = 10

// RecoverShard brings a killed shard back: the device is revived, the
// power loss is applied (volatile buffers lost, unforced log tail
// damaged by r), the shard recovers from its WAL, and every in-doubt
// branch is resolved against its coordinator. Callers must guarantee no
// concurrent traffic targets the shard. An error from the resolution
// phase leaves the unresolved branches in doubt — with their row locks
// held — to be retried by another RecoverShard or ResolveInDoubtAll
// call; the shard is otherwise recovered and serving.
func (c *Cluster) RecoverShard(id int, r *rng.RNG) error {
	s := c.shards[id]
	s.Inj.Revive()
	if err := s.DB.CrashPowerLoss(r); err != nil {
		return fmt.Errorf("shard %d power loss: %w", id, err)
	}
	if err := s.DB.Recover(); err != nil {
		return fmt.Errorf("shard %d recovery: %w", id, err)
	}
	s.down.Store(false)
	s.inDoubt.Add(int64(len(s.DB.InDoubt())))
	return c.resolveInDoubt(id)
}

// ResolveInDoubtAll retries in-doubt resolution on every live shard
// (used after reviving a coordinator whose participants gave up waiting).
func (c *Cluster) ResolveInDoubtAll() error {
	for _, s := range c.shards {
		if s.Down() {
			continue
		}
		if err := c.resolveInDoubt(s.ID); err != nil {
			return err
		}
	}
	return nil
}

// resolveInDoubt settles shard id's in-doubt branches. For each branch
// the coordinator (encoded in the gid) is queried for the decision with
// bounded retry/backoff while it is down; no recorded decision means
// presumed abort. The kill hook fires before each resolution so torture
// can crash the shard inside this window too.
func (c *Cluster) resolveInDoubt(id int) error {
	s := c.shards[id]
	for _, idt := range s.DB.InDoubt() {
		coord := CoordinatorOf(idt.GID)
		if coord < 0 || coord >= len(c.shards) {
			return fmt.Errorf("shard %d: in-doubt gid %#x names invalid coordinator %d",
				id, idt.GID, coord)
		}
		committed := false
		if coord == id {
			// Own coordinator: the outcome map was just rebuilt from the
			// durable log (absent = presumed abort).
			committed, _ = s.DB.GIDOutcome(idt.GID)
		} else {
			cs := c.shards[coord]
			resolved := false
			for attempt := 1; attempt <= resolveRetries; attempt++ {
				if !cs.Down() {
					committed, _ = cs.DB.GIDOutcome(idt.GID)
					resolved = true
					break
				}
				forceBackoff(attempt)
			}
			if !resolved {
				return fmt.Errorf("shard %d: gid %#x in doubt, coordinator %d unreachable: %w",
					id, idt.GID, coord, ErrCoordinatorDown)
			}
		}
		c.fireHook(fault.KillDuringResolve, idt.GID)
		if err := s.DB.ResolveInDoubt(idt.GID, committed); err != nil {
			if errors.Is(err, storage.ErrCrashed) {
				// Killed during resolution: the branch stays in doubt (or,
				// decided-abort, is idempotently re-resolved next recovery).
				s.down.Store(true)
				return fmt.Errorf("shard %d died resolving gid %#x: %w", id, idt.GID, ErrShardDown)
			}
			return fmt.Errorf("shard %d resolving gid %#x: %w", id, idt.GID, err)
		}
		if committed {
			s.resolvedCommit.Add(1)
		} else {
			s.resolvedAbort.Add(1)
		}
	}
	return nil
}

// Quiesce waits for a bounded time until no shard holds pending
// participant commits, retrying ResolvePending. Used by harnesses before
// verification; returns the number of still-pending commits (0 = clean).
func (c *Cluster) Quiesce(limit time.Duration) int {
	deadline := time.Now().Add(limit)
	for {
		n := c.ResolvePending()
		if n == 0 || time.Now().After(deadline) {
			return n
		}
		time.Sleep(time.Millisecond)
	}
}
