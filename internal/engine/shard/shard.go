// Package shard runs the engine as a warehouse-sharded cluster: one
// db.DB instance per warehouse group (a "node" in the paper's Section
// 5.3 sense), a deterministic router that classifies transactions
// local/remote per the benchmark mix, and a two-phase-commit coordinator
// layered on each shard's WAL. The measured cross-shard traffic is
// cross-validated against the Appendix A model (model.DistConfig) by
// package xval.
package shard

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"tpccmodel/internal/core"
	"tpccmodel/internal/engine/db"
	"tpccmodel/internal/engine/fault"
	"tpccmodel/internal/engine/storage"
	"tpccmodel/internal/engine/wal"
	"tpccmodel/internal/tpcc"
)

// ErrShardDown reports that a shard this transaction needs is dead.
// Transactions failing with it are shed (counted, not retried): local
// traffic on the surviving shards keeps committing.
var ErrShardDown = errors.New("shard: required shard is down")

// ErrCoordinatorDown reports the transaction's own home shard died
// mid-flight; under presumed abort the transaction is globally aborted
// (its decision record never became durable).
var ErrCoordinatorDown = fmt.Errorf("shard: coordinator died before deciding: %w", ErrShardDown)

// Config sizes a cluster.
type Config struct {
	// Shards is the node count N (>= 1).
	Shards int
	// WarehousesPerShard is the per-node warehouse group size (>= 1).
	WarehousesPerShard int
	// PageSize and BufferPages size each shard's instance.
	PageSize    int
	BufferPages int
	// LockStripes and BufferPartitions are passed through to each shard's
	// db.Config (0 keeps that layer's default).
	LockStripes      int
	BufferPartitions int
	// CC selects each shard's concurrency-control mode (zero value is
	// 2PL). Snapshot scope is per shard: cross-shard branches run 2PC
	// over whatever mode each participant uses locally.
	CC db.CCMode
	// Seed loads every shard. All shards load the SAME seed: warehouse
	// contents are per-shard anyway, and the Item relation comes out
	// bit-identical everywhere — the paper's replicated-Item layout
	// (Table 6) on symmetric nodes.
	Seed uint64
	// LockWaitTimeout bounds row-lock waits on every shard. Required
	// (>0) when Shards > 1: a deadlock cycle spanning two shards is
	// invisible to both local detectors and only a timeout breaks it.
	LockWaitTimeout time.Duration
	// GroupCommit configures per-shard WAL batching (zero = off).
	GroupCommit wal.GroupConfig
	// Faults sets steady-state fault probabilities on every shard's
	// device (zero = fault-free).
	Faults fault.Config
}

// DefaultConfig returns a small symmetric cluster.
func DefaultConfig(shards int) Config {
	return Config{
		Shards:             shards,
		WarehousesPerShard: 1,
		PageSize:           4096,
		BufferPages:        4096,
		Seed:               1,
		LockWaitTimeout:    50 * time.Millisecond,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Shards < 1 {
		return fmt.Errorf("shard: shards must be >= 1")
	}
	if c.WarehousesPerShard < 1 {
		return fmt.Errorf("shard: warehouses per shard must be >= 1")
	}
	if c.Shards > 1 && c.LockWaitTimeout <= 0 {
		return fmt.Errorf("shard: multi-shard clusters need a lock wait timeout (cross-shard deadlocks are invisible to per-shard detection)")
	}
	return nil
}

// Stats counts one shard's distributed-execution outcomes. All fields
// are written with atomics; read them via Shard.Stats.
type Stats struct {
	// LocalCommits counts single-shard fast-path transactions.
	LocalCommits int64
	// DistCommits counts globally committed 2PC transactions this shard
	// coordinated; ParticipantCommits counts branches it served.
	DistCommits        int64
	ParticipantCommits int64
	// DistAborts counts 2PC transactions this shard coordinated that
	// aborted (deadlock/timeout victims and participant failures).
	DistAborts int64
	// Sheds counts transactions refused with ErrShardDown because this
	// shard (as coordinator) found a required participant dead;
	// DownSheds counts transactions refused because this shard itself
	// was dead when chosen as home.
	Sheds     int64
	DownSheds int64
	// Forsaken counts branches abandoned on this shard's dead device
	// (their fate is settled by recovery from the durable log).
	Forsaken int64
	// InDoubt counts branches surfaced prepared-but-undecided at
	// recovery; ResolvedCommit/ResolvedAbort count their resolutions.
	InDoubt        int64
	ResolvedCommit int64
	ResolvedAbort  int64
}

// Shard is one node: a db.DB over its own fault-injected device.
type Shard struct {
	ID  int
	DB  *db.DB
	Inj *fault.Injector

	disk *storage.MemDisk
	down atomic.Bool

	localCommits       atomic.Int64
	distCommits        atomic.Int64
	participantCommits atomic.Int64
	distAborts         atomic.Int64
	sheds              atomic.Int64
	downSheds          atomic.Int64
	forsaken           atomic.Int64
	inDoubt            atomic.Int64
	resolvedCommit     atomic.Int64
	resolvedAbort      atomic.Int64
}

// Down reports whether the shard is currently dead.
func (s *Shard) Down() bool { return s.down.Load() }

// Stats snapshots the shard's counters.
func (s *Shard) Stats() Stats {
	return Stats{
		LocalCommits:       s.localCommits.Load(),
		DistCommits:        s.distCommits.Load(),
		ParticipantCommits: s.participantCommits.Load(),
		DistAborts:         s.distAborts.Load(),
		Sheds:              s.sheds.Load(),
		DownSheds:          s.downSheds.Load(),
		Forsaken:           s.forsaken.Load(),
		InDoubt:            s.inDoubt.Load(),
		ResolvedCommit:     s.resolvedCommit.Load(),
		ResolvedAbort:      s.resolvedAbort.Load(),
	}
}

// KillPoint names a protocol step at which a kill hook fires; the
// torture campaign kills shards at these points to exercise every
// in-doubt window of the protocol.
type KillPoint = fault.ShardKillPoint

// Cluster is a set of shards plus the 2PC coordinator logic.
type Cluster struct {
	cfg    Config
	shards []*Shard
	gidSeq atomic.Uint64

	// killHook, when set, fires at each KillPoint of every distributed
	// commit and each in-doubt resolution (torture uses it to kill
	// shards inside the protocol's windows). Must be safe for
	// concurrent use.
	killHook atomic.Pointer[func(p KillPoint, gid uint64)]

	pendMu  sync.Mutex
	pending []pendingCommit
}

// Open builds the cluster: every shard gets its own device, injector,
// WAL, and lock manager, and loads the same seed.
func Open(cfg Config) (*Cluster, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	c := &Cluster{cfg: cfg}
	for i := 0; i < cfg.Shards; i++ {
		disk := storage.NewMemDisk()
		inj := fault.New(disk, cfg.Seed+uint64(i)*7919)
		inj.SetConfig(cfg.Faults)
		d, err := db.OpenWith(db.Config{
			Warehouses:       cfg.WarehousesPerShard,
			PageSize:         cfg.PageSize,
			BufferPages:      cfg.BufferPages,
			LockStripes:      cfg.LockStripes,
			BufferPartitions: cfg.BufferPartitions,
			CC:               cfg.CC,
		}, db.Options{
			Disk:            inj,
			LogHook:         inj,
			GroupCommit:     cfg.GroupCommit,
			LockWaitTimeout: cfg.LockWaitTimeout,
		})
		if err != nil {
			return nil, fmt.Errorf("shard %d: %w", i, err)
		}
		if err := d.Load(cfg.Seed); err != nil {
			return nil, fmt.Errorf("shard %d load: %w", i, err)
		}
		if err := d.Checkpoint(); err != nil {
			return nil, fmt.Errorf("shard %d checkpoint: %w", i, err)
		}
		c.shards = append(c.shards, &Shard{ID: i, DB: d, Inj: inj, disk: disk})
	}
	return c, nil
}

// Config returns the cluster configuration.
func (c *Cluster) Config() Config { return c.cfg }

// Shards returns the cluster's shards (stable slice; do not mutate).
func (c *Cluster) Shards() []*Shard { return c.shards }

// Shard returns shard i.
func (c *Cluster) Shard(i int) *Shard { return c.shards[i] }

// Warehouses returns the global warehouse count.
func (c *Cluster) Warehouses() int { return c.cfg.Shards * c.cfg.WarehousesPerShard }

// ShardOf maps a global warehouse id to its shard.
func (c *Cluster) ShardOf(globalW int64) int {
	return int(globalW) / c.cfg.WarehousesPerShard
}

// LocalW maps a global warehouse id to the shard-local id.
func (c *Cluster) LocalW(globalW int64) int64 {
	return globalW % int64(c.cfg.WarehousesPerShard)
}

// GlobalW maps (shard, local warehouse) to the global id.
func (c *Cluster) GlobalW(shard int, localW int64) int64 {
	return int64(shard)*int64(c.cfg.WarehousesPerShard) + localW
}

// SetKillHook installs (or clears, with nil) the torture kill hook.
func (c *Cluster) SetKillHook(h func(p KillPoint, gid uint64)) {
	if h == nil {
		c.killHook.Store(nil)
		return
	}
	c.killHook.Store(&h)
}

func (c *Cluster) fireHook(p KillPoint, gid uint64) {
	if h := c.killHook.Load(); h != nil {
		(*h)(p, gid)
	}
}

// KillShard kills shard id's device: every subsequent read, write, and
// log force on it fails with storage.ErrCrashed until RecoverShard.
func (c *Cluster) KillShard(id int) {
	s := c.shards[id]
	s.Inj.Kill()
	s.down.Store(true)
}

// markDownOnCrash flags the shard dead when an operation surfaced
// storage.ErrCrashed (the device was killed mid-operation).
func (c *Cluster) markDownOnCrash(id int, err error) {
	if errors.Is(err, storage.ErrCrashed) {
		c.shards[id].down.Store(true)
	}
}

// CheckAll runs the TPC-C consistency checks on every live shard.
func (c *Cluster) CheckAll() error {
	for _, s := range c.shards {
		if s.Down() {
			continue
		}
		if err := s.DB.CheckConsistency(); err != nil {
			return fmt.Errorf("shard %d: %w", s.ID, err)
		}
	}
	return nil
}

// StockYTDTotal sums stock s_ytd over every shard; OrderLineQtyTotal
// sums ol_quantity. Their DELTAS over a run must be equal cluster-wide:
// every order line's quantity lands in exactly one stock row's YTD, on
// whatever shard supplies it, atomically with the order line — the
// cluster-level cross-shard atomicity invariant the torture campaign
// asserts. Call only on quiesced, fully recovered clusters.
func (c *Cluster) StockYTDTotal() (uint64, error) {
	var total uint64
	for _, s := range c.shards {
		err := s.DB.Heap(core.Stock).Scan(func(_ storage.RID, rec []byte) bool {
			var r db.StockRec
			r.Unmarshal(rec[:tpcc.TupleLen[core.Stock]])
			total += r.YTD
			return true
		})
		if err != nil {
			return 0, fmt.Errorf("shard %d: %w", s.ID, err)
		}
	}
	return total, nil
}

// OrderLineQtyTotal sums order-line quantities over every shard.
func (c *Cluster) OrderLineQtyTotal() (uint64, error) {
	var total uint64
	for _, s := range c.shards {
		err := s.DB.Heap(core.OrderLine).Scan(func(_ storage.RID, rec []byte) bool {
			var r db.OrderLineRec
			r.Unmarshal(rec[:tpcc.TupleLen[core.OrderLine]])
			total += uint64(r.Quantity)
			return true
		})
		if err != nil {
			return 0, fmt.Errorf("shard %d: %w", s.ID, err)
		}
	}
	return total, nil
}
