package shard

import (
	"fmt"
	"sync/atomic"
	"time"

	"tpccmodel/internal/core"
	"tpccmodel/internal/engine/db"
	"tpccmodel/internal/engine/fault"
	"tpccmodel/internal/engine/wal"
	"tpccmodel/internal/rng"
	"tpccmodel/internal/tpcc"
)

// TortureConfig sizes a multi-shard crash campaign: for each of Seeds
// independent clusters, Schedules kill schedules run — concurrent
// globally-routed TPC-C load with a shard kill armed at a drawn 2PC
// protocol point, then a cluster-wide power loss, recovery, in-doubt
// resolution, and verification — plus one graceful-degradation phase
// with a shard held down under live traffic.
type TortureConfig struct {
	BaseSeed  uint64
	Seeds     int
	Schedules int
	// Txns is attempted transactions per schedule, Workers the worker
	// goroutines.
	Txns    int
	Workers int

	// Shards and WarehousesPerShard shape the cluster.
	Shards             int
	WarehousesPerShard int
	PageSize           int
	BufferPages        int

	// RemoteStockProb / RemotePaymentProb are elevated above the
	// benchmark's 1%/15% so every schedule drives real cross-shard
	// traffic through the protocol windows.
	RemoteStockProb   float64
	RemotePaymentProb float64

	// Faults sets steady-state transient-fault probabilities on every
	// shard device during the load phases.
	Faults fault.Config
	// Policy is the workers' retry/shed policy.
	Policy db.RetryPolicy
	// Mix is the transaction mix (DefaultMix when zero).
	Mix tpcc.Mix
	// GroupCommit configures per-shard WAL batching for the campaign.
	GroupCommit wal.GroupConfig
	// CC selects each shard's concurrency-control mode (zero = 2PL).
	CC db.CCMode
	// Degraded enables the held-down-shard phase per seed.
	Degraded bool
}

// DefaultTortureConfig returns a complete small campaign: 3 seeds x 6
// schedules over a 3-shard cluster, 18 distinct protocol-point kills
// plus 3 degradation phases.
func DefaultTortureConfig() TortureConfig {
	return TortureConfig{
		BaseSeed:           1,
		Seeds:              3,
		Schedules:          6,
		Txns:               300,
		Workers:            4,
		Shards:             3,
		WarehousesPerShard: 1,
		PageSize:           1024,
		BufferPages:        256,
		RemoteStockProb:    0.25,
		RemotePaymentProb:  0.50,
		Faults: fault.Config{
			ReadErrProb:  0.0005,
			WriteErrProb: 0.0005,
			ForceErrProb: 0.0005,
		},
		Policy:   db.DefaultRetryPolicy(),
		Mix:      tpcc.DefaultMix(),
		Degraded: true,
	}
}

// ScheduleResult records one kill schedule's outcome.
type ScheduleResult struct {
	Seed     uint64
	Schedule int
	// Plan is the armed kill; Fired reports whether its point was
	// reached during the schedule.
	Plan  fault.ShardKillPlan
	Fired bool
	// Acked / Retries / Sheds aggregate the workers' counters.
	Acked, Retries, Sheds int64
	// InDoubt counts branches surfaced in doubt during recovery;
	// ResolvedCommit/ResolvedAbort their resolutions.
	InDoubt, ResolvedCommit, ResolvedAbort int64
	// Violations lists broken invariants (empty = pass).
	Violations []string
}

// Report aggregates a campaign.
type Report struct {
	Config    TortureConfig
	Schedules []ScheduleResult
	// Violations flattens every schedule violation with provenance.
	Violations []string
	// FiredKills counts schedules whose armed kill actually fired.
	FiredKills int
	// InDoubt / ResolvedCommit / ResolvedAbort total the in-doubt
	// branches the campaign created and settled.
	InDoubt, ResolvedCommit, ResolvedAbort int64
	// DegradedLocalAcks / DegradedSheds total the degradation phases'
	// surviving-shard commits and typed refusals.
	DegradedLocalAcks, DegradedSheds int64
}

// OK reports whether the campaign found no violations.
func (r *Report) OK() bool { return len(r.Violations) == 0 }

// Summary renders a one-paragraph outcome.
func (r *Report) Summary() string {
	var acked, retries, sheds int64
	for _, s := range r.Schedules {
		acked += s.Acked
		retries += s.Retries
		sheds += s.Sheds
	}
	return fmt.Sprintf(
		"shard-torture: %d seeds x %d schedules on %d shards (%d kills fired), "+
			"%d acked txns, %d retries, %d sheds; in-doubt: %d surfaced, "+
			"%d resolved commit, %d resolved abort; degraded: %d local acks, "+
			"%d typed sheds; violations: %d",
		r.Config.Seeds, r.Config.Schedules, r.Config.Shards, r.FiredKills,
		acked, retries, sheds, r.InDoubt, r.ResolvedCommit, r.ResolvedAbort,
		r.DegradedLocalAcks, r.DegradedSheds, len(r.Violations))
}

// clusterBaseline holds cluster-wide durable totals a schedule starts
// from.
type clusterBaseline struct {
	orders, stockYTD, olQty uint64
}

func measureCluster(c *Cluster) (clusterBaseline, error) {
	var b clusterBaseline
	for _, s := range c.shards {
		b.orders += uint64(s.DB.Heap(core.Order).Live())
	}
	var err error
	if b.stockYTD, err = c.StockYTDTotal(); err != nil {
		return b, err
	}
	if b.olQty, err = c.OrderLineQtyTotal(); err != nil {
		return b, err
	}
	return b, nil
}

// statsTotal sums a counter across shards.
func statsTotal(c *Cluster, f func(Stats) int64) int64 {
	var n int64
	for _, s := range c.shards {
		n += f(s.Stats())
	}
	return n
}

// Torture runs the campaign. Errors are setup failures only; invariant
// violations land in the Report.
func Torture(cfg TortureConfig) (*Report, error) {
	if cfg.Seeds < 1 || cfg.Schedules < 1 {
		return nil, fmt.Errorf("shard: need at least one seed and one schedule")
	}
	if cfg.Mix.Validate() != nil {
		cfg.Mix = tpcc.DefaultMix()
	}
	if cfg.Policy.MaxAttempts == 0 {
		cfg.Policy = db.DefaultRetryPolicy()
	}
	rep := &Report{Config: cfg}
	for s := 0; s < cfg.Seeds; s++ {
		seed := cfg.BaseSeed + uint64(s)
		if err := tortureSeed(cfg, seed, rep); err != nil {
			return rep, fmt.Errorf("shard: seed %d: %w", seed, err)
		}
	}
	return rep, nil
}

func tortureSeed(cfg TortureConfig, seed uint64, rep *Report) error {
	seedRng := rng.New(seed)
	c, err := Open(Config{
		Shards:             cfg.Shards,
		WarehousesPerShard: cfg.WarehousesPerShard,
		PageSize:           cfg.PageSize,
		BufferPages:        cfg.BufferPages,
		Seed:               seed,
		LockWaitTimeout:    20 * time.Millisecond,
		GroupCommit:        cfg.GroupCommit,
		Faults:             cfg.Faults,
		CC:                 cfg.CC,
	})
	if err != nil {
		return err
	}
	base, err := measureCluster(c)
	if err != nil {
		return err
	}

	for sched := 0; sched < cfg.Schedules; sched++ {
		res := ScheduleResult{Seed: seed, Schedule: sched}
		violate := func(format string, args ...any) {
			v := fmt.Sprintf(format, args...)
			res.Violations = append(res.Violations, v)
			rep.Violations = append(rep.Violations,
				fmt.Sprintf("seed=%d schedule=%d: %s", seed, sched, v))
		}

		// Arm one kill at a drawn protocol point; it fires at most once.
		plan := fault.NewShardKillPlan(seedRng, cfg.Shards)
		res.Plan = plan
		var fired atomic.Bool
		c.SetKillHook(func(p KillPoint, gid uint64) {
			if p != plan.Point {
				return
			}
			victim := plan.Victim
			if plan.CoordinatorVictim {
				victim = CoordinatorOf(gid)
			}
			if fired.CompareAndSwap(false, true) {
				c.KillShard(victim)
			}
		})
		inDoubt0 := statsTotal(c, func(s Stats) int64 { return s.InDoubt })
		rc0 := statsTotal(c, func(s Stats) int64 { return s.ResolvedCommit })
		ra0 := statsTotal(c, func(s Stats) int64 { return s.ResolvedAbort })

		for _, s := range c.shards {
			s.Inj.SetEnabled(true)
		}
		st, runErr := Run(c, rng.Substream(seed, uint64(sched)+1000), cfg.Mix,
			cfg.Txns, cfg.Workers, cfg.Policy, cfg.RemoteStockProb, cfg.RemotePaymentProb)
		for _, s := range c.shards {
			s.Inj.SetEnabled(false)
		}
		if runErr != nil {
			violate("run failed fatally: %v", runErr)
		}
		res.Acked = st.Acknowledged()
		res.Retries = st.Retries
		res.Sheds = st.Sheds
		ackedNO := st.Counts[core.TxnNewOrder]

		// Settle parked participant commits before tearing down.
		if n := c.Quiesce(time.Second); n > 0 {
			violate("%d participant commits still pending after quiesce", n)
		}

		// Cluster-wide power loss: every shard dies, then recovers. The
		// KillDuringResolve hook stays armed through the recovery loop,
		// so resolution-window kills also get exercised; multiple rounds
		// re-recover shards the hook (or an unreachable coordinator)
		// took back down.
		for id := range c.shards {
			c.KillShard(id)
		}
		recovered := false
		for round := 0; round < 2+int(fault.NumShardKillPoints); round++ {
			ok := true
			for id, s := range c.shards {
				if !s.Down() {
					continue
				}
				if err := c.RecoverShard(id, seedRng); err != nil {
					ok = false
				}
			}
			if err := c.ResolveInDoubtAll(); err != nil {
				ok = false
			}
			if ok {
				recovered = true
				break
			}
		}
		c.SetKillHook(nil)
		if !recovered {
			violate("cluster failed to fully recover within the round budget")
		}
		if fired.Load() {
			res.Fired = true
			rep.FiredKills++
		}

		// Invariant: no orphaned in-doubt branch anywhere.
		for _, s := range c.shards {
			if n := len(s.DB.InDoubt()); n > 0 {
				violate("shard %d: %d orphaned in-doubt branches", s.ID, n)
			}
		}
		// Invariant: page integrity and TPC-C consistency on every shard.
		for _, s := range c.shards {
			vr, err := s.DB.VerifyPages()
			if err != nil {
				violate("shard %d: page verification failed: %v", s.ID, err)
			} else if len(vr.Corrupt) > 0 {
				violate("shard %d: unrecoverable pages: %v", s.ID, vr.Corrupt)
			}
		}
		if err := c.CheckAll(); err != nil {
			violate("consistency: %v", err)
		}
		// Invariant: no lost acknowledged commit. Acked New-Orders are a
		// floor on durable orders; in-flight unacked transactions whose
		// commit record survived by luck give at most Workers of slack.
		live, err := measureCluster(c)
		if err != nil {
			return err
		}
		slack := uint64(cfg.Workers)
		if lo := base.orders + uint64(ackedNO); live.orders < lo {
			violate("lost acknowledged new-orders: %d live, want >= %d (base %d + acked %d)",
				live.orders, lo, base.orders, ackedNO)
		} else if hi := lo + slack; live.orders > hi {
			violate("phantom orders: %d live, want <= %d", live.orders, hi)
		}
		// Invariant: exact cross-shard atomicity. Every order line's
		// quantity lands in exactly one stock row's YTD atomically, so
		// the cluster-wide deltas match exactly — a half-applied
		// distributed New-Order breaks the equality.
		dStock := live.stockYTD - base.stockYTD
		dOL := live.olQty - base.olQty
		if dStock != dOL {
			violate("cross-shard atomicity broken: stock YTD grew %d, order-line qty grew %d",
				dStock, dOL)
		}
		base = live

		res.InDoubt = statsTotal(c, func(s Stats) int64 { return s.InDoubt }) - inDoubt0
		res.ResolvedCommit = statsTotal(c, func(s Stats) int64 { return s.ResolvedCommit }) - rc0
		res.ResolvedAbort = statsTotal(c, func(s Stats) int64 { return s.ResolvedAbort }) - ra0
		rep.InDoubt += res.InDoubt
		rep.ResolvedCommit += res.ResolvedCommit
		rep.ResolvedAbort += res.ResolvedAbort
		rep.Schedules = append(rep.Schedules, res)
	}

	if cfg.Degraded && cfg.Shards > 1 {
		if err := degradedPhase(cfg, seed, c, rep, &base); err != nil {
			return err
		}
	}
	return nil
}

// degradedPhase holds one shard down under live traffic and asserts
// graceful degradation: surviving shards keep committing local work,
// transactions needing the dead shard are refused with typed errors, and
// the per-shard counters account for the refusals.
func degradedPhase(cfg TortureConfig, seed uint64, c *Cluster, rep *Report, base *clusterBaseline) error {
	seedRng := rng.New(seed ^ 0xdeadbeef)
	victim := int(seedRng.Int63n(int64(cfg.Shards)))
	violate := func(format string, args ...any) {
		rep.Violations = append(rep.Violations,
			fmt.Sprintf("seed=%d degraded: %s", seed, fmt.Sprintf(format, args...)))
	}

	local0 := statsTotal(c, func(s Stats) int64 { return s.LocalCommits })
	shed0 := statsTotal(c, func(s Stats) int64 { return s.Sheds + s.DownSheds })

	c.KillShard(victim)
	st, runErr := Run(c, rng.Substream(seed, 9999), cfg.Mix,
		cfg.Txns, cfg.Workers, cfg.Policy, cfg.RemoteStockProb, cfg.RemotePaymentProb)
	if runErr != nil {
		violate("degraded run failed fatally: %v", runErr)
	}
	if n := c.Quiesce(time.Second); n > 0 {
		violate("%d participant commits pending after degraded run", n)
	}

	localAcks := statsTotal(c, func(s Stats) int64 { return s.LocalCommits }) - local0
	shardSheds := statsTotal(c, func(s Stats) int64 { return s.Sheds + s.DownSheds }) - shed0
	if localAcks == 0 {
		violate("no local commits on surviving shards while shard %d was down", victim)
	}
	if shardSheds == 0 {
		violate("no typed sheds recorded while shard %d was down", victim)
	}
	if st.Sheds < shardSheds {
		violate("shed accounting: runner shed %d < shard-counter sheds %d",
			st.Sheds, shardSheds)
	}
	rep.DegradedLocalAcks += localAcks
	rep.DegradedSheds += shardSheds

	// Bring the victim back and verify the cluster is whole again.
	if err := c.RecoverShard(victim, seedRng); err != nil {
		violate("recovering held-down shard: %v", err)
	}
	if err := c.ResolveInDoubtAll(); err != nil {
		violate("resolving after degraded phase: %v", err)
	}
	if err := c.CheckAll(); err != nil {
		violate("consistency after degraded phase: %v", err)
	}
	live, err := measureCluster(c)
	if err != nil {
		return err
	}
	if d1, d2 := live.stockYTD-base.stockYTD, live.olQty-base.olQty; d1 != d2 {
		violate("cross-shard atomicity broken in degraded phase: stock +%d vs order-line +%d", d1, d2)
	}
	*base = live
	return nil
}
