package shard

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"tpccmodel/internal/engine/db"
	"tpccmodel/internal/engine/fault"
	"tpccmodel/internal/engine/storage"
)

// nextGID allocates a global transaction id. The coordinator shard id
// (plus one, so gid 0 keeps meaning "purely local") rides in the top 16
// bits: a recovering participant derives its coordinator from the gid
// alone, with no extra durable state.
func (c *Cluster) nextGID(coord int) uint64 {
	return uint64(coord+1)<<48 | c.gidSeq.Add(1)
}

// CoordinatorOf extracts the coordinator shard encoded in a gid.
func CoordinatorOf(gid uint64) int { return int(gid>>48) - 1 }

// forceBackoff sleeps a deterministic exponential delay between retries
// of a failed log force (attempt is 1-based).
func forceBackoff(attempt int) {
	d := 50 * time.Microsecond << uint(attempt-1)
	if d > 2*time.Millisecond {
		d = 2 * time.Millisecond
	}
	time.Sleep(d)
}

// commitRetries bounds in-protocol retries of transient force failures.
const commitRetries = 10

// pendingCommit is a participant branch whose global decision is commit
// but whose own commit record could not be forced within the retry
// budget on a live device. The branch keeps its locks; ResolvePending
// retries it. (A dead device is different: the branch is forsaken and
// recovery settles it from the durable log.)
type pendingCommit struct {
	shard int
	b     *db.Branch
}

// commitParticipant drives one prepared participant branch to its
// commit, retrying transient force failures. A crashed device forsakes
// the branch — its prepare record is durable and the coordinator's
// decision is durable, so recovery resolves it to the same commit.
func (c *Cluster) commitParticipant(id int, b *db.Branch) {
	s := c.shards[id]
	for attempt := 1; ; attempt++ {
		err := b.Commit()
		if err == nil {
			s.participantCommits.Add(1)
			return
		}
		if errors.Is(err, storage.ErrCrashed) {
			b.Forsake()
			s.forsaken.Add(1)
			s.down.Store(true)
			return
		}
		if !errors.Is(err, storage.ErrTransientIO) || attempt >= commitRetries {
			// Live device, force keeps failing: park the branch with its
			// locks held rather than losing a decided commit.
			c.pendMu.Lock()
			c.pending = append(c.pending, pendingCommit{shard: id, b: b})
			c.pendMu.Unlock()
			return
		}
		forceBackoff(attempt)
	}
}

// ResolvePending retries parked participant commits (see pendingCommit)
// and returns how many remain parked. Run it after fault pressure
// subsides and before verifying cluster invariants.
func (c *Cluster) ResolvePending() int {
	c.pendMu.Lock()
	work := c.pending
	c.pending = nil
	c.pendMu.Unlock()
	var still []pendingCommit
	for _, p := range work {
		s := c.shards[p.shard]
		if err := p.b.Commit(); err != nil {
			if errors.Is(err, storage.ErrCrashed) {
				p.b.Forsake()
				s.forsaken.Add(1)
				s.down.Store(true)
				continue
			}
			still = append(still, p)
			continue
		}
		s.participantCommits.Add(1)
	}
	c.pendMu.Lock()
	c.pending = append(c.pending, still...)
	n := len(c.pending)
	c.pendMu.Unlock()
	return n
}

// abandon aborts every open branch after a failure. Branches on dead
// devices are forsaken (no undo writes against a dead disk; the durable
// log owns their fate), live ones roll back normally.
func (c *Cluster) abandon(branches map[int]*db.Branch) {
	ids := make([]int, 0, len(branches))
	for id := range branches {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		b := branches[id]
		if c.shards[id].Down() {
			b.Forsake()
			c.shards[id].forsaken.Add(1)
			continue
		}
		if err := b.Abort(); err != nil && errors.Is(err, storage.ErrCrashed) {
			c.markDownOnCrash(id, err)
		}
	}
}

// classifyBeginErr maps a branch-begin failure to the runner contract:
// a crashed shard becomes typed ErrShardDown (shed), everything else
// passes through (ErrAborted and transient I/O are retriable).
func (c *Cluster) classifyBeginErr(id int, err error) error {
	if errors.Is(err, storage.ErrCrashed) {
		c.markDownOnCrash(id, err)
		c.shards[id].sheds.Add(1)
		return fmt.Errorf("shard %d died mid-transaction: %w", id, ErrShardDown)
	}
	return err
}

// ExecNewOrder executes a New-Order whose warehouse ids (W and every
// SupplyW) are GLOBAL. Items supplied by the home shard run in the home
// branch; items supplied by other shards become participant branches
// (one per shard) committed with two-phase commit. The home branch's
// forced commit record is the global decision (presumed abort).
func (c *Cluster) ExecNewOrder(in db.NewOrderInput) (db.NewOrderResult, error) {
	var res db.NewOrderResult
	home := c.ShardOf(in.W)
	hs := c.shards[home]
	if hs.Down() {
		hs.downSheds.Add(1)
		return res, fmt.Errorf("home shard %d: %w", home, ErrShardDown)
	}

	// Split items: home-shard items get LOCAL supply ids; remote items
	// keep their GLOBAL id on the home order line (the benchmark records
	// the real supplier) and are grouped per participant with LOCAL ids.
	localIn := db.NewOrderInput{W: c.LocalW(in.W), D: in.D, C: in.C}
	remote := make(map[int][]db.OrderItem)
	for _, it := range in.Items {
		ps := c.ShardOf(it.SupplyW)
		if ps == home {
			localIn.Items = append(localIn.Items,
				db.OrderItem{IID: it.IID, SupplyW: c.LocalW(it.SupplyW), Qty: it.Qty})
			continue
		}
		localIn.Items = append(localIn.Items,
			db.OrderItem{IID: it.IID, SupplyW: it.SupplyW, Qty: it.Qty, Remote: true})
		remote[ps] = append(remote[ps],
			db.OrderItem{IID: it.IID, SupplyW: c.LocalW(it.SupplyW), Qty: it.Qty})
	}

	// Fast path: single-shard transactions skip the protocol entirely.
	if len(remote) == 0 {
		res, err := hs.DB.NewOrder(localIn)
		if err != nil {
			return res, c.classifyBeginErr(home, err)
		}
		hs.localCommits.Add(1)
		return res, nil
	}

	// Graceful degradation: refuse (typed, counted) rather than block
	// when a required participant is already known dead.
	parts := make([]int, 0, len(remote))
	for id := range remote {
		parts = append(parts, id)
	}
	sort.Ints(parts)
	for _, id := range parts {
		if c.shards[id].Down() {
			hs.sheds.Add(1)
			return res, fmt.Errorf("participant shard %d: %w", id, ErrShardDown)
		}
	}

	gid := c.nextGID(home)
	open := make(map[int]*db.Branch)

	// Begin participant branches in shard order, then the home branch.
	pbs := make(map[int]*db.Branch, len(parts))
	for _, id := range parts {
		pb, err := c.shards[id].DB.RemoteStockBegin(gid, remote[id])
		if err != nil {
			c.abandon(open)
			hs.distAborts.Add(1)
			return res, c.classifyBeginErr(id, err)
		}
		pbs[id] = pb
		open[id] = pb
	}
	hb, hres, err := hs.DB.NewOrderHomeBegin(gid, localIn)
	if err != nil {
		c.abandon(open)
		hs.distAborts.Add(1)
		return res, c.classifyBeginErr(home, err)
	}
	open[home] = hb

	// Phase 1: prepare every participant.
	for i, id := range parts {
		if err := pbs[id].Prepare(); err != nil {
			delete(open, id) // a failed prepare already rolled back
			c.abandon(open)
			hs.distAborts.Add(1)
			return res, c.classifyBeginErr(id, err)
		}
		if i == 0 {
			c.fireHook(fault.KillMidPrepare, gid)
		}
	}
	c.fireHook(fault.KillAfterPrepare, gid)

	// Phase 2: the home commit is the decision.
	if err := c.commitHome(home, hb); err != nil {
		delete(open, home)
		c.abandon(open)
		hs.distAborts.Add(1)
		return res, err
	}
	delete(open, home)
	c.fireHook(fault.KillBeforeParticipantCommit, gid)
	for _, id := range parts {
		c.commitParticipant(id, pbs[id])
	}
	hs.distCommits.Add(1)
	return hres, nil
}

// commitHome forces the home branch's commit record — the global
// decision — retrying transient failures. A crashed home device means
// the decision never became durable: presumed abort, surfaced as
// ErrCoordinatorDown.
func (c *Cluster) commitHome(home int, hb *db.Branch) error {
	hs := c.shards[home]
	for attempt := 1; ; attempt++ {
		err := hb.Commit()
		if err == nil {
			return nil
		}
		if errors.Is(err, storage.ErrCrashed) {
			hb.Forsake()
			hs.forsaken.Add(1)
			hs.down.Store(true)
			return fmt.Errorf("home shard %d: %w", home, ErrCoordinatorDown)
		}
		if attempt >= commitRetries {
			// Live device, decision not durable: globally abort.
			if aerr := hb.Abort(); aerr != nil {
				c.markDownOnCrash(home, aerr)
			}
			return fmt.Errorf("home shard %d: decision force failed: %w", home, err)
		}
		forceBackoff(attempt)
	}
}

// ExecPayment executes a Payment whose W and CW are GLOBAL warehouse
// ids. A customer on another shard runs as a participant branch there
// (resolving by-name selection remotely); the home branch books the
// warehouse/district YTD and the history row with the resolved id.
// Returns the number of remote customer tuples touched (selects plus
// the write-back) for the Appendix A RC_cust measurement; 0 for local.
func (c *Cluster) ExecPayment(in db.PaymentInput) (int, error) {
	home := c.ShardOf(in.W)
	cshard := c.ShardOf(in.CW)
	hs := c.shards[home]
	if hs.Down() {
		hs.downSheds.Add(1)
		return 0, fmt.Errorf("home shard %d: %w", home, ErrShardDown)
	}

	if cshard == home {
		localIn := in
		localIn.W = c.LocalW(in.W)
		localIn.CW = c.LocalW(in.CW)
		if err := hs.DB.Payment(localIn); err != nil {
			return 0, c.classifyBeginErr(home, err)
		}
		hs.localCommits.Add(1)
		return 0, nil
	}

	cs := c.shards[cshard]
	if cs.Down() {
		hs.sheds.Add(1)
		return 0, fmt.Errorf("customer shard %d: %w", cshard, ErrShardDown)
	}

	gid := c.nextGID(home)
	open := make(map[int]*db.Branch)

	// The customer branch goes first: by-name payments only learn the
	// customer id from the remote shard's name index.
	pb, cid, selected, err := cs.DB.RemotePaymentBegin(gid,
		c.LocalW(in.CW), in.CD, in.ByName, in.C, in.NameOrd, in.AmountCents)
	if err != nil {
		hs.distAborts.Add(1)
		return 0, c.classifyBeginErr(cshard, err)
	}
	open[cshard] = pb

	localIn := in
	localIn.W = c.LocalW(in.W)
	hb, err := hs.DB.PaymentHomeBegin(gid, localIn, in.CW, in.CD, cid)
	if err != nil {
		c.abandon(open)
		hs.distAborts.Add(1)
		return 0, c.classifyBeginErr(home, err)
	}
	open[home] = hb

	if err := pb.Prepare(); err != nil {
		delete(open, cshard)
		c.abandon(open)
		hs.distAborts.Add(1)
		return 0, c.classifyBeginErr(cshard, err)
	}
	c.fireHook(fault.KillMidPrepare, gid)
	c.fireHook(fault.KillAfterPrepare, gid)

	if err := c.commitHome(home, hb); err != nil {
		delete(open, home)
		c.abandon(open)
		hs.distAborts.Add(1)
		return 0, err
	}
	delete(open, home)
	c.fireHook(fault.KillBeforeParticipantCommit, gid)
	c.commitParticipant(cshard, pb)
	hs.distCommits.Add(1)
	return selected + 1, nil
}
