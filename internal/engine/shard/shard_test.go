package shard

import (
	"errors"
	"testing"

	"tpccmodel/internal/core"
	"tpccmodel/internal/engine/db"
	"tpccmodel/internal/engine/fault"
	"tpccmodel/internal/engine/storage"
	"tpccmodel/internal/rng"
	"tpccmodel/internal/tpcc"
)

func openCluster(t *testing.T, shards int) *Cluster {
	t.Helper()
	c, err := Open(DefaultConfig(shards))
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// stockRow scans shard d for the (local warehouse, item) stock tuple.
func stockRow(t *testing.T, d *db.DB, w, i int64) db.StockRec {
	t.Helper()
	var rec db.StockRec
	found := false
	err := d.Heap(core.Stock).Scan(func(_ storage.RID, b []byte) bool {
		var r db.StockRec
		r.Unmarshal(b[:tpcc.TupleLen[core.Stock]])
		if int64(r.WID) == w && int64(r.IID) == i {
			rec, found = r, true
			return false
		}
		return true
	})
	if err != nil || !found {
		t.Fatalf("stock (%d,%d): err=%v found=%v", w, i, err, found)
	}
	return rec
}

func customerRow(t *testing.T, d *db.DB, w, dd, c int64) db.CustomerRec {
	t.Helper()
	var rec db.CustomerRec
	found := false
	err := d.Heap(core.Customer).Scan(func(_ storage.RID, b []byte) bool {
		var r db.CustomerRec
		r.Unmarshal(b[:tpcc.TupleLen[core.Customer]])
		if int64(r.WID) == w && int64(r.DID) == dd && int64(r.ID) == c {
			rec, found = r, true
			return false
		}
		return true
	})
	if err != nil || !found {
		t.Fatalf("customer (%d,%d,%d): err=%v found=%v", w, dd, c, err, found)
	}
	return rec
}

// recoverAll recovers every down shard and resolves all in-doubt
// branches, looping because a resolution-window kill can take a shard
// back down.
func recoverAll(t *testing.T, c *Cluster, r *rng.RNG) {
	t.Helper()
	for round := 0; round < 2+int(fault.NumShardKillPoints); round++ {
		ok := true
		for id, s := range c.shards {
			if !s.Down() {
				continue
			}
			if err := c.RecoverShard(id, r); err != nil {
				ok = false
			}
		}
		if err := c.ResolveInDoubtAll(); err != nil {
			ok = false
		}
		if ok {
			return
		}
	}
	t.Fatal("cluster did not recover within the round budget")
}

// checkAtomicity asserts the exact cluster-wide invariant: stock YTD and
// order-line quantity grew by the same amount since base.
func checkAtomicity(t *testing.T, c *Cluster, base clusterBaseline) {
	t.Helper()
	live, err := measureCluster(c)
	if err != nil {
		t.Fatal(err)
	}
	if d1, d2 := live.stockYTD-base.stockYTD, live.olQty-base.olQty; d1 != d2 {
		t.Fatalf("cross-shard atomicity: stock YTD +%d vs order-line qty +%d", d1, d2)
	}
}

func TestCrossShardNewOrder(t *testing.T) {
	c := openCluster(t, 3)
	const iid = 5
	s0 := stockRow(t, c.Shard(1).DB, 0, iid)

	// Home shard 0, one line supplied by shard 1 (global warehouse 1).
	res, err := c.ExecNewOrder(db.NewOrderInput{W: 0, D: 0, C: 0, Items: []db.OrderItem{
		{IID: 7, SupplyW: 0, Qty: 2},
		{IID: iid, SupplyW: 1, Qty: 4},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if res.RemoteLines != 1 {
		t.Fatalf("RemoteLines = %d, want 1", res.RemoteLines)
	}
	s1 := stockRow(t, c.Shard(1).DB, 0, iid)
	if s1.YTD != s0.YTD+4 || s1.RemoteCnt != s0.RemoteCnt+1 {
		t.Fatalf("participant stock not updated: before %+v after %+v", s0, s1)
	}
	if st := c.Shard(0).Stats(); st.DistCommits != 1 {
		t.Fatalf("coordinator DistCommits = %d, want 1", st.DistCommits)
	}
	if st := c.Shard(1).Stats(); st.ParticipantCommits != 1 {
		t.Fatalf("participant ParticipantCommits = %d, want 1", st.ParticipantCommits)
	}

	// A fully local order on shard 2 takes the fast path.
	if _, err := c.ExecNewOrder(db.NewOrderInput{W: 2, D: 1, C: 1, Items: []db.OrderItem{
		{IID: 11, SupplyW: 2, Qty: 1},
	}}); err != nil {
		t.Fatal(err)
	}
	if st := c.Shard(2).Stats(); st.LocalCommits != 1 || st.DistCommits != 0 {
		t.Fatalf("local fast path miscounted: %+v", st)
	}
	if err := c.CheckAll(); err != nil {
		t.Fatal(err)
	}
}

func TestCrossShardPayment(t *testing.T) {
	c := openCluster(t, 3)
	const cid = 3
	c0 := customerRow(t, c.Shard(1).DB, 0, 2, cid)

	// Home warehouse 0, customer resident on shard 1 (global warehouse 1).
	calls, err := c.ExecPayment(db.PaymentInput{
		W: 0, D: 1, CW: 1, CD: 2, ByName: false, C: cid, AmountCents: 500,
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls != 2 { // one selected tuple + one write-back
		t.Fatalf("remote customer calls = %d, want 2", calls)
	}
	c1 := customerRow(t, c.Shard(1).DB, 0, 2, cid)
	if c1.YTDPayCents != c0.YTDPayCents+500 || c1.PaymentCount != c0.PaymentCount+1 {
		t.Fatalf("remote customer not updated: before %+v after %+v", c0, c1)
	}
	// The home history row carries the GLOBAL customer coordinates.
	found := false
	hlen := tpcc.TupleLen[core.History]
	err = c.Shard(0).DB.Heap(core.History).Scan(func(_ storage.RID, b []byte) bool {
		var h db.HistoryRec
		h.Unmarshal(b[:hlen])
		if h.CWID == 1 && h.CDID == 2 && h.CID == cid && h.AmountCents == 500 {
			found = true
			return false
		}
		return true
	})
	if err != nil || !found {
		t.Fatalf("home history row with global coords: err=%v found=%v", err, found)
	}
	if err := c.CheckAll(); err != nil {
		t.Fatal(err)
	}
}

// TestKillPoints kills a shard inside each 2PC protocol window and
// asserts the cluster recovers to an exact, fully resolved state.
func TestKillPoints(t *testing.T) {
	cases := []struct {
		name    string
		point   KillPoint
		victim  int
		wantErr error // nil = the transaction must be acknowledged
		// applied reports whether the acked/aborted outcome must leave
		// the participant updates visible after recovery.
		applied bool
	}{
		// Second participant dies mid-prepare: global abort, no updates.
		{"mid-prepare-participant", fault.KillMidPrepare, 2, ErrShardDown, false},
		// Participant dies after voting yes: the decision is still
		// committed; recovery resolves the in-doubt branch to commit.
		{"after-prepare-participant", fault.KillAfterPrepare, 1, nil, true},
		// Coordinator dies before deciding: presumed abort.
		{"after-prepare-coordinator", fault.KillAfterPrepare, 0, ErrCoordinatorDown, false},
		// Participant dies after the durable decision, before its own
		// commit: forsaken, resolved to commit at recovery.
		{"before-participant-commit", fault.KillBeforeParticipantCommit, 1, nil, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := openCluster(t, 3)
			base, err := measureCluster(c)
			if err != nil {
				t.Fatal(err)
			}
			const iid = 21
			p1stock := stockRow(t, c.Shard(1).DB, 0, iid)

			fired := false
			c.SetKillHook(func(p KillPoint, gid uint64) {
				if p == tc.point && !fired {
					fired = true
					c.KillShard(tc.victim)
				}
			})
			res, execErr := c.ExecNewOrder(db.NewOrderInput{W: 0, D: 0, C: 0,
				Items: []db.OrderItem{
					{IID: iid, SupplyW: 1, Qty: 6},
					{IID: 33, SupplyW: 2, Qty: 2},
				}})
			c.SetKillHook(nil)
			if !fired {
				t.Fatal("kill point never fired")
			}
			if tc.wantErr == nil {
				if execErr != nil {
					t.Fatalf("exec: %v, want acknowledged commit", execErr)
				}
				if res.OID == 0 && res.TotalCents == 0 {
					t.Fatal("acknowledged commit returned an empty result")
				}
			} else if !errors.Is(execErr, tc.wantErr) {
				t.Fatalf("exec err = %v, want %v", execErr, tc.wantErr)
			}

			if n := c.Quiesce(0); n > 0 {
				t.Logf("%d participant commits parked for recovery", n)
			}
			recoverAll(t, c, rng.New(99))
			for _, s := range c.shards {
				if n := len(s.DB.InDoubt()); n > 0 {
					t.Fatalf("shard %d: %d orphaned in-doubt branches", s.ID, n)
				}
			}
			checkAtomicity(t, c, base)
			if err := c.CheckAll(); err != nil {
				t.Fatal(err)
			}
			got := stockRow(t, c.Shard(1).DB, 0, iid)
			if tc.applied && got.YTD != p1stock.YTD+6 {
				t.Fatalf("acked update lost: participant YTD %d, want %d", got.YTD, p1stock.YTD+6)
			}
			if !tc.applied && got.YTD != p1stock.YTD {
				t.Fatalf("aborted update leaked: participant YTD %d, want %d", got.YTD, p1stock.YTD)
			}
		})
	}
}

// TestKillDuringResolve re-kills the participant inside its own in-doubt
// resolution; a second recovery round must settle it.
func TestKillDuringResolve(t *testing.T) {
	c := openCluster(t, 3)
	base, err := measureCluster(c)
	if err != nil {
		t.Fatal(err)
	}
	const iid = 40
	s0 := stockRow(t, c.Shard(1).DB, 0, iid)

	killed := 0
	c.SetKillHook(func(p KillPoint, gid uint64) {
		switch {
		case p == fault.KillAfterPrepare && killed == 0:
			killed = 1
			c.KillShard(1)
		case p == fault.KillDuringResolve && killed == 1:
			killed = 2
			c.KillShard(1)
		}
	})
	if _, err := c.ExecNewOrder(db.NewOrderInput{W: 0, D: 0, C: 0,
		Items: []db.OrderItem{{IID: iid, SupplyW: 1, Qty: 3}}}); err != nil {
		t.Fatalf("exec: %v, want acknowledged commit", err)
	}
	recoverAll(t, c, rng.New(123))
	c.SetKillHook(nil)
	if killed != 2 {
		t.Fatalf("kill sequence stopped at %d, want both windows hit", killed)
	}
	if n := len(c.Shard(1).DB.InDoubt()); n != 0 {
		t.Fatalf("%d branches still in doubt", n)
	}
	if got := stockRow(t, c.Shard(1).DB, 0, iid); got.YTD != s0.YTD+3 {
		t.Fatalf("acked update lost across resolve-window kill: YTD %d, want %d", got.YTD, s0.YTD+3)
	}
	checkAtomicity(t, c, base)
	if err := c.CheckAll(); err != nil {
		t.Fatal(err)
	}
}

// TestGracefulDegradation holds one shard down: remote work needing it
// is refused with typed errors and counted, local work keeps committing.
func TestGracefulDegradation(t *testing.T) {
	c := openCluster(t, 3)
	c.KillShard(2)

	// Remote line supplied by the dead shard: typed refusal at the
	// coordinator, counted as a shed.
	_, err := c.ExecNewOrder(db.NewOrderInput{W: 0, D: 0, C: 0,
		Items: []db.OrderItem{{IID: 1, SupplyW: 2, Qty: 1}}})
	if !errors.Is(err, ErrShardDown) {
		t.Fatalf("dead participant: err = %v, want ErrShardDown", err)
	}
	// Home on the dead shard itself.
	_, err = c.ExecNewOrder(db.NewOrderInput{W: 2, D: 0, C: 0,
		Items: []db.OrderItem{{IID: 1, SupplyW: 2, Qty: 1}}})
	if !errors.Is(err, ErrShardDown) {
		t.Fatalf("dead home: err = %v, want ErrShardDown", err)
	}
	// Remote customer on the dead shard.
	if _, err := c.ExecPayment(db.PaymentInput{W: 0, D: 0, CW: 2, CD: 0, C: 0,
		AmountCents: 100}); !errors.Is(err, ErrShardDown) {
		t.Fatalf("dead customer shard: err = %v, want ErrShardDown", err)
	}
	// Local traffic on the survivors still commits.
	if _, err := c.ExecNewOrder(db.NewOrderInput{W: 0, D: 1, C: 1,
		Items: []db.OrderItem{{IID: 2, SupplyW: 0, Qty: 1}}}); err != nil {
		t.Fatalf("local commit on survivor: %v", err)
	}
	st0, st2 := c.Shard(0).Stats(), c.Shard(2).Stats()
	if st0.Sheds != 2 { // dead participant + dead customer shard
		t.Fatalf("coordinator sheds = %d, want 2", st0.Sheds)
	}
	if st2.DownSheds != 1 {
		t.Fatalf("dead shard downSheds = %d, want 1", st2.DownSheds)
	}
	if st0.LocalCommits != 1 {
		t.Fatalf("survivor local commits = %d, want 1", st0.LocalCommits)
	}

	// Revive and verify the cluster is whole.
	if err := c.RecoverShard(2, rng.New(7)); err != nil {
		t.Fatal(err)
	}
	if err := c.CheckAll(); err != nil {
		t.Fatal(err)
	}
}

// TestRunCleanCluster drives the concurrent runner with elevated remote
// probabilities on a healthy cluster: everything must be acknowledged.
func TestRunCleanCluster(t *testing.T) {
	c := openCluster(t, 3)
	base, err := measureCluster(c)
	if err != nil {
		t.Fatal(err)
	}
	const total = 300
	st, err := Run(c, 42, tpcc.DefaultMix(), total, 4, db.DefaultRetryPolicy(), 0.25, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if n := c.Quiesce(0); n > 0 {
		t.Fatalf("%d participant commits pending on a healthy cluster", n)
	}
	if got := st.Acknowledged(); got != total {
		t.Fatalf("acknowledged %d of %d (sheds=%d)", got, total, st.Sheds)
	}
	if st.Sheds != 0 {
		t.Fatalf("sheds = %d on a healthy cluster", st.Sheds)
	}
	if st.Xval.NewOrders > 20 && st.Xval.ERs == 0 {
		t.Fatal("no remote stock lines measured at 25% remote probability")
	}
	checkAtomicity(t, c, base)
	if err := c.CheckAll(); err != nil {
		t.Fatal(err)
	}
}

// TestRunCleanClusterMVCC reruns the healthy-cluster workload with every
// shard in snapshot-isolation mode and again in serializable-SI mode:
// cross-shard 2PC branches prepare and commit over mvcc-local
// transactions — under ssi the Prepare carries each shard's
// serializability validation — and the cluster must come out atomic and
// consistent exactly as under 2PL.
func TestRunCleanClusterMVCC(t *testing.T) {
	for _, cc := range []db.CCMode{db.CCMVCC, db.CCSSI} {
		t.Run(cc.String(), func(t *testing.T) {
			cfg := DefaultConfig(3)
			cfg.CC = cc
			c, err := Open(cfg)
			if err != nil {
				t.Fatal(err)
			}
			base, err := measureCluster(c)
			if err != nil {
				t.Fatal(err)
			}
			const total = 300
			st, err := Run(c, 42, tpcc.DefaultMix(), total, 4, db.DefaultRetryPolicy(), 0.25, 0.5)
			if err != nil {
				t.Fatal(err)
			}
			if n := c.Quiesce(0); n > 0 {
				t.Fatalf("%d participant commits pending on a healthy cluster", n)
			}
			if got := st.Acknowledged(); got != total {
				t.Fatalf("acknowledged %d of %d (sheds=%d)", got, total, st.Sheds)
			}
			checkAtomicity(t, c, base)
			if err := c.CheckAll(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestShardTortureReduced runs a scaled-down campaign (the CI smoke
// configuration drives the full default via make shard-torture).
func TestShardTortureReduced(t *testing.T) {
	cfg := DefaultTortureConfig()
	cfg.Seeds = 1
	cfg.Schedules = 4
	cfg.Txns = 150
	if testing.Short() {
		cfg.Schedules = 2
		cfg.Txns = 80
	}
	rep, err := Torture(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("torture violations:\n%v", rep.Violations)
	}
	t.Log(rep.Summary())
}
