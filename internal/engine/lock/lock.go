// Package lock implements a strict two-phase-locking row lock manager with
// shared/exclusive modes, lock upgrade, and deadlock detection via a
// wait-for graph (victims get ErrDeadlock and are expected to abort and
// retry — the engine's transaction layer does this).
//
// The throughput model charges 1K instructions per lock released at commit
// (Section 5.1); this manager is the executable counterpart whose lock
// counts can be compared against the model's Table 4 lock visit counts.
//
// The uncontended grant path is allocation-free: granted locks are value
// entries in a pooled per-key state, per-transaction held lists are pooled
// slices, and the wait channel is only allocated when a request actually
// blocks.
package lock

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// Mode is a lock mode.
type Mode uint8

// Lock modes.
const (
	Shared Mode = iota
	Exclusive
)

// String names the mode.
func (m Mode) String() string {
	if m == Shared {
		return "S"
	}
	return "X"
}

// Key identifies a lockable resource: a table and a packed row key.
type Key struct {
	Table uint32
	Row   uint64
}

// String renders the key.
func (k Key) String() string { return fmt.Sprintf("t%d/%d", k.Table, k.Row) }

// ErrDeadlock is returned to the transaction chosen as the deadlock victim.
var ErrDeadlock = errors.New("lock: deadlock detected")

// ErrTimeout is returned when a bounded wait expires. It matches
// ErrDeadlock under errors.Is, because a timeout is how cross-engine
// deadlocks surface: each engine's wait-for graph is local, so a cycle
// spanning two engines (a distributed transaction holding locks on both)
// is invisible to either detector and can only be broken by timing the
// wait out and aborting, exactly like a deadlock victim.
var ErrTimeout = fmt.Errorf("lock: wait timed out: %w", ErrDeadlock)

// errCancelled resolves waits of a transaction being released.
var errCancelled = errors.New("lock: wait cancelled")

// TxnID identifies a transaction.
type TxnID uint64

// grant is one member of a key's granted group.
type grant struct {
	txn  TxnID
	mode Mode
}

// request is one BLOCKED lock request; immediately granted requests never
// materialize one.
type request struct {
	txn   TxnID
	mode  Mode
	ready chan error
}

// lockState is the per-key lock table entry: the granted group followed by
// FIFO waiters. Entries are pooled — emptied states go to the manager's
// freelist instead of the garbage collector, so the steady-state acquire
// path does not allocate.
type lockState struct {
	granted []grant
	waiters []*request
}

// heldLock records one lock a transaction holds.
type heldLock struct {
	key  Key
	mode Mode
}

// txnLocks is the pooled per-transaction lock list. Holding a handful of
// locks (TPC-C transactions hold tens), a linear scan beats a map and
// costs nothing to reset.
type txnLocks struct {
	keys []heldLock
}

func (tl *txnLocks) find(key Key) (int, bool) {
	for i := range tl.keys {
		if tl.keys[i].key == key {
			return i, true
		}
	}
	return 0, false
}

// Manager is the lock manager. All methods are safe for concurrent use.
type Manager struct {
	mu    sync.Mutex
	locks map[Key]*lockState
	// held[txn] is the pooled list of keys the transaction holds.
	held map[TxnID]*txnLocks
	// waitKey[txn] is the single key txn is currently queued on (a
	// transaction blocks on at most one Acquire at a time), so release
	// can cancel the wait without scanning the whole lock table.
	waitKey map[TxnID]Key
	// waitFor[a] = set of txns a is waiting on (for cycle detection).
	waitFor map[TxnID]map[TxnID]struct{}

	// Freelists for the pooled structures.
	lsFree []*lockState
	tlFree []*txnLocks

	// waitTimeout bounds every wait; 0 waits forever.
	waitTimeout time.Duration

	acquired  int64
	waits     int64
	deadlocks int64
	timeouts  int64
}

// NewManager creates an empty lock manager.
func NewManager() *Manager {
	return &Manager{
		locks:   make(map[Key]*lockState),
		held:    make(map[TxnID]*txnLocks),
		waitKey: make(map[TxnID]Key),
		waitFor: make(map[TxnID]map[TxnID]struct{}),
	}
}

func (m *Manager) newLockState() *lockState {
	if n := len(m.lsFree); n > 0 {
		ls := m.lsFree[n-1]
		m.lsFree = m.lsFree[:n-1]
		return ls
	}
	return &lockState{}
}

func (m *Manager) freeLockState(ls *lockState) {
	ls.granted = ls.granted[:0]
	ls.waiters = ls.waiters[:0]
	m.lsFree = append(m.lsFree, ls)
}

func (m *Manager) newTxnLocks() *txnLocks {
	if n := len(m.tlFree); n > 0 {
		tl := m.tlFree[n-1]
		m.tlFree = m.tlFree[:n-1]
		return tl
	}
	return &txnLocks{}
}

// Counts returns total grants, waits, and deadlocks observed.
func (m *Manager) Counts() (acquired, waits, deadlocks int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.acquired, m.waits, m.deadlocks
}

// Timeouts returns the number of waits that expired (SetWaitTimeout).
func (m *Manager) Timeouts() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.timeouts
}

// SetWaitTimeout bounds every lock wait; 0 (the default) waits forever.
// Expired waits fail with ErrTimeout, which transaction layers handle as
// a deadlock abort. Distributed execution requires a bound: cross-engine
// wait cycles never appear in any single wait-for graph.
func (m *Manager) SetWaitTimeout(d time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.waitTimeout = d
}

// HeldBy returns the number of locks txn currently holds.
func (m *Manager) HeldBy(txn TxnID) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	if tl := m.held[txn]; tl != nil {
		return len(tl.keys)
	}
	return 0
}

func compatible(a, b Mode) bool { return a == Shared && b == Shared }

// grantable reports whether a request by txn for mode can join the granted
// group of ls. FIFO fairness: a new request also waits behind existing
// waiters.
func grantable(ls *lockState, txn TxnID, mode Mode) bool {
	if len(ls.waiters) > 0 {
		return false
	}
	return compatibleWithGranted(ls, txn, mode)
}

// compatibleWithGranted reports whether a request by txn for mode
// conflicts with no currently granted lock of another transaction.
func compatibleWithGranted(ls *lockState, txn TxnID, mode Mode) bool {
	for _, g := range ls.granted {
		if g.txn != txn && !compatible(g.mode, mode) {
			return false
		}
	}
	return true
}

// Acquire takes key in mode for txn, blocking while incompatible locks are
// held. A Shared request by a holder of Exclusive is a no-op; a Exclusive
// request by a holder of Shared is an upgrade. Returns ErrDeadlock if
// waiting would close a cycle in the wait-for graph.
func (m *Manager) Acquire(txn TxnID, key Key, mode Mode) error {
	m.mu.Lock()
	ls := m.locks[key]
	if ls == nil {
		ls = m.newLockState()
		m.locks[key] = ls
	}

	// Re-entrant cases.
	isUpgrade := false
	if cur, ok := m.heldMode(txn, key); ok {
		if cur == Exclusive || mode == Shared {
			m.mu.Unlock()
			return nil
		}
		// Upgrade S -> X. The shared grant is KEPT while waiting (2PL:
		// dropping it would let a writer slip between the read and the
		// write); it is replaced in place once the upgrade is granted.
		// Upgrades have priority over plain waiters; two simultaneous
		// upgrades deadlock and one is aborted.
		isUpgrade = true
	}

	can := grantable(ls, txn, mode)
	if isUpgrade {
		can = compatibleWithGranted(ls, txn, mode)
	}
	if can {
		if isUpgrade {
			m.removeGrant(ls, txn)
		}
		ls.granted = append(ls.granted, grant{txn: txn, mode: mode})
		m.noteHeld(txn, key, mode)
		m.acquired++
		m.mu.Unlock()
		return nil
	}

	// Must wait: record wait-for edges and check for a cycle. An
	// upgrade waits only on the granted group; a plain request also
	// waits on the waiters queued ahead of it.
	blockers := make(map[TxnID]struct{})
	for _, g := range ls.granted {
		if g.txn != txn {
			blockers[g.txn] = struct{}{}
		}
	}
	if !isUpgrade {
		for _, r := range ls.waiters {
			if r.txn != txn {
				blockers[r.txn] = struct{}{}
			}
		}
	}
	m.waitFor[txn] = blockers
	if m.cycleFrom(txn) {
		delete(m.waitFor, txn)
		m.deadlocks++
		if len(ls.granted) == 0 && len(ls.waiters) == 0 {
			delete(m.locks, key)
			m.freeLockState(ls)
		}
		m.mu.Unlock()
		return ErrDeadlock
	}
	req := &request{txn: txn, mode: mode, ready: make(chan error, 1)}
	if isUpgrade {
		// Insert the upgrade ahead of plain waiters.
		ls.waiters = append(ls.waiters, nil)
		copy(ls.waiters[1:], ls.waiters)
		ls.waiters[0] = req
	} else {
		ls.waiters = append(ls.waiters, req)
	}
	m.waitKey[txn] = key
	m.waits++
	timeout := m.waitTimeout
	m.mu.Unlock()

	var err error
	if timeout > 0 {
		t := time.NewTimer(timeout)
		select {
		case err = <-req.ready:
			t.Stop()
		case <-t.C:
			err = m.expireWait(txn, key, req)
		}
	} else {
		err = <-req.ready
	}
	if err == nil {
		m.mu.Lock()
		m.noteHeld(txn, key, mode)
		m.acquired++
		delete(m.waitFor, txn)
		delete(m.waitKey, txn)
		m.mu.Unlock()
	}
	return err
}

// expireWait removes a timed-out waiter from the queue. It races against
// a concurrent grant (promote) or cancellation (ReleaseAll): both resolve
// req.ready while holding m.mu, so under the mutex either the request is
// still queued ungranted — remove it and fail with ErrTimeout — or its
// outcome is already in the buffered channel and the timeout loses.
func (m *Manager) expireWait(txn TxnID, key Key, req *request) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	select {
	case err := <-req.ready:
		return err
	default:
	}
	ls := m.locks[key]
	if ls != nil {
		for i, r := range ls.waiters {
			if r == req {
				ls.waiters = append(ls.waiters[:i], ls.waiters[i+1:]...)
				break
			}
		}
	}
	delete(m.waitFor, txn)
	delete(m.waitKey, txn)
	m.timeouts++
	if ls != nil {
		m.promote(key, ls)
	}
	return ErrTimeout
}

// cycleFrom reports whether the wait-for graph has a cycle reachable from
// start (DFS).
func (m *Manager) cycleFrom(start TxnID) bool {
	seen := make(map[TxnID]bool)
	var dfs func(t TxnID) bool
	dfs = func(t TxnID) bool {
		if t == start && len(seen) > 0 {
			return true
		}
		if seen[t] {
			return false
		}
		seen[t] = true
		for next := range m.waitFor[t] {
			if dfs(next) {
				return true
			}
		}
		return false
	}
	for next := range m.waitFor[start] {
		if dfs(next) {
			return true
		}
	}
	return false
}

func (m *Manager) heldMode(txn TxnID, key Key) (Mode, bool) {
	if tl := m.held[txn]; tl != nil {
		if i, ok := tl.find(key); ok {
			return tl.keys[i].mode, true
		}
	}
	return 0, false
}

func (m *Manager) noteHeld(txn TxnID, key Key, mode Mode) {
	tl := m.held[txn]
	if tl == nil {
		tl = m.newTxnLocks()
		m.held[txn] = tl
	}
	if i, ok := tl.find(key); ok {
		tl.keys[i].mode = mode
		return
	}
	tl.keys = append(tl.keys, heldLock{key: key, mode: mode})
}

func (m *Manager) removeGrant(ls *lockState, txn TxnID) {
	out := ls.granted[:0]
	for _, g := range ls.granted {
		if g.txn == txn {
			continue
		}
		out = append(out, g)
	}
	ls.granted = out
}

// promote grants FIFO waiters until the first one that conflicts with the
// (growing) granted group. Granting a waiting upgrade first retires the
// transaction's old shared grant. Emptied states return to the pool.
func (m *Manager) promote(key Key, ls *lockState) {
	for len(ls.waiters) > 0 {
		r := ls.waiters[0]
		if !compatibleWithGranted(ls, r.txn, r.mode) {
			// FIFO: stop at the first ungrantable waiter.
			break
		}
		// Retire an old grant of the same transaction (upgrade).
		m.removeGrant(ls, r.txn)
		ls.granted = append(ls.granted, grant{txn: r.txn, mode: r.mode})
		copy(ls.waiters, ls.waiters[1:])
		ls.waiters = ls.waiters[:len(ls.waiters)-1]
		// The waiter finishes bookkeeping in Acquire.
		r.ready <- nil
	}
	if len(ls.granted) == 0 && len(ls.waiters) == 0 {
		delete(m.locks, key)
		m.freeLockState(ls)
	}
}

// ReleaseAll drops every lock txn holds and cancels its waits (strict 2PL
// release at commit or abort).
func (m *Manager) ReleaseAll(txn TxnID) {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.waitFor, txn)
	// Cancel an in-flight wait (possible after a deadlock abort racing
	// with a grant). The waitKey index makes this O(1) instead of a
	// whole-table scan.
	if key, ok := m.waitKey[txn]; ok {
		delete(m.waitKey, txn)
		if ls := m.locks[key]; ls != nil {
			for i, r := range ls.waiters {
				if r.txn == txn {
					ls.waiters = append(ls.waiters[:i], ls.waiters[i+1:]...)
					r.ready <- errCancelled
					break
				}
			}
			m.promote(key, ls)
		}
	}
	tl := m.held[txn]
	if tl == nil {
		return
	}
	for _, h := range tl.keys {
		if ls := m.locks[h.key]; ls != nil {
			m.removeGrant(ls, txn)
			m.promote(h.key, ls)
		}
	}
	delete(m.held, txn)
	tl.keys = tl.keys[:0]
	m.tlFree = append(m.tlFree, tl)
}
