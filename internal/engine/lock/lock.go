// Package lock implements a strict two-phase-locking row lock manager with
// shared/exclusive modes, lock upgrade, and deadlock detection via a
// wait-for graph (victims get ErrDeadlock and are expected to abort and
// retry — the engine's transaction layer does this).
//
// The throughput model charges 1K instructions per lock released at commit
// (Section 5.1); this manager is the executable counterpart whose lock
// counts can be compared against the model's Table 4 lock visit counts.
// The model's per-lock CPU charge implicitly assumes lock operations scale
// with added processors, so the lock space is STRIPED: keys hash into
// independent stripes, each with its own mutex, lock table, and free
// pools. Uncontended grants on different keys in different stripes never
// touch a shared mutex or cache line. NewManagerStripes(1) degenerates to
// the original single-table manager and is kept as the differential
// baseline (see striped_test.go).
//
// Deadlock detection is the one structurally global concern: a wait cycle
// can span stripes (txn A blocked in stripe 1 on a lock whose holder is
// blocked in stripe 2 on a lock A holds). The wait-for graph therefore
// lives behind a separate detector mutex that is touched ONLY by requests
// that actually block — the uncontended grant path never takes it, so
// detection cost scales with contention, not throughput.
//
// The uncontended grant path is allocation-free: granted locks are value
// entries in a pooled per-key state, per-transaction held lists are pooled
// slices, and the wait channel is only allocated when a request actually
// blocks.
//
// Concurrency contract: methods are safe for concurrent use across
// transactions. Calls for the SAME TxnID (its Acquires and its final
// ReleaseAll) must be issued serially — the engine runs each transaction
// on one goroutine, and the seed manager already relied on this (a
// ReleaseAll racing the same transaction's in-flight Acquire could leak a
// concurrently promoted grant).
package lock

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// Mode is a lock mode.
type Mode uint8

// Lock modes.
const (
	Shared Mode = iota
	Exclusive
)

// String names the mode.
func (m Mode) String() string {
	if m == Shared {
		return "S"
	}
	return "X"
}

// Key identifies a lockable resource: a table and a packed row key.
type Key struct {
	Table uint32
	Row   uint64
}

// String renders the key.
func (k Key) String() string { return fmt.Sprintf("t%d/%d", k.Table, k.Row) }

// ErrDeadlock is returned to the transaction chosen as the deadlock victim.
var ErrDeadlock = errors.New("lock: deadlock detected")

// ErrTimeout is returned when a bounded wait expires. It matches
// ErrDeadlock under errors.Is, because a timeout is how cross-engine
// deadlocks surface: each engine's wait-for graph is local, so a cycle
// spanning two engines (a distributed transaction holding locks on both)
// is invisible to either detector and can only be broken by timing the
// wait out and aborting, exactly like a deadlock victim.
var ErrTimeout = fmt.Errorf("lock: wait timed out: %w", ErrDeadlock)

// errCancelled resolves waits of a transaction being released.
var errCancelled = errors.New("lock: wait cancelled")

// TxnID identifies a transaction.
type TxnID uint64

// DefaultStripes is the stripe count NewManager uses. 64 comfortably
// exceeds any plausible worker count (contention on a stripe mutex needs
// two workers hashing to the same stripe at the same instant), while the
// per-stripe fixed cost (one map, one mutex, empty freelists) keeps the
// whole manager under a few KB. Must be a power of two.
const DefaultStripes = 64

// grant is one member of a key's granted group.
type grant struct {
	txn  TxnID
	mode Mode
}

// request is one BLOCKED lock request; immediately granted requests never
// materialize one.
type request struct {
	txn   TxnID
	mode  Mode
	ready chan error
}

// lockState is the per-key lock table entry: the granted group followed by
// FIFO waiters. Entries are pooled — emptied states go to the stripe's
// freelist instead of the garbage collector, so the steady-state acquire
// path does not allocate.
type lockState struct {
	granted []grant
	waiters []*request
}

// heldLock records one lock a transaction holds.
type heldLock struct {
	key  Key
	mode Mode
}

// txnLocks is the pooled per-transaction lock list. Holding a handful of
// locks (TPC-C transactions hold tens), a linear scan beats a map and
// costs nothing to reset.
type txnLocks struct {
	keys []heldLock
}

func (tl *txnLocks) find(key Key) (int, bool) {
	for i := range tl.keys {
		if tl.keys[i].key == key {
			return i, true
		}
	}
	return 0, false
}

// stripe is one shard of the lock table: a mutex, the keys that hash here,
// a freelist for emptied states, and this stripe's share of the counters.
// The pad keeps hot stripes on separate cache lines so uncontended grants
// in different stripes do not false-share.
type stripe struct {
	mu     sync.Mutex
	locks  map[Key]*lockState
	lsFree []*lockState

	acquired  int64
	waits     int64
	deadlocks int64
	timeouts  int64

	_ [24]byte
}

// txnShard is one shard of the per-transaction state: which locks each
// transaction holds and the single key it is currently waiting on.
// Sharded by txn id so commits of different transactions do not serialize
// on one bookkeeping mutex.
type txnShard struct {
	mu sync.Mutex
	// held[txn] is the pooled list of keys the transaction holds.
	held map[TxnID]*txnLocks
	// waitKey[txn] is the single key txn is currently queued on (a
	// transaction blocks on at most one Acquire at a time), so release
	// can cancel the wait without scanning the whole lock table.
	waitKey map[TxnID]Key
	tlFree  []*txnLocks

	_ [24]byte
}

// Manager is the striped lock manager. See the package comment for the
// concurrency contract.
type Manager struct {
	stripes []stripe
	mask    uint64
	txns    []txnShard
	tmask   uint64

	// det guards the global wait-for graph. Only requests that block (and
	// the release/timeout paths cleaning up after them) take it; the
	// uncontended grant path never does. Lock order: a stripe mutex may be
	// held while taking det, never the reverse.
	det struct {
		sync.Mutex
		// waitFor[a] = set of txns a is waiting on (for cycle detection).
		waitFor map[TxnID]map[TxnID]struct{}
	}

	// cfgMu guards waitTimeout (set rarely, read per blocked wait).
	cfgMu       sync.Mutex
	waitTimeout time.Duration
}

// NewManager creates an empty lock manager with DefaultStripes stripes.
func NewManager() *Manager { return NewManagerStripes(DefaultStripes) }

// NewManagerStripes creates an empty lock manager with the given stripe
// count, rounded up to a power of two; values < 1 mean DefaultStripes.
// Stripes = 1 reproduces the seed single-table manager exactly and is the
// baseline configuration of the scalability benchmark.
func NewManagerStripes(stripes int) *Manager {
	if stripes < 1 {
		stripes = DefaultStripes
	}
	n := 1
	for n < stripes {
		n <<= 1
	}
	m := &Manager{
		stripes: make([]stripe, n),
		mask:    uint64(n - 1),
		// Txn-state shards never need to outnumber stripes: both bound
		// the same worker concurrency.
		txns:  make([]txnShard, n),
		tmask: uint64(n - 1),
	}
	for i := range m.stripes {
		m.stripes[i].locks = make(map[Key]*lockState)
	}
	for i := range m.txns {
		m.txns[i].held = make(map[TxnID]*txnLocks)
		m.txns[i].waitKey = make(map[TxnID]Key)
	}
	m.det.waitFor = make(map[TxnID]map[TxnID]struct{})
	return m
}

// Stripes returns the stripe count (always a power of two).
func (m *Manager) Stripes() int { return len(m.stripes) }

// stripeOf hashes a key to its stripe. Fibonacci multiplicative hashing on
// the mixed row/table bits: row keys are near-sequential per table, so the
// multiply spreads adjacent rows across stripes; the high bits of the
// product carry the mixing.
func (m *Manager) stripeOf(key Key) *stripe {
	h := (key.Row ^ uint64(key.Table)<<32) * 0x9e3779b97f4a7c15
	return &m.stripes[(h>>32)&m.mask]
}

// txnShardOf maps a transaction to its bookkeeping shard. Txn ids are
// allocated sequentially, so the low bits alone spread workers evenly.
func (m *Manager) txnShardOf(txn TxnID) *txnShard {
	return &m.txns[uint64(txn)&m.tmask]
}

func (s *stripe) newLockState() *lockState {
	if n := len(s.lsFree); n > 0 {
		ls := s.lsFree[n-1]
		s.lsFree = s.lsFree[:n-1]
		return ls
	}
	return &lockState{}
}

func (s *stripe) freeLockState(ls *lockState) {
	ls.granted = ls.granted[:0]
	ls.waiters = ls.waiters[:0]
	s.lsFree = append(s.lsFree, ls)
}

func (ts *txnShard) newTxnLocks() *txnLocks {
	if n := len(ts.tlFree); n > 0 {
		tl := ts.tlFree[n-1]
		ts.tlFree = ts.tlFree[:n-1]
		return tl
	}
	return &txnLocks{}
}

// Counts returns total grants, waits, and deadlocks observed, summed over
// stripes.
func (m *Manager) Counts() (acquired, waits, deadlocks int64) {
	for i := range m.stripes {
		s := &m.stripes[i]
		s.mu.Lock()
		acquired += s.acquired
		waits += s.waits
		deadlocks += s.deadlocks
		s.mu.Unlock()
	}
	return acquired, waits, deadlocks
}

// Timeouts returns the number of waits that expired (SetWaitTimeout).
func (m *Manager) Timeouts() int64 {
	var n int64
	for i := range m.stripes {
		s := &m.stripes[i]
		s.mu.Lock()
		n += s.timeouts
		s.mu.Unlock()
	}
	return n
}

// SetWaitTimeout bounds every lock wait; 0 (the default) waits forever.
// Expired waits fail with ErrTimeout, which transaction layers handle as
// a deadlock abort. Distributed execution requires a bound: cross-engine
// wait cycles never appear in any single wait-for graph.
func (m *Manager) SetWaitTimeout(d time.Duration) {
	m.cfgMu.Lock()
	m.waitTimeout = d
	m.cfgMu.Unlock()
}

func (m *Manager) getWaitTimeout() time.Duration {
	m.cfgMu.Lock()
	d := m.waitTimeout
	m.cfgMu.Unlock()
	return d
}

// HeldBy returns the number of locks txn currently holds.
func (m *Manager) HeldBy(txn TxnID) int {
	ts := m.txnShardOf(txn)
	ts.mu.Lock()
	defer ts.mu.Unlock()
	if tl := ts.held[txn]; tl != nil {
		return len(tl.keys)
	}
	return 0
}

func compatible(a, b Mode) bool { return a == Shared && b == Shared }

// grantable reports whether a request by txn for mode can join the granted
// group of ls. FIFO fairness: a new request also waits behind existing
// waiters.
func grantable(ls *lockState, txn TxnID, mode Mode) bool {
	if len(ls.waiters) > 0 {
		return false
	}
	return compatibleWithGranted(ls, txn, mode)
}

// compatibleWithGranted reports whether a request by txn for mode
// conflicts with no currently granted lock of another transaction.
func compatibleWithGranted(ls *lockState, txn TxnID, mode Mode) bool {
	for _, g := range ls.granted {
		if g.txn != txn && !compatible(g.mode, mode) {
			return false
		}
	}
	return true
}

// heldMode returns txn's current mode on key, if any.
func (m *Manager) heldMode(txn TxnID, key Key) (Mode, bool) {
	ts := m.txnShardOf(txn)
	ts.mu.Lock()
	defer ts.mu.Unlock()
	if tl := ts.held[txn]; tl != nil {
		if i, ok := tl.find(key); ok {
			return tl.keys[i].mode, true
		}
	}
	return 0, false
}

// noteHeld records that txn holds key in mode.
func (m *Manager) noteHeld(txn TxnID, key Key, mode Mode) {
	ts := m.txnShardOf(txn)
	ts.mu.Lock()
	defer ts.mu.Unlock()
	tl := ts.held[txn]
	if tl == nil {
		tl = ts.newTxnLocks()
		ts.held[txn] = tl
	}
	if i, ok := tl.find(key); ok {
		tl.keys[i].mode = mode
		return
	}
	tl.keys = append(tl.keys, heldLock{key: key, mode: mode})
}

// Acquire takes key in mode for txn, blocking while incompatible locks are
// held. A Shared request by a holder of Exclusive is a no-op; an Exclusive
// request by a holder of Shared is an upgrade. Returns ErrDeadlock if
// waiting would close a cycle in the wait-for graph.
func (m *Manager) Acquire(txn TxnID, key Key, mode Mode) error {
	// The re-entrant check reads only txn's own held list, which no other
	// goroutine mutates (see the package concurrency contract), so it can
	// run before the stripe lock: the answer cannot change underneath us.
	isUpgrade := false
	if cur, ok := m.heldMode(txn, key); ok {
		if cur == Exclusive || mode == Shared {
			return nil
		}
		// Upgrade S -> X. The shared grant is KEPT while waiting (2PL:
		// dropping it would let a writer slip between the read and the
		// write); it is replaced in place once the upgrade is granted.
		// Upgrades have priority over plain waiters; two simultaneous
		// upgrades deadlock and one is aborted.
		isUpgrade = true
	}

	st := m.stripeOf(key)
	st.mu.Lock()
	ls := st.locks[key]
	if ls == nil {
		ls = st.newLockState()
		st.locks[key] = ls
	}

	can := grantable(ls, txn, mode)
	if isUpgrade {
		can = compatibleWithGranted(ls, txn, mode)
	}
	if can {
		if isUpgrade {
			removeGrant(ls, txn)
		}
		ls.granted = append(ls.granted, grant{txn: txn, mode: mode})
		st.acquired++
		st.mu.Unlock()
		m.noteHeld(txn, key, mode)
		return nil
	}

	// Must wait: record wait-for edges and check for a cycle. An
	// upgrade waits only on the granted group; a plain request also
	// waits on the waiters queued ahead of it. The detector mutex is
	// taken under the stripe mutex (stripe -> det is the only nesting
	// order anywhere), so the edges and the enqueue are atomic with
	// respect to other blockers of this stripe, and the graph itself is
	// consistent across stripes because every mutation holds det.
	blockers := make(map[TxnID]struct{})
	for _, g := range ls.granted {
		if g.txn != txn {
			blockers[g.txn] = struct{}{}
		}
	}
	if !isUpgrade {
		for _, r := range ls.waiters {
			if r.txn != txn {
				blockers[r.txn] = struct{}{}
			}
		}
	}
	m.det.Lock()
	m.det.waitFor[txn] = blockers
	cycle := m.cycleFromLocked(txn)
	if cycle {
		delete(m.det.waitFor, txn)
	}
	m.det.Unlock()
	if cycle {
		st.deadlocks++
		if len(ls.granted) == 0 && len(ls.waiters) == 0 {
			delete(st.locks, key)
			st.freeLockState(ls)
		}
		st.mu.Unlock()
		return ErrDeadlock
	}
	req := &request{txn: txn, mode: mode, ready: make(chan error, 1)}
	if isUpgrade {
		// Insert the upgrade ahead of plain waiters.
		ls.waiters = append(ls.waiters, nil)
		copy(ls.waiters[1:], ls.waiters)
		ls.waiters[0] = req
	} else {
		ls.waiters = append(ls.waiters, req)
	}
	st.waits++
	st.mu.Unlock()

	ts := m.txnShardOf(txn)
	ts.mu.Lock()
	ts.waitKey[txn] = key
	ts.mu.Unlock()

	var err error
	if timeout := m.getWaitTimeout(); timeout > 0 {
		t := time.NewTimer(timeout)
		select {
		case err = <-req.ready:
			t.Stop()
		case <-t.C:
			err = m.expireWait(txn, key, req)
		}
	} else {
		err = <-req.ready
	}
	if err == nil {
		m.noteHeld(txn, key, mode)
		m.det.Lock()
		delete(m.det.waitFor, txn)
		m.det.Unlock()
		ts.mu.Lock()
		delete(ts.waitKey, txn)
		ts.mu.Unlock()
	}
	return err
}

// expireWait removes a timed-out waiter from the queue. It races against
// a concurrent grant (promote) or cancellation (ReleaseAll): both resolve
// req.ready while holding the stripe mutex, so under that mutex either the
// request is still queued ungranted — remove it and fail with ErrTimeout —
// or its outcome is already in the buffered channel and the timeout loses.
func (m *Manager) expireWait(txn TxnID, key Key, req *request) error {
	st := m.stripeOf(key)
	st.mu.Lock()
	select {
	case err := <-req.ready:
		st.mu.Unlock()
		return err
	default:
	}
	ls := st.locks[key]
	if ls != nil {
		for i, r := range ls.waiters {
			if r == req {
				ls.waiters = append(ls.waiters[:i], ls.waiters[i+1:]...)
				break
			}
		}
	}
	st.timeouts++
	if ls != nil {
		st.promote(key, ls)
	}
	st.mu.Unlock()

	m.det.Lock()
	delete(m.det.waitFor, txn)
	m.det.Unlock()
	ts := m.txnShardOf(txn)
	ts.mu.Lock()
	delete(ts.waitKey, txn)
	ts.mu.Unlock()
	return ErrTimeout
}

// cycleFromLocked reports whether the wait-for graph has a cycle reachable
// from start (DFS). Callers hold m.det.
func (m *Manager) cycleFromLocked(start TxnID) bool {
	seen := make(map[TxnID]bool)
	var dfs func(t TxnID) bool
	dfs = func(t TxnID) bool {
		if t == start && len(seen) > 0 {
			return true
		}
		if seen[t] {
			return false
		}
		seen[t] = true
		for next := range m.det.waitFor[t] {
			if dfs(next) {
				return true
			}
		}
		return false
	}
	for next := range m.det.waitFor[start] {
		if dfs(next) {
			return true
		}
	}
	return false
}

func removeGrant(ls *lockState, txn TxnID) {
	out := ls.granted[:0]
	for _, g := range ls.granted {
		if g.txn == txn {
			continue
		}
		out = append(out, g)
	}
	ls.granted = out
}

// promote grants FIFO waiters until the first one that conflicts with the
// (growing) granted group. Granting a waiting upgrade first retires the
// transaction's old shared grant. Emptied states return to the pool.
// Callers hold s.mu.
func (s *stripe) promote(key Key, ls *lockState) {
	for len(ls.waiters) > 0 {
		r := ls.waiters[0]
		if !compatibleWithGranted(ls, r.txn, r.mode) {
			// FIFO: stop at the first ungrantable waiter.
			break
		}
		// Retire an old grant of the same transaction (upgrade).
		removeGrant(ls, r.txn)
		ls.granted = append(ls.granted, grant{txn: r.txn, mode: r.mode})
		s.acquired++
		copy(ls.waiters, ls.waiters[1:])
		ls.waiters = ls.waiters[:len(ls.waiters)-1]
		// The waiter finishes bookkeeping in Acquire.
		r.ready <- nil
	}
	if len(ls.granted) == 0 && len(ls.waiters) == 0 {
		delete(s.locks, key)
		s.freeLockState(ls)
	}
}

// ReleaseAll drops every lock txn holds and cancels its waits (strict 2PL
// release at commit or abort).
func (m *Manager) ReleaseAll(txn TxnID) {
	m.det.Lock()
	delete(m.det.waitFor, txn)
	m.det.Unlock()

	ts := m.txnShardOf(txn)
	ts.mu.Lock()
	key, waiting := ts.waitKey[txn]
	if waiting {
		delete(ts.waitKey, txn)
	}
	tl := ts.held[txn]
	if tl != nil {
		delete(ts.held, txn)
	}
	ts.mu.Unlock()

	// Cancel an in-flight wait (possible after a deadlock abort racing
	// with a grant). The waitKey index makes this O(1) instead of a
	// whole-table scan.
	if waiting {
		st := m.stripeOf(key)
		st.mu.Lock()
		if ls := st.locks[key]; ls != nil {
			for i, r := range ls.waiters {
				if r.txn == txn {
					ls.waiters = append(ls.waiters[:i], ls.waiters[i+1:]...)
					r.ready <- errCancelled
					break
				}
			}
			st.promote(key, ls)
		}
		st.mu.Unlock()
	}
	if tl == nil {
		return
	}
	for _, h := range tl.keys {
		st := m.stripeOf(h.key)
		st.mu.Lock()
		if ls := st.locks[h.key]; ls != nil {
			removeGrant(ls, txn)
			st.promote(h.key, ls)
		}
		st.mu.Unlock()
	}
	tl.keys = tl.keys[:0]
	ts.mu.Lock()
	ts.tlFree = append(ts.tlFree, tl)
	ts.mu.Unlock()
}
