// Package lock implements a strict two-phase-locking row lock manager with
// shared/exclusive modes, lock upgrade, and deadlock detection via a
// wait-for graph (victims get ErrDeadlock and are expected to abort and
// retry — the engine's transaction layer does this).
//
// The throughput model charges 1K instructions per lock released at commit
// (Section 5.1); this manager is the executable counterpart whose lock
// counts can be compared against the model's Table 4 lock visit counts.
package lock

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// Mode is a lock mode.
type Mode uint8

// Lock modes.
const (
	Shared Mode = iota
	Exclusive
)

// String names the mode.
func (m Mode) String() string {
	if m == Shared {
		return "S"
	}
	return "X"
}

// Key identifies a lockable resource: a table and a packed row key.
type Key struct {
	Table uint32
	Row   uint64
}

// String renders the key.
func (k Key) String() string { return fmt.Sprintf("t%d/%d", k.Table, k.Row) }

// ErrDeadlock is returned to the transaction chosen as the deadlock victim.
var ErrDeadlock = errors.New("lock: deadlock detected")

// ErrTimeout is returned when a bounded wait expires. It matches
// ErrDeadlock under errors.Is, because a timeout is how cross-engine
// deadlocks surface: each engine's wait-for graph is local, so a cycle
// spanning two engines (a distributed transaction holding locks on both)
// is invisible to either detector and can only be broken by timing the
// wait out and aborting, exactly like a deadlock victim.
var ErrTimeout = fmt.Errorf("lock: wait timed out: %w", ErrDeadlock)

// TxnID identifies a transaction.
type TxnID uint64

type request struct {
	txn  TxnID
	mode Mode
	// granted marks requests in the granted group; waiters follow in
	// FIFO order.
	granted bool
	ready   chan error
}

type lockState struct {
	queue []*request
}

// Manager is the lock manager. All methods are safe for concurrent use.
type Manager struct {
	mu    sync.Mutex
	locks map[Key]*lockState
	// held[txn] is the set of keys the transaction holds or waits on.
	held map[TxnID]map[Key]Mode
	// waitFor[a] = set of txns a is waiting on (for cycle detection).
	waitFor map[TxnID]map[TxnID]struct{}

	// waitTimeout bounds every wait; 0 waits forever.
	waitTimeout time.Duration

	acquired  int64
	waits     int64
	deadlocks int64
	timeouts  int64
}

// NewManager creates an empty lock manager.
func NewManager() *Manager {
	return &Manager{
		locks:   make(map[Key]*lockState),
		held:    make(map[TxnID]map[Key]Mode),
		waitFor: make(map[TxnID]map[TxnID]struct{}),
	}
}

// Counts returns total grants, waits, and deadlocks observed.
func (m *Manager) Counts() (acquired, waits, deadlocks int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.acquired, m.waits, m.deadlocks
}

// Timeouts returns the number of waits that expired (SetWaitTimeout).
func (m *Manager) Timeouts() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.timeouts
}

// SetWaitTimeout bounds every lock wait; 0 (the default) waits forever.
// Expired waits fail with ErrTimeout, which transaction layers handle as
// a deadlock abort. Distributed execution requires a bound: cross-engine
// wait cycles never appear in any single wait-for graph.
func (m *Manager) SetWaitTimeout(d time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.waitTimeout = d
}

// HeldBy returns the number of locks txn currently holds.
func (m *Manager) HeldBy(txn TxnID) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.held[txn])
}

func compatible(a, b Mode) bool { return a == Shared && b == Shared }

// grantable reports whether a request by txn for mode can join the granted
// group of ls (ignoring txn's own existing grant, which is an upgrade).
func grantable(ls *lockState, txn TxnID, mode Mode) bool {
	for _, r := range ls.queue {
		if !r.granted {
			// FIFO fairness: a new request must also wait behind
			// existing waiters unless it is an upgrade.
			if r.txn != txn {
				return false
			}
			continue
		}
		if r.txn == txn {
			continue
		}
		if !compatible(r.mode, mode) {
			return false
		}
	}
	return true
}

// Acquire takes key in mode for txn, blocking while incompatible locks are
// held. A Shared request by a holder of Exclusive is a no-op; a Exclusive
// request by a holder of Shared is an upgrade. Returns ErrDeadlock if
// waiting would close a cycle in the wait-for graph.
func (m *Manager) Acquire(txn TxnID, key Key, mode Mode) error {
	m.mu.Lock()
	ls := m.locks[key]
	if ls == nil {
		ls = &lockState{}
		m.locks[key] = ls
	}

	// Re-entrant cases.
	isUpgrade := false
	if cur, ok := m.heldMode(txn, key); ok {
		if cur == Exclusive || mode == Shared {
			m.mu.Unlock()
			return nil
		}
		// Upgrade S -> X. The shared grant is KEPT while waiting (2PL:
		// dropping it would let a writer slip between the read and the
		// write); it is replaced in place once the upgrade is granted.
		// Upgrades have priority over plain waiters; two simultaneous
		// upgrades deadlock and one is aborted.
		isUpgrade = true
	}

	req := &request{txn: txn, mode: mode, ready: make(chan error, 1)}
	can := grantable(ls, txn, mode)
	if isUpgrade {
		can = compatibleWithGranted(ls, txn, mode)
	}
	if can {
		if isUpgrade {
			m.removeGrant(ls, txn)
		}
		req.granted = true
		ls.queue = append(ls.queue, req)
		m.noteHeld(txn, key, mode)
		m.acquired++
		m.mu.Unlock()
		return nil
	}

	// Must wait: record wait-for edges and check for a cycle. An
	// upgrade waits only on the granted group; a plain request also
	// waits on the waiters queued ahead of it.
	blockers := make(map[TxnID]struct{})
	for _, r := range ls.queue {
		if r.txn == txn {
			continue
		}
		if r.granted || !isUpgrade {
			blockers[r.txn] = struct{}{}
		}
	}
	m.waitFor[txn] = blockers
	if m.cycleFrom(txn) {
		delete(m.waitFor, txn)
		m.deadlocks++
		m.mu.Unlock()
		return ErrDeadlock
	}
	if isUpgrade {
		// Insert the upgrade ahead of plain waiters.
		pos := 0
		for pos < len(ls.queue) && ls.queue[pos].granted {
			pos++
		}
		ls.queue = append(ls.queue, nil)
		copy(ls.queue[pos+1:], ls.queue[pos:])
		ls.queue[pos] = req
	} else {
		ls.queue = append(ls.queue, req)
	}
	m.waits++
	timeout := m.waitTimeout
	m.mu.Unlock()

	var err error
	if timeout > 0 {
		t := time.NewTimer(timeout)
		select {
		case err = <-req.ready:
			t.Stop()
		case <-t.C:
			err = m.expireWait(txn, key, req)
		}
	} else {
		err = <-req.ready
	}
	if err == nil {
		m.mu.Lock()
		m.noteHeld(txn, key, mode)
		m.acquired++
		delete(m.waitFor, txn)
		m.mu.Unlock()
	}
	return err
}

// expireWait removes a timed-out waiter from the queue. It races against
// a concurrent grant (promote) or cancellation (ReleaseAll): both resolve
// req.ready while holding m.mu, so under the mutex either the request is
// still queued ungranted — remove it and fail with ErrTimeout — or its
// outcome is already in the buffered channel and the timeout loses.
func (m *Manager) expireWait(txn TxnID, key Key, req *request) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	select {
	case err := <-req.ready:
		return err
	default:
	}
	ls := m.locks[key]
	if ls != nil {
		for i, r := range ls.queue {
			if r == req {
				ls.queue = append(ls.queue[:i], ls.queue[i+1:]...)
				break
			}
		}
	}
	delete(m.waitFor, txn)
	m.timeouts++
	if ls != nil {
		m.promote(key, ls)
	}
	return ErrTimeout
}

// cycleFrom reports whether the wait-for graph has a cycle reachable from
// start (DFS).
func (m *Manager) cycleFrom(start TxnID) bool {
	seen := make(map[TxnID]bool)
	var dfs func(t TxnID) bool
	dfs = func(t TxnID) bool {
		if t == start && len(seen) > 0 {
			return true
		}
		if seen[t] {
			return false
		}
		seen[t] = true
		for next := range m.waitFor[t] {
			if dfs(next) {
				return true
			}
		}
		return false
	}
	for next := range m.waitFor[start] {
		if dfs(next) {
			return true
		}
	}
	return false
}

func (m *Manager) heldMode(txn TxnID, key Key) (Mode, bool) {
	if hs, ok := m.held[txn]; ok {
		mode, ok := hs[key]
		return mode, ok
	}
	return 0, false
}

func (m *Manager) noteHeld(txn TxnID, key Key, mode Mode) {
	hs := m.held[txn]
	if hs == nil {
		hs = make(map[Key]Mode)
		m.held[txn] = hs
	}
	hs[key] = mode
}

func (m *Manager) removeGrant(ls *lockState, txn TxnID) {
	out := ls.queue[:0]
	for _, r := range ls.queue {
		if r.granted && r.txn == txn {
			continue
		}
		out = append(out, r)
	}
	ls.queue = out
}

// compatibleWithGranted reports whether a request by txn for mode
// conflicts with no currently granted lock of another transaction.
func compatibleWithGranted(ls *lockState, txn TxnID, mode Mode) bool {
	for _, r := range ls.queue {
		if r.granted && r.txn != txn && !compatible(r.mode, mode) {
			return false
		}
	}
	return true
}

// promote grants FIFO waiters until the first one that conflicts with the
// (growing) granted group. Granting a waiting upgrade first retires the
// transaction's old shared grant.
func (m *Manager) promote(key Key, ls *lockState) {
	for i := 0; i < len(ls.queue); i++ {
		r := ls.queue[i]
		if r.granted {
			continue
		}
		if compatibleWithGranted(ls, r.txn, r.mode) {
			// Retire an old grant of the same transaction (upgrade).
			for j := 0; j < len(ls.queue); j++ {
				if ls.queue[j].granted && ls.queue[j].txn == r.txn {
					ls.queue = append(ls.queue[:j], ls.queue[j+1:]...)
					if j < i {
						i--
					}
					j--
				}
			}
			r.granted = true
			// The waiter finishes bookkeeping in Acquire.
			r.ready <- nil
		} else {
			// FIFO: stop at the first ungrantable waiter.
			break
		}
	}
	if len(ls.queue) == 0 {
		delete(m.locks, key)
	}
}

// ReleaseAll drops every lock txn holds and cancels its waits (strict 2PL
// release at commit or abort).
func (m *Manager) ReleaseAll(txn TxnID) {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.waitFor, txn)
	for key := range m.held[txn] {
		if ls := m.locks[key]; ls != nil {
			m.removeGrant(ls, txn)
			m.promote(key, ls)
		}
	}
	delete(m.held, txn)
	// Cancel any in-flight waits (possible after a deadlock abort racing
	// with a grant).
	for key, ls := range m.locks {
		out := ls.queue[:0]
		for _, r := range ls.queue {
			if r.txn == txn && !r.granted {
				r.ready <- errors.New("lock: wait cancelled")
				continue
			}
			out = append(out, r)
		}
		ls.queue = out
		m.promote(key, ls)
	}
}
