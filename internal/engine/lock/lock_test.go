package lock

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"tpccmodel/internal/rng"
)

func k(row uint64) Key { return Key{Table: 1, Row: row} }

func TestSharedCompatible(t *testing.T) {
	m := NewManager()
	if err := m.Acquire(1, k(10), Shared); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- m.Acquire(2, k(10), Shared) }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(time.Second):
		t.Fatal("S+S should not block")
	}
	if m.HeldBy(1) != 1 || m.HeldBy(2) != 1 {
		t.Error("both txns should hold the lock")
	}
}

func TestExclusiveBlocks(t *testing.T) {
	m := NewManager()
	if err := m.Acquire(1, k(10), Exclusive); err != nil {
		t.Fatal(err)
	}
	acquired := make(chan struct{})
	go func() {
		m.Acquire(2, k(10), Exclusive)
		close(acquired)
	}()
	select {
	case <-acquired:
		t.Fatal("X should block behind X")
	case <-time.After(50 * time.Millisecond):
	}
	m.ReleaseAll(1)
	select {
	case <-acquired:
	case <-time.After(time.Second):
		t.Fatal("waiter never granted after release")
	}
}

func TestReentrantAndNoOpDowngrade(t *testing.T) {
	m := NewManager()
	if err := m.Acquire(1, k(5), Exclusive); err != nil {
		t.Fatal(err)
	}
	// Re-acquiring in any mode while holding X is a no-op.
	if err := m.Acquire(1, k(5), Shared); err != nil {
		t.Fatal(err)
	}
	if err := m.Acquire(1, k(5), Exclusive); err != nil {
		t.Fatal(err)
	}
	if m.HeldBy(1) != 1 {
		t.Errorf("HeldBy = %d, want 1", m.HeldBy(1))
	}
}

func TestUpgrade(t *testing.T) {
	m := NewManager()
	if err := m.Acquire(1, k(5), Shared); err != nil {
		t.Fatal(err)
	}
	if err := m.Acquire(1, k(5), Exclusive); err != nil {
		t.Fatal(err)
	}
	// Now exclusive: another S must block.
	blocked := make(chan struct{})
	go func() {
		m.Acquire(2, k(5), Shared)
		close(blocked)
	}()
	select {
	case <-blocked:
		t.Fatal("S should block behind upgraded X")
	case <-time.After(50 * time.Millisecond):
	}
	m.ReleaseAll(1)
	<-blocked
}

func TestDeadlockDetected(t *testing.T) {
	m := NewManager()
	if err := m.Acquire(1, k(1), Exclusive); err != nil {
		t.Fatal(err)
	}
	if err := m.Acquire(2, k(2), Exclusive); err != nil {
		t.Fatal(err)
	}
	// Txn 1 waits for k2 (held by 2).
	errs := make(chan error, 1)
	go func() { errs <- m.Acquire(1, k(2), Exclusive) }()
	time.Sleep(50 * time.Millisecond)
	// Txn 2 requesting k1 closes the cycle: it must get ErrDeadlock.
	err := m.Acquire(2, k(1), Exclusive)
	if err != ErrDeadlock {
		t.Fatalf("expected ErrDeadlock, got %v", err)
	}
	// Victim aborts, releasing its locks; txn 1 proceeds.
	m.ReleaseAll(2)
	select {
	case err := <-errs:
		if err != nil {
			t.Fatalf("txn 1 acquire failed: %v", err)
		}
	case <-time.After(time.Second):
		t.Fatal("txn 1 never unblocked after victim release")
	}
	_, _, deadlocks := m.Counts()
	if deadlocks != 1 {
		t.Errorf("deadlocks = %d", deadlocks)
	}
}

func TestUpgradeDeadlockDetected(t *testing.T) {
	m := NewManager()
	m.Acquire(1, k(7), Shared)
	m.Acquire(2, k(7), Shared)
	errs := make(chan error, 1)
	go func() { errs <- m.Acquire(1, k(7), Exclusive) }()
	time.Sleep(50 * time.Millisecond)
	err := m.Acquire(2, k(7), Exclusive)
	if err != ErrDeadlock {
		t.Fatalf("upgrade-upgrade should deadlock, got %v", err)
	}
	m.ReleaseAll(2)
	if err := <-errs; err != nil {
		t.Fatalf("survivor upgrade failed: %v", err)
	}
}

func TestReleaseAllPromotesWaiters(t *testing.T) {
	m := NewManager()
	m.Acquire(1, k(1), Exclusive)
	var granted int32
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(id TxnID) {
			defer wg.Done()
			if err := m.Acquire(id, k(1), Shared); err == nil {
				atomic.AddInt32(&granted, 1)
			}
		}(TxnID(10 + i))
	}
	time.Sleep(50 * time.Millisecond)
	m.ReleaseAll(1)
	wg.Wait()
	if granted != 3 {
		t.Errorf("granted %d shared waiters, want 3 (compatible group)", granted)
	}
}

// TestConcurrentStress runs many goroutine transactions over a small hot
// key set, aborting on deadlock, and verifies mutual exclusion with a
// shadow counter protected only by the lock manager.
func TestConcurrentStress(t *testing.T) {
	m := NewManager()
	counters := make([]int64, 8)
	var txnSeq uint64
	var wg sync.WaitGroup
	var committed int64
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			r := rng.New(seed)
			for i := 0; i < 300; i++ {
				txn := TxnID(atomic.AddUint64(&txnSeq, 1))
				row := uint64(r.Int63n(8))
				ok := true
				if err := m.Acquire(txn, k(row), Exclusive); err != nil {
					ok = false
				}
				var other uint64
				if ok {
					counters[row]++
					other = uint64(r.Int63n(8))
					if err := m.Acquire(txn, k(other), Exclusive); err != nil {
						// Deadlock victim: undo and abort.
						counters[row]--
						ok = false
					}
				}
				if ok {
					counters[other]++
					atomic.AddInt64(&committed, 1)
				}
				m.ReleaseAll(txn)
			}
		}(uint64(g + 1))
	}
	wg.Wait()
	var total int64
	for _, c := range counters {
		total += c
	}
	if total != 2*committed {
		t.Errorf("counter total %d != 2x committed %d (lost update => broken mutual exclusion)",
			total, committed)
	}
	if committed == 0 {
		t.Error("no transaction ever committed")
	}
}
