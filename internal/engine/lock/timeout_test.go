package lock

import (
	"errors"
	"sync"
	"testing"
	"time"
)

// TestWaitTimeout: a bounded wait on a held exclusive lock expires with
// ErrTimeout, which matches ErrDeadlock (the transaction layer's retry
// signal), and the waiter is cleanly removed from the queue.
func TestWaitTimeout(t *testing.T) {
	m := NewManager()
	m.SetWaitTimeout(5 * time.Millisecond)
	k := Key{Table: 1, Row: 7}
	if err := m.Acquire(1, k, Exclusive); err != nil {
		t.Fatal(err)
	}
	err := m.Acquire(2, k, Exclusive)
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
	if !errors.Is(err, ErrDeadlock) {
		t.Fatal("ErrTimeout must match ErrDeadlock for the abort/retry path")
	}
	if n := m.Timeouts(); n != 1 {
		t.Errorf("timeouts = %d, want 1", n)
	}
	// The queue must be clean: releasing txn 1 leaves the key free.
	m.ReleaseAll(1)
	if err := m.Acquire(3, k, Exclusive); err != nil {
		t.Fatalf("lock not free after timeout cleanup: %v", err)
	}
	m.ReleaseAll(3)
}

// TestWaitTimeoutRacesGrant hammers timeout-vs-release races: holders
// release just around the timeout bound. Every waiter must end up either
// granted (and then must release) or timed out — never stuck, and the
// manager must end empty.
func TestWaitTimeoutRacesGrant(t *testing.T) {
	m := NewManager()
	m.SetWaitTimeout(time.Millisecond)
	k := Key{Table: 2, Row: 9}
	var wg sync.WaitGroup
	for i := 0; i < 50; i++ {
		id := TxnID(i + 1)
		wg.Add(1)
		go func() {
			defer wg.Done()
			err := m.Acquire(id, k, Exclusive)
			if err == nil {
				time.Sleep(200 * time.Microsecond)
				m.ReleaseAll(id)
				return
			}
			if !errors.Is(err, ErrDeadlock) {
				t.Errorf("txn %d: unexpected error %v", id, err)
			}
			m.ReleaseAll(id)
		}()
	}
	wg.Wait()
	if err := m.Acquire(999, k, Exclusive); err != nil {
		t.Fatalf("key not free after race storm: %v", err)
	}
	m.ReleaseAll(999)
}

// TestNoTimeoutByDefault: the zero value waits as long as it takes.
func TestNoTimeoutByDefault(t *testing.T) {
	m := NewManager()
	k := Key{Table: 3, Row: 1}
	if err := m.Acquire(1, k, Exclusive); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- m.Acquire(2, k, Exclusive) }()
	time.Sleep(10 * time.Millisecond)
	select {
	case err := <-done:
		t.Fatalf("waiter finished early: %v", err)
	default:
	}
	m.ReleaseAll(1)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	m.ReleaseAll(2)
}

// TestUpgradeTimeoutKeepsSharedGrant: a timed-out upgrade abandons only
// the waiting X request; the original shared grant stays held until the
// transaction releases.
func TestUpgradeTimeoutKeepsSharedGrant(t *testing.T) {
	m := NewManager()
	m.SetWaitTimeout(2 * time.Millisecond)
	k := Key{Table: 4, Row: 5}
	if err := m.Acquire(1, k, Shared); err != nil {
		t.Fatal(err)
	}
	if err := m.Acquire(2, k, Shared); err != nil {
		t.Fatal(err)
	}
	// Txn 1's upgrade blocks on txn 2's shared grant and times out.
	if err := m.Acquire(1, k, Exclusive); !errors.Is(err, ErrTimeout) {
		t.Fatalf("upgrade err = %v, want ErrTimeout", err)
	}
	// Txn 1 still holds S: a third writer cannot get X while 1 and 2 hold.
	if err := m.Acquire(3, k, Exclusive); !errors.Is(err, ErrTimeout) {
		t.Fatalf("writer err = %v, want ErrTimeout while S locks held", err)
	}
	m.ReleaseAll(1)
	m.ReleaseAll(2)
	if err := m.Acquire(3, k, Exclusive); err != nil {
		t.Fatalf("key not free after releases: %v", err)
	}
	m.ReleaseAll(3)
}
