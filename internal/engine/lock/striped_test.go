package lock

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"tpccmodel/internal/rng"
)

// schedDriver drives one Manager through a seeded request schedule and
// records every outcome. Transactions run on their own goroutines (Acquire
// blocks), but the driver serializes issuance: it sends one op, then spins
// until the op either completes (result flag) or parks as a waiter (the
// stripe waits counter — bumped under the stripe mutex before the request
// sleeps — moves). Grants released by a ReleaseAll are collected by exact
// count: promote() runs inside ReleaseAll and bumps the acquired counter
// per granted waiter, so the acquired delta across the call says how many
// completion flags to wait for. Every observation point is therefore
// deterministic, which is what lets two managers' logs be compared
// line for line.
type schedDriver struct {
	m       *Manager
	ops     []chan schedOp
	results []chan string // per-txn outcome of the op in flight
	blocked []bool
	pending []int // log index of the blocked op, -1 when none
	log     []string
	wg      sync.WaitGroup
	flags   []atomic.Int32
}

type schedOp struct {
	release bool
	key     Key
	mode    Mode
}

func newSchedDriver(m *Manager, txns int) *schedDriver {
	d := &schedDriver{
		m:       m,
		ops:     make([]chan schedOp, txns),
		results: make([]chan string, txns),
		blocked: make([]bool, txns),
		pending: make([]int, txns),
		flags:   make([]atomic.Int32, txns),
	}
	for i := range d.ops {
		d.ops[i] = make(chan schedOp)
		d.results[i] = make(chan string, 1)
		d.pending[i] = -1
		d.wg.Add(1)
		go d.txnLoop(i)
	}
	return d
}

func (d *schedDriver) txnLoop(i int) {
	defer d.wg.Done()
	txn := TxnID(i + 1)
	for op := range d.ops[i] {
		if op.release {
			d.m.ReleaseAll(txn)
			d.results[i] <- "released"
			d.flags[i].Store(1)
			continue
		}
		err := d.m.Acquire(txn, op.key, op.mode)
		switch {
		case err == nil:
			d.results[i] <- "grant"
		case errors.Is(err, ErrDeadlock):
			d.results[i] <- "deadlock"
		default:
			d.results[i] <- fmt.Sprintf("error:%v", err)
		}
		d.flags[i].Store(1)
	}
}

func (d *schedDriver) waitsTotal() int64 {
	_, w, _ := d.m.Counts()
	return w
}

func (d *schedDriver) acquiredTotal() int64 {
	a, _, _ := d.m.Counts()
	return a
}

// issue sends op to txn i and records its outcome — "wait" if it parked.
func (d *schedDriver) issue(i int, op schedOp) {
	baseWaits := d.waitsTotal()
	baseAcquired := d.acquiredTotal()
	d.flags[i].Store(0)
	d.ops[i] <- op
	for {
		if d.flags[i].Load() != 0 {
			res := <-d.results[i]
			if op.release {
				// promote() ran inside ReleaseAll; collect the txns it woke.
				woken := d.collect(int(d.acquiredTotal() - baseAcquired))
				res = fmt.Sprintf("released woke=%v", woken)
			}
			d.log = append(d.log, fmt.Sprintf("txn%d %s -> %s", i+1, opString(op), res))
			return
		}
		if d.waitsTotal() > baseWaits {
			d.blocked[i] = true
			d.pending[i] = len(d.log)
			d.log = append(d.log, fmt.Sprintf("txn%d %s -> wait", i+1, opString(op)))
			return
		}
		runtime.Gosched()
	}
}

// collect waits for exactly n parked transactions to finish their granted
// Acquire, patches their log lines with the outcome, and unblocks them.
// The set of woken transactions is determined by the manager (FIFO
// promote); only the observation is asynchronous.
func (d *schedDriver) collect(n int) []int {
	var woken []int
	for len(woken) < n {
		progressed := false
		for i := range d.flags {
			if d.blocked[i] && d.flags[i].Load() != 0 {
				res := <-d.results[i]
				d.log[d.pending[i]] += " ... " + res
				d.blocked[i] = false
				d.pending[i] = -1
				woken = append(woken, i+1)
				progressed = true
			}
		}
		if !progressed {
			runtime.Gosched()
		}
	}
	// The woken SET is deterministic; the observation order is not.
	sort.Ints(woken)
	return woken
}

func opString(op schedOp) string {
	if op.release {
		return "release"
	}
	return fmt.Sprintf("acq %v %v", op.key, op.mode)
}

// run plays a seeded schedule: steps random ops over a deliberately tiny
// key space (to force conflicts, upgrades, and deadlocks), then drains —
// releasing unparked transactions until every waiter has been granted and
// released. The same seed yields the same schedule on any manager because
// op choice depends only on the (deterministic) blocked set.
func runLockSchedule(m *Manager, seed uint64, steps int) []string {
	const txns = 8
	r := rng.New(seed)
	d := newSchedDriver(m, txns)
	for s := 0; s < steps; s++ {
		// Pick an unblocked transaction (one always exists: a universal
		// wait would be a cycle, and cycles are killed at creation).
		var free []int
		for i := 0; i < txns; i++ {
			if !d.blocked[i] {
				free = append(free, i)
			}
		}
		i := free[r.Int63n(int64(len(free)))]
		if r.Bernoulli(0.15) {
			d.issue(i, schedOp{release: true})
			continue
		}
		key := Key{Table: uint32(1 + r.Int63n(2)), Row: uint64(r.Int63n(6))}
		mode := Shared
		if r.Bernoulli(0.5) {
			mode = Exclusive
		}
		d.issue(i, schedOp{key: key, mode: mode})
	}
	// Drain: release the unparked until nobody waits, then release those.
	for {
		anyBlocked := false
		for i := 0; i < txns; i++ {
			if d.blocked[i] {
				anyBlocked = true
			}
		}
		if !anyBlocked {
			break
		}
		for i := 0; i < txns; i++ {
			if !d.blocked[i] {
				d.issue(i, schedOp{release: true})
			}
		}
	}
	for i := 0; i < txns; i++ {
		d.issue(i, schedOp{release: true})
	}
	for i := range d.ops {
		close(d.ops[i])
	}
	d.wg.Wait()
	acq, waits, deadlocks := m.Counts()
	d.log = append(d.log, fmt.Sprintf("totals acquired=%d waits=%d deadlocks=%d", acq, waits, deadlocks))
	return d.log
}

// TestStripedDifferential replays identical seeded request schedules
// against the single-table manager (stripes=1 — structurally the seed
// implementation) and the striped one: every grant, wait, wake set, and
// deadlock victim must match. Victim choice is the one policy knob — the
// requester whose edge closes the cycle is killed — and it is
// stripe-independent, so the logs must be equal line for line.
func TestStripedDifferential(t *testing.T) {
	for _, seed := range []uint64{1, 42, 1993, 77} {
		single := runLockSchedule(NewManagerStripes(1), seed, 400)
		striped := runLockSchedule(NewManagerStripes(64), seed, 400)
		if len(single) != len(striped) {
			t.Fatalf("seed %d: log lengths differ: %d vs %d", seed, len(single), len(striped))
		}
		for i := range single {
			if single[i] != striped[i] {
				t.Fatalf("seed %d: schedules diverge at op %d:\n  single:  %s\n  striped: %s",
					seed, i, single[i], striped[i])
			}
		}
	}
}

// differentStripeRows returns rows whose keys land in n distinct stripes.
func differentStripeRows(m *Manager, table uint32, n int) []uint64 {
	var rows []uint64
	seen := map[*stripe]bool{}
	for row := uint64(0); len(rows) < n; row++ {
		s := m.stripeOf(Key{Table: table, Row: row})
		if !seen[s] {
			seen[s] = true
			rows = append(rows, row)
		}
	}
	return rows
}

// TestCrossStripeDeadlock builds a deadlock cycle whose keys live in
// distinct stripes, so detection cannot work by inspecting any one stripe:
// it must see the cross-stripe wait-for graph. Run with -race this also
// exercises the stripe->detector lock nesting under concurrency.
func TestCrossStripeDeadlock(t *testing.T) {
	m := NewManagerStripes(64)
	rows := differentStripeRows(m, 1, 3)
	keys := []Key{
		{Table: 1, Row: rows[0]},
		{Table: 1, Row: rows[1]},
		{Table: 1, Row: rows[2]},
	}
	// Each txn holds key[i], then requests key[(i+1)%3]: a 3-cycle
	// spanning 3 stripes. The last requester to close the cycle dies.
	for i := 0; i < 3; i++ {
		if err := m.Acquire(TxnID(i+1), keys[i], Exclusive); err != nil {
			t.Fatal(err)
		}
	}
	errs := make(chan error, 3)
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			err := m.Acquire(TxnID(i+1), keys[(i+1)%3], Exclusive)
			errs <- err
			if errors.Is(err, ErrDeadlock) {
				m.ReleaseAll(TxnID(i + 1))
			}
		}()
	}
	var deadlocks, grants int
	for i := 0; i < 3; i++ {
		select {
		case err := <-errs:
			switch {
			case err == nil:
				grants++
				// A granted requester eventually releases so the rest of
				// the cycle can drain.
			case errors.Is(err, ErrDeadlock):
				deadlocks++
			default:
				t.Fatalf("unexpected error: %v", err)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("cross-stripe deadlock not detected: %d grants, %d deadlocks so far", grants, deadlocks)
		}
		// Whichever txns hold grants must release for waiters to drain.
		for id := TxnID(1); id <= 3; id++ {
			if m.HeldBy(id) == 2 { // holds its own key and its neighbour's
				m.ReleaseAll(id)
			}
		}
	}
	wg.Wait()
	if deadlocks == 0 {
		t.Fatal("no deadlock detected in a cross-stripe cycle")
	}
	if _, _, dl := m.Counts(); dl != int64(deadlocks) {
		t.Errorf("deadlock counter %d does not match observed %d", dl, deadlocks)
	}
	// Drain everything; the table must end empty.
	for id := TxnID(1); id <= 3; id++ {
		m.ReleaseAll(id)
	}
	for id := TxnID(1); id <= 3; id++ {
		if n := m.HeldBy(id); n != 0 {
			t.Errorf("txn %d still holds %d locks after ReleaseAll", id, n)
		}
	}
}
