// Package storage provides the engine's lowest layer: an in-memory page
// store standing in for a disk, and slotted heap files of fixed-length
// records on top of it.
//
// The paper is a modeling study and never built a system; this engine is
// the substrate it models — a page-based storage manager whose buffer
// behaviour can be measured and cross-validated against the trace-driven
// simulation. The "disk" is a page map with explicit flush semantics so
// crash/recovery can be exercised deterministically.
package storage

import (
	"fmt"
	"sync"
)

// PageID identifies a page in the store. IDs are allocated densely from 0.
type PageID uint64

// InvalidPage is the zero-value sentinel for "no page".
const InvalidPage = PageID(^uint64(0))

// Store is the simulated disk: a set of pages with copy-on-flush
// semantics. Reads return the durable image; writes happen only through
// Flush (the buffer manager owns the volatile images). All methods are
// safe for concurrent use.
type Store struct {
	mu       sync.RWMutex
	pageSize int
	pages    map[PageID][]byte
	next     PageID
	reads    int64
	writes   int64
}

// NewStore creates a store with the given page size.
func NewStore(pageSize int) *Store {
	if pageSize <= 0 {
		panic("storage: page size must be positive")
	}
	return &Store{pageSize: pageSize, pages: make(map[PageID][]byte)}
}

// PageSize returns the page size in bytes.
func (s *Store) PageSize() int { return s.pageSize }

// Allocate creates a new zeroed page and returns its ID.
func (s *Store) Allocate() PageID {
	s.mu.Lock()
	defer s.mu.Unlock()
	id := s.next
	s.next++
	s.pages[id] = make([]byte, s.pageSize)
	return id
}

// Read copies the durable image of page id into buf (len must equal the
// page size). It counts as one physical read.
func (s *Store) Read(id PageID, buf []byte) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	p, ok := s.pages[id]
	if !ok {
		return fmt.Errorf("storage: read of unallocated page %d", id)
	}
	if len(buf) != s.pageSize {
		return fmt.Errorf("storage: read buffer is %d bytes, want %d", len(buf), s.pageSize)
	}
	copy(buf, p)
	s.reads++
	return nil
}

// Flush makes buf the durable image of page id. It counts as one physical
// write.
func (s *Store) Flush(id PageID, buf []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	p, ok := s.pages[id]
	if !ok {
		return fmt.Errorf("storage: flush of unallocated page %d", id)
	}
	if len(buf) != s.pageSize {
		return fmt.Errorf("storage: flush buffer is %d bytes, want %d", len(buf), s.pageSize)
	}
	copy(p, buf)
	s.writes++
	return nil
}

// Pages returns the number of allocated pages.
func (s *Store) Pages() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return int64(len(s.pages))
}

// IOCounts returns the physical read and write counts.
func (s *Store) IOCounts() (reads, writes int64) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.reads, s.writes
}
