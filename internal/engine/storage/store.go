// Package storage provides the engine's lowest layer: an in-memory page
// device standing in for a disk, and slotted heap files of fixed-length
// records on top of it.
//
// The paper is a modeling study and never built a system; this engine is
// the substrate it models — a page-based storage manager whose buffer
// behaviour can be measured and cross-validated against the trace-driven
// simulation. The "disk" is a page device with explicit flush semantics so
// crash/recovery can be exercised deterministically, and the device
// boundary (DiskIO) is injectable so the fault package can subject the
// engine to torn writes, bit flips, and power loss.
//
// Every durable page image carries a CRC32-C trailer, and each flush
// writes the journal mirror before the in-place copy. A write torn by
// power loss therefore fails its checksum and is repaired from whichever
// copy survived intact; corruption that defeats both copies is detected
// and reported, never silently served.
package storage

import (
	"errors"
	"fmt"
	"hash/crc32"
	"sync"
	"sync/atomic"
)

// PageID identifies a page in the store. IDs are allocated densely from 0.
type PageID uint64

// InvalidPage is the zero-value sentinel for "no page".
const InvalidPage = PageID(^uint64(0))

// ChecksumLen is the per-page checksum trailer the Store appends to every
// physical image: a physical image is PageSize+ChecksumLen bytes. It lives
// outside the logical page, so heap layout and the paper's tuples-per-page
// accounting are unaffected.
const ChecksumLen = 4

const crcTrailer = ChecksumLen

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// StoreStats counts physical I/O and integrity events.
type StoreStats struct {
	Reads    int64
	Writes   int64
	Detected int64 // checksum mismatches observed on the primary copy
	Repaired int64 // pages served (and rewritten) from the journal mirror
}

// Store is the simulated disk seen by the buffer manager: checksummed
// pages over a DiskIO device with copy-on-flush semantics. Reads return
// the durable image; writes happen only through Flush (the buffer manager
// owns the volatile images). All methods are safe for concurrent use.
//
// Page I/O takes the mutex SHARED: the device is internally synchronized,
// the counters are atomics, and the physical-image scratch comes from a
// pool, so reads and flushes of different pages proceed in parallel (the
// partitioned buffer pool issues them from independent partition locks).
// Only Allocate, which extends the page address space, is exclusive.
// Concurrent Read/Flush of the SAME page are the caller's to serialize —
// the buffer manager does, because a page lives in exactly one partition
// and its miss-reads and write-backs run under that partition's mutex.
type Store struct {
	mu       sync.RWMutex
	disk     DiskIO
	pageSize int
	stats    struct {
		reads    atomic.Int64
		writes   atomic.Int64
		detected atomic.Int64
		repaired atomic.Int64
	}
	// physPool recycles physical-image scratch buffers for Read/Flush;
	// without it every buffer-pool miss and write-back would
	// heap-allocate a page-sized buffer. Pooled (not a single field)
	// because page I/O runs shared-locked and concurrently.
	physPool sync.Pool
	// zeroPhys is the sealed all-zero image every Allocate writes; the
	// image is identical for all pages, so it is built once.
	zeroPhys []byte
}

// NewStore creates a store with the given page size over a private
// fault-free in-memory device.
func NewStore(pageSize int) (*Store, error) {
	return NewStoreOn(NewMemDisk(), pageSize)
}

// NewStoreOn creates a store over an existing device (typically a fault
// injector wrapping a MemDisk).
func NewStoreOn(disk DiskIO, pageSize int) (*Store, error) {
	if pageSize <= 0 {
		return nil, fmt.Errorf("storage: page size %d must be positive: %w",
			pageSize, ErrInvalidArgument)
	}
	if disk == nil {
		return nil, fmt.Errorf("storage: nil disk: %w", ErrInvalidArgument)
	}
	s := &Store{disk: disk, pageSize: pageSize}
	s.physPool.New = func() any {
		b := make([]byte, s.physSize())
		return &b
	}
	s.zeroPhys = make([]byte, s.physSize())
	seal(s.zeroPhys, s.zeroPhys[:s.pageSize])
	return s, nil
}

// PageSize returns the logical page size in bytes.
func (s *Store) PageSize() int { return s.pageSize }

// physSize is the on-device image size (logical page + checksum trailer).
func (s *Store) physSize() int { return s.pageSize + crcTrailer }

// seal copies the logical image into phys and appends its CRC32-C.
func seal(phys, logical []byte) {
	n := copy(phys, logical)
	crc := crc32.Checksum(phys[:n], castagnoli)
	phys[n] = byte(crc)
	phys[n+1] = byte(crc >> 8)
	phys[n+2] = byte(crc >> 16)
	phys[n+3] = byte(crc >> 24)
}

// checkOK verifies the physical image's trailer.
func checkOK(phys []byte) bool {
	n := len(phys) - crcTrailer
	crc := crc32.Checksum(phys[:n], castagnoli)
	got := uint32(phys[n]) | uint32(phys[n+1])<<8 | uint32(phys[n+2])<<16 | uint32(phys[n+3])<<24
	return crc == got
}

// scratch borrows a physical-image buffer from the pool; putScratch
// returns it.
func (s *Store) scratch() *[]byte { return s.physPool.Get().(*[]byte) }

func (s *Store) putScratch(b *[]byte) { s.physPool.Put(b) }

// Allocate creates a new zeroed page and returns its ID. Both physical
// copies are initialized with a valid checksum so the page is readable
// immediately. Allocation extends the page address space, so it takes the
// store lock exclusively.
func (s *Store) Allocate() (PageID, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	id := s.disk.Allocate(s.physSize())
	if err := s.disk.Write(id, AreaJournal, s.zeroPhys); err != nil {
		return 0, fmt.Errorf("storage: init journal of page %d: %w", id, err)
	}
	if err := s.disk.Write(id, AreaData, s.zeroPhys); err != nil {
		return 0, fmt.Errorf("storage: init page %d: %w", id, err)
	}
	return id, nil
}

// Read copies the durable image of page id into buf (len must equal the
// page size). It counts as one physical read. A checksum mismatch on the
// in-place copy falls back to the journal mirror; when the mirror is
// intact the page is repaired in place, otherwise a CorruptPageError is
// returned — corruption is always detected, never silently served.
func (s *Store) Read(id PageID, buf []byte) error {
	if len(buf) != s.pageSize {
		return fmt.Errorf("storage: read buffer is %d bytes, want %d: %w",
			len(buf), s.pageSize, ErrInvalidArgument)
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	pb := s.scratch()
	defer s.putScratch(pb)
	phys := *pb
	if err := s.disk.Read(id, AreaData, phys); err != nil {
		return fmt.Errorf("storage: read page %d: %w", id, err)
	}
	s.stats.reads.Add(1)
	if checkOK(phys) {
		copy(buf, phys[:s.pageSize])
		return nil
	}
	s.stats.detected.Add(1)
	jerr := s.disk.Read(id, AreaJournal, phys)
	if jerr != nil || !checkOK(phys) {
		return &CorruptPageError{ID: id}
	}
	// The mirror survived: serve it and repair the primary copy. A failed
	// repair write is not fatal — the mirror still holds the good image.
	if werr := s.disk.Write(id, AreaData, phys); werr == nil {
		s.stats.repaired.Add(1)
	}
	copy(buf, phys[:s.pageSize])
	return nil
}

// Flush makes buf the durable image of page id, writing the journal
// mirror before the in-place copy so a torn flush always leaves one valid
// image. It counts as one physical write (the sequential mirror write is
// not charged, matching the model's random-I/O accounting).
func (s *Store) Flush(id PageID, buf []byte) error {
	if len(buf) != s.pageSize {
		return fmt.Errorf("storage: flush buffer is %d bytes, want %d: %w",
			len(buf), s.pageSize, ErrInvalidArgument)
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	pb := s.scratch()
	defer s.putScratch(pb)
	phys := *pb
	seal(phys, buf)
	if err := s.disk.Write(id, AreaJournal, phys); err != nil {
		return fmt.Errorf("storage: journal page %d: %w", id, err)
	}
	if err := s.disk.Write(id, AreaData, phys); err != nil {
		return fmt.Errorf("storage: flush page %d: %w", id, err)
	}
	s.stats.writes.Add(1)
	return nil
}

// Pages returns the number of allocated pages.
func (s *Store) Pages() int64 { return s.disk.Pages() }

// IOCounts returns the physical read and write counts.
func (s *Store) IOCounts() (reads, writes int64) {
	return s.stats.reads.Load(), s.stats.writes.Load()
}

// Stats returns a copy of the I/O and integrity counters.
func (s *Store) Stats() StoreStats {
	return StoreStats{
		Reads:    s.stats.reads.Load(),
		Writes:   s.stats.writes.Load(),
		Detected: s.stats.detected.Load(),
		Repaired: s.stats.repaired.Load(),
	}
}

// VerifyResult summarizes a Verify pass.
type VerifyResult struct {
	Checked  int64
	Repaired int64    // pages restored from the journal mirror
	Corrupt  []PageID // pages with no intact copy (detected, unrecoverable)
}

// Verify checks the checksum of every listed page, repairing from the
// journal mirror where possible and reporting pages with no intact copy.
// Only a device error (not corruption) yields a non-nil error.
func (s *Store) Verify(ids []PageID) (VerifyResult, error) {
	var res VerifyResult
	buf := make([]byte, s.pageSize)
	for _, id := range ids {
		before := s.Stats().Repaired
		err := s.Read(id, buf)
		switch {
		case err == nil:
			res.Checked++
			res.Repaired += s.Stats().Repaired - before
		case errors.Is(err, ErrCorruptPage):
			res.Checked++
			res.Corrupt = append(res.Corrupt, id)
		default:
			return res, err
		}
	}
	return res, nil
}
