package storage

import (
	"encoding/binary"
	"fmt"
	"sync"
)

// RID is a record identifier: the page and slot holding the record.
type RID struct {
	Page PageID
	Slot uint16
}

// Pack encodes the RID as a uint64 for storage in index values.
func (r RID) Pack() uint64 { return uint64(r.Page)<<16 | uint64(r.Slot) }

// UnpackRID decodes a packed RID.
func UnpackRID(v uint64) RID {
	return RID{Page: PageID(v >> 16), Slot: uint16(v & 0xffff)}
}

// String renders the RID as "page:slot".
func (r RID) String() string { return fmt.Sprintf("%d:%d", r.Page, r.Slot) }

// Pinned is a page fixed in memory by Pager.Pin. Data is the page's
// bytes, stable until the matching Unpin; Token is pager-private state
// (a pointer, so passing it through the interface does not allocate).
type Pinned struct {
	Data  []byte
	Token any
}

// Pager is the page-access interface HeapFile needs; the buffer manager
// implements it (storage_test uses the store directly via a trivial
// write-through adapter).
//
// With and Pin/Unpin are equivalent; the closure-free Pin/Unpin pair
// exists for the hot path, where a closure passed through the interface
// always escapes to the heap and would put an allocation in every
// record access.
type Pager interface {
	// With pins page id, calls fn with its bytes, and unpins, marking
	// the page dirty when dirty is true. fn must not retain the slice.
	With(id PageID, dirty bool, fn func(page []byte)) error
	// Pin fixes page id in memory, taking the same per-page content
	// latch With holds around fn. The caller must Unpin exactly once
	// and must not retain p.Data afterwards.
	Pin(id PageID) (Pinned, error)
	// Unpin releases a pinned page, marking it dirty when dirty is true.
	Unpin(p Pinned, dirty bool)
	// Allocate creates a new zeroed page (resident and dirty).
	Allocate() (PageID, error)
}

// Slotted-page layout for fixed-length records:
//
//	[0:2)  numSlots  (uint16, capacity of the page, fixed at format time)
//	[2:4)  recLen    (uint16)
//	[4:4+ceil(numSlots/8))  occupancy bitmap
//	[...]  record slots, recLen bytes each
//
// Fixed-length records make slot arithmetic trivial and match the paper's
// "integral units of tuples fit per page" assumption (Table 1).
const heapHeader = 4

// SlotsPerPage returns how many recLen-byte records fit a page of
// pageSize bytes after the header and bitmap.
func SlotsPerPage(pageSize, recLen int) int {
	if recLen <= 0 || pageSize <= heapHeader+1 {
		return 0
	}
	// Solve n*recLen + ceil(n/8) + header <= pageSize.
	n := (pageSize - heapHeader) / recLen
	for n > 0 && heapHeader+(n+7)/8+n*recLen > pageSize {
		n--
	}
	return n
}

func bitmapGet(page []byte, slot int) bool {
	return page[heapHeader+slot/8]&(1<<uint(slot%8)) != 0
}

func bitmapSet(page []byte, slot int, v bool) {
	if v {
		page[heapHeader+slot/8] |= 1 << uint(slot%8)
	} else {
		page[heapHeader+slot/8] &^= 1 << uint(slot%8)
	}
}

func slotOffset(numSlots, recLen, slot int) int {
	return heapHeader + (numSlots+7)/8 + slot*recLen
}

// HeapFile stores fixed-length records in slotted pages.
type HeapFile struct {
	name     string
	pager    Pager
	recLen   int
	slots    int // per page
	pageSize int

	mu sync.Mutex
	// pages lists the file's pages in allocation order; freePages are
	// indexes into pages with at least one free slot.
	pages     []PageID
	freePages []int
	liveCount int64
}

// NewHeapFile creates an empty heap file of recLen-byte records.
func NewHeapFile(name string, pager Pager, pageSize, recLen int) (*HeapFile, error) {
	slots := SlotsPerPage(pageSize, recLen)
	if slots <= 0 {
		return nil, fmt.Errorf("storage: record length %d does not fit a %d-byte page: %w", recLen, pageSize, ErrInvalidArgument)
	}
	return &HeapFile{
		name: name, pager: pager, recLen: recLen,
		slots: slots, pageSize: pageSize,
	}, nil
}

// Name returns the file name.
func (h *HeapFile) Name() string { return h.name }

// RecordLen returns the fixed record length.
func (h *HeapFile) RecordLen() int { return h.recLen }

// Slots returns the records-per-page capacity.
func (h *HeapFile) Slots() int { return h.slots }

// PageCount returns the number of pages in the file.
func (h *HeapFile) PageCount() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return int64(len(h.pages))
}

// Live returns the number of live records.
func (h *HeapFile) Live() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.liveCount
}

// PageIDs returns a copy of the file's page list in allocation order.
func (h *HeapFile) PageIDs() []PageID {
	h.mu.Lock()
	defer h.mu.Unlock()
	return append([]PageID(nil), h.pages...)
}

func (h *HeapFile) formatPage(page []byte) {
	for i := range page {
		page[i] = 0
	}
	binary.LittleEndian.PutUint16(page[0:2], uint16(h.slots))
	binary.LittleEndian.PutUint16(page[2:4], uint16(h.recLen))
}

// Insert stores rec (len must equal RecordLen) and returns its RID.
func (h *HeapFile) Insert(rec []byte) (RID, error) {
	if len(rec) != h.recLen {
		return RID{}, fmt.Errorf("storage: %s: record is %d bytes, want %d: %w", h.name, len(rec), h.recLen, ErrInvalidArgument)
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	for len(h.freePages) > 0 {
		idx := h.freePages[len(h.freePages)-1]
		pid := h.pages[idx]
		p, err := h.pager.Pin(pid)
		if err != nil {
			return RID{}, err
		}
		slot := -1
		for s := 0; s < h.slots; s++ {
			if !bitmapGet(p.Data, s) {
				bitmapSet(p.Data, s, true)
				off := slotOffset(h.slots, h.recLen, s)
				copy(p.Data[off:off+h.recLen], rec)
				slot = s
				break
			}
		}
		h.pager.Unpin(p, slot >= 0)
		if slot >= 0 {
			// Check whether the page is now full by slot count:
			// conservatively drop it from the free list when the
			// last slot was taken.
			if slot == h.slots-1 {
				h.freePages = h.freePages[:len(h.freePages)-1]
			}
			h.liveCount++
			return RID{Page: pid, Slot: uint16(slot)}, nil
		}
		h.freePages = h.freePages[:len(h.freePages)-1]
	}
	pid, err := h.pager.Allocate()
	if err != nil {
		return RID{}, err
	}
	err = h.pager.With(pid, true, func(page []byte) {
		h.formatPage(page)
		bitmapSet(page, 0, true)
		off := slotOffset(h.slots, h.recLen, 0)
		copy(page[off:off+h.recLen], rec)
	})
	if err != nil {
		return RID{}, err
	}
	h.pages = append(h.pages, pid)
	if h.slots > 1 {
		h.freePages = append(h.freePages, len(h.pages)-1)
	}
	h.liveCount++
	return RID{Page: pid, Slot: 0}, nil
}

// InsertAt places rec at a specific RID, formatting and extending the file
// as needed. It exists for WAL redo, which must reproduce exact RIDs.
func (h *HeapFile) InsertAt(rid RID, rec []byte) error {
	if len(rec) != h.recLen {
		return fmt.Errorf("storage: %s: record is %d bytes, want %d: %w", h.name, len(rec), h.recLen, ErrInvalidArgument)
	}
	if int(rid.Slot) >= h.slots {
		return fmt.Errorf("storage: %s: slot %d out of range: %w", h.name, rid.Slot, ErrInvalidArgument)
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if !h.knownPageLocked(rid.Page) {
		h.pages = append(h.pages, rid.Page)
		h.freePages = append(h.freePages, len(h.pages)-1)
		if err := h.pager.With(rid.Page, true, func(page []byte) {
			if binary.LittleEndian.Uint16(page[0:2]) == 0 {
				h.formatPage(page)
			}
		}); err != nil {
			return err
		}
	}
	var wasLive bool
	err := h.pager.With(rid.Page, true, func(page []byte) {
		wasLive = bitmapGet(page, int(rid.Slot))
		bitmapSet(page, int(rid.Slot), true)
		off := slotOffset(h.slots, h.recLen, int(rid.Slot))
		copy(page[off:off+h.recLen], rec)
	})
	if err != nil {
		return err
	}
	if !wasLive {
		h.liveCount++
	}
	return nil
}

// AttachPages reopens the heap over an existing set of pages (the page
// list is catalog metadata, durable in a real system): it adopts the pages
// in order and recounts live records and free slots from the durable
// images. Used after a crash, before WAL redo.
func (h *HeapFile) AttachPages(ids []PageID) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.pages = append([]PageID(nil), ids...)
	h.freePages = h.freePages[:0]
	h.liveCount = 0
	for i, pid := range h.pages {
		var live int
		err := h.pager.With(pid, false, func(page []byte) {
			for s := 0; s < h.slots; s++ {
				if bitmapGet(page, s) {
					live++
				}
			}
		})
		if err != nil {
			return err
		}
		h.liveCount += int64(live)
		if live < h.slots {
			h.freePages = append(h.freePages, i)
		}
	}
	return nil
}

func (h *HeapFile) knownPageLocked(pid PageID) bool {
	for _, p := range h.pages {
		if p == pid {
			return true
		}
	}
	return false
}

// Read copies the record at rid into out (len RecordLen).
func (h *HeapFile) Read(rid RID, out []byte) error {
	if len(out) != h.recLen {
		return fmt.Errorf("storage: %s: read buffer is %d bytes, want %d: %w", h.name, len(out), h.recLen, ErrInvalidArgument)
	}
	p, err := h.pager.Pin(rid.Page)
	if err != nil {
		return err
	}
	var live bool
	if int(rid.Slot) < h.slots && bitmapGet(p.Data, int(rid.Slot)) {
		live = true
		off := slotOffset(h.slots, h.recLen, int(rid.Slot))
		copy(out, p.Data[off:off+h.recLen])
	}
	h.pager.Unpin(p, false)
	if !live {
		return fmt.Errorf("storage: %s: no record at %s: %w", h.name, rid, ErrNoRecord)
	}
	return nil
}

// Update overwrites the record at rid.
func (h *HeapFile) Update(rid RID, rec []byte) error {
	if len(rec) != h.recLen {
		return fmt.Errorf("storage: %s: record is %d bytes, want %d: %w", h.name, len(rec), h.recLen, ErrInvalidArgument)
	}
	p, err := h.pager.Pin(rid.Page)
	if err != nil {
		return err
	}
	var live bool
	if int(rid.Slot) < h.slots && bitmapGet(p.Data, int(rid.Slot)) {
		live = true
		off := slotOffset(h.slots, h.recLen, int(rid.Slot))
		copy(p.Data[off:off+h.recLen], rec)
	}
	h.pager.Unpin(p, live)
	if !live {
		return fmt.Errorf("storage: %s: no record at %s: %w", h.name, rid, ErrNoRecord)
	}
	return nil
}

// Delete removes the record at rid.
func (h *HeapFile) Delete(rid RID) error {
	p, err := h.pager.Pin(rid.Page)
	if err != nil {
		return err
	}
	var live bool
	if int(rid.Slot) < h.slots && bitmapGet(p.Data, int(rid.Slot)) {
		live = true
		bitmapSet(p.Data, int(rid.Slot), false)
	}
	h.pager.Unpin(p, live)
	if !live {
		return fmt.Errorf("storage: %s: no record at %s: %w", h.name, rid, ErrNoRecord)
	}
	h.mu.Lock()
	h.liveCount--
	// Make the page eligible for inserts again.
	for i, p := range h.pages {
		if p == rid.Page {
			found := false
			for _, f := range h.freePages {
				if f == i {
					found = true
					break
				}
			}
			if !found {
				h.freePages = append(h.freePages, i)
			}
			break
		}
	}
	h.mu.Unlock()
	return nil
}

// Scan calls fn for every live record in page order; returning false stops
// the scan. The record slice is only valid during the call.
func (h *HeapFile) Scan(fn func(rid RID, rec []byte) bool) error {
	for _, pid := range h.PageIDs() {
		stop := false
		err := h.pager.With(pid, false, func(page []byte) {
			for s := 0; s < h.slots; s++ {
				if !bitmapGet(page, s) {
					continue
				}
				off := slotOffset(h.slots, h.recLen, s)
				if !fn(RID{Page: pid, Slot: uint16(s)}, page[off:off+h.recLen]) {
					stop = true
					return
				}
			}
		})
		if err != nil {
			return err
		}
		if stop {
			return nil
		}
	}
	return nil
}
