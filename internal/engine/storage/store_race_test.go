package storage

import (
	"encoding/binary"
	"sync"
	"testing"
)

// TestStoreConcurrentPageIO exercises the shared-lock page-I/O path: many
// goroutines read and flush disjoint pages while others allocate new pages
// and poll the counters. Run under -race this checks the RWMutex + atomic
// stats + pooled-scratch design; the per-page content check verifies that
// concurrent flushes never bleed scratch buffers across pages.
func TestStoreConcurrentPageIO(t *testing.T) {
	const (
		pageSize = 512
		pages    = 16
		workers  = 8
		rounds   = 200
	)
	s := mustStore(t, pageSize)
	ids := make([]PageID, pages)
	for i := range ids {
		ids[i] = mustAlloc(t, s)
	}

	var wg sync.WaitGroup
	errs := make(chan error, workers+2)
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			buf := make([]byte, pageSize)
			// Each worker owns a disjoint slice of pages: same-page
			// serialization is the caller's contract, so the test honours it.
			for r := 0; r < rounds; r++ {
				for i := w; i < pages; i += workers {
					binary.LittleEndian.PutUint64(buf, uint64(i)<<32|uint64(r))
					if err := s.Flush(ids[i], buf); err != nil {
						errs <- err
						return
					}
					got := make([]byte, pageSize)
					if err := s.Read(ids[i], got); err != nil {
						errs <- err
						return
					}
					v := binary.LittleEndian.Uint64(got)
					if v>>32 != uint64(i) {
						t.Errorf("page %d served content of page %d", i, v>>32)
						return
					}
				}
			}
		}()
	}
	// Allocator and stats pollers run alongside the page I/O.
	wg.Add(2)
	go func() {
		defer wg.Done()
		buf := make([]byte, pageSize)
		for r := 0; r < rounds; r++ {
			id, err := s.Allocate()
			if err != nil {
				errs <- err
				return
			}
			if err := s.Read(id, buf); err != nil {
				errs <- err
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for r := 0; r < rounds*4; r++ {
			st := s.Stats()
			if st.Reads < 0 || st.Writes < 0 {
				t.Error("negative I/O counters")
				return
			}
			s.IOCounts()
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	st := s.Stats()
	if st.Detected != 0 || st.Repaired != 0 {
		t.Fatalf("unexpected integrity events on a fault-free device: %+v", st)
	}
	if st.Writes < int64(rounds*pages) {
		t.Fatalf("writes = %d, want at least %d", st.Writes, rounds*pages)
	}
}
