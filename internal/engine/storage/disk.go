package storage

import (
	"errors"
	"fmt"
	"sync"
)

// Error sentinels for the I/O boundary. Distinguishing fault classes is
// what makes the engine's robustness testable: callers retry transient
// errors, surface misuse immediately, stop on a simulated crash, and treat
// checksum mismatches as detected (never silent) corruption.
var (
	// ErrTransientIO marks an I/O error that may succeed on retry (an
	// injected glitch, a busy device). The runner's retry policy backs
	// off and re-executes the transaction.
	ErrTransientIO = errors.New("storage: transient I/O error")

	// ErrCrashed marks I/O refused because the simulated machine has
	// lost power. Workers observing it must stop; the harness then
	// discards volatile state and runs recovery.
	ErrCrashed = errors.New("storage: simulated power loss")

	// ErrCorruptPage marks a page whose checksum failed on both the
	// primary copy and the journal mirror: detected, unrecoverable.
	ErrCorruptPage = errors.New("storage: page checksum mismatch")

	// ErrInvalidArgument marks caller misuse (bad sizes, unallocated
	// pages, out-of-range slots) as opposed to device faults.
	ErrInvalidArgument = errors.New("storage: invalid argument")

	// ErrNoRecord marks a read of an empty heap slot; recovery uses it
	// to distinguish "row absent" from real I/O failures.
	ErrNoRecord = errors.New("storage: no record")
)

// CorruptPageError identifies the page whose checksum failed with no
// recoverable copy. It unwraps to ErrCorruptPage.
type CorruptPageError struct{ ID PageID }

func (e *CorruptPageError) Error() string {
	return fmt.Sprintf("storage: page %d corrupt on primary and journal copies", e.ID)
}

// Unwrap lets errors.Is(err, ErrCorruptPage) match.
func (e *CorruptPageError) Unwrap() error { return ErrCorruptPage }

// Area selects which copy of a page a DiskIO operation addresses. Every
// durable page has two physical copies: the in-place data image and a
// journal mirror written first on each flush (the doublewrite idea), so a
// flush torn by power loss always leaves one intact copy.
type Area uint8

// Page areas.
const (
	AreaData Area = iota
	AreaJournal
)

// String names the area.
func (a Area) String() string {
	if a == AreaJournal {
		return "journal"
	}
	return "data"
}

// DiskIO is the raw page-device boundary under the Store. The in-memory
// MemDisk is the real device; the fault package wraps one to inject
// transient errors, bit flips, and crash-torn writes. Implementations must
// be safe for concurrent use.
type DiskIO interface {
	// Allocate reserves a new zero-filled physical page of size bytes in
	// both areas and returns its ID.
	Allocate(size int) PageID
	// Read copies the physical image of page id's area into buf, which
	// must match the allocated size.
	Read(id PageID, area Area, buf []byte) error
	// Write makes buf the physical image of page id's area.
	Write(id PageID, area Area, buf []byte) error
	// Pages returns the number of allocated pages.
	Pages() int64
}

// memDiskSlabPages is how many pages' worth of backing memory MemDisk
// reserves per slab: page storage is carved from slabs so allocating a
// page costs amortized fractions of a heap allocation, not two.
const memDiskSlabPages = 64

// MemDisk is the baseline DiskIO: a fault-free in-memory page device.
type MemDisk struct {
	mu      sync.RWMutex
	data    map[PageID][]byte
	journal map[PageID][]byte
	next    PageID
	slab    []byte
}

// NewMemDisk creates an empty device.
func NewMemDisk() *MemDisk {
	return &MemDisk{
		data:    make(map[PageID][]byte),
		journal: make(map[PageID][]byte),
	}
}

// Allocate implements DiskIO.
func (m *MemDisk) Allocate(size int) PageID {
	m.mu.Lock()
	defer m.mu.Unlock()
	id := m.next
	m.next++
	need := 2 * size
	if len(m.slab) < need {
		m.slab = make([]byte, need*memDiskSlabPages)
	}
	m.data[id] = m.slab[:size:size]
	m.journal[id] = m.slab[size:need:need]
	m.slab = m.slab[need:]
	return id
}

func (m *MemDisk) area(id PageID, area Area) ([]byte, error) {
	var p []byte
	var ok bool
	if area == AreaJournal {
		p, ok = m.journal[id]
	} else {
		p, ok = m.data[id]
	}
	if !ok {
		return nil, fmt.Errorf("storage: access to unallocated page %d (%s): %w",
			id, area, ErrInvalidArgument)
	}
	return p, nil
}

// Read implements DiskIO.
func (m *MemDisk) Read(id PageID, area Area, buf []byte) error {
	m.mu.RLock()
	defer m.mu.RUnlock()
	p, err := m.area(id, area)
	if err != nil {
		return err
	}
	if len(buf) != len(p) {
		return fmt.Errorf("storage: read buffer is %d bytes, want %d: %w",
			len(buf), len(p), ErrInvalidArgument)
	}
	copy(buf, p)
	return nil
}

// Write implements DiskIO.
func (m *MemDisk) Write(id PageID, area Area, buf []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	p, err := m.area(id, area)
	if err != nil {
		return err
	}
	if len(buf) != len(p) {
		return fmt.Errorf("storage: write buffer is %d bytes, want %d: %w",
			len(buf), len(p), ErrInvalidArgument)
	}
	copy(p, buf)
	return nil
}

// Pages implements DiskIO.
func (m *MemDisk) Pages() int64 {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return int64(len(m.data))
}
