package storage

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"tpccmodel/internal/rng"
)

// mustStore and mustAlloc keep test setup terse now that the storage
// constructors return errors instead of panicking on misuse.
func mustStore(t testing.TB, pageSize int) *Store {
	t.Helper()
	s, err := NewStore(pageSize)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func mustAlloc(t testing.TB, s *Store) PageID {
	t.Helper()
	id, err := s.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	return id
}

// directPager is a write-through Pager over the store, for testing the
// heap layer without a buffer manager.
type directPager struct {
	store *Store
	buf   []byte
}

func newDirectPager(s *Store) *directPager {
	return &directPager{store: s, buf: make([]byte, s.PageSize())}
}

func (p *directPager) With(id PageID, dirty bool, fn func(page []byte)) error {
	if err := p.store.Read(id, p.buf); err != nil {
		return err
	}
	fn(p.buf)
	if dirty {
		return p.store.Flush(id, p.buf)
	}
	return nil
}

func (p *directPager) Pin(id PageID) (Pinned, error) {
	if err := p.store.Read(id, p.buf); err != nil {
		return Pinned{}, err
	}
	return Pinned{Data: p.buf, Token: id}, nil
}

func (p *directPager) Unpin(pg Pinned, dirty bool) {
	if dirty {
		if err := p.store.Flush(pg.Token.(PageID), pg.Data); err != nil {
			panic(err)
		}
	}
}

func (p *directPager) Allocate() (PageID, error) { return p.store.Allocate() }

func TestStoreReadWrite(t *testing.T) {
	s := mustStore(t, 4096)
	id := mustAlloc(t, s)
	buf := make([]byte, 4096)
	if err := s.Read(id, buf); err != nil {
		t.Fatal(err)
	}
	for _, b := range buf {
		if b != 0 {
			t.Fatal("fresh page not zeroed")
		}
	}
	buf[0], buf[4095] = 0xAB, 0xCD
	if err := s.Flush(id, buf); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 4096)
	if err := s.Read(id, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, got) {
		t.Error("flushed image not read back")
	}
	reads, writes := s.IOCounts()
	if reads != 2 || writes != 1 {
		t.Errorf("IO counts = %d reads, %d writes", reads, writes)
	}
}

func TestStoreErrors(t *testing.T) {
	s := mustStore(t, 1024)
	buf := make([]byte, 1024)
	if err := s.Read(PageID(99), buf); err == nil {
		t.Error("read of unallocated page should fail")
	}
	if err := s.Flush(PageID(99), buf); err == nil {
		t.Error("flush of unallocated page should fail")
	}
	id := mustAlloc(t, s)
	if err := s.Read(id, make([]byte, 10)); err == nil {
		t.Error("short buffer should fail")
	}
}

func TestSlotsPerPage(t *testing.T) {
	// With the Table 1 tuple lengths and 4K pages, slotted capacity must
	// come within one tuple of the paper's integral-fit numbers (the
	// header and bitmap cost at most one slot).
	cases := []struct {
		recLen int
		paper  int
	}{
		{89, 46}, {95, 43}, {655, 6}, {306, 13}, {82, 49},
		{24, 170}, {8, 512}, {54, 75}, {46, 89},
	}
	for _, c := range cases {
		got := SlotsPerPage(4096, c.recLen)
		// The slotted layout pays a 4-byte header plus a 1-bit-per-slot
		// bitmap, so capacity is the paper's count minus at most ~2%.
		if got > c.paper || float64(got) < float64(c.paper)*0.97 {
			t.Errorf("SlotsPerPage(4096, %d) = %d, paper says %d", c.recLen, got, c.paper)
		}
	}
	if SlotsPerPage(4096, 0) != 0 || SlotsPerPage(4, 100) != 0 {
		t.Error("degenerate cases should be 0")
	}
}

func TestRIDPackRoundTrip(t *testing.T) {
	f := func(pageRaw uint32, slot uint16) bool {
		r := RID{Page: PageID(pageRaw), Slot: slot}
		return UnpackRID(r.Pack()) == r
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHeapInsertReadUpdateDelete(t *testing.T) {
	s := mustStore(t, 512)
	h, err := NewHeapFile("t", newDirectPager(s), 512, 100)
	if err != nil {
		t.Fatal(err)
	}
	rec := bytes.Repeat([]byte{7}, 100)
	rid, err := h.Insert(rec)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]byte, 100)
	if err := h.Read(rid, out); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(rec, out) {
		t.Error("read back mismatch")
	}
	rec2 := bytes.Repeat([]byte{9}, 100)
	if err := h.Update(rid, rec2); err != nil {
		t.Fatal(err)
	}
	h.Read(rid, out)
	if !bytes.Equal(rec2, out) {
		t.Error("update not visible")
	}
	if err := h.Delete(rid); err != nil {
		t.Fatal(err)
	}
	if err := h.Read(rid, out); err == nil {
		t.Error("read of deleted record should fail")
	}
	if err := h.Delete(rid); err == nil {
		t.Error("double delete should fail")
	}
	if h.Live() != 0 {
		t.Errorf("Live = %d", h.Live())
	}
}

func TestHeapFillsPagesDensely(t *testing.T) {
	s := mustStore(t, 512)
	h, _ := NewHeapFile("t", newDirectPager(s), 512, 100)
	slots := h.Slots()
	if slots < 4 {
		t.Fatalf("expected >=4 slots in 512B page, got %d", slots)
	}
	var rids []RID
	for i := 0; i < slots*3; i++ {
		rid, err := h.Insert(bytes.Repeat([]byte{byte(i)}, 100))
		if err != nil {
			t.Fatal(err)
		}
		rids = append(rids, rid)
	}
	if h.PageCount() != 3 {
		t.Errorf("PageCount = %d, want 3 (dense fill)", h.PageCount())
	}
	// Slot reuse after delete.
	if err := h.Delete(rids[1]); err != nil {
		t.Fatal(err)
	}
	rid, err := h.Insert(bytes.Repeat([]byte{0xEE}, 100))
	if err != nil {
		t.Fatal(err)
	}
	if h.PageCount() != 3 {
		t.Errorf("insert after delete allocated page %d", rid.Page)
	}
}

func TestHeapScan(t *testing.T) {
	s := mustStore(t, 512)
	h, _ := NewHeapFile("t", newDirectPager(s), 512, 100)
	want := map[RID]byte{}
	for i := 0; i < 10; i++ {
		rid, _ := h.Insert(bytes.Repeat([]byte{byte(i + 1)}, 100))
		want[rid] = byte(i + 1)
	}
	seen := 0
	err := h.Scan(func(rid RID, rec []byte) bool {
		if want[rid] != rec[0] {
			t.Errorf("scan at %s: byte %d, want %d", rid, rec[0], want[rid])
		}
		seen++
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if seen != 10 {
		t.Errorf("scanned %d records", seen)
	}
	// Early stop.
	n := 0
	h.Scan(func(RID, []byte) bool { n++; return n < 3 })
	if n != 3 {
		t.Errorf("early stop scanned %d", n)
	}
}

func TestHeapInsertAtForRedo(t *testing.T) {
	s := mustStore(t, 512)
	h, _ := NewHeapFile("t", newDirectPager(s), 512, 100)
	rid, _ := h.Insert(bytes.Repeat([]byte{1}, 100))
	// Redo into a fresh heap reattached over the same store (the page
	// list is durable catalog metadata): same RID must land.
	h2, _ := NewHeapFile("t", newDirectPager(s), 512, 100)
	if err := h2.AttachPages(h.PageIDs()); err != nil {
		t.Fatal(err)
	}
	if h2.Live() != 1 {
		t.Fatalf("Live after attach = %d, want 1", h2.Live())
	}
	if err := h2.InsertAt(rid, bytes.Repeat([]byte{2}, 100)); err != nil {
		t.Fatal(err)
	}
	out := make([]byte, 100)
	if err := h2.Read(rid, out); err != nil {
		t.Fatal(err)
	}
	if out[0] != 2 {
		t.Error("InsertAt image not visible")
	}
	// Idempotent re-application.
	if err := h2.InsertAt(rid, bytes.Repeat([]byte{3}, 100)); err != nil {
		t.Fatal(err)
	}
	if h2.Live() != 1 {
		t.Errorf("Live = %d after idempotent redo", h2.Live())
	}
	// InsertAt can also extend the file to a brand-new page (redo of an
	// insert whose page never got flushed).
	pid := mustAlloc(t, s)
	if err := h2.InsertAt(RID{Page: pid, Slot: 2}, bytes.Repeat([]byte{4}, 100)); err != nil {
		t.Fatal(err)
	}
	if h2.Live() != 2 {
		t.Errorf("Live = %d after extending redo", h2.Live())
	}
}

func TestHeapRejectsBadSizes(t *testing.T) {
	s := mustStore(t, 512)
	if _, err := NewHeapFile("t", newDirectPager(s), 512, 5000); err == nil {
		t.Error("oversized record should fail")
	}
	h, _ := NewHeapFile("t", newDirectPager(s), 512, 100)
	if _, err := h.Insert(make([]byte, 99)); err == nil {
		t.Error("short record should fail")
	}
	if err := h.Update(RID{}, make([]byte, 3)); err == nil {
		t.Error("short update should fail")
	}
}

func TestHeapRandomizedAgainstReference(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		s := mustStore(t, 256)
		h, _ := NewHeapFile("t", newDirectPager(s), 256, 40)
		ref := map[RID]byte{}
		var rids []RID
		for op := 0; op < 500; op++ {
			if len(rids) == 0 || r.Bernoulli(0.6) {
				b := byte(r.Int63n(255) + 1)
				rid, err := h.Insert(bytes.Repeat([]byte{b}, 40))
				if err != nil {
					return false
				}
				if _, dup := ref[rid]; dup {
					t.Logf("insert returned live RID %s", rid)
					return false
				}
				ref[rid] = b
				rids = append(rids, rid)
			} else {
				i := int(r.Int63n(int64(len(rids))))
				rid := rids[i]
				rids = append(rids[:i], rids[i+1:]...)
				if err := h.Delete(rid); err != nil {
					return false
				}
				delete(ref, rid)
			}
		}
		if h.Live() != int64(len(ref)) {
			return false
		}
		out := make([]byte, 40)
		for rid, b := range ref {
			if err := h.Read(rid, out); err != nil || out[0] != b {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

func TestStoreMisuseReturnsTypedErrors(t *testing.T) {
	if _, err := NewStore(0); !errors.Is(err, ErrInvalidArgument) {
		t.Errorf("NewStore(0) = %v, want ErrInvalidArgument", err)
	}
	if _, err := NewStoreOn(nil, 4096); !errors.Is(err, ErrInvalidArgument) {
		t.Errorf("NewStoreOn(nil) = %v, want ErrInvalidArgument", err)
	}
	s := mustStore(t, 512)
	buf := make([]byte, 512)
	if err := s.Read(PageID(99), buf); !errors.Is(err, ErrInvalidArgument) {
		t.Errorf("read of unallocated page = %v, want ErrInvalidArgument", err)
	}
	if err := s.Flush(PageID(99), buf); !errors.Is(err, ErrInvalidArgument) {
		t.Errorf("flush of unallocated page = %v, want ErrInvalidArgument", err)
	}
	id := mustAlloc(t, s)
	if err := s.Read(id, make([]byte, 10)); !errors.Is(err, ErrInvalidArgument) {
		t.Errorf("short read buffer = %v, want ErrInvalidArgument", err)
	}
	h := &HeapFile{} // zero heap never used; just check sentinel plumbing below
	_ = h
	hf, err := NewHeapFile("t", newDirectPager(s), 512, 100)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := hf.Insert(make([]byte, 99)); !errors.Is(err, ErrInvalidArgument) {
		t.Errorf("short insert = %v, want ErrInvalidArgument", err)
	}
	rid, err := hf.Insert(bytes.Repeat([]byte{1}, 100))
	if err != nil {
		t.Fatal(err)
	}
	if err := hf.Delete(rid); err != nil {
		t.Fatal(err)
	}
	if err := hf.Read(rid, make([]byte, 100)); !errors.Is(err, ErrNoRecord) {
		t.Errorf("read of deleted record = %v, want ErrNoRecord", err)
	}
}

// corrupt flips one bit of the given area's stored image, bypassing the
// store (simulating media decay).
func corrupt(t *testing.T, disk *MemDisk, id PageID, area Area, physSize int, bit int) {
	t.Helper()
	img := make([]byte, physSize)
	if err := disk.Read(id, area, img); err != nil {
		t.Fatal(err)
	}
	img[bit/8] ^= 1 << uint(bit%8)
	if err := disk.Write(id, area, img); err != nil {
		t.Fatal(err)
	}
}

func TestStoreDetectsAndRepairsCorruption(t *testing.T) {
	disk := NewMemDisk()
	s, err := NewStoreOn(disk, 512)
	if err != nil {
		t.Fatal(err)
	}
	id := mustAlloc(t, s)
	img := bytes.Repeat([]byte{0x5A}, 512)
	if err := s.Flush(id, img); err != nil {
		t.Fatal(err)
	}
	// Flip a bit in the primary copy: the read must detect it, repair
	// from the journal mirror, and serve the correct image.
	corrupt(t, disk, id, AreaData, 512+4, 1000)
	got := make([]byte, 512)
	if err := s.Read(id, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, img) {
		t.Error("repaired read returned wrong image")
	}
	st := s.Stats()
	if st.Detected != 1 || st.Repaired != 1 {
		t.Errorf("stats = %+v, want Detected=1 Repaired=1", st)
	}
	// A subsequent read sees the repaired primary copy: no new detection.
	if err := s.Read(id, got); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.Detected != 1 {
		t.Errorf("detected = %d after repair, want 1", st.Detected)
	}
}

func TestStoreReportsDoubleCorruption(t *testing.T) {
	disk := NewMemDisk()
	s, err := NewStoreOn(disk, 512)
	if err != nil {
		t.Fatal(err)
	}
	id := mustAlloc(t, s)
	if err := s.Flush(id, bytes.Repeat([]byte{3}, 512)); err != nil {
		t.Fatal(err)
	}
	corrupt(t, disk, id, AreaData, 512+4, 7)
	corrupt(t, disk, id, AreaJournal, 512+4, 7)
	err = s.Read(id, make([]byte, 512))
	if !errors.Is(err, ErrCorruptPage) {
		t.Fatalf("double corruption read = %v, want ErrCorruptPage", err)
	}
	var ce *CorruptPageError
	if !errors.As(err, &ce) || ce.ID != id {
		t.Errorf("corrupt page error = %v, want page %d", err, id)
	}
}

func TestStoreVerify(t *testing.T) {
	disk := NewMemDisk()
	s, err := NewStoreOn(disk, 256)
	if err != nil {
		t.Fatal(err)
	}
	var ids []PageID
	for i := 0; i < 5; i++ {
		id := mustAlloc(t, s)
		if err := s.Flush(id, bytes.Repeat([]byte{byte(i + 1)}, 256)); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	corrupt(t, disk, ids[1], AreaData, 256+4, 33)    // repairable
	corrupt(t, disk, ids[3], AreaData, 256+4, 99)    // unrecoverable:
	corrupt(t, disk, ids[3], AreaJournal, 256+4, 99) // both copies hit
	res, err := s.Verify(ids)
	if err != nil {
		t.Fatal(err)
	}
	if res.Checked != 5 || res.Repaired != 1 {
		t.Errorf("verify = %+v, want Checked=5 Repaired=1", res)
	}
	if len(res.Corrupt) != 1 || res.Corrupt[0] != ids[3] {
		t.Errorf("corrupt list = %v, want [%d]", res.Corrupt, ids[3])
	}
}

func TestTornFlushLeavesOneIntactCopy(t *testing.T) {
	// Model a torn in-place write directly: the journal holds the new
	// image (it is written first), the data area holds a mix.
	disk := NewMemDisk()
	s, err := NewStoreOn(disk, 256)
	if err != nil {
		t.Fatal(err)
	}
	id := mustAlloc(t, s)
	oldImg := bytes.Repeat([]byte{0x11}, 256)
	if err := s.Flush(id, oldImg); err != nil {
		t.Fatal(err)
	}
	newImg := bytes.Repeat([]byte{0x22}, 256)
	if err := s.Flush(id, newImg); err != nil {
		t.Fatal(err)
	}
	// Tear: first 100 bytes of the data area revert to the old image
	// (as if only the second part of the sector landed).
	phys := make([]byte, 256+4)
	if err := disk.Read(id, AreaData, phys); err != nil {
		t.Fatal(err)
	}
	copy(phys[:100], oldImg[:100])
	phys[0] ^= 0xFF // make the mix detectable regardless of content
	if err := disk.Write(id, AreaData, phys); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 256)
	if err := s.Read(id, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, newImg) {
		t.Error("torn write not repaired to the journaled image")
	}
}
