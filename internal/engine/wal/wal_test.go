package wal

import (
	"bytes"
	"testing"
	"testing/quick"
)

func ap(t *testing.T, l *Log, r Record) LSN {
	t.Helper()
	lsn, err := l.Append(r)
	if err != nil {
		t.Fatal(err)
	}
	return lsn
}

func mustRecover(t *testing.T, l *Log, tables map[uint32]Applier) RecoverStats {
	t.Helper()
	st, err := Recover(l, tables)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func TestAppendAssignsLSNs(t *testing.T) {
	l := New()
	a := ap(t, l, Record{Txn: 1, Type: RecInsert, Table: 2, RID: 3, After: []byte{1}})
	b := ap(t, l, Record{Txn: 1, Type: RecCommit})
	if a != 1 || b != 2 {
		t.Errorf("LSNs = %d, %d", a, b)
	}
	if l.Forces() != 1 {
		t.Errorf("Forces = %d, want 1 (only the commit)", l.Forces())
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	f := func(txn uint64, typRaw uint8, table uint32, rid uint64, before, after []byte) bool {
		r := Record{
			Txn:   txn,
			Type:  RecType(typRaw % 5),
			Table: table,
			RID:   rid,
		}
		if len(before) > 0 {
			r.Before = before
		}
		if len(after) > 0 {
			r.After = after
		}
		l := New()
		lsn, err := l.Append(r)
		if err != nil {
			return false
		}
		recs, err := l.Records()
		if err != nil || len(recs) != 1 {
			return false
		}
		got := recs[0]
		return got.LSN == lsn && got.Txn == r.Txn && got.Type == r.Type &&
			got.Table == r.Table && got.RID == r.RID &&
			bytes.Equal(got.Before, r.Before) && bytes.Equal(got.After, r.After)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDecodeTruncated(t *testing.T) {
	if _, _, err := decodeRecord([]byte{1, 2, 3}); err == nil {
		t.Error("short header should fail")
	}
	l := New()
	ap(t, l, Record{Txn: 1, Type: RecInsert, After: []byte{1, 2, 3}})
	l.data = l.data[:len(l.data)-2] // chop the body
	if _, err := l.Records(); err == nil {
		t.Error("truncated body should fail")
	}
}

// memTable is an Applier over a map, for recovery-logic tests.
type memTable struct {
	rows map[uint64][]byte
}

func newMemTable() *memTable { return &memTable{rows: make(map[uint64][]byte)} }

func (m *memTable) Apply(rid uint64, image []byte) error {
	if image == nil {
		delete(m.rows, rid)
		return nil
	}
	m.rows[rid] = append([]byte(nil), image...)
	return nil
}

func TestRecoverRedoesOnlyCommitted(t *testing.T) {
	l := New()
	// Txn 1 commits: insert row 1, update it, insert row 2, delete row 2.
	ap(t, l, Record{Txn: 1, Type: RecInsert, Table: 0, RID: 1, After: []byte{1}})
	ap(t, l, Record{Txn: 1, Type: RecUpdate, Table: 0, RID: 1, Before: []byte{1}, After: []byte{2}})
	ap(t, l, Record{Txn: 1, Type: RecInsert, Table: 0, RID: 2, After: []byte{9}})
	ap(t, l, Record{Txn: 1, Type: RecDelete, Table: 0, RID: 2, Before: []byte{9}})
	ap(t, l, Record{Txn: 1, Type: RecCommit})
	// Txn 2 never commits: its insert must end up absent.
	ap(t, l, Record{Txn: 2, Type: RecInsert, Table: 0, RID: 3, After: []byte{7}})
	// Txn 3 aborts explicitly.
	ap(t, l, Record{Txn: 3, Type: RecInsert, Table: 0, RID: 4, After: []byte{8}})
	ap(t, l, Record{Txn: 3, Type: RecAbort})

	// Simulate steal: the uncommitted inserts were flushed pre-crash.
	tab := newMemTable()
	tab.rows[3] = []byte{7}
	tab.rows[4] = []byte{8}

	st := mustRecover(t, l, map[uint32]Applier{0: tab})
	if st.Applied != 4 || st.SkippedUncommitted != 2 {
		t.Errorf("applied %d skipped %d, want 4/2", st.Applied, st.SkippedUncommitted)
	}
	if got, ok := tab.rows[1]; !ok || got[0] != 2 {
		t.Errorf("row 1 = %v, want after-image 2", got)
	}
	if _, ok := tab.rows[2]; ok {
		t.Error("deleted row 2 resurrected")
	}
	if _, ok := tab.rows[3]; ok {
		t.Error("uncommitted flushed row 3 not rolled back")
	}
	if _, ok := tab.rows[4]; ok {
		t.Error("aborted flushed row 4 not rolled back")
	}
}

// TestRecoverStealUpdate verifies the before-image path: an uncommitted
// UPDATE flushed to disk is rolled back to the pre-transaction value, and
// a later committed write supersedes an earlier aborted one.
func TestRecoverStealUpdate(t *testing.T) {
	l := New()
	// Committed txn 1 sets row 5 to 10.
	ap(t, l, Record{Txn: 1, Type: RecUpdate, Table: 0, RID: 5, Before: []byte{1}, After: []byte{10}})
	ap(t, l, Record{Txn: 1, Type: RecCommit})
	// Aborted txn 2 set it to 99 (its before-image is txn 1's value).
	ap(t, l, Record{Txn: 2, Type: RecUpdate, Table: 0, RID: 5, Before: []byte{10}, After: []byte{99}})
	ap(t, l, Record{Txn: 2, Type: RecAbort})
	// Uncommitted txn 3 touched row 6 only.
	ap(t, l, Record{Txn: 3, Type: RecUpdate, Table: 0, RID: 6, Before: []byte{42}, After: []byte{43}})

	tab := newMemTable()
	tab.rows[5] = []byte{99} // steal flushed the aborted value
	tab.rows[6] = []byte{43} // steal flushed the uncommitted value
	mustRecover(t, l, map[uint32]Applier{0: tab})
	if got := tab.rows[5]; got[0] != 10 {
		t.Errorf("row 5 = %v, want committed 10", got)
	}
	if got := tab.rows[6]; got[0] != 42 {
		t.Errorf("row 6 = %v, want before-image 42", got)
	}
}

func TestRecoverUnknownTable(t *testing.T) {
	l := New()
	ap(t, l, Record{Txn: 1, Type: RecInsert, Table: 42, RID: 1, After: []byte{1}})
	ap(t, l, Record{Txn: 1, Type: RecCommit})
	if _, err := Recover(l, map[uint32]Applier{}); err == nil {
		t.Error("missing applier should fail")
	}
}

func TestRecoverIsIdempotent(t *testing.T) {
	l := New()
	ap(t, l, Record{Txn: 1, Type: RecInsert, Table: 0, RID: 1, After: []byte{5}})
	ap(t, l, Record{Txn: 1, Type: RecCommit})
	tab := newMemTable()
	for i := 0; i < 3; i++ {
		mustRecover(t, l, map[uint32]Applier{0: tab})
	}
	if len(tab.rows) != 1 || tab.rows[1][0] != 5 {
		t.Errorf("rows after triple recovery: %v", tab.rows)
	}
}
