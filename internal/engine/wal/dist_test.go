package wal

import (
	"bytes"
	"testing"
)

// memTable for dist tests lives in wal_test.go (newMemTable).

func mustAppend(t *testing.T, l *Log, r Record) {
	t.Helper()
	if _, err := l.Append(r); err != nil {
		t.Fatal(err)
	}
}

// TestPrepareIsForced checks that a prepare record lands in the durable
// prefix, exactly like commit and abort records.
func TestPrepareIsForced(t *testing.T) {
	l := New()
	mustAppend(t, l, Record{Txn: 1, Type: RecInsert, Table: 0, RID: 1, After: []byte{1}})
	if l.DurableSize() != 0 {
		t.Fatal("data record should not force")
	}
	mustAppend(t, l, Record{Txn: 1, Type: RecPrepare, RID: 42})
	if l.DurableSize() != l.Size() {
		t.Fatalf("prepare must force: durable %d of %d", l.DurableSize(), l.Size())
	}
}

// TestPrepareForcedGrouped checks the group-commit path forces prepares.
func TestPrepareForcedGrouped(t *testing.T) {
	l := New()
	l.SetGroupCommit(GroupConfig{MaxBatch: 8})
	mustAppend(t, l, Record{Txn: 1, Type: RecInsert, Table: 0, RID: 1, After: []byte{1}})
	mustAppend(t, l, Record{Txn: 1, Type: RecPrepare, RID: 42})
	if l.DurableSize() != l.Size() {
		t.Fatalf("grouped prepare must force: durable %d of %d", l.DurableSize(), l.Size())
	}
}

// TestRecoverDistInDoubt: a prepared-but-undecided branch is rolled back
// to before-images (presumed abort) and reported in-doubt with its data
// records retained.
func TestRecoverDistInDoubt(t *testing.T) {
	l := New()
	// Txn 1: committed local transaction.
	mustAppend(t, l, Record{Txn: 1, Type: RecInsert, Table: 0, RID: 1, After: []byte{10}})
	mustAppend(t, l, Record{Txn: 1, Type: RecCommit})
	// Txn 2: prepared branch of gid 7, no decision.
	mustAppend(t, l, Record{Txn: 2, Type: RecUpdate, Table: 0, RID: 1, Before: []byte{10}, After: []byte{20}})
	mustAppend(t, l, Record{Txn: 2, Type: RecInsert, Table: 0, RID: 9, After: []byte{9}})
	mustAppend(t, l, Record{Txn: 2, Type: RecPrepare, RID: 7})
	// Txn 3: prepared AND decided (commit carrying its gid).
	mustAppend(t, l, Record{Txn: 3, Type: RecInsert, Table: 0, RID: 5, After: []byte{5}})
	mustAppend(t, l, Record{Txn: 3, Type: RecPrepare, RID: 8})
	mustAppend(t, l, Record{Txn: 3, Type: RecCommit, RID: 8})

	tab := newMemTable()
	st, dist, err := RecoverDist(l, map[uint32]Applier{0: tab})
	if err != nil {
		t.Fatal(err)
	}
	if got := tab.rows[1]; got[0] != 10 {
		t.Errorf("in-doubt update not rolled back: row 1 = %v", got)
	}
	if _, ok := tab.rows[9]; ok {
		t.Error("in-doubt insert should be absent after presumed abort")
	}
	if got := tab.rows[5]; got[0] != 5 {
		t.Errorf("decided prepare lost: row 5 = %v", got)
	}
	if len(dist.InDoubt) != 1 {
		t.Fatalf("in-doubt = %+v, want exactly txn 2", dist.InDoubt)
	}
	idt := dist.InDoubt[0]
	if idt.Txn != 2 || idt.GID != 7 || len(idt.Records) != 2 {
		t.Errorf("in-doubt = %+v, want txn 2 gid 7 with 2 records", idt)
	}
	if !bytes.Equal(idt.Records[0].After, []byte{20}) {
		t.Errorf("retained record mismatch: %+v", idt.Records[0])
	}
	if v, ok := dist.Decisions[8]; !ok || !v {
		t.Errorf("decision for gid 8 = %v,%v, want commit", v, ok)
	}
	if _, ok := dist.Decisions[7]; ok {
		t.Error("undecided gid 7 must not appear in decisions")
	}
	if dist.MaxTxn != 3 {
		t.Errorf("MaxTxn = %d, want 3", dist.MaxTxn)
	}
	if st.SkippedUncommitted == 0 {
		t.Error("in-doubt records should count as skipped-uncommitted")
	}
}

// TestRecoverDistAbortDecision: an abort record carrying a gid records a
// durable abort decision and the branch is not in-doubt.
func TestRecoverDistAbortDecision(t *testing.T) {
	l := New()
	mustAppend(t, l, Record{Txn: 4, Type: RecInsert, Table: 0, RID: 2, After: []byte{2}})
	mustAppend(t, l, Record{Txn: 4, Type: RecPrepare, RID: 11})
	mustAppend(t, l, Record{Txn: 4, Type: RecAbort, RID: 11})
	tab := newMemTable()
	_, dist, err := RecoverDist(l, map[uint32]Applier{0: tab})
	if err != nil {
		t.Fatal(err)
	}
	if len(dist.InDoubt) != 0 {
		t.Fatalf("aborted prepare reported in-doubt: %+v", dist.InDoubt)
	}
	if v, ok := dist.Decisions[11]; !ok || v {
		t.Errorf("decision for gid 11 = %v,%v, want abort", v, ok)
	}
	if _, ok := tab.rows[2]; ok {
		t.Error("aborted branch's insert survived")
	}
}

// TestRecoverDistSurvivesPowerLoss: the prepare is in the forced prefix,
// so the in-doubt state survives CrashTail damage to the volatile tail.
func TestRecoverDistSurvivesPowerLoss(t *testing.T) {
	l := New()
	mustAppend(t, l, Record{Txn: 2, Type: RecUpdate, Table: 0, RID: 1, Before: []byte{1}, After: []byte{2}})
	mustAppend(t, l, Record{Txn: 2, Type: RecPrepare, RID: 99})
	// Volatile tail: an unforced data record of another transaction.
	mustAppend(t, l, Record{Txn: 5, Type: RecInsert, Table: 0, RID: 3, After: []byte{3}})
	l.data = l.data[:l.forcedLen] // lose the whole volatile tail

	tab := newMemTable()
	_, dist, err := RecoverDist(l, map[uint32]Applier{0: tab})
	if err != nil {
		t.Fatal(err)
	}
	if len(dist.InDoubt) != 1 || dist.InDoubt[0].GID != 99 {
		t.Fatalf("in-doubt lost with the tail: %+v", dist.InDoubt)
	}
	if got := tab.rows[1]; got[0] != 1 {
		t.Errorf("before-image not restored: %v", got)
	}
}
