// Package wal implements a redo-only write-ahead log for the engine:
// physiological records carrying full after-images, commit/abort records,
// and recovery by replaying committed transactions in log order against
// the durable page store (uncommitted work never reaches the store because
// the buffer manager only flushes after-images that the log already
// covers, and aborts are undone in place before commit-time flushes).
//
// The throughput model charges one log-write I/O per transaction (the
// "1 +" term in Table 4's initIO row); the engine's log mirrors that: one
// forced write per commit.
package wal

import (
	"encoding/binary"
	"fmt"
	"sync"
)

// RecType tags a log record.
type RecType uint8

// Record types.
const (
	RecInsert RecType = iota
	RecUpdate
	RecDelete
	RecCommit
	RecAbort
)

// String names the record type.
func (t RecType) String() string {
	switch t {
	case RecInsert:
		return "insert"
	case RecUpdate:
		return "update"
	case RecDelete:
		return "delete"
	case RecCommit:
		return "commit"
	case RecAbort:
		return "abort"
	default:
		return fmt.Sprintf("rec(%d)", uint8(t))
	}
}

// LSN is a log sequence number (1-based; 0 means "none").
type LSN uint64

// Record is one log entry. Table/RID address the record. After is the
// full after-image (nil for Delete: the row is absent afterwards); Before
// is the full before-image (nil for Insert: the row was absent before).
// Before-images make recovery correct under a *steal* buffer policy — the
// engine's buffer manager may flush a dirty page of an uncommitted
// transaction on eviction, so recovery must be able to restore the
// pre-transaction value.
type Record struct {
	LSN    LSN
	Txn    uint64
	Type   RecType
	Table  uint32
	RID    uint64 // packed storage.RID
	Before []byte
	After  []byte
}

const recHeader = 8 + 8 + 1 + 4 + 8 + 4 + 4

// encode appends the serialized record to buf.
func (r Record) encode(buf []byte) []byte {
	var tmp [recHeader]byte
	binary.LittleEndian.PutUint64(tmp[0:8], uint64(r.LSN))
	binary.LittleEndian.PutUint64(tmp[8:16], r.Txn)
	tmp[16] = byte(r.Type)
	binary.LittleEndian.PutUint32(tmp[17:21], r.Table)
	binary.LittleEndian.PutUint64(tmp[21:29], r.RID)
	binary.LittleEndian.PutUint32(tmp[29:33], uint32(len(r.Before)))
	binary.LittleEndian.PutUint32(tmp[33:37], uint32(len(r.After)))
	buf = append(buf, tmp[:]...)
	buf = append(buf, r.Before...)
	return append(buf, r.After...)
}

// decodeRecord reads one record from buf, returning it and the remainder.
func decodeRecord(buf []byte) (Record, []byte, error) {
	if len(buf) < recHeader {
		return Record{}, nil, fmt.Errorf("wal: truncated record header (%d bytes)", len(buf))
	}
	r := Record{
		LSN:   LSN(binary.LittleEndian.Uint64(buf[0:8])),
		Txn:   binary.LittleEndian.Uint64(buf[8:16]),
		Type:  RecType(buf[16]),
		Table: binary.LittleEndian.Uint32(buf[17:21]),
		RID:   binary.LittleEndian.Uint64(buf[21:29]),
	}
	nb := binary.LittleEndian.Uint32(buf[29:33])
	na := binary.LittleEndian.Uint32(buf[33:37])
	buf = buf[recHeader:]
	if len(buf) < int(nb)+int(na) {
		return Record{}, nil, fmt.Errorf("wal: truncated record body")
	}
	if nb > 0 {
		r.Before = append([]byte(nil), buf[:nb]...)
	}
	if na > 0 {
		r.After = append([]byte(nil), buf[nb:nb+na]...)
	}
	return r, buf[nb+na:], nil
}

// Log is the in-memory durable log. It survives bufmgr.Crash (the log
// device is separate from the data disks, as the paper assumes).
type Log struct {
	mu     sync.Mutex
	data   []byte
	next   LSN
	forces int64
}

// New creates an empty log.
func New() *Log { return &Log{next: 1} }

// Append writes one record (assigning its LSN) and returns the LSN.
func (l *Log) Append(r Record) LSN {
	l.mu.Lock()
	defer l.mu.Unlock()
	r.LSN = l.next
	l.next++
	l.data = r.encode(l.data)
	if r.Type == RecCommit || r.Type == RecAbort {
		// A commit forces the log: one log-device I/O.
		l.forces++
	}
	return r.LSN
}

// Forces returns the number of forced (commit/abort) log writes — the
// model's one-log-I/O-per-transaction term.
func (l *Log) Forces() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.forces
}

// Size returns the log size in bytes.
func (l *Log) Size() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return int64(len(l.data))
}

// Records decodes the whole log (for recovery and tests).
func (l *Log) Records() ([]Record, error) {
	l.mu.Lock()
	buf := append([]byte(nil), l.data...)
	l.mu.Unlock()
	var out []Record
	for len(buf) > 0 {
		r, rest, err := decodeRecord(buf)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
		buf = rest
	}
	return out, nil
}

// Applier materializes a row's recovered state during recovery.
type Applier interface {
	// Apply makes image the row's content at rid; a nil image means the
	// row must be absent. Implementations must be idempotent and
	// tolerant of the durable page already holding the target state.
	Apply(rid uint64, image []byte) error
}

// Recover reconstructs the committed state per row and applies it through
// the per-table appliers. For every (table, rid) the log touches, walking
// records in LSN order:
//
//   - a record of a COMMITTED transaction sets the row's state to its
//     after-image (nil for a delete);
//   - a record of an uncommitted or aborted transaction establishes the
//     row's state as its BEFORE-image, but only if no state is known yet
//     (strict 2PL guarantees a later committed write supersedes it, and
//     an earlier committed write already equals that before-image).
//
// This is exact under the engine's steal/no-force buffer policy: a dirty
// uncommitted page flushed before the crash is rolled back by the
// before-image, and an unflushed committed change is re-applied by the
// after-image. It returns the number of rows materialized and the number
// of log records skipped as uncommitted.
func Recover(l *Log, tables map[uint32]Applier) (applied, skipped int64, err error) {
	recs, err := l.Records()
	if err != nil {
		return 0, 0, err
	}
	committed := make(map[uint64]bool)
	for _, r := range recs {
		if r.Type == RecCommit {
			committed[r.Txn] = true
		}
	}
	type rowKey struct {
		table uint32
		rid   uint64
	}
	type rowState struct {
		image []byte
		known bool
	}
	state := make(map[rowKey]rowState)
	order := make([]rowKey, 0)
	for _, r := range recs {
		switch r.Type {
		case RecCommit, RecAbort:
			continue
		}
		if _, ok := tables[r.Table]; !ok {
			return 0, skipped, fmt.Errorf("wal: no applier for table %d", r.Table)
		}
		key := rowKey{table: r.Table, rid: r.RID}
		cur, seen := state[key]
		if !seen {
			order = append(order, key)
		}
		if committed[r.Txn] {
			state[key] = rowState{image: r.After, known: true}
			continue
		}
		skipped++
		if !cur.known {
			state[key] = rowState{image: r.Before, known: true}
		}
	}
	for _, key := range order {
		if err := tables[key.table].Apply(key.rid, state[key].image); err != nil {
			return applied, skipped, fmt.Errorf("wal: apply table %d rid %d: %w",
				key.table, key.rid, err)
		}
		applied++
	}
	return applied, skipped, nil
}
