// Package wal implements the engine's write-ahead log: physiological
// records carrying full before/after images, commit/abort records, and
// recovery by reconstructing each row's committed state in log order
// against the durable page store.
//
// Durability boundary: commit and abort records *force* the log — bytes up
// to and including them are durable and survive power loss. Records after
// the force watermark live in the volatile log buffer; a crash may lose or
// tear them (CrashTail models this). Every record carries a CRC32-C, so
// recovery detects a torn or corrupted tail and truncates the log at the
// first bad record instead of replaying garbage. The buffer manager calls
// Force before stealing a dirty page, so any page image on disk is always
// covered by durable log records (the WAL rule).
//
// The throughput model charges one log-write I/O per transaction (the
// "1 +" term in Table 4's initIO row); by default the engine's log
// mirrors that: one forced write per commit. With group commit enabled
// (SetGroupCommit), committing transactions enqueue as durability waiters
// and a leader performs ONE force covering the whole batch, amortizing
// the per-transaction log I/O the model charges — the lever Gray's TPC
// retrospective credits for real systems beating the naive bound. The
// acknowledgment rule is unchanged: Append returns only after the
// caller's commit record is inside the forced prefix.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"tpccmodel/internal/rng"
)

// RecType tags a log record.
type RecType uint8

// Record types.
const (
	RecInsert RecType = iota
	RecUpdate
	RecDelete
	RecCommit
	RecAbort
	// RecPrepare marks a participant branch of a distributed transaction
	// as prepared (two-phase commit). Like commit and abort records it is
	// forced, so a prepared branch survives any crash; its RID field
	// carries the global transaction id (gid) instead of a row address.
	RecPrepare
)

// String names the record type.
func (t RecType) String() string {
	switch t {
	case RecInsert:
		return "insert"
	case RecUpdate:
		return "update"
	case RecDelete:
		return "delete"
	case RecCommit:
		return "commit"
	case RecAbort:
		return "abort"
	case RecPrepare:
		return "prepare"
	default:
		return fmt.Sprintf("rec(%d)", uint8(t))
	}
}

// forced reports whether records of this type force the log when appended.
func (t RecType) forced() bool {
	return t == RecCommit || t == RecAbort || t == RecPrepare
}

// Log corruption sentinels.
var (
	// ErrCorrupt marks a record whose checksum failed.
	ErrCorrupt = errors.New("wal: corrupt record")
	// ErrTruncated marks a record cut off by the end of the log.
	ErrTruncated = errors.New("wal: truncated record")
)

// LSN is a log sequence number (1-based; 0 means "none").
type LSN uint64

// Record is one log entry. Table/RID address the record. After is the
// full after-image (nil for Delete: the row is absent afterwards); Before
// is the full before-image (nil for Insert: the row was absent before).
// Before-images make recovery correct under a *steal* buffer policy — the
// engine's buffer manager may flush a dirty page of an uncommitted
// transaction on eviction, so recovery must be able to restore the
// pre-transaction value.
type Record struct {
	LSN    LSN
	Txn    uint64
	Type   RecType
	Table  uint32
	RID    uint64 // packed storage.RID
	Before []byte
	After  []byte
}

// Header layout: crc32c | lsn | txn | type | table | rid | blen | alen.
// The CRC covers everything after itself, including both images.
const recHeader = 4 + 8 + 8 + 1 + 4 + 8 + 4 + 4

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// encode appends the serialized record to buf.
func (r Record) encode(buf []byte) []byte {
	start := len(buf)
	var tmp [recHeader]byte
	binary.LittleEndian.PutUint64(tmp[4:12], uint64(r.LSN))
	binary.LittleEndian.PutUint64(tmp[12:20], r.Txn)
	tmp[20] = byte(r.Type)
	binary.LittleEndian.PutUint32(tmp[21:25], r.Table)
	binary.LittleEndian.PutUint64(tmp[25:33], r.RID)
	binary.LittleEndian.PutUint32(tmp[33:37], uint32(len(r.Before)))
	binary.LittleEndian.PutUint32(tmp[37:41], uint32(len(r.After)))
	buf = append(buf, tmp[:]...)
	buf = append(buf, r.Before...)
	buf = append(buf, r.After...)
	crc := crc32.Checksum(buf[start+4:], castagnoli)
	binary.LittleEndian.PutUint32(buf[start:start+4], crc)
	return buf
}

// decodeRecord reads one record from buf, returning it and the remainder.
// It fails with ErrTruncated when buf ends mid-record and ErrCorrupt when
// the checksum does not match.
func decodeRecord(buf []byte) (Record, []byte, error) {
	if len(buf) < recHeader {
		return Record{}, nil, fmt.Errorf("wal: record header cut at %d bytes: %w",
			len(buf), ErrTruncated)
	}
	nb := int(binary.LittleEndian.Uint32(buf[33:37]))
	na := int(binary.LittleEndian.Uint32(buf[37:41]))
	total := recHeader + nb + na
	if nb < 0 || na < 0 || total < recHeader || total > len(buf) {
		return Record{}, nil, fmt.Errorf("wal: record body cut (%d of %d bytes): %w",
			len(buf), total, ErrTruncated)
	}
	want := binary.LittleEndian.Uint32(buf[0:4])
	if crc32.Checksum(buf[4:total], castagnoli) != want {
		return Record{}, nil, fmt.Errorf("wal: checksum mismatch: %w", ErrCorrupt)
	}
	r := Record{
		LSN:   LSN(binary.LittleEndian.Uint64(buf[4:12])),
		Txn:   binary.LittleEndian.Uint64(buf[12:20]),
		Type:  RecType(buf[20]),
		Table: binary.LittleEndian.Uint32(buf[21:25]),
		RID:   binary.LittleEndian.Uint64(buf[25:33]),
	}
	body := buf[recHeader:total]
	if nb > 0 {
		r.Before = append([]byte(nil), body[:nb]...)
	}
	if na > 0 {
		r.After = append([]byte(nil), body[nb:nb+na]...)
	}
	return r, buf[total:], nil
}

// FaultHook intercepts log-device operations; the fault package installs
// one to fail or crash commit forces. A nil hook means a perfect device.
type FaultHook interface {
	// BeforeForce runs before n buffered bytes become durable. Returning
	// an error fails the force: the caller's record is not appended and
	// the watermark does not advance.
	BeforeForce(n int) error
}

// GroupConfig configures commit batching. The zero value (and any
// MaxBatch <= 1) degenerates to the seed behavior: every commit/abort
// record is forced individually by its own appender.
type GroupConfig struct {
	// MaxBatch is the maximum number of commit/abort records covered by
	// one force. <= 1 disables grouping.
	MaxBatch int
	// MaxHold bounds how long a batch leader waits for followers before
	// forcing a partial batch. 0 forces whatever is queued immediately.
	MaxHold time.Duration
	// AdaptiveHold makes the leader's hold depend on observed commit
	// traffic instead of always sleeping MaxHold: the leader skips the
	// hold when it is the only active committer (or when the EWMA of
	// commit-arrival intervals says no follower is likely within the
	// window), and otherwise holds min(MaxHold, 2×EWMA). Requires the
	// database layer to bracket transactions with TxnStart/TxnEnd.
	// False preserves the fixed-hold behavior for A/B comparison.
	AdaptiveHold bool
}

// Enabled reports whether the configuration actually batches.
func (g GroupConfig) Enabled() bool { return g.MaxBatch > 1 }

// DefaultGroupConfig is the batching configuration the CLIs use by
// default: adaptive hold so a solo committer is never taxed MaxHold.
func DefaultGroupConfig() GroupConfig {
	return GroupConfig{MaxBatch: 64, MaxHold: 200 * time.Microsecond, AdaptiveHold: true}
}

// forceWaiter is one transaction blocked on commit durability. Its
// record is held here — NOT in the log buffer — until a leader appends
// and forces it, so an unforced commit record can never leak into the
// durable prefix through a WAL-rule Force or a crash.
type forceWaiter struct {
	rec  Record
	lsn  LSN
	err  error
	done chan struct{}
}

// Log is the engine's log device. The forced prefix survives crashes (the
// log device is separate from the data disks, as the paper assumes); the
// unforced tail is volatile buffer contents.
type Log struct {
	mu        sync.Mutex
	data      []byte
	next      LSN
	forces    int64 // commit/abort forces (the model's per-txn log I/O)
	syncs     int64 // WAL-rule forces issued by the buffer manager
	forcedLen int
	hook      FaultHook

	// Group-commit state: queued durability waiters, whether a leader is
	// draining them, and a capacity-1 signal that wakes a holding leader
	// early when the queue reaches MaxBatch (or, under adaptive hold,
	// when every active committer has arrived).
	group     GroupConfig
	queue     []*forceWaiter
	leading   bool
	batchFull chan struct{}

	// Adaptive-hold state. active counts transactions between TxnStart
	// and TxnEnd — committers that could still show up as followers.
	// ewmaGap (nanoseconds, under mu) tracks the recent inter-arrival
	// time of forced records; lastForced is the previous arrival. holds
	// counts leader holds actually taken (observability for tests and
	// the bench reports).
	active     atomic.Int64
	ewmaGap    float64
	lastForced time.Time
	holds      int64
}

// New creates an empty log.
func New() *Log { return &Log{next: 1, batchFull: make(chan struct{}, 1)} }

// SetFaultHook installs a log-device fault hook (nil disables).
func (l *Log) SetFaultHook(h FaultHook) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.hook = h
}

// SetGroupCommit configures commit batching (zero value disables).
func (l *Log) SetGroupCommit(cfg GroupConfig) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.group = cfg
}

// GroupCommit returns the current batching configuration.
func (l *Log) GroupCommit() GroupConfig {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.group
}

// TxnStart registers an active transaction. The database layer brackets
// every transaction with TxnStart/TxnEnd so an adaptive batch leader can
// tell whether any other committer could still arrive; the pair must
// balance exactly once per transaction regardless of outcome.
func (l *Log) TxnStart() { l.active.Add(1) }

// TxnEnd unregisters an active transaction.
func (l *Log) TxnEnd() { l.active.Add(-1) }

// Active returns the number of registered in-flight transactions.
func (l *Log) Active() int64 { return l.active.Load() }

// ResetActive clears the active-transaction count. Crash recovery calls
// it: transactions open at the crash died without TxnEnd and must not be
// counted as potential committers afterwards.
func (l *Log) ResetActive() { l.active.Store(0) }

// Holds returns how many times a batch leader actually held for
// followers (adaptive leaders that force immediately do not count).
func (l *Log) Holds() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.holds
}

// Grow ensures the log buffer can absorb at least n more bytes without
// reallocating — lets benchmarks and allocation-regression tests keep
// amortized buffer doubling out of the measured loop.
func (l *Log) Grow(n int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if cap(l.data)-len(l.data) < n {
		grown := make([]byte, len(l.data), len(l.data)+n)
		copy(grown, l.data)
		l.data = grown
	}
}

// observeArrival folds one forced-record arrival into the inter-arrival
// EWMA. Intervals are clamped to 8×MaxHold so an idle stretch does not
// poison the estimate for minutes of traffic after it resumes. Called
// with l.mu held.
func (l *Log) observeArrival(now time.Time) {
	if !l.lastForced.IsZero() {
		gap := float64(now.Sub(l.lastForced))
		if clamp := 8 * float64(l.group.MaxHold); l.group.MaxHold > 0 && gap > clamp {
			gap = clamp
		}
		const alpha = 0.25
		if l.ewmaGap == 0 {
			l.ewmaGap = gap
		} else {
			l.ewmaGap += alpha * (gap - l.ewmaGap)
		}
	}
	l.lastForced = now
}

// Append writes one record (assigning its LSN) and returns the LSN.
// Commit, abort, and prepare records force the log before Append returns;
// a force failure drops the record entirely and returns the error — the
// commit (or prepare vote) was never acknowledged and must not become
// durable later. With group commit enabled, the force may be performed by
// another transaction's batch leader, but the durability guarantee at
// return is identical.
func (l *Log) Append(r Record) (LSN, error) {
	l.mu.Lock()
	if r.Type.forced() {
		if l.group.Enabled() {
			return l.appendGrouped(r) // releases l.mu
		}
		defer l.mu.Unlock()
		r.LSN = l.next
		encoded := r.encode(l.data)
		if l.hook != nil {
			if err := l.hook.BeforeForce(len(encoded)); err != nil {
				return 0, fmt.Errorf("wal: force failed: %w", err)
			}
		}
		l.data = encoded
		l.next++
		l.forces++
		l.forcedLen = len(l.data)
		return r.LSN, nil
	}
	defer l.mu.Unlock()
	r.LSN = l.next
	l.data = r.encode(l.data)
	l.next++
	return r.LSN, nil
}

// appendGrouped enqueues a durability waiter for a commit/abort record.
// The first waiter to arrive while no leader is active becomes the
// leader: it accumulates a batch (up to MaxBatch records, waiting at
// most MaxHold), appends every queued record, performs ONE force
// covering them all, and wakes the batch. Later arrivals are followers
// and just block until their record is durable (or the batch force
// failed). Called with l.mu held; releases it.
func (l *Log) appendGrouped(r Record) (LSN, error) {
	if l.group.AdaptiveHold {
		l.observeArrival(time.Now())
		// Solo fast path: no leader draining, nothing queued, and no
		// other active committer that could join a batch — force inline
		// exactly like the ungrouped path, with no waiter or channel.
		if !l.leading && len(l.queue) == 0 && l.active.Load() <= 1 {
			defer l.mu.Unlock()
			r.LSN = l.next
			encoded := r.encode(l.data)
			if l.hook != nil {
				if err := l.hook.BeforeForce(len(encoded)); err != nil {
					return 0, fmt.Errorf("wal: force failed: %w", err)
				}
			}
			l.data = encoded
			l.next++
			l.forces++
			l.forcedLen = len(l.data)
			return r.LSN, nil
		}
	}
	w := &forceWaiter{rec: r, done: make(chan struct{})}
	l.queue = append(l.queue, w)
	if l.leading {
		full := len(l.queue) >= l.group.MaxBatch
		if l.group.AdaptiveHold && int64(len(l.queue)) >= l.active.Load() {
			// Every registered committer has arrived; nobody is left
			// for the leader to hold for.
			full = true
		}
		if full {
			select {
			case l.batchFull <- struct{}{}:
			default:
			}
		}
		l.mu.Unlock()
		<-w.done
		return w.lsn, w.err
	}
	l.leading = true
	l.lead()
	l.leading = false
	l.mu.Unlock()
	return w.lsn, w.err
}

// lead drains the waiter queue in batches. Only the first batch holds
// for followers: the leader's own record is in it, so its commit
// latency is bounded by MaxHold plus one force. Batches that queued up
// during a force are drained immediately afterwards, so the queue is
// empty — and every waiter resolved — when lead returns. Called with
// l.mu held; temporarily releases it while holding for followers.
func (l *Log) lead() {
	for first := true; len(l.queue) > 0; first = false {
		hold := l.holdFor()
		if first && hold > 0 && len(l.queue) < l.group.MaxBatch {
			l.holds++
			if l.group.AdaptiveHold {
				l.yieldHold(hold)
			} else {
				select {
				case <-l.batchFull: // drain a stale signal
				default:
				}
				l.mu.Unlock()
				t := time.NewTimer(hold)
				select {
				case <-l.batchFull:
					t.Stop()
				case <-t.C:
				}
				l.mu.Lock()
			}
		}
		n := len(l.queue)
		if max := l.group.MaxBatch; max > 1 && n > max {
			n = max
		}
		batch := l.queue[:n:n]
		l.queue = l.queue[n:]
		l.forceBatch(batch)
	}
	l.queue = nil
}

// maxIdleYields bounds how many consecutive unproductive scheduler
// yields an adaptive leader tolerates before forcing. A follower that is
// runnable commits within a yield or two; one that never enqueues across
// this many yields is almost certainly blocked — typically on a lock the
// leader's own transaction holds, a wait that can only end after this
// force — so continuing to wait is a self-inflicted convoy.
const maxIdleYields = 8

// yieldHold is the adaptive leader's hold: instead of a timer sleep
// (whose real latency is kernel-timer granularity, often 5x the
// microsecond budgets used here), the leader repeatedly yields the
// processor so runnable committers can reach their enqueue, and stops as
// soon as every active committer has arrived, the batch is full, the
// budget is spent, or yields stop producing arrivals. On a loaded single
// core the "hold" therefore costs only the useful work of the followers
// it harvests. Called with l.mu held; releases and reacquires it around
// each yield.
func (l *Log) yieldHold(budget time.Duration) {
	deadline := time.Now().Add(budget)
	idle := 0
	for int64(len(l.queue)) < l.active.Load() && len(l.queue) < l.group.MaxBatch && idle < maxIdleYields {
		prev := len(l.queue)
		l.mu.Unlock()
		runtime.Gosched()
		l.mu.Lock()
		if len(l.queue) > prev {
			idle = 0
		} else {
			idle++
		}
		if !time.Now().Before(deadline) {
			return
		}
	}
}

// holdFor decides how long the leader should wait for followers before
// forcing. Fixed mode always returns MaxHold (the seed behavior).
// Adaptive mode returns 0 — force immediately — when no other committer
// is active (everyone registered is already queued) or when the recent
// commit-arrival interval says no follower is likely inside the window;
// otherwise it holds just long enough for the expected arrivals,
// min(MaxHold, 2×EWMA). Called with l.mu held.
func (l *Log) holdFor() time.Duration {
	if !l.group.AdaptiveHold {
		return l.group.MaxHold
	}
	others := l.active.Load() - int64(len(l.queue))
	if others <= 0 {
		return 0
	}
	if l.ewmaGap == 0 {
		return l.group.MaxHold
	}
	if l.ewmaGap > float64(l.group.MaxHold) {
		return 0
	}
	if hold := time.Duration(2 * l.ewmaGap); hold < l.group.MaxHold {
		return hold
	}
	return l.group.MaxHold
}

// forceBatch appends every waiter's record and makes them durable with a
// single force. On force failure the appended records are rolled back out
// of the buffer — none of them was acknowledged, so none may become
// durable later — and every waiter in the batch receives the error.
// Called with l.mu held.
func (l *Log) forceBatch(batch []*forceWaiter) {
	start := len(l.data)
	nextStart := l.next
	for _, w := range batch {
		w.rec.LSN = l.next
		l.data = w.rec.encode(l.data)
		l.next++
	}
	if l.hook != nil {
		if err := l.hook.BeforeForce(len(l.data)); err != nil {
			l.data = l.data[:start]
			l.next = nextStart
			err = fmt.Errorf("wal: force failed: %w", err)
			for _, w := range batch {
				w.err = err
				close(w.done)
			}
			return
		}
	}
	l.forcedLen = len(l.data)
	l.forces++
	for _, w := range batch {
		w.lsn = w.rec.LSN
		close(w.done)
	}
}

// Force makes the whole buffered log durable. The buffer manager calls it
// before flushing a dirty page (the WAL rule), so before-images of stolen
// pages always survive a crash.
func (l *Log) Force() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.forcedLen == len(l.data) {
		return nil
	}
	if l.hook != nil {
		if err := l.hook.BeforeForce(len(l.data)); err != nil {
			return fmt.Errorf("wal: force failed: %w", err)
		}
	}
	l.forcedLen = len(l.data)
	l.syncs++
	return nil
}

// Forces returns the number of forced (commit/abort) log writes — the
// model's one-log-I/O-per-transaction term.
func (l *Log) Forces() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.forces
}

// Syncs returns the number of WAL-rule forces (page-steal protection).
func (l *Log) Syncs() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.syncs
}

// Size returns the log size in bytes.
func (l *Log) Size() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return int64(len(l.data))
}

// DurableSize returns the forced (crash-surviving) prefix length.
func (l *Log) DurableSize() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return int64(l.forcedLen)
}

// CrashTail simulates power loss on the log device: the forced prefix
// survives; of the unforced tail, a random (seeded) prefix may reach the
// platter, and the last sector of what landed may be torn — one of its
// bits flips. Recovery's checksum scan truncates at the damage.
func (l *Log) CrashTail(r *rng.RNG) {
	l.mu.Lock()
	defer l.mu.Unlock()
	tail := len(l.data) - l.forcedLen
	if tail <= 0 {
		return
	}
	keep := l.forcedLen + int(r.Int63n(int64(tail)+1))
	if keep > l.forcedLen && r.Bernoulli(0.5) {
		off := l.forcedLen + int(r.Int63n(int64(keep-l.forcedLen)))
		l.data[off] ^= byte(1) << uint(r.Int63n(8))
	}
	l.data = l.data[:keep]
	l.forcedLen = keep
}

// Scan decodes records from the start of the log until the end or the
// first truncated/corrupt record. It returns the records of the valid
// prefix, the prefix length in bytes, and the decode error that stopped
// the scan (nil when the whole log parsed).
func (l *Log) Scan() ([]Record, int64, error) {
	l.mu.Lock()
	buf := append([]byte(nil), l.data...)
	l.mu.Unlock()
	var out []Record
	valid := 0
	rest := buf
	for len(rest) > 0 {
		r, next, err := decodeRecord(rest)
		if err != nil {
			return out, int64(valid), err
		}
		out = append(out, r)
		valid = len(buf) - len(next)
		rest = next
	}
	return out, int64(valid), nil
}

// Records decodes the whole log, failing if any record is damaged (strict
// form, for tests; recovery uses Scan and truncates instead).
func (l *Log) Records() ([]Record, error) {
	recs, _, err := l.Scan()
	if err != nil {
		return nil, err
	}
	return recs, nil
}

// TruncateTo discards everything past the first n bytes (the valid prefix
// Scan reported). Future appends continue from the truncation point.
func (l *Log) TruncateTo(n int64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if n < 0 || n > int64(len(l.data)) {
		return
	}
	l.data = l.data[:n]
	if l.forcedLen > int(n) {
		l.forcedLen = int(n)
	}
}

// Applier materializes a row's recovered state during recovery.
type Applier interface {
	// Apply makes image the row's content at rid; a nil image means the
	// row must be absent. Implementations must be idempotent and
	// tolerant of the durable page already holding the target state.
	Apply(rid uint64, image []byte) error
}

// RecoverStats reports what recovery did.
type RecoverStats struct {
	Applied            int64 // rows materialized
	SkippedUncommitted int64 // records of uncommitted/aborted transactions
	TruncatedBytes     int64 // log bytes discarded past the valid prefix
	TailCorrupt        bool  // truncation was due to a checksum mismatch
}

// Recover reconstructs the committed state per row and applies it through
// the per-table appliers. The log is first scanned up to the first
// damaged record; everything past that point is discarded (it can only be
// unacknowledged tail — commits force the log, so an acknowledged commit
// is always inside the valid prefix). For every (table, rid) the valid
// prefix touches, walking records in LSN order:
//
//   - a record of a COMMITTED transaction sets the row's state to its
//     after-image (nil for a delete);
//   - a record of an uncommitted, aborted, or in-doubt (prepared but
//     undecided) transaction establishes the row's state as its
//     BEFORE-image, but only if no state is known yet (strict 2PL
//     guarantees a later committed write supersedes it, and an earlier
//     committed write already equals that before-image).
//
// This is exact under the engine's steal/no-force buffer policy: a dirty
// uncommitted page flushed before the crash is rolled back by the
// before-image, and an unflushed committed change is re-applied by the
// after-image. RecoverDist additionally surfaces in-doubt transactions so
// the two-phase-commit layer can resolve them.
func Recover(l *Log, tables map[uint32]Applier) (RecoverStats, error) {
	st, _, err := RecoverDist(l, tables)
	return st, err
}
