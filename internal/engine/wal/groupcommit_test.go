package wal

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"tpccmodel/internal/rng"
)

// countingHook counts forces and optionally fails them.
type countingHook struct {
	mu     sync.Mutex
	forces int
	fail   error // returned by every force while non-nil
}

func (h *countingHook) BeforeForce(n int) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.forces++
	return h.fail
}

// TestGroupCommitBatchesConcurrentCommits commits from many goroutines
// under a grouped log and checks (a) every commit is durable at Append
// return, (b) the batch leader's single force covered several commits.
func TestGroupCommitBatchesConcurrentCommits(t *testing.T) {
	const committers = 16
	l := New()
	l.SetGroupCommit(GroupConfig{MaxBatch: committers, MaxHold: 20 * time.Millisecond})
	var wg sync.WaitGroup
	lsns := make([]LSN, committers)
	for i := 0; i < committers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			txn := uint64(i + 1)
			if _, err := l.Append(Record{Txn: txn, Type: RecUpdate, Table: 1,
				RID: txn, Before: []byte{0}, After: []byte{byte(i)}}); err != nil {
				t.Error(err)
				return
			}
			lsn, err := l.Append(Record{Txn: txn, Type: RecCommit})
			if err != nil {
				t.Error(err)
				return
			}
			// Acknowledgment rule: the commit record must already be
			// inside the forced prefix when Append returns.
			if durable := l.DurableSize(); durable < int64(recHeader) {
				t.Errorf("txn %d acked with durable prefix %d bytes", txn, durable)
			}
			lsns[i] = lsn
		}(i)
	}
	wg.Wait()
	if l.DurableSize() != l.Size() {
		t.Errorf("durable %d != size %d after all commits acked", l.DurableSize(), l.Size())
	}
	recs, err := l.Records()
	if err != nil {
		t.Fatal(err)
	}
	commits := map[uint64]bool{}
	for _, r := range recs {
		if r.Type == RecCommit {
			commits[r.Txn] = true
		}
	}
	if len(commits) != committers {
		t.Errorf("%d commit records, want %d", len(commits), committers)
	}
	seen := map[LSN]bool{}
	for i, lsn := range lsns {
		if lsn == 0 || seen[lsn] {
			t.Errorf("committer %d got duplicate or zero LSN %d", i, lsn)
		}
		seen[lsn] = true
	}
	if f := l.Forces(); f >= committers {
		t.Errorf("grouped log issued %d forces for %d commits, want fewer", f, committers)
	} else {
		t.Logf("%d commits in %d forces", committers, f)
	}
}

// TestGroupCommitDegeneratesAtBatchOne checks MaxBatch <= 1 keeps the
// seed behavior: one force per commit/abort record.
func TestGroupCommitDegeneratesAtBatchOne(t *testing.T) {
	for _, cfg := range []GroupConfig{{}, {MaxBatch: 1, MaxHold: time.Millisecond}} {
		l := New()
		l.SetGroupCommit(cfg)
		for txn := uint64(1); txn <= 5; txn++ {
			ap(t, l, Record{Txn: txn, Type: RecInsert, Table: 1, RID: txn, After: []byte{1}})
			ap(t, l, Record{Txn: txn, Type: RecCommit})
		}
		if l.Forces() != 5 {
			t.Errorf("cfg %+v: Forces = %d, want 5", cfg, l.Forces())
		}
		if l.DurableSize() != l.Size() {
			t.Errorf("cfg %+v: unforced tail after commits", cfg)
		}
	}
}

// TestGroupCommitForceFailureDropsBatch fails the batch force and checks
// no commit record of the failed batch remains in the buffer — so no
// later force (WAL rule or next batch) can make an unacknowledged commit
// durable.
func TestGroupCommitForceFailureDropsBatch(t *testing.T) {
	l := New()
	hook := &countingHook{fail: errors.New("device gone")}
	l.SetFaultHook(hook)
	l.SetGroupCommit(GroupConfig{MaxBatch: 8, MaxHold: 10 * time.Millisecond})
	// Data records do not force and stay in the buffer.
	ap(t, l, Record{Txn: 1, Type: RecUpdate, Table: 1, RID: 1, Before: []byte{0}, After: []byte{1}})
	sizeBefore := l.Size()
	var wg sync.WaitGroup
	var failures atomic.Int64
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := l.Append(Record{Txn: uint64(i + 1), Type: RecCommit}); err != nil {
				failures.Add(1)
			}
		}(i)
	}
	wg.Wait()
	if failures.Load() != 4 {
		t.Fatalf("%d of 4 commits failed, want all", failures.Load())
	}
	if l.Size() != sizeBefore {
		t.Errorf("failed batch left %d bytes in the buffer", l.Size()-sizeBefore)
	}
	// The device recovers; a fresh commit must succeed and the log must
	// contain no ghost of the failed batch.
	hook.mu.Lock()
	hook.fail = nil
	hook.mu.Unlock()
	ap(t, l, Record{Txn: 9, Type: RecCommit})
	recs, err := l.Records()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if r.Type == RecCommit && r.Txn != 9 {
			t.Errorf("ghost commit record for txn %d survived the failed force", r.Txn)
		}
	}
	if l.DurableSize() != l.Size() {
		t.Errorf("durable %d != size %d", l.DurableSize(), l.Size())
	}
}

// TestGroupCommitWALRuleForceLeaksNoCommit interleaves WAL-rule Force
// calls with a failing grouped commit: because commit records are
// appended only by the batch leader immediately before its force, a
// concurrent Force can never publish an unacknowledged commit.
func TestGroupCommitWALRuleForceLeaksNoCommit(t *testing.T) {
	l := New()
	hook := &countingHook{fail: fmt.Errorf("no force: %w", errors.New("down"))}
	l.SetFaultHook(hook)
	l.SetGroupCommit(GroupConfig{MaxBatch: 4, MaxHold: 5 * time.Millisecond})
	done := make(chan struct{})
	go func() {
		defer close(done)
		if _, err := l.Append(Record{Txn: 7, Type: RecCommit}); err == nil {
			t.Error("commit succeeded under a dead log device")
		}
	}()
	// Hammer the steal-rule force while the commit is pending; it fails
	// too (hook), but even a success could not cover the commit record.
	for i := 0; i < 100; i++ {
		_ = l.Force()
	}
	<-done
	hook.mu.Lock()
	hook.fail = nil
	hook.mu.Unlock()
	if err := l.Force(); err != nil {
		t.Fatal(err)
	}
	recs, err := l.Records()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if r.Type == RecCommit {
			t.Errorf("unacknowledged commit for txn %d became durable", r.Txn)
		}
	}
}

// TestGroupCommitSurvivesCrashTail commits under grouping, damages the
// unforced tail, and checks every acknowledged commit is inside the
// valid prefix recovery keeps.
func TestGroupCommitSurvivesCrashTail(t *testing.T) {
	l := New()
	l.SetGroupCommit(GroupConfig{MaxBatch: 4, MaxHold: time.Millisecond})
	for txn := uint64(1); txn <= 6; txn++ {
		ap(t, l, Record{Txn: txn, Type: RecInsert, Table: 1, RID: txn, After: []byte{byte(txn)}})
		ap(t, l, Record{Txn: txn, Type: RecCommit})
	}
	// Unforced tail: a data record of an in-flight transaction.
	ap(t, l, Record{Txn: 99, Type: RecInsert, Table: 1, RID: 99, After: []byte{9}})
	l.CrashTail(rng.New(42))
	recs, _, _ := l.Scan()
	committed := map[uint64]bool{}
	for _, r := range recs {
		if r.Type == RecCommit {
			committed[r.Txn] = true
		}
	}
	for txn := uint64(1); txn <= 6; txn++ {
		if !committed[txn] {
			t.Errorf("acknowledged commit %d lost to tail damage", txn)
		}
	}
}

// TestGroupCommitSequentialDoesNotStall checks a lone committer is not
// blocked beyond MaxHold waiting for followers that never arrive.
func TestGroupCommitSequentialDoesNotStall(t *testing.T) {
	l := New()
	l.SetGroupCommit(GroupConfig{MaxBatch: 64, MaxHold: 5 * time.Millisecond})
	start := time.Now()
	ap(t, l, Record{Txn: 1, Type: RecCommit})
	if d := time.Since(start); d > time.Second {
		t.Errorf("lone commit took %v", d)
	}
	if l.Forces() != 1 {
		t.Errorf("Forces = %d, want 1", l.Forces())
	}
}

// commitN runs n sequential registered commits and returns the elapsed
// wall time. Each iteration brackets with TxnStart/TxnEnd the way the
// database layer does.
func commitN(t *testing.T, l *Log, n int) time.Duration {
	t.Helper()
	start := time.Now()
	for i := 1; i <= n; i++ {
		l.TxnStart()
		ap(t, l, Record{Txn: uint64(i), Type: RecCommit})
		l.TxnEnd()
	}
	return time.Since(start)
}

// TestAdaptiveSoloLeaderForcesImmediately is the 1-worker regression
// case: with adaptive hold, a single committer must force immediately —
// no hold, no waiter handoff — so grouped latency stays within 2× of
// ungrouped instead of eating MaxHold per commit.
func TestAdaptiveSoloLeaderForcesImmediately(t *testing.T) {
	const n = 2000
	plain := New()
	ungrouped := commitN(t, plain, n)

	l := New()
	l.SetGroupCommit(GroupConfig{MaxBatch: 64, MaxHold: 200 * time.Microsecond, AdaptiveHold: true})
	grouped := commitN(t, l, n)

	if l.Forces() != n {
		t.Errorf("Forces = %d, want %d (solo commits cannot batch)", l.Forces(), n)
	}
	if l.Holds() != 0 {
		t.Errorf("Holds = %d, want 0: a solo leader must never hold", l.Holds())
	}
	if l.DurableSize() != l.Size() {
		t.Errorf("durable %d != size %d after solo commits", l.DurableSize(), l.Size())
	}
	// 2× the ungrouped run plus scheduling slack. The fixed-hold config
	// would be ~MaxHold×n ≈ 400ms slower, far outside this bound.
	limit := 2*ungrouped + 20*time.Millisecond
	if grouped > limit {
		t.Errorf("solo grouped latency %v exceeds limit %v (ungrouped %v)", grouped, limit, ungrouped)
	}
	t.Logf("solo: ungrouped %v, adaptive grouped %v for %d commits", ungrouped, grouped, n)
}

// TestAdaptiveHoldBatchesConcurrentCommits checks adaptive mode still
// amortizes forces when committers really are concurrent: every commit
// is durable at ack and the batch leaders issued fewer forces than
// commits.
func TestAdaptiveHoldBatchesConcurrentCommits(t *testing.T) {
	const committers = 8
	l := New()
	l.SetGroupCommit(GroupConfig{MaxBatch: committers, MaxHold: 20 * time.Millisecond, AdaptiveHold: true})
	for i := 0; i < committers; i++ {
		l.TxnStart()
	}
	var wg sync.WaitGroup
	for i := 0; i < committers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer l.TxnEnd()
			txn := uint64(i + 1)
			if _, err := l.Append(Record{Txn: txn, Type: RecCommit}); err != nil {
				t.Error(err)
				return
			}
			if durable := l.DurableSize(); durable < int64(recHeader) {
				t.Errorf("txn %d acked with durable prefix %d bytes", txn, durable)
			}
		}(i)
	}
	wg.Wait()
	if l.Active() != 0 {
		t.Errorf("Active = %d after all commits ended, want 0", l.Active())
	}
	if f := l.Forces(); f >= committers {
		t.Errorf("adaptive grouped log issued %d forces for %d commits, want fewer", f, committers)
	} else {
		t.Logf("%d commits in %d forces, %d holds", committers, f, l.Holds())
	}
}

// TestAdaptiveHoldSkipsWhenArrivalsAreSlow checks the EWMA gate: with
// another committer active but arriving far slower than MaxHold, the
// leader learns the interval and stops holding.
func TestAdaptiveHoldSkipsWhenArrivalsAreSlow(t *testing.T) {
	l := New()
	const maxHold = time.Millisecond
	l.SetGroupCommit(GroupConfig{MaxBatch: 64, MaxHold: maxHold, AdaptiveHold: true})
	l.TxnStart() // a long-running transaction that never commits
	defer l.TxnEnd()

	// First commit has no interval history (EWMA empty) and another
	// active transaction, so the leader may hold once.
	l.TxnStart()
	ap(t, l, Record{Txn: 1, Type: RecCommit})
	l.TxnEnd()
	warmupHolds := l.Holds()

	// Subsequent commits arrive 5×MaxHold apart; the clamped EWMA sits
	// above MaxHold, so holding can never pay off and must stop.
	for i := 2; i <= 5; i++ {
		time.Sleep(5 * maxHold)
		l.TxnStart()
		ap(t, l, Record{Txn: uint64(i), Type: RecCommit})
		l.TxnEnd()
	}
	if h := l.Holds(); h != warmupHolds {
		t.Errorf("leader held %d more times despite slow arrivals", h-warmupHolds)
	}
}

// TestDefaultGroupConfig pins the CLI-facing defaults.
func TestDefaultGroupConfig(t *testing.T) {
	g := DefaultGroupConfig()
	if !g.Enabled() || !g.AdaptiveHold {
		t.Fatalf("DefaultGroupConfig = %+v, want enabled adaptive config", g)
	}
	if g.MaxBatch != 64 || g.MaxHold != 200*time.Microsecond {
		t.Fatalf("DefaultGroupConfig = %+v, want MaxBatch 64, MaxHold 200µs", g)
	}
}
