package wal

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"tpccmodel/internal/rng"
)

// countingHook counts forces and optionally fails them.
type countingHook struct {
	mu     sync.Mutex
	forces int
	fail   error // returned by every force while non-nil
}

func (h *countingHook) BeforeForce(n int) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.forces++
	return h.fail
}

// TestGroupCommitBatchesConcurrentCommits commits from many goroutines
// under a grouped log and checks (a) every commit is durable at Append
// return, (b) the batch leader's single force covered several commits.
func TestGroupCommitBatchesConcurrentCommits(t *testing.T) {
	const committers = 16
	l := New()
	l.SetGroupCommit(GroupConfig{MaxBatch: committers, MaxHold: 20 * time.Millisecond})
	var wg sync.WaitGroup
	lsns := make([]LSN, committers)
	for i := 0; i < committers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			txn := uint64(i + 1)
			if _, err := l.Append(Record{Txn: txn, Type: RecUpdate, Table: 1,
				RID: txn, Before: []byte{0}, After: []byte{byte(i)}}); err != nil {
				t.Error(err)
				return
			}
			lsn, err := l.Append(Record{Txn: txn, Type: RecCommit})
			if err != nil {
				t.Error(err)
				return
			}
			// Acknowledgment rule: the commit record must already be
			// inside the forced prefix when Append returns.
			if durable := l.DurableSize(); durable < int64(recHeader) {
				t.Errorf("txn %d acked with durable prefix %d bytes", txn, durable)
			}
			lsns[i] = lsn
		}(i)
	}
	wg.Wait()
	if l.DurableSize() != l.Size() {
		t.Errorf("durable %d != size %d after all commits acked", l.DurableSize(), l.Size())
	}
	recs, err := l.Records()
	if err != nil {
		t.Fatal(err)
	}
	commits := map[uint64]bool{}
	for _, r := range recs {
		if r.Type == RecCommit {
			commits[r.Txn] = true
		}
	}
	if len(commits) != committers {
		t.Errorf("%d commit records, want %d", len(commits), committers)
	}
	seen := map[LSN]bool{}
	for i, lsn := range lsns {
		if lsn == 0 || seen[lsn] {
			t.Errorf("committer %d got duplicate or zero LSN %d", i, lsn)
		}
		seen[lsn] = true
	}
	if f := l.Forces(); f >= committers {
		t.Errorf("grouped log issued %d forces for %d commits, want fewer", f, committers)
	} else {
		t.Logf("%d commits in %d forces", committers, f)
	}
}

// TestGroupCommitDegeneratesAtBatchOne checks MaxBatch <= 1 keeps the
// seed behavior: one force per commit/abort record.
func TestGroupCommitDegeneratesAtBatchOne(t *testing.T) {
	for _, cfg := range []GroupConfig{{}, {MaxBatch: 1, MaxHold: time.Millisecond}} {
		l := New()
		l.SetGroupCommit(cfg)
		for txn := uint64(1); txn <= 5; txn++ {
			ap(t, l, Record{Txn: txn, Type: RecInsert, Table: 1, RID: txn, After: []byte{1}})
			ap(t, l, Record{Txn: txn, Type: RecCommit})
		}
		if l.Forces() != 5 {
			t.Errorf("cfg %+v: Forces = %d, want 5", cfg, l.Forces())
		}
		if l.DurableSize() != l.Size() {
			t.Errorf("cfg %+v: unforced tail after commits", cfg)
		}
	}
}

// TestGroupCommitForceFailureDropsBatch fails the batch force and checks
// no commit record of the failed batch remains in the buffer — so no
// later force (WAL rule or next batch) can make an unacknowledged commit
// durable.
func TestGroupCommitForceFailureDropsBatch(t *testing.T) {
	l := New()
	hook := &countingHook{fail: errors.New("device gone")}
	l.SetFaultHook(hook)
	l.SetGroupCommit(GroupConfig{MaxBatch: 8, MaxHold: 10 * time.Millisecond})
	// Data records do not force and stay in the buffer.
	ap(t, l, Record{Txn: 1, Type: RecUpdate, Table: 1, RID: 1, Before: []byte{0}, After: []byte{1}})
	sizeBefore := l.Size()
	var wg sync.WaitGroup
	var failures atomic.Int64
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := l.Append(Record{Txn: uint64(i + 1), Type: RecCommit}); err != nil {
				failures.Add(1)
			}
		}(i)
	}
	wg.Wait()
	if failures.Load() != 4 {
		t.Fatalf("%d of 4 commits failed, want all", failures.Load())
	}
	if l.Size() != sizeBefore {
		t.Errorf("failed batch left %d bytes in the buffer", l.Size()-sizeBefore)
	}
	// The device recovers; a fresh commit must succeed and the log must
	// contain no ghost of the failed batch.
	hook.mu.Lock()
	hook.fail = nil
	hook.mu.Unlock()
	ap(t, l, Record{Txn: 9, Type: RecCommit})
	recs, err := l.Records()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if r.Type == RecCommit && r.Txn != 9 {
			t.Errorf("ghost commit record for txn %d survived the failed force", r.Txn)
		}
	}
	if l.DurableSize() != l.Size() {
		t.Errorf("durable %d != size %d", l.DurableSize(), l.Size())
	}
}

// TestGroupCommitWALRuleForceLeaksNoCommit interleaves WAL-rule Force
// calls with a failing grouped commit: because commit records are
// appended only by the batch leader immediately before its force, a
// concurrent Force can never publish an unacknowledged commit.
func TestGroupCommitWALRuleForceLeaksNoCommit(t *testing.T) {
	l := New()
	hook := &countingHook{fail: fmt.Errorf("no force: %w", errors.New("down"))}
	l.SetFaultHook(hook)
	l.SetGroupCommit(GroupConfig{MaxBatch: 4, MaxHold: 5 * time.Millisecond})
	done := make(chan struct{})
	go func() {
		defer close(done)
		if _, err := l.Append(Record{Txn: 7, Type: RecCommit}); err == nil {
			t.Error("commit succeeded under a dead log device")
		}
	}()
	// Hammer the steal-rule force while the commit is pending; it fails
	// too (hook), but even a success could not cover the commit record.
	for i := 0; i < 100; i++ {
		_ = l.Force()
	}
	<-done
	hook.mu.Lock()
	hook.fail = nil
	hook.mu.Unlock()
	if err := l.Force(); err != nil {
		t.Fatal(err)
	}
	recs, err := l.Records()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if r.Type == RecCommit {
			t.Errorf("unacknowledged commit for txn %d became durable", r.Txn)
		}
	}
}

// TestGroupCommitSurvivesCrashTail commits under grouping, damages the
// unforced tail, and checks every acknowledged commit is inside the
// valid prefix recovery keeps.
func TestGroupCommitSurvivesCrashTail(t *testing.T) {
	l := New()
	l.SetGroupCommit(GroupConfig{MaxBatch: 4, MaxHold: time.Millisecond})
	for txn := uint64(1); txn <= 6; txn++ {
		ap(t, l, Record{Txn: txn, Type: RecInsert, Table: 1, RID: txn, After: []byte{byte(txn)}})
		ap(t, l, Record{Txn: txn, Type: RecCommit})
	}
	// Unforced tail: a data record of an in-flight transaction.
	ap(t, l, Record{Txn: 99, Type: RecInsert, Table: 1, RID: 99, After: []byte{9}})
	l.CrashTail(rng.New(42))
	recs, _, _ := l.Scan()
	committed := map[uint64]bool{}
	for _, r := range recs {
		if r.Type == RecCommit {
			committed[r.Txn] = true
		}
	}
	for txn := uint64(1); txn <= 6; txn++ {
		if !committed[txn] {
			t.Errorf("acknowledged commit %d lost to tail damage", txn)
		}
	}
}

// TestGroupCommitSequentialDoesNotStall checks a lone committer is not
// blocked beyond MaxHold waiting for followers that never arrive.
func TestGroupCommitSequentialDoesNotStall(t *testing.T) {
	l := New()
	l.SetGroupCommit(GroupConfig{MaxBatch: 64, MaxHold: 5 * time.Millisecond})
	start := time.Now()
	ap(t, l, Record{Txn: 1, Type: RecCommit})
	if d := time.Since(start); d > time.Second {
		t.Errorf("lone commit took %v", d)
	}
	if l.Forces() != 1 {
		t.Errorf("Forces = %d, want 1", l.Forces())
	}
}
