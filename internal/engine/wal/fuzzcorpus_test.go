package wal

import (
	"flag"
	"path/filepath"
	"testing"

	"tpccmodel/internal/fuzzcorpus"
)

// regenFuzzCorpus rewrites the checked-in fuzz seed files:
// `go test ./internal/engine/wal/ -run FuzzSeedCorpus -regen-fuzz-corpus`
// (or `make regen-fuzz-corpus`).
var regenFuzzCorpus = flag.Bool("regen-fuzz-corpus", false, "rewrite testdata/fuzz seed corpora")

// seedLog builds the log shape both WAL fuzz targets care about: a
// committed transaction (the forced prefix) followed by a volatile tail.
func seedLog(t testing.TB) *Log {
	t.Helper()
	l := New()
	for _, r := range []Record{
		{Txn: 1, Type: RecInsert, Table: 0, RID: 1, After: []byte{1}},
		{Txn: 1, Type: RecUpdate, Table: 0, RID: 1, Before: []byte{1}, After: []byte{2}},
		{Txn: 1, Type: RecCommit},
		{Txn: 2, Type: RecInsert, Table: 0, RID: 9, After: []byte{7}},
	} {
		if _, err := l.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	return l
}

// decodeRecordSeeds covers the decoder's interesting regions: a fully
// valid multi-record log, a cut mid-record, a payload bitflip the CRC must
// catch, and a mangled header.
func decodeRecordSeeds(t testing.TB) map[string][]byte {
	valid := append([]byte(nil), seedLog(t).data...)
	truncated := append([]byte(nil), valid[:len(valid)/2]...)
	bitflip := append([]byte(nil), valid...)
	bitflip[len(bitflip)/3] ^= 0x40
	header := append([]byte(nil), valid...)
	header[0] ^= 0xFF
	return map[string][]byte{
		"valid-log":            fuzzcorpus.Marshal(valid),
		"truncated-mid-record": fuzzcorpus.Marshal(truncated),
		"bitflip-payload":      fuzzcorpus.Marshal(bitflip),
		"corrupt-header":       fuzzcorpus.Marshal(header),
	}
}

// logMutationSeeds pins the damage classes recovery distinguishes: flips
// inside the forced prefix, flips confined to the volatile tail, tail
// truncation, total loss, and combined cut+flip.
func logMutationSeeds() map[string][]byte {
	return map[string][]byte{
		"flip-forced-prefix": fuzzcorpus.Marshal(int(4), byte(0x10), uint16(0)),
		"flip-volatile-tail": fuzzcorpus.Marshal(int(-1), byte(0xFF), uint16(0)),
		"cut-tail":           fuzzcorpus.Marshal(int(0), byte(0), uint16(8)),
		"cut-everything":     fuzzcorpus.Marshal(int(0), byte(0), uint16(65535)),
		"flip-and-cut":       fuzzcorpus.Marshal(int(6), byte(0x80), uint16(12)),
	}
}

// twoPhaseSeeds pins the 2PC log shapes recovery distinguishes: an
// undecided prepare (in-doubt), durable commit and abort decisions, a
// zero gid, and a cut that removes the decision record.
func twoPhaseSeeds() map[string][]byte {
	return map[string][]byte{
		"undecided-in-doubt": fuzzcorpus.Marshal(uint64(2), uint64(7), false, false, uint16(0)),
		"decided-commit":     fuzzcorpus.Marshal(uint64(2), uint64(1)<<63, true, true, uint16(0)),
		"decided-abort":      fuzzcorpus.Marshal(uint64(9), uint64(11), true, false, uint16(0)),
		"gid-zero":           fuzzcorpus.Marshal(uint64(9), uint64(0), true, false, uint16(0)),
		"cut-decision":       fuzzcorpus.Marshal(uint64(2), uint64(7), true, true, uint16(20)),
	}
}

// TestFuzzSeedCorpus keeps the checked-in seeds under testdata/fuzz/ in
// sync with their generators. The seeds double as ordinary corpus cases:
// plain `go test` runs every file through its fuzz target.
func TestFuzzSeedCorpus(t *testing.T) {
	fuzzcorpus.WriteOrCompare(t, filepath.Join("testdata", "fuzz", "FuzzDecodeRecord"),
		decodeRecordSeeds(t), *regenFuzzCorpus)
	fuzzcorpus.WriteOrCompare(t, filepath.Join("testdata", "fuzz", "FuzzLogMutation"),
		logMutationSeeds(), *regenFuzzCorpus)
	fuzzcorpus.WriteOrCompare(t, filepath.Join("testdata", "fuzz", "Fuzz2PCLog"),
		twoPhaseSeeds(), *regenFuzzCorpus)
}
