package wal

import (
	"bytes"
	"testing"
)

// FuzzDecodeRecord feeds arbitrary bytes to the record decoder: it must
// either return a record or an error, never panic, and re-encoding a
// successfully decoded record must round-trip.
func FuzzDecodeRecord(f *testing.F) {
	l := New()
	l.Append(Record{Txn: 1, Type: RecUpdate, Table: 3, RID: 77,
		Before: []byte{1, 2}, After: []byte{3, 4, 5}})
	l.Append(Record{Txn: 2, Type: RecCommit})
	f.Add(l.data)
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xff}, 64))
	f.Fuzz(func(t *testing.T, data []byte) {
		rec, rest, err := decodeRecord(data)
		if err != nil {
			return
		}
		if len(rest) > len(data) {
			t.Fatal("remainder longer than input")
		}
		// Round-trip the decoded record.
		enc := rec.encode(nil)
		rec2, _, err := decodeRecord(enc)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if rec2.Txn != rec.Txn || rec2.Type != rec.Type || rec2.Table != rec.Table ||
			rec2.RID != rec.RID || !bytes.Equal(rec2.Before, rec.Before) ||
			!bytes.Equal(rec2.After, rec.After) {
			t.Fatal("round-trip mismatch")
		}
	})
}
