package wal

import (
	"bytes"
	"testing"
)

// FuzzDecodeRecord feeds arbitrary bytes to the record decoder: it must
// either return a record or an error, never panic, and re-encoding a
// successfully decoded record must round-trip.
func FuzzDecodeRecord(f *testing.F) {
	l := New()
	l.Append(Record{Txn: 1, Type: RecUpdate, Table: 3, RID: 77,
		Before: []byte{1, 2}, After: []byte{3, 4, 5}})
	l.Append(Record{Txn: 2, Type: RecCommit})
	f.Add(l.data)
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xff}, 64))
	f.Fuzz(func(t *testing.T, data []byte) {
		rec, rest, err := decodeRecord(data)
		if err != nil {
			return
		}
		if len(rest) > len(data) {
			t.Fatal("remainder longer than input")
		}
		// Round-trip the decoded record.
		enc := rec.encode(nil)
		rec2, _, err := decodeRecord(enc)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if rec2.Txn != rec.Txn || rec2.Type != rec.Type || rec2.Table != rec.Table ||
			rec2.RID != rec.RID || !bytes.Equal(rec2.Before, rec.Before) ||
			!bytes.Equal(rec2.After, rec.After) {
			t.Fatal("round-trip mismatch")
		}
	})
}

// Fuzz2PCLog exercises the two-phase-commit record path: a participant
// branch prepares under a fuzzed gid and is optionally decided, the log
// tail is cut, and distributed recovery runs. The prepare record's
// encode/decode round-trip must preserve the gid exactly; recovery must
// never panic; on an intact log a decided branch must not be in-doubt and
// an undecided one must be, with its gid intact.
func Fuzz2PCLog(f *testing.F) {
	f.Add(uint64(2), uint64(7), false, false, uint16(0))
	f.Add(uint64(2), uint64(1<<63), true, true, uint16(0))
	f.Add(uint64(9), uint64(0), true, false, uint16(0))
	f.Add(uint64(2), uint64(7), true, true, uint16(20))
	f.Fuzz(func(t *testing.T, txn, gid uint64, decide, commit bool, cut uint16) {
		// Encode/decode round-trip of the prepare record itself.
		prep := Record{LSN: 1, Txn: txn, Type: RecPrepare, RID: gid}
		dec, rest, err := decodeRecord(prep.encode(nil))
		if err != nil || len(rest) != 0 {
			t.Fatalf("prepare decode failed: %v (rest %d)", err, len(rest))
		}
		if dec.Txn != txn || dec.Type != RecPrepare || dec.RID != gid {
			t.Fatalf("prepare round-trip mismatch: %+v", dec)
		}

		l := New()
		app := func(r Record) {
			if _, err := l.Append(r); err != nil {
				t.Fatal(err)
			}
		}
		app(Record{Txn: txn, Type: RecUpdate, Table: 0, RID: 1,
			Before: []byte{1}, After: []byte{2}})
		app(Record{Txn: txn, Type: RecPrepare, RID: gid})
		if decide {
			typ := RecAbort
			if commit {
				typ = RecCommit
			}
			app(Record{Txn: txn, Type: typ, RID: gid})
		}
		intact := int(cut) == 0
		if int(cut) > len(l.data) {
			cut = uint16(len(l.data))
		}
		keep := len(l.data) - int(cut)
		l.data = l.data[:keep]
		if l.forcedLen > keep {
			l.forcedLen = keep
		}

		tab := newMemTable()
		_, dist, err := RecoverDist(l, map[uint32]Applier{0: tab})
		if err != nil {
			t.Fatalf("distributed recovery errored: %v", err)
		}
		if !intact {
			return
		}
		if decide {
			if len(dist.InDoubt) != 0 {
				t.Fatalf("decided branch reported in-doubt: %+v", dist.InDoubt)
			}
			if gid != 0 {
				if got, ok := dist.Decisions[gid]; !ok || got != commit {
					t.Fatalf("decision for gid %d = %v,%v, want %v", gid, got, ok, commit)
				}
			}
		} else {
			if len(dist.InDoubt) != 1 || dist.InDoubt[0].GID != gid ||
				dist.InDoubt[0].Txn != txn {
				t.Fatalf("undecided branch not in-doubt: %+v", dist.InDoubt)
			}
		}
	})
}

// FuzzLogMutation mutates the serialized bytes of a log whose forced
// prefix holds a committed transaction, then runs recovery. Recovery must
// never panic and never error; it must either replay the committed prefix
// intact (when the damage is past the forced watermark, or a no-op) or
// report the damage via truncation stats. It must also stay idempotent on
// the mutated log.
func FuzzLogMutation(f *testing.F) {
	f.Add(0, byte(0), uint16(0))
	f.Add(3, byte(0x80), uint16(0))
	f.Add(100, byte(0xFF), uint16(5))
	f.Add(-7, byte(1), uint16(1000))
	f.Fuzz(func(t *testing.T, off int, mask byte, cut uint16) {
		l := New()
		app := func(r Record) {
			if _, err := l.Append(r); err != nil {
				t.Fatal(err)
			}
		}
		// Txn 1 commits (forced prefix); txn 2 is unforced volatile tail.
		app(Record{Txn: 1, Type: RecInsert, Table: 0, RID: 1, After: []byte{1}})
		app(Record{Txn: 1, Type: RecUpdate, Table: 0, RID: 1, Before: []byte{1}, After: []byte{2}})
		app(Record{Txn: 1, Type: RecCommit})
		app(Record{Txn: 2, Type: RecInsert, Table: 0, RID: 9, After: []byte{7}})
		durable := int(l.DurableSize())

		if int(cut) > len(l.data) {
			cut = uint16(len(l.data))
		}
		keep := len(l.data) - int(cut)
		l.data = l.data[:keep]
		if l.forcedLen > keep {
			l.forcedLen = keep
		}
		damagedForced := false
		if len(l.data) > 0 && mask != 0 {
			o := ((off % len(l.data)) + len(l.data)) % len(l.data)
			l.data[o] ^= mask
			// A flip past the forced watermark only damages the
			// volatile tail, which recovery may discard freely.
			damagedForced = o < durable
		}
		forcedIntact := keep >= durable && !damagedForced

		tab := newMemTable()
		st, err := Recover(l, map[uint32]Applier{0: tab})
		if err != nil {
			t.Fatalf("recovery errored on damaged log: %v", err)
		}
		if forcedIntact {
			// The committed prefix survived: txn 1's final state must be
			// replayed exactly, regardless of tail damage.
			if got, ok := tab.rows[1]; !ok || got[0] != 2 {
				t.Fatalf("committed row lost after tail damage: %v", tab.rows)
			}
		} else if damagedForced {
			// Damage inside the forced prefix must be *reported*: a
			// CRC32 can never validate a nonzero single-byte xor, so the
			// scan must have stopped at or before the damaged record.
			if st.TruncatedBytes == 0 && !st.TailCorrupt {
				t.Fatalf("forced-prefix damage went unreported: %+v", st)
			}
		}
		// Recovery is idempotent on whatever state the log is in now.
		tab2 := newMemTable()
		st2, err := Recover(l, map[uint32]Applier{0: tab2})
		if err != nil {
			t.Fatalf("second recovery errored: %v", err)
		}
		if st2.TruncatedBytes != 0 {
			t.Fatalf("second recovery still truncating: %+v", st2)
		}
		if len(tab.rows) != len(tab2.rows) {
			t.Fatalf("recovery not idempotent: %v vs %v", tab.rows, tab2.rows)
		}
	})
}
