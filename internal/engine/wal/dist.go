package wal

import (
	"errors"
	"fmt"
)

// InDoubtTxn is a prepared-but-undecided transaction branch found during
// recovery: its prepare record is durable, but no commit or abort record
// follows. Under presumed abort the branch's row images have been rolled
// back to their before-images; Records retains the branch's data records
// (in LSN order) so the commit layer can re-apply the after-images if the
// coordinator's decision turns out to be commit.
type InDoubtTxn struct {
	// Txn is the branch's local transaction id.
	Txn uint64
	// GID is the global (distributed) transaction id the prepare record
	// carried in its RID field.
	GID uint64
	// Records holds the branch's data records in LSN order.
	Records []Record
}

// DistState is what distributed recovery learned beyond row images.
type DistState struct {
	// InDoubt lists prepared branches with no durable decision, in
	// prepare-LSN order.
	InDoubt []InDoubtTxn
	// Decisions maps global transaction ids to their durable outcome
	// (true = committed): every commit/abort record carrying a nonzero
	// gid contributes. A coordinator consults this map when a recovering
	// participant asks for a verdict; a gid absent from the coordinator's
	// map means abort (presumed abort — abort decisions need no durable
	// record).
	Decisions map[uint64]bool
	// MaxTxn is the largest local transaction id any record carried, so
	// the engine can restart its id sequence past every logged one.
	MaxTxn uint64
}

// RecoverDist is Recover plus two-phase-commit bookkeeping: alongside the
// per-row committed state it reports in-doubt transactions (prepared, no
// decision) and the durable gid decision map. In-doubt rows are restored
// to their BEFORE-images — presumed abort — and their records are retained
// so a later commit decision can be re-applied idempotently.
func RecoverDist(l *Log, tables map[uint32]Applier) (RecoverStats, DistState, error) {
	var st RecoverStats
	dist := DistState{Decisions: make(map[uint64]bool)}
	recs, valid, scanErr := l.Scan()
	if scanErr != nil {
		st.TruncatedBytes = l.Size() - valid
		st.TailCorrupt = errors.Is(scanErr, ErrCorrupt)
		l.TruncateTo(valid)
	}
	committed := make(map[uint64]bool)
	decided := make(map[uint64]bool)
	prepared := make(map[uint64]uint64) // txn -> gid
	var prepOrder []uint64
	for _, r := range recs {
		if r.Txn > dist.MaxTxn {
			dist.MaxTxn = r.Txn
		}
		switch r.Type {
		case RecCommit:
			committed[r.Txn] = true
			decided[r.Txn] = true
			if r.RID != 0 {
				dist.Decisions[r.RID] = true
			}
		case RecAbort:
			decided[r.Txn] = true
			if r.RID != 0 {
				dist.Decisions[r.RID] = false
			}
		case RecPrepare:
			if _, seen := prepared[r.Txn]; !seen {
				prepOrder = append(prepOrder, r.Txn)
			}
			prepared[r.Txn] = r.RID
		}
	}

	type rowKey struct {
		table uint32
		rid   uint64
	}
	type rowState struct {
		image []byte
		known bool
	}
	state := make(map[rowKey]rowState)
	order := make([]rowKey, 0)
	inDoubtRecs := make(map[uint64][]Record)
	for _, r := range recs {
		switch r.Type {
		case RecCommit, RecAbort, RecPrepare:
			continue
		}
		if _, prep := prepared[r.Txn]; prep && !decided[r.Txn] {
			inDoubtRecs[r.Txn] = append(inDoubtRecs[r.Txn], r)
		}
		if _, ok := tables[r.Table]; !ok {
			return st, dist, fmt.Errorf("wal: no applier for table %d", r.Table)
		}
		key := rowKey{table: r.Table, rid: r.RID}
		cur, seen := state[key]
		if !seen {
			order = append(order, key)
		}
		if committed[r.Txn] {
			state[key] = rowState{image: r.After, known: true}
			continue
		}
		st.SkippedUncommitted++
		if !cur.known {
			state[key] = rowState{image: r.Before, known: true}
		}
	}
	for _, key := range order {
		if err := tables[key.table].Apply(key.rid, state[key].image); err != nil {
			return st, dist, fmt.Errorf("wal: apply table %d rid %d: %w",
				key.table, key.rid, err)
		}
		st.Applied++
	}
	for _, txn := range prepOrder {
		if decided[txn] {
			continue
		}
		dist.InDoubt = append(dist.InDoubt, InDoubtTxn{
			Txn: txn, GID: prepared[txn], Records: inDoubtRecs[txn],
		})
	}
	return st, dist, nil
}
