package mvcc

import (
	"bytes"
	"errors"
	"testing"
)

// The tests model the heap as a plain map: the store never touches the
// heap itself, it only decides which image a snapshot sees. rec/readAt
// keep that glue in one place.

func rec(v byte) []byte { return []byte{v} }

// readAt performs the engine's two-step read protocol: heap first, then
// Read resolves visibility, possibly overwriting the buffer.
func readAt(s *Store, t *Txn, k Key, heap map[Key][]byte) (byte, bool) {
	var buf [1]byte
	img, live := heap[k]
	if live {
		copy(buf[:], img)
	}
	if !s.Read(t, k, live, buf[:]) {
		return 0, false
	}
	return buf[0], true
}

func TestVisibilityAcrossCommit(t *testing.T) {
	s := NewStore()
	heap := map[Key][]byte{}
	k := Key{Table: 1, Row: 7}
	var ret RetireSet

	// Seed a committed row the way the engine would: insert + commit.
	var t0 Txn
	s.Begin(&t0, &ret)
	if err := s.Write(&t0, k, nil); err != nil {
		t.Fatal(err)
	}
	heap[k] = rec(10)
	ts0 := s.Commit(&t0, &ret)
	if ts0 == 0 {
		t.Fatal("writing commit got timestamp 0")
	}

	// Reader snapshots before the update, writer updates and commits.
	var rd, wr Txn
	s.Begin(&rd, nil)
	s.Begin(&wr, nil)
	if err := s.Write(&wr, k, heap[k]); err != nil {
		t.Fatal(err)
	}
	heap[k] = rec(20)

	// Uncommitted: the reader must still see the old image.
	if v, ok := readAt(s, &rd, k, heap); !ok || v != 10 {
		t.Fatalf("reader saw (%d,%v) before commit, want (10,true)", v, ok)
	}
	// The writer sees its own heap image.
	if v, ok := readAt(s, &wr, k, heap); !ok || v != 20 {
		t.Fatalf("writer saw (%d,%v) of own write, want (20,true)", v, ok)
	}

	ts1 := s.Commit(&wr, &ret)
	if ts1 <= ts0 {
		t.Fatalf("commit timestamps not monotonic: %d then %d", ts0, ts1)
	}
	// Snapshot stability: the committed update stays invisible to rd.
	if v, ok := readAt(s, &rd, k, heap); !ok || v != 10 {
		t.Fatalf("reader saw (%d,%v) after commit, want (10,true)", v, ok)
	}
	s.Abort(&rd, nil) // read-only end

	// A fresh snapshot sees the new image.
	var t2 Txn
	s.Begin(&t2, nil)
	if v, ok := readAt(s, &t2, k, heap); !ok || v != 20 {
		t.Fatalf("fresh snapshot saw (%d,%v), want (20,true)", v, ok)
	}
	s.Abort(&t2, nil)
}

func TestInsertInvisibleToOlderSnapshot(t *testing.T) {
	s := NewStore()
	heap := map[Key][]byte{}
	k := Key{Table: 2, Row: 3}
	var ret RetireSet

	var rd, ins Txn
	s.Begin(&rd, nil)
	s.Begin(&ins, nil)
	if err := s.Write(&ins, k, nil); err != nil {
		t.Fatal(err)
	}
	heap[k] = rec(1)
	s.Commit(&ins, &ret)

	if _, ok := readAt(s, &rd, k, heap); ok {
		t.Fatal("row inserted after the snapshot is visible")
	}
	s.Abort(&rd, nil)
	var t2 Txn
	s.Begin(&t2, nil)
	if v, ok := readAt(s, &t2, k, heap); !ok || v != 1 {
		t.Fatalf("fresh snapshot saw (%d,%v), want (1,true)", v, ok)
	}
	s.Abort(&t2, nil)
}

func TestFirstCommitterWins(t *testing.T) {
	s := NewStore()
	heap := map[Key][]byte{k0: rec(5)}
	var ret RetireSet

	var a, b Txn
	s.Begin(&a, nil)
	s.Begin(&b, nil)
	if err := s.Write(&a, k0, heap[k0]); err != nil {
		t.Fatal(err)
	}
	heap[k0] = rec(6)
	s.Commit(&a, &ret)

	// b's snapshot predates a's commit: its write must lose.
	err := s.Write(&b, k0, heap[k0])
	if !errors.Is(err, ErrConflict) {
		t.Fatalf("stale write returned %v, want ErrConflict", err)
	}
	if s.Conflicts() != 1 {
		t.Fatalf("conflict counter = %d, want 1", s.Conflicts())
	}
	s.Abort(&b, nil)

	// Retried with a fresh snapshot it succeeds.
	var b2 Txn
	s.Begin(&b2, nil)
	if err := s.Write(&b2, k0, heap[k0]); err != nil {
		t.Fatal(err)
	}
	heap[k0] = rec(7)
	s.Commit(&b2, &ret)
}

var k0 = Key{Table: 1, Row: 1}

func TestAbortRestoresChainAndFreesCreated(t *testing.T) {
	s := NewStore()
	heap := map[Key][]byte{k0: rec(5)}

	var a Txn
	s.Begin(&a, nil)
	if err := s.Write(&a, k0, heap[k0]); err != nil {
		t.Fatal(err)
	}
	heap[k0] = rec(9)
	kNew := Key{Table: 1, Row: 2}
	if err := s.Write(&a, kNew, nil); err != nil {
		t.Fatal(err)
	}
	heap[kNew] = rec(1)
	if got := a.Writes(); got != 2 {
		t.Fatalf("Writes() = %d, want 2", got)
	}

	// Engine order: heap undo first, then Abort.
	heap[k0] = rec(5)
	delete(heap, kNew)
	s.Abort(&a, nil)

	// The chain created by the aborted insert must be gone; k0's chain was
	// created by the aborted update (no prior committed version) so it is
	// freed too.
	if n := s.Chains(); n != 0 {
		t.Fatalf("chains after abort = %d, want 0", n)
	}
	var t2 Txn
	s.Begin(&t2, nil)
	if v, ok := readAt(s, &t2, k0, heap); !ok || v != 5 {
		t.Fatalf("post-abort read = (%d,%v), want (5,true)", v, ok)
	}
	if _, ok := readAt(s, &t2, kNew, heap); ok {
		t.Fatal("aborted insert is visible")
	}
	s.Abort(&t2, nil)
}

func TestWatermarkPruning(t *testing.T) {
	s := NewStore()
	heap := map[Key][]byte{k0: rec(1)}
	var ret RetireSet

	// An old reader pins the watermark below the coming commit.
	var rd Txn
	s.Begin(&rd, nil)

	var w Txn
	s.Begin(&w, nil)
	if err := s.Write(&w, k0, heap[k0]); err != nil {
		t.Fatal(err)
	}
	heap[k0] = rec(2)
	s.Commit(&w, &ret)
	if ret.Len() != 1 {
		t.Fatalf("retire ring holds %d entries, want 1", ret.Len())
	}

	// While rd lives, Begin must NOT free the chain rd still needs.
	var t2 Txn
	s.Begin(&t2, &ret)
	if n := s.Chains(); n != 1 {
		t.Fatalf("chain pruned under a live old snapshot (chains=%d)", n)
	}
	if v, ok := readAt(s, &rd, k0, heap); !ok || v != 1 {
		t.Fatalf("old snapshot read (%d,%v), want (1,true)", v, ok)
	}
	s.Abort(&t2, nil)
	s.Abort(&rd, nil)

	// With the old snapshot gone the next Begin retires the chain.
	var t3 Txn
	s.Begin(&t3, &ret)
	if n := s.Chains(); n != 0 {
		t.Fatalf("chains after watermark passed = %d, want 0", n)
	}
	if ret.Len() != 0 {
		t.Fatalf("retire ring holds %d entries after prune, want 0", ret.Len())
	}
	// Heap-only rows resolve as-is.
	if v, ok := readAt(s, &t3, k0, heap); !ok || v != 2 {
		t.Fatalf("post-prune read (%d,%v), want (2,true)", v, ok)
	}
	s.Abort(&t3, nil)
}

func TestChainRecycling(t *testing.T) {
	s := NewStore()
	heap := map[Key][]byte{k0: rec(0)}
	var ret RetireSet
	// Repeated write/commit/prune cycles must recycle the same chain
	// through the shard free list, not grow the map.
	for i := 0; i < 100; i++ {
		var w Txn
		s.Begin(&w, &ret)
		if err := s.Write(&w, k0, heap[k0]); err != nil {
			t.Fatal(err)
		}
		heap[k0] = rec(byte(i))
		s.Commit(&w, &ret)
	}
	var fin Txn
	s.Begin(&fin, &ret)
	if n := s.Chains(); n != 0 {
		t.Fatalf("steady-state churn leaked %d chains", n)
	}
	if v, ok := readAt(s, &fin, k0, heap); !ok || v != 99 {
		t.Fatalf("final read (%d,%v), want (99,true)", v, ok)
	}
	s.Abort(&fin, nil)
}

func TestResetKeepsClock(t *testing.T) {
	s := NewStore()
	heap := map[Key][]byte{}
	var ret RetireSet
	var w Txn
	s.Begin(&w, nil)
	if err := s.Write(&w, k0, nil); err != nil {
		t.Fatal(err)
	}
	heap[k0] = rec(1)
	s.Commit(&w, &ret)
	clk := s.Clock()
	if clk == 0 {
		t.Fatal("clock did not advance")
	}
	s.Reset()
	if s.Chains() != 0 {
		t.Fatal("Reset left chains behind")
	}
	if s.Clock() != clk {
		t.Fatalf("Reset moved the clock: %d -> %d", clk, s.Clock())
	}
}

func TestReadCopiesVersionBytes(t *testing.T) {
	s := NewStore()
	k := Key{Table: 4, Row: 4}
	heap := map[Key][]byte{k: []byte{1, 2, 3, 4}}

	var rd, w Txn
	s.Begin(&rd, nil)
	s.Begin(&w, nil)
	if err := s.Write(&w, k, heap[k]); err != nil {
		t.Fatal(err)
	}
	heap[k] = []byte{9, 9, 9, 9}
	var ret RetireSet
	s.Commit(&w, &ret)

	buf := make([]byte, 4)
	copy(buf, heap[k])
	if !s.Read(&rd, k, true, buf) {
		t.Fatal("row invisible to old snapshot")
	}
	if !bytes.Equal(buf, []byte{1, 2, 3, 4}) {
		t.Fatalf("old version bytes = %v, want [1 2 3 4]", buf)
	}
	s.Abort(&rd, nil)
}
