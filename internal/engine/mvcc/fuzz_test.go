package mvcc

import (
	"errors"
	"testing"
)

// FuzzVisibility drives the store through an arbitrary schedule of
// begin/read/write/delete/commit/abort operations over a tiny key space
// and checks every read against a map-based oracle that replays the SAME
// schedule with brute force: the full committed history per key, visible
// version = newest commit at or below the reader's snapshot.
//
// The tape interpreter models the engine around the store faithfully —
// a heap holding the newest image, exclusive row locks (a write against a
// locked row is skipped, since the real engine would block), undo of heap
// images on abort — so the oracle disagreeing with Read means a store
// bug, not a harness artifact.
//
// Every tape runs twice: once against the plain SI store and once
// against the SSI store. SSI must preserve visibility EXACTLY — marks,
// edges, and pivot aborts change which transactions survive, never what
// a surviving snapshot sees — so the same oracle applies, with ErrSSI
// (on write or at the modeled PreCommit) treated as one more abort
// path. This is the fuzzer's check on the read-mark/conflict-flag
// lifecycle: premature mark reclaim or a leaked mark-only chain shows
// up as an oracle mismatch or a failed zero-chain drain.

// Tape encoding: 4 bytes per op.
//
//	byte 0: opcode % 6 (begin, read, write, delete, commit, abort)
//	byte 1: transaction slot % numSlots
//	byte 2: key % numKeys
//	byte 3: value written (write only)
const (
	fopBegin = iota
	fopRead
	fopWrite
	fopDelete
	fopCommit
	fopAbort
	numFops
)

const (
	fuzzSlots = 4
	fuzzKeys  = 4
)

// fversion is one committed version in the oracle's history.
type fversion struct {
	ts     uint64
	val    byte
	absent bool
}

// fslot is one modeled transaction slot.
type fslot struct {
	active bool
	txn    Txn
	ret    RetireSet
	snap   uint64
	// writes/befores model the write set and the undo list: key -> new
	// value, key -> heap image at first write (nil slice = was absent).
	writes  map[Key]byte
	deletes map[Key]bool
	befores map[Key][]byte
}

func fuzzKey(i byte) Key { return Key{Table: uint32(i % 2), Row: uint64(i)} }

// oracleVisible returns the value visible at snapshot snap per the
// brute-force history model.
func oracleVisible(hist []fversion, snap uint64) (byte, bool) {
	for i := len(hist) - 1; i >= 0; i-- {
		if hist[i].ts <= snap {
			if hist[i].absent {
				return 0, false
			}
			return hist[i].val, true
		}
	}
	return 0, false
}

func runVisibilityTape(t *testing.T, tape []byte, ssi bool) {
	s := NewStore()
	if ssi {
		s = NewSerializableStore()
	}
	heap := map[Key][]byte{}
	hist := map[Key][]fversion{} // committed history, append order = ts order
	lockOwner := map[Key]int{}   // key -> slot holding the exclusive lock
	var slots [fuzzSlots]fslot

	endSlot := func(sl *fslot) {
		for k := range sl.befores {
			delete(lockOwner, k)
		}
		sl.writes = nil
		sl.deletes = nil
		sl.befores = nil
		sl.active = false
	}

	for len(tape) >= 4 {
		op, si, ki, val := tape[0]%numFops, int(tape[1]%fuzzSlots), tape[2]%fuzzKeys, tape[3]
		tape = tape[4:]
		sl := &slots[si]
		k := fuzzKey(ki)

		switch op {
		case fopBegin:
			if sl.active {
				continue
			}
			s.Begin(&sl.txn, &sl.ret)
			sl.active = true
			sl.snap = sl.txn.Snapshot()
			sl.writes = map[Key]byte{}
			sl.deletes = map[Key]bool{}
			sl.befores = map[Key][]byte{}

		case fopRead:
			if !sl.active {
				continue
			}
			var buf [1]byte
			img, live := heap[k]
			if live {
				buf[0] = img[0]
			}
			got := s.Read(&sl.txn, k, live, buf[:])
			var want bool
			var wantVal byte
			if _, mine := sl.befores[k]; mine {
				// Read-your-own-writes: the heap image is the answer.
				want = !sl.deletes[k]
				wantVal = sl.writes[k]
			} else {
				wantVal, want = oracleVisible(hist[k], sl.snap)
			}
			if got != want {
				t.Fatalf("read slot=%d key=%v: live=%v, oracle=%v (snap=%d hist=%v)",
					si, k, got, want, sl.snap, hist[k])
			}
			if got && buf[0] != wantVal {
				t.Fatalf("read slot=%d key=%v: val=%d, oracle=%d (snap=%d hist=%v)",
					si, k, buf[0], wantVal, sl.snap, hist[k])
			}

		case fopWrite, fopDelete:
			if !sl.active {
				continue
			}
			if owner, held := lockOwner[k]; held && owner != si {
				continue // the real engine would block on the row lock
			}
			_, repeat := sl.befores[k]
			before := heap[k] // nil when absent
			err := s.Write(&sl.txn, k, before)
			if errors.Is(err, ErrSSI) {
				// Dangerous-structure abort: visibility-neutral, so the
				// oracle has nothing to say beyond the engine's abort
				// behavior (restore heap images, abort, free the slot).
				for wk, img := range sl.befores {
					if img == nil {
						delete(heap, wk)
					} else {
						heap[wk] = img
					}
				}
				s.Abort(&sl.txn, &sl.ret)
				endSlot(sl)
				continue
			}
			if errors.Is(err, ErrConflict) {
				if repeat {
					t.Fatalf("write slot=%d key=%v: conflict on re-write of own row", si, k)
				}
				// The oracle must agree the row moved past our snapshot.
				if n := len(hist[k]); n == 0 || hist[k][n-1].ts <= sl.snap {
					t.Fatalf("write slot=%d key=%v: store conflicted, oracle sees none (snap=%d hist=%v)",
						si, k, sl.snap, hist[k])
				}
				// Engine behavior: the transaction aborts (heap untouched
				// for this key — mvWrite precedes the heap mutation).
				for wk, img := range sl.befores {
					if img == nil {
						delete(heap, wk)
					} else {
						heap[wk] = img
					}
				}
				s.Abort(&sl.txn, &sl.ret)
				endSlot(sl)
				continue
			}
			if err != nil {
				t.Fatalf("write slot=%d key=%v: %v", si, k, err)
			}
			if n := len(hist[k]); !repeat && n > 0 && hist[k][n-1].ts > sl.snap {
				t.Fatalf("write slot=%d key=%v: store allowed stale write (snap=%d hist=%v)",
					si, k, sl.snap, hist[k])
			}
			if !repeat {
				lockOwner[k] = si
				if before == nil {
					sl.befores[k] = nil
				} else {
					sl.befores[k] = append([]byte(nil), before...)
				}
			}
			if op == fopDelete {
				delete(heap, k)
				sl.deletes[k] = true
				delete(sl.writes, k)
			} else {
				heap[k] = []byte{val}
				sl.writes[k] = val
				delete(sl.deletes, k)
			}

		case fopCommit:
			if !sl.active {
				continue
			}
			if err := s.PreCommit(&sl.txn); err != nil {
				// The engine aborts a doomed transaction instead of
				// committing it (same undo path as an explicit abort).
				for wk, img := range sl.befores {
					if img == nil {
						delete(heap, wk)
					} else {
						heap[wk] = img
					}
				}
				s.Abort(&sl.txn, &sl.ret)
				endSlot(sl)
				continue
			}
			ts := s.Commit(&sl.txn, &sl.ret)
			if len(sl.befores) == 0 {
				if ts != 0 {
					t.Fatalf("commit slot=%d: read-only commit got ts %d", si, ts)
				}
			} else {
				if ts == 0 {
					t.Fatalf("commit slot=%d: writing commit got ts 0", si)
				}
				for k := range sl.befores {
					hist[k] = append(hist[k], fversion{
						ts: ts, val: sl.writes[k], absent: sl.deletes[k],
					})
				}
			}
			endSlot(sl)

		case fopAbort:
			if !sl.active {
				continue
			}
			for wk, img := range sl.befores {
				if img == nil {
					delete(heap, wk)
				} else {
					heap[wk] = img
				}
			}
			s.Abort(&sl.txn, &sl.ret)
			endSlot(sl)
		}
	}

	// Drain: abort every open transaction, then check the final state and
	// that pruning returns the store to zero chains.
	for si := range slots {
		sl := &slots[si]
		if !sl.active {
			continue
		}
		for wk, img := range sl.befores {
			if img == nil {
				delete(heap, wk)
			} else {
				heap[wk] = img
			}
		}
		s.Abort(&sl.txn, &sl.ret)
		endSlot(sl)
	}
	var fin Txn
	var finRet RetireSet
	for si := range slots {
		// Each slot's retire ring must drain now that the watermark is the
		// clock itself (under SSI, the Begin's rec reap stales every mark
		// before the prune runs, so mark-pinned chains drain too).
		s.Begin(&fin, &slots[si].ret)
		s.Abort(&fin, nil)
		if n := slots[si].ret.Len(); n != 0 {
			t.Fatalf("slot %d retire ring holds %d entries after full drain", si, n)
		}
	}
	s.Begin(&fin, &finRet)
	for ki := byte(0); ki < fuzzKeys; ki++ {
		k := fuzzKey(ki)
		var buf [1]byte
		img, live := heap[k]
		if live {
			buf[0] = img[0]
		}
		got := s.Read(&fin, k, live, buf[:])
		wantVal, want := oracleVisible(hist[k], fin.Snapshot())
		if got != want || (got && buf[0] != wantVal) {
			t.Fatalf("final read key=%v: (%d,%v), oracle (%d,%v)", k, buf[0], got, wantVal, want)
		}
	}
	s.Abort(&fin, &finRet)
	// The final reads left SIREAD marks (mark-only chains included, even
	// on absent keys); one more begin/abort cycle prunes them.
	s.Begin(&fin, &finRet)
	s.Abort(&fin, nil)
	if n := finRet.Len(); n != 0 {
		t.Fatalf("final retire ring holds %d entries after drain", n)
	}
	if n := s.Chains(); n != 0 {
		t.Fatalf("%d chains leaked after drain+prune (ssi=%v)", n, s.SSI())
	}
}

func FuzzVisibility(f *testing.F) {
	f.Fuzz(func(t *testing.T, tape []byte) {
		if len(tape) > 4096 {
			tape = tape[:4096]
		}
		runVisibilityTape(t, tape, false)
		runVisibilityTape(t, tape, true)
	})
}
