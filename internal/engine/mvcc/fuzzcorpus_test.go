package mvcc

import (
	"flag"
	"path/filepath"
	"testing"

	"tpccmodel/internal/fuzzcorpus"
)

// regenFuzzCorpus rewrites the checked-in fuzz seed files:
// `go test ./internal/engine/mvcc/ -run FuzzSeedCorpus -regen-fuzz-corpus`
// (or `make regen-fuzz-corpus`).
var regenFuzzCorpus = flag.Bool("regen-fuzz-corpus", false, "rewrite testdata/fuzz seed corpora")

// buildVisTape assembles a FuzzVisibility operation tape: 4 bytes per op
// (opcode, slot, key, value).
func buildVisTape(f func(emit func(op, slot, key, val byte))) []byte {
	var tape []byte
	f(func(op, slot, key, val byte) {
		tape = append(tape, op, slot, key, val)
	})
	return tape
}

// visibilitySeeds aims each seed at a distinct schedule shape: the plain
// committed-history walk, first-committer-wins losses, abort-undo over
// inserts and deletes, a long reader pinning the watermark across many
// commits, and interleaved read-your-own-writes churn.
func visibilitySeeds() map[string][]byte {
	seeds := map[string]func(emit func(op, slot, key, val byte)){
		"sequential-history": func(emit func(op, slot, key, val byte)) {
			for i := byte(0); i < 16; i++ {
				emit(fopBegin, 0, 0, 0)
				emit(fopWrite, 0, i%fuzzKeys, i)
				emit(fopCommit, 0, 0, 0)
				emit(fopBegin, 1, 0, 0)
				emit(fopRead, 1, i%fuzzKeys, 0)
				emit(fopCommit, 1, 0, 0)
			}
		},
		"first-committer-wins": func(emit func(op, slot, key, val byte)) {
			for i := byte(0); i < 8; i++ {
				emit(fopBegin, 0, 0, 0)
				emit(fopBegin, 1, 0, 0)
				emit(fopWrite, 0, 1, i)
				emit(fopCommit, 0, 0, 0)
				emit(fopWrite, 1, 1, 200+i) // conflicts, aborts slot 1
				emit(fopRead, 1, 1, 0)      // no-op: slot 1 is gone
			}
		},
		"insert-delete-abort": func(emit func(op, slot, key, val byte)) {
			for i := byte(0); i < 8; i++ {
				emit(fopBegin, 0, 0, 0)
				emit(fopWrite, 0, 2, i)
				emit(fopDelete, 0, 3, 0)
				emit(fopAbort, 0, 0, 0)
				emit(fopBegin, 1, 0, 0)
				emit(fopRead, 1, 2, 0)
				emit(fopDelete, 1, 2, 0)
				emit(fopCommit, 1, 0, 0)
			}
		},
		"long-reader-watermark": func(emit func(op, slot, key, val byte)) {
			emit(fopBegin, 3, 0, 0) // pins the watermark
			for i := byte(0); i < 24; i++ {
				emit(fopBegin, 0, 0, 0)
				emit(fopWrite, 0, i%fuzzKeys, i)
				emit(fopCommit, 0, 0, 0)
				emit(fopRead, 3, i%fuzzKeys, 0)
			}
			emit(fopCommit, 3, 0, 0)
			emit(fopBegin, 0, 0, 0) // prunes the backlog
			emit(fopCommit, 0, 0, 0)
		},
		"read-your-own-writes": func(emit func(op, slot, key, val byte)) {
			for i := byte(0); i < 8; i++ {
				emit(fopBegin, 0, 0, 0)
				emit(fopWrite, 0, 0, i)
				emit(fopRead, 0, 0, 0)
				emit(fopDelete, 0, 0, 0)
				emit(fopRead, 0, 0, 0)
				emit(fopWrite, 0, 0, 100+i)
				emit(fopRead, 0, 0, 0)
				emit(fopCommit, 0, 0, 0)
			}
		},
		// Crossing guard reads then disjoint writes: under the harness's
		// ssi pass this is the write-skew shape — slot 1's second write
		// must draw the dangerous-structure abort and the harness must
		// restore its images. (The si pass commits both.)
		"ssi-write-skew": func(emit func(op, slot, key, val byte)) {
			for i := byte(0); i < 8; i++ {
				emit(fopBegin, 0, 0, 0)
				emit(fopBegin, 1, 0, 0)
				emit(fopRead, 0, 1, 0)
				emit(fopRead, 1, 0, 0)
				emit(fopWrite, 0, 0, i)
				emit(fopWrite, 1, 1, 100+i)
				emit(fopCommit, 0, 0, 0)
				emit(fopCommit, 1, 0, 0)
			}
		},
		// Reads of keys that do not exist yet, then inserts over the
		// mark-only chains those reads created: exercises the
		// absent-read SIREAD path and the prune rule that a chain with
		// no versions but live marks must survive retirement.
		"ssi-absent-read-marks": func(emit func(op, slot, key, val byte)) {
			for i := byte(0); i < 8; i++ {
				k := 4 + i%2 // keys the other seeds leave untouched
				emit(fopBegin, 2, 0, 0)
				emit(fopRead, 2, k, 0)
				emit(fopBegin, 0, 0, 0)
				emit(fopWrite, 0, k, i) // insert over slot 2's mark
				emit(fopCommit, 0, 0, 0)
				emit(fopRead, 2, k, 0)
				emit(fopCommit, 2, 0, 0)
				emit(fopBegin, 1, 0, 0)
				emit(fopDelete, 1, k, 0)
				emit(fopCommit, 1, 0, 0)
			}
		},
		// A committed reader whose marks must outlive it: the long
		// overlapping snapshot (slot 3) keeps the watermark below the
		// readers' commits, so their recs sit in the reap queue while
		// later writers scan their still-live marks.
		"ssi-mark-survives-commit": func(emit func(op, slot, key, val byte)) {
			emit(fopBegin, 3, 0, 0) // pins the watermark
			for i := byte(0); i < 12; i++ {
				emit(fopBegin, 0, 0, 0)
				emit(fopRead, 0, i%fuzzKeys, 0)
				emit(fopCommit, 0, 0, 0) // read-only commit; marks live on
				emit(fopBegin, 1, 0, 0)
				emit(fopWrite, 1, i%fuzzKeys, i)
				emit(fopCommit, 1, 0, 0)
			}
			emit(fopRead, 3, 0, 0)
			emit(fopCommit, 3, 0, 0)
			emit(fopBegin, 0, 0, 0) // reap + prune the backlog
			emit(fopCommit, 0, 0, 0)
		},
	}
	out := make(map[string][]byte, len(seeds))
	for name, build := range seeds {
		out[name] = fuzzcorpus.Marshal(buildVisTape(build))
	}
	return out
}

// TestFuzzSeedCorpus keeps the checked-in seeds under testdata/fuzz/ in
// sync with their generators. The seeds double as ordinary corpus cases:
// plain `go test` runs every file through FuzzVisibility.
func TestFuzzSeedCorpus(t *testing.T) {
	fuzzcorpus.WriteOrCompare(t, filepath.Join("testdata", "fuzz", "FuzzVisibility"),
		visibilitySeeds(), *regenFuzzCorpus)
}
