// Serializable snapshot isolation (Cahill/Fekete-style) on top of the
// SI store. The construction follows "Serializable Isolation for
// Snapshot Databases" (SIGMOD 2008): every SI anomaly contains a PIVOT
// transaction with both an incoming and an outgoing rw-antidependency
// edge to/from transactions concurrent with it, so aborting every
// would-be pivot makes the history serializable.
//
// The tracking is the paper's conservative two-flag approximation:
//
//   - SIREAD marks: each snapshot read leaves a key-level mark on the
//     row's chain (ssiMark). Marks survive COMMIT — a committed reader
//     can still be the source of an in-edge to a later writer — and are
//     reclaimed only when the watermark passes the reader's commit, at
//     which point no concurrent writer can still exist.
//   - rw-edges: a reader that resolves BELOW the heap image gained an
//     out-edge to each newer image's creator (Store.Read); a writer
//     that overwrites a row carrying live concurrent marks gains an
//     in-edge from each marker (Store.Write, after FCW validation).
//   - dangerous structure: installing an edge that gives either
//     endpoint both flags triggers an abort. The acting transaction is
//     preferred as the victim — its edges die with it, so the other
//     side stays clean; a pivot that is already committed or latched
//     for commit cannot be aborted, so the acting transaction yields.
//
// Flags are sticky (edges are never un-counted when the far side
// aborts or falls behind the watermark), which is the deliberate
// source of false positives: an abort fires for every dangerous
// structure, not every actual cycle. TPC-C itself is serializable
// under plain SI (Fekete et al., TODS 2005), so on this engine's own
// workload EVERY ssi abort is a false positive — BENCH_cc.json reports
// the rate as exactly that.
//
// Marks are key-level only: predicate (index-range) anti-dependencies
// are out of scope, same as the row-granularity FCW they extend.
package mvcc

import (
	"errors"
	"sync/atomic"
)

// ErrSSI is the dangerous-structure abort: committing this transaction
// could close an rw-antidependency cycle. The caller must abort and
// retry with a fresh snapshot; the retry cannot livelock, because the
// pivot that forced the abort is no longer concurrent with it.
var ErrSSI = errors.New("mvcc: rw-antidependency pivot (serialization failure)")

// ssiRec conflict-flag state bits.
const (
	ssiIn           uint32 = 1 << iota // someone has an rw-edge INTO this txn
	ssiOut                             // this txn has an rw-edge OUT to someone
	ssiAbortPending                    // doomed by a pivot check; must not commit
	ssiPrepared                        // latched for commit (2PC prepare or PreCommit); no longer abortable
)

// ssiRec is the conflict-flag record of one transaction LIFE. It is
// pooled: recs outlive their transaction (a committed reader's flags
// and marks stay meaningful until the watermark passes its commit), so
// they cannot live in the Txn scratch itself. gen is bumped on every
// release; a mark or version that captured an older gen is stale and
// ignored. All cross-thread fields are atomics — recs are read under
// whatever shard mutex the reader holds, which orders nothing between
// different shards.
type ssiRec struct {
	gen   atomic.Uint64
	state atomic.Uint32
	endTS atomic.Uint64 // commit timestamp; 0 while active or aborted
	next  *ssiRec       // store free list, guarded by regMu
}

// ssiMark is one transaction's SIREAD mark on a chain. The gen snapshot
// makes the mark self-invalidating: once the rec is released (abort, or
// watermark passed its commit) the gens disagree and the mark is dead
// weight that the next scan compacts away.
type ssiMark struct {
	rec *ssiRec
	gen uint64
}

// orState is a CAS or-loop (keeps the module's language level below the
// atomic.Uint32.Or API).
func orState(v *atomic.Uint32, bits uint32) {
	for {
		old := v.Load()
		if old&bits == bits || v.CompareAndSwap(old, old|bits) {
			return
		}
	}
}

// SSI reports whether the store runs serializable snapshot isolation.
func (s *Store) SSI() bool { return s.ssi }

// SSIAborts returns the number of dangerous-structure aborts.
func (s *Store) SSIAborts() int64 { return s.ssiAborts.Load() }

// acquireRecLocked pops or allocates a rec for a new transaction life.
// gen is NOT bumped here — it was bumped at release, so marks from the
// previous life are already stale. Caller holds regMu.
func (s *Store) acquireRecLocked() *ssiRec {
	r := s.recFree
	if r != nil {
		s.recFree = r.next
		r.next = nil
	} else {
		r = &ssiRec{}
	}
	r.state.Store(0)
	r.endTS.Store(0)
	return r
}

// releaseRecLocked ends a rec's life: the gen bump atomically
// invalidates every mark and version reference to it. Caller holds
// regMu.
func (s *Store) releaseRecLocked(r *ssiRec) {
	r.gen.Add(1)
	r.endTS.Store(0)
	r.next = s.recFree
	s.recFree = r
}

// reapCommittedLocked releases committed recs the watermark has passed:
// no active snapshot predates their commit, so no concurrent writer can
// still arrive and none of their edges can matter again. commRecs is
// append-ordered by commit (modulo a benign publication race that can
// only delay a release), so a head-first sweep suffices. Caller holds
// regMu.
func (s *Store) reapCommittedLocked(wm uint64) {
	for s.commHead < len(s.commRecs) {
		r := s.commRecs[s.commHead]
		if r.endTS.Load() > wm {
			break
		}
		s.commRecs[s.commHead] = nil
		s.commHead++
		s.releaseRecLocked(r)
	}
	if s.commHead > 0 && s.commHead*2 >= len(s.commRecs) {
		n := copy(s.commRecs, s.commRecs[s.commHead:])
		for i := n; i < len(s.commRecs); i++ {
			s.commRecs[i] = nil
		}
		s.commRecs = s.commRecs[:n]
		s.commHead = 0
	}
}

// compactMarks drops stale marks in place and returns how many live
// ones remain. Caller holds the chain's shard mutex.
func compactMarks(c *chain) int {
	kept := c.marks[:0]
	for _, m := range c.marks {
		if m.rec.gen.Load() == m.gen {
			kept = append(kept, m)
		}
	}
	c.marks = kept
	return len(kept)
}

// siread records t's SIREAD mark on c (once per chain per transaction),
// compacting stale marks on the way through. Caller holds the shard
// mutex; the caller has already excluded c.writer == t (a row the
// transaction itself writes needs no mark — FCW plus its own in-edge
// surface cover it).
func (s *Store) siread(t *Txn, c *chain) {
	kept := c.marks[:0]
	own := false
	for _, m := range c.marks {
		if m.rec.gen.Load() != m.gen {
			continue
		}
		if m.rec == t.rec {
			own = true
		}
		kept = append(kept, m)
	}
	c.marks = kept
	if !own {
		c.marks = append(c.marks, ssiMark{rec: t.rec, gen: t.recGen})
		t.reads = append(t.reads, c)
	}
}

// applyEdge installs the rw-antidependency reader→writer and runs the
// dangerous-structure checks. It returns true when the ACTING
// transaction (always one of the two endpoints) must abort, in which
// case the edge was NOT installed: an aborted transaction's edges are
// void, so suppressing them keeps the surviving side's flags clean —
// this is what lets one victim resolve a two-transaction skew.
//
// When the OTHER endpoint becomes a pivot: if it is still active it is
// doomed via abortPending, checked under commitMu so the marking cannot
// race its PreCommit latch; if it is already committed or latched, the
// acting transaction yields instead.
func (s *Store) applyEdge(reader, writer, acting *ssiRec) bool {
	if reader == writer {
		return false
	}
	if acting == reader && acting.state.Load()&ssiIn != 0 {
		return true
	}
	if acting == writer && acting.state.Load()&ssiOut != 0 {
		return true
	}
	orState(&reader.state, ssiOut)
	orState(&writer.state, ssiIn)
	other := reader
	if other == acting {
		other = writer
	}
	if other.state.Load()&(ssiIn|ssiOut) == ssiIn|ssiOut {
		s.commitMu.Lock()
		if other.endTS.Load() != 0 || other.state.Load()&ssiPrepared != 0 {
			s.commitMu.Unlock()
			return true
		}
		orState(&other.state, ssiAbortPending)
		s.commitMu.Unlock()
	}
	return false
}

// readEdge installs t → creator for a newer-image creator t's snapshot
// read skipped over. Read itself never fails: if the edge makes t the
// pivot, t is doomed in place and the abort surfaces at its next Write
// or at PreCommit. The gen check filters creators whose rec was
// recycled (only reachable via chain.latestRec after a Reset-scale
// event; live creators of too-new images are pinned by the watermark).
func (s *Store) readEdge(t *Txn, rec *ssiRec, gen uint64) {
	if rec == nil || rec == t.rec || rec.gen.Load() != gen {
		return
	}
	if s.applyEdge(t.rec, rec, t.rec) {
		orState(&t.rec.state, ssiAbortPending)
	}
}

// PreCommit validates t under SSI and must be called BEFORE the commit
// is made durable (the WAL append, or the 2PC prepare vote): a doomed
// or pivot transaction must abort instead. On success the rec is
// latched (ssiPrepared) under commitMu, closing the race where a
// concurrent pivot check marks a transaction that is already past its
// validation — after the latch, applyEdge aborts the acting side
// instead. Under plain SI this is a no-op. PreCommit must be called at
// most once per transaction (db tracks that); after a nil return the
// transaction MUST proceed to Commit or Abort.
func (s *Store) PreCommit(t *Txn) error {
	if !s.ssi {
		return nil
	}
	s.commitMu.Lock()
	st := t.rec.state.Load()
	if st&ssiAbortPending != 0 || st&(ssiIn|ssiOut) == ssiIn|ssiOut {
		s.commitMu.Unlock()
		s.ssiAborts.Add(1)
		return ErrSSI
	}
	orState(&t.rec.state, ssiPrepared)
	s.commitMu.Unlock()
	return nil
}
