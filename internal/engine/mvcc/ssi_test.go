package mvcc

import (
	"errors"
	"testing"
)

// Store-level SSI tests: dangerous-structure aborts, SIREAD mark
// lifetime across commit, the prepared latch, and rec-pool hygiene. The
// heap is the same plain-map model the SI tests use.

var (
	kx = Key{Table: 1, Row: 11}
	ky = Key{Table: 1, Row: 12}
	kz = Key{Table: 2, Row: 13}
)

// seedSSI commits initial images for kx and ky and returns the store.
func seedSSI(t *testing.T, heap map[Key][]byte) (*Store, *RetireSet) {
	t.Helper()
	s := NewSerializableStore()
	var ret RetireSet
	var t0 Txn
	s.Begin(&t0, &ret)
	for _, k := range []Key{kx, ky} {
		if err := s.Write(&t0, k, nil); err != nil {
			t.Fatal(err)
		}
	}
	heap[kx] = rec(1)
	heap[ky] = rec(2)
	if err := s.PreCommit(&t0); err != nil {
		t.Fatal(err)
	}
	if s.Commit(&t0, &ret) == 0 {
		t.Fatal("seed commit got ts 0")
	}
	return s, &ret
}

// TestSSIWriteSkewOneVictim is the canonical two-transaction skew at
// store level: each reads the row the other writes. The second crossing
// write must fail with ErrSSI — and ONLY that transaction dies: because
// the victim's edges are never installed, the first transaction stays
// clean and commits.
func TestSSIWriteSkewOneVictim(t *testing.T) {
	heap := map[Key][]byte{}
	s, ret := seedSSI(t, heap)

	var t1, t2 Txn
	s.Begin(&t1, nil)
	s.Begin(&t2, nil)
	if v, ok := readAt(s, &t1, ky, heap); !ok || v != 2 {
		t.Fatalf("t1 read ky = (%d,%v), want (2,true)", v, ok)
	}
	if v, ok := readAt(s, &t2, kx, heap); !ok || v != 1 {
		t.Fatalf("t2 read kx = (%d,%v), want (1,true)", v, ok)
	}
	if err := s.Write(&t1, kx, heap[kx]); err != nil {
		t.Fatalf("t1 write kx: %v", err)
	}
	heap[kx] = rec(10)
	err := s.Write(&t2, ky, heap[ky])
	if !errors.Is(err, ErrSSI) {
		t.Fatalf("t2 crossing write: %v, want ErrSSI", err)
	}
	if n := s.SSIAborts(); n != 1 {
		t.Fatalf("ssi aborts = %d, want 1", n)
	}
	s.Abort(&t2, ret)

	if err := s.PreCommit(&t1); err != nil {
		t.Fatalf("t1 must survive the skew (victim's edges are void): %v", err)
	}
	if s.Commit(&t1, ret) == 0 {
		t.Fatal("t1 commit got ts 0")
	}

	// The retry with a fresh snapshot is serial after t1: no concurrent
	// reader, no edges, clean commit — abort-and-retry cannot livelock.
	var t2r Txn
	s.Begin(&t2r, ret)
	if v, ok := readAt(s, &t2r, kx, heap); !ok || v != 10 {
		t.Fatalf("t2 retry read kx = (%d,%v), want (10,true)", v, ok)
	}
	if err := s.Write(&t2r, ky, heap[ky]); err != nil {
		t.Fatalf("t2 retry write ky: %v", err)
	}
	heap[ky] = rec(20)
	if err := s.PreCommit(&t2r); err != nil {
		t.Fatalf("t2 retry precommit: %v", err)
	}
	if s.Commit(&t2r, ret) == 0 {
		t.Fatal("t2 retry commit got ts 0")
	}
}

// TestSSIMarkSurvivesCommit pins the SIREAD lifetime rule: a committed
// reader's mark (and its conflict flags) must stay live until the
// watermark passes its commit — an active transaction that began before
// the reader committed can still close a cycle through it. With r
// committed, w's read below r's write gives w an out-edge, and w's
// write over r's mark would give it an in-edge: w is the pivot and must
// die, no matter how many other transactions begin and prune meanwhile.
func TestSSIMarkSurvivesCommit(t *testing.T) {
	heap := map[Key][]byte{}
	s, ret := seedSSI(t, heap)

	var w, r Txn
	s.Begin(&w, nil) // concurrent with r; its snapshot holds the watermark
	s.Begin(&r, nil)
	if v, ok := readAt(s, &r, kx, heap); !ok || v != 1 {
		t.Fatalf("r read kx = (%d,%v), want (1,true)", v, ok)
	}
	if err := s.Write(&r, ky, heap[ky]); err != nil {
		t.Fatal(err)
	}
	heap[ky] = rec(20)
	if err := s.PreCommit(&r); err != nil {
		t.Fatal(err)
	}
	if s.Commit(&r, ret) == 0 {
		t.Fatal("r commit got ts 0")
	}

	// Begin/abort churn: the rec reap must NOT release r's record while
	// w's older snapshot is still active (premature reclaim would erase
	// both the mark on kx and the flags the next edge needs).
	for i := 0; i < 5; i++ {
		var g Txn
		s.Begin(&g, ret)
		s.Abort(&g, nil)
	}

	// w reads ky below r's committed image: out-edge w → r.
	if v, ok := readAt(s, &w, ky, heap); !ok || v != 2 {
		t.Fatalf("w read ky = (%d,%v), want the pre-r image (2,true)", v, ok)
	}
	// w overwrites kx, which r read: in-edge w ← ... no — r → w, making
	// w in+out: the pivot of a genuine 2-cycle (r must come both before
	// and after w). The write must fail.
	if err := s.Write(&w, kx, heap[kx]); !errors.Is(err, ErrSSI) {
		t.Fatalf("w write kx over committed r's mark: %v, want ErrSSI", err)
	}
	s.Abort(&w, ret)

	// Once w is gone the watermark passes r's commit; the next begin
	// reaps r's rec and the marks go stale: a fresh writer sails through.
	var w2 Txn
	s.Begin(&w2, ret)
	if err := s.Write(&w2, kx, heap[kx]); err != nil {
		t.Fatalf("fresh write kx after drain: %v", err)
	}
	heap[kx] = rec(30)
	if err := s.PreCommit(&w2); err != nil {
		t.Fatal(err)
	}
	s.Commit(&w2, ret)
}

// TestSSIPivotDoomedAtPreCommit builds the three-transaction dangerous
// structure around a still-active pivot: r2 → p (r2 read below p's
// uncommitted write) and p → w3 (w3 overwrote p's read). The pivot is
// active when the second edge lands, so it is doomed in place and finds
// out at PreCommit; the two neighbors both survive.
func TestSSIPivotDoomedAtPreCommit(t *testing.T) {
	heap := map[Key][]byte{}
	s, ret := seedSSI(t, heap)

	var p, r2, w3 Txn
	s.Begin(&p, nil)
	s.Begin(&r2, nil)
	s.Begin(&w3, nil)

	if v, ok := readAt(s, &p, kx, heap); !ok || v != 1 {
		t.Fatalf("p read kx = (%d,%v)", v, ok)
	}
	if err := s.Write(&p, ky, heap[ky]); err != nil {
		t.Fatal(err)
	}
	heap[ky] = rec(20)

	// r2 reads ky below p's uncommitted image: r2 → p, p gains in.
	if v, ok := readAt(s, &r2, ky, heap); !ok || v != 2 {
		t.Fatalf("r2 read ky = (%d,%v), want (2,true)", v, ok)
	}
	// w3 overwrites kx, which p read: p → w3, p gains out = pivot.
	if err := s.Write(&w3, kx, heap[kx]); err != nil {
		t.Fatalf("w3 write kx: %v (the ACTIVE pivot should be doomed, not the actor)", err)
	}
	heap[kx] = rec(30)

	if err := s.PreCommit(&p); !errors.Is(err, ErrSSI) {
		t.Fatalf("pivot precommit: %v, want ErrSSI", err)
	}
	heap[ky] = rec(2) // engine would undo p's heap write
	s.Abort(&p, ret)

	if err := s.PreCommit(&w3); err != nil {
		t.Fatalf("w3 precommit: %v", err)
	}
	s.Commit(&w3, ret)
	if err := s.PreCommit(&r2); err != nil {
		t.Fatalf("r2 precommit: %v", err)
	}
	s.Commit(&r2, ret)
}

// TestSSIPreparedPivotUnabortable: once a transaction passes PreCommit
// (the 2PC prepare vote), it is latched — a later edge that makes it a
// pivot must abort the ACTING transaction instead, because the prepared
// branch has promised its coordinator it can commit.
func TestSSIPreparedPivotUnabortable(t *testing.T) {
	heap := map[Key][]byte{}
	s, ret := seedSSI(t, heap)

	var p, r2, w3 Txn
	s.Begin(&p, nil)
	s.Begin(&r2, nil)
	s.Begin(&w3, nil)

	if v, ok := readAt(s, &p, kx, heap); !ok || v != 1 {
		t.Fatalf("p read kx = (%d,%v)", v, ok)
	}
	if err := s.Write(&p, ky, heap[ky]); err != nil {
		t.Fatal(err)
	}
	heap[ky] = rec(20)
	if err := s.PreCommit(&p); err != nil {
		t.Fatalf("prepare p: %v", err)
	}

	// r2 → p lands after the latch: allowed, p only gains in.
	if v, ok := readAt(s, &r2, ky, heap); !ok || v != 2 {
		t.Fatalf("r2 read ky = (%d,%v)", v, ok)
	}
	// w3's overwrite of p's read would make latched p the pivot: w3 must
	// yield instead.
	if err := s.Write(&w3, kx, heap[kx]); !errors.Is(err, ErrSSI) {
		t.Fatalf("w3 write kx against prepared pivot: %v, want ErrSSI", err)
	}
	s.Abort(&w3, ret)

	if s.Commit(&p, ret) == 0 {
		t.Fatal("prepared p must commit")
	}
	s.Commit(&r2, ret)
}

// TestSSIAbsentReadMark: a snapshot read of a key with NO chain and no
// heap row still leaves a mark (on a mark-only chain), so a concurrent
// INSERT of that key raises the antidependency — the "saw nothing"
// read is as protected as any other.
func TestSSIAbsentReadMark(t *testing.T) {
	heap := map[Key][]byte{}
	s, ret := seedSSI(t, heap)

	var t1, t2 Txn
	s.Begin(&t1, nil)
	s.Begin(&t2, nil)
	if _, ok := readAt(s, &t1, kz, heap); ok {
		t.Fatal("kz should be absent")
	}
	if err := s.Write(&t1, kx, heap[kx]); err != nil {
		t.Fatal(err)
	}
	heap[kx] = rec(10)
	// t2 read kx below t1's write (out-edge), then inserts the key t1
	// saw absent (would add the in-edge): t2 is the pivot.
	if v, ok := readAt(s, &t2, kx, heap); !ok || v != 1 {
		t.Fatalf("t2 read kx = (%d,%v), want (1,true)", v, ok)
	}
	if err := s.Write(&t2, kz, nil); !errors.Is(err, ErrSSI) {
		t.Fatalf("t2 insert of t1's absent read: %v, want ErrSSI", err)
	}
	s.Abort(&t2, ret)
	if err := s.PreCommit(&t1); err != nil {
		t.Fatal(err)
	}
	s.Commit(&t1, ret)
}

// TestSSIQuiesceReclaimsEverything runs sequential read+write
// transactions and checks the pools quiesce: the committed-rec queue
// drains to its compaction floor, no chains leak once the retire ring
// is pruned, and read-only commits still report ts 0 to the WAL-skip
// path while drawing the clock tick SSI needs internally.
func TestSSIQuiesceReclaimsEverything(t *testing.T) {
	heap := map[Key][]byte{}
	s, ret := seedSSI(t, heap)

	clock0 := s.Clock()
	for i := 0; i < 100; i++ {
		var tx Txn
		s.Begin(&tx, ret)
		if _, ok := readAt(s, &tx, kx, heap); !ok {
			t.Fatal("kx missing")
		}
		if err := s.Write(&tx, ky, heap[ky]); err != nil {
			t.Fatal(err)
		}
		heap[ky] = rec(byte(i))
		if err := s.PreCommit(&tx); err != nil {
			t.Fatal(err)
		}
		if s.Commit(&tx, ret) == 0 {
			t.Fatal("writing commit got ts 0")
		}
	}
	// A read-only transaction with marks: ts 0 to the caller, but the
	// clock must tick (its endTS orders the mark lifetime).
	var ro Txn
	s.Begin(&ro, ret)
	if _, ok := readAt(s, &ro, kx, heap); !ok {
		t.Fatal("kx missing")
	}
	c := s.Clock()
	if ts := s.Commit(&ro, ret); ts != 0 {
		t.Fatalf("read-only commit got ts %d", ts)
	}
	if s.Clock() != c+1 {
		t.Fatalf("read-only SSI commit with marks must tick the clock (%d -> %d)", c, s.Clock())
	}

	// Drain: two begin/abort cycles reap recs and prune the ring.
	for i := 0; i < 2; i++ {
		var fin Txn
		s.Begin(&fin, ret)
		s.Abort(&fin, nil)
	}
	if n := ret.Len(); n != 0 {
		t.Fatalf("retire ring holds %d entries after drain", n)
	}
	if n := s.Chains(); n != 0 {
		t.Fatalf("%d chains leaked after drain", n)
	}
	s.regMu.Lock()
	pending := len(s.commRecs) - s.commHead
	s.regMu.Unlock()
	if pending != 0 {
		t.Fatalf("%d committed recs never reaped", pending)
	}
	if s.Clock() <= clock0 {
		t.Fatal("clock did not advance")
	}
	if n := s.SSIAborts(); n != 0 {
		t.Fatalf("sequential schedule produced %d ssi aborts, want 0", n)
	}
}
