// Package mvcc is the engine's multi-version concurrency-control store:
// per-row version chains keyed by commit timestamp, giving transactions
// snapshot isolation (SI) on top of the existing heap files.
//
// The division of labor with package db is deliberate: the HEAP always
// holds the newest image of every row (committed or in flight under its
// writer's exclusive row lock), while this store holds the OLDER images a
// concurrent snapshot may still need, plus the commit-timestamp metadata
// that decides which image a given snapshot sees. A transaction reads the
// heap first and then asks Resolve-style Read whether that image is the
// one its snapshot should observe; if not, Read overwrites the caller's
// buffer with the visible version from the chain's arena.
//
//	visibility rule: a snapshot S observes the newest version with
//	commit-ts <= S; rows whose chain is absent are visible as-is (their
//	last writer committed at or below every live snapshot's S — the
//	pruning precondition below guarantees it).
//
// Writers keep using exclusive row locks (writes are lock-based, reads
// are version-based), so at most one transaction has a row "open" at a
// time; first-committer-wins validation happens at write time: pushing a
// version onto a chain whose latest commit is newer than the writer's
// snapshot fails with ErrConflict and the transaction aborts and retries.
//
// Commit timestamps are assigned under one short mutex so that
// publication is atomic with the clock advance: a snapshot S taken after
// the clock reads ts is guaranteed to observe every commit with
// commit-ts <= ts, across all of the committer's rows at once (no torn
// commit cuts). Chains are recycled through per-shard free lists, version
// images through per-chain arenas, and a committed transaction's chains
// are pruned once the low-watermark snapshot passes their commit
// timestamp — steady-state operation allocates nothing, preserving the
// engine's zero-alloc hot path.
//
// The store is sharded by key hash; every chain access takes only its
// shard mutex. Deliberate non-goals, documented for honesty: SI is
// per-store (per engine shard) — a cross-shard 2PC transaction gets one
// snapshot per shard, not a global one — and in plain SI mode write skew
// is ALLOWED, as at any snapshot-isolation level (db's anomaly battery
// witnesses it). A store built with NewSerializableStore closes the
// write-skew hole with Cahill-style SSI — SIREAD marks, rw-antidependency
// flags, dangerous-structure aborts — see ssi.go for the full protocol.
package mvcc

import (
	"errors"
	"sync"
	"sync/atomic"
)

// ErrConflict is the first-committer-wins validation failure: the row was
// committed by another transaction after this transaction's snapshot.
// The caller must abort and retry with a fresh snapshot.
var ErrConflict = errors.New("mvcc: write-write conflict (first committer wins)")

// Key identifies a logical row, mirroring lock.Key: the relation in Table
// and the engine's packed row key in Row.
type Key struct {
	Table uint32
	Row   uint64
}

// storeShards is the chain-map shard count (power of two). 256 shards
// keep shard-mutex contention negligible at any worker count the engine
// runs.
const storeShards = 256

// version is one historical image of a row. The image bytes live in the
// owning chain's arena at [off, off+n); absent marks a version in which
// the row did not exist (the before-image of an insert). Under SSI, rec
// and gen identify the transaction that CREATED this image, so a reader
// resolving below it knows whom its out-edge points at.
type version struct {
	ts     uint64
	off    int32
	n      int32
	absent bool
	rec    *ssiRec
	gen    uint64
}

// chain is the version history of one row. latestTS is the commit
// timestamp of the image currently in the heap; writer, when non-nil, is
// the transaction that has pushed an uncommitted heap image (it holds the
// row's exclusive lock). versions holds the still-reachable older images,
// oldest first. All fields are guarded by the owning shard's mutex.
// Under SSI a chain additionally carries the SIREAD marks of its readers
// (marks) and the creator identity of the heap image (latestRec/latestGen,
// valid while that rec's gen matches); a chain may exist with no versions
// at all, purely to hold marks — including marks on absent rows, which is
// what catches an insert overwriting a "saw nothing" read.
type chain struct {
	k         Key
	latestTS  uint64
	writer    *Txn
	versions  []version
	arena     []byte
	next      *chain // shard free list
	marks     []ssiMark
	latestRec *ssiRec
	latestGen uint64
}

type storeShard struct {
	mu     sync.Mutex
	chains map[Key]*chain
	free   *chain
	_      [24]byte // keep neighboring shards off one cache line
}

func (sh *storeShard) alloc(k Key) *chain {
	c := sh.free
	if c != nil {
		sh.free = c.next
		c.next = nil
	} else {
		c = &chain{}
	}
	c.k = k
	c.latestTS = 0
	c.writer = nil
	c.versions = c.versions[:0]
	c.arena = c.arena[:0]
	c.marks = c.marks[:0]
	c.latestRec = nil
	c.latestGen = 0
	return c
}

func (sh *storeShard) release(c *chain) {
	c.writer = nil
	c.versions = c.versions[:0]
	c.arena = c.arena[:0]
	c.marks = c.marks[:0]
	c.latestRec = nil
	c.latestGen = 0
	c.next = sh.free
	sh.free = c
}

// Txn is the per-transaction MVCC state, embedded by value in the
// engine's transaction scratch so beginning a transaction allocates
// nothing. ts is the snapshot timestamp; commitTS publishes the commit
// decision to concurrent readers before the per-chain flip; prev/next
// link the transaction into the store's active-snapshot registry; chains
// lists the chains this transaction has pushed uncommitted versions onto.
// Under SSI the transaction additionally borrows a pooled conflict-flag
// rec for this life (rec/recGen) and lists the chains it left SIREAD
// marks on (reads), so commit/abort can queue them for retirement.
type Txn struct {
	ts       uint64
	commitTS atomic.Uint64
	prev     *Txn
	next     *Txn
	chains   []*chain
	rec      *ssiRec
	recGen   uint64
	reads    []*chain
}

// Snapshot returns the transaction's snapshot timestamp.
func (t *Txn) Snapshot() uint64 { return t.ts }

// Writes returns how many distinct rows the transaction has versioned.
func (t *Txn) Writes() int { return len(t.chains) }

// retireEntry defers pruning of one committed chain until the low
// watermark passes its commit timestamp. It holds the key, never the
// chain pointer: the chain may be freed and recycled for another key by a
// different ring in the meantime.
type retireEntry struct {
	k  Key
	ts uint64
}

// RetireSet is a caller-owned ring of committed (key, commit-ts) pairs
// awaiting pruning. Sessions keep one per transaction slot and pass it to
// Begin, which prunes the entries the watermark has passed; the slice is
// reused, so steady-state pruning allocates nothing.
type RetireSet struct {
	entries []retireEntry
}

// Len returns the number of chains still awaiting pruning.
func (r *RetireSet) Len() int { return len(r.entries) }

// Store is a sharded MVCC version-chain store with a global commit clock
// and an active-snapshot registry.
type Store struct {
	shards [storeShards]storeShard

	// commitMu makes commit-timestamp assignment atomic with publication:
	// {ts = clock+1; txn.commitTS = ts; clock = ts} is one critical
	// section, so any snapshot >= ts observes the commit on every row.
	commitMu sync.Mutex
	clock    atomic.Uint64

	// regMu guards the active-transaction list (the watermark source)
	// and, under SSI, the rec pool and committed-rec reap queue.
	regMu  sync.Mutex
	active *Txn

	// SSI state (ssi.go): recFree pools conflict-flag recs; commRecs is
	// the committed-rec reap queue in commit order with commHead the
	// consumed prefix.
	ssi      bool
	recFree  *ssiRec
	commRecs []*ssiRec
	commHead int

	conflicts atomic.Int64
	ssiAborts atomic.Int64
}

// NewStore returns an empty store with the commit clock at zero.
func NewStore() *Store {
	s := &Store{}
	for i := range s.shards {
		s.shards[i].chains = make(map[Key]*chain)
	}
	return s
}

// NewSerializableStore returns a store running serializable snapshot
// isolation: plain SI plus SIREAD marks, rw-antidependency tracking,
// and dangerous-structure aborts (ErrSSI). Callers additionally must
// run PreCommit before deciding any commit.
func NewSerializableStore() *Store {
	s := NewStore()
	s.ssi = true
	return s
}

// shardOf hashes a key to its shard (fnv-1a over the packed fields).
func (s *Store) shardOf(k Key) *storeShard {
	h := uint64(14695981039346656037)
	h = (h ^ uint64(k.Table)) * 1099511628211
	h = (h ^ k.Row) * 1099511628211
	h = (h ^ (k.Row >> 32)) * 1099511628211
	return &s.shards[h&(storeShards-1)]
}

// Clock returns the last assigned commit timestamp.
func (s *Store) Clock() uint64 { return s.clock.Load() }

// Conflicts returns the number of first-committer-wins rejections.
func (s *Store) Conflicts() int64 { return s.conflicts.Load() }

// Chains returns the number of live (unpruned) chains, for leak checks.
func (s *Store) Chains() int {
	n := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		n += len(sh.chains)
		sh.mu.Unlock()
	}
	return n
}

// Begin gives t a fresh snapshot and registers it as active. The
// watermark (minimum active snapshot, or the clock when none) is computed
// under the same registry lock, and ret's prunable entries are retired
// against it — every transaction start pays down a little garbage, which
// is what keeps steady-state chain counts flat without a vacuum thread.
func (s *Store) Begin(t *Txn, ret *RetireSet) {
	s.regMu.Lock()
	wm := s.clock.Load()
	for a := s.active; a != nil; a = a.next {
		if a.ts < wm {
			wm = a.ts
		}
	}
	t.ts = s.clock.Load()
	t.commitTS.Store(0)
	t.chains = t.chains[:0]
	t.prev = nil
	t.next = s.active
	if s.active != nil {
		s.active.prev = t
	}
	s.active = t
	if s.ssi {
		// Reap first, then borrow: a rec freed by the reap can serve this
		// very transaction.
		s.reapCommittedLocked(wm)
		t.rec = s.acquireRecLocked()
		t.recGen = t.rec.gen.Load()
		t.reads = t.reads[:0]
	}
	s.regMu.Unlock()
	if ret != nil && len(ret.entries) > 0 {
		s.prune(ret, wm)
	}
}

// prune frees the chains in ret whose commit timestamp the watermark has
// passed. A chain may be freed only when no writer holds it and its
// latest commit is at or below the watermark: every live and future
// snapshot then sees the heap image, so the chain carries no information.
// An entry is consumed when its chain is freed, already gone, or has
// moved past the entry's commit (the newer commit's own retire entry
// covers it); an entry whose chain is pinned by an uncommitted writer is
// RE-QUEUED — if that writer aborts, this entry is the only one left that
// can ever retire the chain. A chain pinned only by live SIREAD marks is
// consumed WITHOUT freeing: every live mark's owner queues its own
// retire entry for the chain when it ends (commit or abort), so the
// youngest of those future entries retires it — and a committed marker's
// mark cannot outlive its entry, because the reap that stales the mark
// (Begin, under regMu) runs before that same Begin's prune.
func (s *Store) prune(ret *RetireSet, wm uint64) {
	kept := ret.entries[:0]
	for _, e := range ret.entries {
		if e.ts > wm {
			kept = append(kept, e)
			continue
		}
		sh := s.shardOf(e.k)
		sh.mu.Lock()
		c := sh.chains[e.k]
		switch {
		case c == nil || c.latestTS > e.ts:
			// Freed already, or a newer commit owns retiring it.
		case c.writer != nil:
			kept = append(kept, e)
		case compactMarks(c) > 0:
			// Live marks pin the chain; their owners' entries cover it.
		default:
			// No writer, no live marks, and latestTS <= e.ts <= wm:
			// every live and future snapshot sees the heap image.
			delete(sh.chains, e.k)
			sh.release(c)
		}
		sh.mu.Unlock()
	}
	ret.entries = kept
}

// Read resolves the row's visibility for t's snapshot. The caller has
// already read the CURRENT heap image into buf (heapLive=false when the
// heap has no record — a deleted or not-yet-inserted row). Read returns
// whether the row is live at the snapshot; when the heap image is not the
// visible one it overwrites buf with the visible version's bytes.
//
// The heap read and this resolution are not atomic, but the ordering
// protocol makes the pair safe: a writer sets chain.writer under the
// shard mutex BEFORE its first heap mutation of the row and clears it
// (commit flip or abort pop) only AFTER the heap holds the final image —
// so whenever Read decides "the heap image is the visible one", the heap
// image cannot have been mid-flight. Per-record torn reads are impossible
// separately: heap record access is serialized by the buffer frame lock.
// Under SSI, Read additionally leaves t's SIREAD mark on the chain
// (creating a mark-only chain if none exists — absent rows included)
// and, whenever it resolves BELOW the heap image, installs an out-edge
// to each newer image's creator. Read itself never fails: an edge that
// makes t the pivot dooms it in place, surfacing at Write or PreCommit.
func (s *Store) Read(t *Txn, k Key, heapLive bool, buf []byte) bool {
	sh := s.shardOf(k)
	sh.mu.Lock()
	c := sh.chains[k]
	if c == nil {
		if !s.ssi {
			sh.mu.Unlock()
			return heapLive
		}
		c = sh.alloc(k)
		sh.chains[k] = c
	}
	if s.ssi && c.writer != t {
		s.siread(t, c)
	}
	if w := c.writer; w != nil {
		if w == t {
			// Own uncommitted write: the heap holds it.
			sh.mu.Unlock()
			return heapLive
		}
		if cts := w.commitTS.Load(); cts != 0 && cts <= t.ts {
			// Writer committed at or before our snapshot; its heap image
			// is the visible version even though the flip hasn't landed.
			sh.mu.Unlock()
			return heapLive
		}
	} else if c.latestTS <= t.ts {
		sh.mu.Unlock()
		return heapLive
	}
	// The heap image is too new for this snapshot: walk versions newest
	// to oldest for the first one at or below it. Every image we skip
	// over was created by a transaction concurrent with (or newer than)
	// this snapshot: under SSI each creator gets an out-edge from t.
	if s.ssi {
		if w := c.writer; w != nil {
			s.readEdge(t, w.rec, w.recGen)
		} else {
			s.readEdge(t, c.latestRec, c.latestGen)
		}
	}
	for i := len(c.versions) - 1; i >= 0; i-- {
		v := c.versions[i]
		if v.ts > t.ts {
			if s.ssi {
				s.readEdge(t, v.rec, v.gen)
			}
			continue
		}
		if v.absent {
			sh.mu.Unlock()
			return false
		}
		copy(buf[:v.n], c.arena[v.off:v.off+v.n])
		sh.mu.Unlock()
		return true
	}
	// No version at or below the snapshot: the row did not exist then
	// (the oldest version of a chain is the image that predates its first
	// chained write, so running out of versions means the chain was
	// created by an insert newer than the snapshot).
	sh.mu.Unlock()
	return false
}

// Write records t's intent to overwrite the row, validating first
// committer wins and preserving the current image (before; nil for an
// insert) as a version. The caller must hold the row's exclusive lock and
// must apply its heap mutation only after Write returns nil. Writing a
// row the transaction already wrote is a no-op (the chain already holds
// the pre-transaction image).
//
// Under SSI, Write is where a doomed transaction finds out (ErrSSI for
// a pending abort a Read deferred), and where in-edges land: after FCW
// validation passes, every live concurrent SIREAD mark on the chain is
// an rw-antidependency from its reader into t. ErrSSI returns leave the
// chain unmodified.
func (s *Store) Write(t *Txn, k Key, before []byte) error {
	if s.ssi && t.rec.state.Load()&ssiAbortPending != 0 {
		s.ssiAborts.Add(1)
		return ErrSSI
	}
	sh := s.shardOf(k)
	sh.mu.Lock()
	c := sh.chains[k]
	if c == nil {
		c = sh.alloc(k)
		sh.chains[k] = c
	}
	if c.writer == t {
		sh.mu.Unlock()
		return nil
	}
	if c.writer != nil || c.latestTS > t.ts {
		// writer != nil cannot happen under the exclusive-lock protocol
		// (the previous writer flips or pops before releasing); treated
		// as a conflict rather than a panic so a protocol bug degrades to
		// aborts instead of corruption.
		sh.mu.Unlock()
		s.conflicts.Add(1)
		return ErrConflict
	}
	if s.ssi {
		abort := false
		kept := c.marks[:0]
		for _, m := range c.marks {
			if m.rec.gen.Load() != m.gen {
				continue
			}
			kept = append(kept, m)
			r := m.rec
			if r == t.rec || abort {
				continue
			}
			if e := r.endTS.Load(); e != 0 && e <= t.ts {
				// Reader committed at or before our snapshot: not
				// concurrent, its read saw a final state.
				continue
			}
			abort = s.applyEdge(r, t.rec, t.rec)
		}
		c.marks = kept
		if abort {
			sh.mu.Unlock()
			s.ssiAborts.Add(1)
			return ErrSSI
		}
	}
	off := int32(len(c.arena))
	c.arena = append(c.arena, before...)
	c.versions = append(c.versions, version{
		ts: c.latestTS, off: off, n: int32(len(before)), absent: before == nil,
		rec: c.latestRec, gen: c.latestGen,
	})
	c.writer = t
	sh.mu.Unlock()
	t.chains = append(t.chains, c)
	return nil
}

// Commit assigns t a commit timestamp (0 is returned for read-only
// transactions), publishes it, flips t's chains to the new timestamp,
// queues them on ret for later pruning, and deregisters the snapshot.
// The caller must invoke Commit only after the commit is decided (WAL
// record appended, with PreCommit already passed under SSI) and before
// releasing row locks.
//
// Under SSI even a read-only transaction that left marks draws a clock
// tick: its endTS is what decides, against later writers' snapshots,
// whether those marks are still concurrent — and what lets the reap
// queue release its rec once the watermark passes.
func (s *Store) Commit(t *Txn, ret *RetireSet) uint64 {
	var ts uint64
	wrote := len(t.chains) > 0
	if wrote || (s.ssi && len(t.reads) > 0) {
		s.commitMu.Lock()
		ts = s.clock.Load() + 1
		t.commitTS.Store(ts)
		s.clock.Store(ts)
		if s.ssi {
			t.rec.endTS.Store(ts)
		}
		s.commitMu.Unlock()
		for _, c := range t.chains {
			sh := s.shardOf(c.k)
			sh.mu.Lock()
			c.latestTS = ts
			if s.ssi {
				c.latestRec = t.rec
				c.latestGen = t.recGen
			}
			c.writer = nil
			sh.mu.Unlock()
			if ret != nil {
				ret.entries = append(ret.entries, retireEntry{k: c.k, ts: ts})
			}
		}
		t.chains = t.chains[:0]
		if s.ssi {
			if ret != nil {
				for _, c := range t.reads {
					ret.entries = append(ret.entries, retireEntry{k: c.k, ts: ts})
				}
			}
			t.reads = t.reads[:0]
		}
	}
	// A rec that drew an endTS joins the reap queue (its marks and flags
	// stay live until the watermark passes); one that touched nothing is
	// released immediately.
	s.endTxn(t, ts != 0)
	if !wrote {
		ts = 0
	}
	return ts
}

// Abort pops the versions t pushed (each is the newest on its chain and
// the tail of its arena, since the row lock excluded other writers),
// clears the writer marks, and deregisters the snapshot. The caller must
// restore the heap before-images BEFORE calling Abort: while writer is
// set, readers resolve through versions, so the heap's intermediate
// states are never observed.
//
// Under SSI the transaction's rec is released immediately (the gen bump
// stales its marks and voids its edges), and its read-marked chains are
// queued on ret so mark-only chains get retired; ret may be nil (crash
// and forsake paths), in which case Reset-scale recovery reclaims them.
func (s *Store) Abort(t *Txn, ret *RetireSet) {
	for _, c := range t.chains {
		sh := s.shardOf(c.k)
		sh.mu.Lock()
		if c.writer == t {
			v := c.versions[len(c.versions)-1]
			c.versions = c.versions[:len(c.versions)-1]
			c.arena = c.arena[:v.off]
			c.writer = nil
			if len(c.versions) == 0 && c.latestTS == 0 && compactMarks(c) == 0 {
				// The chain was created by this transaction: nothing
				// left (our own still-live mark keeps it pinned here; the
				// retire entry below frees it once the rec is released).
				delete(sh.chains, c.k)
				sh.release(c)
			}
		}
		sh.mu.Unlock()
	}
	t.chains = t.chains[:0]
	if s.ssi {
		if ret != nil && len(t.reads) > 0 {
			now := s.clock.Load()
			for _, c := range t.reads {
				ret.entries = append(ret.entries, retireEntry{k: c.k, ts: now})
			}
		}
		t.reads = t.reads[:0]
	}
	s.endTxn(t, false)
}

func (s *Store) endTxn(t *Txn, keepRec bool) {
	s.regMu.Lock()
	if t.prev != nil {
		t.prev.next = t.next
	} else if s.active == t {
		s.active = t.next
	}
	if t.next != nil {
		t.next.prev = t.prev
	}
	t.prev, t.next = nil, nil
	if s.ssi && t.rec != nil {
		if keepRec {
			s.commRecs = append(s.commRecs, t.rec)
		} else {
			s.releaseRecLocked(t.rec)
		}
		t.rec = nil
	}
	s.regMu.Unlock()
}

// Reset drops every chain and active registration, keeping the commit
// clock (timestamps stay monotonic across recoveries). Only valid on a
// quiesced store — crash recovery rebuilds the heap to committed state,
// after which no chain carries information.
func (s *Store) Reset() {
	s.regMu.Lock()
	s.active = nil
	for i := s.commHead; i < len(s.commRecs); i++ {
		s.releaseRecLocked(s.commRecs[i])
		s.commRecs[i] = nil
	}
	s.commRecs = s.commRecs[:0]
	s.commHead = 0
	s.regMu.Unlock()
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		for k, c := range sh.chains {
			delete(sh.chains, k)
			sh.release(c)
		}
		sh.mu.Unlock()
	}
}
