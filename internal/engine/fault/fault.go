// Package fault injects storage and log-device failures into the engine
// for robustness testing. An Injector wraps a storage.DiskIO and doubles
// as a wal.FaultHook, so one seeded object controls every failure mode
// the engine must survive:
//
//   - transient I/O errors (storage.ErrTransientIO) on reads, writes, and
//     log forces — retried by the Runner's backoff policy;
//   - silent corruption: a written page image lands with one bit flipped
//     (data copy only, so the journal mirror stays intact and the store's
//     checksum read detects and repairs it);
//   - crashes: after a scheduled number of device operations the device
//     "dies" — the in-flight write is torn (a prefix of the new image over
//     the old) or dropped entirely, and every later operation returns
//     storage.ErrCrashed until Revive.
//
// All randomness comes from the injector's own seeded generator, so a
// failure schedule is reproducible from its seed.
package fault

import (
	"fmt"
	"sync"

	"tpccmodel/internal/engine/storage"
	"tpccmodel/internal/engine/wal"
	"tpccmodel/internal/rng"
)

// Config sets steady-state fault probabilities (all per device operation;
// zero disables the corresponding fault).
type Config struct {
	// ReadErrProb / WriteErrProb fail page reads/writes with a transient
	// error before any bytes move.
	ReadErrProb  float64
	WriteErrProb float64
	// ForceErrProb fails a log force (the commit is not acknowledged and
	// does not become durable).
	ForceErrProb float64
	// BitFlipProb corrupts a written page image by one bit (data area
	// only; the journal copy stays intact).
	BitFlipProb float64
}

// Stats counts what the injector did.
type Stats struct {
	Reads, Writes, Forces          int64
	ReadErrs, WriteErrs, ForceErrs int64
	BitFlips                       int64
	TornWrites, DroppedWrites      int64
	Crashes                        int64
}

// Ops returns the total device operations observed.
func (s Stats) Ops() int64 { return s.Reads + s.Writes + s.Forces }

// Injector is a fault-injecting storage.DiskIO and wal.FaultHook. It is
// safe for concurrent use.
type Injector struct {
	mu      sync.Mutex
	disk    storage.DiskIO
	r       *rng.RNG
	cfg     Config
	enabled bool
	dead    bool
	armed   bool
	fuse    int64
	stats   Stats
}

var (
	_ storage.DiskIO = (*Injector)(nil)
	_ wal.FaultHook  = (*Injector)(nil)
)

// New wraps disk with a seeded injector. Faults start disabled; call
// SetConfig and SetEnabled to arm them.
func New(disk storage.DiskIO, seed uint64) *Injector {
	return &Injector{disk: disk, r: rng.New(seed)}
}

// SetConfig replaces the steady-state fault probabilities.
func (in *Injector) SetConfig(cfg Config) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.cfg = cfg
}

// SetEnabled turns steady-state faults (errors, bit flips) on or off.
// The crash fuse is independent: it burns whenever armed.
func (in *Injector) SetEnabled(on bool) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.enabled = on
}

// ScheduleCrash arms the device to die after the next n operations
// (reads, writes, and forces all count). n < 1 behaves as 1.
func (in *Injector) ScheduleCrash(n int64) {
	in.mu.Lock()
	defer in.mu.Unlock()
	if n < 1 {
		n = 1
	}
	in.armed = true
	in.fuse = n
}

// DisarmCrash cancels a scheduled crash that has not fired.
func (in *Injector) DisarmCrash() {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.armed = false
}

// Kill makes the device dead immediately (a crash with no in-flight
// write to tear).
func (in *Injector) Kill() {
	in.mu.Lock()
	defer in.mu.Unlock()
	if !in.dead {
		in.dead = true
		in.stats.Crashes++
	}
}

// Revive brings a dead device back (the simulated machine reboots).
func (in *Injector) Revive() {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.dead = false
	in.armed = false
}

// Dead reports whether the device is currently dead.
func (in *Injector) Dead() bool {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.dead
}

// Stats returns a snapshot of the injector's counters.
func (in *Injector) Stats() Stats {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.stats
}

// errCrashed wraps the crash sentinel with the operation context.
func errCrashed(op string) error {
	return fmt.Errorf("fault: device dead (%s): %w", op, storage.ErrCrashed)
}

// burn consumes one fuse tick; it reports whether this operation is the
// one the crash lands on. Callers hold in.mu.
func (in *Injector) burn() bool {
	if !in.armed {
		return false
	}
	in.fuse--
	if in.fuse > 0 {
		return false
	}
	in.armed = false
	in.dead = true
	in.stats.Crashes++
	return true
}

// Allocate delegates to the wrapped device: allocation is catalog
// metadata, durable as in a real system's file-system layer.
func (in *Injector) Allocate(size int) storage.PageID {
	return in.disk.Allocate(size)
}

// Pages delegates to the wrapped device.
func (in *Injector) Pages() int64 { return in.disk.Pages() }

// Read implements storage.DiskIO.
func (in *Injector) Read(id storage.PageID, area storage.Area, buf []byte) error {
	in.mu.Lock()
	in.stats.Reads++
	if in.dead {
		in.mu.Unlock()
		return errCrashed("read")
	}
	if in.burn() {
		in.mu.Unlock()
		return errCrashed("read")
	}
	if in.enabled && in.cfg.ReadErrProb > 0 && in.r.Bernoulli(in.cfg.ReadErrProb) {
		in.stats.ReadErrs++
		in.mu.Unlock()
		return fmt.Errorf("fault: injected read error on page %d: %w", id, storage.ErrTransientIO)
	}
	in.mu.Unlock()
	return in.disk.Read(id, area, buf)
}

// Write implements storage.DiskIO. A crash landing on a write tears it
// (a prefix of the new image lands over the old) or drops it entirely —
// both model power loss mid-sector-train.
func (in *Injector) Write(id storage.PageID, area storage.Area, buf []byte) error {
	in.mu.Lock()
	in.stats.Writes++
	if in.dead {
		in.mu.Unlock()
		return errCrashed("write")
	}
	if in.burn() {
		tear := len(buf) > 1 && in.r.Bernoulli(0.5)
		var cut int
		if tear {
			cut = 1 + int(in.r.Int63n(int64(len(buf)-1)))
		}
		in.mu.Unlock()
		if tear && in.tear(id, area, buf, cut) {
			in.addTorn()
		} else {
			in.addDropped()
		}
		return errCrashed("write")
	}
	if in.enabled && in.cfg.WriteErrProb > 0 && in.r.Bernoulli(in.cfg.WriteErrProb) {
		in.stats.WriteErrs++
		in.mu.Unlock()
		return fmt.Errorf("fault: injected write error on page %d: %w", id, storage.ErrTransientIO)
	}
	flip := in.enabled && area == storage.AreaData &&
		in.cfg.BitFlipProb > 0 && in.r.Bernoulli(in.cfg.BitFlipProb)
	var bit int64
	if flip {
		in.stats.BitFlips++
		bit = in.r.Int63n(int64(len(buf)) * 8)
	}
	in.mu.Unlock()
	if flip {
		dirty := append([]byte(nil), buf...)
		dirty[bit/8] ^= 1 << uint(bit%8)
		return in.disk.Write(id, area, dirty)
	}
	return in.disk.Write(id, area, buf)
}

// tear lands the first cut bytes of the new image over the old one. It
// reports whether a torn image was actually written (false when the page
// had no prior image to mix with: the write is dropped instead).
func (in *Injector) tear(id storage.PageID, area storage.Area, buf []byte, cut int) bool {
	old := make([]byte, len(buf))
	if err := in.disk.Read(id, area, old); err != nil {
		return false
	}
	copy(old[:cut], buf[:cut])
	return in.disk.Write(id, area, old) == nil
}

func (in *Injector) addTorn() {
	in.mu.Lock()
	in.stats.TornWrites++
	in.mu.Unlock()
}

func (in *Injector) addDropped() {
	in.mu.Lock()
	in.stats.DroppedWrites++
	in.mu.Unlock()
}

// BeforeForce implements wal.FaultHook: a dead or crashing log device
// fails the force with storage.ErrCrashed (the commit is never
// acknowledged); a transient device error fails it retriably.
func (in *Injector) BeforeForce(n int) error {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.stats.Forces++
	if in.dead {
		return errCrashed("force")
	}
	if in.burn() {
		return errCrashed("force")
	}
	if in.enabled && in.cfg.ForceErrProb > 0 && in.r.Bernoulli(in.cfg.ForceErrProb) {
		in.stats.ForceErrs++
		return fmt.Errorf("fault: injected log force error: %w", storage.ErrTransientIO)
	}
	return nil
}
